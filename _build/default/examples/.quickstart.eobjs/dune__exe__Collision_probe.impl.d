examples/collision_probe.ml: Dstruct Mempool Mp Mp_util Printf Smr_core
