examples/collision_probe.mli:
