examples/kv_store.ml: Atomic Domain Dstruct List Mp Mp_util Printf Smr_core Unix
