examples/quickstart.ml: Array Domain Dstruct Mp Mp_util Printf Smr_core
