examples/quickstart.mli:
