examples/stall_demo.ml: Atomic Domain Dstruct Mp Printf Smr_core Smr_schemes
