examples/stall_demo.mli:
