(* Index-collision probe (the Figure 7a story): MP maps keys to 32-bit
   indices by bisection, so inserting keys in ascending order halves the
   available range every time — after ~32 inserts every new node collides
   and is stamped USE_HP, falling back to hazard pointers.

   This example builds the same list twice — ascending insertion order vs
   random order — and reports how many nodes ended up on the HP fallback
   and what that does to protection fences.

   Run: dune exec examples/collision_probe.exe *)

module L = Dstruct.Michael_list.Make (Mp.Margin_ptr)
module Config = Smr_core.Config

let keys = 2_048

let build order =
  let t = L.create ~threads:1 ~capacity:(keys * 4) (Config.default ~threads:1) in
  let s = L.session t ~tid:0 in
  (match order with
  | `Ascending ->
    for k = 0 to keys - 1 do
      ignore (L.insert s ~key:k ~value:k : bool)
    done
  | `Random ->
    let rng = Mp_util.Rng.create 99 in
    let inserted = ref 0 in
    while !inserted < keys do
      if L.insert s ~key:(Mp_util.Rng.below rng (keys * 4)) ~value:0 then incr inserted
    done);
  t

let probe name t =
  let pool = Mempool.core (L.Debug.pool t) in
  let collided = ref 0 and total = ref 0 in
  let s = L.session t ~tid:0 in
  (* count USE_HP stamps over the whole key space *)
  for k = 0 to keys * 4 do
    match L.Debug.id_of_key t k with
    | Some id ->
      incr total;
      if Mempool.Core.index pool id = Config.use_hp then incr collided
    | None -> ()
  done;
  (* measure fences for a full scan workload *)
  let fences0 = (L.smr_stats t).Smr_core.Smr_intf.fences in
  let visits0 = L.traversed t in
  for k = 0 to keys - 1 do
    ignore (L.contains s k : bool)
  done;
  let fences = (L.smr_stats t).Smr_core.Smr_intf.fences - fences0 in
  let visits = L.traversed t - visits0 in
  Printf.printf "%-9s : %4d/%d nodes on the USE_HP fallback, %.3f fences per visited node\n"
    name !collided !total
    (float_of_int fences /. float_of_int (max 1 visits))

let () =
  probe "ascending" (build `Ascending);
  probe "random" (build `Random);
  print_endline
    "ascending insertion exhausts the index range (bisection), so MP degrades gracefully to\n\
     hazard-pointer behaviour; random insertion keeps indices spread and margins effective."
