(* A small concurrent key-value session store — the kind of soft-real-time
   workload the paper motivates MP with: bounded memory matters because a
   stalled thread must not let dead sessions pile up without limit.

   Writers churn short-lived "sessions" (insert + later remove); readers
   perform lookups; an expirer sweeps ranges. All share one BST protected
   by margin pointers. Run: dune exec examples/kv_store.exe *)

module Store = Dstruct.Nm_bst.Make (Mp.Margin_ptr)

let session_space = 8_192
let run_seconds = 2.0

let () =
  let writers = 2 and readers = 3 and expirers = 1 in
  let threads = writers + readers + expirers in
  let store =
    Store.create ~threads ~capacity:(1 lsl 18) (Smr_core.Config.default ~threads)
  in
  let stop = Atomic.make false in
  let created = Atomic.make 0 and expired = Atomic.make 0 and hits = Atomic.make 0 in

  let writer tid () =
    let s = Store.session store ~tid in
    let rng = Mp_util.Rng.split ~seed:11 ~tid in
    while not (Atomic.get stop) do
      let sid = Mp_util.Rng.below rng session_space in
      if Store.insert s ~key:sid ~value:(sid * 7) then Atomic.incr created
      else if Store.remove s sid then Atomic.incr expired
    done
  in
  let reader tid () =
    let s = Store.session store ~tid in
    let rng = Mp_util.Rng.split ~seed:23 ~tid in
    while not (Atomic.get stop) do
      let sid = Mp_util.Rng.below rng session_space in
      match Store.find s sid with
      | Some v ->
        assert (v = sid * 7);
        Atomic.incr hits
      | None -> ()
    done
  in
  let expirer tid () =
    let s = Store.session store ~tid in
    let rng = Mp_util.Rng.split ~seed:37 ~tid in
    while not (Atomic.get stop) do
      (* sweep a small contiguous range, as a TTL pass would *)
      let base = Mp_util.Rng.below rng session_space in
      for sid = base to min (session_space - 1) (base + 32) do
        if Store.remove s sid then Atomic.incr expired
      done
    done
  in

  let spawn tid role = Domain.spawn (fun () -> role tid ()) in
  let domains =
    List.concat
      [
        List.init writers (fun i -> spawn i writer);
        List.init readers (fun i -> spawn (writers + i) reader);
        List.init expirers (fun i -> spawn (writers + readers + i) expirer);
      ]
  in
  Unix.sleepf run_seconds;
  Atomic.set stop true;
  List.iter Domain.join domains;

  let st = Store.smr_stats store in
  Printf.printf "sessions created  : %d\n" (Atomic.get created);
  Printf.printf "sessions expired  : %d\n" (Atomic.get expired);
  Printf.printf "lookup hits       : %d\n" (Atomic.get hits);
  Printf.printf "live sessions     : %d\n" (Store.size store);
  Printf.printf "retired nodes     : %d (reclaimed %d, still wasted %d)\n"
    st.Smr_core.Smr_intf.retired_total st.Smr_core.Smr_intf.reclaimed
    st.Smr_core.Smr_intf.wasted;
  Store.check store;
  print_endline "kv_store OK"
