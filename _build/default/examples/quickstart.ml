(* Quickstart: a concurrent ordered map protected by margin pointers.

   Build and run:
     dune exec examples/quickstart.exe

   The pattern: instantiate a search structure over the MP scheme, create
   one session per domain, and use plain set/map operations — all SMR
   bookkeeping (protection, retirement, reclamation) happens inside. *)

module Map = Dstruct.Skiplist.Make (Mp.Margin_ptr)

let () =
  let threads = 4 in
  (* capacity = pool slots: live nodes + retired-but-unreclaimed slack *)
  let map =
    Map.create ~threads ~capacity:65_536 (Smr_core.Config.default ~threads)
  in

  (* Sequential usage through a session. *)
  let s = Map.session map ~tid:0 in
  assert (Map.insert s ~key:1 ~value:100);
  assert (Map.insert s ~key:2 ~value:200);
  assert (not (Map.insert s ~key:1 ~value:999)) (* duplicate *);
  assert (Map.find s 2 = Some 200);
  assert (Map.remove s 1);
  assert (not (Map.contains s 1));

  (* Concurrent usage: one domain per tid. *)
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = Map.session map ~tid in
            let rng = Mp_util.Rng.split ~seed:7 ~tid in
            for i = 1 to 50_000 do
              let k = Mp_util.Rng.below rng 1_000 in
              match i mod 10 with
              | 0 -> ignore (Map.insert s ~key:k ~value:i : bool)
              | 1 -> ignore (Map.remove s k : bool)
              | _ -> ignore (Map.contains s k : bool)
            done;
            Map.flush s))
  in
  Array.iter Domain.join domains;

  let st = Map.smr_stats map in
  Printf.printf "final size            : %d keys\n" (Map.size map);
  Printf.printf "nodes retired         : %d\n" st.Smr_core.Smr_intf.retired_total;
  Printf.printf "nodes reclaimed       : %d\n" st.Smr_core.Smr_intf.reclaimed;
  Printf.printf "wasted (unreclaimed)  : %d\n" st.Smr_core.Smr_intf.wasted;
  Printf.printf "publication fences    : %d for %d node visits (%.3f/node)\n"
    st.Smr_core.Smr_intf.fences (Map.traversed map)
    (float_of_int st.Smr_core.Smr_intf.fences /. float_of_int (max 1 (Map.traversed map)));
  Map.check map;
  print_endline "quickstart OK"
