(* The paper's core claim, live: park a reader mid-operation while other
   threads churn, and watch how much memory each SMR scheme strands.

     EBR  — reclaims nothing while the reader sleeps (unbounded waste);
     IBR  — robust: waste capped by what existed at the stall;
     MP   — bounded: only nodes inside the reader's margins stay pinned.

   Run: dune exec examples/stall_demo.exe *)

module Config = Smr_core.Config

let churn_ops = 30_000

let demo name (module SET : Dstruct.Set_intf.SET) =
  let threads = 2 in
  let config =
    Config.default ~threads
    |> (fun c -> Config.with_empty_freq c 10)
    |> fun c -> Config.with_epoch_freq c 64
  in
  let t = SET.create ~threads ~capacity:(1 lsl 18) config in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to 63 do
    ignore (SET.insert s0 ~key:(k * 1000) ~value:k : bool)
  done;
  let parked = Atomic.make false and release = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let s1 = SET.session t ~tid:1 in
        ignore
          (SET.contains_paused s1 17_000 ~pause:(fun () ->
               Atomic.set parked true;
               while not (Atomic.get release) do
                 Domain.cpu_relax ()
               done)
            : bool))
  in
  while not (Atomic.get parked) do
    Domain.cpu_relax ()
  done;
  (* churn fresh keys while the reader is parked mid-operation *)
  for i = 0 to churn_ops - 1 do
    let k = 100 + (i mod 400) in
    ignore (SET.insert s0 ~key:k ~value:i : bool);
    ignore (SET.remove s0 k : bool)
  done;
  SET.flush s0;
  let stalled = (SET.smr_stats t).Smr_core.Smr_intf.wasted in
  Atomic.set release true;
  Domain.join reader;
  SET.flush s0;
  let after = (SET.smr_stats t).Smr_core.Smr_intf.wasted in
  Printf.printf "%-5s | wasted while stalled: %6d / %d retired | after wake-up: %4d\n%!" name
    stalled churn_ops after

let () =
  print_endline "one reader parked mid-operation; another thread churns 30k insert+remove:";
  demo "ebr" (module Dstruct.Michael_list.Make (Smr_schemes.Ebr));
  demo "ibr" (module Dstruct.Michael_list.Make (Smr_schemes.Ibr));
  demo "he" (module Dstruct.Michael_list.Make (Smr_schemes.He));
  demo "hp" (module Dstruct.Michael_list.Make (Smr_schemes.Hp));
  demo "mp" (module Dstruct.Michael_list.Make (Mp.Margin_ptr));
  print_endline "bounded schemes (hp, mp) strand a small constant; ebr strands everything."
