lib/core/mp.ml: Handle Margin_ptr Mempool Smr_core
