lib/core/margin_ptr.ml: Array Atomic Config Counters Epoch Handle Mempool Mp_util Retired Smr_core Smr_intf
