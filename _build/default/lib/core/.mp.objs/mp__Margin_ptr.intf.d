lib/core/margin_ptr.mli: Smr_core
