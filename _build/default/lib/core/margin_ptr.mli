(** Margin pointers — the paper's contribution (§4, Listing 10): the first
    self-contained nonblocking SMR scheme with a predetermined bound on
    wasted memory and low run-time overhead. Protection slots announce key
    {e indices}; one announcement covers every node within [margin/2] of
    it, so most dereferences are fence-free, while index collisions fall
    back to hazard pointers and an HE-style epoch filter bounds how many
    dead same-index generations a stalled thread can pin.

    Implements {!Smr_core.Smr_intf.S}; see that signature for the client
    contract. *)

include Smr_core.Smr_intf.S

(** Introspection hooks for tests and the wasted-memory experiments. *)
module Debug : sig
  val epoch : t -> Smr_core.Epoch.t
  val current_epoch : t -> int

  (** The thread's announced epoch ([Epoch.inactive] when idle). *)
  val local_epoch : thread -> int

  (** Whether the thread observed an epoch change mid-operation and
      switched to hazard pointers (§4.3.2). *)
  val use_hp_mode : thread -> bool

  (** Current search-interval endpoints (Listing 5 state). *)
  val bounds : thread -> int * int

  (** Raw slot values; [-1] means empty. *)
  val mp_slot : t -> tid:int -> refno:int -> int

  val hp_slot : t -> tid:int -> refno:int -> int
  val retired_length : thread -> int
end
