(** Public facade of the margin-pointers library.

    {[
      let pool = Mp.Mempool.create ~capacity ~threads (fun _ -> payload) in
      let smr = Mp.Margin_ptr.create ~pool:(Mp.Mempool.core pool) ~threads config in
      ...
    ]}

    [Margin_ptr] satisfies {!Smr_intf.S}, the SMR interface of the paper
    (Listing 1) extended with [update_lower_bound]/[update_upper_bound];
    any client written against that interface runs on MP unchanged. *)

module Margin_ptr = Margin_ptr
module Config = Smr_core.Config
module Smr_intf = Smr_core.Smr_intf
module Epoch = Smr_core.Epoch
module Handle = Handle
module Mempool = Mempool

(** The scheme as a first-class SMR module, for scheme-generic code. *)
module Smr : Smr_core.Smr_intf.S = Margin_ptr
