lib/dstruct/dta_list.ml: Array Atomic Handle Hashtbl List Mempool Mp_util Set_intf Smr_core
