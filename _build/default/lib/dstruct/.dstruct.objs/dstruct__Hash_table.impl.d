lib/dstruct/hash_table.ml: Array Atomic Handle Mempool Mp_util Smr_core
