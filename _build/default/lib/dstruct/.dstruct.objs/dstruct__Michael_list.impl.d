lib/dstruct/michael_list.ml: Atomic Handle Mempool Mp_util Smr_core
