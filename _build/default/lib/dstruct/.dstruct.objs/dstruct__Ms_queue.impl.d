lib/dstruct/ms_queue.ml: Atomic Handle List Mempool Mp_util Smr_core
