lib/dstruct/nm_bst.ml: Atomic Handle Mempool Mp_util Smr_core
