lib/dstruct/set_intf.ml: Smr_core
