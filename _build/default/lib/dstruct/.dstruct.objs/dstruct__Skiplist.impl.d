lib/dstruct/skiplist.ml: Array Atomic Handle Mempool Mp_util Printf Smr_core
