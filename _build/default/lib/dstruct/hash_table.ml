(** Lock-free hash table: a fixed array of Michael-list buckets (Michael,
    SPAA 2002) sharing one pool and one SMR instance.

    This is the paper's "MP can be seamlessly plugged into any client that
    uses the HP interface" story exercised on a structure that is *not*
    globally ordered: each bucket is its own small search structure, so
    MP's interval protection still applies per bucket — the search interval
    of an insertion lives entirely inside one bucket's key order. It also
    demonstrates composition: the bucket algorithm is the list functor's
    seek/insert/remove logic re-instantiated over a shared substrate.

    Keys are partitioned, not just distributed: bucket b stores exactly the
    keys hashing to b, and within a bucket keys are sorted by a
    bucket-local order (the key itself), so Definition 4.1 holds per
    bucket. Sentinels: each bucket has its own head; all buckets share one
    tail sentinel. *)

module Sc = Mp_util.Striped_counter
module Config = Smr_core.Config

module Make (S : Smr_core.Smr_intf.S) = struct
  type node = {
    mutable key : int;
    mutable value : int;
    next : int Atomic.t;
  }

  type t = {
    pool : node Mempool.t;
    smr : S.t;
    heads : int array; (* bucket head sentinel ids *)
    tail : int;
    buckets : int;
    traversed : Sc.t;
    threads : int;
  }

  type session = {
    t : t;
    th : S.thread;
    tid : int;
  }

  let name = "hash-table(" ^ S.name ^ ")"
  let slots_needed = 3
  let deleted = 1

  let node t id = Mempool.get t.pool id

  let create ~threads ~capacity ?(check_access = false) ?(buckets = 256) config =
    assert (buckets > 0 && buckets land (buckets - 1) = 0);
    let pool =
      Mempool.create ~capacity ~threads ~check_access (fun _ ->
          { key = 0; value = 0; next = Atomic.make Handle.null })
    in
    let smr =
      S.create ~pool:(Mempool.core pool) ~threads (Config.with_slots config slots_needed)
    in
    let th0 = S.thread smr ~tid:0 in
    let tail = S.alloc_with_index th0 ~index:Config.max_sentinel_index in
    (Mempool.unsafe_get pool tail).key <- max_int;
    let tail_w = S.handle_of th0 tail in
    let heads =
      Array.init buckets (fun _ ->
          let h = S.alloc_with_index th0 ~index:Config.min_sentinel_index in
          let hn = Mempool.unsafe_get pool h in
          hn.key <- min_int;
          Atomic.set hn.next tail_w;
          h)
    in
    { pool; smr; heads; tail; buckets; traversed = Sc.create ~threads; threads }

  let session t ~tid = { t; th = S.thread t.smr ~tid; tid }

  let bucket t k =
    (* Fibonacci multiplicative hashing; buckets is a power of two. *)
    let h = k * 0x2545F4914F6CDD1D in
    (h lsr 32) land (t.buckets - 1)

  type seek_result = {
    prev : int;
    prev_next : int Atomic.t;
    curr_w : Handle.t;
    curr_key : int;
    free_ref : int;
  }

  (* Identical protocol to Michael_list.seek, rooted at the key's bucket. *)
  let seek s k =
    let t = s.t in
    let rec advance ~rp ~rc ~rn prev prev_next curr_w =
      Sc.incr t.traversed ~tid:s.tid;
      let curr = Handle.id curr_w in
      let curr_node = node t curr in
      let next_w = S.read s.th ~refno:rn curr_node.next in
      if Atomic.get prev_next <> curr_w then restart ()
      else if Handle.mark next_w land deleted <> 0 then begin
        let succ_w = Handle.with_mark next_w 0 in
        if Atomic.compare_and_set prev_next curr_w succ_w then begin
          S.retire s.th curr;
          advance ~rp ~rc:rn ~rn:rc prev prev_next succ_w
        end
        else restart ()
      end
      else begin
        let ckey = curr_node.key in
        if ckey < k then advance ~rp:rc ~rc:rn ~rn:rp curr curr_node.next next_w
        else { prev; prev_next; curr_w; curr_key = ckey; free_ref = rn }
      end
    and restart () =
      let head = t.heads.(bucket t k) in
      let prev_next = (node t head).next in
      let curr_w = S.read s.th ~refno:1 prev_next in
      advance ~rp:0 ~rc:1 ~rn:2 head prev_next curr_w
    in
    restart ()

  let insert s ~key ~value =
    assert (key > min_int && key < max_int);
    S.start_op s.th;
    let rec loop () =
      let r = seek s key in
      if r.curr_key = key then false
      else begin
        S.update_lower_bound s.th r.prev;
        S.update_upper_bound s.th (Handle.id r.curr_w);
        let id = S.alloc s.th in
        let n = Mempool.unsafe_get s.t.pool id in
        n.key <- key;
        n.value <- value;
        Atomic.set n.next r.curr_w;
        if Atomic.compare_and_set r.prev_next r.curr_w (S.handle_of s.th id) then true
        else begin
          Mempool.free s.t.pool ~tid:s.tid id;
          loop ()
        end
      end
    in
    let result = loop () in
    S.end_op s.th;
    result

  let remove s key =
    S.start_op s.th;
    let rec loop () =
      let r = seek s key in
      if r.curr_key <> key then false
      else begin
        let curr = Handle.id r.curr_w in
        let curr_node = node s.t curr in
        let next_w = S.read s.th ~refno:r.free_ref curr_node.next in
        if Handle.mark next_w land deleted <> 0 then loop ()
        else if Atomic.compare_and_set curr_node.next next_w (Handle.with_mark next_w deleted)
        then begin
          if Atomic.compare_and_set r.prev_next r.curr_w (Handle.with_mark next_w 0) then
            S.retire s.th curr
          else ignore (seek s key : seek_result);
          true
        end
        else loop ()
      end
    in
    let result = loop () in
    S.end_op s.th;
    result

  let contains s key =
    S.start_op s.th;
    let r = seek s key in
    S.end_op s.th;
    r.curr_key = key

  let contains_paused s key ~pause =
    S.start_op s.th;
    ignore (S.read s.th ~refno:1 (node s.t s.t.heads.(bucket s.t key)).next : Handle.t);
    pause ();
    let r = seek s key in
    S.end_op s.th;
    r.curr_key = key

  let find s key =
    S.start_op s.th;
    let r = seek s key in
    let result = if r.curr_key = key then Some (node s.t (Handle.id r.curr_w)).value else None in
    S.end_op s.th;
    result

  (* -- sequential-only inspection ---------------------------------------- *)

  let fold t f acc =
    Array.fold_left
      (fun acc head ->
        let rec go acc w =
          let id = Handle.id w in
          if id = t.tail then acc
          else
            let n = Mempool.unsafe_get t.pool id in
            go (f acc id n) (Handle.with_mark (Atomic.get n.next) 0)
        in
        go acc (Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool head).next) 0))
      acc t.heads

  let size t = fold t (fun acc _ _ -> acc + 1) 0

  let check t =
    Array.iteri
      (fun b head ->
        let rec go last w =
          let id = Handle.id w in
          if id <> t.tail then begin
            let n = Mempool.unsafe_get t.pool id in
            if n.key <= last then failwith "hash_table: bucket keys not strictly increasing";
            if bucket t n.key <> b then failwith "hash_table: key in wrong bucket";
            if Handle.mark (Atomic.get n.next) land deleted <> 0 then
              failwith "hash_table: reachable node is marked";
            go n.key (Handle.with_mark (Atomic.get n.next) 0)
          end
        in
        go min_int (Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool head).next) 0))
      t.heads

  let traversed t = Sc.sum t.traversed
  let smr_stats t = S.stats t.smr
  let violations t = Mempool.violations t.pool
  let live_nodes t = Mempool.live_count t.pool
  let flush s = S.flush s.th
end
