(** Link-word ("pointer") encoding: (incarnation, idx16, node id, marks)
    packed into one immediate OCaml int, so [int Atomic.t] links support
    single-word CAS exactly like the paper's [MP_CAS_Ptr] (Listing 6).
    See the implementation header for the bit layout. *)

type t = int

val mark_bits : int
val id_bits : int
val idx_bits : int
val inc_bits : int

(** Index bits dropped when packing a 32-bit MP index into a handle (16,
    the paper's pointer-tag precision). *)
val precision : int

val id_mask : int
val idx16_mask : int
val mark_mask : int
val inc_mask : int

(** Node id reserved for the null handle. *)
val null_id : int

(** Largest usable pool slot id. *)
val max_id : int

(** The null handle (null id, no marks, incarnation 0). *)
val null : t

(** [make ?inc ~id ~idx16 ~mark ()] packs a handle. [inc] is masked to
    {!inc_bits} bits. *)
val make : ?inc:int -> id:int -> idx16:int -> mark:int -> unit -> t

val id : t -> int
val idx16 : t -> int
val mark : t -> int
val inc : t -> int
val is_null : t -> bool

(** [with_mark h m] replaces the mark bits, preserving everything else. *)
val with_mark : t -> int -> t

(** [unmarked h] clears the mark bits. *)
val unmarked : t -> t

(** Bounds of the full-index range an observed idx16 may stand for:
    [range(i) = [i << 16, (i << 16) + 0xFFFF]] (paper §4.3.1). *)
val idx_lower_bound : t -> int

val idx_upper_bound : t -> int

(** The idx16 under which a full 32-bit index packs. Monotone. *)
val idx16_of_index : int -> int

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
