lib/harness/instances.ml: Dstruct List Mp Printf Smr_core Smr_schemes String
