lib/harness/instances.mli: Dstruct Smr_core
