lib/harness/report.mli:
