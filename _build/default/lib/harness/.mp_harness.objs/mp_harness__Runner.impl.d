lib/harness/runner.ml: Array Atomic Domain Dstruct Mempool Mp_util Smr_core Unix Workload
