lib/harness/workload.ml: Mp_util
