lib/harness/workload.mli: Mp_util
