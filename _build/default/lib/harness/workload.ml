(** Workload mixes from the paper's evaluation (§6).

    Equal insert/remove probabilities keep the structure size roughly
    constant; keys are drawn uniformly from a range twice the initial
    size, so about half the operations on absent/present keys succeed. *)

type mix = {
  name : string;
  read_pct : int;
  insert_pct : int;
  remove_pct : int;
}

let read_dominated = { name = "read-dominated"; read_pct = 90; insert_pct = 5; remove_pct = 5 }
let write_dominated = { name = "write-dominated"; read_pct = 0; insert_pct = 50; remove_pct = 50 }
let read_only = { name = "read-only"; read_pct = 100; insert_pct = 0; remove_pct = 0 }

let all = [ read_dominated; write_dominated; read_only ]

type op = Read | Insert | Remove

(** Draw the next operation for this mix. *)
let pick mix rng =
  let r = Mp_util.Rng.below rng 100 in
  if r < mix.read_pct then Read
  else if r < mix.read_pct + mix.insert_pct then Insert
  else Remove

(** How the structure is pre-populated. *)
type init =
  | Uniform_init  (** S uniformly random keys from the range (paper default) *)
  | Ascending_init  (** keys 0..S-1 in ascending order (Figure 7a worst case) *)
