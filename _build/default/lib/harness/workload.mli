(** Workload mixes from the paper's evaluation (§6). *)

type mix = {
  name : string;
  read_pct : int;
  insert_pct : int;
  remove_pct : int;
}

val read_dominated : mix  (** 90% contains, 5% insert, 5% remove *)

val write_dominated : mix  (** 50% insert, 50% remove *)

val read_only : mix
val all : mix list

type op = Read | Insert | Remove

val pick : mix -> Mp_util.Rng.t -> op

type init =
  | Uniform_init  (** S uniformly random keys from the range *)
  | Ascending_init  (** keys 0..S-1 in order (Figure 7a worst case) *)
