(** Linearizability checker for concurrent set histories (Wing & Gong
    style search with memoization).

    A history is a list of completed operations with logical invocation /
    response timestamps. The checker searches for a linearization: a total
    order of the operations that (1) respects real-time order (an
    operation whose response precedes another's invocation comes first)
    and (2) makes every result correct against a sequential set.

    The search memoizes on (set of remaining operations, abstract set
    state), both encoded as bitmasks, which keeps it fast for the
    small-window histories the concurrency tests generate (≤ 62 operations
    over ≤ 62 distinct keys). *)

type op_type = Insert | Remove | Contains

type op = {
  op_type : op_type;
  key : int;
  result : bool;
  inv : int;  (** logical invocation time *)
  res : int;  (** logical response time; must be > [inv] *)
}

let max_ops = 62

(** A monotone logical clock for recording histories: call once before the
    operation (invocation) and once after (response). *)
module Clock = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let tick t = Atomic.fetch_and_add t 1
end

exception Too_large

(** [check_set history] is true iff the history linearizes against
    sequential set semantics. Keys are compressed internally; at most
    {!max_ops} operations and distinct keys are supported (raises
    {!Too_large} otherwise). *)
let check_set history =
  let ops = Array.of_list history in
  let n = Array.length ops in
  if n > max_ops then raise Too_large;
  if n = 0 then true
  else begin
    (* compress keys to bit positions *)
    let keys = Hashtbl.create 16 in
    Array.iter
      (fun o ->
        if not (Hashtbl.mem keys o.key) then Hashtbl.add keys o.key (Hashtbl.length keys))
      ops;
    if Hashtbl.length keys > max_ops then raise Too_large;
    let key_bit = Array.map (fun o -> 1 lsl Hashtbl.find keys o.key) ops in
    let full = (1 lsl n) - 1 in
    let memo = Hashtbl.create 4096 in
    (* an op can linearize first among [remaining] iff its invocation
       precedes every remaining response *)
    let min_res remaining =
      let m = ref max_int in
      for i = 0 to n - 1 do
        if remaining land (1 lsl i) <> 0 && ops.(i).res < !m then m := ops.(i).res
      done;
      !m
    in
    let apply o bit state =
      match o.op_type with
      | Insert ->
        let expected = state land bit = 0 in
        if o.result = expected then Some (state lor bit) else None
      | Remove ->
        let expected = state land bit <> 0 in
        if o.result = expected then Some (state land lnot bit) else None
      | Contains ->
        let expected = state land bit <> 0 in
        if o.result = expected then Some state else None
    in
    let rec go remaining state =
      if remaining = 0 then true
      else
        let memo_key = (remaining, state) in
        match Hashtbl.find_opt memo memo_key with
        | Some r -> r
        | None ->
          let bound = min_res remaining in
          let rec try_candidates i =
            i < n
            &&
            let bit = 1 lsl i in
            (remaining land bit <> 0
             && ops.(i).inv <= bound
             &&
             match apply ops.(i) key_bit.(i) state with
             | Some state' -> go (remaining land lnot bit) state'
             | None -> false)
            || try_candidates (i + 1)
          in
          let r = try_candidates 0 in
          Hashtbl.add memo memo_key r;
          r
    in
    go full 0
  end

(** Convenience recorder: wraps a set operation with clock ticks and
    accumulates the completed op. Not thread-safe by itself — use one
    recorder per thread and [merge] afterwards. *)
module Recorder = struct
  type t = {
    clock : Clock.t;
    mutable ops : op list;
  }

  let create clock = { clock; ops = [] }

  let record t op_type key f =
    let inv = Clock.tick t.clock in
    let result = f () in
    let res = Clock.tick t.clock in
    t.ops <- { op_type; key; result; inv; res } :: t.ops;
    result

  let merge recorders = List.concat_map (fun r -> r.ops) recorders
end
