(** Linearizability checker for concurrent set histories (Wing–Gong
    search with bitmask memoization). See the implementation header for
    the algorithm. *)

type op_type = Insert | Remove | Contains

type op = {
  op_type : op_type;
  key : int;
  result : bool;
  inv : int;  (** logical invocation time *)
  res : int;  (** logical response time; must be > [inv] *)
}

(** Maximum operations (and distinct keys) per checked history. *)
val max_ops : int

(** Monotone logical clock for recording histories. *)
module Clock : sig
  type t

  val create : unit -> t

  (** Atomically advance and return the previous value. *)
  val tick : t -> int
end

exception Too_large

(** [check_set history] is true iff the history linearizes against
    sequential set semantics (insert/remove return whether they changed
    the set; contains returns membership). Raises {!Too_large} beyond
    {!max_ops} operations or distinct keys. *)
val check_set : op list -> bool

(** Per-thread history recorder; merge the recorders afterwards. *)
module Recorder : sig
  type t

  val create : Clock.t -> t

  (** [record t ty key f] runs [f ()] between two clock ticks and logs the
      completed operation; returns [f ()]'s result. *)
  val record : t -> op_type -> int -> (unit -> bool) -> bool

  val merge : t list -> op list
end
