(** Manual-memory node pool.

    OCaml is garbage-collected, so this pool simulates the C/C++ manual
    memory management environment the SMR problem lives in: node payloads
    are pre-allocated once, [alloc] hands out slot ids, and [free] makes a
    slot reusable. A freed slot that is still reachable through a stale
    reference is exactly a use-after-free; with [check_access] enabled,
    every payload access verifies the slot is not free and counts
    violations, turning silent memory corruption into a measurable signal.

    The pool is split in two layers. {!Core} is payload-agnostic: slot
    life-cycle state, free lists, and the per-node metadata words SMR
    schemes need (MP index, birth and death epochs) — mirroring the paper's
    practice of reserving extra space during node allocation. ['a t] adds
    the client data structure's node payloads on top.

    Allocation is thread-partitioned for scalability: each thread owns a
    private free list (no synchronization) and overflows to / refills from
    a global lock-free Treiber stack whose top word carries an ABA version
    tag. Slots are linked through a side array, so free lists allocate
    nothing. *)

exception Exhausted

(* Slot life cycle; single-word ints, so reads cannot tear. *)
let state_free = 0
let state_live = 1
let state_retired = 2

module Core = struct
  type local = {
    mutable head : int; (* -1 = empty *)
    mutable count : int;
  }

  type t = {
    capacity : int;
    threads : int;
    state : int array;
    index : int array; (* 32-bit MP index *)
    birth : int array; (* birth epoch *)
    death : int array; (* retirement epoch *)
    incarnation : int array; (* bumped on every free; detects slot reuse *)
    stack_next : int array; (* free-list links, -1 terminated *)
    global_top : int Atomic.t; (* (version << 33) lor (id + 1); 0 in low bits = empty *)
    locals : local array;
    fair_share : int; (* local free-list size that triggers overflow to global *)
    check_access : bool;
    violations : int Atomic.t;
    live : Mp_util.Striped_counter.t;
    allocs : Mp_util.Striped_counter.t;
    frees : Mp_util.Striped_counter.t;
  }

  let id_plus1_mask = (1 lsl 33) - 1
  let top_pack ~version ~id_plus1 = (version lsl 33) lor id_plus1
  let top_id_plus1 top = top land id_plus1_mask
  let top_version top = top lsr 33

  (* -- global Treiber stack (version-tagged against ABA) ---------------- *)

  let rec global_push t id =
    let top = Atomic.get t.global_top in
    t.stack_next.(id) <- top_id_plus1 top - 1;
    let top' = top_pack ~version:(top_version top + 1) ~id_plus1:(id + 1) in
    if not (Atomic.compare_and_set t.global_top top top') then global_push t id

  let rec global_pop t =
    let top = Atomic.get t.global_top in
    let id_plus1 = top_id_plus1 top in
    if id_plus1 = 0 then -1
    else
      let id = id_plus1 - 1 in
      let next = t.stack_next.(id) in
      let top' = top_pack ~version:(top_version top + 1) ~id_plus1:(next + 1) in
      if Atomic.compare_and_set t.global_top top top' then id else global_pop t

  (** When set, a detected use-after-free raises instead of counting, so
      tests can pinpoint the offending access (set via MP_TRAP_UAF=1). *)
  let trap_on_violation =
    ref (match Sys.getenv_opt "MP_TRAP_UAF" with Some ("1" | "true") -> true | _ -> false)

  exception Use_after_free of int

  (* Debug-only: remember who retired/freed each slot last, so a trapped
     use-after-free can print the other side of the race. *)
  let history : (int, string) Hashtbl.t = Hashtbl.create 64
  let history_lock = Mutex.create ()

  let record_history id what =
    if !trap_on_violation then begin
      let bt = Printexc.get_callstack 12 in
      Mutex.lock history_lock;
      Hashtbl.replace history id
        (Printf.sprintf "--- last %s of slot %d ---\n%s" what id
           (Printexc.raw_backtrace_to_string bt));
      Mutex.unlock history_lock
    end



  let create ~capacity ~threads ?(check_access = false) () =
    if capacity > Handle.max_id then invalid_arg "Mempool.create: capacity too large";
    if capacity < threads then invalid_arg "Mempool.create: capacity < threads";
    let t =
      {
        capacity;
        threads;
        state = Array.make capacity state_free;
        index = Array.make capacity 0;
        birth = Array.make capacity 0;
        death = Array.make capacity 0;
        incarnation = Array.make capacity 0;
        stack_next = Array.make capacity (-1);
        global_top = Atomic.make (top_pack ~version:0 ~id_plus1:0);
        locals = Array.init threads (fun _ -> { head = -1; count = 0 });
        fair_share = max 64 (capacity / (threads * 2));
        check_access;
        violations = Atomic.make 0;
        live = Mp_util.Striped_counter.create ~threads;
        allocs = Mp_util.Striped_counter.create ~threads;
        frees = Mp_util.Striped_counter.create ~threads;
      }
    in
    (* Seed each local free list with its fair share; everything else goes
       to the global stack so any thread can reach it. A slot parked in
       another thread's local list is still unreachable until that thread
       spills, so [Exhausted] is a per-thread-visibility condition, not a
       global-emptiness one. *)
    let next_local = ref 0 in
    for id = capacity - 1 downto 0 do
      let l = t.locals.(!next_local mod threads) in
      if l.count < t.fair_share && !next_local < threads * t.fair_share then begin
        t.stack_next.(id) <- l.head;
        l.head <- id;
        l.count <- l.count + 1;
        incr next_local
      end
      else global_push t id
    done;
    t

  let capacity t = t.capacity
  let threads t = t.threads

  (* -- alloc / free ------------------------------------------------------ *)

  (** Pop a free slot for thread [tid]; refills from the global stack when
      the local list is empty. Raises {!Exhausted} if no slot exists. *)
  let alloc t ~tid =
    let l = t.locals.(tid) in
    let id =
      if l.head >= 0 then begin
        let id = l.head in
        l.head <- t.stack_next.(id);
        l.count <- l.count - 1;
        id
      end
      else global_pop t
    in
    if id < 0 then raise Exhausted;
    assert (t.state.(id) = state_free);
    t.state.(id) <- state_live;
    t.index.(id) <- 0;
    Mp_util.Striped_counter.incr t.live ~tid;
    Mp_util.Striped_counter.incr t.allocs ~tid;
    id

  (** Return slot [id] to thread [tid]'s free list (spilling half to the
      global stack when the local list is over its fair share). *)
  let free t ~tid id =
    assert (t.state.(id) <> state_free);
    record_history id "free";
    t.state.(id) <- state_free;
    t.incarnation.(id) <- t.incarnation.(id) + 1;
    Mp_util.Striped_counter.add t.live ~tid (-1);
    Mp_util.Striped_counter.incr t.frees ~tid;
    let l = t.locals.(tid) in
    if l.count >= t.fair_share * 2 then
      (* Spill to keep producer/consumer thread pairs balanced. *)
      for _ = 1 to t.fair_share do
        let spill = l.head in
        l.head <- t.stack_next.(spill);
        l.count <- l.count - 1;
        global_push t spill
      done;
    t.stack_next.(id) <- l.head;
    l.head <- id;
    l.count <- l.count + 1

  (* -- metadata accessors ------------------------------------------------ *)

  let state t id = t.state.(id)
  let is_free t id = t.state.(id) = state_free

  let mark_retired t id =
    assert (t.state.(id) = state_live);
    record_history id "retire";
    t.state.(id) <- state_retired

  let index t id = t.index.(id)
  let set_index t id v = t.index.(id) <- v
  let birth t id = t.birth.(id)
  let set_birth t id v = t.birth.(id) <- v
  let death t id = t.death.(id)
  let set_death t id v = t.death.(id) <- v
  let incarnation t id = t.incarnation.(id)

  (** Canonical (unmarked) handle for slot [id], embedding the top 16 bits
      of its MP index. *)
  let handle t id =
    Handle.make ~inc:t.incarnation.(id) ~id ~idx16:(Handle.idx16_of_index t.index.(id))
      ~mark:0 ()

  (** Record a use-after-free access to slot [id] if it is free. *)
  let note_access t id =
    if t.check_access && t.state.(id) = state_free then begin
      Atomic.incr t.violations;
      if !trap_on_violation then begin
        (match Hashtbl.find_opt history id with
        | Some h -> prerr_endline h
        | None -> ());
        raise (Use_after_free id)
      end
    end

  (* -- statistics -------------------------------------------------------- *)

  let violations t = Atomic.get t.violations
  let live_count t = Mp_util.Striped_counter.sum t.live
  let alloc_count t = Mp_util.Striped_counter.sum t.allocs
  let free_count t = Mp_util.Striped_counter.sum t.frees
end

type 'a t = {
  core : Core.t;
  payload : 'a array;
}

let create ~capacity ~threads ?(check_access = false) make_payload =
  let core = Core.create ~capacity ~threads ~check_access () in
  { core; payload = Array.init capacity make_payload }

let core t = t.core
let capacity t = t.core.Core.capacity

(** Payload of slot [id]. With [check_access], accessing a free slot is
    recorded as a use-after-free violation (the access still returns the
    stale payload, as real hardware would). *)
let get t id =
  Core.note_access t.core id;
  t.payload.(id)

let unsafe_get t id = t.payload.(id)

let alloc t ~tid = Core.alloc t.core ~tid
let free t ~tid id = Core.free t.core ~tid id
let handle t id = Core.handle t.core id
let violations t = Core.violations t.core
let live_count t = Core.live_count t.core
