(** Manual-memory node pool — the substrate that makes the SMR problem
    real in a garbage-collected language. Payloads are pre-allocated;
    [alloc]/[free] recycle slot ids; with [check_access] armed, touching a
    freed slot's payload is recorded (or trapped) as a use-after-free.
    See the implementation header for the full design discussion. *)

exception Exhausted

(** Slot life-cycle states. *)
val state_free : int

val state_live : int
val state_retired : int

(** Payload-agnostic layer: slot states, free lists and the per-node
    metadata words SMR schemes piggyback on nodes (MP index, birth and
    death epochs). *)
module Core : sig
  type t

  exception Use_after_free of int

  (** When true (or [MP_TRAP_UAF=1]), a detected use-after-free raises
      {!Use_after_free} instead of only counting. *)
  val trap_on_violation : bool ref

  val create : capacity:int -> threads:int -> ?check_access:bool -> unit -> t
  val capacity : t -> int
  val threads : t -> int

  (** Pop a free slot for [tid]; raises {!Exhausted} when neither the
      thread's local free list nor the global stack has one. *)
  val alloc : t -> tid:int -> int

  (** Return a slot; spills to the global stack when the local free list
      exceeds its fair share. *)
  val free : t -> tid:int -> int -> unit

  val state : t -> int -> int
  val is_free : t -> int -> bool

  (** Live → Retired transition (asserts the slot was live). *)
  val mark_retired : t -> int -> unit

  val index : t -> int -> int
  val set_index : t -> int -> int -> unit
  val birth : t -> int -> int
  val set_birth : t -> int -> int -> unit
  val death : t -> int -> int
  val set_death : t -> int -> int -> unit

  (** Reuse counter of the slot; embedded in handles as the ABA tag. *)
  val incarnation : t -> int -> int

  (** Canonical unmarked handle for a slot (id, idx16 of its index,
      current incarnation). *)
  val handle : t -> int -> Handle.t

  (** Record (and possibly trap) a use-after-free if the slot is free. *)
  val note_access : t -> int -> unit

  val violations : t -> int
  val live_count : t -> int
  val alloc_count : t -> int
  val free_count : t -> int
end

(** A pool with client payloads of type ['a] attached to each slot. *)
type 'a t

(** [create ~capacity ~threads ?check_access make_payload] pre-allocates
    [capacity] payloads with [make_payload slot_id]. *)
val create : capacity:int -> threads:int -> ?check_access:bool -> (int -> 'a) -> 'a t

val core : 'a t -> Core.t
val capacity : 'a t -> int

(** Payload access with use-after-free detection. *)
val get : 'a t -> int -> 'a

(** Payload access without the check (for code that provably touches only
    live or self-retired slots, and for test forensics). *)
val unsafe_get : 'a t -> int -> 'a

val alloc : 'a t -> tid:int -> int
val free : 'a t -> tid:int -> int -> unit
val handle : 'a t -> int -> Handle.t
val violations : 'a t -> int
val live_count : 'a t -> int
