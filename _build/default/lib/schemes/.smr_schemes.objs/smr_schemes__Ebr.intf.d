lib/schemes/ebr.mli: Smr_core
