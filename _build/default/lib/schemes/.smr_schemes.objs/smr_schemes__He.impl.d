lib/schemes/he.ml: Array Atomic Config Counters Epoch Mempool Retired Smr_core Smr_intf
