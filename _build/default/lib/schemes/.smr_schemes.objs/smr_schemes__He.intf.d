lib/schemes/he.mli: Smr_core
