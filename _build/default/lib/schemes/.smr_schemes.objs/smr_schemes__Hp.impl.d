lib/schemes/hp.ml: Array Atomic Config Counters Handle Mempool Retired Smr_core Smr_intf
