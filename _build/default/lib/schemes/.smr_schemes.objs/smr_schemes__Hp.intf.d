lib/schemes/hp.mli: Smr_core
