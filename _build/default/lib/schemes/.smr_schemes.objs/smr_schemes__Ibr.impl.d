lib/schemes/ibr.ml: Array Atomic Config Counters Epoch Handle Mempool Retired Smr_core Smr_intf
