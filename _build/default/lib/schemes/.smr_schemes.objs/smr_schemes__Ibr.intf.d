lib/schemes/ibr.mli: Smr_core
