lib/schemes/leaky.ml: Array Atomic Config Counters Mempool Retired Smr_core Smr_intf
