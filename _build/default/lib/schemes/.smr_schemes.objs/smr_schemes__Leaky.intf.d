lib/schemes/leaky.mli: Smr_core
