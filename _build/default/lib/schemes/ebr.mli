(** See the implementation header for the algorithm description. *)

include Smr_core.Smr_intf.S
