(** Hazard eras (Ramalhete & Correia, 2017).

    HP's interface with EBR's cheap protection: instead of publishing node
    addresses, a thread publishes the global *era* in which it accesses
    nodes. Nodes carry a birth–death era interval; a retired node is
    reclaimable when no published era falls inside its interval. Multiple
    nodes are protected by one published era as long as the global era
    does not advance, which removes most of HP's fence traffic. Robust but
    not bounded: everything alive when a thread stalls stays protected. *)

open Smr_core

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  epoch : Epoch.t;
  slots : int Atomic.t array array; (* published eras, 0 = none *)
  empty_freq : int;
  epoch_freq : int;
  n_slots : int;
  threads : int;
}

type thread = {
  shared : shared;
  tid : int;
  retired : Retired.t;
  mutable retire_count : int;
  mutable alloc_count : int;
}

type t = {
  s : shared;
  per_thread : thread array;
}

let no_era = 0
let name = "he"

let properties =
  {
    Smr_intf.full_name = "Hazard eras";
    wasted_memory = Smr_intf.Robust;
    per_node_words = 2;
    self_contained = true;
    needs_per_reference_calls = true;
  }

let create ~pool ~threads (config : Config.t) =
  let config = Config.validate config in
  let s =
    {
      pool;
      counters = Counters.create ~threads;
      epoch = Epoch.create ~threads;
      slots = Array.init threads (fun _ -> Array.init config.slots (fun _ -> Atomic.make no_era));
      empty_freq = config.empty_freq;
      epoch_freq = config.epoch_freq;
      n_slots = config.slots;
      threads;
    }
  in
  let per_thread =
    Array.init threads (fun tid ->
        { shared = s; tid; retired = Retired.create (); retire_count = 0; alloc_count = 0 })
  in
  { s; per_thread }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid
let start_op (_ : thread) = ()

let end_op th =
  let mine = th.shared.slots.(th.tid) in
  for refno = 0 to th.shared.n_slots - 1 do
    if Atomic.get mine.(refno) <> no_era then Atomic.set mine.(refno) no_era
  done;
  Counters.on_fence th.shared.counters ~tid:th.tid

let alloc th =
  th.alloc_count <- th.alloc_count + 1;
  if th.alloc_count mod th.shared.epoch_freq = 0 then Epoch.advance th.shared.epoch;
  let id = Mempool.Core.alloc th.shared.pool ~tid:th.tid in
  Mempool.Core.set_birth th.shared.pool id (Epoch.current th.shared.epoch);
  id

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.shared.pool id index;
  id

(* Top-level so a read allocates no closure. *)
let rec read_loop th slot link prev_era =
  let w = Atomic.get link in
  let era = Epoch.current th.shared.epoch in
  if era = prev_era then w
  else begin
    Atomic.set slot era;
    Counters.on_fence th.shared.counters ~tid:th.tid;
    read_loop th slot link era
  end

(** HE's get_protected: publish the current era, re-read the link, and
    retry while the era moves. If the published era is already current the
    read is fence-free — the common case that makes HE fast. *)
let read th ~refno link =
  let slot = th.shared.slots.(th.tid).(refno) in
  read_loop th slot link (Atomic.get slot)

let unprotect th ~refno = Atomic.set th.shared.slots.(th.tid).(refno) no_era
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.shared.pool id

(* A retired node conflicts with a published era [e] iff
   birth <= e <= death. Eras are snapshotted once per pass. *)
let empty th =
  let s = th.shared in
  let total = s.threads * s.n_slots in
  let snap = Array.make total no_era in
  let k = ref 0 in
  for t = 0 to s.threads - 1 do
    for r = 0 to s.n_slots - 1 do
      let e = Atomic.get s.slots.(t).(r) in
      if e <> no_era then begin
        snap.(!k) <- e;
        incr k
      end
    done
  done;
  let n = !k in
  let keep id =
    let birth = Mempool.Core.birth s.pool id and death = Mempool.Core.death s.pool id in
    let rec conflict i = i < n && ((snap.(i) >= birth && snap.(i) <= death) || conflict (i + 1)) in
    conflict 0
  in
  let released =
    Retired.filter_in_place th.retired ~keep ~release:(fun id -> Mempool.Core.free s.pool ~tid:th.tid id)
  in
  Counters.on_reclaim s.counters ~tid:th.tid released

let retire th id =
  let s = th.shared in
  Mempool.Core.mark_retired s.pool id;
  Mempool.Core.set_death s.pool id (Epoch.current s.epoch);
  Retired.push th.retired id;
  Counters.on_retire s.counters ~tid:th.tid;
  th.retire_count <- th.retire_count + 1;
  if th.retire_count mod s.empty_freq = 0 then empty th

let flush th = empty th
let stats t = Counters.stats t.s.counters
