(** Hazard pointers (Michael, 2004).

    The canonical pointer-based scheme: before dereferencing, a thread
    publishes the target node in one of its hazard-pointer slots, issues a
    fence (implicit in [Atomic.set]), and validates that the link still
    points to the node. Wasted memory is bounded by O(H·T) but every
    pointer dereference pays the publish/validate protocol.

    Includes the two optimizations the paper applied to the IBR framework
    (§6): [empty] scans a snapshot of all hazard pointers instead of
    re-reading them per retired node, and end-of-operation clearing is
    accounted as a single fence. *)

open Smr_core

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  slots : int Atomic.t array array; (* [thread].[refno], node id or -1 *)
  empty_freq : int;
  n_slots : int;
  threads : int;
}

type thread = {
  shared : shared;
  tid : int;
  retired : Retired.t;
  mutable retire_count : int;
  scratch : int array ref; (* snapshot buffer reused across empty() calls *)
}

type t = {
  s : shared;
  per_thread : thread array;
}

let no_hazard = -1
let name = "hp"

let properties =
  {
    Smr_intf.full_name = "Hazard pointers";
    wasted_memory = Smr_intf.Bounded;
    per_node_words = 0;
    self_contained = true;
    needs_per_reference_calls = true;
  }

let create ~pool ~threads (config : Config.t) =
  let config = Config.validate config in
  let s =
    {
      pool;
      counters = Counters.create ~threads;
      slots = Array.init threads (fun _ -> Array.init config.slots (fun _ -> Atomic.make no_hazard));
      empty_freq = config.empty_freq;
      n_slots = config.slots;
      threads;
    }
  in
  let per_thread =
    Array.init threads (fun tid ->
        {
          shared = s;
          tid;
          retired = Retired.create ();
          retire_count = 0;
          scratch = ref (Array.make (threads * config.slots) no_hazard);
        })
  in
  { s; per_thread }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid
let start_op (_ : thread) = ()

(* Clearing H slots at operation end; the paper's optimized HP issues a
   single fence for the batch, so we count one. *)
let end_op th =
  let mine = th.shared.slots.(th.tid) in
  for refno = 0 to th.shared.n_slots - 1 do
    if Atomic.get mine.(refno) <> no_hazard then Atomic.set mine.(refno) no_hazard
  done;
  Counters.on_fence th.shared.counters ~tid:th.tid

let alloc th = Mempool.Core.alloc th.shared.pool ~tid:th.tid

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.shared.pool id index;
  id

(* Top-level so a read allocates no closure. *)
let rec read_loop th slot link =
  let w = Atomic.get link in
  if Handle.is_null w then w
  else begin
    let id = Handle.id w in
    if Atomic.get slot = id then w
    else begin
      Atomic.set slot id;
      Counters.on_fence th.shared.counters ~tid:th.tid;
      if Atomic.get link = w then w else read_loop th slot link
    end
  end

(** The protect/validate loop. Publishing the hazard is one fence; the
    loop re-runs while the link changes under us (some other thread
    progressed, so the scheme stays nonblocking). *)
let read th ~refno link = read_loop th th.shared.slots.(th.tid).(refno) link

let unprotect th ~refno = Atomic.set th.shared.slots.(th.tid).(refno) no_hazard
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.shared.pool id

(* Reclamation: snapshot every hazard slot once, sort, then release any
   retired node not present in the snapshot. *)
let empty th =
  let s = th.shared in
  let total = s.threads * s.n_slots in
  if Array.length !(th.scratch) < total then th.scratch := Array.make total no_hazard;
  let snap = !(th.scratch) in
  let k = ref 0 in
  for t = 0 to s.threads - 1 do
    for r = 0 to s.n_slots - 1 do
      let v = Atomic.get s.slots.(t).(r) in
      if v <> no_hazard then begin
        snap.(!k) <- v;
        incr k
      end
    done
  done;
  let n = !k in
  let sub = Array.sub snap 0 n in
  Array.sort compare sub;
  let protected_ id =
    let rec bsearch lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if sub.(mid) = id then true else if sub.(mid) < id then bsearch (mid + 1) hi else bsearch lo mid
    in
    bsearch 0 n
  in
  let released =
    Retired.filter_in_place th.retired ~keep:protected_ ~release:(fun id ->
        Mempool.Core.free s.pool ~tid:th.tid id)
  in
  Counters.on_reclaim s.counters ~tid:th.tid released

let retire th id =
  Mempool.Core.mark_retired th.shared.pool id;
  Retired.push th.retired id;
  Counters.on_retire th.shared.counters ~tid:th.tid;
  th.retire_count <- th.retire_count + 1;
  if th.retire_count mod th.shared.empty_freq = 0 then empty th

let flush th = empty th
let stats t = Counters.stats t.s.counters
