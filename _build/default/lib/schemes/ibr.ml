(** Interval-based reclamation (Wen et al., 2018) — 2GE variant.

    No per-reference PPVs at all: each thread maintains one epoch interval
    [lower, upper] covering the birth epochs of every node it may hold. A
    retired node is reclaimable if, for every thread, its whole lifetime
    lies outside the thread's interval. Cheaper than HE (an era change
    updates one interval, not every PPV); robust but not bounded. *)

open Smr_core

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  epoch : Epoch.t;
  lower : int Atomic.t array;
  upper : int Atomic.t array;
  empty_freq : int;
  epoch_freq : int;
  threads : int;
}

type thread = {
  shared : shared;
  tid : int;
  retired : Retired.t;
  mutable retire_count : int;
  mutable alloc_count : int;
}

type t = {
  s : shared;
  per_thread : thread array;
}

let name = "ibr"

(* Idle interval: empty (lower = +inf, upper = -1) so every node passes. *)
let idle_lower = max_int
let idle_upper = -1

let properties =
  {
    Smr_intf.full_name = "Interval-based reclamation (2GE)";
    wasted_memory = Smr_intf.Robust;
    per_node_words = 3;
    self_contained = true;
    needs_per_reference_calls = false;
  }

let create ~pool ~threads (config : Config.t) =
  let config = Config.validate config in
  let s =
    {
      pool;
      counters = Counters.create ~threads;
      epoch = Epoch.create ~threads;
      lower = Array.init threads (fun _ -> Atomic.make idle_lower);
      upper = Array.init threads (fun _ -> Atomic.make idle_upper);
      empty_freq = config.empty_freq;
      epoch_freq = config.epoch_freq;
      threads;
    }
  in
  let per_thread =
    Array.init threads (fun tid ->
        { shared = s; tid; retired = Retired.create (); retire_count = 0; alloc_count = 0 })
  in
  { s; per_thread }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid

let start_op th =
  let s = th.shared in
  let e = Epoch.current s.epoch in
  Atomic.set s.lower.(th.tid) e;
  Atomic.set s.upper.(th.tid) e;
  Counters.on_fence s.counters ~tid:th.tid

let end_op th =
  let s = th.shared in
  Atomic.set s.lower.(th.tid) idle_lower;
  Atomic.set s.upper.(th.tid) idle_upper

let alloc th =
  th.alloc_count <- th.alloc_count + 1;
  if th.alloc_count mod th.shared.epoch_freq = 0 then Epoch.advance th.shared.epoch;
  let id = Mempool.Core.alloc th.shared.pool ~tid:th.tid in
  Mempool.Core.set_birth th.shared.pool id (Epoch.current th.shared.epoch);
  id

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.shared.pool id index;
  id

(** Reads stretch the upper endpoint to cover the target's birth epoch
    (read from the node metadata — the role of IBR's pointer tag). The
    update only fires when the global epoch moved since the interval was
    last stretched, so the overhead is per-operation, not per-dereference.
    Safety for chains of retired nodes follows from the structures'
    "a retired node points only at nodes retired no earlier" invariant,
    exactly as in the IBR paper. *)
let read th ~refno:(_ : int) link =
  let s = th.shared in
  let w = Atomic.get link in
  if not (Handle.is_null w) then begin
    let birth = Mempool.Core.birth s.pool (Handle.id w) in
    let up = s.upper.(th.tid) in
    if Atomic.get up < birth then begin
      Atomic.set up (max birth (Epoch.current s.epoch));
      Counters.on_fence s.counters ~tid:th.tid
    end
  end;
  w

let unprotect (_ : thread) ~refno:(_ : int) = ()
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.shared.pool id

(* Node [birth, death] conflicts with interval [lo, hi] unless
   death < lo or birth > hi. *)
let empty th =
  let s = th.shared in
  let lo = Array.map Atomic.get s.lower in
  let hi = Array.map Atomic.get s.upper in
  let keep id =
    let birth = Mempool.Core.birth s.pool id and death = Mempool.Core.death s.pool id in
    let rec conflict t =
      t < s.threads && ((not (death < lo.(t) || birth > hi.(t))) || conflict (t + 1))
    in
    conflict 0
  in
  let released =
    Retired.filter_in_place th.retired ~keep ~release:(fun id -> Mempool.Core.free s.pool ~tid:th.tid id)
  in
  Counters.on_reclaim s.counters ~tid:th.tid released

let retire th id =
  let s = th.shared in
  Mempool.Core.mark_retired s.pool id;
  Mempool.Core.set_death s.pool id (Epoch.current s.epoch);
  Retired.push th.retired id;
  Counters.on_retire s.counters ~tid:th.tid;
  th.retire_count <- th.retire_count + 1;
  if th.retire_count mod s.empty_freq = 0 then empty th

let flush th = empty th
let stats t = Counters.stats t.s.counters
