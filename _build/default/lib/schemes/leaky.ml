(** "No reclamation" baseline: retired nodes are never freed.

    Zero run-time overhead (reads are plain loads), unbounded wasted
    memory. Serves as the throughput ceiling and the wasted-memory worst
    case in the evaluation. *)

open Smr_core

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
}

type thread = {
  shared : shared;
  tid : int;
  retired : Retired.t;
}

type t = {
  s : shared;
  per_thread : thread array;
}

let name = "none"

let properties =
  {
    Smr_intf.full_name = "No reclamation (leak)";
    wasted_memory = Smr_intf.Unbounded;
    per_node_words = 0;
    self_contained = true;
    needs_per_reference_calls = false;
  }

let create ~pool ~threads (_ : Config.t) =
  let s = { pool; counters = Counters.create ~threads } in
  { s; per_thread = Array.init threads (fun tid -> { shared = s; tid; retired = Retired.create () }) }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid
let start_op (_ : thread) = ()
let end_op (_ : thread) = ()
let alloc th = Mempool.Core.alloc th.shared.pool ~tid:th.tid

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.shared.pool id index;
  id

let retire th id =
  Mempool.Core.mark_retired th.shared.pool id;
  Retired.push th.retired id;
  Counters.on_retire th.shared.counters ~tid:th.tid

let read (_ : thread) ~refno:(_ : int) link = Atomic.get link
let unprotect (_ : thread) ~refno:(_ : int) = ()
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.shared.pool id
let flush (_ : thread) = ()
let stats t = Counters.stats t.s.counters
