lib/smr_core/config.ml: Handle
