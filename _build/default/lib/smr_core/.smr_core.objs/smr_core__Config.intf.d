lib/smr_core/config.mli:
