lib/smr_core/counters.ml: Mp_util Smr_intf
