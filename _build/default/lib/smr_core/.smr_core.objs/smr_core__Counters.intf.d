lib/smr_core/counters.mli: Mp_util Smr_intf
