lib/smr_core/epoch.ml: Array Atomic
