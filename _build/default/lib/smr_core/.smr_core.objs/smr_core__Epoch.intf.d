lib/smr_core/epoch.mli: Atomic
