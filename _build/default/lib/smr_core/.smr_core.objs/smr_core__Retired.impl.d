lib/smr_core/retired.ml: Array
