lib/smr_core/retired.mli:
