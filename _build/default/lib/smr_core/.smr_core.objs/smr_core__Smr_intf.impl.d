lib/smr_core/smr_intf.ml: Atomic Config Handle Mempool
