(** Striped run-time counters shared by all scheme implementations. *)

module Sc = Mp_util.Striped_counter

type t = {
  wasted : Sc.t;
  fences : Sc.t;
  reclaimed : Sc.t;
  retired_total : Sc.t;
  hp_fallbacks : Sc.t;
}

let create ~threads =
  {
    wasted = Sc.create ~threads;
    fences = Sc.create ~threads;
    reclaimed = Sc.create ~threads;
    retired_total = Sc.create ~threads;
    hp_fallbacks = Sc.create ~threads;
  }

let stats t : Smr_intf.stats =
  {
    wasted = Sc.sum t.wasted;
    fences = Sc.sum t.fences;
    reclaimed = Sc.sum t.reclaimed;
    retired_total = Sc.sum t.retired_total;
    hp_fallbacks = Sc.sum t.hp_fallbacks;
  }

let on_retire t ~tid =
  Sc.incr t.wasted ~tid;
  Sc.incr t.retired_total ~tid

let on_reclaim t ~tid n =
  Sc.add t.wasted ~tid (-n);
  Sc.add t.reclaimed ~tid n

let on_fence t ~tid = Sc.incr t.fences ~tid
