(** Thread-local retired list: a growable vector of node ids.

    Retired nodes wait here until a reclamation pass ([empty] in the paper)
    proves no thread protects them. [filter_in_place] keeps the nodes the
    predicate rejects for reclamation and reports how many were released;
    order is not preserved (swap-with-last), so passes are O(n). *)

type t = {
  mutable ids : int array;
  mutable len : int;
}

let create ?(initial_capacity = 64) () = { ids = Array.make initial_capacity (-1); len = 0 }

let length t = t.len

let push t id =
  if t.len = Array.length t.ids then begin
    let bigger = Array.make (2 * Array.length t.ids) (-1) in
    Array.blit t.ids 0 bigger 0 t.len;
    t.ids <- bigger
  end;
  t.ids.(t.len) <- id;
  t.len <- t.len + 1

(** [filter_in_place t ~keep ~release] retains ids for which [keep] is
    true; every dropped id is passed to [release]. Returns the number of
    released ids. *)
let filter_in_place t ~keep ~release =
  let released = ref 0 in
  let i = ref 0 in
  while !i < t.len do
    let id = t.ids.(!i) in
    if keep id then incr i
    else begin
      release id;
      incr released;
      t.len <- t.len - 1;
      t.ids.(!i) <- t.ids.(t.len)
    end
  done;
  !released

let iter t f =
  for i = 0 to t.len - 1 do
    f t.ids.(i)
  done

let clear t = t.len <- 0
