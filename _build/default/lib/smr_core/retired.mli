(** Thread-local retired list: a growable vector of node ids with an
    O(n) swap-with-last filtering pass. *)

type t

val create : ?initial_capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit

(** Keep ids satisfying [keep]; call [release] on each dropped id;
    return how many were released. Order is not preserved. *)
val filter_in_place : t -> keep:(int -> bool) -> release:(int -> unit) -> int

val iter : t -> (int -> unit) -> unit
val clear : t -> unit
