lib/util/backoff.ml: Domain
