lib/util/backoff.mli:
