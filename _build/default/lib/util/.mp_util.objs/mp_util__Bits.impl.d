lib/util/bits.ml:
