lib/util/keygen.ml: Array Float Rng
