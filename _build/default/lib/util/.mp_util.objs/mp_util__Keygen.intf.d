lib/util/keygen.mli: Rng
