lib/util/rng.mli:
