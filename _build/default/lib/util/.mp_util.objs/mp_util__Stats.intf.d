lib/util/stats.mli:
