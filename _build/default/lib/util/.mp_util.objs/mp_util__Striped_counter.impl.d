lib/util/striped_counter.ml: Array
