lib/util/striped_counter.mli:
