(** Truncated exponential backoff for CAS retry loops.

    [Domain.cpu_relax] is issued an exponentially growing number of times,
    capped at [max_spins], to reduce contention without descheduling. *)

type t = { mutable spins : int; max_spins : int }

let default_max_spins = 1024

let create ?(max_spins = default_max_spins) () = { spins = 1; max_spins }

let reset t = t.spins <- 1

(** Spin for the current budget, then double it (up to the cap). *)
let once t =
  for _ = 1 to t.spins do
    Domain.cpu_relax ()
  done;
  if t.spins < t.max_spins then t.spins <- t.spins * 2
