(** Truncated exponential backoff for CAS retry loops. *)

type t

val default_max_spins : int
val create : ?max_spins:int -> unit -> t
val reset : t -> unit

(** Spin for the current budget, then double it (up to the cap). *)
val once : t -> unit
