(** Small bit tricks used by the histogram. *)

(** Count of leading zeros of a positive int (63-bit OCaml ints; the sign
    bit is excluded, so [clz 1 = 62]). Undefined for [n <= 0]. *)
let clz n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc - 1) in
  go n 63
