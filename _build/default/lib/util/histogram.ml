(** Log-scale latency histogram: power-of-two nanosecond buckets with four
    linear sub-buckets each, giving ~19% worst-case relative error on
    percentile reads with a fixed 256-slot footprint and allocation-free
    recording. *)

let sub_bits = 2
let sub = 1 lsl sub_bits
let slots = 64 * sub

type t = {
  buckets : int array;
  mutable count : int;
  mutable max_ns : int;
}

let create () = { buckets = Array.make slots 0; count = 0; max_ns = 0 }

let slot_of_ns ns =
  if ns < sub then ns
  else begin
    let msb = 62 - Bits.clz ns in
    (msb lsl sub_bits) lor ((ns lsr (msb - sub_bits)) land (sub - 1))
  end

(** Record a duration in seconds. *)
let record t seconds =
  let ns = int_of_float (seconds *. 1e9) in
  let ns = if ns < 0 then 0 else ns in
  let s = slot_of_ns ns in
  t.buckets.(if s >= slots then slots - 1 else s) <- t.buckets.(min s (slots - 1)) + 1;
  t.count <- t.count + 1;
  if ns > t.max_ns then t.max_ns <- ns

let count t = t.count
let max_ns t = t.max_ns

(** Representative (lower-bound) nanoseconds of a slot. *)
let ns_of_slot s =
  if s < sub then s
  else begin
    let msb = s lsr sub_bits in
    let frac = s land (sub - 1) in
    (1 lsl msb) lor (frac lsl (msb - sub_bits))
  end

(** Approximate [p]-th percentile in nanoseconds; [p] in [0, 100]. *)
let percentile_ns t p =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let rank = max 1 (min t.count rank) in
    let rec scan s acc =
      if s >= slots then t.max_ns
      else
        let acc = acc + t.buckets.(s) in
        if acc >= rank then ns_of_slot s else scan (s + 1) acc
    in
    scan 0 0
  end

let merge_into ~into t =
  for s = 0 to slots - 1 do
    into.buckets.(s) <- into.buckets.(s) + t.buckets.(s)
  done;
  into.count <- into.count + t.count;
  if t.max_ns > into.max_ns then into.max_ns <- t.max_ns
