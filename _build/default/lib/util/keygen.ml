(** Workload key generators.

    The paper draws uniformly random integer keys from a range of size [2S]
    for a structure initialized with [S] keys. A zipfian generator is also
    provided for skew experiments beyond the paper's workloads. *)

type t =
  | Uniform of int (* range size *)
  | Zipf of { range : int; alpha : float; cdf : float array }
  | Ascending of { mutable next : int } (* worst case for MP indices, Fig. 7a *)

let uniform ~range = Uniform range

(** Zipfian over [0, range) with exponent [alpha]; the CDF is precomputed,
    so creation is O(range) and sampling is O(log range). *)
let zipf ~range ~alpha =
  assert (range > 0);
  let weights = Array.init range (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) alpha) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make range 0.0 in
  let acc = ref 0.0 in
  for i = 0 to range - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  Zipf { range; alpha; cdf }

let ascending ?(start = 0) () = Ascending { next = start }

let next t rng =
  match t with
  | Uniform range -> Rng.below rng range
  | Zipf { range; cdf; _ } ->
    let u = Rng.float rng in
    let rec bsearch lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then bsearch (mid + 1) hi else bsearch lo mid
    in
    let i = bsearch 0 (range - 1) in
    i
  | Ascending s ->
    let k = s.next in
    s.next <- s.next + 1;
    k
