(** Workload key generators: uniform, zipfian, and ascending (the MP
    index-collision worst case of Figure 7a). *)

type t

val uniform : range:int -> t

(** Zipfian over [0, range) with exponent [alpha]; O(range) setup,
    O(log range) sampling. *)
val zipf : range:int -> alpha:float -> t

val ascending : ?start:int -> unit -> t
val next : t -> Rng.t -> int
