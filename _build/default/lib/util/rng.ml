(** SplitMix64 pseudo-random number generator.

    Each thread of a benchmark owns an independent generator seeded from a
    master seed and the thread id, so runs are reproducible and there is no
    shared RNG state to contend on. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(** Derive a stream for thread [tid] from a master [seed]; streams are
    decorrelated by the golden-gamma increment. *)
let split ~seed ~tid =
  { state = Int64.add (Int64.of_int seed) (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (tid + 1))) }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [next_int t] is a uniformly distributed non-negative OCaml int. *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(** [below t n] is uniform in [0, n). Requires [n > 0]. *)
let below t n =
  assert (n > 0);
  next_int t mod n

(** [float t] is uniform in [0, 1). *)
let float t = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) *. 0x1p-53

(** [bool t] is a fair coin flip. *)
let bool t = Int64.logand (next_int64 t) 1L = 1L
