(** Small descriptive statistics for the harness and reports. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float
val min_max : float array -> float * float

(** Nearest-rank percentile on a sorted copy; [p] in [0, 100]. *)
val percentile : float array -> float -> float

(** Wall-clock seconds. *)
val now : unit -> float
