(** Per-thread striped counter.

    Each thread increments a private cell; [sum] aggregates all cells. The
    cells are plain mutable ints wrapped in single-field records so each
    lives in its own heap block (OCaml offers no direct control over cache
    line placement; a dedicated block per stripe is the closest idiom). *)

type cell = { mutable v : int }

type t = { cells : cell array }

let create ~threads = { cells = Array.init threads (fun _ -> { v = 0 }) }

let incr t ~tid = t.cells.(tid).v <- t.cells.(tid).v + 1

let add t ~tid n = t.cells.(tid).v <- t.cells.(tid).v + n

let get t ~tid = t.cells.(tid).v

let sum t = Array.fold_left (fun acc c -> acc + c.v) 0 t.cells

let reset t = Array.iter (fun c -> c.v <- 0) t.cells
