(* Long-running safety soak across the full (structure × scheme) matrix
   with the use-after-free detector armed. Not part of `dune runtest` —
   run manually:  dune exec stress/soak.exe -- [minutes]  *)

let structures : (string * ((module Smr_core.Smr_intf.S) -> (module Dstruct.Set_intf.SET))) list =
  [
    ("list", fun (module S) -> (module Dstruct.Michael_list.Make (S)));
    ("skiplist", fun (module S) -> (module Dstruct.Skiplist.Make (S)));
    ("bst", fun (module S) -> (module Dstruct.Nm_bst.Make (S)));
  ]

let schemes : (string * (module Smr_core.Smr_intf.S)) list =
  [
    ("mp", (module Mp.Margin_ptr));
    ("hp", (module Smr_schemes.Hp));
    ("ebr", (module Smr_schemes.Ebr));
    ("he", (module Smr_schemes.He));
    ("ibr", (module Smr_schemes.Ibr));
  ]

let round (module SET : Dstruct.Set_intf.SET) ~seed =
  let threads = 4 and ops = 20_000 in
  let range = if seed mod 2 = 0 then 256 else 64 in
  let config = Smr_core.Config.default ~threads in
  let t =
    SET.create ~threads ~capacity:((range * 8) + (ops * threads) + 1024) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed ~tid in
            for i = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              if i mod 1000 = 0 then
                ignore (SET.contains_paused s k ~pause:(fun () -> Unix.sleepf 0.0005) : bool)
              else
                match Mp_util.Rng.below rng 4 with
                | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                | 1 -> ignore (SET.remove s k : bool)
                | _ -> ignore (SET.contains s k : bool)
            done;
            SET.flush s))
  in
  Array.iter Domain.join domains;
  SET.check t;
  if SET.violations t <> 0 then failwith (SET.name ^ ": use-after-free detected")

let () =
  let minutes = try float_of_string Sys.argv.(1) with _ -> 5.0 in
  let t_end = Unix.gettimeofday () +. (minutes *. 60.0) in
  let seed = ref 0 in
  while Unix.gettimeofday () < t_end do
    incr seed;
    List.iter
      (fun (ds_name, make) ->
        List.iter
          (fun (s_name, s) ->
            round (make s) ~seed:(!seed * 7919);
            Printf.printf "%s(%s) round %d ok\n%!" ds_name s_name !seed)
          schemes)
      structures
  done;
  print_endline "SOAK CLEAN"
