test/test_bounds.ml: Alcotest Atomic Domain Dstruct Mp Printf Smr_core Smr_schemes
