test/test_bst.ml: Alcotest Array Common Domain Dstruct Hashtbl Mp Mp_util Smr_core
