test/test_dta.ml: Alcotest Array Atomic Common Domain Dstruct Mp_util Printf Smr_core
