test/test_dta.mli:
