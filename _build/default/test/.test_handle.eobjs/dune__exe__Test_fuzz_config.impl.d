test/test_fuzz_config.ml: Alcotest Array Common Domain Dstruct List Mp_util Smr_core
