test/test_fuzz_config.mli:
