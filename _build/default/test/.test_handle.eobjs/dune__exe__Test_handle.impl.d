test/test_handle.ml: Alcotest Handle List QCheck QCheck_alcotest
