test/test_handle.mli:
