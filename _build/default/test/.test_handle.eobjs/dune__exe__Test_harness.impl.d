test/test_harness.ml: Alcotest List Mp_harness Mp_util Printf Smr_core
