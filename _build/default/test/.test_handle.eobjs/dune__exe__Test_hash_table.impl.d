test/test_hash_table.ml: Alcotest Array Domain Dstruct Hashtbl Mp Mp_util Smr_core Smr_schemes
