test/test_hash_table.mli:
