test/test_histogram.ml: Alcotest Float Gen List Mp_util Printf QCheck QCheck_alcotest
