test/test_integration.ml: Alcotest Array Domain Dstruct List Mp Mp_util Smr_core Smr_schemes Unix
