test/test_lincheck.ml: Alcotest Array Clock Domain Dstruct Gen Hashtbl Lincheck List Mp Mp_util QCheck QCheck_alcotest Recorder Smr_core Smr_schemes
