test/test_list.ml: Alcotest Common Dstruct Mempool Mp Printf Smr_core
