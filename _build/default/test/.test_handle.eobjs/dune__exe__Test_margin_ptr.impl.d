test/test_margin_ptr.ml: Alcotest Atomic Handle List Mempool Mp Mp_util Printf QCheck QCheck_alcotest Smr_core
