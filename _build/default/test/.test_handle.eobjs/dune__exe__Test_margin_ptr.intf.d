test/test_margin_ptr.mli:
