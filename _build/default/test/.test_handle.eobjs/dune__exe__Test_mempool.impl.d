test/test_mempool.ml: Alcotest Array Atomic Domain Handle List Mempool Mp_util Mutex Printf Queue
