test/test_mempool.mli:
