test/test_model.ml: Alcotest Common Dstruct Int List Printf QCheck QCheck_alcotest Set Smr_core String
