test/test_policies.ml: Alcotest Mempool Mp Mp_util Printf Smr_core
