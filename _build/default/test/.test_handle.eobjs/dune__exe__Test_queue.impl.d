test/test_queue.ml: Alcotest Array Atomic Domain Dstruct Hashtbl List Mp Smr_core Smr_schemes
