test/test_safety.ml: Alcotest Array Atomic Common Counters Domain Dstruct Handle List Mempool Mp_util Printf Smr_core Smr_intf
