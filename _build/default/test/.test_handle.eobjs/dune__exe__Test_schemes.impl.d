test/test_schemes.ml: Alcotest Atomic Handle List Mempool Mp Smr_core Smr_schemes
