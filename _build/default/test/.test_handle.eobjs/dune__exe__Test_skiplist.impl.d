test/test_skiplist.ml: Alcotest Array Common Domain Dstruct Mp Printf Smr_core
