test/test_smr_core.ml: Alcotest Array Domain List QCheck QCheck_alcotest Smr_core
