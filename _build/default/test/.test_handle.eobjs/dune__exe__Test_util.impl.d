test/test_util.ml: Alcotest Array Domain Gen List Mp_util QCheck QCheck_alcotest
