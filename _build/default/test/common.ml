(* Shared helpers for the data-structure test suites. *)

module Config = Smr_core.Config

let schemes : (string * (module Smr_core.Smr_intf.S)) list =
  [
    ("mp", (module Mp.Margin_ptr));
    ("hp", (module Smr_schemes.Hp));
    ("ebr", (module Smr_schemes.Ebr));
    ("he", (module Smr_schemes.He));
    ("ibr", (module Smr_schemes.Ibr));
    ("none", (module Smr_schemes.Leaky));
  ]

(* Sequential black-box correctness of the set interface. *)
let sequential_basics (module SET : Dstruct.Set_intf.SET) () =
  let t = SET.create ~threads:1 ~capacity:4096 ~check_access:true (Config.default ~threads:1) in
  let s = SET.session t ~tid:0 in
  Alcotest.(check bool) "empty contains" false (SET.contains s 7);
  Alcotest.(check bool) "insert 7" true (SET.insert s ~key:7 ~value:70);
  Alcotest.(check bool) "insert 3" true (SET.insert s ~key:3 ~value:30);
  Alcotest.(check bool) "insert 11" true (SET.insert s ~key:11 ~value:110);
  Alcotest.(check bool) "duplicate insert" false (SET.insert s ~key:7 ~value:0);
  Alcotest.(check bool) "contains 7" true (SET.contains s 7);
  Alcotest.(check bool) "contains 3" true (SET.contains s 3);
  Alcotest.(check bool) "absent 5" false (SET.contains s 5);
  Alcotest.(check (option int)) "find 3" (Some 30) (SET.find s 3);
  Alcotest.(check (option int)) "find absent" None (SET.find s 5);
  Alcotest.(check int) "size" 3 (SET.size t);
  Alcotest.(check bool) "remove 7" true (SET.remove s 7);
  Alcotest.(check bool) "remove absent" false (SET.remove s 7);
  Alcotest.(check bool) "gone" false (SET.contains s 7);
  Alcotest.(check int) "size after remove" 2 (SET.size t);
  SET.check t;
  SET.flush s;
  Alcotest.(check int) "no poison" 0 (SET.violations t)

let sequential_boundaries (module SET : Dstruct.Set_intf.SET) () =
  let t = SET.create ~threads:1 ~capacity:4096 ~check_access:true (Config.default ~threads:1) in
  let s = SET.session t ~tid:0 in
  (* smallest and largest permissible client keys, plus re-insertion *)
  Alcotest.(check bool) "insert 0" true (SET.insert s ~key:0 ~value:1);
  Alcotest.(check bool) "contains 0" true (SET.contains s 0);
  Alcotest.(check bool) "remove 0" true (SET.remove s 0);
  Alcotest.(check bool) "reinsert 0" true (SET.insert s ~key:0 ~value:2);
  Alcotest.(check (option int)) "new value visible" (Some 2) (SET.find s 0);
  for k = 0 to 99 do
    ignore (SET.insert s ~key:k ~value:k : bool)
  done;
  Alcotest.(check int) "bulk size" 100 (SET.size t);
  for k = 0 to 99 do
    if k mod 2 = 0 then ignore (SET.remove s k : bool)
  done;
  Alcotest.(check int) "half removed" 50 (SET.size t);
  SET.check t

let ascending_descending (module SET : Dstruct.Set_intf.SET) () =
  let t = SET.create ~threads:1 ~capacity:8192 ~check_access:true (Config.default ~threads:1) in
  let s = SET.session t ~tid:0 in
  for k = 0 to 199 do
    Alcotest.(check bool) "asc insert" true (SET.insert s ~key:k ~value:k)
  done;
  for k = 399 downto 200 do
    Alcotest.(check bool) "desc insert" true (SET.insert s ~key:k ~value:k)
  done;
  Alcotest.(check int) "size" 400 (SET.size t);
  SET.check t;
  for k = 0 to 399 do
    Alcotest.(check bool) "drain" true (SET.remove s k)
  done;
  Alcotest.(check int) "empty" 0 (SET.size t);
  SET.check t

let contains_paused_works (module SET : Dstruct.Set_intf.SET) () =
  let t = SET.create ~threads:1 ~capacity:1024 ~check_access:true (Config.default ~threads:1) in
  let s = SET.session t ~tid:0 in
  ignore (SET.insert s ~key:5 ~value:5 : bool);
  let paused = ref false in
  Alcotest.(check bool) "found across pause" true
    (SET.contains_paused s 5 ~pause:(fun () -> paused := true));
  Alcotest.(check bool) "pause ran" true !paused

(* Concurrent churn with poisoning armed; verifies invariants and final
   bookkeeping afterwards. *)
let churn (module SET : Dstruct.Set_intf.SET) ~threads ~ops ~range () =
  let config = Config.default ~threads in
  let capacity = (range * 8) + (ops * threads) + 1024 in
  let t = SET.create ~threads ~capacity ~check_access:true config in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed:2024 ~tid in
            for _ = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              match Mp_util.Rng.below rng 4 with
              | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
              | 1 -> ignore (SET.remove s k : bool)
              | _ -> ignore (SET.contains s k : bool)
            done;
            SET.flush s))
  in
  Array.iter Domain.join domains;
  SET.check t;
  Alcotest.(check int) "no use-after-free" 0 (SET.violations t)

(* Net-count linearizability witness: per key, successful inserts minus
   successful removes must equal final membership. *)
let net_count (module SET : Dstruct.Set_intf.SET) ~threads ~ops ~range () =
  let config = Config.default ~threads in
  let capacity = (range * 8) + (ops * threads) + 1024 in
  let t = SET.create ~threads ~capacity ~check_access:true config in
  let per_thread_net = Array.init threads (fun _ -> Array.make range 0) in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let net = per_thread_net.(tid) in
            let rng = Mp_util.Rng.split ~seed:31337 ~tid in
            for _ = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              if Mp_util.Rng.bool rng then begin
                if SET.insert s ~key:k ~value:k then net.(k) <- net.(k) + 1
              end
              else if SET.remove s k then net.(k) <- net.(k) - 1
            done))
  in
  Array.iter Domain.join domains;
  SET.check t;
  let s = SET.session t ~tid:0 in
  for k = 0 to range - 1 do
    let net = Array.fold_left (fun acc a -> acc + a.(k)) 0 per_thread_net in
    if net <> 0 && net <> 1 then Alcotest.failf "key %d net count %d" k net;
    let present = SET.contains s k in
    if present <> (net = 1) then
      Alcotest.failf "key %d: present=%b but net=%d" k present net
  done;
  Alcotest.(check int) "no use-after-free" 0 (SET.violations t)

(* Full per-scheme suite for one data structure functor. *)
let suite_for (name : string) (make : (module Smr_core.Smr_intf.S) -> (module Dstruct.Set_intf.SET)) =
  List.concat_map
    (fun (sname, s) ->
      let set = make s in
      let case cname speed f = Alcotest.test_case (sname ^ ": " ^ cname) speed f in
      [
        ( name ^ "/" ^ sname,
          [
            case "sequential basics" `Quick (sequential_basics set);
            case "boundaries" `Quick (sequential_boundaries set);
            case "ascending/descending" `Quick (ascending_descending set);
            case "contains_paused" `Quick (contains_paused_works set);
            case "concurrent churn" `Slow (churn set ~threads:4 ~ops:8_000 ~range:128);
            case "net count" `Slow (net_count set ~threads:4 ~ops:8_000 ~range:64);
          ] );
      ])
    schemes
