(* The paper's central claim (§4.4, Figure 6): with a thread stalled
   mid-operation while holding SMR protection,
   - EBR reclaims nothing — wasted memory grows linearly with churn;
   - HE/IBR are robust: waste is capped by what existed at the stall;
   - HP and MP keep waste bounded by a constant independent of churn.

   The stall is deterministic: a domain parks inside [contains_paused]
   on a gate while the main thread churns inserts+removes. *)

module Config = Smr_core.Config

type probe = {
  wasted_after_1 : int;
  wasted_after_2 : int;
  churn : int;
}

let run_stalled_churn (module SET : Dstruct.Set_intf.SET) =
  let threads = 2 in
  let churn = 10_000 in
  let config =
    Config.default ~threads
    |> (fun c -> Config.with_empty_freq c 10)
    |> (fun c -> Config.with_epoch_freq c 64)
    |> fun c -> Config.with_margin c (1 lsl 16)
  in
  let capacity = 1024 + (5 * churn) in
  let t = SET.create ~threads ~capacity ~check_access:true config in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to 63 do
    ignore (SET.insert s0 ~key:(k * 1000) ~value:k : bool)
  done;
  let parked = Atomic.make false in
  let release = Atomic.make false in
  let staller =
    Domain.spawn (fun () ->
        let s1 = SET.session t ~tid:1 in
        ignore
          (SET.contains_paused s1 17_000 ~pause:(fun () ->
               Atomic.set parked true;
               while not (Atomic.get release) do
                 Domain.cpu_relax ()
               done)
            : bool))
  in
  while not (Atomic.get parked) do
    Domain.cpu_relax ()
  done;
  (* churn: repeatedly insert+remove fresh keys while thread 1 is stalled *)
  let phase () =
    for i = 0 to churn - 1 do
      let k = 100 + (i mod 400) in
      ignore (SET.insert s0 ~key:k ~value:i : bool);
      ignore (SET.remove s0 k : bool)
    done;
    SET.flush s0;
    (SET.smr_stats t).Smr_core.Smr_intf.wasted
  in
  let wasted_after_1 = phase () in
  let wasted_after_2 = phase () in
  Atomic.set release true;
  Domain.join staller;
  SET.flush s0;
  Alcotest.(check int) "no use-after-free" 0 (SET.violations t);
  { wasted_after_1; wasted_after_2; churn }

let list_of (module S : Smr_core.Smr_intf.S) : (module Dstruct.Set_intf.SET) =
  (module Dstruct.Michael_list.Make (S))

let ebr_unbounded () =
  let p = run_stalled_churn (list_of (module Smr_schemes.Ebr)) in
  (* the stalled thread pins its epoch: nearly everything stays wasted and
     waste keeps growing with more churn *)
  Alcotest.(check bool)
    (Printf.sprintf "EBR waste ~ churn (%d vs %d)" p.wasted_after_1 p.churn)
    true
    (p.wasted_after_1 > p.churn / 2);
  Alcotest.(check bool)
    (Printf.sprintf "EBR waste grows (%d -> %d)" p.wasted_after_1 p.wasted_after_2)
    true
    (p.wasted_after_2 > p.wasted_after_1 + (p.churn / 2))

let bounded_scheme name set ~bound () =
  let p = run_stalled_churn set in
  Alcotest.(check bool)
    (Printf.sprintf "%s waste after phase 1 bounded (%d <= %d)" name p.wasted_after_1 bound)
    true
    (p.wasted_after_1 <= bound);
  Alcotest.(check bool)
    (Printf.sprintf "%s waste does not grow with churn (%d -> %d)" name p.wasted_after_1
       p.wasted_after_2)
    true
    (p.wasted_after_2 <= bound)

let robust_scheme name set () =
  (* HE/IBR: waste under a stall may reach the data-structure size at the
     stall (64 keys here) plus one epoch window, but must not track churn. *)
  let p = run_stalled_churn set in
  Alcotest.(check bool)
    (Printf.sprintf "%s waste stops growing (%d -> %d, churn %d)" name p.wasted_after_1
       p.wasted_after_2 p.churn)
    true
    (p.wasted_after_2 - p.wasted_after_1 < p.churn / 10)

(* MP on a *search-friendly* layout: the stalled thread's margin pins only
   nodes whose indices fall inside it; everything else reclaims. *)
let mp_bound_respects_margin () =
  let p = run_stalled_churn (list_of (module Mp.Margin_ptr)) in
  (* The theorem-level bound #HP + #MP·M + #MP·M·F·T is astronomically
     loose; experimentally (Fig. 6) MP waste is a small constant. Allow a
     generous constant: one epoch window (epoch_freq=64) of retirements per
     margin slot plus slack. *)
  Alcotest.(check bool)
    (Printf.sprintf "MP waste small and constant (%d, %d vs churn %d)" p.wasted_after_1
       p.wasted_after_2 p.churn)
    true
    (p.wasted_after_1 < 2_000 && p.wasted_after_2 < 2_000)

let () =
  Alcotest.run "bounds"
    [
      ( "stalled-thread wasted memory",
        [
          Alcotest.test_case "EBR unbounded" `Slow ebr_unbounded;
          Alcotest.test_case "HP bounded" `Slow
            (bounded_scheme "HP" (list_of (module Smr_schemes.Hp)) ~bound:600);
          Alcotest.test_case "MP bounded" `Slow mp_bound_respects_margin;
          Alcotest.test_case "HE robust" `Slow (robust_scheme "HE" (list_of (module Smr_schemes.He)));
          Alcotest.test_case "IBR robust" `Slow
            (robust_scheme "IBR" (list_of (module Smr_schemes.Ibr)));
        ] );
    ]
