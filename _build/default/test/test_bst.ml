(* Natarajan–Mittal BST across every SMR scheme, plus tree-specific cases:
   external-tree shape, router/leaf index sharing, coalesced deletions, and
   seek-record helping. *)

module Config = Smr_core.Config
module B = Dstruct.Nm_bst.Make (Mp.Margin_ptr)

let generic =
  Common.suite_for "bst" (fun (module S : Smr_core.Smr_intf.S) ->
      (module Dstruct.Nm_bst.Make (S) : Dstruct.Set_intf.SET))

let shape_after_mixed_ops () =
  let t = B.create ~threads:1 ~capacity:16_384 (Config.default ~threads:1) in
  let s = B.session t ~tid:0 in
  let rng = Mp_util.Rng.create 9 in
  let model = Hashtbl.create 64 in
  for _ = 1 to 5_000 do
    let k = Mp_util.Rng.below rng 500 in
    if Mp_util.Rng.bool rng then begin
      let expect = not (Hashtbl.mem model k) in
      Alcotest.(check bool) "insert agrees with model" expect (B.insert s ~key:k ~value:k);
      Hashtbl.replace model k ()
    end
    else begin
      let expect = Hashtbl.mem model k in
      Alcotest.(check bool) "remove agrees with model" expect (B.remove s k);
      Hashtbl.remove model k
    end
  done;
  B.check t;
  Alcotest.(check int) "size matches model" (Hashtbl.length model) (B.size t)

let empty_then_refill () =
  let t = B.create ~threads:1 ~capacity:8_192 (Config.default ~threads:1) in
  let s = B.session t ~tid:0 in
  for round = 1 to 3 do
    for k = 0 to 199 do
      Alcotest.(check bool) "insert" true (B.insert s ~key:k ~value:(k * round))
    done;
    Alcotest.(check int) "full" 200 (B.size t);
    for k = 199 downto 0 do
      Alcotest.(check bool) "remove" true (B.remove s k)
    done;
    Alcotest.(check int) "empty" 0 (B.size t);
    B.check t
  done

let reclaims_internal_nodes () =
  (* every remove unlinks a leaf AND its router: reclamation must return
     both (2 nodes per remove, not 1). *)
  let config = Config.with_empty_freq (Config.default ~threads:1) 1 in
  let t = B.create ~threads:1 ~capacity:4_096 config in
  let s = B.session t ~tid:0 in
  for k = 0 to 99 do
    ignore (B.insert s ~key:k ~value:k : bool)
  done;
  let live_before = B.live_nodes t in
  for k = 0 to 99 do
    ignore (B.remove s k : bool)
  done;
  B.flush s;
  let st = B.smr_stats t in
  Alcotest.(check int) "two retirements per removal" 200 st.Smr_core.Smr_intf.retired_total;
  Alcotest.(check int) "all reclaimed" 200 st.Smr_core.Smr_intf.reclaimed;
  Alcotest.(check int) "live back to sentinels" (live_before - 200) (B.live_nodes t)

let concurrent_same_key_removal () =
  (* two domains race to delete the same keys: exactly one wins each. *)
  let threads = 2 in
  let t = B.create ~threads ~capacity:16_384 ~check_access:true (Config.default ~threads) in
  let s0 = B.session t ~tid:0 in
  for k = 0 to 499 do
    ignore (B.insert s0 ~key:k ~value:k : bool)
  done;
  let wins = Array.make threads 0 in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = B.session t ~tid in
            for k = 0 to 499 do
              if B.remove s k then wins.(tid) <- wins.(tid) + 1
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "every key removed exactly once" 500 (wins.(0) + wins.(1));
  Alcotest.(check int) "tree empty" 0 (B.size t);
  B.check t;
  Alcotest.(check int) "no poison" 0 (B.violations t)

let () =
  Alcotest.run "nm_bst"
    (generic
    @ [
        ( "bst-specific",
          [
            Alcotest.test_case "shape vs model" `Quick shape_after_mixed_ops;
            Alcotest.test_case "empty then refill" `Quick empty_then_refill;
            Alcotest.test_case "reclaims internal nodes" `Quick reclaims_internal_nodes;
            Alcotest.test_case "racing removals" `Slow concurrent_same_key_removal;
          ] );
      ])
