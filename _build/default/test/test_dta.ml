(* Drop-the-Anchor list: sequential correctness, concurrent churn, the
   EBR fast path, and the freeze-based stall recovery (other threads keep
   reclaiming while a thread is parked mid-operation). *)

module D = Dstruct.Dta_list
module Config = Smr_core.Config

let mk ?(threads = 2) ?(capacity = 65_536) () =
  D.create ~threads ~capacity ~check_access:true
    (Config.with_empty_freq (Config.default ~threads) 10)

let sequential_basics () =
  let t = mk () in
  let s = D.session t ~tid:0 in
  Alcotest.(check bool) "insert" true (D.insert s ~key:5 ~value:50);
  Alcotest.(check bool) "dup" false (D.insert s ~key:5 ~value:0);
  Alcotest.(check bool) "contains" true (D.contains s 5);
  Alcotest.(check (option int)) "find" (Some 50) (D.find s 5);
  Alcotest.(check bool) "remove" true (D.remove s 5);
  Alcotest.(check bool) "remove again" false (D.remove s 5);
  Alcotest.(check int) "size" 0 (D.size t);
  D.check t

let reclaims_on_fast_path () =
  let t = mk ~threads:1 () in
  let s = D.session t ~tid:0 in
  for k = 0 to 499 do
    ignore (D.insert s ~key:k ~value:k : bool)
  done;
  for k = 0 to 499 do
    ignore (D.remove s k : bool)
  done;
  (* advance the epoch so the EBR bound moves past all retirements *)
  for _ = 1 to 3 do
    Smr_core.Epoch.advance (D.Debug.epoch t)
  done;
  D.flush s;
  let st = D.smr_stats t in
  Alcotest.(check bool)
    (Printf.sprintf "most nodes reclaimed (%d/%d)" st.Smr_core.Smr_intf.reclaimed 500)
    true
    (st.Smr_core.Smr_intf.reclaimed > 400)

let concurrent_churn () =
  let threads = 4 in
  let t = D.create ~threads ~capacity:262_144 ~check_access:true (Config.default ~threads) in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = D.session t ~tid in
            let rng = Mp_util.Rng.split ~seed:5150 ~tid in
            for _ = 1 to 10_000 do
              let k = Mp_util.Rng.below rng 128 in
              match Mp_util.Rng.below rng 4 with
              | 0 -> ignore (D.insert s ~key:k ~value:k : bool)
              | 1 -> ignore (D.remove s k : bool)
              | _ -> ignore (D.contains s k : bool)
            done;
            D.flush s))
  in
  Array.iter Domain.join domains;
  D.check t;
  Alcotest.(check int) "no use-after-free" 0 (D.violations t)

(* The headline feature: a stalled thread does NOT block reclamation —
   recovery freezes its window and reclamation proceeds. *)
let stall_recovery () =
  let threads = 2 in
  let t =
    D.create ~threads ~capacity:262_144 ~check_access:true ~anchor_step:16 ~stall_epochs:2
      (Config.with_epoch_freq (Config.with_empty_freq (Config.default ~threads) 10) 50)
  in
  let s0 = D.session t ~tid:0 in
  for k = 0 to 63 do
    ignore (D.insert s0 ~key:(k * 10) ~value:k : bool)
  done;
  let parked = Atomic.make false and release = Atomic.make false in
  let frozen_seen = Atomic.make false in
  let staller =
    Domain.spawn (fun () ->
        let s1 = D.session t ~tid:1 in
        let r =
          D.contains_paused s1 300 ~pause:(fun () ->
              Atomic.set parked true;
              while not (Atomic.get release) do
                Domain.cpu_relax ()
              done)
        in
        Atomic.set frozen_seen (D.frozen_nodes t > 0);
        ignore (r : bool))
  in
  while not (Atomic.get parked) do
    Domain.cpu_relax ()
  done;
  (* churn while the reader is parked: DTA must keep reclaiming *)
  for i = 0 to 9_999 do
    let k = 1 + (i mod 400) in
    ignore (D.insert s0 ~key:k ~value:i : bool);
    ignore (D.remove s0 k : bool)
  done;
  D.flush s0;
  let st = D.smr_stats t in
  Alcotest.(check bool)
    (Printf.sprintf "reclamation proceeded under stall (%d reclaimed, %d wasted)"
       st.Smr_core.Smr_intf.reclaimed st.Smr_core.Smr_intf.wasted)
    true
    (st.Smr_core.Smr_intf.reclaimed > 5_000);
  Alcotest.(check bool) "window was frozen" true (D.frozen_nodes t > 0);
  Atomic.set release true;
  Domain.join staller;
  (* the recovered thread restarted and completed its operation *)
  D.check t;
  Alcotest.(check int) "no use-after-free" 0 (D.violations t)

(* Conformance: DTA through the common SET interface must pass the same
   generic battery as the scheme-generic structures. *)
module As_set_suite = struct
  let set = (module Dstruct.Dta_list.As_set : Dstruct.Set_intf.SET)
  let cases =
    [
      Alcotest.test_case "as_set: sequential basics" `Quick (Common.sequential_basics set);
      Alcotest.test_case "as_set: boundaries" `Quick (Common.sequential_boundaries set);
      Alcotest.test_case "as_set: ascending/descending" `Quick (Common.ascending_descending set);
      Alcotest.test_case "as_set: contains_paused" `Quick (Common.contains_paused_works set);
      Alcotest.test_case "as_set: concurrent churn" `Slow
        (Common.churn set ~threads:4 ~ops:8_000 ~range:128);
      Alcotest.test_case "as_set: net count" `Slow
        (Common.net_count set ~threads:4 ~ops:8_000 ~range:64);
    ]
end

let () =
  Alcotest.run "dta_list"
    [
      ( "dta",
        [
          Alcotest.test_case "sequential" `Quick sequential_basics;
          Alcotest.test_case "fast-path reclamation" `Quick reclaims_on_fast_path;
          Alcotest.test_case "concurrent churn" `Slow concurrent_churn;
          Alcotest.test_case "stall recovery" `Slow stall_recovery;
        ] );
      ("dta-as-set", As_set_suite.cases);
    ]

