(* Configuration-space fuzzing: random (empty_freq, epoch_freq, margin,
   scheme, structure) combinations under concurrent churn with the
   use-after-free detector armed. Safety and bookkeeping must hold at
   every point of the tuning space, not just the paper's defaults. *)

module Config = Smr_core.Config

let fuzz_round rng round =
  let threads = 2 + Mp_util.Rng.below rng 3 in
  let range = 32 + Mp_util.Rng.below rng 224 in
  let ops = 3_000 in
  let config =
    Config.default ~threads
    |> (fun c -> Config.with_empty_freq c (1 + Mp_util.Rng.below rng 60))
    |> (fun c -> Config.with_epoch_freq c (1 + Mp_util.Rng.below rng 300))
    |> (fun c -> Config.with_margin c (1 lsl (16 + Mp_util.Rng.below rng 14)))
    |> fun c ->
    Config.with_index_policy c
      (match Mp_util.Rng.below rng 3 with
      | 0 -> Config.Midpoint
      | 1 -> Config.Golden
      | _ -> Config.Randomized)
  in
  let scheme_name, scheme =
    List.nth Common.schemes (Mp_util.Rng.below rng (List.length Common.schemes))
  in
  let ds, make =
    match Mp_util.Rng.below rng 3 with
    | 0 ->
      ( "list",
        fun (module S : Smr_core.Smr_intf.S) ->
          (module Dstruct.Michael_list.Make (S) : Dstruct.Set_intf.SET) )
    | 1 ->
      ( "skiplist",
        fun (module S : Smr_core.Smr_intf.S) -> (module Dstruct.Skiplist.Make (S)) )
    | _ -> ("bst", fun (module S : Smr_core.Smr_intf.S) -> (module Dstruct.Nm_bst.Make (S)))
  in
  let (module SET : Dstruct.Set_intf.SET) = make scheme in
  let capacity = (range * 8) + (ops * threads) + 1024 in
  let t = SET.create ~threads ~capacity ~check_access:true config in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed:(round * 131) ~tid in
            for i = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              if i mod 701 = 0 then
                ignore (SET.contains_paused s k ~pause:(fun () -> Domain.cpu_relax ()) : bool)
              else
                match Mp_util.Rng.below rng 4 with
                | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                | 1 -> ignore (SET.remove s k : bool)
                | _ -> ignore (SET.contains s k : bool)
            done;
            SET.flush s))
  in
  Array.iter Domain.join domains;
  (try SET.check t
   with Failure msg ->
     Alcotest.failf "round %d (%s/%s ef=%d pf=%d m=%d): %s" round ds scheme_name
       config.Config.empty_freq config.Config.epoch_freq config.Config.margin msg);
  if SET.violations t <> 0 then
    Alcotest.failf "round %d (%s/%s): %d use-after-free violations" round ds scheme_name
      (SET.violations t);
  let st = SET.smr_stats t in
  if st.Smr_core.Smr_intf.retired_total <> st.Smr_core.Smr_intf.reclaimed + st.Smr_core.Smr_intf.wasted
  then Alcotest.failf "round %d (%s/%s): bookkeeping broken" round ds scheme_name

let fuzz () =
  let rng = Mp_util.Rng.create 0xF022 in
  for round = 1 to 12 do
    fuzz_round rng round
  done

let () =
  Alcotest.run "fuzz_config"
    [ ("fuzz", [ Alcotest.test_case "random configurations" `Slow fuzz ]) ]
