(* Link-word packing: every field must round-trip, marks and incarnation
   tags must not bleed into neighbours, and the idx16 precision bounds must
   match the paper's range(i) definition. *)

let check = Alcotest.(check int)

let roundtrip () =
  let h = Handle.make ~inc:0x1ABC ~id:123_456 ~idx16:0xBEEF ~mark:2 () in
  check "id" 123_456 (Handle.id h);
  check "idx16" 0xBEEF (Handle.idx16 h);
  check "mark" 2 (Handle.mark h);
  check "inc (masked to 13 bits)" (0x1ABC land Handle.inc_mask) (Handle.inc h)

let null_properties () =
  Alcotest.(check bool) "null is null" true (Handle.is_null Handle.null);
  check "null mark" 0 (Handle.mark Handle.null);
  Alcotest.(check bool) "non-null" false
    (Handle.is_null (Handle.make ~id:0 ~idx16:0 ~mark:0 ()))

let with_mark_preserves_fields () =
  let h = Handle.make ~inc:7 ~id:42 ~idx16:0x1234 ~mark:0 () in
  let m = Handle.with_mark h 3 in
  check "mark set" 3 (Handle.mark m);
  check "id preserved" 42 (Handle.id m);
  check "idx16 preserved" 0x1234 (Handle.idx16 m);
  check "inc preserved" 7 (Handle.inc m);
  check "unmarked restores" h (Handle.unmarked m)

let precision_bounds () =
  (* A handle observed with idx16 = i stands for indices in
     [i << 16, (i << 16) + 0xFFFF] (paper §4.3.1). *)
  let h = Handle.make ~id:1 ~idx16:0x00A5 ~mark:0 () in
  check "lower" (0x00A5 lsl 16) (Handle.idx_lower_bound h);
  check "upper" ((0x00A5 lsl 16) lor 0xFFFF) (Handle.idx_upper_bound h);
  check "idx16 of full index" 0x00A5 (Handle.idx16_of_index ((0x00A5 lsl 16) + 12345))

let incarnation_distinguishes_reuse () =
  let a = Handle.make ~inc:1 ~id:9 ~idx16:0 ~mark:0 () in
  let b = Handle.make ~inc:2 ~id:9 ~idx16:0 ~mark:0 () in
  Alcotest.(check bool) "different incarnations differ" false (Handle.equal a b);
  check "same id" (Handle.id a) (Handle.id b)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"handle pack/unpack roundtrip" ~count:1000
    QCheck.(
      quad (int_bound Handle.max_id) (int_bound Handle.idx16_mask) (int_bound 3)
        (int_bound Handle.inc_mask))
    (fun (id, idx16, mark, inc) ->
      let h = Handle.make ~inc ~id ~idx16 ~mark () in
      Handle.id h = id && Handle.idx16 h = idx16 && Handle.mark h = mark && Handle.inc h = inc)

let qcheck_mark_involution =
  QCheck.Test.make ~name:"with_mark twice = last mark wins" ~count:500
    QCheck.(pair (int_bound Handle.max_id) (pair (int_bound 3) (int_bound 3)))
    (fun (id, (m1, m2)) ->
      let h = Handle.make ~id ~idx16:55 ~mark:0 () in
      Handle.mark (Handle.with_mark (Handle.with_mark h m1) m2) = m2)

let qcheck_idx16_monotone =
  QCheck.Test.make ~name:"idx16_of_index is monotone" ~count:500
    QCheck.(pair (int_bound 0xFFFF_FFFF) (int_bound 0xFFFF_FFFF))
    (fun (i, j) ->
      let lo = min i j and hi = max i j in
      Handle.idx16_of_index lo <= Handle.idx16_of_index hi)

let () =
  Alcotest.run "handle"
    [
      ( "packing",
        [
          Alcotest.test_case "roundtrip" `Quick roundtrip;
          Alcotest.test_case "null" `Quick null_properties;
          Alcotest.test_case "with_mark" `Quick with_mark_preserves_fields;
          Alcotest.test_case "precision bounds" `Quick precision_bounds;
          Alcotest.test_case "incarnation tag" `Quick incarnation_distinguishes_reuse;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_roundtrip; qcheck_mark_involution; qcheck_idx16_monotone ] );
    ]
