(* The benchmark harness itself: workload mixes, runner plumbing, stall
   injection, and the metrics the figures are built from. *)

module Config = Smr_core.Config
module Workload = Mp_harness.Workload
module Runner = Mp_harness.Runner
module Instances = Mp_harness.Instances

let mixes_sum_to_100 () =
  List.iter
    (fun m ->
      Alcotest.(check int) m.Workload.name 100
        Workload.(m.read_pct + m.insert_pct + m.remove_pct))
    Workload.all

let pick_respects_mix () =
  let rng = Mp_util.Rng.create 5 in
  let reads = ref 0 and writes = ref 0 in
  for _ = 1 to 10_000 do
    match Workload.pick Workload.read_dominated rng with
    | Workload.Read -> incr reads
    | Workload.Insert | Workload.Remove -> incr writes
  done;
  (* 90/10 split within tolerance *)
  Alcotest.(check bool) "approx 90% reads" true (!reads > 8_500 && !reads < 9_500)

let read_only_never_writes () =
  let rng = Mp_util.Rng.create 7 in
  for _ = 1 to 1_000 do
    match Workload.pick Workload.read_only rng with
    | Workload.Read -> ()
    | Workload.Insert | Workload.Remove -> Alcotest.fail "write in read-only mix"
  done

let runner_produces_sane_results () =
  let config = Config.default ~threads:2 in
  let spec =
    {
      (Runner.default ~threads:2 ~init_size:256 ~mix:Workload.read_dominated ~config) with
      Runner.duration_s = 0.15;
      check_access = true;
    }
  in
  let set = Instances.make Instances.List_ds Instances.mp in
  let r = Runner.run set spec in
  Alcotest.(check bool) "ops happened" true (r.Runner.total_ops > 0);
  Alcotest.(check bool) "throughput positive" true (r.Runner.throughput > 0.0);
  Alcotest.(check int) "no UAF" 0 r.Runner.violations;
  Alcotest.(check bool) "no oom" true (not r.Runner.oom);
  Alcotest.(check bool) "size sane" true (r.Runner.final_size > 0)

let runner_ascending_init () =
  let config = Config.default ~threads:1 in
  let spec =
    {
      (Runner.default ~threads:1 ~init_size:128 ~mix:Workload.read_only ~config) with
      Runner.duration_s = 0.1;
      init = Workload.Ascending_init;
      key_range = 128;
      check_access = true;
    }
  in
  let r = Runner.run (Instances.make Instances.List_ds Instances.mp) spec in
  Alcotest.(check int) "all keys present" 128 r.Runner.final_size;
  Alcotest.(check int) "no UAF" 0 r.Runner.violations

let runner_stall_injection () =
  let config = Config.default ~threads:2 in
  let spec =
    {
      (Runner.default ~threads:2 ~init_size:64 ~mix:Workload.write_dominated ~config) with
      Runner.duration_s = 0.2;
      stall = Some { Runner.stall_tid = 1; every_ops = 50; pause_s = 0.02 };
      check_access = true;
    }
  in
  (* EBR under injected stalls must show visibly more waste than MP *)
  let ebr = Runner.run (Instances.make Instances.List_ds Instances.ebr) spec in
  let mp = Runner.run (Instances.make Instances.List_ds Instances.mp) spec in
  Alcotest.(check int) "ebr no UAF" 0 ebr.Runner.violations;
  Alcotest.(check int) "mp no UAF" 0 mp.Runner.violations;
  Alcotest.(check bool)
    (Printf.sprintf "ebr wastes more than mp under stalls (%.0f vs %.0f)" ebr.Runner.wasted_avg
       mp.Runner.wasted_avg)
    true
    (ebr.Runner.wasted_avg >= mp.Runner.wasted_avg)

let fences_counted_for_pbr () =
  let config = Config.default ~threads:2 in
  let spec =
    {
      (Runner.default ~threads:2 ~init_size:256 ~mix:Workload.read_only ~config) with
      Runner.duration_s = 0.15;
    }
  in
  let hp = Runner.run (Instances.make Instances.List_ds Instances.hp) spec in
  Alcotest.(check bool) "hp issues fences" true (hp.Runner.fences > 0);
  Alcotest.(check bool) "traversal counted" true (hp.Runner.traversed > 0);
  Alcotest.(check bool) "fences/node in (0, 2]" true
    (hp.Runner.fences_per_node > 0.0 && hp.Runner.fences_per_node <= 2.0)

let instances_registry () =
  Alcotest.(check int) "six schemes" 6 (List.length Instances.schemes);
  List.iter
    (fun (name, _) ->
      let (module S : Smr_core.Smr_intf.S) = Instances.scheme_of_name name in
      Alcotest.(check string) "name matches" name S.name)
    Instances.schemes;
  Alcotest.check_raises "unknown scheme"
    (Invalid_argument "unknown scheme \"bogus\" (expected one of: mp, ibr, he, hp, ebr, none)")
    (fun () -> ignore (Instances.scheme_of_name "bogus" : Instances.scheme))

let () =
  Alcotest.run "harness"
    [
      ( "workload",
        [
          Alcotest.test_case "mixes sum to 100" `Quick mixes_sum_to_100;
          Alcotest.test_case "pick respects mix" `Quick pick_respects_mix;
          Alcotest.test_case "read-only is read-only" `Quick read_only_never_writes;
        ] );
      ( "runner",
        [
          Alcotest.test_case "sane results" `Slow runner_produces_sane_results;
          Alcotest.test_case "ascending init" `Slow runner_ascending_init;
          Alcotest.test_case "stall injection" `Slow runner_stall_injection;
          Alcotest.test_case "fence accounting" `Slow fences_counted_for_pbr;
          Alcotest.test_case "registry" `Quick instances_registry;
        ] );
    ]
