(* The hash-table client: per-bucket ordering, cross-bucket operations,
   concurrency, and SMR behaviour through the shared pool. *)

module Config = Smr_core.Config
module H = Dstruct.Hash_table.Make (Mp.Margin_ptr)
module H_hp = Dstruct.Hash_table.Make (Smr_schemes.Hp)

let mk ?(threads = 1) ?(buckets = 16) ?(capacity = 16_384) () =
  H.create ~threads ~capacity ~check_access:true ~buckets (Config.default ~threads)

let sequential_basics () =
  let t = mk () in
  let s = H.session t ~tid:0 in
  Alcotest.(check bool) "insert" true (H.insert s ~key:42 ~value:420);
  Alcotest.(check bool) "dup" false (H.insert s ~key:42 ~value:0);
  Alcotest.(check (option int)) "find" (Some 420) (H.find s 42);
  Alcotest.(check bool) "absent" false (H.contains s 43);
  Alcotest.(check bool) "remove" true (H.remove s 42);
  Alcotest.(check bool) "gone" false (H.contains s 42);
  Alcotest.(check int) "size" 0 (H.size t);
  H.check t

let many_keys_across_buckets () =
  let t = mk ~buckets:8 () in
  let s = H.session t ~tid:0 in
  for k = 0 to 999 do
    Alcotest.(check bool) "insert" true (H.insert s ~key:k ~value:(k * 3))
  done;
  Alcotest.(check int) "size" 1000 (H.size t);
  H.check t;
  for k = 0 to 999 do
    Alcotest.(check (option int)) "lookup" (Some (k * 3)) (H.find s k)
  done;
  for k = 0 to 999 do
    if k mod 2 = 0 then Alcotest.(check bool) "remove" true (H.remove s k)
  done;
  Alcotest.(check int) "half left" 500 (H.size t);
  H.check t

let model_agreement () =
  let t = mk ~buckets:4 () in
  let s = H.session t ~tid:0 in
  let model = Hashtbl.create 64 in
  let rng = Mp_util.Rng.create 17 in
  for _ = 1 to 10_000 do
    let k = Mp_util.Rng.below rng 200 in
    if Mp_util.Rng.bool rng then begin
      let expect = not (Hashtbl.mem model k) in
      Alcotest.(check bool) "insert agrees" expect (H.insert s ~key:k ~value:k);
      Hashtbl.replace model k ()
    end
    else begin
      let expect = Hashtbl.mem model k in
      Alcotest.(check bool) "remove agrees" expect (H.remove s k);
      Hashtbl.remove model k
    end
  done;
  Alcotest.(check int) "size agrees" (Hashtbl.length model) (H.size t);
  H.check t

let concurrent_churn () =
  let threads = 4 in
  let t =
    H.create ~threads ~capacity:262_144 ~check_access:true ~buckets:64
      (Config.default ~threads)
  in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = H.session t ~tid in
            let rng = Mp_util.Rng.split ~seed:23 ~tid in
            for _ = 1 to 15_000 do
              let k = Mp_util.Rng.below rng 512 in
              match Mp_util.Rng.below rng 4 with
              | 0 -> ignore (H.insert s ~key:k ~value:k : bool)
              | 1 -> ignore (H.remove s k : bool)
              | _ -> ignore (H.contains s k : bool)
            done;
            H.flush s))
  in
  Array.iter Domain.join domains;
  H.check t;
  Alcotest.(check int) "no use-after-free" 0 (H.violations t);
  let st = H.smr_stats t in
  Alcotest.(check int) "bookkeeping" st.Smr_core.Smr_intf.retired_total
    (st.Smr_core.Smr_intf.reclaimed + st.Smr_core.Smr_intf.wasted)

let concurrent_churn_hp () =
  let threads = 4 in
  let t =
    H_hp.create ~threads ~capacity:262_144 ~check_access:true ~buckets:64
      (Config.default ~threads)
  in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = H_hp.session t ~tid in
            let rng = Mp_util.Rng.split ~seed:29 ~tid in
            for _ = 1 to 15_000 do
              let k = Mp_util.Rng.below rng 512 in
              match Mp_util.Rng.below rng 4 with
              | 0 -> ignore (H_hp.insert s ~key:k ~value:k : bool)
              | 1 -> ignore (H_hp.remove s k : bool)
              | _ -> ignore (H_hp.contains s k : bool)
            done;
            H_hp.flush s))
  in
  Array.iter Domain.join domains;
  H_hp.check t;
  Alcotest.(check int) "no use-after-free" 0 (H_hp.violations t)

let paused_reader () =
  let t = mk () in
  let s = H.session t ~tid:0 in
  ignore (H.insert s ~key:9 ~value:9 : bool);
  let ran = ref false in
  Alcotest.(check bool) "found across pause" true
    (H.contains_paused s 9 ~pause:(fun () -> ran := true));
  Alcotest.(check bool) "pause ran" true !ran

let () =
  Alcotest.run "hash_table"
    [
      ( "hash",
        [
          Alcotest.test_case "sequential" `Quick sequential_basics;
          Alcotest.test_case "across buckets" `Quick many_keys_across_buckets;
          Alcotest.test_case "model agreement" `Quick model_agreement;
          Alcotest.test_case "paused reader" `Quick paused_reader;
          Alcotest.test_case "concurrent churn (mp)" `Slow concurrent_churn;
          Alcotest.test_case "concurrent churn (hp)" `Slow concurrent_churn_hp;
        ] );
    ]
