(* The latency histogram: bucketing precision, percentiles, merging. *)

module H = Mp_util.Histogram

let records_and_counts () =
  let h = H.create () in
  H.record h 1e-6;
  H.record h 2e-6;
  H.record h 3e-6;
  Alcotest.(check int) "count" 3 (H.count h);
  Alcotest.(check bool) "max in range" true (H.max_ns h >= 2_900 && H.max_ns h <= 3_100)

let percentile_ordering () =
  let h = H.create () in
  for i = 1 to 1000 do
    H.record h (float_of_int i *. 1e-9)
  done;
  let p50 = H.percentile_ns h 50.0 and p99 = H.percentile_ns h 99.0 in
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
  (* log-bucket precision: within ~25% of the true value *)
  Alcotest.(check bool)
    (Printf.sprintf "p50 near 500 (got %d)" p50)
    true
    (p50 >= 375 && p50 <= 640);
  Alcotest.(check bool)
    (Printf.sprintf "p99 near 990 (got %d)" p99)
    true
    (p99 >= 740 && p99 <= 1300)

let empty_percentile () =
  Alcotest.(check int) "empty" 0 (H.percentile_ns (H.create ()) 99.0)

let merge () =
  let a = H.create () and b = H.create () in
  H.record a 1e-6;
  H.record b 1e-3;
  H.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 2 (H.count a);
  Alcotest.(check bool) "max from b" true (H.max_ns a >= 900_000)

let qcheck_monotone_percentiles =
  QCheck.Test.make ~name:"percentiles monotone in p" ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (float_bound_exclusive 0.01))
    (fun samples ->
      let h = H.create () in
      List.iter (fun s -> H.record h (Float.abs s)) samples;
      H.percentile_ns h 10.0 <= H.percentile_ns h 50.0
      && H.percentile_ns h 50.0 <= H.percentile_ns h 95.0)

let qcheck_bucket_precision =
  QCheck.Test.make ~name:"single sample percentile within 25%" ~count:300
    QCheck.(int_range 10 1_000_000_000)
    (fun ns ->
      let h = H.create () in
      H.record h (float_of_int ns *. 1e-9);
      let p = H.percentile_ns h 50.0 in
      let lo = float_of_int ns *. 0.75 and hi = float_of_int ns *. 1.01 in
      float_of_int p >= lo && float_of_int p <= hi)

let () =
  Alcotest.run "histogram"
    [
      ( "histogram",
        Alcotest.test_case "record/count" `Quick records_and_counts
        :: Alcotest.test_case "percentiles" `Quick percentile_ordering
        :: Alcotest.test_case "empty" `Quick empty_percentile
        :: Alcotest.test_case "merge" `Quick merge
        :: List.map QCheck_alcotest.to_alcotest
             [ qcheck_monotone_percentiles; qcheck_bucket_precision ] );
    ]
