(* Cross-module integration: oversubscribed domains (more domains than
   cores), mixed workloads including paused readers, and end-state
   verification across structures sharing one process. *)

module Config = Smr_core.Config

let oversubscribed_mixed (module SET : Dstruct.Set_intf.SET) () =
  let threads = 8 in
  let range = 256 and ops = 4_000 in
  let config = Config.default ~threads in
  let t =
    SET.create ~threads ~capacity:((range * 8) + (ops * threads) + 1024) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed:777 ~tid in
            for i = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              if i mod 500 = 0 then
                (* short stalls inside operations, holding protection *)
                ignore (SET.contains_paused s k ~pause:(fun () -> Unix.sleepf 0.001) : bool)
              else
                match Mp_util.Rng.below rng 10 with
                | 0 | 1 | 2 -> ignore (SET.insert s ~key:k ~value:k : bool)
                | 3 | 4 | 5 -> ignore (SET.remove s k : bool)
                | _ -> ignore (SET.contains s k : bool)
            done;
            SET.flush s))
  in
  Array.iter Domain.join domains;
  SET.check t;
  Alcotest.(check int) "no use-after-free" 0 (SET.violations t);
  (* after all threads flush, bounded schemes should have modest leftovers *)
  let st = SET.smr_stats t in
  Alcotest.(check bool) "bookkeeping consistent" true
    (st.Smr_core.Smr_intf.retired_total
    = st.Smr_core.Smr_intf.reclaimed + st.Smr_core.Smr_intf.wasted)

(* Two structures over one scheme in one process must not interfere. *)
let two_structures_coexist () =
  let module L = Dstruct.Michael_list.Make (Mp.Margin_ptr) in
  let module B = Dstruct.Nm_bst.Make (Mp.Margin_ptr) in
  let threads = 4 in
  let lt = L.create ~threads ~capacity:32_768 ~check_access:true (Config.default ~threads) in
  let bt = B.create ~threads ~capacity:32_768 ~check_access:true (Config.default ~threads) in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let ls = L.session lt ~tid and bs = B.session bt ~tid in
            let rng = Mp_util.Rng.split ~seed:55 ~tid in
            for _ = 1 to 5_000 do
              let k = Mp_util.Rng.below rng 128 in
              (match Mp_util.Rng.below rng 4 with
              | 0 -> ignore (L.insert ls ~key:k ~value:k : bool)
              | 1 -> ignore (L.remove ls k : bool)
              | _ -> ignore (L.contains ls k : bool));
              match Mp_util.Rng.below rng 4 with
              | 0 -> ignore (B.insert bs ~key:k ~value:k : bool)
              | 1 -> ignore (B.remove bs k : bool)
              | _ -> ignore (B.contains bs k : bool)
            done;
            L.flush ls;
            B.flush bs))
  in
  Array.iter Domain.join domains;
  L.check lt;
  B.check bt;
  Alcotest.(check int) "list poison-free" 0 (L.violations lt);
  Alcotest.(check int) "bst poison-free" 0 (B.violations bt)

(* Pool slots must be conserved through heavy reuse: allocs - frees = live. *)
let slot_conservation () =
  let module SK = Dstruct.Skiplist.Make (Smr_schemes.Hp) in
  let threads = 4 in
  let t = SK.create ~threads ~capacity:16_384 ~check_access:true (Config.default ~threads) in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SK.session t ~tid in
            for i = 1 to 10_000 do
              let k = (tid * 10_000) + (i mod 100) in
              ignore (SK.insert s ~key:k ~value:i : bool);
              if i mod 2 = 0 then ignore (SK.remove s k : bool)
            done;
            SK.flush s))
  in
  Array.iter Domain.join domains;
  SK.check t;
  let st = SK.smr_stats t in
  Alcotest.(check int) "retired = reclaimed + wasted" st.Smr_core.Smr_intf.retired_total
    (st.Smr_core.Smr_intf.reclaimed + st.Smr_core.Smr_intf.wasted);
  Alcotest.(check int) "no poison" 0 (SK.violations t)

let structures : (string * (module Dstruct.Set_intf.SET)) list =
  [
    ("list(mp)", (module Dstruct.Michael_list.Make (Mp.Margin_ptr)));
    ("skiplist(mp)", (module Dstruct.Skiplist.Make (Mp.Margin_ptr)));
    ("bst(mp)", (module Dstruct.Nm_bst.Make (Mp.Margin_ptr)));
    ("list(hp)", (module Dstruct.Michael_list.Make (Smr_schemes.Hp)));
    ("bst(ibr)", (module Dstruct.Nm_bst.Make (Smr_schemes.Ibr)));
    ("skiplist(ebr)", (module Dstruct.Skiplist.Make (Smr_schemes.Ebr)));
  ]

let () =
  Alcotest.run "integration"
    [
      ( "oversubscribed mixed workload",
        List.map
          (fun (name, set) -> Alcotest.test_case name `Slow (oversubscribed_mixed set))
          structures );
      ( "coexistence",
        [
          Alcotest.test_case "two structures, one process" `Slow two_structures_coexist;
          Alcotest.test_case "slot conservation" `Slow slot_conservation;
        ] );
    ]
