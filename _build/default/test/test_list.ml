(* Michael's linked list across every SMR scheme, plus list-specific
   cases: traversal helping, MP bound updates, and sentinel behaviour. *)

module Config = Smr_core.Config
module L = Dstruct.Michael_list.Make (Mp.Margin_ptr)

let make_list s = Common.suite_for "list" (fun (module S : Smr_core.Smr_intf.S) ->
    (module Dstruct.Michael_list.Make (S) : Dstruct.Set_intf.SET)) |> fun suites -> suites @ s

(* The MP integration of Listing 7: after inserting between two nodes, the
   new node's index is the midpoint of its neighbours'. *)
let mp_index_between_neighbours () =
  let t = L.create ~threads:1 ~capacity:1024 (Config.default ~threads:1) in
  let s = L.session t ~tid:0 in
  ignore (L.insert s ~key:100 ~value:0 : bool);
  ignore (L.insert s ~key:300 ~value:0 : bool);
  ignore (L.insert s ~key:200 ~value:0 : bool);
  (* walk level-0 to collect indices in key order *)
  let pool = L.Debug.pool t in
  let idx k =
    match L.Debug.id_of_key t k with
    | Some id -> Mempool.Core.index (Mempool.core pool) id
    | None -> Alcotest.failf "key %d missing" k
  in
  let i100 = idx 100 and i200 = idx 200 and i300 = idx 300 in
  Alcotest.(check bool) "100 < 200" true (i100 < i200);
  Alcotest.(check bool) "200 < 300" true (i200 < i300)

(* Ascending insertion halves the remaining range each time: after ~32
   inserts every index collides and nodes fall back to USE_HP (Fig. 7a). *)
let ascending_inserts_collide () =
  let t = L.create ~threads:1 ~capacity:4096 (Config.default ~threads:1) in
  let s = L.session t ~tid:0 in
  for k = 0 to 99 do
    ignore (L.insert s ~key:k ~value:k : bool)
  done;
  let pool = Mempool.core (L.Debug.pool t) in
  let use_hp = ref 0 in
  for k = 0 to 99 do
    match L.Debug.id_of_key t k with
    | Some id -> if Mempool.Core.index pool id = Config.use_hp then incr use_hp
    | None -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most ascending keys collide (%d/100)" !use_hp)
    true (!use_hp > 50)

(* Traversals must help unlink marked nodes left by a racing remove. *)
let traversal_helps () =
  let t = L.create ~threads:2 ~capacity:1024 (Config.default ~threads:2) in
  let s = L.session t ~tid:0 in
  for k = 0 to 9 do
    ignore (L.insert s ~key:k ~value:k : bool)
  done;
  ignore (L.remove s 5 : bool);
  Alcotest.(check bool) "still finds others" true (L.contains s 6);
  L.check t

let value_update_semantics () =
  (* set semantics: a failed insert does not clobber the existing value *)
  let t = L.create ~threads:1 ~capacity:256 (Config.default ~threads:1) in
  let s = L.session t ~tid:0 in
  ignore (L.insert s ~key:1 ~value:10 : bool);
  ignore (L.insert s ~key:1 ~value:99 : bool);
  Alcotest.(check (option int)) "original value" (Some 10) (L.find s 1)

let () =
  Alcotest.run "michael_list"
    (make_list
       [
         ( "list-specific",
           [
             Alcotest.test_case "mp index between neighbours" `Quick mp_index_between_neighbours;
             Alcotest.test_case "ascending collisions" `Quick ascending_inserts_collide;
             Alcotest.test_case "traversal helps" `Quick traversal_helps;
             Alcotest.test_case "no value clobber" `Quick value_update_semantics;
           ] );
       ])
