(* Margin-pointer specifics: index creation (Listing 5), USE_HP collision
   handling (§4.3.2), the fence-free fast path, the HE-style epoch filter,
   and the epoch-change fallback to hazard pointers. *)

module MP = Mp.Margin_ptr
module Config = Smr_core.Config
module Core = Mempool.Core

let make ?(threads = 2) ?(margin = 1 lsl 20) () =
  let pool = Core.create ~capacity:512 ~threads () in
  let config =
    Config.with_margin (Config.with_empty_freq (Config.default ~threads) 1) margin
  in
  (pool, MP.create ~pool ~threads config)

(* Listing 5: a new node's index is the midpoint of the final search
   interval's endpoint indices. *)
let index_is_midpoint () =
  let pool, smr = make () in
  let th = MP.thread smr ~tid:0 in
  let lo = MP.alloc_with_index th ~index:1000 in
  let hi = MP.alloc_with_index th ~index:5000 in
  MP.start_op th;
  MP.update_lower_bound th lo;
  MP.update_upper_bound th hi;
  let id = MP.alloc th in
  MP.end_op th;
  Alcotest.(check int) "midpoint" 3000 (Core.index pool id)

let index_ordering_preserved () =
  (* Repeated bisection keeps the key→index mapping order-preserving. *)
  let pool, smr = make () in
  let th = MP.thread smr ~tid:0 in
  let head = MP.alloc_with_index th ~index:Config.min_sentinel_index in
  let tail = MP.alloc_with_index th ~index:Config.max_sentinel_index in
  (* insert "keys" 0..9 in random positions of a conceptual ordered list *)
  let nodes = ref [ (min_int, head); (max_int, tail) ] in
  let rng = Mp_util.Rng.create 42 in
  for _ = 1 to 30 do
    let key = Mp_util.Rng.below rng 1_000_000 in
    if not (List.mem_assoc key !nodes) then begin
      let sorted = List.sort compare !nodes in
      let pred = List.fold_left (fun acc (k, n) -> if k < key then Some n else acc) None sorted in
      let succ = List.find_opt (fun (k, _) -> k > key) sorted in
      match (pred, succ) with
      | Some p, Some (_, s) ->
        MP.start_op th;
        MP.update_lower_bound th p;
        MP.update_upper_bound th s;
        let id = MP.alloc th in
        MP.end_op th;
        if Core.index pool id <> Config.use_hp then nodes := (key, id) :: !nodes
      | _ -> ()
    end
  done;
  let sorted = List.sort compare !nodes in
  let rec check_monotone = function
    | (_, a) :: ((_, b) :: _ as rest) ->
      if Core.index pool a > Core.index pool b then
        Alcotest.failf "index order broken: %d > %d" (Core.index pool a) (Core.index pool b);
      check_monotone rest
    | _ -> ()
  in
  check_monotone sorted

(* §4.3.2: no room between the bounds means the node is stamped USE_HP. *)
let collision_yields_use_hp () =
  let pool, smr = make () in
  let th = MP.thread smr ~tid:0 in
  let a = MP.alloc_with_index th ~index:100 in
  let b = MP.alloc_with_index th ~index:101 in
  MP.start_op th;
  MP.update_lower_bound th a;
  MP.update_upper_bound th b;
  let id = MP.alloc th in
  MP.end_op th;
  Alcotest.(check int) "USE_HP stamp" Config.use_hp (Core.index pool id)

let use_hp_bound_propagates () =
  let pool, smr = make () in
  let th = MP.thread smr ~tid:0 in
  let a = MP.alloc_with_index th ~index:Config.use_hp in
  let b = MP.alloc_with_index th ~index:500_000 in
  MP.start_op th;
  MP.update_lower_bound th a;
  MP.update_upper_bound th b;
  let id = MP.alloc th in
  MP.end_op th;
  Alcotest.(check int) "collided bound propagates" Config.use_hp (Core.index pool id)

(* The point of margins: consecutive reads of nodes inside one margin cost
   one fence total, not one per dereference. *)
let fast_path_is_fence_free () =
  let _, smr = make () in
  let th = MP.thread smr ~tid:0 in
  MP.start_op th;
  let mk index =
    let id = MP.alloc_with_index th ~index in
    Atomic.make (MP.handle_of th id)
  in
  (* indices within one margin (2^20) of each other *)
  let links = List.init 8 (fun i -> mk (0x4000_0000 + (i * 70_000))) in
  let fences_before = (MP.stats smr).Smr_core.Smr_intf.fences in
  List.iter (fun l -> ignore (MP.read th ~refno:0 l : Handle.t)) links;
  let fences_after = (MP.stats smr).Smr_core.Smr_intf.fences in
  MP.end_op th;
  Alcotest.(check bool)
    (Printf.sprintf "one publish for 8 reads (got %d)" (fences_after - fences_before))
    true
    (fences_after - fences_before <= 2)

let hp_fallback_on_use_hp_nodes () =
  let _, smr = make () in
  let th = MP.thread smr ~tid:0 in
  MP.start_op th;
  let id = MP.alloc_with_index th ~index:Config.use_hp in
  let link = Atomic.make (MP.handle_of th id) in
  let before = (MP.stats smr).Smr_core.Smr_intf.hp_fallbacks in
  ignore (MP.read th ~refno:0 link : Handle.t);
  let after = (MP.stats smr).Smr_core.Smr_intf.hp_fallbacks in
  Alcotest.(check bool) "took the HP path" true (after > before);
  Alcotest.(check int) "hp slot holds the node" id (MP.Debug.hp_slot smr ~tid:0 ~refno:0);
  MP.end_op th

(* §4.3.2: observing the epoch changing mid-operation switches the thread
   to hazard pointers for new protections. *)
let epoch_change_triggers_hp_mode () =
  let _, smr = make () in
  let th = MP.thread smr ~tid:0 in
  MP.start_op th;
  Alcotest.(check bool) "starts in margin mode" false (MP.Debug.use_hp_mode th);
  let id = MP.alloc_with_index th ~index:0x2000_0000 in
  let link = Atomic.make (MP.handle_of th id) in
  ignore (MP.read th ~refno:0 link : Handle.t);
  (* the global epoch advances (another thread's unlink quota) *)
  Smr_core.Epoch.advance (MP.Debug.epoch smr);
  let id2 = MP.alloc_with_index th ~index:0x7000_0000 in
  let link2 = Atomic.make (MP.handle_of th id2) in
  ignore (MP.read th ~refno:1 link2 : Handle.t);
  Alcotest.(check bool) "switched to HP mode" true (MP.Debug.use_hp_mode th);
  Alcotest.(check int) "protected via HP" id2 (MP.Debug.hp_slot smr ~tid:0 ~refno:1);
  MP.end_op th;
  MP.start_op th;
  Alcotest.(check bool) "mode resets per op" false (MP.Debug.use_hp_mode th);
  MP.end_op th

(* The reclamation-side epoch filter (Theorem 4.2): a margin only vetoes
   reclamation when the announcing thread's epoch intersects the node's
   birth–death interval. *)
let epoch_filter_limits_margin_protection () =
  let pool, smr = make () in
  let th0 = MP.thread smr ~tid:0 and th1 = MP.thread smr ~tid:1 in
  (* th1 announces its epoch and publishes a margin around index I *)
  MP.start_op th1;
  let anchor = MP.alloc_with_index th1 ~index:0x3000_0000 in
  let link = Atomic.make (MP.handle_of th1 anchor) in
  ignore (MP.read th1 ~refno:0 link : Handle.t);
  (* epoch advances well past th1's announcement *)
  for _ = 1 to 3 do
    Smr_core.Epoch.advance (MP.Debug.epoch smr)
  done;
  (* a node with the same index range is born and dies after th1's epoch *)
  MP.start_op th0;
  let doomed = MP.alloc_with_index th0 ~index:0x3000_0100 in
  MP.retire th0 doomed;
  MP.flush th0;
  MP.end_op th0;
  Alcotest.(check bool) "born-after-epoch node reclaimed despite margin" true
    (Core.is_free pool doomed);
  MP.end_op th1

let end_op_clears_slots () =
  let _, smr = make () in
  let th = MP.thread smr ~tid:0 in
  MP.start_op th;
  let id = MP.alloc_with_index th ~index:0x1000_0000 in
  let link = Atomic.make (MP.handle_of th id) in
  ignore (MP.read th ~refno:2 link : Handle.t);
  Alcotest.(check bool) "margin published" true (MP.Debug.mp_slot smr ~tid:0 ~refno:2 >= 0);
  MP.end_op th;
  Alcotest.(check int) "margin cleared" (-1) (MP.Debug.mp_slot smr ~tid:0 ~refno:2);
  Alcotest.(check int) "hazard cleared" (-1) (MP.Debug.hp_slot smr ~tid:0 ~refno:2)

(* The reader publishes coverage for an idx16 interval; [empty] must use
   the same predicate. Retire nodes at the exact boundary idx16s of a
   published margin and check keep/free decisions match coverage. *)
let reclaim_coverage_boundary () =
  let margin = 1 lsl 20 in
  let pool, smr = make ~margin () in
  let th0 = MP.thread smr ~tid:0 and th1 = MP.thread smr ~tid:1 in
  MP.start_op th1;
  (* publish a margin around index I by reading a node *)
  let i = 0x4000_8000 in
  let anchor = MP.alloc_with_index th1 ~index:i in
  let link = Atomic.make (MP.handle_of th1 anchor) in
  ignore (MP.read th1 ~refno:0 link : Handle.t);
  let v = (i land lnot 0xFFFF) + 0x8000 in
  (* published value = midpoint of the node's precision range *)
  let lo16 = (v - (margin / 2) + 0xFFFF) asr 16 in
  let hi16 = (v + (margin / 2) - 0xFFFF) asr 16 in
  MP.start_op th0;
  let covered_lo = MP.alloc_with_index th0 ~index:(lo16 lsl 16) in
  let covered_hi = MP.alloc_with_index th0 ~index:((hi16 lsl 16) lor 0xFFFF) in
  let outside_lo = MP.alloc_with_index th0 ~index:(((lo16 - 1) lsl 16) lor 0xFFFF) in
  let outside_hi = MP.alloc_with_index th0 ~index:((hi16 + 1) lsl 16) in
  List.iter (MP.retire th0) [ covered_lo; covered_hi; outside_lo; outside_hi ];
  MP.flush th0;
  MP.end_op th0;
  Alcotest.(check bool) "inside-low kept" false (Core.is_free pool covered_lo);
  Alcotest.(check bool) "inside-high kept" false (Core.is_free pool covered_hi);
  Alcotest.(check bool) "outside-low freed" true (Core.is_free pool outside_lo);
  Alcotest.(check bool) "outside-high freed" true (Core.is_free pool outside_hi);
  MP.end_op th1;
  MP.flush th0

(* unprotect is a no-op by design: the margin must keep protecting nodes
   accessed earlier in the operation (paper §4.3). *)
let unprotect_keeps_margin () =
  let pool, smr = make () in
  let th0 = MP.thread smr ~tid:0 and th1 = MP.thread smr ~tid:1 in
  MP.start_op th1;
  let id = MP.alloc_with_index th1 ~index:0x2000_0000 in
  let link = Atomic.make (MP.handle_of th1 id) in
  ignore (MP.read th1 ~refno:0 link : Handle.t);
  MP.unprotect th1 ~refno:0;
  MP.start_op th0;
  MP.retire th0 id;
  MP.flush th0;
  MP.end_op th0;
  Alcotest.(check bool) "still protected after unprotect" false (Core.is_free pool id);
  MP.end_op th1;
  MP.flush th0;
  Alcotest.(check bool) "freed after end_op" true (Core.is_free pool id)

(* Listing 10's fall-back story: a client that never reports bounds (a
   non-search structure) gets USE_HP stamps on every allocation. *)
let no_bounds_means_use_hp () =
  let pool, smr = make () in
  let th = MP.thread smr ~tid:0 in
  MP.start_op th;
  let id = MP.alloc th in
  MP.end_op th;
  Alcotest.(check int) "USE_HP without bound reports" Config.use_hp (Core.index pool id)

(* One-sided reports default the missing endpoint to its extreme. *)
let one_sided_bounds () =
  let pool, smr = make () in
  let th = MP.thread smr ~tid:0 in
  let pred = MP.alloc_with_index th ~index:1000 in
  MP.start_op th;
  MP.update_lower_bound th pred;
  let id = MP.alloc th in
  MP.end_op th;
  let idx = Core.index pool id in
  Alcotest.(check bool)
    (Printf.sprintf "index above predecessor (%d)" idx)
    true
    (idx > 1000 && idx < Config.use_hp);
  let succ = MP.alloc_with_index th ~index:50_000 in
  MP.start_op th;
  MP.update_upper_bound th succ;
  let id2 = MP.alloc th in
  MP.end_op th;
  let idx2 = Core.index pool id2 in
  Alcotest.(check bool)
    (Printf.sprintf "index below successor (%d)" idx2)
    true
    (idx2 > 0 && idx2 < 50_000)

let qcheck_midpoint_between_bounds =
  QCheck.Test.make ~name:"assigned index lies strictly between bounds" ~count:300
    QCheck.(pair (int_bound 0xFFFF_FF00) (int_bound 0xFF))
    (fun (lo, gap) ->
      QCheck.assume (gap >= 2);
      let pool, smr = make () in
      let th = MP.thread smr ~tid:0 in
      let a = MP.alloc_with_index th ~index:lo in
      let b = MP.alloc_with_index th ~index:(lo + gap) in
      MP.start_op th;
      MP.update_lower_bound th a;
      MP.update_upper_bound th b;
      let id = MP.alloc th in
      MP.end_op th;
      let idx = Core.index pool id in
      idx > lo && idx < lo + gap)

let () =
  Alcotest.run "margin_ptr"
    [
      ( "index creation",
        Alcotest.test_case "midpoint" `Quick index_is_midpoint
        :: Alcotest.test_case "order preserved" `Quick index_ordering_preserved
        :: Alcotest.test_case "collision USE_HP" `Quick collision_yields_use_hp
        :: Alcotest.test_case "USE_HP bound propagates" `Quick use_hp_bound_propagates
        :: Alcotest.test_case "no bounds -> USE_HP" `Quick no_bounds_means_use_hp
        :: Alcotest.test_case "one-sided bounds" `Quick one_sided_bounds
        :: List.map QCheck_alcotest.to_alcotest [ qcheck_midpoint_between_bounds ] );
      ( "protection",
        [
          Alcotest.test_case "fence-free fast path" `Quick fast_path_is_fence_free;
          Alcotest.test_case "HP fallback" `Quick hp_fallback_on_use_hp_nodes;
          Alcotest.test_case "epoch change -> HP mode" `Quick epoch_change_triggers_hp_mode;
          Alcotest.test_case "epoch filter" `Quick epoch_filter_limits_margin_protection;
          Alcotest.test_case "end_op clears slots" `Quick end_op_clears_slots;
          Alcotest.test_case "reclaim coverage boundary" `Quick reclaim_coverage_boundary;
          Alcotest.test_case "unprotect keeps margin" `Quick unprotect_keeps_margin;
        ] );
    ]
