(* Property-based model checking: arbitrary operation sequences applied to
   each (structure × scheme) pair must agree, step by step, with a
   reference implementation (an ordered-set module). *)

module Config = Smr_core.Config
module IntSet = Set.Make (Int)

type op = Insert of int | Remove of int | Contains of int | Find of int

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> Insert k) (int_bound 63);
        map (fun k -> Remove k) (int_bound 63);
        map (fun k -> Contains k) (int_bound 63);
        map (fun k -> Find k) (int_bound 63);
      ])

let show_op = function
  | Insert k -> Printf.sprintf "Insert %d" k
  | Remove k -> Printf.sprintf "Remove %d" k
  | Contains k -> Printf.sprintf "Contains %d" k
  | Find k -> Printf.sprintf "Find %d" k

let ops_arbitrary =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map show_op l))
    QCheck.Gen.(list_size (1 -- 200) op_gen)

let agrees_with_model (module SET : Dstruct.Set_intf.SET) ops =
  let t = SET.create ~threads:1 ~capacity:8192 ~check_access:true (Config.default ~threads:1) in
  let s = SET.session t ~tid:0 in
  let model = ref IntSet.empty in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Insert k ->
        let expected = not (IntSet.mem k !model) in
        if SET.insert s ~key:k ~value:(k * 2) <> expected then ok := false;
        model := IntSet.add k !model
      | Remove k ->
        let expected = IntSet.mem k !model in
        if SET.remove s k <> expected then ok := false;
        model := IntSet.remove k !model
      | Contains k -> if SET.contains s k <> IntSet.mem k !model then ok := false
      | Find k ->
        let expected = if IntSet.mem k !model then Some (k * 2) else None in
        if SET.find s k <> expected then ok := false)
    ops;
  SET.check t;
  !ok
  && SET.size t = IntSet.cardinal !model
  && SET.violations t = 0

let model_test name set =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:150 ops_arbitrary (agrees_with_model set))

let structures : (string * ((module Smr_core.Smr_intf.S) -> (module Dstruct.Set_intf.SET))) list =
  [
    ("list", fun (module S) -> (module Dstruct.Michael_list.Make (S)));
    ("skiplist", fun (module S) -> (module Dstruct.Skiplist.Make (S)));
    ("bst", fun (module S) -> (module Dstruct.Nm_bst.Make (S)));
  ]

let () =
  Alcotest.run "model"
    (List.map
       (fun (ds_name, make) ->
         ( ds_name,
           List.map
             (fun (s_name, s) -> model_test (ds_name ^ "(" ^ s_name ^ ") vs Set model") (make s))
             Common.schemes ))
       structures)
