(* Index-assignment policies (paper §4.1 future work): every policy must
   keep the order-preserving invariant and place indices strictly inside
   the interval; their collision behaviour under adversarial insertion
   orders differs measurably. *)

module MP = Mp.Margin_ptr
module Config = Smr_core.Config
module Core = Mempool.Core

let make policy =
  let pool = Core.create ~capacity:8192 ~threads:1 () in
  let config = Config.with_index_policy (Config.default ~threads:1) policy in
  (pool, MP.create ~pool ~threads:1 config)

let strictly_between policy () =
  let pool, smr = make policy in
  let th = MP.thread smr ~tid:0 in
  let rng = Mp_util.Rng.create 3 in
  for _ = 1 to 500 do
    let lo = Mp_util.Rng.below rng 0xFFFF_0000 in
    let gap = 2 + Mp_util.Rng.below rng 100_000 in
    let a = MP.alloc_with_index th ~index:lo in
    let b = MP.alloc_with_index th ~index:(lo + gap) in
    MP.start_op th;
    MP.update_lower_bound th a;
    MP.update_upper_bound th b;
    let id = MP.alloc th in
    MP.end_op th;
    let idx = Core.index pool id in
    if not (idx > lo && idx < lo + gap) then
      Alcotest.failf "index %d outside (%d, %d)" idx lo (lo + gap);
    Core.free pool ~tid:0 a;
    Core.free pool ~tid:0 b;
    Core.free pool ~tid:0 id
  done

(* Ascending insertion splits the interval repeatedly toward max_index;
   count how many inserts each policy survives before USE_HP. *)
let ascending_capacity policy =
  let pool, smr = make policy in
  let th = MP.thread smr ~tid:0 in
  let head = MP.alloc_with_index th ~index:Config.min_sentinel_index in
  let tail = MP.alloc_with_index th ~index:Config.max_sentinel_index in
  let rec insert_after pred count =
    if count > 100_000 then count
    else begin
      MP.start_op th;
      MP.update_lower_bound th pred;
      MP.update_upper_bound th tail;
      let id = MP.alloc th in
      MP.end_op th;
      if Core.index pool id = Config.use_hp then count else insert_after id (count + 1)
    end
  in
  ignore head;
  insert_after head 0

let ascending_capacities () =
  let mid = ascending_capacity Config.Midpoint in
  let gold = ascending_capacity Config.Golden in
  (* midpoint halves the remaining range: ~32 inserts for a 32-bit range
     (the paper's Fig. 7a analysis); golden shrinks by 0.618 per insert,
     giving ~46 *)
  Alcotest.(check bool) (Printf.sprintf "midpoint ~32 (got %d)" mid) true (mid >= 28 && mid <= 36);
  Alcotest.(check bool) (Printf.sprintf "golden beats midpoint (%d > %d)" gold mid) true
    (gold > mid)

let randomized_capacity_sane () =
  (* a uniform split leaves (1-U) of the range: E[-ln(1-U)] = 1, so the
     range shrinks e-fold per step on average — randomized therefore has
     LESS ascending capacity than midpoint (~22 vs ~32 for 32 bits), and
     midpoint should win most trials *)
  let wins = ref 0 in
  let min_cap = ref max_int in
  for _ = 1 to 5 do
    let r = ascending_capacity Config.Randomized in
    if r < !min_cap then min_cap := r;
    if ascending_capacity Config.Midpoint > r then incr wins
  done;
  Alcotest.(check bool) (Printf.sprintf "midpoint usually beats randomized (%d/5)" !wins) true
    (!wins >= 3);
  Alcotest.(check bool) (Printf.sprintf "randomized capacity sane (%d)" !min_cap) true
    (!min_cap >= 8)

let () =
  Alcotest.run "policies"
    [
      ( "index policies",
        [
          Alcotest.test_case "midpoint strictly between" `Quick
            (strictly_between Config.Midpoint);
          Alcotest.test_case "golden strictly between" `Quick (strictly_between Config.Golden);
          Alcotest.test_case "randomized strictly between" `Quick
            (strictly_between Config.Randomized);
          Alcotest.test_case "ascending capacities" `Quick ascending_capacities;
          Alcotest.test_case "randomized capacity" `Quick randomized_capacity_sane;
        ] );
    ]
