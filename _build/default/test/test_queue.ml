(* Michael–Scott queue over every SMR scheme: FIFO semantics, element
   conservation under concurrency, reclamation, and — MP-specifically —
   the fall-back-to-HP behaviour on a non-search client. *)

module Config = Smr_core.Config

module Generic (S : Smr_core.Smr_intf.S) = struct
  module Q = Dstruct.Ms_queue.Make (S)

  let fifo_order () =
    let t = Q.create ~threads:1 ~capacity:1024 ~check_access:true (Config.default ~threads:1) in
    let s = Q.session t ~tid:0 in
    Alcotest.(check bool) "starts empty" true (Q.is_empty s);
    Alcotest.(check (option int)) "dequeue empty" None (Q.dequeue s);
    for v = 1 to 100 do
      Q.enqueue s v
    done;
    Alcotest.(check int) "length" 100 (Q.length t);
    Alcotest.(check (list int)) "order" (List.init 100 (fun i -> i + 1)) (Q.to_list t);
    for v = 1 to 100 do
      Alcotest.(check (option int)) "fifo" (Some v) (Q.dequeue s)
    done;
    Alcotest.(check (option int)) "drained" None (Q.dequeue s);
    Alcotest.(check int) "no poison" 0 (Q.violations t)

  (* producers push tagged values; consumers pop; every pushed value is
     popped exactly once and per-producer order is preserved. *)
  let conservation () =
    let producers = 2 and consumers = 2 in
    let threads = producers + consumers in
    let per_producer = 20_000 in
    let t =
      Q.create ~threads
        ~capacity:((per_producer * producers) + 65_536)
        ~check_access:true (Config.default ~threads)
    in
    let popped = Array.init consumers (fun _ -> ref []) in
    let producer tid () =
      let s = Q.session t ~tid in
      for i = 0 to per_producer - 1 do
        Q.enqueue s ((tid * 1_000_000) + i)
      done
    in
    let remaining = Atomic.make (producers * per_producer) in
    let consumer idx tid () =
      let s = Q.session t ~tid in
      let mine = popped.(idx) in
      while Atomic.get remaining > 0 do
        match Q.dequeue s with
        | Some v ->
          mine := v :: !mine;
          Atomic.decr remaining
        | None -> Domain.cpu_relax ()
      done;
      Q.flush s
    in
    let domains =
      List.init producers (fun p -> Domain.spawn (producer p))
      @ List.init consumers (fun c -> Domain.spawn (consumer c (producers + c)))
    in
    List.iter Domain.join domains;
    Alcotest.(check int) "queue drained" 0 (Q.length t);
    let all = List.concat_map (fun r -> !r) (Array.to_list popped) in
    Alcotest.(check int) "conservation" (producers * per_producer) (List.length all);
    let sorted = List.sort_uniq compare all in
    Alcotest.(check int) "no duplicates" (producers * per_producer) (List.length sorted);
    (* per-producer FIFO: within one consumer's pops, values from the same
       producer must appear in increasing order of sequence number *)
    Array.iter
      (fun r ->
        let seen = Hashtbl.create 4 in
        List.iter
          (fun v ->
            let p = v / 1_000_000 and i = v mod 1_000_000 in
            (match Hashtbl.find_opt seen p with
            | Some last when last <= i -> Alcotest.failf "producer %d order broken" p
            | _ -> ());
            Hashtbl.replace seen p i)
          !r)
      popped;
    Alcotest.(check int) "no poison" 0 (Q.violations t);
    let st = Q.smr_stats t in
    Alcotest.(check int) "bookkeeping" st.Smr_core.Smr_intf.retired_total
      (st.Smr_core.Smr_intf.reclaimed + st.Smr_core.Smr_intf.wasted)

  let cases name =
    [
      Alcotest.test_case (name ^ ": fifo") `Quick fifo_order;
      Alcotest.test_case (name ^ ": conservation") `Slow conservation;
    ]
end

(* On a non-search client MP must stamp every node USE_HP and protect
   through the hazard-pointer path (Table 1's "= HP (Other DS)"). *)
let mp_falls_back_to_hp () =
  let module Q = Dstruct.Ms_queue.Make (Mp.Margin_ptr) in
  let t = Q.create ~threads:1 ~capacity:256 ~check_access:true (Config.default ~threads:1) in
  let s = Q.session t ~tid:0 in
  Q.enqueue s 1;
  Q.enqueue s 2;
  let st = Q.smr_stats t in
  Alcotest.(check bool) "reads took the HP path" true
    (st.Smr_core.Smr_intf.hp_fallbacks > 0);
  ignore (Q.dequeue s : int option);
  Alcotest.(check int) "no poison" 0 (Q.violations t)

module G_mp = Generic (Mp.Margin_ptr)
module G_hp = Generic (Smr_schemes.Hp)
module G_ebr = Generic (Smr_schemes.Ebr)
module G_he = Generic (Smr_schemes.He)
module G_ibr = Generic (Smr_schemes.Ibr)

let () =
  Alcotest.run "ms_queue"
    [
      ("mp", G_mp.cases "mp");
      ("hp", G_hp.cases "hp");
      ("ebr", G_ebr.cases "ebr");
      ("he", G_he.cases "he");
      ("ibr", G_ibr.cases "ibr");
      ("fallback", [ Alcotest.test_case "MP uses HP path" `Quick mp_falls_back_to_hp ]);
    ]
