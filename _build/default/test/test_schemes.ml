(* Scheme-generic unit tests, run against every SMR implementation through
   the common interface. A tiny one-link "structure" (root -> node) stands
   in for a client: it exercises protection, retirement, reclamation, and
   the stats counters without data-structure noise. *)

module Config = Smr_core.Config
module Core = Mempool.Core

let schemes : (string * (module Smr_core.Smr_intf.S)) list =
  [
    ("hp", (module Smr_schemes.Hp));
    ("ebr", (module Smr_schemes.Ebr));
    ("he", (module Smr_schemes.He));
    ("ibr", (module Smr_schemes.Ibr));
    ("mp", (module Mp.Margin_ptr));
  ]

module Generic (S : Smr_core.Smr_intf.S) = struct
  let make_world () =
    let pool = Core.create ~capacity:256 ~threads:2 () in
    let config = Config.with_empty_freq (Config.default ~threads:2) 1 in
    let smr = S.create ~pool ~threads:2 config in
    (pool, smr)

  (* A node that is retired while no one protects it must be reclaimed by
     the retirer's next flush. *)
  let reclaims_unprotected () =
    let pool, smr = make_world () in
  let th = S.thread smr ~tid:0 in
  S.start_op th;
  let id = S.alloc th in
  S.end_op th;
  S.retire th id;
  S.flush th;
  Alcotest.(check bool) "slot freed" true (Core.is_free pool id);
  let st = S.stats smr in
  Alcotest.(check int) "wasted zero" 0 st.Smr_core.Smr_intf.wasted;
  Alcotest.(check int) "reclaimed one" 1 st.Smr_core.Smr_intf.reclaimed

  (* A node read (hence protected) by an in-flight operation of another
     thread must survive reclamation until that operation ends. *)
  let protects_across_retire () =
    let pool, smr = make_world () in
  let th0 = S.thread smr ~tid:0 and th1 = S.thread smr ~tid:1 in
  S.start_op th0;
  let id = S.alloc th0 in
  Core.set_index pool id 500_000;
  let root = Atomic.make (S.handle_of th0 id) in
  S.end_op th0;
  (* reader protects the node mid-operation *)
  S.start_op th1;
  let w = S.read th1 ~refno:0 root in
  Alcotest.(check int) "reader sees node" id (Handle.id w);
  (* writer unlinks and retires *)
  S.start_op th0;
  Atomic.set root Handle.null;
  S.retire th0 id;
  S.flush th0;
  S.end_op th0;
  Alcotest.(check bool) "protected node not freed" false (Core.is_free pool id);
  (* reader finishes: reclamation may proceed *)
  S.end_op th1;
  S.flush th0;
  Alcotest.(check bool) "freed after reader ends" true (Core.is_free pool id)

  let counts_retirements () =
    let _, smr = make_world () in
  let th = S.thread smr ~tid:0 in
  S.start_op th;
  let ids = List.init 5 (fun _ -> S.alloc th) in
  S.end_op th;
  List.iter (S.retire th) ids;
  S.flush th;
  let st = S.stats smr in
  Alcotest.(check int) "retired_total" 5 st.Smr_core.Smr_intf.retired_total;
  Alcotest.(check int) "reclaimed all" 5 st.Smr_core.Smr_intf.reclaimed

  let alloc_with_index_sets_index () =
    let pool, smr = make_world () in
  let th = S.thread smr ~tid:0 in
  let id = S.alloc_with_index th ~index:Config.max_sentinel_index in
  Alcotest.(check int) "index" Config.max_sentinel_index (Core.index pool id);
  let h = S.handle_of th id in
  Alcotest.(check int) "handle idx16"
    (Handle.idx16_of_index Config.max_sentinel_index)
    (Handle.idx16 h)

  let read_null_is_null () =
    let _, smr = make_world () in
  let th = S.thread smr ~tid:0 in
  S.start_op th;
  let root = Atomic.make Handle.null in
  Alcotest.(check bool) "null passes through" true (Handle.is_null (S.read th ~refno:0 root));
  S.end_op th

  let unprotect_is_safe () =
    let _, smr = make_world () in
  let th = S.thread smr ~tid:0 in
  S.start_op th;
  let id = S.alloc th in
  let root = Atomic.make (S.handle_of th id) in
  ignore (S.read th ~refno:1 root : Handle.t);
  S.unprotect th ~refno:1;
  S.end_op th

  (* Epoch metadata stamping: birth at alloc, death at retire, visible in
     the pool words every epoch-filtering scheme reads. *)
  let stamps_lifetimes () =
    let pool, smr = make_world () in
    let th = S.thread smr ~tid:0 in
    S.start_op th;
    let id = S.alloc th in
    S.end_op th;
    S.retire th id;
    let birth = Core.birth pool id and death = Core.death pool id in
    Alcotest.(check bool) "death >= birth" true (death >= birth);
    S.flush th

  (* Reads on fresh nodes must cost at least one publication fence for
     pointer-based schemes; stats must move. *)
  let fences_move_for_pbr () =
    let _, smr = make_world () in
    if S.properties.Smr_core.Smr_intf.needs_per_reference_calls then begin
      let th = S.thread smr ~tid:0 in
      S.start_op th;
      let id = S.alloc th in
      let link = Atomic.make (S.handle_of th id) in
      let before = (S.stats smr).Smr_core.Smr_intf.fences in
      ignore (S.read th ~refno:0 link : Handle.t);
      let after = (S.stats smr).Smr_core.Smr_intf.fences in
      S.end_op th;
      Alcotest.(check bool) "fence counted" true (after >= before)
    end

  (* The read validation loop must re-read when the link changes under it
     and return the value present at protection time. *)
  let read_returns_current_value () =
    let _, smr = make_world () in
  let th = S.thread smr ~tid:0 in
  S.start_op th;
  let a = S.alloc th and b = S.alloc th in
  let root = Atomic.make (S.handle_of th a) in
  let w1 = S.read th ~refno:0 root in
  Alcotest.(check int) "first" a (Handle.id w1);
  Atomic.set root (S.handle_of th b);
  let w2 = S.read th ~refno:1 root in
  Alcotest.(check int) "after swing" b (Handle.id w2);
  S.end_op th

end

let leaky_never_reclaims () =
  let pool = Core.create ~capacity:64 ~threads:1 () in
  let smr = Smr_schemes.Leaky.create ~pool ~threads:1 (Config.default ~threads:1) in
  let th = Smr_schemes.Leaky.thread smr ~tid:0 in
  let id = Smr_schemes.Leaky.alloc th in
  Smr_schemes.Leaky.retire th id;
  Smr_schemes.Leaky.flush th;
  Alcotest.(check bool) "never freed" false (Core.is_free pool id);
  let st = Smr_schemes.Leaky.stats smr in
  Alcotest.(check int) "wasted grows" 1 st.Smr_core.Smr_intf.wasted

(* EBR is not robust: a stalled reader blocks reclamation of everything,
   including nodes it never saw. *)
let ebr_stalled_thread_blocks_everything () =
  let pool = Core.create ~capacity:256 ~threads:2 () in
  let config = Config.with_empty_freq (Config.default ~threads:2) 1 in
  let smr = Smr_schemes.Ebr.create ~pool ~threads:2 config in
  let th0 = Smr_schemes.Ebr.thread smr ~tid:0 in
  let th1 = Smr_schemes.Ebr.thread smr ~tid:1 in
  Smr_schemes.Ebr.start_op th1 (* stalls here forever *);
  for _ = 1 to 50 do
    Smr_schemes.Ebr.start_op th0;
    let id = Smr_schemes.Ebr.alloc th0 in
    Smr_schemes.Ebr.retire th0 id;
    Smr_schemes.Ebr.end_op th0
  done;
  Smr_schemes.Ebr.flush th0;
  let st = Smr_schemes.Ebr.stats smr in
  Alcotest.(check int) "nothing reclaimed under stall" 0 st.Smr_core.Smr_intf.reclaimed;
  Smr_schemes.Ebr.end_op th1;
  Smr_schemes.Ebr.flush th0;
  let st = Smr_schemes.Ebr.stats smr in
  Alcotest.(check int) "all reclaimed after wakeup" 50 st.Smr_core.Smr_intf.reclaimed

(* HE and IBR are robust: nodes born and retired after the stalled
   thread's announced epoch are reclaimable despite the stall. *)
let robust_scheme_reclaims_under_stall name (module S : Smr_core.Smr_intf.S) () =
  let pool = Core.create ~capacity:4096 ~threads:2 () in
  let config =
    Config.with_epoch_freq (Config.with_empty_freq (Config.default ~threads:2) 1) 10
  in
  let smr = S.create ~pool ~threads:2 config in
  let th0 = S.thread smr ~tid:0 and th1 = S.thread smr ~tid:1 in
  S.start_op th1 (* stalled *);
  for _ = 1 to 500 do
    S.start_op th0;
    let id = S.alloc th0 in
    S.retire th0 id;
    S.end_op th0
  done;
  S.flush th0;
  let st = S.stats smr in
  if st.Smr_core.Smr_intf.reclaimed = 0 then
    Alcotest.failf "%s reclaimed nothing despite robustness" name;
  S.end_op th1

let scheme_cases name (module S : Smr_core.Smr_intf.S) =
  let module G = Generic (S) in
  ( name,
    [
      Alcotest.test_case "reclaims unprotected" `Quick G.reclaims_unprotected;
      Alcotest.test_case "protects across retire" `Quick G.protects_across_retire;
      Alcotest.test_case "counts retirements" `Quick G.counts_retirements;
      Alcotest.test_case "alloc_with_index" `Quick G.alloc_with_index_sets_index;
      Alcotest.test_case "read null" `Quick G.read_null_is_null;
      Alcotest.test_case "unprotect safe" `Quick G.unprotect_is_safe;
      Alcotest.test_case "read tracks link" `Quick G.read_returns_current_value;
      Alcotest.test_case "lifetime stamping" `Quick G.stamps_lifetimes;
      Alcotest.test_case "fence accounting" `Quick G.fences_move_for_pbr;
    ] )

let properties_table () =
  (* Table 1 sanity: the qualitative properties encoded in each scheme. *)
  let open Smr_core.Smr_intf in
  Alcotest.(check bool) "hp bounded" true (Smr_schemes.Hp.properties.wasted_memory = Bounded);
  Alcotest.(check bool) "mp bounded" true (Mp.Margin_ptr.properties.wasted_memory = Bounded);
  Alcotest.(check bool) "ebr unbounded" true
    (Smr_schemes.Ebr.properties.wasted_memory = Unbounded);
  Alcotest.(check bool) "he robust" true (Smr_schemes.He.properties.wasted_memory = Robust);
  Alcotest.(check bool) "ibr robust" true (Smr_schemes.Ibr.properties.wasted_memory = Robust);
  List.iter
    (fun (name, (module S : Smr_core.Smr_intf.S)) ->
      if not S.properties.self_contained then Alcotest.failf "%s not self-contained" name)
    schemes

let () =
  Alcotest.run "schemes"
    (List.map (fun (name, s) -> scheme_cases name s) schemes
    @ [
        ( "special",
          [
            Alcotest.test_case "leaky never reclaims" `Quick leaky_never_reclaims;
            Alcotest.test_case "ebr stall blocks all" `Quick ebr_stalled_thread_blocks_everything;
            Alcotest.test_case "he robust under stall" `Quick
              (robust_scheme_reclaims_under_stall "he" (module Smr_schemes.He));
            Alcotest.test_case "ibr robust under stall" `Quick
              (robust_scheme_reclaims_under_stall "ibr" (module Smr_schemes.Ibr));
            Alcotest.test_case "mp reclaims under stall" `Quick
              (robust_scheme_reclaims_under_stall "mp" (module Mp.Margin_ptr));
            Alcotest.test_case "table 1 properties" `Quick properties_table;
          ] );
      ])
