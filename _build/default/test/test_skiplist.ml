(* Fraser skip list across every SMR scheme, plus skiplist-specific cases:
   tower linking, level invariants, and the deleter/inserter handshake. *)

module Config = Smr_core.Config
module SK = Dstruct.Skiplist.Make (Mp.Margin_ptr)

let generic =
  Common.suite_for "skiplist" (fun (module S : Smr_core.Smr_intf.S) ->
      (module Dstruct.Skiplist.Make (S) : Dstruct.Set_intf.SET))

let towers_are_sublists () =
  (* check covers: each level a sorted subset of the one below, heights
     respected. Exercised here with enough keys for multiple levels. *)
  let t = SK.create ~threads:1 ~capacity:16_384 (Config.default ~threads:1) in
  let s = SK.session t ~tid:0 in
  for k = 0 to 2_000 do
    ignore (SK.insert s ~key:(k * 3) ~value:k : bool)
  done;
  SK.check t;
  Alcotest.(check int) "size" 2_001 (SK.size t)

let removal_under_load () =
  let t = SK.create ~threads:1 ~capacity:16_384 (Config.default ~threads:1) in
  let s = SK.session t ~tid:0 in
  for k = 0 to 999 do
    ignore (SK.insert s ~key:k ~value:k : bool)
  done;
  for k = 0 to 999 do
    if k mod 3 = 0 then Alcotest.(check bool) "remove" true (SK.remove s k)
  done;
  SK.check t;
  Alcotest.(check int) "size" 666 (SK.size t);
  for k = 0 to 999 do
    Alcotest.(check bool)
      (Printf.sprintf "membership %d" k)
      (k mod 3 <> 0) (SK.contains s k)
  done

(* Insert/remove of the same key hammered from two domains: the
   tower_state handshake must retire each incarnation exactly once (the
   pool's alloc/free accounting catches double frees via assertions). *)
let handshake_single_key () =
  let threads = 4 in
  let t = SK.create ~threads ~capacity:65_536 ~check_access:true (Config.default ~threads) in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SK.session t ~tid in
            for _ = 1 to 20_000 do
              ignore (SK.insert s ~key:42 ~value:tid : bool);
              ignore (SK.remove s 42 : bool)
            done;
            SK.flush s))
  in
  Array.iter Domain.join domains;
  SK.check t;
  Alcotest.(check int) "no poison" 0 (SK.violations t)

let () =
  Alcotest.run "skiplist"
    (generic
    @ [
        ( "skiplist-specific",
          [
            Alcotest.test_case "towers are sublists" `Quick towers_are_sublists;
            Alcotest.test_case "removal under load" `Quick removal_under_load;
            Alcotest.test_case "single-key handshake" `Slow handshake_single_key;
          ] );
      ])
