(* smr_core building blocks: config validation, the retired vector, and
   the epoch clock. *)

module Config = Smr_core.Config
module Retired = Smr_core.Retired
module Epoch = Smr_core.Epoch

let config_defaults () =
  let c = Config.default ~threads:8 in
  Alcotest.(check int) "empty_freq" 30 c.Config.empty_freq;
  Alcotest.(check int) "epoch_freq 150T" (150 * 8) c.Config.epoch_freq;
  Alcotest.(check int) "margin 2^20" (1 lsl 20) c.Config.margin;
  ignore (Config.validate c : Config.t)

let config_rejects_small_margin () =
  let c = Config.with_margin (Config.default ~threads:2) ((1 lsl 16) - 1) in
  Alcotest.check_raises "margin below 2^16"
    (Invalid_argument "Config: margin must be at least 2^16 (one idx16 precision range)")
    (fun () -> ignore (Config.validate c : Config.t))

let config_setters () =
  let c = Config.default ~threads:2 in
  Alcotest.(check int) "with_slots" 11 (Config.with_slots c 11).Config.slots;
  Alcotest.(check int) "with_empty_freq" 5 (Config.with_empty_freq c 5).Config.empty_freq;
  Alcotest.(check int) "with_epoch_freq" 7 (Config.with_epoch_freq c 7).Config.epoch_freq

let retired_push_filter () =
  let r = Retired.create ~initial_capacity:2 () in
  for i = 1 to 10 do
    Retired.push r i
  done;
  Alcotest.(check int) "length" 10 (Retired.length r);
  let released = ref [] in
  let n =
    Retired.filter_in_place r
      ~keep:(fun id -> id mod 2 = 0)
      ~release:(fun id -> released := id :: !released)
  in
  Alcotest.(check int) "released count" 5 n;
  Alcotest.(check int) "remaining" 5 (Retired.length r);
  List.iter (fun id -> Alcotest.(check bool) "odd released" true (id mod 2 = 1)) !released;
  Retired.iter r (fun id -> Alcotest.(check bool) "even kept" true (id mod 2 = 0));
  Retired.clear r;
  Alcotest.(check int) "cleared" 0 (Retired.length r)

let retired_release_all () =
  let r = Retired.create () in
  Retired.push r 1;
  Retired.push r 2;
  let n = Retired.filter_in_place r ~keep:(fun _ -> false) ~release:ignore in
  Alcotest.(check int) "all released" 2 n;
  Alcotest.(check int) "empty" 0 (Retired.length r)

let epoch_announce_cycle () =
  let e = Epoch.create ~threads:3 in
  Alcotest.(check int) "initial epoch" 1 (Epoch.current e);
  Alcotest.(check int) "idle announce" Epoch.inactive (Epoch.announced e ~tid:0);
  let a = Epoch.announce e ~tid:0 in
  Alcotest.(check int) "announced current" 1 a;
  Alcotest.(check int) "min over active" 1 (Epoch.min_announced e);
  Epoch.advance e;
  Alcotest.(check int) "advanced" 2 (Epoch.current e);
  Alcotest.(check int) "stale announcement pins min" 1 (Epoch.min_announced e);
  Epoch.retire_announcement e ~tid:0;
  Alcotest.(check int) "all idle" Epoch.inactive (Epoch.min_announced e)

let epoch_concurrent_advance () =
  let e = Epoch.create ~threads:4 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Epoch.advance e
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" 40_001 (Epoch.current e)

let qcheck_retired_conservation =
  QCheck.Test.make ~name:"filter conserves elements" ~count:200
    QCheck.(list (int_bound 1000))
    (fun ids ->
      let r = Retired.create () in
      List.iter (Retired.push r) ids;
      let released = ref 0 in
      let n = Retired.filter_in_place r ~keep:(fun id -> id mod 3 = 0) ~release:(fun _ -> incr released) in
      n = !released && Retired.length r + n = List.length ids)

let () =
  Alcotest.run "smr_core"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick config_defaults;
          Alcotest.test_case "margin floor" `Quick config_rejects_small_margin;
          Alcotest.test_case "setters" `Quick config_setters;
        ] );
      ( "retired",
        Alcotest.test_case "push/filter" `Quick retired_push_filter
        :: Alcotest.test_case "release all" `Quick retired_release_all
        :: List.map QCheck_alcotest.to_alcotest [ qcheck_retired_conservation ] );
      ( "epoch",
        [
          Alcotest.test_case "announce cycle" `Quick epoch_announce_cycle;
          Alcotest.test_case "concurrent advance" `Slow epoch_concurrent_advance;
        ] );
    ]
