(* Temporary probe: single-threaded read-only contains loop per
   (structure x scheme), reporting ns/op and minor-GC words/op. Used to
   capture pre/post numbers for EXPERIMENTS.md. *)

module Config = Smr_core.Config
module Instances = Mp_harness.Instances
module Rng = Mp_util.Rng

let cell ds scheme ~size ~ops =
  let (module SET : Dstruct.Set_intf.SET) =
    Instances.make (Instances.ds_of_name ds) (Instances.scheme_of_name scheme)
  in
  let config = Config.default ~threads:1 in
  let t = SET.create ~threads:1 ~capacity:(4 * size + 65536) ~check_access:false config in
  let s = SET.session t ~tid:0 in
  let range = 2 * size in
  let rng = Rng.create 0xC0FFEE in
  let inserted = ref 0 in
  while !inserted < size do
    let k = Rng.below rng range in
    if SET.insert s ~key:k ~value:k then incr inserted
  done;
  SET.flush s;
  (* warm *)
  for _ = 1 to ops / 10 do
    ignore (SET.contains s (Rng.below rng range) : bool)
  done;
  let st0 = Gc.quick_stat () in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to ops do
    ignore (SET.contains s (Rng.below rng range) : bool)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let dw = Gc.minor_words () -. w0 in
  let st1 = Gc.quick_stat () in
  Printf.printf "%-10s %-5s ops=%d ns/op=%.1f words/op=%.2f minor_gcs=%d\n%!" ds scheme ops
    (dt *. 1e9 /. float_of_int ops)
    (dw /. float_of_int ops)
    (st1.Gc.minor_collections - st0.Gc.minor_collections)

let () =
  List.iter
    (fun (ds, size, ops) ->
      List.iter (fun scheme -> cell ds scheme ~size ~ops) [ "mp"; "hp"; "ebr"; "none" ])
    [ ("list", 256, 300_000); ("skiplist", 4096, 500_000); ("bst", 4096, 500_000) ]
