(* Benchmark harness reproducing every table and figure of the paper's
   evaluation (§6), scaled to the host (see DESIGN.md for the
   substitutions). Select experiments by name:

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig2 fig6    # a subset
     MP_BENCH_FULL=1 dune exec bench/main.exe # larger sizes/durations
     dune exec bench/main.exe -- fig2 --json out.json
                                              # also dump results as JSON
                                              # (or MP_BENCH_JSON=out.json)

   Experiments: table1 fig2 fig3 fig4 fig5 fig6 fig7a fig7bc stall crash
   micro pipe alloc ablation-index ablation-epoch ext-zipf ext-hash
   ext-queue latency service elastic transport *)

module Config = Smr_core.Config
module Workload = Mp_harness.Workload
module Runner = Mp_harness.Runner
module Report = Mp_harness.Report
module Instances = Mp_harness.Instances

let full = Sys.getenv_opt "MP_BENCH_FULL" <> None

(* -- machine-readable sink: --json FILE (or MP_BENCH_JSON=FILE) ----------- *)

(* Every Runner.result produced by the suite is also recorded, labelled
   with its experiment/structure/scheme, and dumped as a JSON array at
   exit so the perf trajectory is diffable across commits. *)
let json_path = ref (Sys.getenv_opt "MP_BENCH_JSON")

(* --warmup SECS: per-run warmup window (real workload, excluded from
   every reported metric — ops, GC words, fences, wasted samples). *)
let warmup = ref 0.5
let json_results : (string * string * string * Runner.result) list ref = ref []
let current_experiment = ref ""

let note ~ds ~scheme (r : Runner.result) =
  if !json_path <> None then
    json_results := (!current_experiment, ds, scheme, r) :: !json_results;
  r

let write_json () =
  match !json_path with
  | None -> ()
  | Some path -> (
    try
      let oc = open_out path in
      output_string oc (Runner.results_to_json (List.rev !json_results));
      close_out oc;
      Printf.printf "[wrote %d results to %s]\n%!" (List.length !json_results) path
    with Sys_error msg -> Printf.eprintf "cannot write JSON: %s\n" msg)

(* Scaled-down defaults; the paper used 88 HTs, 5 s runs, S = 500K / 5K. *)
let thread_counts = if full then [ 1; 2; 4; 8; 16 ] else [ 1; 2; 4; 8 ]
let duration_s = if full then 2.0 else 0.35
let tree_size = if full then 65_536 else 16_384
let list_size = if full then 2_048 else 512

(* The paper's figures compare MP, IBR, HE and HP (plus DTA on the list). *)
let figure_schemes = [ "mp"; "ibr"; "he"; "hp" ]

(* The paper fixes margin = 2^20 for S = 500K (BST/skip list) and S = 5K
   (list): one margin covers ~128 key gaps on the trees and ~2 on the
   list. At our scaled sizes, preserving the margin-to-gap ratio keeps the
   protection behaviour comparable, so figure margins scale with S. *)
let margin_for ~init_size ~gaps =
  let gap = 0xFFFF_FFFF / (2 * init_size) in
  max (1 lsl 17) (gap * gaps)

let spec ?margin ~threads ~init_size ~mix () =
  let config = Config.default ~threads in
  let config =
    match margin with Some m -> Config.with_margin config m | None -> config
  in
  { (Runner.default ~threads ~init_size ~mix ~config) with
    Runner.duration_s;
    warmup_s = !warmup;
  }

let ds_name = function
  | Instances.List_ds -> "list"
  | Instances.Skiplist_ds -> "skiplist"
  | Instances.Bst_ds -> "bst"
  | Instances.Hash_ds -> "hash"

let run_ds ?margin ds ~threads ~init_size ~mix scheme_name =
  note ~ds:(ds_name ds) ~scheme:scheme_name
    (Runner.run (Instances.make ds (Instances.scheme_of_name scheme_name))
       (spec ?margin ~threads ~init_size ~mix ()))

let run_dta ~threads ~init_size ~mix =
  note ~ds:"list" ~scheme:"dta"
    (Runner.run (module Dstruct.Dta_list.As_set) (spec ~threads ~init_size ~mix ()))

let fmt_result (r : Runner.result) =
  Report.fmt_throughput r.Runner.throughput ^ if r.Runner.oom then "*" else ""

(* -- Table 1: qualitative scheme comparison ------------------------------ *)

let table1 () =
  let open Smr_core.Smr_intf in
  let row name (p : properties) integration =
    [
      name;
      p.full_name;
      (match p.wasted_memory with
      | Bounded -> "bounded"
      | Robust -> "robust"
      | Unbounded -> "unbounded");
      string_of_int p.per_node_words;
      (if p.self_contained then "yes" else "no");
      integration;
    ]
  in
  let rows =
    List.map
      (fun (name, (module S : Smr_core.Smr_intf.S)) ->
        row name S.properties
          (if S.properties.needs_per_reference_calls then "per-reference" else "per-operation"))
      Instances.schemes
    @ [ row "dta" Dstruct.Dta_list.properties "per-k-hops (list only; frozen nodes leak)" ]
  in
  Report.table ~title:"Table 1: SMR scheme comparison"
    ~header:
      [ "scheme"; "full name"; "wasted memory"; "node words"; "self-contained"; "integration" ]
    rows

(* -- Figures 2/3/4: throughput sweeps ------------------------------------ *)

let throughput_figure ~title ~ds ~init_size ~gaps ~with_dta () =
  let margin = margin_for ~init_size ~gaps in
  List.iter
    (fun mix ->
      let header =
        ("threads" :: figure_schemes) @ if with_dta then [ "dta" ] else []
      in
      let rows =
        List.map
          (fun threads ->
            let cells =
              List.map
                (fun sname -> fmt_result (run_ds ~margin ds ~threads ~init_size ~mix sname))
                figure_schemes
            in
            let dta_cell =
              if with_dta then [ fmt_result (run_dta ~threads ~init_size ~mix) ] else []
            in
            (string_of_int threads :: cells) @ dta_cell)
          thread_counts
      in
      Report.table
        ~title:(Printf.sprintf "%s — %s (ops/s)" title mix.Workload.name)
        ~header rows)
    Workload.all

let fig2 () =
  throughput_figure
    ~title:(Printf.sprintf "Figure 2: NM BST throughput (S=%d)" tree_size)
    ~ds:Instances.Bst_ds ~init_size:tree_size ~gaps:128 ~with_dta:false ()

let fig3 () =
  throughput_figure
    ~title:(Printf.sprintf "Figure 3: skip list throughput (S=%d)" tree_size)
    ~ds:Instances.Skiplist_ds ~init_size:tree_size ~gaps:128 ~with_dta:false ()

let fig4 () =
  throughput_figure
    ~title:(Printf.sprintf "Figure 4: linked list throughput (S=%d)" list_size)
    ~ds:Instances.List_ds ~init_size:list_size ~gaps:2 ~with_dta:true ()

(* -- Figure 5: memory fences per traversed node (MP vs HP, read-only) ---- *)

let fig5 () =
  let threads = List.fold_left max 1 thread_counts in
  let rows =
    List.map
      (fun (ds_name, ds, init_size, gaps) ->
        let fences sname =
          let margin = margin_for ~init_size ~gaps in
          let r = run_ds ~margin ds ~threads ~init_size ~mix:Workload.read_only sname in
          Printf.sprintf "%.3f" r.Runner.fences_per_node
        in
        [ ds_name; fences "mp"; fences "hp" ])
      [
        ("bst", Instances.Bst_ds, tree_size, 128);
        ("skiplist", Instances.Skiplist_ds, tree_size, 128);
        ("list", Instances.List_ds, list_size, 2);
      ]
  in
  Report.table
    ~title:
      (Printf.sprintf "Figure 5: fences per traversed node, read-only, %d threads" threads)
    ~header:[ "structure"; "mp"; "hp" ] rows

(* -- Figure 6: wasted memory, read-dominated ------------------------------ *)

let fig6 () =
  List.iter
    (fun (ds_name, ds, init_size, gaps) ->
      let margin = margin_for ~init_size ~gaps in
      let header = "threads" :: figure_schemes in
      let rows =
        List.map
          (fun threads ->
            string_of_int threads
            :: List.map
                 (fun sname ->
                   let r =
                     run_ds ~margin ds ~threads ~init_size ~mix:Workload.read_dominated sname
                   in
                   Printf.sprintf "%.0f" r.Runner.wasted_avg)
                 figure_schemes)
          thread_counts
      in
      Report.table
        ~title:
          (Printf.sprintf "Figure 6 (%s): avg retired-but-unreclaimed nodes, read-dominated"
             ds_name)
        ~header rows)
    [
      ("bst", Instances.Bst_ds, tree_size, 128);
      ("skiplist", Instances.Skiplist_ds, tree_size, 128);
      ("list", Instances.List_ds, list_size, 2);
    ]

(* -- Figure 7a: ascending-key list, MP vs HP (index-collision worst case) - *)

let fig7a () =
  let header = [ "threads"; "mp"; "hp" ] in
  let rows =
    List.map
      (fun threads ->
        let run sname =
          let config = Config.default ~threads in
          let s =
            {
              (Runner.default ~threads ~init_size:list_size ~mix:Workload.read_only ~config) with
              Runner.duration_s;
              warmup_s = !warmup;
              init = Workload.Ascending_init;
              key_range = list_size;
            }
          in
          fmt_result
            (note ~ds:"list" ~scheme:sname
               (Runner.run (Instances.make Instances.List_ds (Instances.scheme_of_name sname)) s))
        in
        [ string_of_int threads; run "mp"; run "hp" ])
      thread_counts
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Figure 7a: list built by ascending insertion (all indices collide), read-only (S=%d)"
         list_size)
    ~header rows

(* -- Figures 7b/7c: margin-size sensitivity ------------------------------- *)

let fig7bc () =
  let threads = List.fold_left max 1 thread_counts in
  let margins = List.init 10 (fun i -> 17 + i) in
  let rows =
    List.map
      (fun log2m ->
        let config = Config.with_margin (Config.default ~threads) (1 lsl log2m) in
        let s =
          {
            (Runner.default ~threads ~init_size:tree_size ~mix:Workload.write_dominated ~config) with
            Runner.duration_s;
            warmup_s = !warmup;
          }
        in
        let r = note ~ds:"bst" ~scheme:"mp" (Runner.run (Instances.make Instances.Bst_ds Instances.mp) s) in
        [
          Printf.sprintf "2^%d" log2m;
          fmt_result r;
          Printf.sprintf "%.0f" r.Runner.wasted_avg;
          string_of_int r.Runner.wasted_max;
        ])
      margins
  in
  Report.table
    ~title:
      (Printf.sprintf "Figures 7b/7c: margin sensitivity, BST write-dominated, %d threads (S=%d)"
         threads tree_size)
    ~header:[ "margin"; "throughput"; "wasted avg"; "wasted max" ]
    rows

(* -- Stall experiment: deterministic robustness comparison ---------------- *)

(* The watchdog evaluates the scheme's declared waste bound (Table 1)
   against the live counter while the fault plan runs. *)
let watchdog_for sname ~config ~threads ~size_at_arm =
  let (module S : Smr_core.Smr_intf.S) = Instances.scheme_of_name sname in
  Mp_harness.Watchdog.spec_for ~scheme:sname ~properties:S.properties ~config ~threads
    ~size_at_arm ()

let fmt_verdict (r : Runner.result) =
  match r.Runner.watchdog with
  | None -> "-"
  | Some v -> Mp_harness.Watchdog.to_string v

(* Unlike the legacy op-boundary pause (Runner.stall), the fault plan
   stalls tid 0 *inside* the protect/validate window — reservation
   published, not yet validated — the exact schedule the robustness
   theorems quantify over. *)
let stall () =
  let threads = 4 in
  let rows =
    List.map
      (fun sname ->
        let config = Config.default ~threads in
        let s =
          {
            (Runner.default ~threads ~init_size:list_size ~mix:Workload.write_dominated ~config) with
            Runner.duration_s = duration_s *. 2.0;
            warmup_s = !warmup;
            faults =
              Some
                (Mp_util.Fault.plan ~label:"bench-stall"
                   [
                     Mp_util.Fault.stall_event ~tid:0 ~point:Mp_util.Fault.Protect_validate
                       ~after_hits:50 ~every:200 ~pause:0.02 ();
                   ]);
            watchdog = Some (watchdog_for sname ~config ~threads ~size_at_arm:(2 * 2 * list_size));
          }
        in
        let r =
          note ~ds:"list" ~scheme:sname
            (Runner.run (Instances.make Instances.List_ds (Instances.scheme_of_name sname)) s)
        in
        [
          sname;
          fmt_result r;
          Printf.sprintf "%.0f" r.Runner.wasted_avg;
          string_of_int r.Runner.wasted_max;
          string_of_int r.Runner.wasted_peak;
          fmt_verdict r;
        ])
      [ "mp"; "hp"; "ibr"; "he"; "ebr" ]
  in
  Report.table
    ~title:
      "Stall injection: list write-dominated, tid 0 sleeping inside the protect/validate window"
    ~header:[ "scheme"; "throughput"; "wasted avg"; "wasted max"; "wasted peak"; "watchdog" ]
    rows

(* -- Crash experiment: the dead-thread scenario of §4.4 ------------------- *)

(* One domain dies mid-protect — reservation published, never cleared,
   never cleared up — while the rest keep churning. Bounded schemes (MP,
   HP) must hold their predetermined waste bound anyway; robust schemes
   hold a size-at-crash bound; EBR's waste grows with the churn (the
   watchdog records the expected violation of the reference envelope). *)
let crash () =
  let threads = 4 in
  let rows =
    List.map
      (fun sname ->
        let config = Config.default ~threads in
        let s =
          {
            (Runner.default ~threads ~init_size:list_size ~mix:Workload.write_dominated ~config) with
            Runner.duration_s = duration_s *. 2.0;
            warmup_s = !warmup;
            faults =
              Some
                (Mp_util.Fault.plan ~label:"bench-crash"
                   [
                     Mp_util.Fault.crash_event ~tid:0 ~point:Mp_util.Fault.Protect_validate
                       ~after_hits:1_000;
                   ]);
            watchdog = Some (watchdog_for sname ~config ~threads ~size_at_arm:(2 * 2 * list_size));
          }
        in
        let r =
          note ~ds:"list" ~scheme:sname
            (Runner.run (Instances.make Instances.List_ds (Instances.scheme_of_name sname)) s)
        in
        [
          sname;
          fmt_result r;
          string_of_int r.Runner.wasted_max;
          string_of_int r.Runner.wasted_peak;
          String.concat "," (List.map string_of_int r.Runner.crashed);
          String.concat "," (List.map string_of_int r.Runner.pinning_tids);
          fmt_verdict r;
        ])
      [ "mp"; "hp"; "ibr"; "he"; "ebr" ]
  in
  Report.table
    ~title:
      "Crash injection: list write-dominated, tid 0 dies inside the protect/validate window"
    ~header:[ "scheme"; "throughput"; "wasted max"; "wasted peak"; "crashed"; "pinning"; "watchdog" ]
    rows

(* -- Bechamel micro-benchmarks: per-operation latency --------------------- *)

let micro () =
  let open Bechamel in
  let micro_size = 4_096 in
  let mk_case ds_name ds sname op_name =
    let (module SET : Dstruct.Set_intf.SET) =
      Instances.make ds (Instances.scheme_of_name sname)
    in
    let config = Config.default ~threads:1 in
    let t = SET.create ~threads:1 ~capacity:((micro_size * 4) + 65_536) config in
    let s = SET.session t ~tid:0 in
    let rng = Mp_util.Rng.create 77 in
    let inserted = ref 0 in
    while !inserted < micro_size do
      if SET.insert s ~key:(Mp_util.Rng.below rng (2 * micro_size)) ~value:1 then incr inserted
    done;
    let body =
      match op_name with
      | "contains" ->
        fun () -> ignore (SET.contains s (Mp_util.Rng.below rng (2 * micro_size)) : bool)
      | _ ->
        fun () ->
          let k = Mp_util.Rng.below rng (2 * micro_size) in
          if Mp_util.Rng.bool rng then ignore (SET.insert s ~key:k ~value:1 : bool)
          else ignore (SET.remove s k : bool)
    in
    Test.make ~name:(Printf.sprintf "%s/%s/%s" ds_name sname op_name) (Staged.stage body)
  in
  let tests =
    List.concat_map
      (fun (ds_name, ds) ->
        List.concat_map
          (fun sname -> [ mk_case ds_name ds sname "contains"; mk_case ds_name ds sname "update" ])
          figure_schemes)
      [ ("bst", Instances.Bst_ds); ("skiplist", Instances.Skiplist_ds) ]
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let ns =
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.sprintf "%.0f" est
          | _ -> "n/a"
        in
        [ name; ns ] :: acc)
      results []
    |> List.sort (fun r1 r2 -> String.compare (List.hd r1) (List.hd r2))
  in
  Report.table ~title:"Micro: single-thread per-operation latency (ns/op, OLS)"
    ~header:[ "case"; "ns/op" ] rows

(* -- Micro: alloc/free pipe through the mempool transfer path ------------- *)

(* Thread A allocs, thread B frees: every slot crosses the global free
   list twice (B spills, A refills), the worst case for the transfer
   path. Hand-off between the pair moves whole batches through an SPSC
   ring so the pipe itself costs ~nothing per slot and the pool transfer
   dominates. Chained vs per-slot isolates exactly the CAS-per-chain vs
   CAS-per-slot difference the magazine batching buys. *)
let run_pipe ~pairs ~transfer ~duration =
  let threads = 2 * pairs in
  let fair_share = 1024 in
  (* Deep ring: a blocked side sleeps (yielding the core) rather than
     spin-burning its timeslice, so the ring must hold a whole
     timeslice's worth of slots for the running side to chew through. *)
  let ring_cap = 128 and batch_len = 2048 in
  let capacity = pairs * (((ring_cap + 4) * batch_len) + (4 * fair_share)) in
  let pool = Mempool.Core.create ~capacity ~threads ~transfer ~fair_share () in
  let stop = Atomic.make false in
  let barrier = Atomic.make 0 in
  let ops = Array.make (Mp_util.Padding.spaced_length threads) 0 in
  (* Self-allocation accounting: instead of merely *claiming* the
     recycling rings keep the pipe's own allocation out of the
     measurement, each domain brackets its run with the same
     [Mp_util.Gcstat] samples the runner uses, and the residual shows up
     in the shared [alloc_words_per_op] telemetry field. *)
  let gc_before = Array.make threads Mp_util.Gcstat.zero in
  let gc_after = Array.make threads Mp_util.Gcstat.zero in
  let rings =
    Array.init pairs (fun _ -> Array.init ring_cap (fun _ -> Atomic.make [||]))
  in
  (* Return path for spent batch arrays: recycling them keeps the pipe's
     own allocation (and minor-GC) cost out of the measurement. *)
  let returns =
    Array.init pairs (fun _ -> Array.init ring_cap (fun _ -> Atomic.make [||]))
  in
  let wait_start () =
    Atomic.incr barrier;
    while Atomic.get barrier < threads do
      Domain.cpu_relax ()
    done
  in
  (* Blocked sides briefly spin then sleep: on an oversubscribed host a
     pure spin wastes the whole timeslice the peer needs. *)
  let blocked_pause spins =
    if !spins < 64 then begin
      incr spins;
      Domain.cpu_relax ()
    end
    else Unix.sleepf 0.0001
  in
  let producer pair () =
    let tid = 2 * pair in
    let ring = rings.(pair) and back = returns.(pair) in
    wait_start ();
    gc_before.(tid) <- Mp_util.Gcstat.sample ();
    let produced = ref 0 and w = ref 0 and rb = ref 0 in
    let batch = ref (Array.make batch_len 0) and filled = ref 0 in
    let spins = ref 0 in
    let fresh_batch () =
      let slot = back.(!rb land (ring_cap - 1)) in
      let recycled = Atomic.get slot in
      if Array.length recycled > 0 then begin
        Atomic.set slot [||];
        incr rb;
        recycled
      end
      else Array.make batch_len 0
    in
    while not (Atomic.get stop) do
      (match Mempool.Core.alloc pool ~tid with
      | id ->
        !batch.(!filled) <- id;
        incr filled;
        incr produced;
        if !filled = batch_len then begin
          let slot = ring.(!w land (ring_cap - 1)) in
          while Array.length (Atomic.get slot) > 0 && not (Atomic.get stop) do
            blocked_pause spins
          done;
          spins := 0;
          if not (Atomic.get stop) then begin
            Atomic.set slot !batch;
            incr w;
            batch := fresh_batch ();
            filled := 0
          end
        end
      | exception Mempool.Exhausted -> blocked_pause spins)
    done;
    (* Return the partial batch so the pool quiesces for the invariant
       checks below. *)
    for i = 0 to !filled - 1 do
      Mempool.Core.free pool ~tid !batch.(i)
    done;
    gc_after.(tid) <- Mp_util.Gcstat.sample ();
    ops.(Mp_util.Padding.spaced_index tid) <- !produced
  in
  let consumer pair () =
    let tid = (2 * pair) + 1 in
    let ring = rings.(pair) and back = returns.(pair) in
    wait_start ();
    gc_before.(tid) <- Mp_util.Gcstat.sample ();
    let freed = ref 0 and r = ref 0 and wb = ref 0 in
    let spins = ref 0 in
    let drain_slot slot =
      let batch = Atomic.get slot in
      let n = Array.length batch in
      if n > 0 then begin
        Atomic.set slot [||];
        incr r;
        for i = 0 to n - 1 do
          Mempool.Core.free pool ~tid batch.(i)
        done;
        freed := !freed + n;
        (* Best-effort recycle; a full return ring just lets the GC have
           this one. *)
        let rslot = back.(!wb land (ring_cap - 1)) in
        if Array.length (Atomic.get rslot) = 0 then begin
          Atomic.set rslot batch;
          incr wb
        end;
        true
      end
      else false
    in
    while not (Atomic.get stop) do
      if drain_slot ring.(!r land (ring_cap - 1)) then spins := 0 else blocked_pause spins
    done;
    (* Drain what producers already published so nothing stays parked in
       the ring. *)
    while drain_slot ring.(!r land (ring_cap - 1)) do
      ()
    done;
    gc_after.(tid) <- Mp_util.Gcstat.sample ();
    ops.(Mp_util.Padding.spaced_index tid) <- !freed
  in
  let domains =
    Array.init threads (fun i ->
        let pair = i / 2 in
        if i land 1 = 0 then Domain.spawn (producer pair) else Domain.spawn (consumer pair))
  in
  let t_start = Unix.gettimeofday () in
  Unix.sleepf duration;
  Atomic.set stop true;
  let elapsed = Unix.gettimeofday () -. t_start in
  Array.iter Domain.join domains;
  let total_ops = Array.fold_left ( + ) 0 ops in
  let throughput = float_of_int total_ops /. elapsed in
  let alloc_words = ref 0.0 and promoted = ref 0.0 and minor_gcs = ref 0 in
  for tid = 0 to threads - 1 do
    let before = gc_before.(tid) and after = gc_after.(tid) in
    alloc_words := !alloc_words +. Mp_util.Gcstat.alloc_words ~before ~after;
    promoted := !promoted +. Mp_util.Gcstat.promoted_words ~before ~after;
    minor_gcs := !minor_gcs + Mp_util.Gcstat.minor_collections ~before ~after
  done;
  if Mempool.Core.live_count pool <> 0 then
    failwith "pipe: slots leaked across the transfer path";
  (total_ops, throughput, !alloc_words, !promoted, !minor_gcs)

let pipe_result ~pairs ~total_ops ~throughput ~alloc_words ~promoted ~minor_gcs :
    Runner.result =
  let per_op x = if total_ops = 0 then 0.0 else x /. float_of_int total_ops in
  {
    Runner.spec_threads = 2 * pairs;
    mix_name = "alloc_free_pipe";
    total_ops;
    throughput;
    wasted_avg = 0.0;
    wasted_max = 0;
    wasted_peak = 0;
    fences = 0;
    traversed = 0;
    fences_per_node = 0.0;
    scan_passes = 0;
    scan_time_s = 0.0;
    violations = 0;
    oom = false;
    alloc_stalls = 0;
    ring_full = 0;
    deadline_exceeded = 0;
    crashed = [];
    pinning_tids = [];
    watchdog = None;
    final_size = 0;
    latency = None;
    alloc_words_per_op = per_op alloc_words;
    promoted_words_per_op = per_op promoted;
    minor_gcs;
    arenas_attached = 0;
    arenas_detached = 0;
    resident_slots = 0;
  }

let pipe () =
  let rows =
    List.map
      (fun pairs ->
        let measure transfer scheme =
          (* Scheduler noise on an oversubscribed host is the dominant
             variance source; give the pipe a slightly longer window than
             the quick-scale default. *)
          let total_ops, throughput, alloc_words, promoted, minor_gcs =
            run_pipe ~pairs ~transfer ~duration:(Float.max duration_s 0.7)
          in
          let r =
            note ~ds:"mempool" ~scheme
              (pipe_result ~pairs ~total_ops ~throughput ~alloc_words ~promoted ~minor_gcs)
          in
          (r.Runner.throughput, r.Runner.alloc_words_per_op)
        in
        let chained, chained_alloc = measure Mempool.Chained "chained" in
        let per_slot, _ = measure Mempool.Per_slot "per_slot" in
        [
          string_of_int (2 * pairs);
          Report.fmt_throughput chained;
          Report.fmt_throughput per_slot;
          Printf.sprintf "%.2fx" (chained /. per_slot);
          Report.fmt_words_per_op chained_alloc;
        ])
      [ 1; 2; 4 ]
  in
  Report.table
    ~title:
      "Pipe: alloc/free producer-consumer pairs through the global free list (allocs+frees/s)"
    ~header:[ "threads"; "chained"; "per-slot"; "speedup"; "self words/op" ]
    rows

(* -- Alloc: read-path allocation telemetry ------------------------------- *)

(* The zero-allocation read path, measured end to end: single-threaded
   read-only runs per structure × scheme, reporting the runner's
   per-domain GC deltas. The leaky list is the acceptance gate (< 1
   word/op in the release profile); the rest of the table localizes any
   regression to a structure or a scheme wrapper. *)
let alloc_telemetry () =
  let threads = 1 in
  let rows =
    List.concat_map
      (fun (name, ds, init_size, gaps) ->
        List.map
          (fun sname ->
            let margin = margin_for ~init_size ~gaps in
            let r = run_ds ~margin ds ~threads ~init_size ~mix:Workload.read_only sname in
            [
              name;
              sname;
              fmt_result r;
              Report.fmt_words_per_op r.Runner.alloc_words_per_op;
              Report.fmt_words_per_op r.Runner.promoted_words_per_op;
              string_of_int r.Runner.minor_gcs;
            ])
          ("none" :: figure_schemes))
      [
        ("list", Instances.List_ds, list_size, 2);
        ("skiplist", Instances.Skiplist_ds, tree_size, 128);
        ("bst", Instances.Bst_ds, tree_size, 128);
        ("hash", Instances.Hash_ds, tree_size, 128);
      ]
  in
  Report.table
    ~title:"Alloc: GC words per read-only operation (1 thread; 0.00 = allocation-free)"
    ~header:[ "structure"; "scheme"; "throughput"; "words/op"; "promoted/op"; "minor GCs" ]
    rows

(* -- Extension: index-assignment policy ablation (paper §4.1 future work) *)

let ablation_index () =
  let policies =
    [ ("midpoint", Config.Midpoint); ("golden", Config.Golden); ("random", Config.Randomized) ]
  in
  (* Worst case (ascending insertion, Fig. 7a) and the default random
     workload, per policy: collision rate and read throughput. *)
  let rows =
    List.concat_map
      (fun (pname, policy) ->
        List.map
          (fun (iname, init) ->
            let threads = 2 in
            let config =
              Config.with_index_policy (Config.default ~threads) policy
              |> fun c -> Config.with_margin c (margin_for ~init_size:list_size ~gaps:2)
            in
            let s =
              {
                (Runner.default ~threads ~init_size:list_size ~mix:Workload.read_only ~config) with
                Runner.duration_s;
                warmup_s = !warmup;
                init;
                key_range = (match init with Workload.Ascending_init -> list_size | _ -> 2 * list_size);
              }
            in
            let r = note ~ds:"list" ~scheme:"mp" (Runner.run (Instances.make Instances.List_ds Instances.mp) s) in
            let st_fences = Printf.sprintf "%.3f" r.Runner.fences_per_node in
            [ pname; iname; fmt_result r; st_fences ])
          [ ("ascending", Workload.Ascending_init); ("random", Workload.Uniform_init) ])
      policies
  in
  Report.table
    ~title:"Ablation: MP index-assignment policy (list, read-only after build)"
    ~header:[ "policy"; "insertion order"; "throughput"; "fences/node" ]
    rows

(* -- Extension: epoch advance per unlink (paper §4.4 future work) --------- *)

let ablation_epoch () =
  (* "If we advance the global epochs on every node unlink (as in HE), the
     per-thread bound improves to #HP + O(#MP × M)" — measure the waste /
     overhead trade-off of the epoch frequency under an injected stall. *)
  let threads = 4 in
  let rows =
    List.map
      (fun (label, freq) ->
        let config = Config.with_epoch_freq (Config.default ~threads) freq in
        let s =
          {
            (Runner.default ~threads ~init_size:list_size ~mix:Workload.write_dominated ~config) with
            Runner.duration_s;
            warmup_s = !warmup;
            stall = Some { Runner.stall_tid = 0; every_ops = 100; pause_s = 0.02 };
          }
        in
        let r = note ~ds:"list" ~scheme:"mp" (Runner.run (Instances.make Instances.List_ds Instances.mp) s) in
        [
          label;
          fmt_result r;
          Printf.sprintf "%.0f" r.Runner.wasted_avg;
          string_of_int r.Runner.wasted_max;
        ])
      [
        ("every unlink (F=1)", 1);
        ("F=10", 10);
        ("F=150", 150);
        (Printf.sprintf "paper default (F=150T=%d)" (150 * threads), 150 * threads);
      ]
  in
  Report.table
    ~title:"Ablation: MP epoch-advance frequency under an injected stall (list, write-dominated)"
    ~header:[ "epoch freq"; "throughput"; "wasted avg"; "wasted max" ]
    rows

(* -- Extension: key-distribution sensitivity ------------------------------ *)

let ext_zipf () =
  (* §6 "Key Distribution & MP Index Collisions": MP's margin efficacy
     depends on how keys are laid out in the structure, not on the query
     distribution — zipfian queries over a uniformly-built tree should
     perform like uniform queries. *)
  let threads = 4 in
  let rows =
    List.concat_map
      (fun sname ->
        List.map
          (fun (dist, alpha) ->
            let margin = margin_for ~init_size:tree_size ~gaps:128 in
            let config = Config.with_margin (Config.default ~threads) margin in
            let s =
              {
                (Runner.default ~threads ~init_size:tree_size ~mix:Workload.read_dominated
                   ~config)
                with
                Runner.duration_s;
                warmup_s = !warmup;
                zipf_alpha = alpha;
              }
            in
            let r =
              note ~ds:"bst" ~scheme:sname
                (Runner.run (Instances.make Instances.Bst_ds (Instances.scheme_of_name sname)) s)
            in
            [ sname; dist; fmt_result r; Printf.sprintf "%.3f" r.Runner.fences_per_node ])
          [ ("uniform", None); ("zipf a=0.99", Some 0.99); ("zipf a=1.5", Some 1.5) ])
      [ "mp"; "hp" ]
  in
  Report.table
    ~title:"Extension: query-key skew (BST read-dominated) — MP overhead tracks layout, not queries"
    ~header:[ "scheme"; "query dist"; "throughput"; "fences/node" ]
    rows

(* -- Extension: hash-table client (MP on a per-bucket-ordered structure) -- *)

let ext_hash () =
  let run_hash (module S : Smr_core.Smr_intf.S) name threads =
    let module H = Dstruct.Hash_table.Make (S) in
    let size = tree_size in
    let config = Config.default ~threads in
    let t = H.create ~threads ~capacity:((size * 4) + (threads * 65536)) ~buckets:1024 config in
    let s0 = H.session t ~tid:0 in
    let rng = Mp_util.Rng.create 7 in
    let inserted = ref 0 in
    while !inserted < size do
      if H.insert s0 ~key:(Mp_util.Rng.below rng (2 * size)) ~value:1 then incr inserted
    done;
    let stop = Atomic.make false in
    let ops = Array.make threads 0 in
    let domains =
      Array.init threads (fun tid ->
          Domain.spawn (fun () ->
              let s = H.session t ~tid in
              let rng = Mp_util.Rng.split ~seed:13 ~tid in
              let n = ref 0 in
              while not (Atomic.get stop) do
                let k = Mp_util.Rng.below rng (2 * size) in
                (match Mp_util.Rng.below rng 100 with
                | r when r < 90 -> ignore (H.contains s k : bool)
                | r when r < 95 -> ignore (H.insert s ~key:k ~value:k : bool)
                | _ -> ignore (H.remove s k : bool));
                incr n
              done;
              ops.(tid) <- !n))
    in
    Unix.sleepf duration_s;
    Atomic.set stop true;
    Array.iter Domain.join domains;
    let total = Array.fold_left ( + ) 0 ops in
    let st = H.smr_stats t in
    [
      name;
      string_of_int threads;
      Report.fmt_throughput (float_of_int total /. duration_s);
      string_of_int st.Smr_core.Smr_intf.wasted;
    ]
  in
  let rows =
    List.concat_map
      (fun threads ->
        [
          run_hash (module Mp.Margin_ptr) "mp" threads;
          run_hash (module Smr_schemes.Hp) "hp" threads;
          run_hash (module Smr_schemes.Ibr) "ibr" threads;
        ])
      [ 1; 4 ]
  in
  Report.table
    ~title:
      (Printf.sprintf "Extension: lock-free hash table (1024 buckets, S=%d, read-dominated)"
         tree_size)
    ~header:[ "scheme"; "threads"; "throughput"; "wasted" ]
    rows

(* -- Extension: non-search client (Table 1's "= HP (Other DS)" cell) ------ *)

let ext_queue () =
  let run_queue (module S : Smr_core.Smr_intf.S) name threads =
    let module Q = Dstruct.Ms_queue.Make (S) in
    let config = Config.default ~threads in
    let t = Q.create ~threads ~capacity:(1 lsl 20) config in
    (* prefill so dequeues rarely see empty *)
    let s0 = Q.session t ~tid:0 in
    for v = 1 to 10_000 do
      Q.enqueue s0 v
    done;
    let stop = Atomic.make false in
    let ops = Array.make threads 0 in
    let domains =
      Array.init threads (fun tid ->
          Domain.spawn (fun () ->
              let s = Q.session t ~tid in
              let rng = Mp_util.Rng.split ~seed:3 ~tid in
              let n = ref 0 in
              while not (Atomic.get stop) do
                if Mp_util.Rng.bool rng then Q.enqueue s !n
                else ignore (Q.dequeue s : int option);
                incr n
              done;
              ops.(tid) <- !n))
    in
    Unix.sleepf duration_s;
    Atomic.set stop true;
    Array.iter Domain.join domains;
    let total = Array.fold_left ( + ) 0 ops in
    let st = Q.smr_stats t in
    [
      name;
      string_of_int threads;
      Report.fmt_throughput (float_of_int total /. duration_s);
      string_of_int st.Smr_core.Smr_intf.wasted;
      string_of_int st.Smr_core.Smr_intf.hp_fallbacks;
    ]
  in
  let rows =
    List.concat_map
      (fun threads ->
        [
          run_queue (module Mp.Margin_ptr) "mp" threads;
          run_queue (module Smr_schemes.Hp) "hp" threads;
          run_queue (module Smr_schemes.Ibr) "ibr" threads;
        ])
      [ 1; 4 ]
  in
  Report.table
    ~title:
      "Extension: MS queue (non-search client) — MP falls back to HP (Table 1 \"= HP (Other DS)\")"
    ~header:[ "scheme"; "threads"; "throughput"; "wasted"; "hp fallbacks" ]
    rows

(* -- Extension: per-operation latency percentiles -------------------------- *)

let latency () =
  let threads = 4 in
  let rows =
    List.map
      (fun sname ->
        let margin = margin_for ~init_size:tree_size ~gaps:128 in
        let config = Config.with_margin (Config.default ~threads) margin in
        let s =
          {
            (Runner.default ~threads ~init_size:tree_size ~mix:Workload.read_dominated ~config) with
            Runner.duration_s = duration_s *. 2.0;
            warmup_s = !warmup;
            record_latency = true;
          }
        in
        let r =
          note ~ds:"bst" ~scheme:sname
            (Runner.run (Instances.make Instances.Bst_ds (Instances.scheme_of_name sname)) s)
        in
        match r.Runner.latency with
        | None -> [ sname; "-"; "-"; "-"; "-" ]
        | Some h ->
          let p q = Printf.sprintf "%d" (Mp_util.Histogram.percentile_ns h q) in
          [ sname; p 50.0; p 90.0; p 99.0; p 99.9 ])
      [ "mp"; "ibr"; "he"; "hp"; "ebr" ]
  in
  Report.table
    ~title:
      (Printf.sprintf "Extension: per-operation latency (ns), BST read-dominated, %d threads"
         threads)
    ~header:[ "scheme"; "p50"; "p90"; "p99"; "p99.9" ]
    rows

(* -- Extension: sharded request service with batched SMR ------------------- *)

(* --shards N restricts the shard sweep (the CI smoke job runs 2). *)
let service_shards : int option ref = ref None

(* One service run: an [Instances] structure sharded across N domains,
   driven by the closed- or open-loop load generator. The numbers are
   folded into a Runner.result so the service rows share the JSON schema
   (and the latency/waste fields) with every other experiment; fields
   the service cannot measure per-domain (GC words) report 0. *)
let run_service ?zipf ?(mget = 1) ?(chain = 1) ?(clients = 2) ds sname ~shards
    ~batch ~mode ~read_pct ~insert_pct ~init_size =
  let module Service = Mp_service.Service in
  let module Loadgen = Mp_service.Loadgen in
  let (module SET : Dstruct.Set_intf.SET) =
    Instances.make ds (Instances.scheme_of_name sname)
  in
  let config = Config.default ~threads:shards in
  let capacity = (init_size * 4) + (shards * 65536) in
  let set = SET.create ~threads:shards ~capacity config in
  let s0 = SET.session set ~tid:0 in
  let rng = Mp_util.Rng.create 7 in
  let inserted = ref 0 in
  while !inserted < init_size do
    if SET.insert s0 ~key:(Mp_util.Rng.below rng (2 * init_size)) ~value:1 then incr inserted
  done;
  SET.flush s0;
  let stats0 = SET.smr_stats set in
  let traversed0 = SET.traversed set in
  let svc = Service.create (module SET) set ~shards ~batch ~ring_capacity:1024 in
  Service.start svc;
  (* The loadgen's ~2 ms tick doubles as the wasted-memory sampler. *)
  let wasted_sum = ref 0.0 and wasted_samples = ref 0 and wasted_max = ref 0 in
  let tick () =
    let w = (SET.smr_stats set).Smr_core.Smr_intf.wasted in
    wasted_sum := !wasted_sum +. float_of_int w;
    incr wasted_samples;
    if w > !wasted_max then wasted_max := w
  in
  let lg =
    Loadgen.run ~tick svc
      {
        Loadgen.clients;
        duration_s = Float.max duration_s 0.5;
        warmup_s = Float.min !warmup 0.2;
        read_pct;
        insert_pct;
        mget;
        key_range = 2 * init_size;
        zipf_alpha = zipf;
        seed = 0xC0FFEE;
        mode;
        deadline_s = 0.0;
        max_retries = 0;
        chain;
      }
  in
  Service.stop svc;
  let st = Service.stats svc in
  let stats1 = SET.smr_stats set in
  let traversed = SET.traversed set - traversed0 in
  let fences = stats1.Smr_core.Smr_intf.fences - stats0.Smr_core.Smr_intf.fences in
  let r =
    {
      Runner.spec_threads = shards;
      mix_name =
        Printf.sprintf "svc_%s_%dr%di%s%s_B%d"
          (match mode with Loadgen.Closed _ -> "closed" | Loadgen.Open _ -> "open")
          read_pct insert_pct
          (if mget > 1 then Printf.sprintf "_m%d" mget else "")
          (if chain > 1 then Printf.sprintf "_c%d" chain else "")
          batch;
      total_ops = lg.Loadgen.completed;
      throughput = lg.Loadgen.throughput;
      wasted_avg =
        (if !wasted_samples = 0 then 0.0
         else !wasted_sum /. float_of_int !wasted_samples);
      wasted_max = !wasted_max;
      wasted_peak = stats1.Smr_core.Smr_intf.wasted_peak;
      fences;
      traversed;
      fences_per_node =
        (if traversed = 0 then 0.0 else float_of_int fences /. float_of_int traversed);
      scan_passes =
        stats1.Smr_core.Smr_intf.scan_passes - stats0.Smr_core.Smr_intf.scan_passes;
      scan_time_s =
        stats1.Smr_core.Smr_intf.scan_time_s -. stats0.Smr_core.Smr_intf.scan_time_s;
      violations = SET.violations set;
      oom = st.Service.oom > 0;
      alloc_stalls = lg.Loadgen.drops;
      ring_full = lg.Loadgen.ring_full;
      deadline_exceeded = lg.Loadgen.deadline_exceeded;
      crashed = [];
      pinning_tids = SET.pinning_tids set;
      watchdog = None;
      final_size = SET.size set;
      latency = Some lg.Loadgen.latency;
      alloc_words_per_op = 0.0;
      promoted_words_per_op = 0.0;
      minor_gcs = 0;
      arenas_attached = Mempool.Core.arenas_attached (SET.pool set);
      arenas_detached = Mempool.Core.arenas_detached (SET.pool set);
      resident_slots = Mempool.Core.resident_slots (SET.pool set);
    }
  in
  (note ~ds:(ds_name ds) ~scheme:sname r, st)

let service () =
  (* Read-heavy service mix; the batched-vs-unbatched comparison the
     amortization claim is about, per scheme and shard count. *)
  let read_pct = 98 and insert_pct = 1 in
  (* A small hot set (short bucket chains) keeps the per-request
     structure work cheap, so the SMR protocol — the thing batching
     amortizes — is the measured fraction of each request. Low churn
     keeps the global epoch mostly still, so an MP batch window stays
     on its announced epoch instead of falling back to hazards. *)
  let init_size = if full then 1_024 else 512 in
  let shard_counts = match !service_shards with Some n -> [ n ] | None -> [ 2; 8 ] in
  let batched_b = 32 in
  let rows =
    List.concat_map
      (fun sname ->
        List.map
          (fun shards ->
            let run batch =
              (* Deep pipeline keeps the shards' rings full so shard-side
                 protocol cost — the thing batching amortizes — is the
                 bottleneck rather than client pacing. Zipf keys are the
                 service-shaped skew that lets persisted announcements pay
                 off: within a batch window the hot nodes' hazards/margins
                 stay published, so repeated reads hit the own-slot mirror
                 and skip the fence; at B=1 every request tears them down
                 and republishes. *)
              run_service Instances.Hash_ds sname ~shards ~batch
                ~zipf:0.99 ~mget:16
                ~mode:(Mp_service.Loadgen.Closed { pipeline = 128 })
                ~read_pct ~insert_pct ~init_size
            in
            let r1, _ = run 1 in
            let rb, stb = run batched_b in
            let pct h q = string_of_int (Mp_util.Histogram.percentile_ns h q) in
            let lat = Option.get rb.Runner.latency in
            [
              sname;
              string_of_int shards;
              fmt_result r1;
              fmt_result rb;
              Printf.sprintf "%.2fx" (rb.Runner.throughput /. r1.Runner.throughput);
              Printf.sprintf "%.1f"
                (if stb.Mp_service.Service.batches = 0 then 0.0
                 else
                   float_of_int stb.Mp_service.Service.ops
                   /. float_of_int stb.Mp_service.Service.batches);
              pct lat 50.0;
              pct lat 99.0;
              pct lat 99.9;
              string_of_int rb.Runner.wasted_peak;
            ])
          shard_counts)
      [ "mp"; "hp"; "ibr"; "ebr" ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Service: sharded request layer, hash read-heavy Zipf(0.99) mget=16 (S=%d, closed loop, B=%d vs 1)"
         init_size batched_b)
    ~header:
      [ "scheme"; "shards"; "B=1"; "B=32"; "speedup"; "avg batch";
        "p50"; "p99"; "p99.9"; "wasted peak" ]
    rows;
  (* One open-loop (Poisson) row: latency measured from scheduled arrival
     (coordinated-omission corrected), drops reported instead of hidden. *)
  let shards = match !service_shards with Some n -> n | None -> 2 in
  let r, _ =
    run_service Instances.Hash_ds "mp" ~shards ~batch:batched_b ~mget:16
      ~mode:(Mp_service.Loadgen.Open { rate = 50_000.0; window = 64 })
      ~read_pct ~insert_pct ~init_size
  in
  let lat = Option.get r.Runner.latency in
  let pct q = string_of_int (Mp_util.Histogram.percentile_ns lat q) in
  Report.table
    ~title:"Service: open-loop (Poisson, 50K/s per client) — coordinated-omission corrected"
    ~header:[ "scheme"; "shards"; "completed/s"; "drops"; "ring full"; "p50"; "p99"; "p99.9" ]
    [
      [
        "mp"; string_of_int shards;
        Report.fmt_throughput r.Runner.throughput;
        string_of_int r.Runner.alloc_stalls;
        string_of_int r.Runner.ring_full;
        pct 50.0; pct 99.0; pct 99.9;
      ];
    ]

(* -- Extension: elastic pool spike/decay ----------------------------------- *)

(* Spike/decay through the sharded service over an elastic pool
   (max_arenas = 4, one arena far smaller than the spike's working set),
   with the autoscale policy domain armed. The spike phase is
   insert-heavy open-loop: the pool must grow on demand, absorbing
   transient exhaustion as alloc stalls and never replying OOM below
   max_arenas. The decay phase is remove-heavy: the autoscale target
   falls and the drains it requests must bring the footprint back. A
   post-stop settle sweep completes any drain still pending, so the
   reported residency is the steady decayed state. One spike row and one
   decay row per scheme land in the JSON (mix names svc_elastic_spike /
   svc_elastic_decay); the decay row's arena counters are the end-state
   ones. *)
let run_elastic sname =
  let module Service = Mp_service.Service in
  let module Loadgen = Mp_service.Loadgen in
  let (module SET : Dstruct.Set_intf.SET) =
    Instances.make Instances.Hash_ds (Instances.scheme_of_name sname)
  in
  let shards = match !service_shards with Some n -> n | None -> 2 in
  let capacity = 4096 and max_arenas = 4 in
  (* 1.5 arenas of keys: the spike's working set cannot fit arena 0, and
     two arenas of headroom keep transients clear of hard exhaustion. *)
  let range = capacity * 3 / 2 in
  let config = Config.with_max_arenas (Config.default ~threads:shards) max_arenas in
  let set = SET.create ~threads:shards ~capacity config in
  let pool = SET.pool set in
  let s0 = SET.session set ~tid:0 in
  for k = 0 to 255 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  SET.flush s0;
  let stats0 = SET.smr_stats set in
  let traversed0 = SET.traversed set in
  let svc =
    Service.create ~autoscale:Service.default_autoscale
      (module SET)
      set ~shards ~batch:8 ~ring_capacity:1024
  in
  Service.start svc;
  let peak_arenas = ref (Mempool.Core.attached_arenas pool) in
  let wasted_sum = ref 0.0 and wasted_samples = ref 0 and wasted_max = ref 0 in
  let tick () =
    (* The draining arena's parked slots are waste until the detach. *)
    let w =
      (SET.smr_stats set).Smr_core.Smr_intf.wasted + Mempool.Core.detaching_slots pool
    in
    wasted_sum := !wasted_sum +. float_of_int w;
    incr wasted_samples;
    if w > !wasted_max then wasted_max := w;
    let n = Mempool.Core.attached_arenas pool in
    if n > !peak_arenas then peak_arenas := n
  in
  let phase ~duration_s ~rate ~read_pct ~insert_pct ~seed =
    Loadgen.run ~tick svc
      {
        Loadgen.clients = 2;
        duration_s;
        warmup_s = 0.0;
        read_pct;
        insert_pct;
        mget = 1;
        key_range = range;
        zipf_alpha = None;
        seed;
        mode = Loadgen.Open { rate; window = 32 };
        deadline_s = 0.0;
        max_retries = 0;
        chain = 1;
      }
  in
  let spike_s = if full then 2.0 else 0.8 in
  let decay_s = if full then 3.0 else 1.2 in
  let spike = phase ~duration_s:spike_s ~rate:60_000.0 ~read_pct:5 ~insert_pct:90 ~seed:0xE1A5 in
  let arenas_at_spike_end = Mempool.Core.attached_arenas pool in
  let decay = phase ~duration_s:decay_s ~rate:40_000.0 ~read_pct:20 ~insert_pct:0 ~seed:0xDECA in
  Service.stop svc;
  (* Settle: complete any drain still pending — the exiting workers have
     handed their magazines back, so a single-threaded remove sweep plus
     flush-driven scans gets every straggler parked and detached. *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let k = ref 0 in
  while Mempool.Core.attached_arenas pool > 1 && Unix.gettimeofday () < deadline do
    ignore (Mempool.Core.request_shrink pool : int option);
    for _ = 1 to 512 do
      ignore (SET.remove s0 !k : bool);
      k := (!k + 1) mod range
    done;
    SET.flush s0;
    Mempool.Core.release_local pool ~tid:0
  done;
  let st = Service.stats svc in
  let stats1 = SET.smr_stats set in
  let traversed = SET.traversed set - traversed0 in
  let fences = stats1.Smr_core.Smr_intf.fences - stats0.Smr_core.Smr_intf.fences in
  let mk (lg : Loadgen.result) name =
    {
      Runner.spec_threads = shards;
      mix_name = name;
      total_ops = lg.Loadgen.completed;
      throughput = lg.Loadgen.throughput;
      wasted_avg =
        (if !wasted_samples = 0 then 0.0
         else !wasted_sum /. float_of_int !wasted_samples);
      wasted_max = !wasted_max;
      wasted_peak = stats1.Smr_core.Smr_intf.wasted_peak;
      fences;
      traversed;
      fences_per_node =
        (if traversed = 0 then 0.0 else float_of_int fences /. float_of_int traversed);
      scan_passes =
        stats1.Smr_core.Smr_intf.scan_passes - stats0.Smr_core.Smr_intf.scan_passes;
      scan_time_s =
        stats1.Smr_core.Smr_intf.scan_time_s -. stats0.Smr_core.Smr_intf.scan_time_s;
      violations = SET.violations set;
      oom = st.Service.oom > 0;
      alloc_stalls = st.Service.alloc_stalls;
      ring_full = lg.Loadgen.ring_full;
      deadline_exceeded = lg.Loadgen.deadline_exceeded;
      crashed = [];
      pinning_tids = SET.pinning_tids set;
      watchdog = None;
      final_size = SET.size set;
      latency = Some lg.Loadgen.latency;
      alloc_words_per_op = 0.0;
      promoted_words_per_op = 0.0;
      minor_gcs = 0;
      arenas_attached = Mempool.Core.arenas_attached pool;
      arenas_detached = Mempool.Core.arenas_detached pool;
      resident_slots = Mempool.Core.resident_slots pool;
    }
  in
  let rs = note ~ds:(ds_name Instances.Hash_ds) ~scheme:sname (mk spike "svc_elastic_spike") in
  let rd = note ~ds:(ds_name Instances.Hash_ds) ~scheme:sname (mk decay "svc_elastic_decay") in
  (rs, rd, st, arenas_at_spike_end, !peak_arenas)

let elastic () =
  let rows =
    List.map
      (fun sname ->
        let rs, rd, st, at_spike_end, peak = run_elastic sname in
        let module Service = Mp_service.Service in
        [
          sname;
          string_of_int peak;
          string_of_int at_spike_end;
          string_of_int rd.Runner.arenas_attached;
          string_of_int rd.Runner.arenas_detached;
          string_of_int rd.Runner.resident_slots;
          string_of_int st.Service.live_peak;
          string_of_int st.Service.alloc_stalls;
          string_of_int st.Service.oom;
          Report.fmt_throughput rs.Runner.throughput;
          Report.fmt_throughput rd.Runner.throughput;
        ])
      [ "mp"; "hp"; "ebr"; "he"; "ibr" ]
  in
  Report.table
    ~title:
      "Elastic pool: spike/decay through the service (cap 4096/arena, max 4 arenas, \
       autoscale on; residency after settle)"
    ~header:
      [ "scheme"; "peak arenas"; "at spike end"; "grows"; "detaches"; "resident";
        "live peak"; "stalls"; "oom"; "spike tput"; "decay tput" ]
    rows

(* -- Extension: pipelined transport (chained rings, socket front-end) ------ *)

(* --socket PATH points the transport experiment at a running mpserver's
   Unix socket (the CI smoke job does); without it the sweep runs over
   the in-process rings. *)
let socket_path : string option ref = ref None

(* Socket mode: closed-loop pipelined batches of text commands against a
   running mpserver, swept over the pipelining depth. The rows share the
   JSON schema; SMR-side fields are 0 (they live in the server's own
   exit stats line). *)
let transport_socket path =
  let module Loadgen = Mp_service.Loadgen in
  let run chain =
    let lg =
      Loadgen.run_socket
        {
          Loadgen.sock_path = path;
          sock_clients = 2;
          sock_duration_s = Float.max duration_s 1.0;
          sock_warmup_s = Float.min !warmup 0.2;
          sock_read_pct = 90;
          sock_insert_pct = 5;
          sock_mget = 1;
          sock_key_range = 8192;
          sock_seed = 0xBEEF;
          sock_chain = chain;
        }
    in
    let r =
      {
        Runner.spec_threads = 2;
        mix_name = Printf.sprintf "sock_90r5i_c%d" chain;
        total_ops = lg.Loadgen.completed;
        throughput = lg.Loadgen.throughput;
        wasted_avg = 0.0;
        wasted_max = 0;
        wasted_peak = 0;
        fences = 0;
        traversed = 0;
        fences_per_node = 0.0;
        scan_passes = 0;
        scan_time_s = 0.0;
        violations = 0;
        oom = lg.Loadgen.oom > 0;
        alloc_stalls = 0;
        ring_full = 0;
        deadline_exceeded = 0;
        crashed = [];
        pinning_tids = [];
        watchdog = None;
        final_size = 0;
        latency = Some lg.Loadgen.latency;
        alloc_words_per_op = 0.0;
        promoted_words_per_op = 0.0;
        minor_gcs = 0;
        arenas_attached = 0;
        arenas_detached = 0;
        resident_slots = 0;
      }
    in
    (note ~ds:"socket" ~scheme:"socket" r, lg)
  in
  let rows =
    List.map
      (fun chain ->
        let r, lg = run chain in
        let lat = Option.get r.Runner.latency in
        let pct q = string_of_int (Mp_util.Histogram.percentile_ns lat q) in
        [
          string_of_int chain;
          Report.fmt_throughput r.Runner.throughput;
          (if r.Runner.throughput > 0.0 then
             Printf.sprintf "%.0f" (1e9 /. r.Runner.throughput)
           else "-");
          string_of_int lg.Mp_service.Loadgen.rejected;
          pct 50.0;
          pct 99.0;
          pct 99.9;
        ])
      [ 1; 8; 32 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Transport (socket): mpserver at %s, 2 clients, 90r/5i single-key, pipelined batches"
         path)
    ~header:[ "pipeline"; "ops/s"; "ns/op"; "errors"; "p50"; "p99"; "p99.9" ]
    rows

(* In-process: the chained-ring sweep the tentpole is about. Single-key
   read-heavy closed loop at 8 clients, chain depth x batch ceiling:
   chain=1 is exactly the PR 5 per-slot ring (the baseline the >= 3x
   acceptance bar measures against), and the 16-key multi-get row is the
   amortization reference the chained transport must approach. *)
let transport_inproc () =
  let read_pct = 98 and insert_pct = 1 in
  let init_size = if full then 1_024 else 512 in
  let shards = match !service_shards with Some n -> n | None -> 2 in
  let clients = 8 in
  let run sname ~chain ~batch =
    (* chain=1 keeps a deep per-slot pipeline (requests in flight is
       what that path has instead of chains); chained clients keep one
       chain of [chain] in flight per round. *)
    let mode =
      Mp_service.Loadgen.Closed { pipeline = (if chain > 1 then chain else 8) }
    in
    run_service Instances.Hash_ds sname ~shards ~batch ~zipf:0.99 ~mode ~chain
      ~clients ~read_pct ~insert_pct ~init_size
  in
  let rows =
    List.concat_map
      (fun sname ->
        (* PR 5's in-process amortization reference: 16-key multi-gets
           over the per-slot ring. *)
        let mget_ref, _ =
          run_service Instances.Hash_ds sname ~shards ~batch:32 ~zipf:0.99
            ~mget:16
            ~mode:(Mp_service.Loadgen.Closed { pipeline = 128 })
            ~clients:2 ~read_pct ~insert_pct ~init_size
        in
        let base = ref 0.0 in
        List.map
          (fun chain ->
            let r1, _ = run sname ~chain ~batch:1 in
            let r32, _ = run sname ~chain ~batch:32 in
            if chain = 1 then base := r32.Runner.throughput;
            let lat = Option.get r32.Runner.latency in
            [
              sname;
              string_of_int chain;
              fmt_result r1;
              fmt_result r32;
              Printf.sprintf "%.2fx" (r32.Runner.throughput /. r1.Runner.throughput);
              (if r32.Runner.throughput > 0.0 then
                 Printf.sprintf "%.0f" (1e9 /. r32.Runner.throughput)
               else "-");
              Printf.sprintf "%.2fx" (r32.Runner.throughput /. !base);
              Printf.sprintf "%.2fx" (r32.Runner.throughput /. mget_ref.Runner.throughput);
              string_of_int (Mp_util.Histogram.percentile_ns lat 99.9);
              string_of_int r32.Runner.wasted_peak;
            ])
          [ 1; 8; 32; 64; 128 ])
      [ "mp"; "hp"; "ibr"; "ebr" ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Transport: chained ring submit/drain, hash 98r1i Zipf(0.99) single-key (%d clients, %d shards; chain=1 = per-slot ring)"
         clients shards)
    ~header:
      [ "scheme"; "chain"; "B=1"; "B=32"; "B spdup"; "ns/op";
        "vs chain1"; "vs mget16"; "p99.9"; "wasted peak" ]
    rows

let transport () =
  match !socket_path with
  | Some path -> transport_socket path
  | None -> transport_inproc ()

(* -- driver ---------------------------------------------------------------- *)

let experiments =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7a", fig7a);
    ("fig7bc", fig7bc);
    ("stall", stall);
    ("crash", crash);
    ("micro", micro);
    ("pipe", pipe);
    ("alloc", alloc_telemetry);
    ("ablation-index", ablation_index);
    ("ablation-epoch", ablation_epoch);
    ("ext-zipf", ext_zipf);
    ("ext-hash", ext_hash);
    ("ext-queue", ext_queue);
    ("latency", latency);
    ("service", service);
    ("elastic", elastic);
    ("transport", transport);
  ]

let () =
  (* Pull "--json FILE" / "--warmup SECS" out of argv; what remains
     selects experiments. *)
  let rec strip_opts = function
    | "--json" :: file :: rest ->
      json_path := Some file;
      strip_opts rest
    | "--warmup" :: secs :: rest ->
      (match float_of_string_opt secs with
      | Some w when w >= 0.0 -> warmup := w
      | _ -> Printf.eprintf "ignoring bad --warmup %S\n" secs);
      strip_opts rest
    | "--shards" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> service_shards := Some n
      | _ -> Printf.eprintf "ignoring bad --shards %S\n" n);
      strip_opts rest
    | "--socket" :: path :: rest ->
      socket_path := Some path;
      strip_opts rest
    | arg :: rest -> arg :: strip_opts rest
    | [] -> []
  in
  let args = strip_opts (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match args with
    | [] | [ "all" ] -> List.map fst experiments
    | names -> names
  in
  Printf.printf "margin-pointers benchmark suite (%s scale)\n%!"
    (if full then "full" else "quick");
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        let t0 = Unix.gettimeofday () in
        current_experiment := name;
        f ();
        Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat ", " (List.map fst experiments)))
    requested;
  write_json ()
