(* mpbench — run a single SMR benchmark configuration from the command
   line. Complements bench/main.exe (which regenerates the paper's
   figures wholesale) by exposing every knob individually:

     dune exec bin/mpbench.exe -- --ds bst --scheme mp --threads 8 \
       --size 16384 --duration 1.0 --workload write --margin-log2 20
*)

open Cmdliner
module Config = Smr_core.Config
module Workload = Mp_harness.Workload
module Runner = Mp_harness.Runner
module Instances = Mp_harness.Instances

let run ds scheme threads size duration warmup workload margin_log2 stall_ms seed check
    latency verbose json =
  let mix =
    match workload with
    | "read" -> Workload.read_dominated
    | "write" -> Workload.write_dominated
    | "readonly" -> Workload.read_only
    | other -> invalid_arg (Printf.sprintf "unknown workload %S (read|write|readonly)" other)
  in
  let config = Config.with_margin (Config.default ~threads) (1 lsl margin_log2) in
  let spec =
    {
      (Runner.default ~threads ~init_size:size ~mix ~config) with
      Runner.duration_s = duration;
      warmup_s = warmup;
      seed;
      check_access = check;
      record_latency = latency;
      stall =
        (if stall_ms > 0 then
           Some
             {
               Runner.stall_tid = 0;
               every_ops = 100;
               pause_s = float_of_int stall_ms /. 1000.0;
             }
         else None);
    }
  in
  let set =
    if ds = "dta" then (module Dstruct.Dta_list.As_set : Dstruct.Set_intf.SET)
    else Instances.make (Instances.ds_of_name ds) (Instances.scheme_of_name scheme)
  in
  let (module SET : Dstruct.Set_intf.SET) = set in
  if verbose then
    Printf.printf
      "running %s: threads=%d size=%d duration=%.2fs warmup=%.2fs mix=%s margin=2^%d\n%!"
      SET.name threads size duration warmup mix.Workload.name margin_log2;
  let r = Runner.run set spec in
  Printf.printf "structure        : %s\n" SET.name;
  Printf.printf "threads          : %d\n" r.Runner.spec_threads;
  Printf.printf "workload         : %s\n" r.Runner.mix_name;
  Printf.printf "throughput       : %.0f ops/s (%d ops)%s\n" r.Runner.throughput
    r.Runner.total_ops
    (if r.Runner.oom then "  [pool exhausted]" else "");
  Printf.printf "wasted avg / max : %.1f / %d nodes\n" r.Runner.wasted_avg r.Runner.wasted_max;
  Printf.printf "fences / node    : %.4f (%d fences, %d visits)\n" r.Runner.fences_per_node
    r.Runner.fences r.Runner.traversed;
  Printf.printf "scan passes      : %d (%.4fs reclaiming)\n" r.Runner.scan_passes
    r.Runner.scan_time_s;
  Printf.printf "alloc words / op : %.2f (%.2f promoted, %d minor GCs)\n"
    r.Runner.alloc_words_per_op r.Runner.promoted_words_per_op r.Runner.minor_gcs;
  Printf.printf "final size       : %d\n" r.Runner.final_size;
  (match r.Runner.latency with
  | None -> ()
  | Some h ->
    let p q = Mp_util.Histogram.percentile_ns h q in
    Printf.printf "latency p50/p99  : %d / %d ns (max %d, %d samples)\n" (p 50.0) (p 99.0)
      (Mp_util.Histogram.max_ns h) (Mp_util.Histogram.count h));
  if check then Printf.printf "UAF violations   : %d\n" r.Runner.violations;
  (match json with
  | None -> ()
  | Some path -> (
    try
      let oc = open_out path in
      output_string oc (Runner.results_to_json [ ("mpbench", ds, scheme, r) ]);
      close_out oc;
      Printf.printf "json             : %s\n" path
    with Sys_error msg ->
      Printf.eprintf "mpbench: cannot write JSON: %s\n" msg;
      exit 1));
  if check && r.Runner.violations > 0 then exit 2

let ds_arg =
  Arg.(value & opt string "bst" & info [ "ds" ] ~docv:"STRUCT" ~doc:"list, skiplist, bst, hash or dta")

let scheme_arg =
  Arg.(
    value & opt string "mp"
    & info [ "scheme" ] ~docv:"SCHEME" ~doc:"mp, ibr, he, hp, ebr or none (ignored for dta)")

let threads_arg = Arg.(value & opt int 4 & info [ "threads"; "t" ] ~doc:"concurrent domains")
let size_arg = Arg.(value & opt int 16384 & info [ "size"; "s" ] ~doc:"initial keys (S)")
let duration_arg = Arg.(value & opt float 1.0 & info [ "duration"; "d" ] ~doc:"seconds")

let warmup_arg =
  Arg.(
    value & opt float 0.5
    & info [ "warmup" ]
        ~doc:
          "seconds of real workload to run before the measured window; warmup operations \
           are excluded from throughput, latency and allocation telemetry")

let workload_arg =
  Arg.(value & opt string "read" & info [ "workload"; "w" ] ~doc:"read, write or readonly")

let margin_arg =
  Arg.(value & opt int 20 & info [ "margin-log2" ] ~doc:"MP margin as a power of two")

let stall_arg =
  Arg.(
    value & opt int 0
    & info [ "stall-ms" ] ~doc:"inject a sleep of this many ms mid-operation on thread 0")

let seed_arg = Arg.(value & opt int 0xC0FFEE & info [ "seed" ] ~doc:"workload RNG seed")

let check_arg =
  Arg.(value & flag & info [ "check" ] ~doc:"arm the use-after-free detector (slower)")

let latency_arg =
  Arg.(
    value & flag
    & info [ "latency" ]
        ~doc:"record sampled per-operation latency and report p50/p99/max")

let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"print the configuration")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE" ~doc:"also write the result as a JSON array to $(docv)")

let cmd =
  let term =
    Term.(
      const run $ ds_arg $ scheme_arg $ threads_arg $ size_arg $ duration_arg $ warmup_arg
      $ workload_arg $ margin_arg $ stall_arg $ seed_arg $ check_arg $ latency_arg
      $ verbose_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "mpbench" ~doc:"benchmark one SMR scheme on one concurrent search structure")
    term

let () = exit (Cmd.eval cmd)
