(* mpserver: the sharded SMR service behind a memcached-text socket.

   Listens on a Unix-domain socket and/or a TCP port, one domain per
   accepted connection, each running a {!Mp_service.Frontend.Conn}
   executor: commands are parsed incrementally, a whole read's worth is
   expanded into per-shard ring chains (one submit CAS and one
   coalesced reply wait per chain), and every reply is flushed in one
   write — the pipelining path the transport bench measures.

   On exit (duration elapsed, SIGINT/SIGTERM, or every client gone
   after --duration) the service stats are printed as one JSON line on
   stdout, so smoke jobs can validate the run. *)

module Service = Mp_service.Service
module Recovery = Mp_service.Recovery
module Frontend = Mp_service.Frontend
module Instances = Mp_harness.Instances

let unix_path = ref ""
let tcp_port = ref 0
let scheme = ref "mp"
let ds = ref "hash"
let shards = ref 2
let batch = ref 32
let ring = ref 1024
let init_size = ref 4096
let key_range = ref 0 (* 0 = 2 * init *)
let max_conns = ref 64
let duration = ref 0.0 (* 0 = run until signalled *)
let no_recovery = ref false
let max_arenas = ref 1
let autoscale = ref false

let args =
  [
    ("--unix", Arg.Set_string unix_path, "PATH listen on a Unix-domain socket");
    ("--tcp", Arg.Set_int tcp_port, "PORT listen on 127.0.0.1:PORT");
    ("--scheme", Arg.Set_string scheme, "NAME SMR scheme (mp|hp|he|ibr|ebr|none)");
    ("--ds", Arg.Set_string ds, "NAME structure (list|skiplist|bst|hash)");
    ("--shards", Arg.Set_int shards, "N shard domains (default 2)");
    ("--batch", Arg.Set_int batch, "B SET ops per SMR batch window (default 32)");
    ("--ring", Arg.Set_int ring, "N request-ring capacity per shard (default 1024)");
    ("--init", Arg.Set_int init_size, "N pre-populated keys (default 4096)");
    ("--key-range", Arg.Set_int key_range, "N key universe (default 2*init)");
    ("--max-conns", Arg.Set_int max_conns, "N concurrent connections (default 64)");
    ("--duration", Arg.Set_float duration, "S exit after S seconds (default: run forever)");
    ("--no-recovery", Arg.Set no_recovery, " disable the crash-recovery supervisor");
    ( "--max-arenas",
      Arg.Set_int max_arenas,
      "N elastic pool: grow up to N arenas on demand (default 1 = fixed)" );
    ( "--autoscale",
      Arg.Set autoscale,
      " run the shrink policy domain (needs --max-arenas > 1)" );
  ]

let usage = "mpserver --unix PATH [--tcp PORT] [options]"

(* One connection: read → pump (parse/execute/render) → flush, until
   EOF, quit, or the stop flag. The parser's fill window is the read
   buffer, so bytes go socket → parser with one copy total. *)
let serve_conn service stop fd =
  let conn = Frontend.Conn.create service in
  let p = Frontend.Conn.parser conn in
  (try
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with _ -> () (* Unix-domain sockets have no Nagle *));
  (try
     while (not (Atomic.get stop)) && not (Frontend.Conn.closed conn) do
       if Frontend.Parser.free_space p = 0 then
         (* pathological: a line longer than the whole buffer; the
            parser resyncs via its own bounded stash, so just pump *)
         ignore (Frontend.Conn.pump conn : int)
       else begin
         (* block at most briefly so the stop flag stays live *)
         let readable, _, _ = Unix.select [ fd ] [] [] 0.5 in
         if readable <> [] then begin
           let n =
             Unix.read fd (Frontend.Parser.buffer p) (Frontend.Parser.write_off p)
               (Frontend.Parser.free_space p)
           in
           if n = 0 then raise Exit; (* peer closed *)
           Frontend.Parser.fill p n;
           ignore (Frontend.Conn.pump conn : int);
           let out = Frontend.Conn.out conn in
           if Buffer.length out > 0 then begin
             let s = Buffer.contents out in
             let len = String.length s in
             let off = ref 0 in
             while !off < len do
               off := !off + Unix.write_substring fd s !off (len - !off)
             done
           end
         end
       end
     done
   with Exit | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let listen_on sockaddr =
  let dom = Unix.domain_of_sockaddr sockaddr in
  let fd = Unix.socket dom Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd sockaddr;
  Unix.listen fd 64;
  fd

let () =
  Arg.parse args (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a))) usage;
  if !unix_path = "" && !tcp_port = 0 then begin
    prerr_endline usage;
    exit 2
  end;
  let spare_tids = if !no_recovery then 0 else 1 in
  let threads = !shards + spare_tids in
  let (module SET : Dstruct.Set_intf.SET) =
    Instances.make (Instances.ds_of_name !ds) (Instances.scheme_of_name !scheme)
  in
  let config =
    Smr_core.Config.with_max_arenas
      (Smr_core.Config.default ~threads)
      (max 1 !max_arenas)
  in
  let range = if !key_range > 0 then !key_range else 2 * !init_size in
  let capacity = (!init_size * 4) + (threads * 65536) in
  let set = SET.create ~threads ~capacity config in
  let s0 = SET.session set ~tid:0 in
  let rng = Mp_util.Rng.create 7 in
  let inserted = ref 0 in
  while !inserted < !init_size do
    if SET.insert s0 ~key:(Mp_util.Rng.below rng range) ~value:1 then incr inserted
  done;
  SET.flush s0;
  let recovery =
    if !no_recovery then None else Some { Recovery.default with spare_tids }
  in
  let scaler =
    if !autoscale && !max_arenas > 1 then Some Service.default_autoscale else None
  in
  let service =
    Service.create ?recovery ?autoscale:scaler
      (module SET)
      set ~shards:!shards ~batch:!batch ~ring_capacity:!ring
  in
  Service.start service;
  let stop = Atomic.make false in
  let on_signal _ = Atomic.set stop true in
  ignore (Sys.signal Sys.sigint (Sys.Signal_handle on_signal));
  ignore (Sys.signal Sys.sigterm (Sys.Signal_handle on_signal));
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let listeners =
    (if !unix_path <> "" then begin
       (try Unix.unlink !unix_path with Unix.Unix_error _ -> ());
       [ listen_on (Unix.ADDR_UNIX !unix_path) ]
     end
     else [])
    @
    if !tcp_port > 0 then
      [ listen_on (Unix.ADDR_INET (Unix.inet_addr_loopback, !tcp_port)) ]
    else []
  in
  let t_deadline =
    if !duration > 0.0 then Unix.gettimeofday () +. !duration else infinity
  in
  (* Connection domains, swept on completion. [alive] mirrors slot
     occupancy; a finished connection marks its flag and the accept
     loop joins it on the next pass. *)
  let conns : (unit Domain.t * bool Atomic.t) option array =
    Array.make (max 1 !max_conns) None
  in
  let sweep ~final =
    Array.iteri
      (fun i slot ->
        match slot with
        | Some (d, done_flag) when final || Atomic.get done_flag ->
          Domain.join d;
          conns.(i) <- None
        | _ -> ())
      conns
  in
  let accept_loop () =
    while (not (Atomic.get stop)) && Unix.gettimeofday () < t_deadline do
      let timeout =
        if t_deadline = infinity then 0.25
        else Float.max 0.01 (Float.min 0.25 (t_deadline -. Unix.gettimeofday ()))
      in
      let ready =
        try
          let r, _, _ = Unix.select listeners [] [] timeout in
          r
        with Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      sweep ~final:false;
      List.iter
        (fun lfd ->
          match Unix.accept lfd with
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> (
            (* find a free slot; refuse the connection when full *)
            let slot = ref (-1) in
            Array.iteri (fun i s -> if !slot < 0 && s = None then slot := i) conns;
            match !slot with
            | -1 -> Unix.close fd
            | i ->
              let done_flag = Atomic.make false in
              let d =
                Domain.spawn (fun () ->
                    serve_conn service stop fd;
                    Atomic.set done_flag true)
              in
              conns.(i) <- Some (d, done_flag)))
        ready
    done
  in
  (try accept_loop () with Unix.Unix_error (Unix.EINTR, _, _) -> ());
  Atomic.set stop true;
  sweep ~final:true;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) listeners;
  if !unix_path <> "" then (try Unix.unlink !unix_path with Unix.Unix_error _ -> ());
  Service.stop service;
  let st = Service.stats service in
  let smr = SET.smr_stats set in
  Printf.printf
    "{\"server\":\"mpserver\",\"scheme\":\"%s\",\"ds\":\"%s\",\"shards\":%d,\"batch\":%d,\"ops\":%d,\"batches\":%d,\"max_batch\":%d,\"rejected\":%d,\"oom\":%d,\"alloc_stalls\":%d,\"shed_busy\":%d,\"client_spins\":%d,\"client_backoffs\":%d,\"crash_events\":%d,\"wasted_peak\":%d,\"live_peak\":%d,\"arenas_attached\":%d,\"arenas_detached\":%d,\"resident_slots\":%d,\"violations\":%d}\n"
    !scheme !ds !shards !batch st.Service.ops st.Service.batches
    st.Service.max_batch st.Service.rejected st.Service.oom st.Service.alloc_stalls
    st.Service.shed_busy st.Service.client_spins st.Service.client_backoffs
    st.Service.crash_events smr.Smr_core.Smr_intf.wasted_peak st.Service.live_peak
    st.Service.arenas_attached st.Service.arenas_detached st.Service.resident_slots
    (SET.violations set)
