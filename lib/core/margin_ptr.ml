(** Margin pointers (the paper's contribution, Listing 10 in full).

    MP is pointer-based like HP, but each protection slot announces a key
    *index* instead of a node address: the slot protects every node whose
    index lies within [margin/2] of the announced value. Indices are
    assigned at insertion as the midpoint of the search interval's
    endpoints, so physically close nodes get close indices and one
    published margin pointer covers many consecutive dereferences — most
    reads are fence-free. Wasted memory stays bounded because an interval
    of width [margin] can only cover [margin] distinct indices, linked
    MP-protected nodes have unique indices, and an HE-style epoch filter
    caps how many dead same-index generations a stalled thread can pin.

    Index collisions (no free index between predecessor and successor) are
    stamped [USE_HP] and protected through a per-thread hazard-pointer
    table instead, so MP degrades gracefully to HP and never loses safety.
    Both announcement tables (margins and fallback hazards) and the
    retire-side batching live in the {!Smr_core.Reservation} /
    {!Smr_core.Reclaimer} kernel.

    Deviations from the paper's pseudocode (see DESIGN.md):
    - the margin-coverage fast path re-reads the global epoch, so a thread
      reliably *observes* epoch changes and switches to HPs (§4.3.2 says it
      must; Listing 10 only checks after publishing a new MP);
    - [empty] checks hazard-pointer slots unconditionally and applies the
      birth–death epoch filter only to the margin check (the filter is
      sound only for index-based protection);
    - the epoch filter uses the closed interval [birth, death]. *)

open Smr_core

let no_margin = -1
let no_hazard = -1
let use_hp = Config.use_hp
let precision_range = 1 lsl Handle.precision

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  epoch : Epoch.t;
  mps : Reservation.t; (* announced indices, [no_margin] = empty *)
  hps : Reservation.t; (* fallback node ids, [no_hazard] = empty *)
  margin : int;
  max_index : int;
  index_policy : Config.index_policy;
  epoch_freq : int;
  n_slots : int;
}

type thread = {
  shared : shared;
  tid : int;
  rng : Mp_util.Rng.t; (* for the Randomized index policy *)
  rsv : Reclaimer.t;
  mutable unlink_count : int;
  mutable lower_bound : int; (* -1 = not reported this operation *)
  mutable upper_bound : int; (* -1 = not reported this operation *)
  mutable local_epoch : int;
  mutable use_hp_mode : bool; (* epoch moved mid-operation: protect with HPs *)
  mutable in_batch : bool;
      (* batch window: margins, hazards and the epoch announcement
         persist across the ops of the batch; end-of-op teardown is
         deferred to [batch_exit] *)
  (* Thread-local mirrors of this thread's own slots. Only the owner
     writes its slots, so the mirrors are exact; the read fast path tests
     them with plain loads instead of re-deriving coverage from the
     atomics. cover_lo/cover_hi hold the inclusive idx16 range whose whole
     precision range fits inside the published margin (empty when
     lo > hi); hp_mirror holds the protected node id or -1. *)
  cover_lo : int array;
  cover_hi : int array;
  hp_mirror : int array;
  (* Reusable scan buffers: margin and hazard snapshots plus the paired
     per-thread epoch announcements. *)
  mp_snap : Reservation.snapshot;
  hp_snap : Reservation.snapshot;
  epoch_snap : int array;
}

type t = {
  s : shared;
  per_thread : thread array;
}

let name = "mp"

let properties =
  {
    Smr_intf.full_name = "Margin pointers";
    wasted_memory = Smr_intf.Bounded;
    per_node_words = 3;
    self_contained = true;
    needs_per_reference_calls = true;
  }

let create ~pool ~threads (config : Config.t) =
  let config = Config.validate config in
  let counters = Counters.create ~threads in
  let s =
    {
      pool;
      counters;
      epoch = Epoch.create ~threads;
      mps = Reservation.create ~counters ~threads ~slots:config.slots ~empty:no_margin;
      hps = Reservation.create ~counters ~threads ~slots:config.slots ~empty:no_hazard;
      margin = config.margin;
      max_index = config.max_index;
      index_policy = config.index_policy;
      epoch_freq = config.epoch_freq;
      n_slots = config.slots;
    }
  in
  (* Two announcement tables (margins + fallback hazards) back one scan. *)
  let threshold =
    Reclaimer.scan_threshold ~empty_freq:config.empty_freq ~slots:(2 * config.slots) ~threads
  in
  let per_thread =
    Array.init threads (fun tid ->
        {
          shared = s;
          tid;
          rng = Mp_util.Rng.split ~seed:0x1D8 ~tid;
          rsv = Reclaimer.create ~pool ~counters ~tid ~threshold;
          unlink_count = 0;
          lower_bound = 0;
          upper_bound = 0;
          local_epoch = Epoch.inactive;
          use_hp_mode = false;
          in_batch = false;
          cover_lo = Array.make config.slots 1;
          cover_hi = Array.make config.slots 0;
          hp_mirror = Array.make config.slots no_hazard;
          mp_snap = Reservation.snapshot_create ();
          hp_snap = Reservation.snapshot_create ();
          epoch_snap = Array.make threads Epoch.inactive;
        })
  in
  { s; per_thread }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid

(* The search-interval bounds start *unset* each operation. Listing 10
   initializes them to (0, 0), which serves two purposes we keep apart:
   a client that never reports bounds (a non-search structure) must get
   USE_HP stamps — the paper's fall-back-to-HP story — while a search
   traversal that only ever tightened ONE endpoint (e.g. inserting a
   maximal key in the NM tree, where seek never visits a larger key) must
   still get an in-between index, which the pseudocode's 0 would place
   *below* the predecessor. An unset endpoint therefore defaults to its
   extreme (0 / max_index) only when the other one was reported. *)
let announce th =
  th.local_epoch <- Epoch.announce th.shared.epoch ~tid:th.tid;
  Counters.on_fence th.shared.counters ~tid:th.tid;
  (* Epoch announced; a crash here freezes the announcement the scan's
     epoch filter pairs with this thread's margins. *)
  Mp_util.Fault.hit ~tid:th.tid Mp_util.Fault.Protect_validate

let start_op th =
  if not th.in_batch then announce th;
  (* The search-interval bounds reset every operation even inside a
     batch — each request derives its own insertion index. *)
  th.lower_bound <- -1;
  th.upper_bound <- -1;
  if not th.in_batch then th.use_hp_mode <- false

let teardown th =
  let s = th.shared in
  for refno = 0 to s.n_slots - 1 do
    if th.cover_lo.(refno) <= th.cover_hi.(refno) then begin
      Reservation.clear s.mps ~tid:th.tid ~refno;
      th.cover_lo.(refno) <- 1;
      th.cover_hi.(refno) <- 0
    end;
    if th.hp_mirror.(refno) <> no_hazard then begin
      Reservation.clear s.hps ~tid:th.tid ~refno;
      th.hp_mirror.(refno) <- no_hazard
    end
  done;
  (* Batched clearing costs one publication fence, as in the paper's
     optimized HP/HE/MP implementations (§6). *)
  Counters.on_fence s.counters ~tid:th.tid;
  Epoch.retire_announcement s.epoch ~tid:th.tid;
  th.local_epoch <- Epoch.inactive

let end_op th = if not th.in_batch then teardown th

(* Batch window: one epoch announcement and one teardown for the whole
   batch; margins, their coverage mirrors and fallback hazards persist
   across the batch's operations, so a read whose index range is already
   covered stays on the fence-free fast path op after op. Safety is the
   per-operation argument unchanged: the batch behaves like one long
   operation (Theorem 4.2 quantifies over operations of any length). If
   the global epoch advances mid-batch, [local_epoch] goes stale and
   every subsequent protection in the batch takes the HP fallback —
   slower, never unsafe; the next batch re-announces. *)
let batch_enter th =
  th.in_batch <- true;
  announce th;
  th.lower_bound <- -1;
  th.upper_bound <- -1;
  th.use_hp_mode <- false

let batch_exit th =
  th.in_batch <- false;
  teardown th

(* -- index creation (Listing 5 + alloc of Listing 10) -------------------- *)

let update_lower_bound th id = th.lower_bound <- Mempool.Core.index th.shared.pool id
let update_upper_bound th id = th.upper_bound <- Mempool.Core.index th.shared.pool id

(** Allocate and stamp the node with an index inside the search interval
    chosen by the configured policy (Listing 5 uses the midpoint). A
    collision — no free index strictly between the bounds, or a bound that
    is itself a collided node — yields the [USE_HP] stamp. *)
let alloc th =
  let s = th.shared in
  let id = Mempool.Core.alloc s.pool ~tid:th.tid in
  let index =
    if th.lower_bound < 0 && th.upper_bound < 0 then use_hp (* non-search client *)
    else begin
      let lb = if th.lower_bound < 0 then 0 else th.lower_bound in
      let ub = if th.upper_bound < 0 then s.max_index else th.upper_bound in
      if lb = use_hp || ub = use_hp || abs (ub - lb) <= 1 then use_hp
      else
        match s.index_policy with
        | Config.Midpoint -> (lb + ub) / 2
        | Config.Golden -> lb + (((ub - lb) * 382) / 1000) |> max (lb + 1) |> min (ub - 1)
        | Config.Randomized -> lb + 1 + Mp_util.Rng.below th.rng (ub - lb - 1)
    end
  in
  Mempool.Core.set_index s.pool id index;
  Mempool.Core.set_birth s.pool id (Epoch.current s.epoch);
  id

let alloc_with_index th ~index =
  let s = th.shared in
  let id = Mempool.Core.alloc s.pool ~tid:th.tid in
  Mempool.Core.set_index s.pool id index;
  Mempool.Core.set_birth s.pool id (Epoch.current s.epoch);
  id

(* -- protection (read of Listing 10) ------------------------------------- *)

(* The slow-path helpers live at top level with explicit arguments so a
   read call allocates nothing (a per-call closure pair costs more than
   the protection protocol itself on the read-heavy paths). *)

(* Publish a hazard pointer for [w]'s target and validate. *)
let rec protect_with_hp th refno link w =
  let s = th.shared in
  Reservation.publish s.hps ~tid:th.tid ~refno (Handle.id w);
  th.hp_mirror.(refno) <- Handle.id w;
  Mp_util.Striped_counter.incr s.counters.Counters.hp_fallbacks ~tid:th.tid;
  (* Fallback hazard visible, link not yet re-read. *)
  Mp_util.Fault.hit ~tid:th.tid Mp_util.Fault.Protect_validate;
  let w' = Atomic.get link in
  if w' = w then w else read_slow th refno link w'

and read_slow th refno link w =
  if Handle.is_null w then w
  else begin
    let s = th.shared in
    let idx16 = Handle.idx16 w in
    if idx16 >= th.cover_lo.(refno) && idx16 <= th.cover_hi.(refno) then
      (* Covered: re-check the epoch so a stalled-and-resumed thread
         observes the change and stops trusting new nodes to its margins
         (they may be born after its announced epoch). *)
      if Epoch.current s.epoch = th.local_epoch then w
      else begin
        th.use_hp_mode <- true;
        protect_with_hp th refno link w
      end
    else if idx16 = Handle.idx16_mask then
      (* USE_HP-stamped node (or an index colliding with the sentinel
         range): margin protection is meaningless, use a hazard pointer.
         Skip the publish+fence when the slot already protects this node. *)
      if th.hp_mirror.(refno) = Handle.id w then w else protect_with_hp th refno link w
    else if th.hp_mirror.(refno) = Handle.id w then w
    else if th.use_hp_mode then protect_with_hp th refno link w
    else begin
      (* Publish a new margin pointer at the midpoint of the node's
         precision range, fence, and validate the link. Cache the idx16
         interval whose whole precision range the margin covers (clamped
         below the USE_HP idx16, so a coverage hit never vouches for a
         USE_HP node); with margin >= 2^16 it is never empty. *)
      let v = Handle.idx_lower_bound w + (precision_range / 2) in
      Reservation.publish s.mps ~tid:th.tid ~refno v;
      th.cover_lo.(refno) <-
        max 0 ((v - (s.margin / 2) + precision_range - 1) asr Handle.precision);
      th.cover_hi.(refno) <-
        min (Handle.idx16_mask - 1) ((v + (s.margin / 2) - (precision_range - 1)) asr Handle.precision);
      (* Margin visible, link and epoch not yet re-validated — the
         interleaving Thm 4.2 must survive. *)
      Mp_util.Fault.hit ~tid:th.tid Mp_util.Fault.Protect_validate;
      let w' = Atomic.get link in
      if w' = w then
        if Epoch.current s.epoch = th.local_epoch then w
        else begin
          (* Epoch advanced: previously published MPs stay valid, but new
             protections must use HPs (§4.3.2). Re-protect this node. *)
          th.use_hp_mode <- true;
          protect_with_hp th refno link w
        end
      else read_slow th refno link w'
    end
  end

let read th ~refno link =
  let w0 = Atomic.get link in
  (* Fast path: the node's idx16 sits inside this refno's cached coverage
     (an exact thread-local mirror of the published margin) and the epoch
     has not moved. Two compares and one shared load — the fence-free read
     that gives MP its edge over HP. The mirror arrays are sized by the
     validated config and [refno] is a structure-internal constant, so the
     unchecked accesses are in bounds.

     The epoch re-check must remain an SC [Atomic.get] — it is NOT a
     candidate for [Mp_util.Relaxed]. Thm 4.2's argument for trusting
     the coverage mirror needs the SC total order: if this load returns
     [local_epoch], it is ordered before any later advance, hence before
     the birth-stamp of any node born in a newer epoch, hence before the
     link write that made such a node reachable — contradicting the link
     read above having returned it. A stale (relaxed) epoch read would
     let a stalled-and-resumed thread vouch for a node the reclaimer's
     epoch filter already considers unprotected. The coverage bounds
     themselves are plain thread-local arrays (own-slot mirrors), which
     is the fenceless idiom taken to its conclusion. *)
  let idx16 = Handle.idx16 w0 in
  if
    idx16 >= Array.unsafe_get th.cover_lo refno
    && idx16 <= Array.unsafe_get th.cover_hi refno
    && Epoch.current th.shared.epoch = th.local_epoch
  then w0
  else read_slow th refno link w0

(* Margins deliberately persist until end_op so they keep protecting
   future accesses (paper: "unprotect is a no-op"). *)
let unprotect (_ : thread) ~refno:(_ : int) = ()

let handle_of th id = Mempool.Core.handle th.shared.pool id

(* -- reclamation (empty of Listing 10) ----------------------------------- *)

(* Same coverage predicate as the reader: the margin must contain the
   node's whole 16-bit precision range (Appendix A items 6-7). *)
let covers margin v idx16 =
  idx16 >= max 0 ((v - (margin / 2) + precision_range - 1) asr Handle.precision)
  && idx16
     <= min (Handle.idx16_mask - 1) ((v + (margin / 2) - (precision_range - 1)) asr Handle.precision)

let empty th =
  let s = th.shared in
  (* Snapshot the PPV slots strictly BEFORE the per-thread epochs. A reader
     announces its epoch before publishing margins (start_op then read), so
     a margin captured in the slot snapshot always pairs with an
     up-to-date announcement; the reverse order could pair a fresh margin
     with a stale "inactive" epoch and skip a live protection. *)
  Reservation.snapshot s.mps th.mp_snap;
  Reservation.snapshot s.hps th.hp_snap;
  Reservation.sort th.hp_snap;
  Epoch.snapshot_announced s.epoch th.epoch_snap;
  let margins = th.mp_snap.Reservation.vals
  and owners = th.mp_snap.Reservation.owners
  and m_n = th.mp_snap.Reservation.len in
  let keep id =
    if Reservation.mem th.hp_snap id then true
    else begin
      let idx = Mempool.Core.index s.pool id in
      if idx = use_hp then false
      else begin
        let idx16 = idx lsr Handle.precision in
        let birth = Mempool.Core.birth s.pool id and death = Mempool.Core.death s.pool id in
        (* The epoch filter: a thread whose announced epoch misses the
           node's lifetime cannot have margin-protected it (Thm 4.2). *)
        let rec scan i =
          i < m_n
          && ((covers s.margin margins.(i) idx16
              &&
              let e = th.epoch_snap.(owners.(i)) in
              e >= birth && e <= death)
             || scan (i + 1))
        in
        scan 0
      end
    end
  in
  Reclaimer.scan th.rsv ~keep;
  (* Arena detach barrier. MP pins through two channels: fallback hazards
     name node ids directly (checked against a fresh snapshot), while a
     margin only protects a node when its owner's announced epoch covers
     the node's lifetime (Thm 4.2). Every node of a fully-parked arena
     died at or before the stamp, so once every announcement postdates
     the stamp no margin/epoch pair can vouch for one — the margins
     themselves need no per-arena test. *)
  Detach.poll s.pool
    ~stamp:(fun () ->
      let e = Epoch.current s.epoch in
      Epoch.advance s.epoch;
      e)
    ~quiescent:(fun ~base ~size ~stamp ->
      Epoch.min_announced s.epoch > stamp
      && begin
           Reservation.snapshot s.hps th.hp_snap;
           Reservation.sort th.hp_snap;
           not (Reservation.exists_in_range th.hp_snap ~lo:base ~hi:(base + size - 1))
         end)

let retire th id =
  let s = th.shared in
  Mempool.Core.set_death s.pool id (Epoch.current s.epoch);
  Reclaimer.retire th.rsv id;
  (* Every [epoch_freq] unlinks, advance the global epoch — the clock that
     bounds how many dead same-index generations one thread can pin. *)
  th.unlink_count <- th.unlink_count + 1;
  if th.unlink_count mod s.epoch_freq = 0 then Epoch.advance s.epoch;
  if Reclaimer.scan_due th.rsv then empty th

let flush th = empty th

(* Crash recovery (see {!Smr_core.Smr_intf.S.adopt}): MP's dead thread
   pins through three channels — its margins (paired with its frozen
   epoch announcement), its fallback hazards, and the announcement's
   veto on the epoch filter. Quarantining both reservation tables and
   releasing the announcement cuts all three; the thread-local mirrors
   are reset to match the now-empty rows (the mirrors are owner-private,
   and after the owning domain was joined, the supervisor is the owner).
   The scan then drains the dead tid's retired backlog as its own next
   [empty] would have. *)
let adopt t ~tid =
  let th = t.per_thread.(tid) in
  let s = t.s in
  Reservation.quarantine s.mps ~tid;
  Reservation.quarantine s.hps ~tid;
  for refno = 0 to s.n_slots - 1 do
    th.cover_lo.(refno) <- 1;
    th.cover_hi.(refno) <- 0;
    th.hp_mirror.(refno) <- no_hazard
  done;
  Epoch.retire_announcement s.epoch ~tid;
  th.local_epoch <- Epoch.inactive;
  th.use_hp_mode <- false;
  th.in_batch <- false;
  th.lower_bound <- -1;
  th.upper_bound <- -1;
  empty th;
  Reservation.adopt s.mps ~tid;
  Reservation.adopt s.hps ~tid

let stats t = Counters.stats t.s.counters

(* Either announcement table pins: a dead thread's margins keep every
   covered index generation its epoch spans, its fallback hazards keep
   exact nodes. *)
let pinning_tids t =
  List.sort_uniq Int.compare
    (Reservation.occupied_tids t.s.mps @ Reservation.occupied_tids t.s.hps)

(** Introspection hooks for tests and the wasted-memory bound experiment. *)
module Debug = struct
  let epoch t = t.s.epoch
  let current_epoch t = Epoch.current t.s.epoch
  let local_epoch th = th.local_epoch
  let use_hp_mode th = th.use_hp_mode
  let bounds th = (th.lower_bound, th.upper_bound)
  let mp_slot t ~tid ~refno = Reservation.get t.s.mps ~tid ~refno
  let hp_slot t ~tid ~refno = Reservation.get t.s.hps ~tid ~refno
  let retired_length th = Reclaimer.pending th.rsv
end
