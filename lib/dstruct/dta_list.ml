(** Drop the Anchor (Braginsky, Kogan & Petrank, SPAA 2013) applied to
    Michael's linked list — the only structure DTA is known to support,
    which is why the paper evaluates it on the list alone (§6).

    DTA is a sorted lock-free list with integrated reclamation, so it is
    implemented directly rather than as a functor over the SMR interface
    (its freezing recovery needs to rewrite list structure, which no
    scheme-agnostic interface exposes).

    Protection: each thread maintains an {e anchor} — a PPV it refreshes
    once every [anchor_step] traversed nodes, so its current position is
    always within [anchor_step] hops of the anchor. Reclamation runs an
    EBR fast path; when a stalled thread pins the epoch for too long, the
    reclaimer {e freezes} the stalled thread's anchor window (sets a
    freeze bit on the window nodes' links, making them immutable), splices
    fresh copies of the window into the list so other threads can continue
    mutating, and thereafter exempts the stalled thread from the epoch
    check — only its frozen window stays unreclaimable. The stalled thread
    detects the freeze bit on its next read and restarts its operation.

    Frozen nodes are never reclaimed (the unbounded-waste caveat Table 1
    notes for DTA). *)

module Sc = Mp_util.Striped_counter
module Config = Smr_core.Config
module Epoch = Smr_core.Epoch
module Retired = Smr_core.Retired
module Counters = Smr_core.Counters

let deleted = 1 (* mark bit 0: node is logically deleted *)
let frozen = 2 (* mark bit 1: link frozen by anchor recovery *)

type node = {
  mutable key : int;
  mutable value : int;
  next : int Atomic.t;
}

type t = {
  pool : node Mempool.t;
  epoch : Epoch.t;
  counters : Counters.t;
  anchors : int Atomic.t array; (* anchored node id per thread, -1 = none *)
  recovered : bool Atomic.t array;
      (* set by a reclaimer that froze this thread's window; the victim
         checks it at every anchor refresh and restarts its operation.
         Closes the escape race: without it a victim that refreshes its
         anchor concurrently with the freeze can traverse past the frozen
         window while the reclaimer already exempted it from the epoch
         bound — a use-after-free. *)
  anchor_step : int;
  stall_epochs : int; (* epochs of pinning before recovery freezes *)
  empty_freq : int;
  epoch_freq : int;
  head : int;
  tail : int;
  traversed : Sc.t;
  frozen_count : Sc.t;
  threads : int;
}

(** Reusable per-session seek cursor: [seek] writes its outcome here
    instead of allocating a result record per call (see michael_list). *)
type cursor = {
  mutable prev_next : int Atomic.t;
  mutable curr_w : Handle.t;
  mutable curr_key : int;
}

type session = {
  t : t;
  tid : int;
  retired : Retired.t;
  mutable retire_count : int;
  mutable alloc_count : int;
  mutable hops : int;
  cur : cursor;
  mutable trav : int;
      (* nodes visited since the last flush: batched into the striped
         counter once per operation instead of one atomic RMW per hop *)
  mutable in_batch : bool;
      (* batch window: one epoch announcement across several ops *)
}

exception Op_frozen
(** Raised when a traversal hits a frozen link: the operation restarts. *)

let name = "dta-list"
let no_anchor = -1

let node t id = Mempool.get t.pool id

let create ~threads ~capacity ?(check_access = false) ?(anchor_step = 100)
    ?(stall_epochs = 3) config =
  let config = Config.validate config in
  let pool =
    Mempool.create ~capacity ~threads ~check_access ~max_arenas:config.Config.max_arenas
        (fun _ ->
        { key = 0; value = 0; next = Atomic.make Handle.null })
  in
  let head = Mempool.alloc pool ~tid:0 in
  let tail = Mempool.alloc pool ~tid:0 in
  let hn = Mempool.unsafe_get pool head and tn = Mempool.unsafe_get pool tail in
  hn.key <- min_int;
  tn.key <- max_int;
  Atomic.set hn.next (Mempool.handle pool tail);
  {
    pool;
    epoch = Epoch.create ~threads;
    counters = Counters.create ~threads;
    anchors = Array.init threads (fun _ -> Atomic.make no_anchor);
    recovered = Array.init threads (fun _ -> Atomic.make false);
    anchor_step;
    stall_epochs;
    empty_freq = config.Config.empty_freq;
    epoch_freq = config.Config.epoch_freq;
    head;
    tail;
    traversed = Sc.create ~threads;
    frozen_count = Sc.create ~threads;
    threads;
  }

let session t ~tid =
  { t; tid; retired = Retired.create (); retire_count = 0; alloc_count = 0; hops = 0;
    cur = { prev_next = Atomic.make Handle.null; curr_w = Handle.null; curr_key = 0 };
    trav = 0; in_batch = false }

(** One atomic RMW per operation instead of one per traversed node. *)
let flush_trav s =
  if s.trav > 0 then begin
    Sc.add s.t.traversed ~tid:s.tid s.trav;
    s.trav <- 0
  end

(* -- protection ---------------------------------------------------------- *)

(* Inside a batch window the epoch announcement spans the whole batch;
   the anchor and hop counter still reset per operation (and per frozen
   restart) because the recovery protocol reasons about the current
   traversal, not the announcement. *)
let start_op s =
  if not s.in_batch then begin
    ignore (Epoch.announce s.t.epoch ~tid:s.tid : int);
    Counters.on_fence s.t.counters ~tid:s.tid
  end;
  s.hops <- 0;
  Atomic.set s.t.anchors.(s.tid) s.t.head

let end_op s =
  if not s.in_batch then begin
    Atomic.set s.t.anchors.(s.tid) no_anchor;
    Epoch.retire_announcement s.t.epoch ~tid:s.tid
  end

let batch_enter s =
  s.in_batch <- true;
  ignore (Epoch.announce s.t.epoch ~tid:s.tid : int);
  Counters.on_fence s.t.counters ~tid:s.tid

let batch_exit s =
  s.in_batch <- false;
  Atomic.set s.t.anchors.(s.tid) no_anchor;
  Epoch.retire_announcement s.t.epoch ~tid:s.tid

(** Follow [link]; restart the whole operation if the link is frozen —
    the reclaimer decided this thread was stalled and recovered past it. *)
let read_link _s link =
  let w = Atomic.get link in
  if Handle.mark w land frozen <> 0 then raise_notrace Op_frozen;
  w

(** Refresh the anchor every [anchor_step] hops — DTA's low-overhead
    instead of per-dereference protection. One fence per step, not per node. *)
let hop s curr =
  s.trav <- s.trav + 1;
  s.hops <- s.hops + 1;
  if s.hops >= s.t.anchor_step then begin
    s.hops <- 0;
    Atomic.set s.t.anchors.(s.tid) curr;
    Counters.on_fence s.t.counters ~tid:s.tid;
    (* Recovery handshake (Dekker-style, both sides SC): we write the
       anchor then read the flag; a reclaimer freezing our window writes
       the flag then reads the anchor. So either we observe the flag here
       and restart, or the reclaimer observed the refreshed anchor and its
       frozen window covers everything we can touch before the next
       refresh — in both cases no traversal escapes the window. *)
    if Atomic.get s.t.recovered.(s.tid) then begin
      Atomic.set s.t.recovered.(s.tid) false;
      raise_notrace Op_frozen
    end
  end

(* -- reclamation --------------------------------------------------------- *)

(* Freeze the k-hop window reachable from [anchor_id] by setting the
   freeze bit on each window link, then splice unfrozen copies over the
   window so other threads keep making progress. *)
let freeze_window s ~victim_tid =
  let t = s.t in
  (* Flag first, anchor second — the mirror image of the victim's anchor
     refresh in [hop]; see the handshake comment there. *)
  Atomic.set t.recovered.(victim_tid) true;
  let anchor_id = Atomic.get t.anchors.(victim_tid) in
  (* The head sentinel's link must stay mutable (every operation starts
     there); when the victim is anchored at the head, the window starts at
     the head's successor and the splice happens on the head's link. *)
  let window_start =
    if anchor_id = t.head then Handle.id (Atomic.get (Mempool.unsafe_get t.pool t.head).next)
    else anchor_id
  in
  if anchor_id = no_anchor || window_start = t.tail then ()
  else begin
    (* 1. freeze the window links (idempotent; CAS preserves other marks) *)
    let window = ref [] in
    let rec freeze id hops =
      if hops <= t.anchor_step && id <> t.tail then begin
        let n = Mempool.unsafe_get t.pool id in
        let rec set_bit () =
          let w = Atomic.get n.next in
          if Handle.mark w land frozen = 0 then
            if not (Atomic.compare_and_set n.next w (Handle.with_mark w (Handle.mark w lor frozen)))
            then set_bit ()
        in
        set_bit ();
        window := id :: !window;
        Sc.incr t.frozen_count ~tid:s.tid;
        freeze (Handle.id (Atomic.get n.next)) (hops + 1)
      end
    in
    freeze window_start 0;
    let window = !window in
    if window <> [] then begin
      (* 2. build copies of the live (non-deleted) window nodes *)
      let live =
        List.filter
          (fun id ->
            Handle.mark (Atomic.get (Mempool.unsafe_get t.pool id).next) land deleted = 0)
          (List.rev window)
      in
      let after_window =
        (* [window] is in reverse traversal order: its head is the last
           node of the window *)
        let last = List.hd window in
        Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool last).next) 0
      in
      let copies =
        List.map
          (fun id ->
            let src = Mempool.unsafe_get t.pool id in
            let c = Mempool.alloc t.pool ~tid:s.tid in
            let cn = Mempool.unsafe_get t.pool c in
            cn.key <- src.key;
            cn.value <- src.value;
            c)
          live
      in
      (* chain the copies, ending at the first node past the window *)
      let rec chain = function
        | [] -> ()
        | [ last ] -> Atomic.set (Mempool.unsafe_get t.pool last).next after_window
        | a :: (b :: _ as rest) ->
          Atomic.set (Mempool.unsafe_get t.pool a).next (Mempool.handle t.pool b);
          chain rest
      in
      chain copies;
      let replacement =
        match copies with [] -> after_window | c :: _ -> Mempool.handle t.pool c
      in
      (* 3. splice: find the window's predecessor and swing it *)
      let rec find_pred prev =
        let pn = Mempool.unsafe_get t.pool prev in
        let w = Atomic.get pn.next in
        let nx = Handle.id w in
        if nx = window_start then Some (pn.next, w)
        else if nx = t.tail || Handle.mark w land frozen <> 0 then None
        else find_pred nx
      in
      match find_pred t.head with
      | Some (pred_link, expected) when Handle.mark expected land (deleted lor frozen) = 0 ->
        if not (Atomic.compare_and_set pred_link expected replacement) then
          (* someone concurrently changed the edge; the window is frozen
             either way, so progress is preserved — leave it to helpers *)
          List.iter (fun c -> Mempool.free t.pool ~tid:s.tid c) copies
      | _ -> List.iter (fun c -> Mempool.free t.pool ~tid:s.tid c) copies
    end
  end

let empty s =
  let t = s.t in
  let current = Epoch.current t.epoch in
  (* identify stalled threads (epoch pinned for >= stall_epochs) and
     recover past them by freezing their windows *)
  let stalled = Array.make t.threads false in
  for tid = 0 to t.threads - 1 do
    let a = Epoch.announced t.epoch ~tid in
    if a <> Epoch.inactive && current - a >= t.stall_epochs then begin
      stalled.(tid) <- true;
      if tid <> s.tid then freeze_window s ~victim_tid:tid
    end
  done;
  (* EBR bound over non-stalled threads only *)
  let min_epoch = ref Epoch.inactive in
  for tid = 0 to t.threads - 1 do
    if not stalled.(tid) then begin
      let a = Epoch.announced t.epoch ~tid in
      if a < !min_epoch then min_epoch := a
    end
  done;
  (* windows of stalled threads stay protected *)
  let in_window = Hashtbl.create 16 in
  for tid = 0 to t.threads - 1 do
    if stalled.(tid) then begin
      let rec walk id hops =
        if id <> no_anchor && id <> t.tail && hops <= t.anchor_step + 1 then begin
          Hashtbl.replace in_window id ();
          walk (Handle.id (Atomic.get (Mempool.unsafe_get t.pool id).next)) (hops + 1)
        end
      in
      walk (Atomic.get t.anchors.(tid)) 0
    end
  done;
  let keep id =
    Mempool.Core.death (Mempool.core t.pool) id >= !min_epoch
    || Hashtbl.mem in_window id
    || Handle.mark (Atomic.get (Mempool.unsafe_get t.pool id).next) land frozen <> 0
  in
  let released =
    Retired.filter_in_place s.retired ~keep ~release:(fun id -> Mempool.free t.pool ~tid:s.tid id)
  in
  Counters.on_reclaim t.counters ~tid:s.tid released

let retire s id =
  let t = s.t in
  Mempool.Core.mark_retired (Mempool.core t.pool) id;
  Mempool.Core.set_death (Mempool.core t.pool) id (Epoch.current t.epoch);
  Retired.push s.retired id;
  Counters.on_retire t.counters ~tid:s.tid;
  s.retire_count <- s.retire_count + 1;
  if s.retire_count mod t.empty_freq = 0 then empty s

let alloc s ~key ~value =
  let t = s.t in
  s.alloc_count <- s.alloc_count + 1;
  if s.alloc_count mod t.epoch_freq = 0 then Epoch.advance t.epoch;
  let id = Mempool.alloc t.pool ~tid:s.tid in
  let n = Mempool.unsafe_get t.pool id in
  n.key <- key;
  n.value <- value;
  id

(* -- list operations (Michael's algorithm under anchor protection) ------- *)

(* Traverse towards [k]; on return [s.cur] holds the first node with
   key >= [k] and the link pointing at it. Top-level mutual recursion and
   a per-session cursor: a seek allocates nothing (see michael_list). *)
let rec seek_advance s k prev_next curr_w =
  let t = s.t in
  hop s (Handle.id curr_w);
  let curr = Handle.id curr_w in
  let curr_node = node t curr in
  let next_w = read_link s curr_node.next in
  if read_link s prev_next <> curr_w then seek s k
  else if Handle.mark next_w land deleted <> 0 then begin
    let succ_w = Handle.with_mark next_w 0 in
    if Atomic.compare_and_set prev_next curr_w succ_w then begin
      retire s curr;
      seek_advance s k prev_next succ_w
    end
    else seek s k
  end
  else begin
    let ckey = curr_node.key in
    if ckey < k then seek_advance s k curr_node.next next_w
    else begin
      let c = s.cur in
      c.prev_next <- prev_next;
      c.curr_w <- curr_w;
      c.curr_key <- ckey
    end
  end

and seek s k =
  let t = s.t in
  s.hops <- 0;
  Atomic.set t.anchors.(s.tid) t.head;
  let prev_next = (node t t.head).next in
  seek_advance s k prev_next (read_link s prev_next)

(* Operation bodies are top-level recursive functions and the freeze
   restart is a [match ... with exception] around a direct call — no
   [with_op] closure is allocated per operation. [flush_trav] runs on
   both the normal and the frozen exit, so no visit counts are lost. *)

let rec insert_body s key value =
  seek s key;
  let r = s.cur in
  if r.curr_key = key then false
  else begin
    let id = alloc s ~key ~value in
    Atomic.set (Mempool.unsafe_get s.t.pool id).next r.curr_w;
    if Atomic.compare_and_set r.prev_next r.curr_w (Mempool.handle s.t.pool id) then true
    else begin
      Mempool.free s.t.pool ~tid:s.tid id;
      insert_body s key value
    end
  end

let rec insert s ~key ~value =
  assert (key > min_int && key < max_int);
  start_op s;
  match insert_body s key value with
  | result ->
    flush_trav s;
    end_op s;
    result
  | exception Op_frozen ->
    flush_trav s;
    end_op s;
    insert s ~key ~value

let rec remove_body s key =
  seek s key;
  if s.cur.curr_key <> key then false
  else begin
    (* Copy out of the cursor before the splice-failure re-seek below can
       overwrite it. *)
    let prev_next = s.cur.prev_next and curr_w = s.cur.curr_w in
    let curr = Handle.id curr_w in
    let curr_node = node s.t curr in
    let next_w = read_link s curr_node.next in
    if Handle.mark next_w land deleted <> 0 then remove_body s key
    else if Atomic.compare_and_set curr_node.next next_w (Handle.with_mark next_w deleted)
    then begin
      if Atomic.compare_and_set prev_next curr_w (Handle.with_mark next_w 0) then
        retire s curr
      else seek s key;
      true
    end
    else remove_body s key
  end

let rec remove s key =
  start_op s;
  match remove_body s key with
  | result ->
    flush_trav s;
    end_op s;
    result
  | exception Op_frozen ->
    flush_trav s;
    end_op s;
    remove s key

let rec contains s key =
  start_op s;
  match
    seek s key;
    s.cur.curr_key = key
  with
  | result ->
    flush_trav s;
    end_op s;
    result
  | exception Op_frozen ->
    flush_trav s;
    end_op s;
    contains s key

let rec contains_paused s key ~pause =
  start_op s;
  match
    ignore (read_link s (node s.t s.t.head).next : Handle.t);
    pause ();
    seek s key;
    s.cur.curr_key = key
  with
  | result ->
    flush_trav s;
    end_op s;
    result
  | exception Op_frozen ->
    flush_trav s;
    end_op s;
    contains_paused s key ~pause

let rec find s key =
  start_op s;
  match
    seek s key;
    if s.cur.curr_key = key then Some (node s.t (Handle.id s.cur.curr_w)).value else None
  with
  | result ->
    flush_trav s;
    end_op s;
    result
  | exception Op_frozen ->
    flush_trav s;
    end_op s;
    find s key

(* -- inspection ----------------------------------------------------------- *)

let fold_nodes t f acc =
  let rec go acc w =
    let id = Handle.id w in
    if id = t.tail then acc
    else
      let n = Mempool.unsafe_get t.pool id in
      go (f acc id n) (Handle.with_mark (Atomic.get n.next) 0)
  in
  go acc (Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool t.head).next) 0)

let size t = fold_nodes t (fun acc _ _ -> acc + 1) 0

let check t =
  let _last =
    fold_nodes t
      (fun last _ n ->
        if n.key <= last then failwith "dta_list: keys not strictly increasing";
        n.key)
      min_int
  in
  ()

let traversed t = Sc.sum t.traversed
let smr_stats t = Counters.stats t.counters
let frozen_nodes t = Sc.sum t.frozen_count
let violations t = Mempool.violations t.pool
let live_nodes t = Mempool.live_count t.pool
let pool t = Mempool.core t.pool
let flush s =
  flush_trav s;
  empty s

(** Introspection for tests. *)
module Debug = struct
  let epoch t = t.epoch
  let anchor t ~tid = Atomic.get t.anchors.(tid)
end

let properties =
  {
    Smr_core.Smr_intf.full_name = "Drop the Anchor (list only)";
    wasted_memory = Smr_core.Smr_intf.Robust;
    per_node_words = 2;
    self_contained = true;
    needs_per_reference_calls = false;
  }

(** DTA through the common set interface, so the harness can drive it in
    the figures alongside the scheme-generic structures. *)
module As_set : Set_intf.SET = struct
  type nonrec t = t
  type nonrec session = session

  let name = name

  let create ~threads ~capacity ?check_access config =
    create ~threads ~capacity ?check_access config

  let session = session
  let batch_enter = batch_enter
  let batch_exit = batch_exit
  let insert = insert
  let remove = remove
  let contains = contains
  let contains_paused = contains_paused
  let find = find
  let size = size
  let check = check
  let traversed = traversed
  let smr_stats = smr_stats
  let violations = violations

  (* DTA's anchors are per-thread freezing state, not reservations; the
     harness's pinning report does not apply. *)
  let pinning_tids _ = []

  (* DTA holds no announcement-style reservations: a dead thread's
     anchor is neutralized by the existing DTA recovery path, so there
     is nothing to adopt. *)
  let adopt _ ~tid:_ = ()
  let live_nodes = live_nodes
  let pool = pool
  let flush = flush
end
