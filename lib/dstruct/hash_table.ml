(** Lock-free hash table: a fixed array of Michael-list buckets (Michael,
    SPAA 2002) sharing one pool and one SMR instance.

    This is the paper's "MP can be seamlessly plugged into any client that
    uses the HP interface" story exercised on a structure that is *not*
    globally ordered: each bucket is its own small search structure, so
    MP's interval protection still applies per bucket — the search interval
    of an insertion lives entirely inside one bucket's key order. It also
    demonstrates composition: the bucket algorithm is the list functor's
    seek/insert/remove logic re-instantiated over a shared substrate.

    Keys are partitioned, not just distributed: bucket b stores exactly the
    keys hashing to b, and within a bucket keys are sorted by a
    bucket-local order (the key itself), so Definition 4.1 holds per
    bucket. Sentinels: each bucket has its own head; all buckets share one
    tail sentinel. *)

module Sc = Mp_util.Striped_counter
module Config = Smr_core.Config

module Make (S : Smr_core.Smr_intf.S) = struct
  type node = {
    mutable key : int;
    mutable value : int;
    next : int Atomic.t;
  }

  type t = {
    pool : node Mempool.t;
    smr : S.t;
    heads : int array; (* bucket head sentinel ids *)
    tail : int;
    buckets : int;
    traversed : Sc.t;
    threads : int;
  }

  (** Reusable per-session seek cursor (see Michael_list.cursor): filled
      by [seek] in place of a per-call result record. *)
  type cursor = {
    mutable prev : int;
    mutable prev_next : int Atomic.t;
    mutable curr_w : Handle.t;
    mutable curr_key : int;
    mutable free_ref : int;
  }

  type session = {
    t : t;
    th : S.thread;
    tid : int;
    cur : cursor;
    mutable trav : int; (* batched visit count, flushed once per op *)
  }

  let name = "hash-table(" ^ S.name ^ ")"
  let slots_needed = 3
  let deleted = 1

  let node t id = Mempool.get t.pool id

  let create ~threads ~capacity ?(check_access = false) ?(buckets = 256) config =
    assert (buckets > 0 && buckets land (buckets - 1) = 0);
    let pool =
      Mempool.create ~capacity ~threads ~check_access ~max_arenas:config.Config.max_arenas
        (fun _ ->
          { key = 0; value = 0; next = Atomic.make Handle.null })
    in
    let smr =
      S.create ~pool:(Mempool.core pool) ~threads (Config.with_slots config slots_needed)
    in
    let th0 = S.thread smr ~tid:0 in
    let tail = S.alloc_with_index th0 ~index:Config.max_sentinel_index in
    (Mempool.unsafe_get pool tail).key <- max_int;
    let tail_w = S.handle_of th0 tail in
    let heads =
      Array.init buckets (fun _ ->
          let h = S.alloc_with_index th0 ~index:Config.min_sentinel_index in
          let hn = Mempool.unsafe_get pool h in
          hn.key <- min_int;
          Atomic.set hn.next tail_w;
          h)
    in
    { pool; smr; heads; tail; buckets; traversed = Sc.create ~threads; threads }

  let session t ~tid =
    {
      t;
      th = S.thread t.smr ~tid;
      tid;
      cur =
        { prev = 0; prev_next = Atomic.make Handle.null; curr_w = Handle.null;
          curr_key = 0; free_ref = 0 };
      trav = 0;
    }

  let batch_enter s = S.batch_enter s.th
  let batch_exit s = S.batch_exit s.th

  let flush_trav s =
    if s.trav > 0 then begin
      Sc.add s.t.traversed ~tid:s.tid s.trav;
      s.trav <- 0
    end

  let bucket t k =
    (* Fibonacci multiplicative hashing; buckets is a power of two. *)
    let h = k * 0x2545F4914F6CDD1D in
    (h lsr 32) land (t.buckets - 1)

  (* Identical protocol to Michael_list.seek, rooted at the key's bucket;
     top-level recursion + session cursor keep it allocation-free. *)
  let rec seek_advance s k ~rp ~rc ~rn prev prev_next curr_w =
    let t = s.t in
    s.trav <- s.trav + 1;
    let curr = Handle.id curr_w in
    let curr_node = node t curr in
    let next_w = S.read s.th ~refno:rn curr_node.next in
    if Atomic.get prev_next <> curr_w then seek s k
    else if Handle.mark next_w land deleted <> 0 then begin
      let succ_w = Handle.with_mark next_w 0 in
      if Atomic.compare_and_set prev_next curr_w succ_w then begin
        S.retire s.th curr;
        seek_advance s k ~rp ~rc:rn ~rn:rc prev prev_next succ_w
      end
      else seek s k
    end
    else begin
      let ckey = curr_node.key in
      if ckey < k then seek_advance s k ~rp:rc ~rc:rn ~rn:rp curr curr_node.next next_w
      else begin
        let c = s.cur in
        c.prev <- prev;
        c.prev_next <- prev_next;
        c.curr_w <- curr_w;
        c.curr_key <- ckey;
        c.free_ref <- rn
      end
    end

  and seek s k =
    let t = s.t in
    let head = t.heads.(bucket t k) in
    let prev_next = (node t head).next in
    let curr_w = S.read s.th ~refno:1 prev_next in
    seek_advance s k ~rp:0 ~rc:1 ~rn:2 head prev_next curr_w

  let insert s ~key ~value =
    assert (key > min_int && key < max_int);
    S.start_op s.th;
    let rec loop () =
      seek s key;
      let r = s.cur in
      if r.curr_key = key then false
      else begin
        S.update_lower_bound s.th r.prev;
        S.update_upper_bound s.th (Handle.id r.curr_w);
        let id = S.alloc s.th in
        let n = Mempool.unsafe_get s.t.pool id in
        n.key <- key;
        n.value <- value;
        Atomic.set n.next r.curr_w;
        if Atomic.compare_and_set r.prev_next r.curr_w (S.handle_of s.th id) then true
        else begin
          Mempool.free s.t.pool ~tid:s.tid id;
          loop ()
        end
      end
    in
    let result = loop () in
    flush_trav s;
    S.end_op s.th;
    result

  let remove s key =
    S.start_op s.th;
    let rec loop () =
      seek s key;
      if s.cur.curr_key <> key then false
      else begin
        (* Copy out of the cursor before the splice-failure re-seek. *)
        let prev_next = s.cur.prev_next and curr_w = s.cur.curr_w in
        let curr = Handle.id curr_w in
        let curr_node = node s.t curr in
        let next_w = S.read s.th ~refno:s.cur.free_ref curr_node.next in
        if Handle.mark next_w land deleted <> 0 then loop ()
        else if Atomic.compare_and_set curr_node.next next_w (Handle.with_mark next_w deleted)
        then begin
          if Atomic.compare_and_set prev_next curr_w (Handle.with_mark next_w 0) then
            S.retire s.th curr
          else seek s key;
          true
        end
        else loop ()
      end
    in
    let result = loop () in
    flush_trav s;
    S.end_op s.th;
    result

  let contains s key =
    S.start_op s.th;
    seek s key;
    let result = s.cur.curr_key = key in
    flush_trav s;
    S.end_op s.th;
    result

  let contains_paused s key ~pause =
    S.start_op s.th;
    ignore (S.read s.th ~refno:1 (node s.t s.t.heads.(bucket s.t key)).next : Handle.t);
    pause ();
    seek s key;
    let result = s.cur.curr_key = key in
    flush_trav s;
    S.end_op s.th;
    result

  let find s key =
    S.start_op s.th;
    seek s key;
    let result =
      if s.cur.curr_key = key then Some (node s.t (Handle.id s.cur.curr_w)).value else None
    in
    flush_trav s;
    S.end_op s.th;
    result

  (* -- sequential-only inspection ---------------------------------------- *)

  let fold t f acc =
    Array.fold_left
      (fun acc head ->
        let rec go acc w =
          let id = Handle.id w in
          if id = t.tail then acc
          else
            let n = Mempool.unsafe_get t.pool id in
            go (f acc id n) (Handle.with_mark (Atomic.get n.next) 0)
        in
        go acc (Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool head).next) 0))
      acc t.heads

  let size t = fold t (fun acc _ _ -> acc + 1) 0

  let check t =
    Array.iteri
      (fun b head ->
        let rec go last w =
          let id = Handle.id w in
          if id <> t.tail then begin
            let n = Mempool.unsafe_get t.pool id in
            if n.key <= last then failwith "hash_table: bucket keys not strictly increasing";
            if bucket t n.key <> b then failwith "hash_table: key in wrong bucket";
            if Handle.mark (Atomic.get n.next) land deleted <> 0 then
              failwith "hash_table: reachable node is marked";
            go n.key (Handle.with_mark (Atomic.get n.next) 0)
          end
        in
        go min_int (Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool head).next) 0))
      t.heads

  let traversed t = Sc.sum t.traversed
  let smr_stats t = S.stats t.smr
  let violations t = Mempool.violations t.pool
  let pinning_tids t = S.pinning_tids t.smr
  let adopt t ~tid = S.adopt t.smr ~tid
  let live_nodes t = Mempool.live_count t.pool
  let pool t = Mempool.core t.pool
  let flush s =
    flush_trav s;
    S.flush s.th
end
