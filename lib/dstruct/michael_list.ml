(** Michael's lock-free linked list (SPAA 2002), §5.2 of the paper.

    Sorted singly-linked list with head/tail sentinels. Deletion is
    two-step: a CAS sets the {e deleted} bit in the victim's [next] word
    (logical deletion), then a CAS on the predecessor splices it out
    (physical removal), after which the splicer retires the node. Any
    traversal that encounters a marked node helps splice it.

    MP integration (Listing 7): [seek] reports the shrinking search
    interval through [update_lower_bound]/[update_upper_bound]; the head
    sentinel has index 0 and the tail the maximal sentinel index, so a new
    node's index is the midpoint of its final predecessor/successor.

    PPV discipline: three protection slots rotate through the roles
    (prev, curr, next) as the traversal advances, so protection never has
    to be copied between slots. *)

module Sc = Mp_util.Striped_counter
module Config = Smr_core.Config

module Make (S : Smr_core.Smr_intf.S) = struct
  type node = {
    mutable key : int;
    mutable value : int;
    next : int Atomic.t;
  }

  type t = {
    pool : node Mempool.t;
    smr : S.t;
    head : int;
    tail : int;
    traversed : Sc.t;
    threads : int;
  }

  (** Reusable per-session seek cursor: [seek] writes its outcome here
      instead of allocating a result record per call, keeping the
      traversal hot path minor-GC-free. Single-threaded by construction
      (a session is owned by one thread) and always fully overwritten
      before being read. *)
  type cursor = {
    mutable prev : int; (* predecessor node id *)
    mutable prev_next : int Atomic.t; (* link field of the predecessor *)
    mutable curr_w : Handle.t; (* unmarked handle of the node with key >= target *)
    mutable curr_key : int;
    mutable free_ref : int; (* slot not protecting prev or curr, for further reads *)
  }

  type session = {
    t : t;
    th : S.thread;
    tid : int;
    cur : cursor;
    mutable trav : int;
        (* nodes visited since the last flush: batched into the striped
           counter once per operation instead of one atomic RMW per node *)
  }

  let name = "michael-list(" ^ S.name ^ ")"
  let slots_needed = 3
  let deleted = 1 (* mark bit 0 of a node's [next]: the node is deleted *)

  let node t id = Mempool.get t.pool id

  let create ~threads ~capacity ?(check_access = false) config =
    let pool =
      Mempool.create ~capacity ~threads ~check_access ~max_arenas:config.Config.max_arenas
        (fun _ ->
          { key = 0; value = 0; next = Atomic.make Handle.null })
    in
    let smr =
      S.create ~pool:(Mempool.core pool) ~threads (Config.with_slots config slots_needed)
    in
    let th0 = S.thread smr ~tid:0 in
    let head = S.alloc_with_index th0 ~index:Config.min_sentinel_index in
    let tail = S.alloc_with_index th0 ~index:Config.max_sentinel_index in
    let hn = Mempool.unsafe_get pool head and tn = Mempool.unsafe_get pool tail in
    hn.key <- min_int;
    tn.key <- max_int;
    Atomic.set hn.next (S.handle_of th0 tail);
    { pool; smr; head; tail; traversed = Sc.create ~threads; threads }

  let session t ~tid =
    {
      t;
      th = S.thread t.smr ~tid;
      tid;
      cur =
        { prev = 0; prev_next = Atomic.make Handle.null; curr_w = Handle.null;
          curr_key = 0; free_ref = 0 };
      trav = 0;
    }

  let batch_enter s = S.batch_enter s.th
  let batch_exit s = S.batch_exit s.th

  (** Flush the session's batched visit count into the striped counter —
      one atomic RMW per operation instead of one per traversed node.
      Called at every operation end (alongside [S.end_op]) and from
      [flush], so no counts are lost when the session goes quiet. *)
  let flush_trav s =
    if s.trav > 0 then begin
      Sc.add s.t.traversed ~tid:s.tid s.trav;
      s.trav <- 0
    end

  (** Traverse towards [k]; on return, [s.cur.curr_w] is the first node
      with key >= [k] and [s.cur.prev_next] the link pointing at it.
      Marked nodes met on the way are spliced out and retired. The final
      (prev, curr) pair is exactly the search interval of Listing 7 —
      insert reports it to the SMR scheme in one shot instead of per
      traversed node (the last update wins either way, and only [alloc]
      consumes the bounds).

      Top-level mutual recursion (not local closures) and a per-session
      cursor (not a result record): a seek allocates nothing.
      rp protects prev, rc protects curr, rn is scratch for next. *)
  let rec seek_advance s k ~rp ~rc ~rn prev prev_next curr_w =
    let t = s.t in
    s.trav <- s.trav + 1;
    let curr = Handle.id curr_w in
    let curr_node = node t curr in
    let next_w = S.read s.th ~refno:rn curr_node.next in
    if Atomic.get prev_next <> curr_w then seek s k
    else if Handle.mark next_w land deleted <> 0 then begin
      (* curr is logically deleted: splice it out, then keep going from
         its successor (already protected by rn). *)
      let succ_w = Handle.with_mark next_w 0 in
      if Atomic.compare_and_set prev_next curr_w succ_w then begin
        S.retire s.th curr;
        seek_advance s k ~rp ~rc:rn ~rn:rc prev prev_next succ_w
      end
      else seek s k
    end
    else begin
      let ckey = curr_node.key in
      if ckey < k then seek_advance s k ~rp:rc ~rc:rn ~rn:rp curr curr_node.next next_w
      else begin
        let c = s.cur in
        c.prev <- prev;
        c.prev_next <- prev_next;
        c.curr_w <- curr_w;
        c.curr_key <- ckey;
        c.free_ref <- rn
      end
    end

  and seek s k =
    let t = s.t in
    let prev_next = (node t t.head).next in
    let curr_w = S.read s.th ~refno:1 prev_next in
    seek_advance s k ~rp:0 ~rc:1 ~rn:2 t.head prev_next curr_w

  let insert s ~key ~value =
    assert (key > min_int && key < max_int);
    S.start_op s.th;
    let rec loop () =
      seek s key;
      let r = s.cur in
      if r.curr_key = key then false
      else begin
        S.update_lower_bound s.th r.prev;
        S.update_upper_bound s.th (Handle.id r.curr_w);
        let id = S.alloc s.th in
        let n = Mempool.unsafe_get s.t.pool id in
        n.key <- key;
        n.value <- value;
        (* [alloc] may seek-free scan but never seeks: the cursor read
           below still holds this iteration's outcome. *)
        Atomic.set n.next r.curr_w;
        if Atomic.compare_and_set r.prev_next r.curr_w (S.handle_of s.th id) then true
        else begin
          (* Never linked, hence invisible: the slot goes straight back. *)
          Mempool.free s.t.pool ~tid:s.tid id;
          loop ()
        end
      end
    in
    let result = loop () in
    flush_trav s;
    S.end_op s.th;
    result

  let remove s key =
    S.start_op s.th;
    let rec loop () =
      seek s key;
      if s.cur.curr_key <> key then false
      else begin
        (* Copy out of the cursor before the splice-failure re-seek below
           can overwrite it. *)
        let prev_next = s.cur.prev_next and curr_w = s.cur.curr_w in
        let curr = Handle.id curr_w in
        let curr_node = node s.t curr in
        let next_w = S.read s.th ~refno:s.cur.free_ref curr_node.next in
        if Handle.mark next_w land deleted <> 0 then loop ()
        else if Atomic.compare_and_set curr_node.next next_w (Handle.with_mark next_w deleted)
        then begin
          (* Logically deleted by us; try to splice, else leave it to the
             next traversal's helping. *)
          if Atomic.compare_and_set prev_next curr_w (Handle.with_mark next_w 0) then
            S.retire s.th curr
          else seek s key;
          true
        end
        else loop ()
      end
    in
    let result = loop () in
    flush_trav s;
    S.end_op s.th;
    result

  let contains s key =
    S.start_op s.th;
    seek s key;
    let result = s.cur.curr_key = key in
    flush_trav s;
    S.end_op s.th;
    result

  let contains_paused s key ~pause =
    S.start_op s.th;
    (* Protect the first node, stall while holding that protection, then
       finish the operation normally. *)
    ignore (S.read s.th ~refno:1 (node s.t s.t.head).next : Handle.t);
    pause ();
    seek s key;
    let result = s.cur.curr_key = key in
    flush_trav s;
    S.end_op s.th;
    result

  let find s key =
    S.start_op s.th;
    seek s key;
    let result =
      if s.cur.curr_key = key then Some (node s.t (Handle.id s.cur.curr_w)).value else None
    in
    flush_trav s;
    S.end_op s.th;
    result

  (* -- sequential-only inspection ---------------------------------------- *)

  let fold_nodes t f acc =
    let rec go acc w =
      let id = Handle.id w in
      if id = t.tail then acc
      else
        let n = Mempool.unsafe_get t.pool id in
        go (f acc id n) (Handle.with_mark (Atomic.get n.next) 0)
    in
    go acc (Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool t.head).next) 0)

  let size t = fold_nodes t (fun acc _ _ -> acc + 1) 0

  let check t =
    let _last =
      fold_nodes t
        (fun last id n ->
          if n.key <= last then failwith "michael_list: keys not strictly increasing";
          if Handle.mark (Atomic.get n.next) land deleted <> 0 then
            failwith "michael_list: reachable node is marked deleted";
          if Mempool.Core.state (Mempool.core t.pool) id <> Mempool.state_live then
            failwith "michael_list: reachable node is not live";
          n.key)
        min_int
    in
    ()

  let traversed t = Sc.sum t.traversed
  let smr_stats t = S.stats t.smr
  let violations t = Mempool.violations t.pool
  let pinning_tids t = S.pinning_tids t.smr
  let adopt t ~tid = S.adopt t.smr ~tid
  let live_nodes t = Mempool.live_count t.pool
  let pool t = Mempool.core t.pool
  let flush s =
    flush_trav s;
    S.flush s.th

  (** Introspection for tests (sequential-only). *)
  module Debug = struct
    let pool t = t.pool

    let id_of_key t k =
      fold_nodes t (fun acc id n -> if n.key = k then Some id else acc) None
  end
end
