(** Michael–Scott lock-free FIFO queue (PODC 1996) over the SMR interface.

    Not a search data structure: it has no ordered keys and never calls
    MP's bound-update extension, so under margin pointers every node is
    stamped USE_HP and protected through the hazard-pointer fallback —
    Table 1's "MP = HP on other data structures" row, made testable. Any
    scheme plugs in, exactly as with the search structures. *)

module Sc = Mp_util.Striped_counter
module Config = Smr_core.Config

module Make (S : Smr_core.Smr_intf.S) = struct
  type node = {
    mutable value : int;
    next : int Atomic.t;
  }

  type t = {
    pool : node Mempool.t;
    smr : S.t;
    head : int Atomic.t; (* dummy-led list; head points at the dummy *)
    tail : int Atomic.t;
    enqueues : Sc.t;
    dequeues : Sc.t;
    threads : int;
  }

  type session = {
    t : t;
    th : S.thread;
    tid : int;
  }

  let name = "ms-queue(" ^ S.name ^ ")"
  let slots_needed = 3

  let node t id = Mempool.get t.pool id

  let create ~threads ~capacity ?(check_access = false) config =
    let pool =
      Mempool.create ~capacity ~threads ~check_access ~max_arenas:config.Config.max_arenas
        (fun _ ->
          { value = 0; next = Atomic.make Handle.null })
    in
    let smr =
      S.create ~pool:(Mempool.core pool) ~threads (Config.with_slots config slots_needed)
    in
    let th0 = S.thread smr ~tid:0 in
    let dummy = S.alloc th0 in
    let dummy_w = S.handle_of th0 dummy in
    {
      pool;
      smr;
      head = Atomic.make dummy_w;
      tail = Atomic.make dummy_w;
      enqueues = Sc.create ~threads;
      dequeues = Sc.create ~threads;
      threads;
    }

  let session t ~tid = { t; th = S.thread t.smr ~tid; tid }

  (* Top-level retry loops (not per-call closures): an enqueue/dequeue
     allocates nothing beyond what its API requires. *)
  let rec enqueue_loop s new_w =
    let t = s.t in
    let tail_w = S.read s.th ~refno:0 t.tail in
    let tail_node = node t (Handle.id tail_w) in
    let next_w = S.read s.th ~refno:1 tail_node.next in
    if Atomic.get t.tail = tail_w then
      if Handle.is_null next_w then begin
        if Atomic.compare_and_set tail_node.next next_w new_w then
          ignore (Atomic.compare_and_set t.tail tail_w new_w : bool)
        else enqueue_loop s new_w
      end
      else begin
        (* help swing the lagging tail, then retry *)
        ignore (Atomic.compare_and_set t.tail tail_w next_w : bool);
        enqueue_loop s new_w
      end
    else enqueue_loop s new_w

  let enqueue s v =
    S.start_op s.th;
    let t = s.t in
    let id = S.alloc s.th in
    let n = Mempool.unsafe_get t.pool id in
    n.value <- v;
    Atomic.set n.next Handle.null;
    enqueue_loop s (S.handle_of s.th id);
    Sc.incr t.enqueues ~tid:s.tid;
    S.end_op s.th

  (* Returns the dequeued value, or min_int for "empty" — the boxing into
     an option happens once in [dequeue], not per retry. *)
  let rec dequeue_loop s =
    let t = s.t in
    let head_w = S.read s.th ~refno:0 t.head in
    let tail_w = S.read s.th ~refno:1 t.tail in
    let head_node = node t (Handle.id head_w) in
    let next_w = S.read s.th ~refno:2 head_node.next in
    if Atomic.get t.head = head_w then
      if Handle.id head_w = Handle.id tail_w then
        if Handle.is_null next_w then min_int
        else begin
          ignore (Atomic.compare_and_set t.tail tail_w next_w : bool);
          dequeue_loop s
        end
      else begin
        (* read the value before the CAS publishes the dummy slot *)
        let v = (node t (Handle.id next_w)).value in
        if Atomic.compare_and_set t.head head_w next_w then begin
          S.retire s.th (Handle.id head_w);
          Sc.incr t.dequeues ~tid:s.tid;
          v
        end
        else dequeue_loop s
      end
    else dequeue_loop s

  let dequeue s =
    S.start_op s.th;
    let v = dequeue_loop s in
    S.end_op s.th;
    if v = min_int then None else Some v

  let is_empty s =
    S.start_op s.th;
    let t = s.t in
    let head_w = S.read s.th ~refno:0 t.head in
    let next_w = S.read s.th ~refno:1 (node t (Handle.id head_w)).next in
    S.end_op s.th;
    Handle.is_null next_w

  (* -- sequential-only inspection ---------------------------------------- *)

  let length t =
    let rec go acc w =
      if Handle.is_null w then acc
      else go (acc + 1) (Atomic.get (Mempool.unsafe_get t.pool (Handle.id w)).next)
    in
    (* skip the dummy *)
    go (-1) (Atomic.get t.head)

  let to_list t =
    let rec go acc w =
      if Handle.is_null w then List.rev acc
      else
        let n = Mempool.unsafe_get t.pool (Handle.id w) in
        go (n.value :: acc) (Atomic.get n.next)
    in
    match go [] (Atomic.get t.head) with [] -> [] | _dummy :: rest -> rest

  let enqueued t = Sc.sum t.enqueues
  let dequeued t = Sc.sum t.dequeues
  let smr_stats t = S.stats t.smr
  let violations t = Mempool.violations t.pool
  let live_nodes t = Mempool.live_count t.pool
  let pool t = Mempool.core t.pool
  let flush s = S.flush s.th
end
