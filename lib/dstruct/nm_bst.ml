(** Natarajan–Mittal lock-free external binary search tree (PPoPP 2014),
    §5.3 of the paper.

    Keys live in leaves; internal nodes only route searches. Deletion
    marks *edges*: a {e flag} on the edge to a leaf means that leaf is
    being removed, a {e tag} freezes an edge so the removal can swing the
    deepest untagged ancestor edge over the surviving sibling subtree in
    one CAS. That CAS may coalesce several pending deletions — the chain
    of tagged internal nodes between the seek record's successor and
    parent, each with its flagged leaf — and its winner retires the whole
    unlinked chain.

    Initial state (paper Figure 1): routing internals R (key ∞₂) and
    S (key ∞₁) and sentinel leaves ∞₀ < ∞₁ < ∞₂; every client key
    compares below ∞₀, so the sentinels are never removed.

    MP integration (Listing 9): seek narrows the search interval at every
    node it descends through. The internal routing sentinels get the
    maximal sentinel index (they bound every search from above); the new
    internal node allocated by insert duplicates the key of one of its
    leaves and therefore shares that leaf's index, keeping the
    order-preserving index invariant (external trees necessarily duplicate
    keys between a leaf and its routing node).

    PPV discipline: six protection slots are juggled between the roles
    (ancestor, successor, parent, leaf, current); a role change relabels
    which slot plays which role and never copies protection between slots. *)

module Sc = Mp_util.Striped_counter
module Config = Smr_core.Config

let flag = 1 (* edge mark: the leaf this edge points to is being removed *)
let tag = 2 (* edge mark: edge frozen; the node it leaves is being removed *)

module Make (S : Smr_core.Smr_intf.S) = struct
  type node = {
    mutable key : int;
    mutable value : int;
    left : int Atomic.t;
    right : int Atomic.t;
  }

  type t = {
    pool : node Mempool.t;
    smr : S.t;
    root : int; (* R *)
    s_node : int; (* S *)
    inf0 : int;
    traversed : Sc.t;
    threads : int;
  }

  (** Reusable per-session seek record: [seek] writes its outcome here
      instead of allocating a record per call (the walk threads its state
      through top-level recursion, so a whole descent allocates nothing).
      Owned by the session's single thread and fully overwritten by every
      seek. *)
  type seek_record = {
    mutable ancestor : int;
    mutable successor : int;
    mutable parent : int;
    mutable leaf : int;
    mutable leaf_w : Handle.t; (* unmarked handle of [leaf] *)
    mutable bound_lo : int; (* last node routed right from (-1 = none); protected *)
    mutable bound_hi : int; (* last node routed left from (-1 = none); protected *)
  }

  type session = {
    t : t;
    th : S.thread;
    tid : int;
    sr : seek_record;
    mutable trav : int; (* batched visit count, flushed once per op *)
  }

  let name = "nm-bst(" ^ S.name ^ ")"
  let slots_needed = 6

  (* Sentinel keys: every client key must be smaller than [inf0]. *)
  let inf0_key = max_int - 2
  let inf1_key = max_int - 1
  let inf2_key = max_int
  let max_client_key = inf0_key - 1

  let node t id = Mempool.get t.pool id

  let create ~threads ~capacity ?(check_access = false) config =
    let pool =
      Mempool.create ~capacity ~threads ~check_access ~max_arenas:config.Config.max_arenas
        (fun _ ->
          { key = 0; value = 0; left = Atomic.make Handle.null; right = Atomic.make Handle.null })
    in
    let smr =
      S.create ~pool:(Mempool.core pool) ~threads (Config.with_slots config slots_needed)
    in
    let th0 = S.thread smr ~tid:0 in
    let mk ~index ~key =
      let id = S.alloc_with_index th0 ~index in
      (Mempool.unsafe_get pool id).key <- key;
      id
    in
    (* The routing internals bound every search interval from above, so
       they carry the maximal sentinel index; the unreachable-by-search
       leaves ∞₁/∞₂ keep USE_HP as in the paper. *)
    let inf0 = mk ~index:Config.max_sentinel_index ~key:inf0_key in
    let inf1 = mk ~index:Config.use_hp ~key:inf1_key in
    let inf2 = mk ~index:Config.use_hp ~key:inf2_key in
    let s_node = mk ~index:Config.max_sentinel_index ~key:inf1_key in
    let root = mk ~index:Config.max_sentinel_index ~key:inf2_key in
    let sn = Mempool.unsafe_get pool s_node and rn = Mempool.unsafe_get pool root in
    Atomic.set sn.left (S.handle_of th0 inf0);
    Atomic.set sn.right (S.handle_of th0 inf1);
    Atomic.set rn.left (S.handle_of th0 s_node);
    Atomic.set rn.right (S.handle_of th0 inf2);
    { pool; smr; root; s_node; inf0; traversed = Sc.create ~threads; threads }

  let session t ~tid =
    {
      t;
      th = S.thread t.smr ~tid;
      tid;
      sr =
        { ancestor = 0; successor = 0; parent = 0; leaf = 0; leaf_w = Handle.null;
          bound_lo = -1; bound_hi = -1 };
      trav = 0;
    }

  let batch_enter s = S.batch_enter s.th
  let batch_exit s = S.batch_exit s.th

  let flush_trav s =
    if s.trav > 0 then begin
      Sc.add s.t.traversed ~tid:s.tid s.trav;
      s.trav <- 0
    end

  (** Edge of [n] on the side a search for [k] descends. *)
  let child_field n k = if k < n.key then n.left else n.right

  let sibling_field n k = if k < n.key then n.right else n.left

  (* Roles are slot numbers; [pick_scan] finds a slot free of any role
     (top-level so no closure is built per seek step). *)
  let rec pick_scan used i = if used land (1 lsl i) = 0 then i else pick_scan used (i + 1)

  let[@inline] pick ~ra ~rs ~rp ~rl =
    pick_scan ((1 lsl ra) lor (1 lsl rs) lor (1 lsl rp) lor (1 lsl rl)) 0

  (** Listing 9: descend from S, remembering the deepest untagged edge
      (ancestor → successor) and the final parent → leaf pair, and report
      the shrinking search interval to the SMR scheme. The outcome lands
      in [s.sr] (per-session, reused) instead of a fresh record.

      A removal retires a whole frozen chain with one CAS on the deepest
      untagged edge above it, and frozen edges never change — so the
      per-edge validation performed by pointer-based SMR reads cannot
      detect that a node reached through a frozen edge has been reclaimed.
      Seek therefore re-validates the current ancestor → successor edge
      after protecting each node and before touching its payload: any
      chain containing the node must have swung exactly that edge.

      Entry invariant of [seek_walk]: [into_leaf_field]/[into_leaf_w] are
      the edge into [leaf] (atomic and the word as read); [current_w] was
      read from [current_field], the edge from [leaf] toward [k]. *)
  let rec seek s k =
    let t = s.t in
    let sn = node t t.s_node in
    let into_leaf_w = S.read s.th ~refno:3 sn.left in
    let leaf = Handle.id into_leaf_w in
    let current_field = (node t leaf).left in
    let current_w = S.read s.th ~refno:4 current_field in
    seek_walk s k ~ra:0 ~rs:1 ~rp:2 ~rl:3 ~rc:4 ~ancestor:t.root ~successor:t.s_node
      ~parent:t.s_node ~leaf ~into_leaf_field:sn.left ~into_leaf_w
      ~ancestor_field:(node t t.root).left ~current_field ~bound_lo:(-1) ~bound_hi:(-1)
      current_w

  and seek_walk s k ~ra ~rs ~rp ~rl ~rc ~ancestor ~successor ~parent ~leaf ~into_leaf_field
      ~into_leaf_w ~ancestor_field ~current_field ~bound_lo ~bound_hi current_w =
    let t = s.t in
    if Handle.is_null current_w then begin
      let sr = s.sr in
      sr.ancestor <- ancestor;
      sr.successor <- successor;
      sr.parent <- parent;
      sr.leaf <- leaf;
      sr.leaf_w <- Handle.with_mark into_leaf_w 0;
      sr.bound_lo <- bound_lo;
      sr.bound_hi <- bound_hi
    end
    else begin
      s.trav <- s.trav + 1;
      (* Scalar conditional rebinding (not an if-of-tuples, which would
         allocate a tuple per visited node). *)
      let untagged = Handle.mark into_leaf_w land tag = 0 in
      let ra = if untagged then rp else ra in
      let rs = if untagged then rl else rs in
      let ancestor = if untagged then parent else ancestor in
      let successor = if untagged then leaf else successor in
      let ancestor_field = if untagged then into_leaf_field else ancestor_field in
      let rp = rl and parent = leaf in
      let rl = rc and leaf = Handle.id current_w in
      (* The node is reclaimable only through a swing of the deepest
         untagged edge above it. That is [ancestor_field] as long as the
         edge is still untagged: a tag on it means the edge has been
         frozen into a chain that a *higher* untagged edge will swing, so
         only [id unchanged AND still untagged] proves nothing below
         [successor] has been retired yet. *)
      let av = Atomic.get ancestor_field in
      if Handle.id av <> successor || Handle.mark av land tag <> 0 then seek s k
      else begin
        let leaf_node = node t leaf in
        let goes_left = k < leaf_node.key in
        let next_field = if goes_left then leaf_node.left else leaf_node.right in
        let bound_lo = if goes_left then bound_lo else leaf in
        let bound_hi = if goes_left then leaf else bound_hi in
        let rc = pick ~ra ~rs ~rp ~rl in
        let next_w = S.read s.th ~refno:rc next_field in
        seek_walk s k ~ra ~rs ~rp ~rl ~rc ~ancestor ~successor ~parent ~leaf
          ~into_leaf_field:current_field ~into_leaf_w:current_w ~ancestor_field
          ~current_field:next_field ~bound_lo ~bound_hi next_w
      end
    end

  (** Retire the chain unlinked by a successful cleanup CAS: the internal
      nodes from [successor] down to [parent] (each frozen, carrying a
      flagged leaf off the search path) plus the removed leaf under
      [parent] — the child on the side the swing did {e not} keep
      ([kept_sibling] says which). The kept edge may itself carry a
      migrated flag, so flags alone cannot identify the removed leaf. All
      edges in the chain are flagged/tagged, hence immutable; fields are
      read before the node is retired. *)
  let retire_chain s k ~successor ~parent ~kept_sibling =
    let t = s.t in
    let rec down cur =
      let n = node t cur in
      let path_next = Handle.id (Atomic.get (child_field n k)) in
      let off_path = Atomic.get (sibling_field n k) in
      if cur <> parent then begin
        S.retire s.th (Handle.id off_path);
        S.retire s.th cur;
        down path_next
      end
      else begin
        let removed =
          if kept_sibling then Atomic.get (child_field n k) else off_path
        in
        assert (Handle.mark removed land flag <> 0);
        S.retire s.th (Handle.id removed);
        S.retire s.th cur
      end
    in
    down successor

  type cleanup_result =
    | Won  (** our swing CAS unlinked the chain (and we retired it) *)
    | Lost  (** a pending removal exists but another thread's CAS won *)
    | No_pending  (** no flag under [parent]: the seek record is stale *)

  (** Attempt to complete the removal recorded in [sr]: freeze the
      surviving edge with a tag, then swing the ancestor → successor edge
      over the surviving subtree. Defensive against seek-record staleness:
      acts only when a flag is actually present under [parent] (helping
      someone else's removal is then still correct). *)
  let cleanup s k (sr : seek_record) =
    let t = s.t in
    let ancestor_n = node t sr.ancestor in
    let parent_n = node t sr.parent in
    let ancestor_field = child_field ancestor_n k in
    let child_f = child_field parent_n k in
    let sibling_f = sibling_field parent_n k in
    let child_w = Atomic.get child_f in
    let keep =
      if Handle.mark child_w land flag <> 0 then Some (sibling_f, true)
      else if Handle.mark (Atomic.get sibling_f) land flag <> 0 then
        (* The flagged leaf is off our path: keep our side. *)
        Some (child_f, false)
      else None
    in
    match keep with
    | None -> No_pending
    | Some (keep_f, kept_sibling) ->
      (* Freeze the surviving edge (preserving a flag another removal may
         already have put on it — that flag migrates up with the swing). *)
      let rec freeze () =
        let w = Atomic.get keep_f in
        if Handle.mark w land tag <> 0 then w
        else if Atomic.compare_and_set keep_f w (Handle.with_mark w (Handle.mark w lor tag))
        then Handle.with_mark w (Handle.mark w lor tag)
        else freeze ()
      in
      let frozen = freeze () in
      let expected = S.handle_of s.th sr.successor in
      let replacement = Handle.with_mark frozen (Handle.mark frozen land flag) in
      if Atomic.compare_and_set ancestor_field expected replacement then begin
        retire_chain s k ~successor:sr.successor ~parent:sr.parent ~kept_sibling;
        Won
      end
      else Lost

  let insert s ~key ~value =
    assert (key >= 0 && key <= max_client_key);
    S.start_op s.th;
    let t = s.t in
    let rec loop () =
      seek s key;
      let sr = s.sr in
      let leaf_n = node t sr.leaf in
      if leaf_n.key = key then false
      else begin
        let leaf_key = leaf_n.key in
        (* report the final search interval: the last right-turn node
           bounds from below, the last left-turn node from above (plus the
           final leaf on whichever side it falls) *)
        let lo, hi =
          if key < leaf_key then (sr.bound_lo, sr.leaf) else (sr.leaf, sr.bound_hi)
        in
        if lo >= 0 then S.update_lower_bound s.th lo;
        if hi >= 0 then S.update_upper_bound s.th hi;
        let new_leaf = S.alloc s.th in
        let ln = Mempool.unsafe_get t.pool new_leaf in
        ln.key <- key;
        ln.value <- value;
        Atomic.set ln.left Handle.null;
        Atomic.set ln.right Handle.null;
        (* The router duplicates the larger of the two keys and shares the
           index of the node carrying that key. *)
        let router_key = max key leaf_key in
        let router_index =
          if key < leaf_key then Mempool.Core.index (Mempool.core t.pool) sr.leaf
          else Mempool.Core.index (Mempool.core t.pool) new_leaf
        in
        let router = S.alloc_with_index s.th ~index:router_index in
        let rn = Mempool.unsafe_get t.pool router in
        rn.key <- router_key;
        let new_leaf_w = S.handle_of s.th new_leaf in
        if key < leaf_key then begin
          Atomic.set rn.left new_leaf_w;
          Atomic.set rn.right sr.leaf_w
        end
        else begin
          Atomic.set rn.left sr.leaf_w;
          Atomic.set rn.right new_leaf_w
        end;
        let parent_field = child_field (node t sr.parent) key in
        if Atomic.compare_and_set parent_field sr.leaf_w (S.handle_of s.th router) then true
        else begin
          (* Not linked: recycle both slots; help a pending removal of the
             leaf if that is what beat us. *)
          Mempool.free t.pool ~tid:s.tid new_leaf;
          Mempool.free t.pool ~tid:s.tid router;
          let w = Atomic.get parent_field in
          if Handle.id w = sr.leaf && Handle.mark w <> 0 then
            ignore (cleanup s key sr : cleanup_result);
          loop ()
        end
      end
    in
    let result = loop () in
    flush_trav s;
    S.end_op s.th;
    result

  let remove s key =
    assert (key >= 0 && key <= max_client_key);
    S.start_op s.th;
    let t = s.t in
    (* Injection mode: flag the parent → leaf edge to claim the removal. *)
    let rec injection () =
      seek s key;
      let sr = s.sr in
      let leaf_n = node t sr.leaf in
      if leaf_n.key <> key then false
      else begin
        let parent_field = child_field (node t sr.parent) key in
        if Atomic.compare_and_set parent_field sr.leaf_w (Handle.with_mark sr.leaf_w flag)
        then
          match cleanup s key sr with
          | Won -> true
          | Lost | No_pending -> cleanup_mode sr.leaf
        else begin
          let w = Atomic.get parent_field in
          if Handle.id w = sr.leaf && Handle.mark w <> 0 then
            ignore (cleanup s key sr : cleanup_result);
          injection ()
        end
      end
    (* Cleanup mode: our leaf is flagged; retry until it is unlinked (by us
       or a helper). Slot-reuse ABA is benign: [cleanup] re-verifies the
       flag before acting, and a [No_pending] answer on a same-id leaf
       means our flagged victim is already gone (flags are permanent while
       linked), i.e. some helper completed our removal. *)
    and cleanup_mode victim =
      seek s key;
      let sr = s.sr in
      if sr.leaf <> victim then true
      else
        match cleanup s key sr with
        | Won | No_pending -> true
        | Lost -> cleanup_mode victim
    in
    let result = injection () in
    flush_trav s;
    S.end_op s.th;
    result

  let contains s key =
    S.start_op s.th;
    seek s key;
    let result = (node s.t s.sr.leaf).key = key in
    flush_trav s;
    S.end_op s.th;
    result

  let contains_paused s key ~pause =
    S.start_op s.th;
    ignore (S.read s.th ~refno:3 (node s.t s.t.s_node).left : Handle.t);
    pause ();
    seek s key;
    let result = (node s.t s.sr.leaf).key = key in
    flush_trav s;
    S.end_op s.th;
    result

  let find s key =
    S.start_op s.th;
    seek s key;
    let leaf_n = node s.t s.sr.leaf in
    let result = if leaf_n.key = key then Some leaf_n.value else None in
    flush_trav s;
    S.end_op s.th;
    result

  (* -- sequential-only inspection ---------------------------------------- *)

  let fold_leaves t f acc =
    let rec go acc id =
      let n = Mempool.unsafe_get t.pool id in
      let l = Atomic.get n.left and r = Atomic.get n.right in
      if Handle.is_null l && Handle.is_null r then f acc id n
      else go (go acc (Handle.id l)) (Handle.id r)
    in
    go acc t.root

  let size t =
    fold_leaves t (fun acc _ n -> if n.key <= max_client_key then acc + 1 else acc) 0

  let check t =
    (* In-order leaves strictly increasing; internal keys route correctly;
       no residual marks; reachable nodes live. *)
    let rec walk id lo hi last =
      let n = Mempool.unsafe_get t.pool id in
      if Mempool.Core.state (Mempool.core t.pool) id <> Mempool.state_live then
        failwith "nm_bst: reachable node is not live";
      let l = Atomic.get n.left and r = Atomic.get n.right in
      if Handle.is_null l && Handle.is_null r then begin
        if not (n.key >= lo && n.key <= hi) then failwith "nm_bst: leaf key outside range";
        if n.key <= last then failwith "nm_bst: leaf keys not strictly increasing";
        n.key
      end
      else begin
        if Handle.is_null l || Handle.is_null r then
          failwith "nm_bst: internal node with one child";
        if Handle.mark l <> 0 || Handle.mark r <> 0 then
          failwith "nm_bst: residual edge mark in quiescent tree";
        let last = walk (Handle.id l) lo (n.key - 1) last in
        walk (Handle.id r) n.key hi last
      end
    in
    ignore (walk t.root min_int max_int min_int : int)

  let traversed t = Sc.sum t.traversed
  let smr_stats t = S.stats t.smr
  let violations t = Mempool.violations t.pool
  let pinning_tids t = S.pinning_tids t.smr
  let adopt t ~tid = S.adopt t.smr ~tid
  let live_nodes t = Mempool.live_count t.pool
  let pool t = Mempool.core t.pool
  let flush s =
    flush_trav s;
    S.flush s.th
end
