(** Common interface of the concurrent search data structures.

    Every structure is a functor over {!Smr_core.Smr_intf.S}, so each of
    the paper's client algorithms runs on each SMR scheme. The harness
    consumes structures as first-class [(module SET)] values. *)

module type SET = sig
  type t
  type session

  val name : string

  (** [create ~threads ~capacity ?check_access config] builds an empty
      structure backed by a pool of [capacity] node slots and an SMR
      instance for [threads] threads. [check_access] arms the pool's
      use-after-free detector. *)
  val create : threads:int -> capacity:int -> ?check_access:bool -> Smr_core.Config.t -> t

  (** Per-thread session; [tid] must be unique per concurrent domain. *)
  val session : t -> tid:int -> session

  (** [insert s ~key ~value] adds [key]; false if already present. *)
  val insert : session -> key:int -> value:int -> bool

  (** [remove s key] deletes [key]; false if absent. *)
  val remove : session -> int -> bool

  val contains : session -> int -> bool

  (** Open a batch window on the session's SMR thread (see
      {!Smr_core.Smr_intf.S.batch_enter}): the per-operation SMR entry
      and exit costs of the operations until {!batch_exit} are paid once
      for the whole batch, and every handle any of them protects stays
      protected until the window closes. Service shards use this to
      amortize the protocol over B requests. Must not nest; the session
      must not be shared across domains (as usual). *)
  val batch_enter : session -> unit

  val batch_exit : session -> unit

  (** [contains] that invokes [pause] once mid-traversal while holding SMR
      protection — the deterministic stall injector for the wasted-memory
      experiments. *)
  val contains_paused : session -> int -> pause:(unit -> unit) -> bool

  val find : session -> int -> int option

  (** Sequential-only: number of keys. *)
  val size : t -> int

  (** Sequential-only: raises [Failure] on a broken structural invariant
      (key ordering, reachability, mark residue). *)
  val check : t -> unit

  (** Nodes visited by traversals (denominator of the Figure 5 metric). *)
  val traversed : t -> int

  val smr_stats : t -> Smr_core.Smr_intf.stats

  (** Use-after-free accesses detected by the pool (must stay 0 for every
      correct scheme). *)
  val violations : t -> int

  (** Tids still holding an SMR reservation (see
      {!Smr_core.Smr_intf.S.pinning_tids}) — after a run, the stalled or
      crashed threads pinning wasted memory. *)
  val pinning_tids : t -> int list

  (** Nodes currently allocated (live + retired). *)
  val live_nodes : t -> int

  (** The structure's backing node pool (payload-agnostic layer) — the
      harness and service read elasticity telemetry
      ({!Mempool.Core.resident_slots}, {!Mempool.Core.last_alloc_hard},
      ...) and drive shrink policy through it. *)
  val pool : t -> Mempool.Core.t

  (** Force reclamation passes on the given session (teardown/tests). *)
  val flush : session -> unit

  (** Crash recovery (see {!Smr_core.Smr_intf.S.adopt}): release every
      reservation the dead [tid] left published and drain its retired
      backlog, making the tid safe for a replacement session. Caller
      must have joined the domain that owned the tid. No-op for
      structures whose scheme holds no reservations. *)
  val adopt : t -> tid:int -> unit
end
