(** Fraser-style lock-free skip list (§5.2 of the paper).

    A tower of Michael-style sorted lists: every node is linked at level 0;
    each higher level holds a geometrically thinning subset. Removal marks
    the victim's next pointers from the top level down — the level-0 mark
    is the linearization point and elects a unique owner — after which
    traversals splice the node out of every level they cross.

    Retirement must not happen while any level still links the node. The
    subtle race is a lagging insert linking an upper level after the
    owner-deleter verified the node gone; we close it with a per-node
    [tower_state] handshake: whichever of {owning deleter, inserter}
    finishes second runs one more [find] (which provably unlinks every
    level once linking has ceased) and retires the node.

    MP integration mirrors the list: [find] narrows the search interval
    with [update_lower_bound]/[update_upper_bound] as it descends, so the
    level-0 predecessor/successor indices bound the new node's index.

    PPV discipline: each level owns three protection slots that rotate
    through (prev, curr, next); descending to a lower level never disturbs
    the slots protecting the predecessors recorded at upper levels. *)

module Sc = Mp_util.Striped_counter
module Config = Smr_core.Config

(* tower_state values *)
let linking = 0
let link_done = 1
let delete_pending = 2

module Make (S : Smr_core.Smr_intf.S) = struct
  type node = {
    mutable key : int;
    mutable value : int;
    mutable height : int;
    next : int Atomic.t array;
    tower_state : int Atomic.t;
  }

  type t = {
    pool : node Mempool.t;
    smr : S.t;
    head : int;
    tail : int;
    max_level : int;
    traversed : Sc.t;
    threads : int;
  }

  type session = {
    t : t;
    th : S.thread;
    tid : int;
    rng : Mp_util.Rng.t;
    preds : int array; (* node ids *)
    succs : Handle.t array; (* unmarked handles *)
    mutable trav : int; (* batched visit count, flushed once per op *)
  }

  let name = "skiplist(" ^ S.name ^ ")"
  let deleted = 1

  let default_max_level ~capacity =
    let rec log2 n acc = if n <= 1 then acc else log2 (n / 2) (acc + 1) in
    max 4 (min 20 (log2 capacity 0))

  let node t id = Mempool.get t.pool id

  let create ~threads ~capacity ?(check_access = false) config =
    let max_level = default_max_level ~capacity in
    let pool =
      Mempool.create ~capacity ~threads ~check_access ~max_arenas:config.Config.max_arenas
        (fun _ ->
          {
            key = 0;
            value = 0;
            height = 1;
            next = Array.init max_level (fun _ -> Atomic.make Handle.null);
            tower_state = Atomic.make linking;
          })
    in
    let smr =
      S.create ~pool:(Mempool.core pool) ~threads (Config.with_slots config (3 * max_level))
    in
    let th0 = S.thread smr ~tid:0 in
    let head = S.alloc_with_index th0 ~index:Config.min_sentinel_index in
    let tail = S.alloc_with_index th0 ~index:Config.max_sentinel_index in
    let hn = Mempool.unsafe_get pool head and tn = Mempool.unsafe_get pool tail in
    hn.key <- min_int;
    hn.height <- max_level;
    tn.key <- max_int;
    tn.height <- max_level;
    let tail_w = S.handle_of th0 tail in
    Array.iter (fun link -> Atomic.set link tail_w) hn.next;
    { pool; smr; head; tail; max_level; traversed = Sc.create ~threads; threads }

  let session t ~tid =
    {
      t;
      th = S.thread t.smr ~tid;
      tid;
      rng = Mp_util.Rng.split ~seed:0x5EED ~tid;
      preds = Array.make t.max_level t.head;
      succs = Array.make t.max_level Handle.null;
      trav = 0;
    }

  let batch_enter s = S.batch_enter s.th
  let batch_exit s = S.batch_exit s.th

  let flush_trav s =
    if s.trav > 0 then begin
      Sc.add s.t.traversed ~tid:s.tid s.trav;
      s.trav <- 0
    end

  let random_height s =
    let rec flip h = if h < s.t.max_level && Mp_util.Rng.bool s.rng then flip (h + 1) else h in
    flip 1

  exception Retry

  (* [find]'s descent, as top-level mutual recursion so a pass allocates
     nothing (local closures would cost a block per call). *)
  let rec find_level_down s k level pred =
    if level < 0 then s.succs.(0)
    else begin
      let rp = 3 * level and rc = (3 * level) + 1 and rn = (3 * level) + 2 in
      let pred_link = (node s.t pred).next.(level) in
      let curr_w = S.read s.th ~refno:rc pred_link in
      find_walk s k ~rp ~rc ~rn level pred pred_link curr_w
    end

  and find_walk s k ~rp ~rc ~rn level pred pred_link curr_w =
    s.trav <- s.trav + 1;
    let t = s.t in
    (* pred's link word carries pred's own deletion mark. *)
    if Handle.mark curr_w land deleted <> 0 then raise_notrace Retry;
    let curr = Handle.id curr_w in
    let curr_node = node t curr in
    let succ_w = S.read s.th ~refno:rn curr_node.next.(level) in
    if Handle.mark succ_w land deleted <> 0 then begin
      (* curr is deleted at this level: splice it out. *)
      let clean = Handle.with_mark succ_w 0 in
      if Atomic.compare_and_set pred_link curr_w clean then
        find_walk s k ~rp ~rc:rn ~rn:rc level pred pred_link clean
      else raise_notrace Retry
    end
    else begin
      let ckey = curr_node.key in
      if ckey < k then find_walk s k ~rp:rc ~rc:rn ~rn:rp level curr curr_node.next.(level) succ_w
      else begin
        s.preds.(level) <- pred;
        s.succs.(level) <- curr_w;
        find_level_down s k (level - 1) pred
      end
    end

  (** Populate [s.preds]/[s.succs] with the per-level insertion points for
      [k], splicing out every marked node encountered. Returns the handle
      of the level-0 successor (whose key is >= [k], or the tail). *)
  let rec find s k =
    match find_level_down s k (s.t.max_level - 1) s.t.head with
    | w -> w
    | exception Retry -> find s k

  let key_of s w = (node s.t (Handle.id w)).key

  (** Read-only search using only three rotating protection slots across
      the whole descent (the paper's "a search operation requires two
      MPs"), so one margin keeps covering nodes as the traversal descends
      into index-adjacent territory. Restarts when it meets a deleted
      node instead of helping — following a marked node's frozen links
      would evade pointer-based validation. *)
  let rec search s k =
    let t = s.t in
    let pred = t.head in
    let curr_w = S.read s.th ~refno:1 (node t pred).next.(t.max_level - 1) in
    search_walk s k ~rp:0 ~rc:1 ~rn:2 (t.max_level - 1) pred curr_w

  and search_walk s k ~rp ~rc ~rn level pred curr_w =
    s.trav <- s.trav + 1;
    let t = s.t in
    if Handle.mark curr_w land deleted <> 0 then search s k
    else begin
      let curr = Handle.id curr_w in
      let curr_node = node t curr in
      if curr_node.key < k then begin
        let succ_w = S.read s.th ~refno:rn curr_node.next.(level) in
        if Handle.mark succ_w land deleted <> 0 then search s k
        else search_walk s k ~rp:rc ~rc:rn ~rn:rp level curr succ_w
      end
      else begin
        (* Found/absent is reported through the handle itself ([Handle.null]
           = absent) rather than an option — keeps the read path boxing-free. *)
        if level = 0 then if curr_node.key = k then curr_w else Handle.null
        else begin
          let down_w = S.read s.th ~refno:rn (node t pred).next.(level - 1) in
          search_walk s k ~rp ~rc:rn ~rn:rc (level - 1) pred down_w
        end
      end
    end

  (* The post-handshake pass: once linking has ceased and every level is
     marked, a single [find] leaves the node unlinked everywhere, making
     retirement safe. *)
  let unlink_and_retire s k victim =
    ignore (find s k : Handle.t);
    S.retire s.th victim

  let finish_insert s k id =
    let n = Mempool.unsafe_get s.t.pool id in
    if not (Atomic.compare_and_set n.tower_state linking link_done) then
      (* The owning deleter got here first and left retirement to us. *)
      unlink_and_retire s k id

  let finish_remove s k victim =
    let n = Mempool.unsafe_get s.t.pool victim in
    if not (Atomic.compare_and_set n.tower_state linking delete_pending) then
      (* Inserter already finished linking: we retire. *)
      unlink_and_retire s k victim

  let insert s ~key ~value =
    assert (key > min_int && key < max_int);
    S.start_op s.th;
    let t = s.t in
    let height = random_height s in
    let rec attempt () =
      let succ0 = find s key in
      if key_of s succ0 = key then false
      else begin
        (* the level-0 insertion point is the final search interval *)
        S.update_lower_bound s.th s.preds.(0);
        S.update_upper_bound s.th (Handle.id succ0);
        let id = S.alloc s.th in
        let n = Mempool.unsafe_get t.pool id in
        n.key <- key;
        n.value <- value;
        n.height <- height;
        Atomic.set n.tower_state linking;
        for level = 0 to height - 1 do
          Atomic.set n.next.(level) s.succs.(level)
        done;
        let new_w = S.handle_of s.th id in
        let pred0_link = (node t s.preds.(0)).next.(0) in
        if not (Atomic.compare_and_set pred0_link succ0 new_w) then begin
          (* Never visible: recycle the slot directly and retry. *)
          Mempool.free t.pool ~tid:s.tid id;
          attempt ()
        end
        else begin
          (* Linked at level 0 — the node is in the set. Link the upper
             levels; abandon a level if the node gets marked meanwhile.
             Invariant: our own next.(level) must equal s.succs.(level)
             BEFORE the pred CAS — linking while our next still holds a
             successor captured by an older find would splice a possibly
             long-retired node back into the live chain. *)
          let rec link_level level =
            if level >= height then ()
            else begin
              let w = Atomic.get n.next.(level) in
              if Handle.mark w land deleted <> 0 then () (* being deleted *)
              else if
                w <> s.succs.(level)
                && not (Atomic.compare_and_set n.next.(level) w s.succs.(level))
              then link_level level (* lost to a concurrent mark: re-examine *)
              else begin
                let pred_link = (node t s.preds.(level)).next.(level) in
                if Atomic.compare_and_set pred_link s.succs.(level) new_w then
                  link_level (level + 1)
                else begin
                  (* Refresh insertion points; stop if we got removed. *)
                  ignore (find s key : Handle.t);
                  if Handle.id s.succs.(0) = id then link_level level
                end
              end
            end
          in
          link_level 1;
          finish_insert s key id;
          true
        end
      end
    in
    let result = attempt () in
    flush_trav s;
    S.end_op s.th;
    result

  let remove s key =
    S.start_op s.th;
    let t = s.t in
    let result =
      let succ0 = find s key in
      if key_of s succ0 <> key then false
      else begin
        let victim = Handle.id succ0 in
        let n = node t victim in
        (* Mark the upper levels top-down. *)
        for level = n.height - 1 downto 1 do
          let rec mark () =
            let w = Atomic.get n.next.(level) in
            if Handle.mark w land deleted = 0 then
              if not (Atomic.compare_and_set n.next.(level) w (Handle.with_mark w deleted))
              then mark ()
          in
          mark ()
        done;
        (* Level-0 mark: the linearization point; the winner owns it. *)
        let rec mark0 () =
          let w = Atomic.get n.next.(0) in
          if Handle.mark w land deleted <> 0 then false
          else if Atomic.compare_and_set n.next.(0) w (Handle.with_mark w deleted) then true
          else mark0 ()
        in
        if mark0 () then begin
          ignore (find s key : Handle.t);
          finish_remove s key victim;
          true
        end
        else false
      end
    in
    flush_trav s;
    S.end_op s.th;
    result

  let contains s key =
    S.start_op s.th;
    let result = not (Handle.is_null (search s key)) in
    flush_trav s;
    S.end_op s.th;
    result

  let contains_paused s key ~pause =
    S.start_op s.th;
    ignore (S.read s.th ~refno:1 (node s.t s.t.head).next.(0) : Handle.t);
    pause ();
    let result = not (Handle.is_null (search s key)) in
    flush_trav s;
    S.end_op s.th;
    result

  let find_value s key =
    S.start_op s.th;
    let w = search s key in
    let result = if Handle.is_null w then None else Some (node s.t (Handle.id w)).value in
    flush_trav s;
    S.end_op s.th;
    result

  let find = find_value (* export name per SET; shadows the internal find *)
  [@@warning "-32"]

  (* -- sequential-only inspection ---------------------------------------- *)

  let fold_level0 t f acc =
    let rec go acc w =
      let id = Handle.id w in
      if id = t.tail then acc
      else
        let n = Mempool.unsafe_get t.pool id in
        go (f acc id n) (Handle.with_mark (Atomic.get n.next.(0)) 0)
    in
    go acc (Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool t.head).next.(0)) 0)

  let size t = fold_level0 t (fun acc _ _ -> acc + 1) 0

  let check t =
    (* Level 0: strict key order, no marks, all-live. *)
    let _last =
      fold_level0 t
        (fun last id n ->
          if n.key <= last then failwith "skiplist: level-0 keys not strictly increasing";
          if Handle.mark (Atomic.get n.next.(0)) land deleted <> 0 then
            failwith "skiplist: reachable level-0 node is marked";
          if Mempool.Core.state (Mempool.core t.pool) id <> Mempool.state_live then
            failwith "skiplist: reachable node is not live";
          n.key)
        min_int
    in
    (* Every upper level must be a sorted sublist of the level below. *)
    for level = 1 to t.max_level - 1 do
      let rec walk last w =
        let id = Handle.id w in
        if id <> t.tail then begin
          let n = Mempool.unsafe_get t.pool id in
          if n.key <= last then failwith "skiplist: upper-level keys not increasing";
          if n.height <= level then failwith "skiplist: node linked above its height";
          walk n.key (Handle.with_mark (Atomic.get n.next.(level)) 0)
        end
      in
      walk min_int
        (Handle.with_mark (Atomic.get (Mempool.unsafe_get t.pool t.head).next.(level)) 0)
    done


  (** Forensic helpers for stress tests (not part of the public API). *)
  module Debug = struct
    let dump_node t id =
      let n = Mempool.unsafe_get t.pool id in
      Printf.eprintf "  key=%d height=%d tower=%d state=%d incarnation=%d\n" n.key n.height
        (Atomic.get n.tower_state)
        (Mempool.Core.state (Mempool.core t.pool) id)
        (Mempool.Core.incarnation (Mempool.core t.pool) id);
      for l = 0 to n.height - 1 do
        let w = Atomic.get n.next.(l) in
        Printf.eprintf "    next[%d] -> id=%d mark=%d\n" l (Handle.id w) (Handle.mark w)
      done

    (* Walk every level from the head and report where [victim] is linked. *)
    let scan_for t victim =
      for l = t.max_level - 1 downto 0 do
        let rec go id hops =
          if hops > 100_000 then Printf.eprintf "  level %d: cycle?\n" l
          else if id = t.tail then ()
          else begin
            let n = Mempool.unsafe_get t.pool id in
            let w = Atomic.get n.next.(l) in
            let nx = Handle.id w in
            if nx = victim then
              Printf.eprintf "  level %d: victim linked from id=%d (key=%d, mark=%d, state=%d)\n"
                l id n.key (Handle.mark w)
                (Mempool.Core.state (Mempool.core t.pool) id);
            if nx = t.tail then () else go nx (hops + 1)
          end
        in
            go t.head 0
      done
  end

  let traversed t = Sc.sum t.traversed
  let smr_stats t = S.stats t.smr
  let violations t = Mempool.violations t.pool
  let pinning_tids t = S.pinning_tids t.smr
  let adopt t ~tid = S.adopt t.smr ~tid
  let live_nodes t = Mempool.live_count t.pool
  let pool t = Mempool.core t.pool
  let flush s =
    flush_trav s;
    S.flush s.th
end
