(** Link-word ("pointer") encoding.

    The paper (Listing 6) packs a 48-bit virtual address and the top 16
    bits of the node's 32-bit MP index into one 64-bit word, so a thread
    can learn a node's approximate index without dereferencing it. Here
    node "addresses" are pool slot ids, and the whole tuple packs into one
    immediate OCaml int:

    {v
      bits 50..62 : incarnation tag (13 bits)
      bits 34..49 : idx16  — the 16 most-significant bits of the index
      bits  2..33 : node id (32 bits); all-ones means null
      bits  0..1  : mark bits owned by the client data structure
    v}

    Because the word is an immediate int, [int Atomic.t] links support true
    single-word hardware CAS, exactly like the paper's [MP_CAS_Ptr]. A
    node's idx16 never changes after allocation, so two handles to the same
    node with equal marks are always physically equal.

    The incarnation tag plays the role of the version field in tagged
    pointers: a slot's tag changes on every reuse, so a CAS whose expected
    handle predates the reuse fails instead of silently operating on an
    unrelated node (the ABA that, in C, tagged pointers or protection
    discipline must rule out). It wraps at 2^13 reuses; an ABA then
    additionally requires the stale operation to span exactly a multiple of
    8192 reuses of one slot. *)

let mark_bits = 2
let id_bits = 32
let idx_bits = 16
let inc_bits = 13
let precision = 16 (* index bits dropped when packing into a handle *)

let id_mask = (1 lsl id_bits) - 1
let idx16_mask = (1 lsl idx_bits) - 1
let mark_mask = (1 lsl mark_bits) - 1
let inc_mask = (1 lsl inc_bits) - 1

(** Node-id value reserved for the null handle. *)
let null_id = id_mask

(** Maximum usable pool slot id (one id is reserved for null). *)
let max_id = id_mask - 1

type t = int

(** Null handle: null id, idx16 of all ones, no marks, incarnation 0. *)
let null : t = (idx16_mask lsl (mark_bits + id_bits)) lor (null_id lsl mark_bits)

let make ?(inc = 0) ~id ~idx16 ~mark () : t =
  assert (id >= 0 && id <= null_id);
  assert (idx16 >= 0 && idx16 <= idx16_mask);
  assert (mark >= 0 && mark <= mark_mask);
  ((inc land inc_mask) lsl (mark_bits + id_bits + idx_bits))
  lor (idx16 lsl (mark_bits + id_bits))
  lor (id lsl mark_bits) lor mark

let[@inline] id (h : t) = (h lsr mark_bits) land id_mask
let[@inline] idx16 (h : t) = (h lsr (mark_bits + id_bits)) land idx16_mask
let[@inline] mark (h : t) = h land mark_mask
let[@inline] inc (h : t) = (h lsr (mark_bits + id_bits + idx_bits)) land inc_mask

let[@inline] is_null (h : t) = id h = null_id

(** [with_mark h m] is [h] with its mark bits replaced by [m]. *)
let[@inline] with_mark (h : t) m : t =
  assert (m >= 0 && m <= mark_mask);
  (h land lnot mark_mask) lor m

(** [unmarked h] clears the mark bits (canonical handle for comparisons). *)
let[@inline] unmarked (h : t) : t = h land lnot mark_mask

(** Bounds of the index range a handle's idx16 may stand for: packing keeps
    only the top 16 bits of a 32-bit index, so observing idx16 = [i] means
    the true index lies in [[i lsl 16, (i lsl 16) + 0xFFFF]]. *)
let[@inline] idx_lower_bound (h : t) = idx16 h lsl precision
let[@inline] idx_upper_bound (h : t) = (idx16 h lsl precision) lor ((1 lsl precision) - 1)

(** idx16 under which a full 32-bit index is packed. *)
let[@inline] idx16_of_index index = (index lsr precision) land idx16_mask

(* -- arena/offset split --------------------------------------------------- *)

(* The elastic mempool carves the 32-bit node-id space into fixed-size
   arenas: id = (arena lsl off_bits) lor offset. The split is pure id
   arithmetic — link words, idx16 packing and the incarnation tag are
   untouched, which is what lets arenas attach and detach without any
   change to the protection protocols that consume handles. [off_bits]
   is chosen per pool (smallest width holding one arena's slot count). *)

(** Arena index of a slot id under an [off_bits]-wide offset field. *)
let[@inline] arena_of_id ~off_bits id = id lsr off_bits

(** Offset of a slot id inside its arena. *)
let[@inline] offset_of_id ~off_bits id = id land ((1 lsl off_bits) - 1)

(** Pack an (arena, offset) pair back into a slot id. Asserts the pair
    round-trips (offset fits the field and the id stays usable). *)
let[@inline] id_of_arena ~off_bits ~arena ~offset =
  assert (arena >= 0 && offset >= 0 && offset < 1 lsl off_bits);
  let id = (arena lsl off_bits) lor offset in
  assert (id <= max_id);
  id

(** Largest arena count an [off_bits]-wide offset field supports while
    every slot id of every arena (each of [arena_slots] slots) stays at
    or below {!max_id}. *)
let max_arenas_for ~off_bits ~arena_slots =
  if arena_slots < 1 || arena_slots > 1 lsl off_bits then 0
  else ((max_id - arena_slots + 1) asr off_bits) + 1

let pp fmt (h : t) =
  if is_null h then Format.fprintf fmt "null/%d" (mark h)
  else Format.fprintf fmt "#%d[idx16=%#x,mark=%d]" (id h) (idx16 h) (mark h)

let[@inline] equal (a : t) (b : t) = a = b
