(** Link-word ("pointer") encoding: (incarnation, idx16, node id, marks)
    packed into one immediate OCaml int, so [int Atomic.t] links support
    single-word CAS exactly like the paper's [MP_CAS_Ptr] (Listing 6).
    See the implementation header for the bit layout. *)

type t = int

val mark_bits : int
val id_bits : int
val idx_bits : int
val inc_bits : int

(** Index bits dropped when packing a 32-bit MP index into a handle (16,
    the paper's pointer-tag precision). *)
val precision : int

val id_mask : int
val idx16_mask : int
val mark_mask : int
val inc_mask : int

(** Node id reserved for the null handle. *)
val null_id : int

(** Largest usable pool slot id. *)
val max_id : int

(** The null handle (null id, no marks, incarnation 0). *)
val null : t

(** [make ?inc ~id ~idx16 ~mark ()] packs a handle. [inc] is masked to
    {!inc_bits} bits. *)
val make : ?inc:int -> id:int -> idx16:int -> mark:int -> unit -> t

val id : t -> int
val idx16 : t -> int
val mark : t -> int
val inc : t -> int
val is_null : t -> bool

(** [with_mark h m] replaces the mark bits, preserving everything else. *)
val with_mark : t -> int -> t

(** [unmarked h] clears the mark bits. *)
val unmarked : t -> t

(** Bounds of the full-index range an observed idx16 may stand for:
    [range(i) = [i << 16, (i << 16) + 0xFFFF]] (paper §4.3.1). *)
val idx_lower_bound : t -> int

val idx_upper_bound : t -> int

(** The idx16 under which a full 32-bit index packs. Monotone. *)
val idx16_of_index : int -> int

(** {2 Arena/offset split}

    The elastic mempool carves the node-id space into fixed-size arenas:
    [id = (arena lsl off_bits) lor offset]. Pure id arithmetic — link
    words, idx16 packing and the incarnation tag are untouched. *)

(** Arena index of a slot id. *)
val arena_of_id : off_bits:int -> int -> int

(** Offset of a slot id inside its arena. *)
val offset_of_id : off_bits:int -> int -> int

(** Pack an (arena, offset) pair into a slot id (asserts round-trip). *)
val id_of_arena : off_bits:int -> arena:int -> offset:int -> int

(** Largest arena count for which every slot id of every arena (each
    holding [arena_slots] slots) stays at or below {!max_id}. *)
val max_arenas_for : off_bits:int -> arena_slots:int -> int

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
