(** Pre-applied (scheme × data structure) instances for the harness, the
    benchmarks, and the CLI. *)

type scheme = (module Smr_core.Smr_intf.S)

let mp : scheme = (module Mp.Margin_ptr)
let hp : scheme = (module Smr_schemes.Hp)
let ebr : scheme = (module Smr_schemes.Ebr)
let he : scheme = (module Smr_schemes.He)
let ibr : scheme = (module Smr_schemes.Ibr)
let leaky : scheme = (module Smr_schemes.Leaky)

(** Evaluation order of the paper's figures. *)
let schemes : (string * scheme) list =
  [ ("mp", mp); ("ibr", ibr); ("he", he); ("hp", hp); ("ebr", ebr); ("none", leaky) ]

let scheme_of_name name =
  match List.assoc_opt name schemes with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "unknown scheme %S (expected one of: %s)" name
         (String.concat ", " (List.map fst schemes)))

type ds = List_ds | Skiplist_ds | Bst_ds | Hash_ds

let all_ds =
  [ ("list", List_ds); ("skiplist", Skiplist_ds); ("bst", Bst_ds); ("hash", Hash_ds) ]

let ds_of_name name =
  match List.assoc_opt name all_ds with
  | Some d -> d
  | None ->
    invalid_arg
      (Printf.sprintf "unknown data structure %S (expected one of: %s)" name
         (String.concat ", " (List.map fst all_ds)))

let make ds ((module S : Smr_core.Smr_intf.S) : scheme) : (module Dstruct.Set_intf.SET) =
  match ds with
  | List_ds -> (module Dstruct.Michael_list.Make (S))
  | Skiplist_ds -> (module Dstruct.Skiplist.Make (S))
  | Bst_ds -> (module Dstruct.Nm_bst.Make (S))
  | Hash_ds ->
    (* The table's extra [?buckets] argument keeps it outside SET; pin the
       default bucket count to fit the interface. *)
    (module struct
      module H = Dstruct.Hash_table.Make (S)
      include H

      let create ~threads ~capacity ?check_access config =
        H.create ~threads ~capacity ?check_access config
    end)
