(** Pre-applied (scheme × data structure) instances for the harness. *)

type scheme = (module Smr_core.Smr_intf.S)

val mp : scheme
val hp : scheme
val ebr : scheme
val he : scheme
val ibr : scheme
val leaky : scheme

(** All named schemes, in the paper's comparison order. *)
val schemes : (string * scheme) list

(** Raises [Invalid_argument] for unknown names. *)
val scheme_of_name : string -> scheme

type ds = List_ds | Skiplist_ds | Bst_ds | Hash_ds

val all_ds : (string * ds) list
val ds_of_name : string -> ds

(** Apply a structure functor to a scheme. *)
val make : ds -> scheme -> (module Dstruct.Set_intf.SET)
