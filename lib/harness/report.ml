(** Plain-text table rendering for the benchmark output. *)

let hline widths =
  let parts = List.map (fun w -> String.make (w + 2) '-') widths in
  "+" ^ String.concat "+" parts ^ "+"

(* Optional machine-readable sink: when MP_BENCH_CSV_DIR is set, every
   table is also written there as a CSV named after its title. *)
let csv_dir = Sys.getenv_opt "MP_BENCH_CSV_DIR"

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    title

let write_csv ~title ~header rows =
  match csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir (slug title ^ ".csv") in
    let oc = open_out path in
    List.iter (fun row -> output_string oc (String.concat "," row ^ "\n")) (header :: rows);
    close_out oc

(** [table ~title ~header rows] prints an aligned ASCII table (and writes
    a CSV next to it when MP_BENCH_CSV_DIR is set). *)
let table ~title ~header rows =
  write_csv ~title ~header rows;
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let render_row row =
    let cells =
      List.map2 (fun cell w -> Printf.sprintf " %-*s " w cell) row widths
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  Printf.printf "\n== %s ==\n%s\n%s\n%s\n" title (hline widths) (render_row header)
    (hline widths);
  List.iter (fun row -> print_endline (render_row row)) rows;
  print_endline (hline widths);
  flush stdout

let fmt_throughput ops_per_s =
  if ops_per_s >= 1e6 then Printf.sprintf "%.2fM" (ops_per_s /. 1e6)
  else if ops_per_s >= 1e3 then Printf.sprintf "%.1fK" (ops_per_s /. 1e3)
  else Printf.sprintf "%.0f" ops_per_s

let fmt_float f = Printf.sprintf "%.2f" f
let fmt_int = string_of_int

(** Allocation-telemetry column: GC-visible words per operation. Two
    decimals resolve the "~0 on the zero-allocation read path" claim
    without drowning the table when a path does allocate. *)
let fmt_words_per_op w = Printf.sprintf "%.2f" w
