(** Plain-text table rendering for benchmark output. Tables are also
    written as CSV files when the MP_BENCH_CSV_DIR environment variable
    names a directory. *)

val table : title:string -> header:string list -> string list list -> unit
val fmt_throughput : float -> string
val fmt_float : float -> string
val fmt_int : int -> string

(** Format an [alloc_words_per_op] telemetry value for a table cell. *)
val fmt_words_per_op : float -> string
