(** Benchmark runner: spawns one domain per thread, drives the workload mix
    against a structure for a fixed duration, and samples the metrics the
    paper's figures report (throughput, wasted memory, fences/traversals).

    Thread stalls — the phenomenon that separates bounded/robust/unbounded
    schemes — arise naturally here from oversubscription, and can also be
    injected deterministically: the stalling thread periodically runs a
    [contains_paused], sleeping mid-operation while holding SMR
    protection. *)

module Rng = Mp_util.Rng

type stall_spec = {
  stall_tid : int;
  every_ops : int;  (** inject once per this many operations *)
  pause_s : float;  (** sleep duration inside the operation *)
}

type spec = {
  threads : int;
  duration_s : float;
  warmup_s : float;
      (** run the workload this long before the measured window opens:
          ops, GC and SMR counters from the warmup are excluded from every
          reported metric. 0 disables (the unit-test default). *)
  init_size : int;  (** S: keys inserted before the measurement *)
  key_range : int;  (** operations draw keys from [0, key_range) *)
  capacity : int;  (** pool slots; must absorb leaks for leaky schemes *)
  mix : Workload.mix;
  init : Workload.init;
  seed : int;
  stall : stall_spec option;
  config : Smr_core.Config.t;
  check_access : bool;
  record_latency : bool;  (** sampled per-operation histograms *)
  latency_sample : int;
      (** with [record_latency], time one in this many operations (rounded
          up to a power of two) instead of paying two clock reads per op *)
  zipf_alpha : float option;  (** skew operation keys zipfian-ly (extension) *)
  faults : Mp_util.Fault.plan option;
      (** armed after populate, before the workers spawn; disarmed after
          they join. Crashed domains are reported, not fatal. *)
  watchdog : Watchdog.spec option;
      (** evaluate this waste bound on every sampler tick *)
  alloc_retry : int;
      (** pool-exhaustion backpressure: retries (with backoff) per
          operation before the worker gives up and flags [oom] *)
}

(** Paper default: S random keys from a range of size 2S. *)
let default ~threads ~init_size ~mix ~config =
  {
    threads;
    duration_s = 0.5;
    warmup_s = 0.0;
    init_size;
    key_range = 2 * init_size;
    capacity = 0 (* resolved in [run] *);
    mix;
    init = Workload.Uniform_init;
    seed = 0xC0FFEE;
    stall = None;
    config;
    check_access = false;
    record_latency = false;
    latency_sample = 32;
    zipf_alpha = None;
    faults = None;
    watchdog = None;
    alloc_retry = 1_000;
  }

type result = {
  spec_threads : int;
  mix_name : string;
  total_ops : int;
  throughput : float;  (** operations per second *)
  wasted_avg : float;  (** mean retired-but-unreclaimed nodes over samples *)
  wasted_max : int;  (** largest wasted value any 2 ms sampler tick saw *)
  wasted_peak : int;
      (** the scheme's own high-water mark, maintained on the retire path
          itself ({!Smr_core.Smr_intf.stats.wasted_peak}) — unlike
          [wasted_max] it cannot miss a crest between sampler ticks. A
          high-water mark cannot be windowed, so this covers the whole
          run including populate and warmup. *)
  fences : int;  (** publication fences during the measured window *)
  traversed : int;  (** nodes visited during the measured window *)
  fences_per_node : float;
  scan_passes : int;  (** reclamation passes during the measured window *)
  scan_time_s : float;  (** wall-clock seconds those passes took *)
  violations : int;
  oom : bool;
      (** a thread starved on the pool past its retry budget (leaky
          schemes, or faults pinning everything) *)
  alloc_stalls : int;  (** pool-exhaustion retries absorbed as backpressure *)
  ring_full : int;
      (** service runs: submissions that found a shard's request ring
          full (backpressure on the client side); 0 for direct runs *)
  deadline_exceeded : int;
      (** service runs: requests abandoned past their client deadline;
          0 for direct runs and for runs without deadlines *)
  crashed : int list;  (** tids killed by a fault-plan crash event *)
  pinning_tids : int list;
      (** tids still holding reservations after the run — with faults, the
          dead threads pinning waste *)
  watchdog : Watchdog.verdict option;
  final_size : int;
  latency : Mp_util.Histogram.t option;  (** merged across threads when recorded *)
  alloc_words_per_op : float;
      (** GC-visible words allocated per measured operation, summed over
          surviving workers (each domain samples its own [Gc.quick_stat]).
          The zero-allocation read path shows up here as ~0. *)
  promoted_words_per_op : float;  (** survivors of the minor GC, per op *)
  minor_gcs : int;  (** minor collections across workers in the window *)
  arenas_attached : int;
      (** elastic pool: arenas attached under load during the run (0 for
          fixed-size pools) *)
  arenas_detached : int;  (** elastic pool: arena detaches completed *)
  resident_slots : int;  (** pool slots still mapped at the end of the run *)
}

let run (module SET : Dstruct.Set_intf.SET) (spec : spec) : result =
  let capacity =
    if spec.capacity > 0 then spec.capacity
    else begin
      (* Live nodes (≤ key_range, ×2 for the BST's routers) plus headroom
         for retired-but-unreclaimed nodes. *)
      let live = (spec.key_range * 2) + 1024 in
      live + (spec.threads * 65536)
    end
  in
  let t =
    SET.create ~threads:spec.threads ~capacity ~check_access:spec.check_access spec.config
  in
  (* -- populate ----------------------------------------------------------- *)
  let s0 = SET.session t ~tid:0 in
  (match spec.init with
  | Workload.Ascending_init ->
    for k = 0 to spec.init_size - 1 do
      ignore (SET.insert s0 ~key:k ~value:k : bool)
    done
  | Workload.Uniform_init ->
    let rng = Rng.create spec.seed in
    let inserted = ref 0 in
    while !inserted < spec.init_size do
      let k = Rng.below rng spec.key_range in
      if SET.insert s0 ~key:k ~value:k then incr inserted
    done);
  SET.flush s0;
  (* -- measured window ---------------------------------------------------- *)
  (* Run phases: 0 = warmup (working, not counted), 1 = measuring,
     2 = stop. Workers latch their op count and a per-domain GC sample at
     the 0->1 transition, so warmup ops and allocations never pollute the
     reported metrics. *)
  let phase = Atomic.make 0 in
  let barrier = Atomic.make 0 in
  let oom = Atomic.make false in
  (* Spaced indexing (Mp_util.Padding): per-thread op counts a cache line
     apart, so final writes and any future mid-run reads never contend. *)
  let ops = Array.make (Mp_util.Padding.spaced_length spec.threads) 0 in
  let stalls = Array.make (Mp_util.Padding.spaced_length spec.threads) 0 in
  let crashed_flags = Array.make spec.threads false in
  (* Per-domain GC samples bracketing the measured window. [Gc.quick_stat]
     is per-domain in OCaml 5, so each worker must sample its own; written
     once per worker after the window, read after the join. *)
  let gc_before = Array.make spec.threads Mp_util.Gcstat.zero in
  let gc_after = Array.make spec.threads Mp_util.Gcstat.zero in
  let histograms = Array.init spec.threads (fun _ -> Mp_util.Histogram.create ()) in
  (* 1-in-N latency sampling: N rounded up to a power of two so the
     sample test is a mask, not a division. *)
  let sample_mask =
    let rec up n = if n >= spec.latency_sample then n else up (n * 2) in
    up 1 - 1
  in
  let worker tid () =
    let s = SET.session t ~tid in
    let rng = Rng.split ~seed:spec.seed ~tid in
    let keygen =
      match spec.zipf_alpha with
      | Some alpha -> Mp_util.Keygen.zipf ~range:spec.key_range ~alpha
      | None -> Mp_util.Keygen.uniform ~range:spec.key_range
    in
    let hist = histograms.(tid) in
    let backoff = Mp_util.Backoff.create () in
    let my_stalls = ref 0 in
    Atomic.incr barrier;
    while Atomic.get barrier < spec.threads do
      Domain.cpu_relax ()
    done;
    let count = ref 0 in
    (* Pool exhaustion is backpressure, not a dead run: retry the
       operation (the failed insert left the structure unchanged) under
       backoff up to [alloc_retry] times, counting each stall. Only when
       the budget runs dry — the pool is pinned solid, e.g. a leaky
       scheme or a crashed thread holding everything — does the worker
       flag [oom] and bow out. *)
    let rec exec_retry k attempts =
      match
        (match Workload.pick spec.mix rng with
        | Workload.Read -> ignore (SET.contains s k : bool)
        | Workload.Insert -> ignore (SET.insert s ~key:k ~value:k : bool)
        | Workload.Remove -> ignore (SET.remove s k : bool))
      with
      | () -> if attempts > 0 then Mp_util.Backoff.reset backoff
      | exception Mempool.Exhausted ->
        incr my_stalls;
        (* Hard exhaustion — the pool already at max_arenas with no grow
           or drain in flight — cannot be satisfied by waiting for an
           arena attach, so only a handful of backoffs (absorbing slots
           hiding in other threads' magazines) are spent before giving
           up rather than the whole retry schedule. Transient
           exhaustion, the only kind a fixed-size pool has, keeps the
           full backoff budget as before. *)
        if
          attempts >= spec.alloc_retry
          || Atomic.get phase >= 2
          || (attempts >= 8 && Mempool.Core.last_alloc_hard (SET.pool t) ~tid)
        then begin
          Atomic.set oom true;
          raise Mempool.Exhausted
        end;
        Mp_util.Backoff.once backoff;
        exec_retry k (attempts + 1)
    in
    let measured0 = ref 0 in
    let gc0 = ref Mp_util.Gcstat.zero in
    let measuring = ref false in
    let finished =
      try
        while
          (let ph = Atomic.get phase in
           if ph >= 1 && not !measuring then begin
             (* Warmup just ended: everything before this instant is
                discarded from the op count and the GC deltas. *)
             measuring := true;
             measured0 := !count;
             gc0 := Mp_util.Gcstat.sample ()
           end;
           ph < 2)
        do
          let k = Mp_util.Keygen.next keygen rng in
          let sampled = spec.record_latency && !measuring && !count land sample_mask = 0 in
          let t0 = if sampled then Unix.gettimeofday () else 0.0 in
          (match spec.stall with
          | Some st when tid = st.stall_tid && !count mod st.every_ops = st.every_ops - 1 ->
            ignore (SET.contains_paused s k ~pause:(fun () -> Unix.sleepf st.pause_s) : bool)
          | _ -> exec_retry k 0);
          if sampled then Mp_util.Histogram.record hist (Unix.gettimeofday () -. t0);
          incr count
        done;
        true
      with
      | Mempool.Exhausted -> false
      | Mp_util.Fault.Crashed _ ->
        (* The fault plan killed this thread mid-operation. Its published
           reservations stay in place — that is the scenario — so no flush,
           no cleanup; just mark it dead for the report. *)
        crashed_flags.(tid) <- true;
        false
    in
    (* Close the GC window before [flush]: reclamation-pass allocations
       happen outside the measured window and must not count. *)
    gc_after.(tid) <- Mp_util.Gcstat.sample ();
    gc_before.(tid) <- !gc0;
    (if finished then
       try SET.flush s with Mp_util.Fault.Crashed _ -> crashed_flags.(tid) <- true);
    stalls.(Mp_util.Padding.spaced_index tid) <- !my_stalls;
    ops.(Mp_util.Padding.spaced_index tid) <- (if !measuring then !count - !measured0 else 0)
  in
  (* Arm faults only now: populate above ran on tid 0 and must not crash. *)
  (match spec.faults with
  | Some p -> Mp_util.Fault.arm ~threads:spec.threads p
  | None -> ());
  let wd = Option.map Watchdog.create spec.watchdog in
  let domains = Array.init spec.threads (fun tid -> Domain.spawn (worker tid)) in
  (* Warmup: workers run the real workload against the real structure but
     phase 0 keeps everything out of the books. Baseline SMR/traversal
     counters are captured at the phase flip, so warmup fences and visits
     are excluded along with warmup ops. *)
  if spec.warmup_s > 0.0 then Unix.sleepf spec.warmup_s;
  let stats0 = SET.smr_stats t in
  let traversed0 = SET.traversed t in
  Atomic.set phase 1;
  (* Main thread samples wasted memory while the clock runs. *)
  let t_start = Unix.gettimeofday () in
  let wasted_sum = ref 0.0 and wasted_samples = ref 0 and wasted_max = ref 0 in
  let pool = SET.pool t in
  while Unix.gettimeofday () -. t_start < spec.duration_s && not (Atomic.get oom) do
    Unix.sleepf 0.002;
    (* A draining arena's parked slots are committed-but-unusable memory:
       they count as wasted until the SMR barrier completes the detach
       (the watchdog's elastic_slack widens the ceiling to match). *)
    let w =
      (SET.smr_stats t).Smr_core.Smr_intf.wasted + Mempool.Core.detaching_slots pool
    in
    wasted_sum := !wasted_sum +. float_of_int w;
    incr wasted_samples;
    if w > !wasted_max then wasted_max := w;
    Option.iter (fun wd -> Watchdog.observe wd ~wasted:w) wd
  done;
  Atomic.set phase 2;
  (* Throughput denominator: the measured window ends when the stop flag
     is raised, not after Domain.join — join/teardown time is not time the
     workers spent producing the counted operations. *)
  let elapsed = Unix.gettimeofday () -. t_start in
  Array.iter Domain.join domains;
  (if spec.faults <> None then Mp_util.Fault.disarm ());
  let crashed =
    List.filter (fun tid -> crashed_flags.(tid)) (List.init spec.threads Fun.id)
  in
  (* Surviving threads cleared their announcements on the way out, so any
     tid still occupying a reservation slot is a stalled/crashed one. *)
  let pinning = SET.pinning_tids t in
  let stats1 = SET.smr_stats t in
  let traversed1 = SET.traversed t in
  (* Throughput counts only threads that lived to the end: a crashed
     domain's partial op count would dilute per-thread comparability. *)
  let total_ops =
    let sum = ref 0 in
    for tid = 0 to spec.threads - 1 do
      if not crashed_flags.(tid) then sum := !sum + ops.(Mp_util.Padding.spaced_index tid)
    done;
    !sum
  in
  let alloc_stalls = Array.fold_left ( + ) 0 stalls in
  let fences = stats1.Smr_core.Smr_intf.fences - stats0.Smr_core.Smr_intf.fences in
  let traversed = traversed1 - traversed0 in
  (* Sum per-domain GC deltas over the threads whose ops were counted. *)
  let alloc_words = ref 0.0 and promoted = ref 0.0 and minor_gcs = ref 0 in
  for tid = 0 to spec.threads - 1 do
    if not crashed_flags.(tid) then begin
      let before = gc_before.(tid) and after = gc_after.(tid) in
      alloc_words := !alloc_words +. Mp_util.Gcstat.alloc_words ~before ~after;
      promoted := !promoted +. Mp_util.Gcstat.promoted_words ~before ~after;
      minor_gcs := !minor_gcs + Mp_util.Gcstat.minor_collections ~before ~after
    end
  done;
  let per_op x = if total_ops = 0 then 0.0 else x /. float_of_int total_ops in
  {
    spec_threads = spec.threads;
    mix_name = spec.mix.Workload.name;
    total_ops;
    throughput = float_of_int total_ops /. elapsed;
    wasted_avg =
      (if !wasted_samples = 0 then 0.0 else !wasted_sum /. float_of_int !wasted_samples);
    wasted_max = !wasted_max;
    wasted_peak = stats1.Smr_core.Smr_intf.wasted_peak;
    fences;
    traversed;
    fences_per_node =
      (if traversed = 0 then 0.0 else float_of_int fences /. float_of_int traversed);
    scan_passes = stats1.Smr_core.Smr_intf.scan_passes - stats0.Smr_core.Smr_intf.scan_passes;
    scan_time_s = stats1.Smr_core.Smr_intf.scan_time_s -. stats0.Smr_core.Smr_intf.scan_time_s;
    violations = SET.violations t;
    oom = Atomic.get oom;
    alloc_stalls;
    ring_full = 0;
    deadline_exceeded = 0;
    crashed;
    pinning_tids = pinning;
    watchdog = Option.map Watchdog.verdict wd;
    final_size = SET.size t;
    latency =
      (if spec.record_latency then begin
         let merged = Mp_util.Histogram.create () in
         Array.iter (fun h -> Mp_util.Histogram.merge_into ~into:merged h) histograms;
         Some merged
       end
       else None);
    alloc_words_per_op = per_op !alloc_words;
    promoted_words_per_op = per_op !promoted;
    minor_gcs = !minor_gcs;
    arenas_attached = Mempool.Core.arenas_attached pool;
    arenas_detached = Mempool.Core.arenas_detached pool;
    resident_slots = Mempool.Core.resident_slots pool;
  }

(* -- machine-readable results --------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* %g keeps the output compact and is valid JSON (exponent form
   included); nan/inf, which JSON cannot carry, degrade to 0. *)
let json_float f =
  if Float.is_nan f || Float.abs f = Float.infinity then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

(** One benchmark run as a flat JSON object ([experiment]/[ds]/[scheme]
    label where in the suite the numbers came from). Latency percentiles
    are 0 when the run did not record latency. *)
let result_to_json ?(experiment = "") ?(ds = "") ?(scheme = "") (r : result) =
  let lat_p50, lat_p99, lat_p999, lat_max =
    match r.latency with
    | None -> (0, 0, 0, 0)
    | Some h ->
      ( Mp_util.Histogram.percentile_ns h 50.0,
        Mp_util.Histogram.percentile_ns h 99.0,
        Mp_util.Histogram.percentile_ns h 99.9,
        Mp_util.Histogram.max_ns h )
  in
  let json_int_list l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]" in
  Printf.sprintf
    "{\"experiment\":\"%s\",\"ds\":\"%s\",\"scheme\":\"%s\",\"threads\":%d,\"mix\":\"%s\",\"total_ops\":%d,\"throughput\":%s,\"wasted_avg\":%s,\"wasted_max\":%d,\"wasted_peak\":%d,\"fences\":%d,\"traversed\":%d,\"fences_per_node\":%s,\"scan_passes\":%d,\"scan_time_s\":%s,\"violations\":%d,\"oom\":%b,\"alloc_stalls\":%d,\"ring_full\":%d,\"deadline_exceeded\":%d,\"crashed\":%s,\"pinning_tids\":%s,%s,\"final_size\":%d,\"lat_p50_ns\":%d,\"lat_p99_ns\":%d,\"lat_p999_ns\":%d,\"lat_max_ns\":%d,\"alloc_words_per_op\":%s,\"promoted_words_per_op\":%s,\"minor_gcs\":%d,\"arenas_attached\":%d,\"arenas_detached\":%d,\"resident_slots\":%d}"
    (json_escape experiment) (json_escape ds) (json_escape scheme) r.spec_threads
    (json_escape r.mix_name) r.total_ops (json_float r.throughput) (json_float r.wasted_avg)
    r.wasted_max r.wasted_peak r.fences r.traversed (json_float r.fences_per_node) r.scan_passes
    (json_float r.scan_time_s) r.violations r.oom r.alloc_stalls r.ring_full
    r.deadline_exceeded (json_int_list r.crashed)
    (json_int_list r.pinning_tids)
    (Watchdog.json_fields r.watchdog)
    r.final_size lat_p50 lat_p99 lat_p999 lat_max
    (json_float r.alloc_words_per_op) (json_float r.promoted_words_per_op) r.minor_gcs
    r.arenas_attached r.arenas_detached r.resident_slots

(** Version of the JSON layout emitted by {!results_to_json} (and the
    soak harness, which mirrors it). 2 = the versioned envelope itself
    plus [wasted_peak] and [lat_p999_ns]; 1 = the bare result array of
    earlier revisions. Bump on any field removal or meaning change;
    additions are compatible within a version. *)
let schema_version = 2

(** Serialize a batch of labelled results as a versioned envelope:
    [{"schema_version":N,"results":[...]}]. *)
let results_to_json entries =
  Printf.sprintf "{\"schema_version\":%d,\"results\":[\n  %s\n]}\n" schema_version
    (String.concat ",\n  "
       (List.map
          (fun (experiment, ds, scheme, r) -> result_to_json ~experiment ~ds ~scheme r)
          entries))
