(** Waste-bound watchdog: turns each scheme's declared wasted-memory
    class (paper Table 1 / Thm 4.2) into a runtime check.

    A scheme declares [Bounded] (MP, HP: predetermined bound independent
    of scheduling), [Robust] (HE, IBR: bounded by what existed at the
    stall plus an epoch window), or [Unbounded] (EBR, leaky). The
    watchdog evaluates the matching bound function against the live
    [wasted] counter on every harness sample and records violations.

    For [Unbounded] schemes no bound exists, so the watchdog evaluates
    the {e robust reference envelope} instead and flags the verdict
    [advisory]: a violation is recorded — that is the point, EBR under a
    crashed thread must blow through what the robust schemes satisfy —
    but {!ok} still reports the verdict as expected. For [Bounded] and
    [Robust] schemes any violation is a real failure of the scheme's
    theorem.

    The bound formulas are predetermined functions of the config (plus,
    for the robust class, the structure size when the faults were
    armed), never of the churn — that is what makes the check meaningful
    under an adversarial schedule. Each carries a ×4 safety factor for
    batch-timing slack; the EBR-vs-rest separation is orders of
    magnitude, so the factor costs no discrimination. *)

type spec = {
  scheme : string;
  bound : int;  (** waste ceiling compared against every sample *)
  advisory : bool;  (** scheme declares Unbounded: violations are expected *)
  desc : string;  (** human-readable bound formula *)
}

(** The kernel batching slack that exists even with no stall: every
    thread's retired list may hold a full scan batch. Uses the largest
    kernel threshold across schemes (MP scans two announcement tables). *)
let batch_slack ~(config : Smr_core.Config.t) ~threads =
  let threshold =
    Smr_core.Reclaimer.scan_threshold ~empty_freq:config.empty_freq
      ~slots:(2 * config.slots) ~threads
  in
  threads * threshold

let spec_for ~scheme ~(properties : Smr_core.Smr_intf.properties)
    ~(config : Smr_core.Config.t) ~threads ?(elastic_slack = 0) ~size_at_arm () =
  let slots = config.slots in
  (* Elastic pools drain at most one arena at a time, and every parked
     slot of the draining arena counts as wasted until the SMR barrier
     lets the detach complete — so the declared per-arena ceilings hold
     with exactly one arena of slack added on top, never a
     scheduling-dependent term. [elastic_slack] is that arena size (0 for
     fixed-size pools). *)
  let slack = batch_slack ~config ~threads + elastic_slack in
  match properties.wasted_memory with
  | Smr_core.Smr_intf.Bounded ->
    (* HP: each of the K = slots × threads announcement slots pins one
       node. MP: each margin covers [margin / 2^precision] indices and
       the epoch filter admits the generations alive at the pinned
       announcement — one per covered index plus interval slack. *)
    let covered = (config.margin asr Handle.precision) + 2 in
    let pinned = if scheme = "mp" then slots * threads * covered else slots * threads in
    {
      scheme;
      bound = 4 * (slack + pinned);
      advisory = false;
      desc =
        Printf.sprintf "4*(batch_slack %d + pinned %d) [%s]" slack pinned
          (if scheme = "mp" then "slots*T*covered" else "slots*T");
    }
  | Smr_core.Smr_intf.Robust ->
    (* Everything alive when the stall began may stay pinned, plus the
       batch slack and one era window of in-flight births: the era clock
       advances every [epoch_freq] allocations *per thread*, so up to
       T × epoch_freq nodes can be born into the era a dead thread pins
       and be retired after it. *)
    let window = 2 * threads * config.epoch_freq in
    {
      scheme;
      bound = (4 * (slack + size_at_arm + (slots * threads))) + window;
      advisory = false;
      desc =
        Printf.sprintf "4*(batch_slack %d + live_ceiling %d + slots*T) + 2*T*epoch_freq" slack
          size_at_arm;
    }
  | Smr_core.Smr_intf.Unbounded ->
    let window = 2 * threads * config.epoch_freq in
    {
      scheme;
      bound = (4 * (slack + size_at_arm + (slots * threads))) + window;
      advisory = true;
      desc =
        Printf.sprintf
          "reference robust envelope (scheme declares unbounded): 4*(%d + %d + slots*T) + \
           2*T*epoch_freq"
          slack size_at_arm;
    }

type t = {
  spec : spec;
  mutable samples : int;
  mutable peak_wasted : int;
  mutable violations : int;
  mutable first_violation : int;  (** wasted at the first violating sample; 0 if none *)
}

let create spec = { spec; samples = 0; peak_wasted = 0; violations = 0; first_violation = 0 }

(** Record one sample of the live [wasted] counter. *)
let observe t ~wasted =
  t.samples <- t.samples + 1;
  if wasted > t.peak_wasted then t.peak_wasted <- wasted;
  if wasted > t.spec.bound then begin
    if t.violations = 0 then t.first_violation <- wasted;
    t.violations <- t.violations + 1
  end

type verdict = {
  vspec : spec;
  samples : int;
  peak_wasted : int;
  violations : int;
  first_violation : int;
}

let verdict t =
  {
    vspec = t.spec;
    samples = t.samples;
    peak_wasted = t.peak_wasted;
    violations = t.violations;
    first_violation = t.first_violation;
  }

(** A verdict passes when no violation was recorded, or when the scheme
    declared Unbounded (the reference bound is advisory). *)
let ok v = v.violations = 0 || v.vspec.advisory

let to_string v =
  if v.violations = 0 then
    Printf.sprintf "OK (peak %d <= bound %d over %d samples)" v.peak_wasted v.vspec.bound
      v.samples
  else
    Printf.sprintf "%s (%d/%d samples over bound %d, peak %d, first %d)"
      (if v.vspec.advisory then "VIOLATION-expected" else "VIOLATION")
      v.violations v.samples v.vspec.bound v.peak_wasted v.first_violation

(** Flat JSON fields for embedding in a result object (no braces). *)
let json_fields = function
  | None -> "\"wd_bound\":0,\"wd_violations\":0,\"wd_peak\":0,\"wd_advisory\":false,\"wd_ok\":true"
  | Some v ->
    Printf.sprintf "\"wd_bound\":%d,\"wd_violations\":%d,\"wd_peak\":%d,\"wd_advisory\":%b,\"wd_ok\":%b"
      v.vspec.bound v.violations v.peak_wasted v.vspec.advisory (ok v)
