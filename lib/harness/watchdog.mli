(** Waste-bound watchdog: evaluates each scheme's declared wasted-memory
    bound (paper Table 1 / Thm 4.2) against live [wasted] samples and
    records violations. Unbounded schemes are checked against the robust
    reference envelope with [advisory] set — a violation is expected
    there, and {!ok} treats it as such. *)

type spec = {
  scheme : string;
  bound : int;  (** waste ceiling compared against every sample *)
  advisory : bool;  (** scheme declares Unbounded: violations are expected *)
  desc : string;  (** human-readable bound formula *)
}

(** The bound function per declared class. [size_at_arm] is a ceiling on
    the structure's {e node} count while the plan is armed — the robust
    class's "size at stall". Pass the key-range times the structure's
    nodes-per-key factor (2 for the BST's routers), not the prefill
    size: churn can grow the structure past what existed at arm time.
    Ignored for Bounded schemes. [elastic_slack] widens the bound by one
    arena's slot count for elastic pools ([max_arenas > 1]): the at most
    one draining arena's parked slots count as wasted until the SMR
    barrier completes the detach, so samples must include
    {!Mempool.Core.detaching_slots} and the ceiling gains exactly that
    per-arena term. *)
val spec_for :
  scheme:string ->
  properties:Smr_core.Smr_intf.properties ->
  config:Smr_core.Config.t ->
  threads:int ->
  ?elastic_slack:int ->
  size_at_arm:int ->
  unit ->
  spec

type t

val create : spec -> t

(** Record one sample of the live [wasted] counter. *)
val observe : t -> wasted:int -> unit

type verdict = {
  vspec : spec;
  samples : int;
  peak_wasted : int;
  violations : int;
  first_violation : int;  (** wasted at the first violating sample; 0 if none *)
}

val verdict : t -> verdict

(** No violations, or the bound was advisory (Unbounded scheme). *)
val ok : verdict -> bool

val to_string : verdict -> string

(** Flat JSON fields ([wd_*]) for embedding in a result object. *)
val json_fields : verdict option -> string
