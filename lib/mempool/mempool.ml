(** Manual-memory node pool — now an elastic multi-arena allocator.

    OCaml is garbage-collected, so this pool simulates the C/C++ manual
    memory management environment the SMR problem lives in: node payloads
    are pre-allocated once, [alloc] hands out slot ids, and [free] makes a
    slot reusable. A freed slot that is still reachable through a stale
    reference is exactly a use-after-free; with [check_access] enabled,
    every payload access verifies the slot is not free and counts
    violations, turning silent memory corruption into a measurable signal.

    The pool is split in two layers. {!Core} is payload-agnostic: slot
    life-cycle state, free lists, and the per-node metadata words SMR
    schemes need (MP index, birth and death epochs) — mirroring the paper's
    practice of reserving extra space during node allocation. ['a t] adds
    the client data structure's node payloads on top.

    {2 Arenas}

    Memory is organized as a chain of up to [max_arenas] fixed-size arenas
    of [capacity] slots each, in the style of Blelloch & Wei's
    constant-time fixed-size allocator: a slot's id is
    [(arena lsl off_bits) lor offset] (see {!Handle.arena_of_id}), so link
    words, idx16 packing, UAF checking and the incarnation ABA tag are
    exactly as in the single-arena pool. With the default [max_arenas = 1]
    the pool behaves identically to its fixed-size predecessor.

    Elasticity is online. When allocation finds every reachable free list
    empty and the pool is below [max_arenas], one thread attaches a fresh
    arena (payload hook first, then its slots are published as chains) and
    allocation continues — no locks on the hot path, the attach and the
    drain {e election} are serialized by a single CAS flag. Shrinking is a
    two-phase drain: {!Core.request_shrink} publishes a generation-tagged
    drain {e token} naming the highest arena, after which
    its slots are routed out of circulation ("parked") as they surface —
    the arena's own chain stack is scrubbed, and the alloc/free fast paths
    lazily capture strays for the cost of one predictable branch. Once
    every slot of the arena is parked, the arena is *detachable*; actually
    unmapping it (dropping payloads and free-list arrays) is gated through
    the SMR layer ({!Smr_core.Detach}): a scheme completes the detach from
    its scan path exactly when no reservation can still reach a node in the
    arena. The metadata words ([state]/[index]/[birth]/[death]/
    [incarnation]) persist as a shim after detach, so stale handles keep
    failing validation and the UAF detector keeps counting.

    {2 Free lists}

    Allocation is thread-partitioned for scalability: each thread owns two
    private free-list magazines (no synchronization) and exchanges whole
    [fair_share]-length chains with per-arena lock-free stacks of chains
    whose top words carry ABA version tags. A spill publishes an entire
    chain with one CAS and a refill claims one with one CAS — magazine
    batching in the style of Blelloch & Wei — instead of one CAS per slot.
    Chains on an arena's stack are homogeneous (all slots of that arena),
    which is what makes a drain complete: a magazine that mixed slots from
    several arenas is partitioned at spill time (amortized O(1) per free;
    single-arena pools never mix and keep the one-CAS spill). Refill scans
    arenas lowest-first, concentrating load in low arenas so high arenas
    go idle and become drainable. Slots are linked through side arrays, so
    free lists and chains allocate nothing. The legacy per-slot transfer
    survives as [Per_slot] (chains of length one) so the batching win
    stays measurable (`bench/main.exe pipe`). *)

exception Exhausted

(* Slot life cycle; single-word ints, so reads cannot tear. *)
let state_free = 0
let state_live = 1
let state_retired = 2

(** Granularity of traffic through the global free lists: [Chained] moves
    whole [fair_share]-length chains per CAS; [Per_slot] is the legacy
    one-CAS-per-slot Treiber stack, kept for comparison benchmarks. *)
type transfer = Chained | Per_slot

module Core = struct
  (* Magazine arena tags: which arena the magazine's slots belong to.
     [tag_none] while empty, [tag_mixed] once slots of two arenas met —
     a mixed spill partitions the chain per arena (the rare path). *)
  let tag_none = -1
  let tag_mixed = -2

  (* The [draining] word: [drain_idle] when no drain is in flight;
     [drain_sealed] while a cancel or a detach completion owns the word
     (clearing the stamp, rescuing or unmapping — growers and new
     elections must back off until the owner publishes [drain_idle]);
     otherwise a {e token} [(gen lsl drain_arena_bits) lor arena]. The
     generation makes every elected drain unique, so a stale poller that
     judged quiescence against an earlier drain of the same arena fails
     its completion CAS instead of unmapping the re-drained arena (ABA
     across cancel + re-drain). *)
  let drain_idle = -1
  let drain_sealed = -2
  let drain_arena_bits = 16
  let drain_arena_mask = (1 lsl drain_arena_bits) - 1
  let[@inline] drain_token ~gen k = (gen lsl drain_arena_bits) lor k

  (* Arena index of a drain token; -1 for [drain_idle]/[drain_sealed],
     so hot-path "is my arena draining" compares stay one branch. *)
  let[@inline] drain_arena d = if d < 0 then -1 else d land drain_arena_mask

  (* Per-thread free lists: an active magazine ([head]) that alloc pops
     and free pushes, plus a full spare magazine that delays the global
     round-trip. Rotating a full active list into the spare keeps its
     (head, tail, count) known, so spilling it later is a single chain
     push — no walk, no per-slot CAS. The trailing [pad_] fields fatten
     the record past a cache line (per-stripe dummy fields idiom,
     {!Mp_util.Padding}) so neighbouring threads' records cannot
     false-share under the stats sampler. *)
  type local = {
    mutable head : int; (* active magazine, -1 = empty *)
    mutable count : int;
    mutable tail : int; (* last slot of the active magazine, -1 when empty *)
    mutable arena : int; (* arena tag of the active magazine *)
    mutable spare_head : int; (* full spare magazine, -1 = none *)
    mutable spare_count : int;
    mutable spare_tail : int;
    mutable spare_arena : int;
    mutable last_hard : bool;
        (* the last exhaustion this thread saw was *hard*: the pool is at
           [max_arenas] with no grow or drain in flight, so backoff-and-
           retry cannot be satisfied by an arena attach (see
           {!last_alloc_hard}) *)
    mutable live : int; (* this thread's allocs - frees; may go negative *)
    mutable peak : int;
        (* high-water mark of [live]; mirrored into the shared
           [live_peak] stripe only when it rises, so steady-state allocs
           pay two plain field updates instead of striped-counter reads *)
    (* scratch for partitioning a mixed chain at spill time; owned by the
       magazine's thread, so plain arrays *)
    scr_head : int array;
    scr_tail : int array;
    scr_len : int array;
    mutable pad_0 : int;
    mutable pad_1 : int;
  }

  (* One fixed-size arena. The metadata arrays ([state] .. [incarnation])
     are the post-detach shim: they persist for the life of the pool so
     stale ids keep resolving to validating-but-failing metadata (and the
     incarnation clock never rewinds across a detach/re-attach cycle).
     The free-list arrays and the payloads (held by ['a t]) are what a
     detach actually unmaps. *)
  type arena = {
    base : int; (* first slot id of this arena *)
    size : int;
    state : int array;
    index : int array; (* 32-bit MP index *)
    birth : int array; (* birth epoch *)
    death : int array; (* retirement epoch *)
    incarnation : int array; (* bumped on every free; detects slot reuse *)
    mutable stack_next : int array; (* free-list links (full ids), -1 terminated *)
    mutable chain_next : int array; (* by chain-head offset: next chain head id *)
    mutable chain_len : int array; (* by chain-head offset: slots in this chain *)
    mutable chain_tail : int array; (* by chain-head offset: last slot id *)
    top : int Atomic.t; (* (version << 33) lor (head + 1); 0 in low bits = empty *)
    parked_top : int Atomic.t; (* Treiber list of parked slots (id + 1); 0 = empty *)
    parked : int Atomic.t; (* slots routed out of circulation by a drain *)
  }

  type t = {
    capacity : int; (* slots per arena *)
    threads : int;
    transfer : transfer;
    max_arenas : int;
    elastic : bool;
        (* [max_arenas > 1]. A fixed pool can never grow or drain, so
           the hot paths skip every draining check behind this immutable
           branch — alloc/free in the single-arena steady state cost
           what they did before elasticity existed. *)
    off_bits : int; (* id = (arena lsl off_bits) lor offset *)
    off_mask : int;
    arenas : arena array; (* length max_arenas; a shared dummy until attached *)
    attached : int Atomic.t; (* arenas [0, attached) are attached *)
    growing : bool Atomic.t; (* election lock: arena attach AND drain election *)
    draining : int Atomic.t; (* drain token, or drain_idle / drain_sealed *)
    drain_gen : int Atomic.t; (* monotonic; a fresh generation per elected drain *)
    detach_stamp : (int * int) option Atomic.t;
        (* [(token, epoch)] stamped at full park, [None] unset. Tagging
           the stamp with its drain token keeps a stamp from ever gating
           a different drain: a poller that stalls across a cancel and
           re-drain of the same arena either reads a stamp whose token
           mismatches (and restamps fresh) or completes with a stale
           token (and fails the completion CAS). *)
    mutable grow_hook : int -> unit; (* payload attach, before slots publish *)
    mutable detach_hook : int -> unit; (* payload drop, at detach *)
    grows : int Atomic.t; (* arenas attached beyond the initial one *)
    shrinks : int Atomic.t; (* arenas detached *)
    resident : int Atomic.t; (* slots of currently attached arenas *)
    locals : local array;
    fair_share : int; (* magazine size: chain length and overflow trigger *)
    check_access : bool;
    violations : int Atomic.t;
    allocs : Mp_util.Striped_counter.t;
    frees : Mp_util.Striped_counter.t;
    live_peak : Mp_util.Striped_counter.t;
        (* per-thread high-water mark of (allocs - frees); the summed
           peak is a conservative upper bound on the true peak live
           count (see [live_peak] below) *)
  }

  let id_plus1_mask = (1 lsl 33) - 1
  let top_pack ~version ~id_plus1 = (version lsl 33) lor id_plus1
  let top_id_plus1 top = top land id_plus1_mask
  let top_version top = top lsr 33

  let[@inline] arena_of t id = Array.unsafe_get t.arenas (id lsr t.off_bits)
  let[@inline] off_of t id = id land t.off_mask

  (* -- per-arena stacks of chains (version-tagged against ABA) ------------ *)

  (* A chain is a [stack_next]-linked slot list, [head] through [tail]
     (whose link is -1), with its length and tail memoized at the head.
     Pushing or popping one is a single CAS on the tagged top word
     regardless of length. Chains on an arena's stack hold only that
     arena's slots (the homogeneity invariant a drain relies on). *)

  let rec arena_push_chain t a ~head ~tail ~len =
    let off = off_of t head in
    let top = Atomic.get a.top in
    a.chain_next.(off) <- top_id_plus1 top - 1;
    a.chain_len.(off) <- len;
    a.chain_tail.(off) <- tail;
    let top' = top_pack ~version:(top_version top + 1) ~id_plus1:(head + 1) in
    if not (Atomic.compare_and_set a.top top top') then arena_push_chain t a ~head ~tail ~len

  (* Pop a whole chain; returns its head or -1. [chain_len]/[chain_tail]
     at the head stay valid for the winner: they are only rewritten by the
     next push of that head, which requires winning it first. Reading
     [chain_next] of a head another thread already claimed may yield a
     stale link, but then the top word moved and the CAS fails. *)
  let rec arena_pop_chain t a =
    let top = Atomic.get a.top in
    let head_plus1 = top_id_plus1 top in
    if head_plus1 = 0 then -1
    else begin
      let head = head_plus1 - 1 in
      let next = a.chain_next.(off_of t head) in
      let top' = top_pack ~version:(top_version top + 1) ~id_plus1:(next + 1) in
      if Atomic.compare_and_set a.top top top' then head else arena_pop_chain t a
    end

  (* -- drain/park machinery ------------------------------------------------ *)

  (* Push the parked list back onto the arena's chain stack. Used when a
     drain is cancelled, and by a parker that lost a race with the
     cancellation (see [park]): whoever exchanges the list owns its
     slots, so each slot is re-published exactly once. *)
  let rescue_parked t a =
    let chain_cap = match t.transfer with Chained -> t.fair_share | Per_slot -> 1 in
    let id = ref (Atomic.exchange a.parked_top 0 - 1) in
    let rescued = ref 0 in
    let chain_head = ref (-1) and chain_tail = ref (-1) and chain_len = ref 0 in
    let flush_chain () =
      if !chain_len > 0 then begin
        arena_push_chain t a ~head:!chain_head ~tail:!chain_tail ~len:!chain_len;
        chain_head := -1;
        chain_tail := -1;
        chain_len := 0
      end
    in
    while !id >= 0 do
      let next = a.stack_next.(off_of t !id) in
      a.stack_next.(off_of t !id) <- !chain_head;
      if !chain_head < 0 then chain_tail := !id;
      chain_head := !id;
      incr chain_len;
      incr rescued;
      if !chain_len >= chain_cap then flush_chain ();
      id := next
    done;
    flush_chain ();
    if !rescued > 0 then ignore (Atomic.fetch_and_add a.parked (- !rescued) : int)

  (* Route one free slot of a draining arena out of circulation. The
     caller owns the slot (it popped it, freed it, or claimed its chain),
     so each slot parks at most once. The post-park re-check closes the
     cancellation race: a parker that read [draining = k] before a
     concurrent cancel re-publishes the list itself, so no slot is ever
     stranded. *)
  let rec park t a id =
    let top = Atomic.get a.parked_top in
    a.stack_next.(off_of t id) <- top - 1;
    if Atomic.compare_and_set a.parked_top top (id + 1) then begin
      Atomic.incr a.parked;
      if drain_arena (Atomic.get t.draining) <> id lsr t.off_bits then rescue_parked t a
    end
    else park t a id

  (* Capture every chain still on a draining arena's stack. Called by
     [request_shrink] and re-run on every detach poll, so chains spilled
     concurrently with the drain request are captured too. *)
  let scrub_stack t a =
    let head = ref (arena_pop_chain t a) in
    while !head >= 0 do
      let id = ref !head in
      while !id >= 0 do
        let next = a.stack_next.(off_of t !id) in
        park t a !id;
        id := next
      done;
      head := arena_pop_chain t a
    done

  (* -- spill --------------------------------------------------------------- *)

  (* Publish a chain known to hold only arena [head lsr off_bits] slots:
     one CAS when chained, one per slot in the legacy mode. A chain of a
     draining arena leaves circulation instead. *)
  let spill_chain t ~head ~tail ~len =
    let a = arena_of t head in
    if t.elastic && drain_arena (Atomic.get t.draining) = head lsr t.off_bits then begin
      let id = ref head in
      while !id >= 0 do
        let next = a.stack_next.(off_of t !id) in
        park t a !id;
        id := next
      done
    end
    else
      match t.transfer with
      | Chained -> arena_push_chain t a ~head ~tail ~len
      | Per_slot ->
        let id = ref head in
        while !id >= 0 do
          let next = a.stack_next.(off_of t !id) in
          a.stack_next.(off_of t !id) <- -1;
          arena_push_chain t a ~head:!id ~tail:!id ~len:1;
          id := next
        done

  (* Spill a magazine. Homogeneous (the overwhelmingly common case, and
     the only case for a single-arena pool): one chain push. Mixed:
     partition the chain per arena through the thread-local scratch
     arrays — one extra touch per slot, amortized over the [fair_share]
     frees that filled the magazine — then push each part. *)
  let spill t l ~head ~tail ~len ~tag =
    if tag >= 0 then spill_chain t ~head ~tail ~len
    else begin
      Array.fill l.scr_head 0 t.max_arenas (-1);
      Array.fill l.scr_len 0 t.max_arenas 0;
      let id = ref head in
      while !id >= 0 do
        let a = arena_of t !id in
        let next = a.stack_next.(off_of t !id) in
        let k = !id lsr t.off_bits in
        if l.scr_head.(k) < 0 then l.scr_tail.(k) <- !id;
        a.stack_next.(off_of t !id) <- l.scr_head.(k);
        l.scr_head.(k) <- !id;
        l.scr_len.(k) <- l.scr_len.(k) + 1;
        id := next
      done;
      for k = 0 to t.max_arenas - 1 do
        if l.scr_head.(k) >= 0 then
          spill_chain t ~head:l.scr_head.(k) ~tail:l.scr_tail.(k) ~len:l.scr_len.(k)
      done
    end

  (** When set, a detected use-after-free raises instead of counting, so
      tests can pinpoint the offending access (set via MP_TRAP_UAF=1). *)
  let trap_on_violation =
    ref (match Sys.getenv_opt "MP_TRAP_UAF" with Some ("1" | "true") -> true | _ -> false)

  exception Use_after_free of int

  (* Debug-only: remember who retired/freed each slot last, so a trapped
     use-after-free can print the other side of the race. *)
  let history : (int, string) Hashtbl.t = Hashtbl.create 64
  let history_lock = Mutex.create ()

  let record_history id what =
    if !trap_on_violation then begin
      let bt = Printexc.get_callstack 12 in
      Mutex.lock history_lock;
      Hashtbl.replace history id
        (Printf.sprintf "--- last %s of slot %d ---\n%s" what id
           (Printexc.raw_backtrace_to_string bt));
      Mutex.unlock history_lock
    end

  let mk_arena ~base ~size =
    {
      base;
      size;
      state = Array.make size state_free;
      index = Array.make size 0;
      birth = Array.make size 0;
      death = Array.make size 0;
      incarnation = Array.make size 0;
      stack_next = Array.make size (-1);
      chain_next = Array.make size (-1);
      chain_len = Array.make size 0;
      chain_tail = Array.make size (-1);
      top = Atomic.make (top_pack ~version:0 ~id_plus1:0);
      parked_top = Atomic.make 0;
      parked = Atomic.make 0;
    }

  let create ~capacity ~threads ?(transfer = Chained) ?fair_share ?(check_access = false)
      ?(max_arenas = 1) () =
    if capacity > Handle.max_id then invalid_arg "Mempool.create: capacity too large";
    if capacity < threads then invalid_arg "Mempool.create: capacity < threads";
    if max_arenas < 1 then invalid_arg "Mempool.create: max_arenas must be >= 1";
    (* Smallest offset field holding one arena. *)
    let off_bits =
      let b = ref 0 in
      while 1 lsl !b < capacity do
        incr b
      done;
      !b
    in
    if max_arenas > Handle.max_arenas_for ~off_bits ~arena_slots:capacity then
      invalid_arg "Mempool.create: max_arenas * capacity exceeds the handle id space";
    if max_arenas > 1 lsl drain_arena_bits then
      invalid_arg "Mempool.create: max_arenas exceeds the drain-token arena field";
    let fair_share =
      match fair_share with
      | Some f when f >= 1 -> f
      | Some _ -> invalid_arg "Mempool.create: fair_share must be positive"
      | None -> max 64 (capacity / (threads * 2))
    in
    let arena0 = mk_arena ~base:0 ~size:capacity in
    let dummy = mk_arena ~base:0 ~size:0 in
    let t =
      {
        capacity;
        threads;
        transfer;
        max_arenas;
        elastic = max_arenas > 1;
        off_bits;
        off_mask = (1 lsl off_bits) - 1;
        arenas = Array.init max_arenas (fun k -> if k = 0 then arena0 else dummy);
        attached = Atomic.make 1;
        growing = Atomic.make false;
        draining = Atomic.make drain_idle;
        drain_gen = Atomic.make 0;
        detach_stamp = Atomic.make None;
        grow_hook = ignore;
        detach_hook = ignore;
        grows = Atomic.make 0;
        shrinks = Atomic.make 0;
        resident = Atomic.make capacity;
        locals =
          Array.init threads (fun _ ->
              {
                head = -1;
                count = 0;
                tail = -1;
                arena = tag_none;
                spare_head = -1;
                spare_count = 0;
                spare_tail = -1;
                spare_arena = tag_none;
                last_hard = false;
                live = 0;
                peak = 0;
                scr_head = Array.make max_arenas (-1);
                scr_tail = Array.make max_arenas (-1);
                scr_len = Array.make max_arenas 0;
                pad_0 = 0;
                pad_1 = 0;
              });
        fair_share;
        check_access;
        violations = Atomic.make 0;
        allocs = Mp_util.Striped_counter.create ~threads;
        frees = Mp_util.Striped_counter.create ~threads;
        live_peak = Mp_util.Striped_counter.create ~threads;
      }
    in
    (* Seed each local free list with its fair share; everything else goes
       to arena 0's stack — as fair_share-length chains — so any thread
       can reach it. A slot parked in another thread's local magazines is
       still unreachable until that thread spills, so [Exhausted] is a
       per-thread-visibility condition, not a global-emptiness one. *)
    let seeded = ref 0 in
    let chain_head = ref (-1) and chain_tail = ref (-1) and chain_len = ref 0 in
    let chain_cap = match transfer with Chained -> fair_share | Per_slot -> 1 in
    let flush_chain () =
      if !chain_len > 0 then begin
        arena_push_chain t arena0 ~head:!chain_head ~tail:!chain_tail ~len:!chain_len;
        chain_head := -1;
        chain_tail := -1;
        chain_len := 0
      end
    in
    for id = capacity - 1 downto 0 do
      let l = t.locals.(!seeded mod threads) in
      if l.count < t.fair_share && !seeded < threads * t.fair_share then begin
        arena0.stack_next.(id) <- l.head;
        if l.head < 0 then l.tail <- id;
        l.head <- id;
        l.count <- l.count + 1;
        l.arena <- 0;
        incr seeded
      end
      else begin
        arena0.stack_next.(id) <- !chain_head;
        if !chain_head < 0 then chain_tail := id;
        chain_head := id;
        incr chain_len;
        if !chain_len >= chain_cap then flush_chain ()
      end
    done;
    flush_chain ();
    t

  let capacity t = t.capacity
  let threads t = t.threads
  let fair_share t = t.fair_share
  let off_bits t = t.off_bits
  let max_arenas t = t.max_arenas
  let attached_arenas t = Atomic.get t.attached
  let arenas_attached t = Atomic.get t.grows
  let arenas_detached t = Atomic.get t.shrinks
  let resident_slots t = Atomic.get t.resident

  let detaching_slots t =
    let d = Atomic.get t.draining in
    if d < 0 then 0 else Atomic.get t.arenas.(drain_arena d).parked

  let set_grow_hook t f = t.grow_hook <- f
  let set_detach_hook t f = t.detach_hook <- f

  (* -- grow ---------------------------------------------------------------- *)

  (* Attach arena [k]: payloads first (via the hook), slots published as
     chains after, so a popper that reaches a new slot through the stack's
     release/acquire pair always finds its payload and metadata in place.
     A re-attached arena (grown back after a detach) keeps its metadata
     shim — the incarnation clock continues, so handles minted before the
     detach still fail validation against post-re-attach incarnations
     exactly as they would across an ordinary free/re-alloc. *)
  let attach_arena t k =
    let base = k lsl t.off_bits in
    let a =
      let existing = t.arenas.(k) in
      if existing.size > 0 then begin
        existing.stack_next <- Array.make existing.size (-1);
        existing.chain_next <- Array.make existing.size (-1);
        existing.chain_len <- Array.make existing.size 0;
        existing.chain_tail <- Array.make existing.size (-1);
        existing
      end
      else begin
        let a = mk_arena ~base ~size:t.capacity in
        t.arenas.(k) <- a;
        a
      end
    in
    t.grow_hook k;
    let chain_cap = match t.transfer with Chained -> t.fair_share | Per_slot -> 1 in
    let chain_head = ref (-1) and chain_tail = ref (-1) and chain_len = ref 0 in
    let flush_chain () =
      if !chain_len > 0 then begin
        arena_push_chain t a ~head:!chain_head ~tail:!chain_tail ~len:!chain_len;
        chain_head := -1;
        chain_tail := -1;
        chain_len := 0
      end
    in
    for off = a.size - 1 downto 0 do
      let id = base + off in
      a.stack_next.(off) <- !chain_head;
      if !chain_head < 0 then chain_tail := id;
      chain_head := id;
      incr chain_len;
      if !chain_len >= chain_cap then flush_chain ()
    done;
    flush_chain ();
    ignore (Atomic.fetch_and_add t.resident a.size : int);
    Atomic.incr t.grows;
    (* Publish last: threads iterate stacks [0, attached). *)
    Atomic.incr t.attached

  (* One thread attaches; contenders see a transient exhaustion and back
     off into their retry schedule. [growing] is the election lock shared
     with {!request_shrink}, so no drain can be elected while an attach is
     in flight; an already-elected drain (token) — or a cancel/detach
     mid-completion ([drain_sealed]) — excludes the attach instead:
     allocation pressure first cancels the drain, then grows on retry.
     Requiring strictly [drain_idle] (not merely negative) is what keeps
     an attach from running concurrently with [complete_detach]'s unmap:
     the completion publishes [drain_idle] only after [attached] and the
     arena arrays are consistent. *)
  let try_grow t =
    if t.max_arenas = 1 then false
    else if Atomic.get t.attached >= t.max_arenas then false
    else if not (Atomic.compare_and_set t.growing false true) then false
    else begin
      let ok = Atomic.get t.draining = drain_idle && Atomic.get t.attached < t.max_arenas in
      if ok then attach_arena t (Atomic.get t.attached);
      Atomic.set t.growing false;
      ok
    end

  (* -- shrink -------------------------------------------------------------- *)

  (** Start draining the highest attached arena (arena 0 never detaches:
      sentinels live there). At most one drain at a time; returns the
      draining arena's index, or [None] if the pool cannot shrink right
      now. The drain completes asynchronously through the SMR detach
      barrier ({!detach_ready}/{!complete_detach}). *)
  let request_shrink t =
    if Atomic.get t.attached <= 1 then None
    else if not (Atomic.compare_and_set t.growing false true) then None
    else begin
      (* Election runs under the [growing] lock, so no attach is in
         flight and none can start before the token is published. Read
         [draining] before [attached]: once the word reads idle no detach
         completion is in flight either (completions publish [drain_idle]
         only after decrementing [attached]), and no new drain can be
         elected while we hold the lock — so the topmost arena we elect
         is stable and the undo dance of racing a concurrent grow is
         gone. From [drain_idle] the only possible writer of [draining]
         is this election, hence the plain set. *)
      let idle = Atomic.get t.draining = drain_idle in
      let n = Atomic.get t.attached in
      let r =
        if (not idle) || n <= 1 then None
        else begin
          let k = n - 1 in
          Atomic.set t.draining (drain_token ~gen:(Atomic.fetch_and_add t.drain_gen 1) k);
          Some k
        end
      in
      Atomic.set t.growing false;
      (match r with Some k -> scrub_stack t t.arenas.(k) | None -> ());
      r
    end

  (** Abort an in-flight drain, returning every parked slot to
      circulation. Called on allocation pressure (a spike mid-shrink must
      win) and available to policy code. False if no drain was in flight
      or the detach already entered completion. *)
  let cancel_shrink t =
    let d = Atomic.get t.draining in
    if d < 0 then false
    else if not (Atomic.compare_and_set t.draining d drain_sealed) then false
    else begin
      (* Owning the sealed word excludes a concurrent completion (its
         token CAS fails) and any new election (the word is not idle).
         Clear the stamp and return the parked slots before publishing
         idle, so the next elected drain starts from a clean slate. *)
      Atomic.set t.detach_stamp None;
      rescue_parked t t.arenas.(drain_arena d);
      Atomic.set t.draining drain_idle;
      true
    end

  (** The draining arena once every one of its slots is parked:
      [(token, base, size)], the token naming this particular drain (its
      arena is {!drain_arena}[ token]). Re-scrubs the arena's stack
      first, so chains that raced the drain request are captured by
      whoever polls. This is the condition under which the SMR layer may
      start its quiescence protocol; [None] while slots are still in
      circulation (live, retired, or hiding in magazines). *)
  let detach_ready t =
    let d = Atomic.get t.draining in
    if d < 0 then None
    else begin
      let a = t.arenas.(drain_arena d) in
      scrub_stack t a;
      if Atomic.get a.parked = a.size then Some (d, a.base, a.size) else None
    end

  (** Epoch stamp for [token]'s detach grace period: -1 until an SMR
      scheme stamps it (once per drain) after observing {!detach_ready}.
      A stamp recorded for a different token reads as unset — a stamp
      never gates a drain it was not taken under. *)
  let detach_stamp t ~token =
    match Atomic.get t.detach_stamp with
    | Some (tok, s) when tok = token -> s
    | _ -> -1

  (* First writer wins per token. A stale poller (its token no longer
     current) may clobber the record with its own tag; the current
     drain's pollers then see a token mismatch and restamp with a later
     epoch — a conservative delay, never an early completion, since
     completing still requires the matching token below. *)
  let set_detach_stamp t ~token v =
    let cur = Atomic.get t.detach_stamp in
    match cur with
    | Some (tok, _) when tok = token -> ()
    | _ -> ignore (Atomic.compare_and_set t.detach_stamp cur (Some (token, v)) : bool)

  (** Finish the detach of the drain named by [token]: unmap the arena
      (payload hook + free-list arrays dropped; the metadata shim
      persists) and retire its index from the attached range. Caller is
      the SMR layer, after its quiescence check passed against [token]'s
      stamp. False if the drain was cancelled concurrently — or if
      [token] is stale (the drain it names was cancelled and the arena
      re-drained): the CAS below fails for every token but the current
      one, so a quiescence verdict computed under an earlier drain can
      never unmap the arena of a later one. *)
  let complete_detach t token =
    if token < 0 || not (Atomic.compare_and_set t.draining token drain_sealed) then false
    else begin
      let k = drain_arena token in
      let a = t.arenas.(k) in
      (* Structural invariants, not races: while a token is in flight no
         attach can start ([try_grow] requires idle) and the electing
         [request_shrink] saw no attach in flight (election holds the
         [growing] lock), so [attached] is pinned at [k + 1]; full park
         ([detach_ready]) is what let the caller stamp. *)
      assert (Atomic.get t.attached = k + 1);
      assert (Atomic.get a.parked = a.size);
      (* Retire the index first: refills stop visiting the arena, and the
         stack is empty (every slot is parked), so nothing races the
         array drops below. *)
      Atomic.set t.attached k;
      Atomic.set a.parked_top 0;
      Atomic.set a.parked 0;
      a.stack_next <- [||];
      a.chain_next <- [||];
      a.chain_len <- [||];
      a.chain_tail <- [||];
      t.detach_hook k;
      ignore (Atomic.fetch_and_add t.resident (-a.size) : int);
      Atomic.incr t.shrinks;
      Atomic.set t.detach_stamp None;
      Atomic.set t.draining drain_idle;
      true
    end

  (* -- alloc / free ------------------------------------------------------ *)

  (* Make the active magazine non-empty: promote the spare, else claim a
     whole chain (one CAS) from the lowest-numbered arena stack holding
     one — the low-first bias that lets high arenas go idle. False when
     both local magazines and every reachable stack are empty. *)
  let try_refill t l =
    if l.spare_head >= 0 then begin
      l.head <- l.spare_head;
      l.count <- l.spare_count;
      l.tail <- l.spare_tail;
      l.arena <- l.spare_arena;
      l.spare_head <- -1;
      l.spare_count <- 0;
      l.spare_tail <- -1;
      l.spare_arena <- tag_none;
      true
    end
    else begin
      let n = if t.elastic then Atomic.get t.attached else 1 in
      let d = if t.elastic then drain_arena (Atomic.get t.draining) else -1 in
      let rec go k =
        if k >= n then false
        else if k = d then go (k + 1)
        else begin
          let a = t.arenas.(k) in
          let head = arena_pop_chain t a in
          if head < 0 then go (k + 1)
          else begin
            l.head <- head;
            l.count <- a.chain_len.(off_of t head);
            l.tail <- a.chain_tail.(off_of t head);
            l.arena <- k;
            true
          end
        end
      in
      go 0
    end

  (* Pop the head of a non-empty active magazine and mark it live.
     Returns -1 if the magazine drained away under parking (every popped
     slot belonged to the draining arena) — the caller falls back to the
     refill path. *)
  let rec take t ~tid l =
    let id = l.head in
    let a = arena_of t id in
    let off = off_of t id in
    l.head <- a.stack_next.(off);
    l.count <- l.count - 1;
    if l.head < 0 then l.tail <- -1;
    if t.elastic && drain_arena (Atomic.get t.draining) = id lsr t.off_bits then begin
      (* Stray slot of a draining arena surfacing from a magazine: it
         leaves circulation here instead of being handed out. *)
      park t a id;
      if l.head >= 0 then take t ~tid l else -1
    end
    else begin
      assert (a.state.(off) = state_free);
      a.state.(off) <- state_live;
      a.index.(off) <- 0;
      Mp_util.Striped_counter.incr t.allocs ~tid;
      (* Live count can only rise on an alloc, so this is the one place
         the high-water mark needs lifting. The per-tid difference may go
         negative (slots are freed by the retiring thread, not always the
         allocating one); [l.peak] floors at 0 and the sum of per-thread
         peaks still dominates every instantaneous global live count —
         the right direction for a capacity ceiling. The shared stripe
         the sampler reads is written only when the peak actually rises
         (a plateau in steady state), keeping the hot path to two plain
         field updates. *)
      l.live <- l.live + 1;
      if l.live > l.peak then begin
        l.peak <- l.live;
        Mp_util.Striped_counter.max_to t.live_peak ~tid l.live
      end;
      id
    end

  (* Every reachable free list is empty. Try, in order: cancelling an
     in-flight drain (a spike mid-shrink reclaims the parked slots),
     attaching a fresh arena. If neither applies the exhaustion is hard —
     no pool-side event can produce a slot; only another thread spilling
     its magazines can. *)
  let rec alloc_slow t ~tid l =
    if try_refill t l then begin
      let id = take t ~tid l in
      if id >= 0 then id else alloc_slow t ~tid l
    end
    else begin
      let progressed =
        (Atomic.get t.draining >= 0 && cancel_shrink t) || try_grow t
      in
      if progressed then alloc_slow t ~tid l
      else begin
        (* Strictly [drain_idle]: a detach mid-completion ([drain_sealed])
           is about to lower [attached], after which a grow can satisfy
           the retry — still a transient exhaustion. *)
        l.last_hard <-
          t.max_arenas > 1
          && Atomic.get t.attached >= t.max_arenas
          && (not (Atomic.get t.growing))
          && Atomic.get t.draining = drain_idle;
        raise Exhausted
      end
    end

  (** Pop a free slot for thread [tid]; refills a whole chain from an
      arena stack when both local magazines are empty, attaching a fresh
      arena when below [max_arenas]. Raises {!Exhausted} if no slot is
      reachable. *)
  let alloc t ~tid =
    let l = t.locals.(tid) in
    if l.head < 0 then begin
      Mp_util.Fault.hit ~tid Mp_util.Fault.Mempool_refill;
      alloc_slow t ~tid l
    end
    else begin
      let id = take t ~tid l in
      if id >= 0 then id else alloc_slow t ~tid l
    end

  (** Non-raising {!alloc}: [None] when no slot is reachable, so callers
      can degrade into backpressure (retry with backoff, count the stall)
      instead of unwinding. *)
  let alloc_opt t ~tid = match alloc t ~tid with id -> Some id | exception Exhausted -> None

  (** Was this thread's last {!Exhausted} (or [None]) a {e hard}
      exhaustion — the pool at [max_arenas] with no grow or drain in
      flight, so waiting out a backoff schedule cannot be satisfied by an
      arena attach? Always false for fixed-size ([max_arenas = 1]) pools,
      whose exhaustion has always been backpressure (slots may be hiding
      in other threads' magazines). Callers use it to fail fast to an
      out-of-memory reply instead of burning the full retry budget. *)
  let last_alloc_hard t ~tid = t.locals.(tid).last_hard

  (** Return slot [id] to thread [tid]'s free lists. A full active
      magazine rotates into the spare; a displaced full spare is spilled
      to its arena's stack as one chain (a single CAS per [fair_share]
      frees on the chained path). A slot of a draining arena leaves
      circulation instead of entering the magazine. *)
  let free t ~tid id =
    let a = arena_of t id in
    let off = off_of t id in
    assert (a.state.(off) <> state_free);
    record_history id "free";
    a.state.(off) <- state_free;
    a.incarnation.(off) <- a.incarnation.(off) + 1;
    Mp_util.Striped_counter.incr t.frees ~tid;
    let l = t.locals.(tid) in
    l.live <- l.live - 1;
    if t.elastic && drain_arena (Atomic.get t.draining) = id lsr t.off_bits then park t a id
    else begin
      if l.count >= t.fair_share then begin
        if l.spare_head >= 0 then begin
          Mp_util.Fault.hit ~tid Mp_util.Fault.Mempool_spill;
          spill t l ~head:l.spare_head ~tail:l.spare_tail ~len:l.spare_count
            ~tag:l.spare_arena
        end;
        l.spare_head <- l.head;
        l.spare_count <- l.count;
        l.spare_tail <- l.tail;
        l.spare_arena <- l.arena;
        l.head <- -1;
        l.count <- 0;
        l.tail <- -1;
        l.arena <- tag_none
      end;
      a.stack_next.(off) <- l.head;
      if l.head < 0 then begin
        l.tail <- id;
        l.arena <- id lsr t.off_bits
      end
      else if l.arena <> id lsr t.off_bits then l.arena <- tag_mixed;
      l.head <- id;
      l.count <- l.count + 1
    end

  (** Return thread [tid]'s magazines to shared circulation. For a worker
      that is exiting: a drain cannot complete while free slots of the
      draining arena sit in a magazine no thread will ever pop again.
      Owner-only discipline — call it from the exiting thread itself, or
      from a successor strictly after the owner stopped (e.g. after
      joining its domain). Idempotent. *)
  let release_local t ~tid =
    let l = t.locals.(tid) in
    if l.head >= 0 then begin
      spill t l ~head:l.head ~tail:l.tail ~len:l.count ~tag:l.arena;
      l.head <- -1;
      l.count <- 0;
      l.tail <- -1;
      l.arena <- tag_none
    end;
    if l.spare_head >= 0 then begin
      spill t l ~head:l.spare_head ~tail:l.spare_tail ~len:l.spare_count ~tag:l.spare_arena;
      l.spare_head <- -1;
      l.spare_count <- 0;
      l.spare_tail <- -1;
      l.spare_arena <- tag_none
    end

  (* -- metadata accessors ------------------------------------------------ *)

  let[@inline] state t id = (arena_of t id).state.(off_of t id)
  let[@inline] is_free t id = state t id = state_free

  let mark_retired t id =
    assert (state t id = state_live);
    record_history id "retire";
    (arena_of t id).state.(off_of t id) <- state_retired

  let[@inline] index t id = (arena_of t id).index.(off_of t id)
  let set_index t id v = (arena_of t id).index.(off_of t id) <- v
  let[@inline] birth t id = (arena_of t id).birth.(off_of t id)
  let set_birth t id v = (arena_of t id).birth.(off_of t id) <- v
  let[@inline] death t id = (arena_of t id).death.(off_of t id)
  let set_death t id v = (arena_of t id).death.(off_of t id) <- v
  let[@inline] incarnation t id = (arena_of t id).incarnation.(off_of t id)

  (** Canonical (unmarked) handle for slot [id], embedding the top 16 bits
      of its MP index. *)
  let handle t id =
    Handle.make ~inc:(incarnation t id) ~id ~idx16:(Handle.idx16_of_index (index t id)) ~mark:0
      ()

  (** Record a use-after-free access to slot [id] if it is free. *)
  let[@inline] note_access t id =
    if t.check_access && state t id = state_free then begin
      Atomic.incr t.violations;
      if !trap_on_violation then begin
        (match Hashtbl.find_opt history id with
        | Some h -> prerr_endline h
        | None -> ());
        raise (Use_after_free id)
      end
    end

  (* -- statistics -------------------------------------------------------- *)

  let violations t = Atomic.get t.violations
  let alloc_count t = Mp_util.Striped_counter.sum t.allocs
  let free_count t = Mp_util.Striped_counter.sum t.frees

  (* Derived rather than its own striped counter: one fewer atomic RMW on
     both hot paths, and the sampler's read stays well-defined (both
     addends are atomic sums). *)
  let live_count t = alloc_count t - free_count t

  (** High-water mark of the live count, maintained on the alloc path so
      peaks between sampler ticks are visible. Summed over per-thread
      peaks: never under the true peak. *)
  let live_peak t = Mp_util.Striped_counter.sum t.live_peak

  (* -- testing hooks ----------------------------------------------------- *)

  (* The debug chain hooks address arena 0 — the arena the original
     single-stack invariants (ABA tagging, top-word monotonicity) are
     stated over. *)
  let debug_top_word t = Atomic.get t.arenas.(0).top

  let debug_pop_chain t =
    let a = t.arenas.(0) in
    let head = arena_pop_chain t a in
    if head < 0 then None
    else Some (head, a.chain_tail.(off_of t head), a.chain_len.(off_of t head))

  let debug_push_chain t ~head ~tail ~len = arena_push_chain t t.arenas.(0) ~head ~tail ~len
  let debug_next_free t id = (arena_of t id).stack_next.(off_of t id)
end

(* Payloads are per arena, attached and dropped through the Core hooks.
   [payloads.(k)] is published before arena [k]'s slots are pushed (the
   stack CAS pair orders the plain stores), and emptied at detach: a
   use-after-free into a detached arena therefore raises — the honest
   analog of dereferencing an unmapped page. *)
type 'a t = {
  core : Core.t;
  payloads : 'a array array;
  off_bits : int;
  off_mask : int;
}

let create ~capacity ~threads ?(transfer = Chained) ?fair_share ?(check_access = false)
    ?(max_arenas = 1) make_payload =
  let core =
    Core.create ~capacity ~threads ~transfer ?fair_share ~check_access ~max_arenas ()
  in
  let off_bits = Core.off_bits core in
  let payloads = Array.make max_arenas [||] in
  payloads.(0) <- Array.init capacity make_payload;
  Core.set_grow_hook core (fun k ->
      if Array.length payloads.(k) = 0 then begin
        let base = k lsl off_bits in
        payloads.(k) <- Array.init capacity (fun off -> make_payload (base + off))
      end);
  Core.set_detach_hook core (fun k -> payloads.(k) <- [||]);
  { core; payloads; off_bits; off_mask = (1 lsl off_bits) - 1 }

let core t = t.core
let capacity t = Core.capacity t.core

(** Payload of slot [id]. With [check_access], accessing a free slot is
    recorded as a use-after-free violation (the access still returns the
    stale payload, as real hardware would — unless the slot's arena was
    detached, in which case the "page" is gone and the access raises). *)
let[@inline] get t id =
  Core.note_access t.core id;
  t.payloads.(id lsr t.off_bits).(id land t.off_mask)

let[@inline] unsafe_get t id = t.payloads.(id lsr t.off_bits).(id land t.off_mask)

let alloc t ~tid = Core.alloc t.core ~tid
let alloc_opt t ~tid = Core.alloc_opt t.core ~tid
let free t ~tid id = Core.free t.core ~tid id
let handle t id = Core.handle t.core id
let violations t = Core.violations t.core
let live_count t = Core.live_count t.core
let live_peak t = Core.live_peak t.core
