(** Manual-memory node pool.

    OCaml is garbage-collected, so this pool simulates the C/C++ manual
    memory management environment the SMR problem lives in: node payloads
    are pre-allocated once, [alloc] hands out slot ids, and [free] makes a
    slot reusable. A freed slot that is still reachable through a stale
    reference is exactly a use-after-free; with [check_access] enabled,
    every payload access verifies the slot is not free and counts
    violations, turning silent memory corruption into a measurable signal.

    The pool is split in two layers. {!Core} is payload-agnostic: slot
    life-cycle state, free lists, and the per-node metadata words SMR
    schemes need (MP index, birth and death epochs) — mirroring the paper's
    practice of reserving extra space during node allocation. ['a t] adds
    the client data structure's node payloads on top.

    Allocation is thread-partitioned for scalability: each thread owns two
    private free-list magazines (no synchronization) and exchanges whole
    [fair_share]-length chains with a global lock-free stack of chains
    whose top word carries an ABA version tag. A spill publishes an entire
    chain with one CAS and a refill claims one with one CAS — magazine
    batching in the style of Blelloch & Wei's constant-time fixed-size
    allocator — instead of one CAS per slot. Slots are linked through side
    arrays, so free lists and chains allocate nothing. The legacy per-slot
    transfer survives as [Per_slot] (chains of length one) so the batching
    win stays measurable (`bench/main.exe pipe`). *)

exception Exhausted

(* Slot life cycle; single-word ints, so reads cannot tear. *)
let state_free = 0
let state_live = 1
let state_retired = 2

(** Granularity of traffic through the global free list: [Chained] moves
    whole [fair_share]-length chains per CAS; [Per_slot] is the legacy
    one-CAS-per-slot Treiber stack, kept for comparison benchmarks. *)
type transfer = Chained | Per_slot

module Core = struct
  (* Per-thread free lists: an active magazine ([head]) that alloc pops
     and free pushes, plus a full spare magazine that delays the global
     round-trip. Rotating a full active list into the spare keeps its
     (head, tail, count) known, so spilling it later is a single chain
     push — no walk, no per-slot CAS. The trailing [pad_] fields fatten
     the record past a cache line (per-stripe dummy fields idiom,
     {!Mp_util.Padding}) so neighbouring threads' records cannot
     false-share under the stats sampler. *)
  type local = {
    mutable head : int; (* active magazine, -1 = empty *)
    mutable count : int;
    mutable tail : int; (* last slot of the active magazine, -1 when empty *)
    mutable spare_head : int; (* full spare magazine, -1 = none *)
    mutable spare_count : int;
    mutable spare_tail : int;
    mutable pad_0 : int;
    mutable pad_1 : int;
    mutable pad_2 : int;
  }

  type t = {
    capacity : int;
    threads : int;
    transfer : transfer;
    state : int array;
    index : int array; (* 32-bit MP index *)
    birth : int array; (* birth epoch *)
    death : int array; (* retirement epoch *)
    incarnation : int array; (* bumped on every free; detects slot reuse *)
    stack_next : int array; (* intra-chain free-list links, -1 terminated *)
    chain_next : int array; (* by chain head: next chain in the global stack *)
    chain_len : int array; (* by chain head: slots in this chain *)
    chain_tail : int array; (* by chain head: last slot of this chain *)
    global_top : int Atomic.t; (* (version << 33) lor (head + 1); 0 in low bits = empty *)
    locals : local array;
    fair_share : int; (* magazine size: chain length and overflow trigger *)
    check_access : bool;
    violations : int Atomic.t;
    allocs : Mp_util.Striped_counter.t;
    frees : Mp_util.Striped_counter.t;
    live_peak : Mp_util.Striped_counter.t;
        (* per-thread high-water mark of (allocs - frees); the summed
           peak is a conservative upper bound on the true peak live
           count (see [live_peak] below) *)
  }

  let id_plus1_mask = (1 lsl 33) - 1
  let top_pack ~version ~id_plus1 = (version lsl 33) lor id_plus1
  let top_id_plus1 top = top land id_plus1_mask
  let top_version top = top lsr 33

  (* -- global stack of chains (version-tagged against ABA) --------------- *)

  (* A chain is a [stack_next]-linked slot list, [head] through [tail]
     (whose link is -1), with its length and tail memoized at the head.
     Pushing or popping one is a single CAS on the tagged top word
     regardless of length. *)

  let rec global_push_chain t ~head ~tail ~len =
    let top = Atomic.get t.global_top in
    t.chain_next.(head) <- top_id_plus1 top - 1;
    t.chain_len.(head) <- len;
    t.chain_tail.(head) <- tail;
    let top' = top_pack ~version:(top_version top + 1) ~id_plus1:(head + 1) in
    if not (Atomic.compare_and_set t.global_top top top') then
      global_push_chain t ~head ~tail ~len

  (* Pop a whole chain; returns its head or -1. [chain_len]/[chain_tail]
     at the head stay valid for the winner: they are only rewritten by the
     next push of that head, which requires winning it first. Reading
     [chain_next] of a head another thread already claimed may yield a
     stale link, but then the top word moved and the CAS fails. *)
  let rec global_pop_chain t =
    let top = Atomic.get t.global_top in
    let head_plus1 = top_id_plus1 top in
    if head_plus1 = 0 then -1
    else begin
      let head = head_plus1 - 1 in
      let next = t.chain_next.(head) in
      let top' = top_pack ~version:(top_version top + 1) ~id_plus1:(next + 1) in
      if Atomic.compare_and_set t.global_top top top' then head else global_pop_chain t
    end

  (* Spill a fully-known chain: one CAS when chained, one per slot in the
     legacy mode (each slot becomes a length-1 chain). *)
  let spill t ~head ~tail ~len =
    match t.transfer with
    | Chained -> global_push_chain t ~head ~tail ~len
    | Per_slot ->
      let id = ref head in
      while !id >= 0 do
        let next = t.stack_next.(!id) in
        t.stack_next.(!id) <- -1;
        global_push_chain t ~head:!id ~tail:!id ~len:1;
        id := next
      done

  (** When set, a detected use-after-free raises instead of counting, so
      tests can pinpoint the offending access (set via MP_TRAP_UAF=1). *)
  let trap_on_violation =
    ref (match Sys.getenv_opt "MP_TRAP_UAF" with Some ("1" | "true") -> true | _ -> false)

  exception Use_after_free of int

  (* Debug-only: remember who retired/freed each slot last, so a trapped
     use-after-free can print the other side of the race. *)
  let history : (int, string) Hashtbl.t = Hashtbl.create 64
  let history_lock = Mutex.create ()

  let record_history id what =
    if !trap_on_violation then begin
      let bt = Printexc.get_callstack 12 in
      Mutex.lock history_lock;
      Hashtbl.replace history id
        (Printf.sprintf "--- last %s of slot %d ---\n%s" what id
           (Printexc.raw_backtrace_to_string bt));
      Mutex.unlock history_lock
    end

  let create ~capacity ~threads ?(transfer = Chained) ?fair_share ?(check_access = false) () =
    if capacity > Handle.max_id then invalid_arg "Mempool.create: capacity too large";
    if capacity < threads then invalid_arg "Mempool.create: capacity < threads";
    let fair_share =
      match fair_share with
      | Some f when f >= 1 -> f
      | Some _ -> invalid_arg "Mempool.create: fair_share must be positive"
      | None -> max 64 (capacity / (threads * 2))
    in
    let t =
      {
        capacity;
        threads;
        transfer;
        state = Array.make capacity state_free;
        index = Array.make capacity 0;
        birth = Array.make capacity 0;
        death = Array.make capacity 0;
        incarnation = Array.make capacity 0;
        stack_next = Array.make capacity (-1);
        chain_next = Array.make capacity (-1);
        chain_len = Array.make capacity 0;
        chain_tail = Array.make capacity (-1);
        global_top = Atomic.make (top_pack ~version:0 ~id_plus1:0);
        locals =
          Array.init threads (fun _ ->
              {
                head = -1;
                count = 0;
                tail = -1;
                spare_head = -1;
                spare_count = 0;
                spare_tail = -1;
                pad_0 = 0;
                pad_1 = 0;
                pad_2 = 0;
              });
        fair_share;
        check_access;
        violations = Atomic.make 0;
        allocs = Mp_util.Striped_counter.create ~threads;
        frees = Mp_util.Striped_counter.create ~threads;
        live_peak = Mp_util.Striped_counter.create ~threads;
      }
    in
    (* Seed each local free list with its fair share; everything else goes
       to the global stack — as fair_share-length chains — so any thread
       can reach it. A slot parked in another thread's local magazines is
       still unreachable until that thread spills, so [Exhausted] is a
       per-thread-visibility condition, not a global-emptiness one. *)
    let seeded = ref 0 in
    let chain_head = ref (-1) and chain_tail = ref (-1) and chain_len = ref 0 in
    let chain_cap = match transfer with Chained -> fair_share | Per_slot -> 1 in
    let flush_chain () =
      if !chain_len > 0 then begin
        global_push_chain t ~head:!chain_head ~tail:!chain_tail ~len:!chain_len;
        chain_head := -1;
        chain_tail := -1;
        chain_len := 0
      end
    in
    for id = capacity - 1 downto 0 do
      let l = t.locals.(!seeded mod threads) in
      if l.count < t.fair_share && !seeded < threads * t.fair_share then begin
        t.stack_next.(id) <- l.head;
        if l.head < 0 then l.tail <- id;
        l.head <- id;
        l.count <- l.count + 1;
        incr seeded
      end
      else begin
        t.stack_next.(id) <- !chain_head;
        if !chain_head < 0 then chain_tail := id;
        chain_head := id;
        incr chain_len;
        if !chain_len >= chain_cap then flush_chain ()
      end
    done;
    flush_chain ();
    t

  let capacity t = t.capacity
  let threads t = t.threads
  let fair_share t = t.fair_share

  (* -- alloc / free ------------------------------------------------------ *)

  (* Make the active magazine non-empty: promote the spare, else claim a
     whole chain from the global stack (one CAS). False when both local
     magazines and the global stack are empty. *)
  let try_refill t l =
    if l.spare_head >= 0 then begin
      l.head <- l.spare_head;
      l.count <- l.spare_count;
      l.tail <- l.spare_tail;
      l.spare_head <- -1;
      l.spare_count <- 0;
      l.spare_tail <- -1;
      true
    end
    else begin
      let head = global_pop_chain t in
      if head < 0 then false
      else begin
        l.head <- head;
        l.count <- t.chain_len.(head);
        l.tail <- t.chain_tail.(head);
        true
      end
    end

  (* Pop the head of a non-empty active magazine and mark it live. *)
  let take t ~tid l =
    let id = l.head in
    l.head <- t.stack_next.(id);
    l.count <- l.count - 1;
    if l.head < 0 then l.tail <- -1;
    assert (t.state.(id) = state_free);
    t.state.(id) <- state_live;
    t.index.(id) <- 0;
    Mp_util.Striped_counter.incr t.allocs ~tid;
    (* Live count can only rise on an alloc, so this is the one place
       the high-water mark needs lifting. The per-tid difference may go
       negative (slots are freed by the retiring thread, not always the
       allocating one); the peak stripe floors at 0 and the sum of
       stripe peaks still dominates every instantaneous global live
       count — the right direction for a capacity ceiling. *)
    Mp_util.Striped_counter.max_to t.live_peak ~tid
      (Mp_util.Striped_counter.get t.allocs ~tid - Mp_util.Striped_counter.get t.frees ~tid);
    id

  (** Pop a free slot for thread [tid]; refills a whole chain from the
      global stack when both local magazines are empty. Raises
      {!Exhausted} if no slot is reachable. *)
  let alloc t ~tid =
    let l = t.locals.(tid) in
    if l.head < 0 then begin
      Mp_util.Fault.hit ~tid Mp_util.Fault.Mempool_refill;
      if not (try_refill t l) then raise Exhausted
    end;
    take t ~tid l

  (** Non-raising {!alloc}: [None] when no slot is reachable, so callers
      can degrade into backpressure (retry with backoff, count the stall)
      instead of unwinding. *)
  let alloc_opt t ~tid =
    let l = t.locals.(tid) in
    if l.head < 0 then begin
      Mp_util.Fault.hit ~tid Mp_util.Fault.Mempool_refill;
      if not (try_refill t l) then None else Some (take t ~tid l)
    end
    else Some (take t ~tid l)

  (** Return slot [id] to thread [tid]'s free lists. A full active
      magazine rotates into the spare; a displaced full spare is spilled
      to the global stack as one chain (a single CAS per [fair_share]
      frees on the chained path). *)
  let free t ~tid id =
    assert (t.state.(id) <> state_free);
    record_history id "free";
    t.state.(id) <- state_free;
    t.incarnation.(id) <- t.incarnation.(id) + 1;
    Mp_util.Striped_counter.incr t.frees ~tid;
    let l = t.locals.(tid) in
    if l.count >= t.fair_share then begin
      if l.spare_head >= 0 then begin
        Mp_util.Fault.hit ~tid Mp_util.Fault.Mempool_spill;
        spill t ~head:l.spare_head ~tail:l.spare_tail ~len:l.spare_count
      end;
      l.spare_head <- l.head;
      l.spare_count <- l.count;
      l.spare_tail <- l.tail;
      l.head <- -1;
      l.count <- 0;
      l.tail <- -1
    end;
    t.stack_next.(id) <- l.head;
    if l.head < 0 then l.tail <- id;
    l.head <- id;
    l.count <- l.count + 1

  (* -- metadata accessors ------------------------------------------------ *)

  let[@inline] state t id = t.state.(id)
  let[@inline] is_free t id = t.state.(id) = state_free

  let mark_retired t id =
    assert (t.state.(id) = state_live);
    record_history id "retire";
    t.state.(id) <- state_retired

  let[@inline] index t id = t.index.(id)
  let set_index t id v = t.index.(id) <- v
  let[@inline] birth t id = t.birth.(id)
  let set_birth t id v = t.birth.(id) <- v
  let[@inline] death t id = t.death.(id)
  let set_death t id v = t.death.(id) <- v
  let[@inline] incarnation t id = t.incarnation.(id)

  (** Canonical (unmarked) handle for slot [id], embedding the top 16 bits
      of its MP index. *)
  let handle t id =
    Handle.make ~inc:t.incarnation.(id) ~id ~idx16:(Handle.idx16_of_index t.index.(id))
      ~mark:0 ()

  (** Record a use-after-free access to slot [id] if it is free. *)
  let[@inline] note_access t id =
    if t.check_access && t.state.(id) = state_free then begin
      Atomic.incr t.violations;
      if !trap_on_violation then begin
        (match Hashtbl.find_opt history id with
        | Some h -> prerr_endline h
        | None -> ());
        raise (Use_after_free id)
      end
    end

  (* -- statistics -------------------------------------------------------- *)

  let violations t = Atomic.get t.violations
  let alloc_count t = Mp_util.Striped_counter.sum t.allocs
  let free_count t = Mp_util.Striped_counter.sum t.frees

  (* Derived rather than its own striped counter: one fewer atomic RMW on
     both hot paths, and the sampler's read stays well-defined (both
     addends are atomic sums). *)
  let live_count t = alloc_count t - free_count t

  (** High-water mark of the live count, maintained on the alloc path so
      peaks between sampler ticks are visible. Summed over per-thread
      peaks: never under the true peak. *)
  let live_peak t = Mp_util.Striped_counter.sum t.live_peak

  (* -- testing hooks ----------------------------------------------------- *)

  let debug_top_word t = Atomic.get t.global_top

  let debug_pop_chain t =
    let head = global_pop_chain t in
    if head < 0 then None else Some (head, t.chain_tail.(head), t.chain_len.(head))

  let debug_push_chain t ~head ~tail ~len = global_push_chain t ~head ~tail ~len
  let debug_next_free t id = t.stack_next.(id)
end

type 'a t = {
  core : Core.t;
  payload : 'a array;
}

let create ~capacity ~threads ?(transfer = Chained) ?fair_share ?(check_access = false)
    make_payload =
  let core = Core.create ~capacity ~threads ~transfer ?fair_share ~check_access () in
  { core; payload = Array.init capacity make_payload }

let core t = t.core
let capacity t = t.core.Core.capacity

(** Payload of slot [id]. With [check_access], accessing a free slot is
    recorded as a use-after-free violation (the access still returns the
    stale payload, as real hardware would). *)
let[@inline] get t id =
  Core.note_access t.core id;
  t.payload.(id)

let[@inline] unsafe_get t id = t.payload.(id)

let alloc t ~tid = Core.alloc t.core ~tid
let alloc_opt t ~tid = Core.alloc_opt t.core ~tid
let free t ~tid id = Core.free t.core ~tid id
let handle t id = Core.handle t.core id
let violations t = Core.violations t.core
let live_count t = Core.live_count t.core
let live_peak t = Core.live_peak t.core
