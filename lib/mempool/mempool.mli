(** Manual-memory node pool — the substrate that makes the SMR problem
    real in a garbage-collected language. Payloads are pre-allocated;
    [alloc]/[free] recycle slot ids; with [check_access] armed, touching a
    freed slot's payload is recorded (or trapped) as a use-after-free.
    Thread-local free-list magazines exchange whole [fair_share]-length
    chains with per-arena free lists in one CAS each way.

    Memory is elastic: up to [max_arenas] fixed-size arenas of [capacity]
    slots each, a slot's id being [(arena lsl off_bits) lor offset] (see
    {!Handle.arena_of_id}). Exhaustion below [max_arenas] attaches a fresh
    arena online; an idle arena is drained (its slots routed out of
    circulation) and detached through the SMR layer once no reservation
    can reach it ({!Smr_core.Detach}). With the default [max_arenas = 1]
    the pool is exactly the fixed-size pool of earlier revisions. See the
    implementation header and [docs/mempool.md] for the full design. *)

exception Exhausted

(** Slot life-cycle states. *)
val state_free : int

val state_live : int
val state_retired : int

(** Granularity of traffic through the arena free lists: [Chained]
    (default) moves whole [fair_share]-length chains with one CAS;
    [Per_slot] is the legacy one-CAS-per-slot Treiber stack, kept so the
    batching win stays measurable. *)
type transfer = Chained | Per_slot

(** Payload-agnostic layer: slot states, free lists, arena lifecycle and
    the per-node metadata words SMR schemes piggyback on nodes (MP index,
    birth and death epochs). *)
module Core : sig
  type t

  exception Use_after_free of int

  (** When true (or [MP_TRAP_UAF=1]), a detected use-after-free raises
      {!Use_after_free} instead of only counting. *)
  val trap_on_violation : bool ref

  (** [?fair_share] overrides the magazine/chain size (default
      [max 64 (capacity / (threads * 2))]). [?max_arenas] (default 1)
      bounds online growth; [capacity] is the per-arena slot count. *)
  val create :
    capacity:int ->
    threads:int ->
    ?transfer:transfer ->
    ?fair_share:int ->
    ?check_access:bool ->
    ?max_arenas:int ->
    unit ->
    t

  val capacity : t -> int
  val threads : t -> int

  (** Magazine size: the chain length moved per global CAS. *)
  val fair_share : t -> int

  (** {2 Arena geometry and elasticity} *)

  (** Width of the offset field: a slot id is
      [(arena lsl off_bits) lor offset]. *)
  val off_bits : t -> int

  (** Growth bound given at {!create} (1 = fixed-size pool). *)
  val max_arenas : t -> int

  (** Arenas currently attached (ids [0, attached_arenas)). *)
  val attached_arenas : t -> int

  (** Cumulative count of arena attaches beyond the initial arena. *)
  val arenas_attached : t -> int

  (** Cumulative count of completed arena detaches. *)
  val arenas_detached : t -> int

  (** Slots of currently attached arenas
      ([attached_arenas * capacity]). *)
  val resident_slots : t -> int

  (** Slots of the draining arena already routed out of circulation
      (counts as wasted memory until the detach completes); 0 when no
      drain is in flight. *)
  val detaching_slots : t -> int

  (** Start draining the highest attached arena: its free slots leave
      circulation as they surface, and once all of them have, the SMR
      layer may complete the detach ({!detach_ready} →
      {!complete_detach}). Arena 0 never detaches. Returns the elected
      arena's index; [None] if the pool cannot shrink now (single arena,
      a drain already in flight, or a grow holds the election lock). *)
  val request_shrink : t -> int option

  (** Abort an in-flight drain, returning parked slots to circulation.
      Allocation pressure calls this automatically (a spike mid-shrink
      wins). False if no drain was in flight or the detach already
      entered completion. *)
  val cancel_shrink : t -> bool

  (** [(token, base, size)] of the draining arena once every one of its
      slots is parked — the point at which the SMR quiescence protocol
      may start; [None] before that. The token names this particular
      drain (generation + arena, see {!drain_arena}); stamping and
      completion take it back, so evidence gathered under one drain can
      never complete a later drain of the same arena. *)
  val detach_ready : t -> (int * int * int) option

  (** Arena index carried by a drain token; -1 for the non-drain words. *)
  val drain_arena : int -> int

  (** Epoch stamp recorded for [token]'s grace period; -1 until a scheme
      stamps it via {!set_detach_stamp} (first writer wins, once per
      drain). A stamp recorded under a different token reads as unset. *)
  val detach_stamp : t -> token:int -> int

  val set_detach_stamp : t -> token:int -> int -> unit

  (** Unmap the drained arena named by [token] (payloads and free-list
      arrays dropped; the metadata shim persists so stale handles keep
      failing validation). To be called by the SMR layer only, after its
      quiescence check passed against [token]'s stamp. False if the drain
      was cancelled concurrently or [token] no longer names the current
      drain. *)
  val complete_detach : t -> int -> bool

  (** Payload attach/drop callbacks, installed by the ['a t] layer.
      [grow_hook k] runs before arena [k]'s slots are published;
      [detach_hook k] runs as arena [k] is unmapped. *)
  val set_grow_hook : t -> (int -> unit) -> unit

  val set_detach_hook : t -> (int -> unit) -> unit

  (** Pop a free slot for [tid]; raises {!Exhausted} when neither the
      thread's local magazines nor any reachable arena stack has one
      (attaching a fresh arena first when below [max_arenas]). *)
  val alloc : t -> tid:int -> int

  (** Non-raising {!alloc}: [None] when no slot is reachable, so callers
      can degrade into backpressure (retry with backoff, count the
      stall) instead of unwinding through {!Exhausted}. *)
  val alloc_opt : t -> tid:int -> int option

  (** Was [tid]'s last exhaustion {e hard} — the pool at [max_arenas]
      with no grow or drain in flight, so backoff cannot be satisfied by
      an arena attach? Always false for [max_arenas = 1] pools, whose
      exhaustion is plain backpressure. Callers use it to fail fast to
      an out-of-memory reply instead of burning the retry budget. *)
  val last_alloc_hard : t -> tid:int -> bool

  (** Return a slot; spills a full spare magazine to its arena's chain
      stack when both local magazines fill up. *)
  val free : t -> tid:int -> int -> unit

  (** Return [tid]'s magazines to shared circulation — for an exiting
      worker: a drain cannot complete while free slots of the draining
      arena sit in a magazine no thread will ever pop again. Call from
      the exiting thread itself, or from a successor strictly after the
      owner stopped (e.g. after joining its domain). Idempotent. *)
  val release_local : t -> tid:int -> unit

  val state : t -> int -> int
  val is_free : t -> int -> bool

  (** Live → Retired transition (asserts the slot was live). *)
  val mark_retired : t -> int -> unit

  val index : t -> int -> int
  val set_index : t -> int -> int -> unit
  val birth : t -> int -> int
  val set_birth : t -> int -> int -> unit
  val death : t -> int -> int
  val set_death : t -> int -> int -> unit

  (** Reuse counter of the slot; embedded in handles as the ABA tag. *)
  val incarnation : t -> int -> int

  (** Canonical unmarked handle for a slot (id, idx16 of its index,
      current incarnation). *)
  val handle : t -> int -> Handle.t

  (** Record (and possibly trap) a use-after-free if the slot is free. *)
  val note_access : t -> int -> unit

  val violations : t -> int
  val live_count : t -> int

  (** High-water mark of {!live_count}, maintained on the alloc path so
      peaks between sampler ticks are visible. Summed over per-thread
      peaks — a conservative (never-under) bound on the true peak. *)
  val live_peak : t -> int

  val alloc_count : t -> int
  val free_count : t -> int

  (** {2 Testing hooks}

      Direct access to arena 0's chain stack for invariant and ABA
      regression tests. Not for production use: popping a chain makes its
      slots unreachable until pushed back. *)

  (** The raw version-tagged top word. *)
  val debug_top_word : t -> int

  (** Claim one whole chain: [(head, tail, len)], or [None] if empty. *)
  val debug_pop_chain : t -> (int * int * int) option

  (** Publish a chain (its slots must be [stack_next]-linked, [tail]'s
      link -1). *)
  val debug_push_chain : t -> head:int -> tail:int -> len:int -> unit

  (** The free-list link of a slot. *)
  val debug_next_free : t -> int -> int
end

(** A pool with client payloads of type ['a] attached to each slot.
    Payloads are per arena: allocated when an arena attaches, dropped
    when it detaches (after which accessing a slot of that arena raises —
    the analog of touching an unmapped page; the SMR detach gate makes
    such slots unreachable from correct clients). *)
type 'a t

(** [create ~capacity ~threads ?transfer ?fair_share ?check_access
    ?max_arenas make_payload] pre-allocates arena 0's [capacity] payloads
    with [make_payload slot_id]; later arenas allocate theirs on
    attach. *)
val create :
  capacity:int ->
  threads:int ->
  ?transfer:transfer ->
  ?fair_share:int ->
  ?check_access:bool ->
  ?max_arenas:int ->
  (int -> 'a) ->
  'a t

val core : 'a t -> Core.t
val capacity : 'a t -> int

(** Payload access with use-after-free detection. *)
val get : 'a t -> int -> 'a

(** Payload access without the check (for code that provably touches only
    live or self-retired slots, and for test forensics). *)
val unsafe_get : 'a t -> int -> 'a

val alloc : 'a t -> tid:int -> int
val alloc_opt : 'a t -> tid:int -> int option
val free : 'a t -> tid:int -> int -> unit
val handle : 'a t -> int -> Handle.t
val violations : 'a t -> int
val live_count : 'a t -> int

(** See {!Core.live_peak}. *)
val live_peak : 'a t -> int
