(** Manual-memory node pool — the substrate that makes the SMR problem
    real in a garbage-collected language. Payloads are pre-allocated;
    [alloc]/[free] recycle slot ids; with [check_access] armed, touching a
    freed slot's payload is recorded (or trapped) as a use-after-free.
    Thread-local free-list magazines exchange whole [fair_share]-length
    chains with the global free list in one CAS each way. See the
    implementation header for the full design discussion. *)

exception Exhausted

(** Slot life-cycle states. *)
val state_free : int

val state_live : int
val state_retired : int

(** Granularity of traffic through the global free list: [Chained]
    (default) moves whole [fair_share]-length chains with one CAS;
    [Per_slot] is the legacy one-CAS-per-slot Treiber stack, kept so the
    batching win stays measurable. *)
type transfer = Chained | Per_slot

(** Payload-agnostic layer: slot states, free lists and the per-node
    metadata words SMR schemes piggyback on nodes (MP index, birth and
    death epochs). *)
module Core : sig
  type t

  exception Use_after_free of int

  (** When true (or [MP_TRAP_UAF=1]), a detected use-after-free raises
      {!Use_after_free} instead of only counting. *)
  val trap_on_violation : bool ref

  (** [?fair_share] overrides the magazine/chain size (default
      [max 64 (capacity / (threads * 2))]). *)
  val create :
    capacity:int ->
    threads:int ->
    ?transfer:transfer ->
    ?fair_share:int ->
    ?check_access:bool ->
    unit ->
    t

  val capacity : t -> int
  val threads : t -> int

  (** Magazine size: the chain length moved per global CAS. *)
  val fair_share : t -> int

  (** Pop a free slot for [tid]; raises {!Exhausted} when neither the
      thread's local magazines nor the global chain stack has one. *)
  val alloc : t -> tid:int -> int

  (** Non-raising {!alloc}: [None] when no slot is reachable, so callers
      can degrade into backpressure (retry with backoff, count the
      stall) instead of unwinding through {!Exhausted}. *)
  val alloc_opt : t -> tid:int -> int option

  (** Return a slot; spills a full spare magazine to the global chain
      stack when both local magazines fill up. *)
  val free : t -> tid:int -> int -> unit

  val state : t -> int -> int
  val is_free : t -> int -> bool

  (** Live → Retired transition (asserts the slot was live). *)
  val mark_retired : t -> int -> unit

  val index : t -> int -> int
  val set_index : t -> int -> int -> unit
  val birth : t -> int -> int
  val set_birth : t -> int -> int -> unit
  val death : t -> int -> int
  val set_death : t -> int -> int -> unit

  (** Reuse counter of the slot; embedded in handles as the ABA tag. *)
  val incarnation : t -> int -> int

  (** Canonical unmarked handle for a slot (id, idx16 of its index,
      current incarnation). *)
  val handle : t -> int -> Handle.t

  (** Record (and possibly trap) a use-after-free if the slot is free. *)
  val note_access : t -> int -> unit

  val violations : t -> int
  val live_count : t -> int

  (** High-water mark of {!live_count}, maintained on the alloc path so
      peaks between sampler ticks are visible. Summed over per-thread
      peaks — a conservative (never-under) bound on the true peak. *)
  val live_peak : t -> int

  val alloc_count : t -> int
  val free_count : t -> int

  (** {2 Testing hooks}

      Direct access to the global chain stack for invariant and ABA
      regression tests. Not for production use: popping a chain makes its
      slots unreachable until pushed back. *)

  (** The raw version-tagged top word. *)
  val debug_top_word : t -> int

  (** Claim one whole chain: [(head, tail, len)], or [None] if empty. *)
  val debug_pop_chain : t -> (int * int * int) option

  (** Publish a chain (its slots must be [stack_next]-linked, [tail]'s
      link -1). *)
  val debug_push_chain : t -> head:int -> tail:int -> len:int -> unit

  (** The free-list link of a slot. *)
  val debug_next_free : t -> int -> int
end

(** A pool with client payloads of type ['a] attached to each slot. *)
type 'a t

(** [create ~capacity ~threads ?transfer ?fair_share ?check_access
    make_payload] pre-allocates [capacity] payloads with
    [make_payload slot_id]. *)
val create :
  capacity:int ->
  threads:int ->
  ?transfer:transfer ->
  ?fair_share:int ->
  ?check_access:bool ->
  (int -> 'a) ->
  'a t

val core : 'a t -> Core.t
val capacity : 'a t -> int

(** Payload access with use-after-free detection. *)
val get : 'a t -> int -> 'a

(** Payload access without the check (for code that provably touches only
    live or self-retired slots, and for test forensics). *)
val unsafe_get : 'a t -> int -> 'a

val alloc : 'a t -> tid:int -> int
val alloc_opt : 'a t -> tid:int -> int option
val free : 'a t -> tid:int -> int -> unit
val handle : 'a t -> int -> Handle.t
val violations : 'a t -> int
val live_count : 'a t -> int

(** See {!Core.live_peak}. *)
val live_peak : 'a t -> int
