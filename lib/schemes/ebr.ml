(** Epoch-based reclamation (Fraser, 2004).

    Threads announce the global epoch when they start an operation; a node
    retired at epoch [e] is reclaimable once every active thread has
    announced an epoch newer than [e]. Reads are plain loads — EBR has the
    lowest run-time overhead of all schemes — but a single thread stalled
    mid-operation pins its announced epoch and blocks all reclamation:
    wasted memory is unbounded (EBR is not even robust).

    EBR announces through the {!Smr_core.Epoch} clock rather than a slot
    table, so only the retire-side {!Smr_core.Reclaimer} half of the
    kernel applies (with zero announcement slots in its threshold). *)

open Smr_core

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  epoch : Epoch.t;
  epoch_freq : int;
  threads : int;
}

type thread = {
  shared : shared;
  tid : int;
  rsv : Reclaimer.t;
  mutable alloc_count : int;
  mutable in_batch : bool;
      (* batch window: keep one epoch announcement across several ops *)
}

type t = {
  s : shared;
  per_thread : thread array;
}

let name = "ebr"

let properties =
  {
    Smr_intf.full_name = "Epoch-based reclamation";
    wasted_memory = Smr_intf.Unbounded;
    per_node_words = 1;
    self_contained = true;
    needs_per_reference_calls = false;
  }

let create ~pool ~threads (config : Config.t) =
  let config = Config.validate config in
  let counters = Counters.create ~threads in
  let s =
    {
      pool;
      counters;
      epoch = Epoch.create ~threads;
      epoch_freq = config.epoch_freq;
      threads;
    }
  in
  let threshold = Reclaimer.scan_threshold ~empty_freq:config.empty_freq ~slots:0 ~threads in
  let per_thread =
    Array.init threads (fun tid ->
        { shared = s; tid; rsv = Reclaimer.create ~pool ~counters ~tid ~threshold;
          alloc_count = 0; in_batch = false })
  in
  { s; per_thread }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid

let announce th =
  ignore (Epoch.announce th.shared.epoch ~tid:th.tid);
  Counters.on_fence th.shared.counters ~tid:th.tid;
  (* EBR's only reservation is the epoch announcement; a crash here vetoes
     every future advance — the unbounded-waste scenario of §4.4. *)
  Mp_util.Fault.hit ~tid:th.tid Mp_util.Fault.Protect_validate

let start_op th = if not th.in_batch then announce th
let end_op th = if not th.in_batch then Epoch.retire_announcement th.shared.epoch ~tid:th.tid

(* Batch window: one epoch announcement held across the whole batch.
   The announcement vetoes epoch advances for the batch's duration, so
   the window over which a batch pins memory widens with B — EBR is
   Unbounded either way, the advisory envelope just sees longer "ops". *)
let batch_enter th =
  th.in_batch <- true;
  announce th

let batch_exit th =
  th.in_batch <- false;
  Epoch.retire_announcement th.shared.epoch ~tid:th.tid

(* Fraser's advance rule: bump the global epoch only when every thread is
   either idle or has announced the current epoch. A stalled thread that
   announced an older epoch vetoes the advance — the source of EBR's
   unbounded waste. *)
let try_advance th =
  let s = th.shared in
  let current = Epoch.current s.epoch in
  let all_observed = ref true in
  for t = 0 to s.threads - 1 do
    let a = Epoch.announced s.epoch ~tid:t in
    if a <> Epoch.inactive && a < current then all_observed := false
  done;
  if !all_observed then ignore (Atomic.compare_and_set s.epoch.Epoch.global current (current + 1))

let alloc th =
  th.alloc_count <- th.alloc_count + 1;
  if th.alloc_count mod th.shared.epoch_freq = 0 then try_advance th;
  let id = Mempool.Core.alloc th.shared.pool ~tid:th.tid in
  Mempool.Core.set_birth th.shared.pool id (Epoch.current th.shared.epoch);
  id

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.shared.pool id index;
  id

let read (_ : thread) ~refno:(_ : int) link = Atomic.get link
let unprotect (_ : thread) ~refno:(_ : int) = ()
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.shared.pool id

(* A retired node is safe once its death epoch precedes every active
   thread's announced epoch (idle threads announce +inf). *)
let empty th =
  let s = th.shared in
  let min_active = Epoch.min_announced s.epoch in
  Reclaimer.scan th.rsv ~keep:(fun id -> Mempool.Core.death s.pool id >= min_active);
  (* Arena detach barrier. Stamp-and-advance the epoch at full park; the
     arena is unmappable once every active thread has announced a newer
     epoch (idle = +inf passes): such readers started after every arena
     node was unlinked and parked slots are never re-allocated, so no
     path into the arena can exist for them. The advance is what lets
     the grace period close in a read-mostly steady state — without it,
     readers keep re-announcing the stamped epoch (the clock only moves
     on retire traffic) and [min_announced > stamp] may never hold.
     Advancing without Fraser's all-observed check is safe here:
     reclamation compares death epochs against announced epochs
     directly, so a reader holding an older announcement stays counted
     in the minimum however far the clock runs ahead. *)
  Detach.poll s.pool
    ~stamp:(fun () ->
      let e = Epoch.current s.epoch in
      Epoch.advance s.epoch;
      e)
    ~quiescent:(fun ~base:_ ~size:_ ~stamp -> Epoch.min_announced s.epoch > stamp)

let retire th id =
  let s = th.shared in
  Mempool.Core.set_death s.pool id (Epoch.current s.epoch);
  Reclaimer.retire th.rsv id;
  if Reclaimer.scan_due th.rsv then begin
    try_advance th;
    empty th
  end

let flush th =
  try_advance th;
  empty th

(* Crash recovery (see {!Smr_core.Smr_intf.S.adopt}): EBR's only
   reservation is the epoch announcement, so adoption is releasing it —
   which lifts the dead thread's veto on every future advance, turning
   the §4.4 unbounded-waste scenario back into ordinary EBR. The
   advance + scan that follow drain the dead tid's retired backlog as
   its own next flush would have. One fence charged to the dead tid for
   the (counted) release write. *)
let adopt t ~tid =
  let th = t.per_thread.(tid) in
  Epoch.retire_announcement t.s.epoch ~tid;
  Counters.on_fence t.s.counters ~tid;
  th.in_batch <- false;
  try_advance th;
  empty th

let stats t = Counters.stats t.s.counters

let pinning_tids t =
  let s = t.s in
  List.filter
    (fun tid -> Epoch.announced s.epoch ~tid <> Epoch.inactive)
    (List.init s.threads Fun.id)
