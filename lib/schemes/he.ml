(** Hazard eras (Ramalhete & Correia, 2017).

    HP's interface with EBR's cheap protection: instead of publishing node
    addresses, a thread publishes the global *era* in which it accesses
    nodes. Nodes carry a birth–death era interval; a retired node is
    reclaimable when no published era falls inside its interval. Multiple
    nodes are protected by one published era as long as the global era
    does not advance, which removes most of HP's fence traffic. Robust but
    not bounded: everything alive when a thread stalls stays protected.

    Built on the {!Smr_core.Reservation}/{!Smr_core.Reclaimer} kernel:
    slots announce eras; the scan sorts the era snapshot once and asks,
    per retired node, whether any era falls in [birth, death] — a binary
    range query instead of the quadratic slot re-scan. *)

open Smr_core

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  epoch : Epoch.t;
  res : Reservation.t; (* published eras, 0 = none *)
  epoch_freq : int;
}

type thread = {
  shared : shared;
  tid : int;
  rsv : Reclaimer.t;
  snap : Reservation.snapshot;
  mutable alloc_count : int;
}

type t = {
  s : shared;
  per_thread : thread array;
}

let no_era = 0
let name = "he"

let properties =
  {
    Smr_intf.full_name = "Hazard eras";
    wasted_memory = Smr_intf.Robust;
    per_node_words = 2;
    self_contained = true;
    needs_per_reference_calls = true;
  }

let create ~pool ~threads (config : Config.t) =
  let config = Config.validate config in
  let counters = Counters.create ~threads in
  let s =
    {
      pool;
      counters;
      epoch = Epoch.create ~threads;
      res = Reservation.create ~counters ~threads ~slots:config.slots ~empty:no_era;
      epoch_freq = config.epoch_freq;
    }
  in
  let threshold =
    Reclaimer.scan_threshold ~empty_freq:config.empty_freq ~slots:config.slots ~threads
  in
  let per_thread =
    Array.init threads (fun tid ->
        {
          shared = s;
          tid;
          rsv = Reclaimer.create ~pool ~counters ~tid ~threshold;
          snap = Reservation.snapshot_create ();
          alloc_count = 0;
        })
  in
  { s; per_thread }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid
let start_op (_ : thread) = ()
let end_op th = Reservation.clear_all th.shared.res ~tid:th.tid

(* Batch window: published eras persist across the batch (the kernel
   defers clear_all), so while the era clock is quiet every read in the
   batch after the first is fence-free. *)
let batch_enter th = Reservation.batch_enter th.shared.res ~tid:th.tid
let batch_exit th = Reservation.batch_exit th.shared.res ~tid:th.tid

let alloc th =
  th.alloc_count <- th.alloc_count + 1;
  if th.alloc_count mod th.shared.epoch_freq = 0 then Epoch.advance th.shared.epoch;
  let id = Mempool.Core.alloc th.shared.pool ~tid:th.tid in
  Mempool.Core.set_birth th.shared.pool id (Epoch.current th.shared.epoch);
  id

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.shared.pool id index;
  id

(* Top-level so a read allocates no closure. *)
let rec read_loop th slot link prev_era =
  let w = Atomic.get link in
  let era = Epoch.current th.shared.epoch in
  if era = prev_era then w
  else begin
    Atomic.set slot era;
    Counters.on_fence th.shared.counters ~tid:th.tid;
    (* Era published but not yet re-validated against the clock. *)
    Mp_util.Fault.hit ~tid:th.tid Mp_util.Fault.Protect_validate;
    read_loop th slot link era
  end

(** HE's get_protected: publish the current era, re-read the link, and
    retry while the era moves. If the published era is already current the
    read is fence-free — the common case that makes HE fast. *)
let read th ~refno link =
  let slot = Reservation.slot th.shared.res ~tid:th.tid ~refno in
  (* Own-slot mirror (Relaxed): seeding the loop with the era this
     thread last published in this slot — it is the slot's only writer,
     so the plain read is exact by program order. The validation re-read
     of the clock inside [read_loop] stays SC. *)
  read_loop th slot link (Mp_util.Relaxed.get slot)

let unprotect th ~refno = Reservation.clear th.shared.res ~tid:th.tid ~refno
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.shared.pool id

(* A retired node conflicts with a published era [e] iff
   birth <= e <= death. Eras are snapshotted and sorted once per pass;
   the per-node test is a binary range query. *)
let empty th =
  let s = th.shared in
  Reservation.snapshot s.res th.snap;
  Reservation.sort th.snap;
  Reclaimer.scan th.rsv ~keep:(fun id ->
      Reservation.exists_in_range th.snap
        ~lo:(Mempool.Core.birth s.pool id)
        ~hi:(Mempool.Core.death s.pool id));
  (* Arena detach barrier. Stamp-and-advance the era clock at full park;
     the arena is unmappable once every published era postdates the
     stamp: later eras were published after every arena slot was freed,
     and a protect that published an older era re-validates against the
     moved clock before use, so a stale era cannot mature into an arena
     access. *)
  Detach.poll s.pool
    ~stamp:(fun () ->
      let e = Epoch.current s.epoch in
      Epoch.advance s.epoch;
      e)
    ~quiescent:(fun ~base:_ ~size:_ ~stamp ->
      Reservation.snapshot s.res th.snap;
      let ok = ref true in
      for i = 0 to th.snap.Reservation.len - 1 do
        if th.snap.Reservation.vals.(i) <= stamp then ok := false
      done;
      !ok)

let retire th id =
  let s = th.shared in
  Mempool.Core.set_death s.pool id (Epoch.current s.epoch);
  Reclaimer.retire th.rsv id;
  if Reclaimer.scan_due th.rsv then empty th

let flush th = empty th

(* Crash recovery (see {!Smr_core.Smr_intf.S.adopt}): quarantining the
   dead tid clears its era row — every node whose lifetime only its eras
   covered becomes reclaimable — and the scan drains its retired backlog
   as its own next [empty] would have. *)
let adopt t ~tid =
  Reservation.quarantine t.s.res ~tid;
  empty t.per_thread.(tid);
  Reservation.adopt t.s.res ~tid

let stats t = Counters.stats t.s.counters
let pinning_tids t = Reservation.occupied_tids t.s.res
