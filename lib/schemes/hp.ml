(** Hazard pointers (Michael, 2004).

    The canonical pointer-based scheme: before dereferencing, a thread
    publishes the target node in one of its hazard-pointer slots, issues a
    fence (implicit in [Atomic.set]), and validates that the link still
    points to the node. Wasted memory is bounded by O(H·T) but every
    pointer dereference pays the publish/validate protocol.

    Built on the {!Smr_core.Reservation}/{!Smr_core.Reclaimer} kernel:
    slots announce node ids, the scan keeps exactly the snapshot's
    members. The snapshot-instead-of-re-reading and single-fence-clear
    optimizations the paper applied to the IBR framework (§6) are the
    kernel's defaults. *)

open Smr_core

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  res : Reservation.t; (* announced node ids, [no_hazard] = empty *)
}

type thread = {
  shared : shared;
  tid : int;
  rsv : Reclaimer.t;
  snap : Reservation.snapshot; (* reused across empty() calls *)
}

type t = {
  s : shared;
  per_thread : thread array;
}

let no_hazard = -1
let name = "hp"

let properties =
  {
    Smr_intf.full_name = "Hazard pointers";
    wasted_memory = Smr_intf.Bounded;
    per_node_words = 0;
    self_contained = true;
    needs_per_reference_calls = true;
  }

let create ~pool ~threads (config : Config.t) =
  let config = Config.validate config in
  let counters = Counters.create ~threads in
  let s =
    {
      pool;
      counters;
      res = Reservation.create ~counters ~threads ~slots:config.slots ~empty:no_hazard;
    }
  in
  let threshold =
    Reclaimer.scan_threshold ~empty_freq:config.empty_freq ~slots:config.slots ~threads
  in
  let per_thread =
    Array.init threads (fun tid ->
        {
          shared = s;
          tid;
          rsv = Reclaimer.create ~pool ~counters ~tid ~threshold;
          snap = Reservation.snapshot_create ();
        })
  in
  { s; per_thread }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid
let start_op (_ : thread) = ()

(* Clearing H slots at operation end; the kernel counts the batch as a
   single fence, as the paper's optimized HP does. *)
let end_op th = Reservation.clear_all th.shared.res ~tid:th.tid

(* Batch window: the kernel defers [end_op]'s clear_all to batch_exit,
   so hazards persist across the batch — repeated reads of the same hot
   node hit the own-slot mirror and skip the publish fence entirely. *)
let batch_enter th = Reservation.batch_enter th.shared.res ~tid:th.tid
let batch_exit th = Reservation.batch_exit th.shared.res ~tid:th.tid

let alloc th = Mempool.Core.alloc th.shared.pool ~tid:th.tid

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.shared.pool id index;
  id

(* Top-level so a read allocates no closure. *)
let rec read_loop th slot link =
  let w = Atomic.get link in
  if Handle.is_null w then w
  else begin
    let id = Handle.id w in
    (* Own-slot mirror (Relaxed): this thread is the only writer of its
       hazard slot, so a plain read of its own last write is exact by
       program order — the SC barrier bought nothing. A (hypothetically)
       stale read could only take the else-branch and re-publish, which
       is always safe. *)
    if Mp_util.Relaxed.get slot = id then w
    else begin
      Atomic.set slot id;
      Counters.on_fence th.shared.counters ~tid:th.tid;
      (* The hazard is visible but unvalidated — the window a stalled or
         dying thread leaves a node pinned from. *)
      Mp_util.Fault.hit ~tid:th.tid Mp_util.Fault.Protect_validate;
      if Atomic.get link = w then w else read_loop th slot link
    end
  end

(** The protect/validate loop. Publishing the hazard is one fence; the
    loop re-runs while the link changes under us (some other thread
    progressed, so the scheme stays nonblocking). *)
let read th ~refno link =
  read_loop th (Reservation.slot th.shared.res ~tid:th.tid ~refno) link

let unprotect th ~refno = Reservation.clear th.shared.res ~tid:th.tid ~refno
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.shared.pool id

(* Reclamation: snapshot every hazard slot once, sort, then release any
   retired node not present in the snapshot (binary search per node). *)
let empty th =
  Reservation.snapshot th.shared.res th.snap;
  Reservation.sort th.snap;
  Reclaimer.scan th.rsv ~keep:(fun id -> Reservation.mem th.snap id);
  (* Arena detach barrier: hazards validate after publication, so a stale
     handle into a fully-freed arena cannot survive its validation — the
     arena is unmappable as soon as one fresh snapshot shows no hazard
     inside it. No grace period, hence the constant stamp. *)
  Detach.poll th.shared.pool
    ~stamp:(fun () -> 0)
    ~quiescent:(fun ~base ~size ~stamp:_ ->
      Reservation.snapshot th.shared.res th.snap;
      Reservation.sort th.snap;
      not (Reservation.exists_in_range th.snap ~lo:base ~hi:(base + size - 1)))

let retire th id =
  Reclaimer.retire th.rsv id;
  if Reclaimer.scan_due th.rsv then empty th

let flush th = empty th

(* Crash recovery (see {!Smr_core.Smr_intf.S.adopt}): quarantining the
   dead tid clears its hazard row — releasing every node only it pinned —
   and the scan that follows drains its retired backlog exactly as its
   own next [empty] would have, now that its hazards no longer veto.
   Nodes still announced by live threads stay queued for later scans. *)
let adopt t ~tid =
  Reservation.quarantine t.s.res ~tid;
  empty t.per_thread.(tid);
  Reservation.adopt t.s.res ~tid

let stats t = Counters.stats t.s.counters
let pinning_tids t = Reservation.occupied_tids t.s.res
