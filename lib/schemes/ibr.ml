(** Interval-based reclamation (Wen et al., 2018) — 2GE variant.

    No per-reference PPVs at all: each thread maintains one epoch interval
    [lower, upper] covering the birth epochs of every node it may hold. A
    retired node is reclaimable if, for every thread, its whole lifetime
    lies outside the thread's interval. Cheaper than HE (an era change
    updates one interval, not every PPV); robust but not bounded.

    Built on the {!Smr_core.Reservation}/{!Smr_core.Reclaimer} kernel:
    the interval endpoints live in two single-slot reservation tables,
    snapshotted flat (per-tid) once per scan. *)

open Smr_core

type shared = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  epoch : Epoch.t;
  lower : Reservation.t; (* one slot per thread, [idle_lower] = idle *)
  upper : Reservation.t; (* one slot per thread, [idle_upper] = idle *)
  epoch_freq : int;
  threads : int;
}

type thread = {
  shared : shared;
  tid : int;
  rsv : Reclaimer.t;
  snap_lo : Reservation.snapshot;
  snap_hi : Reservation.snapshot;
  mutable alloc_count : int;
  mutable in_batch : bool;
      (* batch window: keep one interval published across several ops *)
}

type t = { s : shared; per_thread : thread array }

let name = "ibr"

(* Idle interval: empty (lower = +inf, upper = -1) so every node passes. *)
let idle_lower = max_int
let idle_upper = -1

let properties =
  {
    Smr_intf.full_name = "Interval-based reclamation (2GE)";
    wasted_memory = Smr_intf.Robust;
    per_node_words = 3;
    self_contained = true;
    needs_per_reference_calls = false;
  }

let create ~pool ~threads (config : Config.t) =
  let config = Config.validate config in
  let counters = Counters.create ~threads in
  let s =
    { pool; counters; epoch = Epoch.create ~threads;
      lower = Reservation.create ~counters ~threads ~slots:1 ~empty:idle_lower;
      upper = Reservation.create ~counters ~threads ~slots:1 ~empty:idle_upper;
      epoch_freq = config.epoch_freq; threads }
  in
  (* One announcement (the interval) per thread, regardless of the
     configured per-reference slot count. *)
  let threshold = Reclaimer.scan_threshold ~empty_freq:config.empty_freq ~slots:1 ~threads in
  let per_thread =
    Array.init threads (fun tid ->
        { shared = s; tid; rsv = Reclaimer.create ~pool ~counters ~tid ~threshold;
          snap_lo = Reservation.snapshot_create (); snap_hi = Reservation.snapshot_create ();
          alloc_count = 0; in_batch = false })
  in
  { s; per_thread }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid

(* Both endpoint writes publish under the one fence counted per
   operation start, as in the original. *)
let publish_interval th =
  let s = th.shared in
  let e = Epoch.current s.epoch in
  Reservation.set s.lower ~tid:th.tid ~refno:0 e;
  Reservation.set s.upper ~tid:th.tid ~refno:0 e;
  Counters.on_fence s.counters ~tid:th.tid;
  (* Interval published; a crash here pins [e, e] forever. *)
  Mp_util.Fault.hit ~tid:th.tid Mp_util.Fault.Protect_validate

let start_op th = if not th.in_batch then publish_interval th

let end_op th =
  if not th.in_batch then begin
    let s = th.shared in
    Reservation.clear s.lower ~tid:th.tid ~refno:0;
    Reservation.clear s.upper ~tid:th.tid ~refno:0
  end

(* Batch window: one interval published for the whole batch. The lower
   endpoint stays at the batch-start epoch (in-batch [start_op] must NOT
   re-publish it — that would drop protection of nodes whose birth
   precedes the new epoch) and the upper endpoint keeps stretching
   through [read], so the batch behaves exactly like one long operation:
   the robust bound already quantifies over operation length. *)
let batch_enter th =
  th.in_batch <- true;
  publish_interval th

let batch_exit th =
  th.in_batch <- false;
  let s = th.shared in
  Reservation.clear s.lower ~tid:th.tid ~refno:0;
  Reservation.clear s.upper ~tid:th.tid ~refno:0

let alloc th =
  th.alloc_count <- th.alloc_count + 1;
  if th.alloc_count mod th.shared.epoch_freq = 0 then Epoch.advance th.shared.epoch;
  let id = Mempool.Core.alloc th.shared.pool ~tid:th.tid in
  Mempool.Core.set_birth th.shared.pool id (Epoch.current th.shared.epoch);
  id

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.shared.pool id index;
  id

(** Reads stretch the upper endpoint to cover the target's birth epoch
    (the role of IBR's pointer tag); the update only fires when the epoch
    moved, so the overhead is per-operation, not per-dereference. Safety
    for retired chains follows from the structures' "a retired node points
    only at nodes retired no earlier" invariant, as in the IBR paper. *)
let read th ~refno:(_ : int) link =
  let s = th.shared in
  let w = Atomic.get link in
  if not (Handle.is_null w) then begin
    let birth = Mempool.Core.birth s.pool (Handle.id w) in
    let up = Reservation.slot s.upper ~tid:th.tid ~refno:0 in
    (* Own-slot mirror (Relaxed): only this thread writes its upper
       endpoint, so the plain read of its own last write is exact. The
       epoch poll below is heuristic (monotonic clock, stale = smaller)
       and is clamped by [max] against [birth], which came from an SC
       link read — the published endpoint is >= birth either way, which
       is all the interval-conflict filter needs. *)
    if Mp_util.Relaxed.get up < birth then begin
      Atomic.set up (max birth (Epoch.current_relaxed s.epoch));
      Counters.on_fence s.counters ~tid:th.tid;
      (* Stretched endpoint visible, target not yet dereferenced. *)
      Mp_util.Fault.hit ~tid:th.tid Mp_util.Fault.Protect_validate
    end
  end;
  w

let unprotect (_ : thread) ~refno:(_ : int) = ()
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.shared.pool id

(* Node [birth, death] conflicts with interval [lo, hi] unless
   death < lo or birth > hi; idle intervals are empty and never
   conflict. Flat snapshots index endpoint values by tid. *)
let empty th =
  let s = th.shared in
  Reservation.snapshot_flat s.lower th.snap_lo;
  Reservation.snapshot_flat s.upper th.snap_hi;
  let lo = th.snap_lo.Reservation.vals and hi = th.snap_hi.Reservation.vals in
  let keep id =
    let birth = Mempool.Core.birth s.pool id and death = Mempool.Core.death s.pool id in
    let rec conflict t =
      t < s.threads && ((not (death < lo.(t) || birth > hi.(t))) || conflict (t + 1))
    in
    conflict 0
  in
  Reclaimer.scan th.rsv ~keep;
  (* Arena detach barrier. Stamp-and-advance at full park; the arena is
     unmappable once every active reader's lower endpoint postdates the
     stamp (idle intervals are empty and filtered from the occupied-only
     snapshot): such readers started after every arena slot was freed,
     and parked slots are never re-allocated. *)
  Detach.poll s.pool
    ~stamp:(fun () ->
      let e = Epoch.current s.epoch in
      Epoch.advance s.epoch;
      e)
    ~quiescent:(fun ~base:_ ~size:_ ~stamp ->
      Reservation.snapshot s.lower th.snap_lo;
      let ok = ref true in
      for i = 0 to th.snap_lo.Reservation.len - 1 do
        if th.snap_lo.Reservation.vals.(i) <= stamp then ok := false
      done;
      !ok)

let retire th id =
  let s = th.shared in
  Mempool.Core.set_death s.pool id (Epoch.current s.epoch);
  Reclaimer.retire th.rsv id;
  if Reclaimer.scan_due th.rsv then empty th

let flush th = empty th

(* Crash recovery (see {!Smr_core.Smr_intf.S.adopt}): quarantining both
   endpoint tables resets the dead tid's interval to the empty idle
   interval (lower = +inf, upper = -1), so no node lifetime conflicts
   with it any more; the scan drains its retired backlog. The scheme's
   own in-batch flag is forced off too — the dead thread may have died
   inside a batch window. *)
let adopt t ~tid =
  Reservation.quarantine t.s.lower ~tid;
  Reservation.quarantine t.s.upper ~tid;
  let th = t.per_thread.(tid) in
  th.in_batch <- false;
  empty th;
  Reservation.adopt t.s.lower ~tid;
  Reservation.adopt t.s.upper ~tid

let stats t = Counters.stats t.s.counters
let pinning_tids t = Reservation.occupied_tids t.s.lower
