(** "No reclamation" baseline: retired nodes are never freed.

    Zero run-time overhead (reads are plain loads), unbounded wasted
    memory; the throughput ceiling and wasted-memory worst case in the
    evaluation. Retires still flow through {!Smr_core.Reclaimer} for
    uniform accounting — its scan is simply never run. *)

open Smr_core

type thread = { pool : Mempool.Core.t; tid : int; rsv : Reclaimer.t }
type t = { counters : Counters.t; per_thread : thread array }

let name = "none"

let properties =
  {
    Smr_intf.full_name = "No reclamation (leak)";
    wasted_memory = Smr_intf.Unbounded;
    per_node_words = 0;
    self_contained = true;
    needs_per_reference_calls = false;
  }

let create ~pool ~threads (_ : Config.t) =
  let counters = Counters.create ~threads in
  {
    counters;
    per_thread =
      Array.init threads (fun tid ->
          { pool; tid; rsv = Reclaimer.create ~pool ~counters ~tid ~threshold:max_int });
  }

let thread t ~tid = t.per_thread.(tid)
let tid th = th.tid
let start_op (_ : thread) = ()
let end_op (_ : thread) = ()

(* No protocol to amortize: batch windows are free no-ops. *)
let batch_enter (_ : thread) = ()
let batch_exit (_ : thread) = ()
let alloc th = Mempool.Core.alloc th.pool ~tid:th.tid

let alloc_with_index th ~index =
  let id = alloc th in
  Mempool.Core.set_index th.pool id index;
  id

let retire th id = Reclaimer.retire th.rsv id
let read (_ : thread) ~refno:(_ : int) link = Atomic.get link
let unprotect (_ : thread) ~refno:(_ : int) = ()
let update_lower_bound (_ : thread) (_ : int) = ()
let update_upper_bound (_ : thread) (_ : int) = ()
let handle_of th id = Mempool.Core.handle th.pool id
let flush (_ : thread) = ()

(* Nothing to release and nothing to drain: a dead Leaky thread pins no
   more than a live one (everything leaks either way). *)
let adopt (_ : t) ~tid:(_ : int) = ()

let stats t = Counters.stats t.counters

(* Leaky holds no reservations: waste comes from never reclaiming, not
   from any thread's announcement. *)
let pinning_tids (_ : t) = []
