(** Memcached-text-style byte-protocol front-end over {!Service}.

    Two halves:

    - {!Parser}: an incremental, never-raising parser for a
      memcached-text command subset over a reusable buffer. Bytes
      arrive in arbitrary splits (sockets fragment commands anywhere,
      including inside a [set]'s data block); the parser carries its
      state across [feed]s, yields one command at a time, and recovers
      from garbage by resyncing at the next newline, reporting the bad
      line as {!cmd.Bad} so the connection can answer [CLIENT_ERROR]
      and keep going.
    - {!Conn}: one connection's executor. It gathers a whole read's
      worth of parsed commands (the pipelining win), expands them to
      flat op/key/value arrays bucketed per shard, submits one ring
      {e chain} per shard ({!Service.try_submit_chain}), waits once per
      chain, then formats every reply {e in command order} into one
      output buffer flushed with a single write.

    Protocol mapping — the service is an integer-keyed SET, not a KV
    cache, so the textual protocol is interpreted:

    - keys are decimal integers (up to 18 digits; anything else is a
      [CLIENT_ERROR]);
    - [get <k>...] runs [contains] per key; a hit renders the key
      itself as the value data ([VALUE <k> 0 <len>\r\n<k>\r\n]), a miss
      renders nothing; the reply ends with [END\r\n]. [gets] is
      accepted as a synonym.
    - [set <k> <flags> <exptime> <bytes>\r\n<data>\r\n] maps to
      memcached's {e add}: insert-if-absent, answering [STORED] when
      the key was inserted and [NOT_STORED] when it already existed.
      The data block's bytes are the value when they parse as a
      decimal integer, else the value is the block's length; flags and
      exptime are accepted and ignored.
    - [delete <k>] maps to [remove]: [DELETED] / [NOT_FOUND].
    - [mget <first> <n>] is this service's multi-get extension
      ({!Service.op_mget}: [n] consecutive keys through one request),
      answering [HITS <hits>\r\n].
    - [version], [quit] and [noreply] behave as in memcached. Unknown
      commands answer [ERROR]; malformed ones [CLIENT_ERROR <why>];
      degraded service replies (crash rejection, pool exhaustion,
      deadline shed) answer [SERVER_ERROR <why>]. *)

(* -- the incremental parser ----------------------------------------------- *)

module Parser = struct
  (** One parsed command. [Get] carries its keys in a reusable array
      ([keys.(0 .. nkeys - 1)] valid until the next {!next}). *)
  type cmd =
    | Get of { gets : bool; nkeys : int }
    | Set of { key : int; value : int; noreply : bool }
    | Delete of { key : int; noreply : bool }
    | Mget of { first : int; count : int }
    | Quit
    | Version
    | Bad of string  (** malformed command; answer [CLIENT_ERROR] *)
    | Unknown  (** well-formed line, unrecognized verb; answer [ERROR] *)

  let max_line = 8192
  let max_get_keys = 64

  (* What the next bytes mean. [Data] is the interior of a set's data
     block; [Skip_line] discards bytes until the newline that resyncs
     the stream after an oversized or hopeless line. *)
  type state =
    | Line
    | Data of { key : int; nbytes : int; noreply : bool }
    | Skip_line of string (* the Bad message to emit once resynced *)

  type t = {
    buf : Bytes.t; (* fill window: [read_pos, write_pos) is unconsumed *)
    mutable read_pos : int;
    mutable write_pos : int;
    mutable state : state;
    mutable data_got : int; (* bytes of the current data block consumed *)
    data : Buffer.t; (* the data block's bytes (bounded by max_line) *)
    get_keys : int array; (* Get's keys, reused across commands *)
    line : Buffer.t; (* the current line when it straddles a fill *)
  }

  let create ?(buf_size = 65536) () =
    {
      buf = Bytes.create (max buf_size 1024);
      read_pos = 0;
      write_pos = 0;
      state = Line;
      data_got = 0;
      data = Buffer.create 256;
      get_keys = Array.make max_get_keys 0;
      line = Buffer.create 256;
    }

  (** The raw fill window: read socket bytes into
      [buffer t] at [write_off t], at most [free_space t], then
      [fill t n]. *)
  let buffer t = t.buf

  let write_off t = t.write_pos
  let free_space t = Bytes.length t.buf - t.write_pos

  (** Account [n] freshly read bytes. *)
  let fill t n = t.write_pos <- t.write_pos + n

  (** Copy-convenience for tests and non-socket callers: append a
      string fragment (any split of the stream), compacting first if
      needed. Returns [false] when the fragment exceeds the free space
      even after compaction (callers then feed smaller pieces). *)
  let feed t s =
    let n = String.length s in
    if free_space t < n then begin
      (* compact: move the unconsumed window to the front *)
      let live = t.write_pos - t.read_pos in
      Bytes.blit t.buf t.read_pos t.buf 0 live;
      t.read_pos <- 0;
      t.write_pos <- live
    end;
    if free_space t < n then false
    else begin
      Bytes.blit_string s 0 t.buf t.write_pos n;
      fill t n;
      true
    end

  (** Keys of the last [Get]: [get_key t i], [i < nkeys]. *)
  let get_key t i = t.get_keys.(i)

  (* Parse a non-negative decimal int from [s.[i, j)]; [-1] on
     anything else (overflow guarded by an 18-digit cap — max_int on
     64-bit holds 19 digits). *)
  let parse_int s i j =
    if j <= i || j - i > 18 then -1
    else begin
      let v = ref 0 in
      let ok = ref true in
      for k = i to j - 1 do
        let c = s.[k] in
        if c >= '0' && c <= '9' then v := (!v * 10) + (Char.code c - Char.code '0')
        else ok := false
      done;
      if !ok then !v else -1
    end

  (* Split [line] into whitespace-separated tokens, calling
     [f i j] per token. Returns the token count. *)
  let tokens line f =
    let n = String.length line in
    let count = ref 0 in
    let i = ref 0 in
    while !i < n do
      while !i < n && line.[!i] = ' ' do
        incr i
      done;
      if !i < n then begin
        let start = !i in
        while !i < n && line.[!i] <> ' ' do
          incr i
        done;
        f !count start !i;
        incr count
      end
    done;
    !count

  (* Interpret one complete command line (CR already stripped). May
     switch the state to [Data] (set) — then returns None and the data
     block supplies the command. *)
  let run_line t line =
    let n = String.length line in
    if n = 0 then Some (Bad "empty command")
    else begin
      (* First token decides the verb. *)
      let sp = match String.index_opt line ' ' with Some i -> i | None -> n in
      let verb = String.sub line 0 sp in
      match verb with
      | "get" | "gets" ->
        let nkeys = ref 0 in
        let bad = ref false in
        let ntok =
          tokens line (fun idx i j ->
              if idx > 0 then
                if idx > max_get_keys then bad := true
                else begin
                  let k = parse_int line i j in
                  if k < 0 then bad := true
                  else begin
                    t.get_keys.(idx - 1) <- k;
                    incr nkeys
                  end
                end)
        in
        if ntok < 2 then Some (Bad "get needs at least one key")
        else if !bad then
          Some
            (Bad
               (if ntok - 1 > max_get_keys then "too many keys"
                else "bad key (keys are decimal integers)"))
        else Some (Get { gets = verb = "gets"; nkeys = !nkeys })
      | "set" ->
        (* set <key> <flags> <exptime> <bytes> [noreply] *)
        let key = ref (-1) and bytes = ref (-1) in
        let noreply = ref false in
        let bad = ref false in
        let ntok =
          tokens line (fun idx i j ->
              match idx with
              | 0 -> ()
              | 1 -> key := parse_int line i j
              | 2 | 3 -> if parse_int line i j < 0 then bad := true
              | 4 -> bytes := parse_int line i j
              | 5 -> if String.sub line i (j - i) = "noreply" then noreply := true else bad := true
              | _ -> bad := true)
        in
        if ntok < 5 || !bad || !key < 0 || !bytes < 0 then
          Some (Bad "set <key> <flags> <exptime> <bytes> [noreply]")
        else if !bytes > max_line then Some (Bad "data block too large")
        else begin
          Buffer.clear t.data;
          t.data_got <- 0;
          t.state <- Data { key = !key; nbytes = !bytes; noreply = !noreply };
          None
        end
      | "delete" ->
        let key = ref (-1) in
        let noreply = ref false in
        let bad = ref false in
        let ntok =
          tokens line (fun idx i j ->
              match idx with
              | 0 -> ()
              | 1 -> key := parse_int line i j
              | 2 -> if String.sub line i (j - i) = "noreply" then noreply := true else bad := true
              | _ -> bad := true)
        in
        if ntok < 2 || !bad || !key < 0 then Some (Bad "delete <key> [noreply]")
        else Some (Delete { key = !key; noreply = !noreply })
      | "mget" ->
        (* mget <first> <count> — the service's consecutive-key
           multi-get extension *)
        let first = ref (-1) and count = ref (-1) in
        let bad = ref false in
        let ntok =
          tokens line (fun idx i j ->
              match idx with
              | 0 -> ()
              | 1 -> first := parse_int line i j
              | 2 -> count := parse_int line i j
              | _ -> bad := true)
        in
        if ntok <> 3 || !bad || !first < 0 || !count < 1 || !count > 1024 then
          Some (Bad "mget <first> <count>")
        else Some (Mget { first = !first; count = !count })
      | "quit" -> Some Quit
      | "version" -> Some Version
      | _ -> Some Unknown
    end

  (** Pull the next complete command out of the buffered bytes; [None]
      when more bytes are needed. Never raises: malformed input yields
      {!cmd.Bad} (resynced at the next newline) and unknown verbs
      {!cmd.Unknown}. *)
  let rec next t =
    if t.read_pos >= t.write_pos then begin
      (* nothing buffered; reset the window so fills start at 0 *)
      t.read_pos <- 0;
      t.write_pos <- 0;
      None
    end
    else
      match t.state with
      | Skip_line msg ->
        (* discard until the newline that resyncs the stream *)
        let i = ref t.read_pos in
        while !i < t.write_pos && Bytes.get t.buf !i <> '\n' do
          incr i
        done;
        if !i < t.write_pos then begin
          t.read_pos <- !i + 1;
          t.state <- Line;
          Some (Bad msg)
        end
        else begin
          t.read_pos <- 0;
          t.write_pos <- 0;
          None
        end
      | Data { key; nbytes; noreply } ->
        (* consume the data block, then its trailing CRLF *)
        let want = nbytes - t.data_got in
        let avail = t.write_pos - t.read_pos in
        let take = min want avail in
        Buffer.add_subbytes t.data t.buf t.read_pos take;
        t.read_pos <- t.read_pos + take;
        t.data_got <- t.data_got + take;
        if t.data_got < nbytes then begin
          if t.read_pos >= t.write_pos then begin
            t.read_pos <- 0;
            t.write_pos <- 0
          end;
          None
        end
        else begin
          (* the block is complete; require \r\n (or \n) next *)
          let avail = t.write_pos - t.read_pos in
          if avail = 0 || (avail = 1 && Bytes.get t.buf t.read_pos = '\r') then
            None (* need the terminator bytes *)
          else begin
            let c0 = Bytes.get t.buf t.read_pos in
            let consumed, ok =
              if c0 = '\n' then (1, true)
              else if c0 = '\r' && Bytes.get t.buf (t.read_pos + 1) = '\n' then (2, true)
              else (0, false)
            in
            if ok then begin
              t.read_pos <- t.read_pos + consumed;
              t.state <- Line;
              let s = Buffer.contents t.data in
              let v = parse_int s 0 (String.length s) in
              let value = if v >= 0 then v else String.length s in
              Some (Set { key; value; noreply })
            end
            else begin
              (* data block not followed by CRLF: byte-count lied.
                 Resync at the next newline. *)
              t.state <- Skip_line "bad data chunk";
              next t
            end
          end
        end
      | Line ->
        (* find a newline in the window *)
        let i = ref t.read_pos in
        while !i < t.write_pos && Bytes.get t.buf !i <> '\n' do
          incr i
        done;
        if !i >= t.write_pos then begin
          (* no full line yet: stash the partial and reset the window
             (bounded: an overlong line flips to Skip_line) *)
          let frag = t.write_pos - t.read_pos in
          if Buffer.length t.line + frag > max_line then begin
            Buffer.clear t.line;
            t.read_pos <- 0;
            t.write_pos <- 0;
            t.state <- Skip_line "line too long";
            None
          end
          else begin
            Buffer.add_subbytes t.line t.buf t.read_pos frag;
            t.read_pos <- 0;
            t.write_pos <- 0;
            None
          end
        end
        else begin
          let eol = !i in
          let line =
            if Buffer.length t.line = 0 then begin
              let stop =
                if eol > t.read_pos && Bytes.get t.buf (eol - 1) = '\r' then eol - 1
                else eol
              in
              Bytes.sub_string t.buf t.read_pos (stop - t.read_pos)
            end
            else begin
              Buffer.add_subbytes t.line t.buf t.read_pos (eol - t.read_pos);
              let s = Buffer.contents t.line in
              Buffer.clear t.line;
              let n = String.length s in
              if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s
            end
          in
          t.read_pos <- eol + 1;
          if String.length line > max_line then
            (* the line's own newline is already consumed — the stream
               is resynced; entering Skip_line here would swallow the
               NEXT command's line *)
            Some (Bad "line too long")
          else
            match run_line t line with
            | Some c -> Some c
            | None -> next t (* set: the data block continues *)
        end
end

(* -- the per-connection executor ------------------------------------------ *)

module Conn = struct
  (* A batch of parsed commands awaiting execution, expanded to flat
     request arrays. Commands needing no service round trip (Bad,
     Unknown, Version) still occupy a command slot so replies render in
     order. *)
  type pending =
    | P_get of { gets : bool; op_start : int; nops : int }
    | P_set of { op_start : int; noreply : bool }
    | P_delete of { op_start : int; noreply : bool }
    | P_mget of { op_start : int }
    | P_bad of string
    | P_unknown
    | P_version

  type t = {
    service : Service.t;
    parser : Parser.t;
    out : Buffer.t;
    mutable cmds : pending array;
    mutable ncmds : int;
    (* flat per-op arrays in submission (command) order *)
    mutable ops : int array;
    mutable keys : int array;
    mutable values : int array;
    mutable replies : int array;
    mutable nops : int;
    (* per-shard chain bucketing, rebuilt per batch *)
    sh_count : int array;
    sh_start : int array;
    sh_fill : int array;
    sh_ticket : int array;
    mutable b_ops : int array; (* shard-bucketed mirror of ops/keys/values *)
    mutable b_keys : int array;
    mutable b_values : int array;
    mutable b_replies : int array;
    mutable b_slot : int array; (* bucket index of op i *)
    mutable closed : bool;
  }

  let create service =
    let shards = Service.shards service in
    {
      service;
      parser = Parser.create ();
      out = Buffer.create 8192;
      cmds = Array.make 64 P_unknown;
      ncmds = 0;
      ops = Array.make 256 0;
      keys = Array.make 256 0;
      values = Array.make 256 0;
      replies = Array.make 256 0;
      nops = 0;
      sh_count = Array.make shards 0;
      sh_start = Array.make shards 0;
      sh_fill = Array.make shards 0;
      sh_ticket = Array.make shards 0;
      b_ops = Array.make 256 0;
      b_keys = Array.make 256 0;
      b_values = Array.make 256 0;
      b_replies = Array.make 256 0;
      b_slot = Array.make 256 0;
      closed = false;
    }

  let parser t = t.parser
  let out t = t.out

  (** The peer asked to close ([quit]). *)
  let closed t = t.closed

  let grow a n = Array.append a (Array.make (max n (Array.length a)) 0)

  let[@inline] ensure_ops t n =
    if t.nops + n > Array.length t.ops then begin
      t.ops <- grow t.ops n;
      t.keys <- grow t.keys n;
      t.values <- grow t.values n;
      t.replies <- grow t.replies n;
      t.b_ops <- grow t.b_ops n;
      t.b_keys <- grow t.b_keys n;
      t.b_values <- grow t.b_values n;
      t.b_replies <- grow t.b_replies n;
      t.b_slot <- grow t.b_slot n
    end

  let push_cmd t c =
    if t.ncmds = Array.length t.cmds then begin
      let bigger = Array.make (2 * t.ncmds) P_unknown in
      Array.blit t.cmds 0 bigger 0 t.ncmds;
      t.cmds <- bigger
    end;
    t.cmds.(t.ncmds) <- c;
    t.ncmds <- t.ncmds + 1

  let[@inline] push_op t ~op ~key ~value =
    let i = t.nops in
    t.ops.(i) <- op;
    t.keys.(i) <- key;
    t.values.(i) <- value;
    t.nops <- i + 1

  (* Queue one parsed command. *)
  let add t (c : Parser.cmd) =
    match c with
    | Parser.Get { gets; nkeys } ->
      ensure_ops t nkeys;
      let op_start = t.nops in
      for i = 0 to nkeys - 1 do
        let k = Parser.get_key t.parser i in
        push_op t ~op:Service.op_contains ~key:k ~value:k
      done;
      push_cmd t (P_get { gets; op_start; nops = nkeys })
    | Parser.Set { key; value; noreply } ->
      ensure_ops t 1;
      let op_start = t.nops in
      push_op t ~op:Service.op_insert ~key ~value;
      push_cmd t (P_set { op_start; noreply })
    | Parser.Delete { key; noreply } ->
      ensure_ops t 1;
      let op_start = t.nops in
      push_op t ~op:Service.op_remove ~key ~value:key;
      push_cmd t (P_delete { op_start; noreply })
    | Parser.Mget { first; count } ->
      ensure_ops t 1;
      let op_start = t.nops in
      push_op t ~op:Service.op_mget ~key:first ~value:count;
      push_cmd t (P_mget { op_start })
    | Parser.Bad msg -> push_cmd t (P_bad msg)
    | Parser.Unknown -> push_cmd t P_unknown
    | Parser.Version -> push_cmd t P_version
    | Parser.Quit -> t.closed <- true

  (* Longest chain submitted at once: a chain must stay under the
     ring's capacity/2, and 64 amortizes deeply enough; take whichever
     binds for this service's rings. *)
  let max_chain t = min 64 (Service.ring_capacity t.service / 2)

  (* Execute the queued ops: counting-sort them into per-shard buckets,
     submit each bucket as chains of at most [max_chain], coalesced-wait
     per chain, harvest, then scatter replies back to command order. *)
  let execute t =
    let shards = Service.shards t.service in
    Array.fill t.sh_count 0 shards 0;
    for i = 0 to t.nops - 1 do
      let s = Service.shard_of_key t.service t.keys.(i) in
      t.b_slot.(i) <- s;
      t.sh_count.(s) <- t.sh_count.(s) + 1
    done;
    let acc = ref 0 in
    for s = 0 to shards - 1 do
      t.sh_start.(s) <- !acc;
      t.sh_fill.(s) <- !acc;
      acc := !acc + t.sh_count.(s)
    done;
    for i = 0 to t.nops - 1 do
      let s = t.b_slot.(i) in
      let j = t.sh_fill.(s) in
      t.b_ops.(j) <- t.ops.(i);
      t.b_keys.(j) <- t.keys.(i);
      t.b_values.(j) <- t.values.(i);
      t.b_slot.(i) <- j; (* remember where op i went for the scatter *)
      t.sh_fill.(s) <- j + 1
    done;
    (* Submit and drain per shard, chunking long buckets into chains of
       [max_chain]. Sequential per shard (submit chunk, await, harvest)
       keeps at most one outstanding chain per shard — big buckets
       still amortize [max_chain]-fold. *)
    let max_chain = max_chain t in
    for s = 0 to shards - 1 do
      let start = t.sh_start.(s) and count = t.sh_count.(s) in
      let off = ref start in
      let remaining = ref count in
      while !remaining > 0 do
        let n = min !remaining max_chain in
        let spins = ref 0 in
        let ticket =
          ref
            (Service.try_submit_chain t.service ~shard:s ~n ~ops:t.b_ops
               ~keys:t.b_keys ~values:t.b_values ~off:!off)
        in
        while !ticket < 0 do
          (* ring full: the shard is draining; brief pause and retry *)
          if !spins < 64 then begin
            incr spins;
            Domain.cpu_relax ()
          end
          else Unix.sleepf 0.0001;
          ticket :=
            Service.try_submit_chain t.service ~shard:s ~n ~ops:t.b_ops
              ~keys:t.b_keys ~values:t.b_values ~off:!off
        done;
        Service.await_chain t.service ~shard:s ~ticket:!ticket ~n;
        Service.harvest_chain t.service ~shard:s ~ticket:!ticket ~n
          ~replies:t.b_replies ~off:!off;
        off := !off + n;
        remaining := !remaining - n
      done
    done;
    (* Scatter replies back to command order. *)
    for i = 0 to t.nops - 1 do
      t.replies.(i) <- t.b_replies.(t.b_slot.(i))
    done

  let add_reply_error out r =
    if r = Service.reply_oom then Buffer.add_string out "SERVER_ERROR out of memory\r\n"
    else if r = Service.reply_busy then Buffer.add_string out "SERVER_ERROR busy\r\n"
    else Buffer.add_string out "SERVER_ERROR rejected\r\n"

  let[@inline] is_error r =
    r = Service.reply_rejected || r = Service.reply_oom || r = Service.reply_busy

  (* Render every queued command's reply, in order, into [t.out]. *)
  let render t =
    let out = t.out in
    for c = 0 to t.ncmds - 1 do
      match t.cmds.(c) with
      | P_get { gets = _; op_start; nops } ->
        (* any degraded slot degrades the whole command *)
        let err = ref (-1) in
        for i = op_start to op_start + nops - 1 do
          if !err < 0 && is_error t.replies.(i) then err := t.replies.(i)
        done;
        if !err >= 0 then add_reply_error out !err
        else begin
          for i = op_start to op_start + nops - 1 do
            if t.replies.(i) = Service.reply_true then begin
              (* the set stores membership, not bytes: a hit renders
                 the key itself as the data block *)
              let k = string_of_int t.keys.(i) in
              Buffer.add_string out "VALUE ";
              Buffer.add_string out k;
              Buffer.add_string out " 0 ";
              Buffer.add_string out (string_of_int (String.length k));
              Buffer.add_string out "\r\n";
              Buffer.add_string out k;
              Buffer.add_string out "\r\n"
            end
          done;
          Buffer.add_string out "END\r\n"
        end
      | P_set { op_start; noreply } ->
        if not noreply then begin
          let r = t.replies.(op_start) in
          if is_error r then add_reply_error out r
          else if r = Service.reply_true then Buffer.add_string out "STORED\r\n"
          else Buffer.add_string out "NOT_STORED\r\n"
        end
      | P_delete { op_start; noreply } ->
        if not noreply then begin
          let r = t.replies.(op_start) in
          if is_error r then add_reply_error out r
          else if r = Service.reply_true then Buffer.add_string out "DELETED\r\n"
          else Buffer.add_string out "NOT_FOUND\r\n"
        end
      | P_mget { op_start } ->
        let r = t.replies.(op_start) in
        if is_error r then add_reply_error out r
        else begin
          Buffer.add_string out "HITS ";
          Buffer.add_string out (string_of_int (r - Service.reply_mget_base));
          Buffer.add_string out "\r\n"
        end
      | P_bad msg ->
        Buffer.add_string out "CLIENT_ERROR ";
        Buffer.add_string out msg;
        Buffer.add_string out "\r\n"
      | P_unknown -> Buffer.add_string out "ERROR\r\n"
      | P_version -> Buffer.add_string out "VERSION mpserver/1\r\n"
    done

  (** Process everything the parser can yield from its buffered bytes:
      parse, execute (chained per shard), and render the replies into
      [out t] — the caller writes that buffer to the socket in one
      flush and clears it. Returns the number of commands processed
      (0 = need more bytes). *)
  let pump t =
    t.ncmds <- 0;
    t.nops <- 0;
    Buffer.clear t.out;
    let continue = ref true in
    while !continue && not t.closed do
      match Parser.next t.parser with
      | Some c -> add t c
      | None -> continue := false
    done;
    if t.nops > 0 then execute t;
    if t.ncmds > 0 then render t;
    t.ncmds
end
