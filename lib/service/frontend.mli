(** Memcached-text-style byte-protocol front-end over {!Service}:
    an incremental never-raising parser ({!Parser}) plus a
    per-connection executor ({!Conn}) that batches a whole read's
    commands into per-shard ring chains and renders all replies into
    one output flush. Protocol mapping (keys are decimal integers,
    [get] renders the key as the value data, [set] is insert-if-absent,
    [mget <first> <n>] is the consecutive-key multi-get extension):
    see the implementation header. *)

module Parser : sig
  type cmd =
    | Get of { gets : bool; nkeys : int }
        (** keys via {!get_key}, valid until the next {!next} *)
    | Set of { key : int; value : int; noreply : bool }
    | Delete of { key : int; noreply : bool }
    | Mget of { first : int; count : int }
    | Quit
    | Version
    | Bad of string  (** malformed; answer [CLIENT_ERROR <msg>] *)
    | Unknown  (** unrecognized verb; answer [ERROR] *)

  (** Longest accepted command line or [set] data block, bytes; longer
      input is discarded to the next newline and reported [Bad]. *)
  val max_line : int

  (** Most keys in one [get]/[gets]. *)
  val max_get_keys : int

  type t

  val create : ?buf_size:int -> unit -> t

  (** {2 Zero-copy fill window} — read socket bytes straight into
      [buffer t] at [write_off t] (at most [free_space t] bytes), then
      account them with [fill t n]. *)

  val buffer : t -> Bytes.t

  val write_off : t -> int
  val free_space : t -> int
  val fill : t -> int -> unit

  (** Copy-convenience (tests, non-socket callers): append a fragment,
      compacting first if needed; [false] if it still does not fit. *)
  val feed : t -> string -> bool

  (** [get_key t i], [i < nkeys] of the last [Get]. *)
  val get_key : t -> int -> int

  (** Next complete command, or [None] for more bytes. Never raises;
      any byte garbage surfaces as [Bad] after resyncing at the next
      newline. *)
  val next : t -> cmd option
end

module Conn : sig
  type t

  val create : Service.t -> t

  val parser : t -> Parser.t

  (** Reply bytes rendered by the last {!pump}; write then clear. *)
  val out : t -> Buffer.t

  (** The peer sent [quit]. *)
  val closed : t -> bool

  (** Parse everything buffered, execute the ops as per-shard ring
      chains (one submit CAS + one coalesced wait per chain), render
      every reply in command order into [out t]. Returns the number of
      commands processed (0 = feed more bytes). *)
  val pump : t -> int
end
