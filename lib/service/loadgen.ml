(** Client-side load generator for {!Service}.

    Two arrival models:

    - {b Closed loop}: each client keeps a fixed pipeline of P requests
      outstanding — classic benchmark load, throughput-seeking. End-to-
      end latency is measured from submission.
    - {b Open loop}: arrivals follow a Poisson process at a fixed rate
      per client, independent of completions (bounded by [window]
      outstanding; arrivals that cannot be submitted are counted as
      {!result.drops}, never silently skipped). Latency is measured
      from the {e scheduled} arrival time, so a stalled service shows
      up as queueing delay instead of being hidden by back-pressure
      (the coordinated-omission correction).

    Resilience (all off by default, so a plain spec behaves exactly like
    the pre-recovery generator):

    - {b Deadlines} ([spec.deadline_s] > 0): each request carries an
      absolute deadline. The service sheds requests it picks up late
      ({!Service.reply_busy}); the client abandons the head-of-line
      request once it is overdue through {!Service.cancel} and tallies
      it [deadline_exceeded] — distinct from drops and rejections —
      unless the cancel raced a completion, which is then recorded
      normally.
    - {b Retries} ([spec.max_retries] > 0): bounded-exponential-backoff
      resubmission, idempotence-aware. [reply_busy] guarantees the
      request did not execute, so {e any} operation retries on it;
      [reply_rejected] is ambiguous (the shard may have crashed
      mid-write), so only reads ([contains]/[mget]) retry on it —
      writes give up, exactly the at-most-once behaviour a correct
      client needs. Retried requests keep their original [t0], so
      latency covers the whole saga.
    - {b Backpressure telemetry}: every [try_submit] that found the
      ring full counts into [ring_full] (closed-loop clients previously
      retried silently; open-loop full-ring arrivals also count a
      drop).

    Every client records end-to-end latency into its own
    {!Mp_util.Histogram} (log-bucket, allocation-free) and the run
    merges them: p50/p99/p99.9/max come from one shared-shape
    histogram, the same one the harness runner uses.

    Completions are polled oldest-first per client (tickets on one ring
    complete in FIFO order; across shards this is head-of-line
    conservative — a measured artifact of the bounded client, not of
    the service). Deadlines are likewise enforced head-of-line: a
    retried request re-enters at the tail with its original [t0], so an
    overdue non-head entry is cancelled when it reaches the head. *)

module Histogram = Mp_util.Histogram
module Rng = Mp_util.Rng
module Keygen = Mp_util.Keygen

type mode =
  | Closed of { pipeline : int }
  | Open of { rate : float; window : int }
      (** [rate]: mean arrivals per second {e per client}. *)

type spec = {
  clients : int;
  duration_s : float;
  warmup_s : float; (* completions before this are executed, not recorded *)
  read_pct : int;
  insert_pct : int; (* remainder = removes *)
  mget : int;
      (* reads are submitted as one [op_mget] of this many consecutive
         keys (1 = plain [op_contains]); [completed] counts the gets *)
  key_range : int;
  zipf_alpha : float option;
  seed : int;
  mode : mode;
  deadline_s : float; (* per-request deadline; 0 = none *)
  max_retries : int; (* retry budget per request (idempotence-aware) *)
}

type result = {
  submitted : int; (* requests that entered a ring in the window (first attempts) *)
  completed : int; (* successful SET ops inside the measured window *)
  completed_reqs : int; (* successful requests (mget counts once here) *)
  rejected : int; (* reply_rejected given up on, in the window *)
  busy : int; (* reply_busy given up on (deadline shed by the service) *)
  oom : int; (* reply_oom in the window *)
  drops : int; (* open loop: arrivals that could not be submitted *)
  deadline_exceeded : int; (* overdue requests abandoned via cancel *)
  ring_full : int; (* try_submit calls that found the ring full *)
  retries : int; (* resubmissions (not counted in [submitted]) *)
  elapsed_s : float; (* the measured window (duration - warmup) *)
  throughput : float; (* completed / elapsed_s *)
  latency : Histogram.t; (* merged across clients *)
}

let[@inline] pause spins =
  if !spins < 64 then begin
    incr spins;
    Domain.cpu_relax ()
  end
  else Unix.sleepf 0.0001

(* Per-client outcome tallies, merged after the join. Every submitted
   request lands in exactly one of completed_reqs / rejected / busy /
   oom / deadline_exceeded — the conservation law the chaos soak checks
   across crash–respawn boundaries (with [warmup_s = 0] the gating
   window covers the whole run and the law is exact). *)
type tally = {
  hist : Histogram.t;
  mutable submitted : int;
  mutable completed : int;
  mutable completed_reqs : int;
  mutable rejected : int;
  mutable busy : int;
  mutable oom : int;
  mutable drops : int;
  mutable deadline_exceeded : int;
  mutable ring_full : int;
  mutable retries : int;
}

let tally_create () =
  {
    hist = Histogram.create ();
    submitted = 0;
    completed = 0;
    completed_reqs = 0;
    rejected = 0;
    busy = 0;
    oom = 0;
    drops = 0;
    deadline_exceeded = 0;
    ring_full = 0;
    retries = 0;
  }

let[@inline] is_read op = op = Service.op_contains || op = Service.op_mget

(* The absolute wire deadline for a request whose clock started at [t0]. *)
let[@inline] deadline_us_of spec ~t0 =
  if spec.deadline_s > 0.0 then int_of_float ((t0 +. spec.deadline_s) *. 1e6) else 0

(* Bounded exponential backoff before a retry: 20 µs doubling, capped at
   1 ms — enough to let a recovering shard take its ring over without
   turning the client into a busy-spinner. *)
let[@inline] backoff attempts = Unix.sleepf (min 0.001 (ldexp 0.00002 attempts))

(* A client's outstanding tickets in parallel arrays, drained
   oldest-first. Request identity (op/key/value/attempts) rides along so
   the retry path can resubmit without threading state elsewhere. *)
type window = {
  tickets : int array;
  shard_of : int array;
  t0 : float array;
  ops : int array;
  keys : int array;
  values : int array;
  attempts : int array;
  cap : int;
  mutable head : int;
  mutable count : int;
}

let window_create cap =
  {
    tickets = Array.make cap 0;
    shard_of = Array.make cap 0;
    t0 = Array.make cap 0.0;
    ops = Array.make cap 0;
    keys = Array.make cap 0;
    values = Array.make cap 0;
    attempts = Array.make cap 0;
    cap;
    head = 0;
    count = 0;
  }

let[@inline] window_push w ~ticket ~shard ~t0 ~op ~key ~value ~attempts =
  let i = (w.head + w.count) mod w.cap in
  w.tickets.(i) <- ticket;
  w.shard_of.(i) <- shard;
  w.t0.(i) <- t0;
  w.ops.(i) <- op;
  w.keys.(i) <- key;
  w.values.(i) <- value;
  w.attempts.(i) <- attempts;
  w.count <- w.count + 1

let[@inline] window_pop w =
  w.head <- (w.head + 1) mod w.cap;
  w.count <- w.count - 1

(* Classify a reply for a request that left the window. Successes record
   into the histogram ([completed] counts SET operations: a multi-get
   reply completes [mget] gets at once; latency is one sample per
   request — a request round-trip time). Retryable failures resubmit
   with backoff while the budget, the deadline and the run clock allow;
   everything else tallies exactly once. *)
let handle_reply service spec w tl ~mget ~t_measure ~t_stop ~t0 ~op ~key ~value
    ~attempts r =
  let now = Unix.gettimeofday () in
  let in_win = now >= t_measure in
  let give_up () =
    if in_win then begin
      if r = Service.reply_busy then tl.busy <- tl.busy + 1
      else if r = Service.reply_oom then tl.oom <- tl.oom + 1
      else tl.rejected <- tl.rejected + 1
    end
  in
  if r = Service.reply_busy || r = Service.reply_rejected || r = Service.reply_oom
  then begin
    let retryable =
      (* busy = definitely not executed: anything may retry. rejected =
         ambiguous: only idempotent reads retry. oom: give up (the pool
         will not refill by itself). *)
      r = Service.reply_busy || (r = Service.reply_rejected && is_read op)
    in
    if
      retryable && attempts < spec.max_retries && now < t_stop
      && (spec.deadline_s <= 0.0 || now -. t0 < spec.deadline_s)
      && w.count < w.cap
    then begin
      backoff attempts;
      let shard = Service.shard_of_key service key in
      let ticket =
        Service.try_submit service ~deadline_us:(deadline_us_of spec ~t0) ~shard ~op
          ~key ~value
      in
      if ticket < 0 then begin
        if in_win then tl.ring_full <- tl.ring_full + 1;
        give_up ()
      end
      else begin
        if in_win then tl.retries <- tl.retries + 1;
        window_push w ~ticket ~shard ~t0 ~op ~key ~value ~attempts:(attempts + 1)
      end
    end
    else give_up ()
  end
  else if in_win then begin
    tl.completed <- tl.completed + (if r >= Service.reply_mget_base then mget else 1);
    tl.completed_reqs <- tl.completed_reqs + 1;
    Histogram.record tl.hist (now -. t0)
  end

(* Poll the oldest outstanding request; true if it left the window
   (completed, retried back to the tail, or abandoned past deadline). *)
let window_poll_oldest service spec w tl ~mget ~t_measure ~t_stop =
  if w.count = 0 then false
  else begin
    let i = w.head in
    let ticket = w.tickets.(i) and shard = w.shard_of.(i) in
    let t0 = w.t0.(i) and op = w.ops.(i) and key = w.keys.(i) in
    let value = w.values.(i) and attempts = w.attempts.(i) in
    let r = Service.poll service ~shard ~ticket in
    if r >= 0 then begin
      window_pop w;
      handle_reply service spec w tl ~mget ~t_measure ~t_stop ~t0 ~op ~key ~value
        ~attempts r;
      true
    end
    else if spec.deadline_s > 0.0 && Unix.gettimeofday () -. t0 > spec.deadline_s
    then begin
      (* Overdue: abandon the ticket. If the cancel raced a completion
         the reply is handled normally (handle_reply will not retry — the
         deadline guard fails); a won cancel is a deadline_exceeded,
         distinct from drops and rejections. *)
      let c = Service.cancel service ~shard ~ticket in
      window_pop w;
      if c >= 0 then
        handle_reply service spec w tl ~mget ~t_measure ~t_stop ~t0 ~op ~key ~value
          ~attempts c
      else if Unix.gettimeofday () >= t_measure then
        tl.deadline_exceeded <- tl.deadline_exceeded + 1;
      true
    end
    else false
  end

(* Reads become one [op_mget] of [spec.mget] consecutive keys when the
   spec asks for multi-gets; writes are always single-key. *)
let[@inline] pick_op spec rng =
  let roll = Rng.below rng 100 in
  if roll < spec.read_pct then
    if spec.mget > 1 then Service.op_mget else Service.op_contains
  else if roll < spec.read_pct + spec.insert_pct then Service.op_insert
  else Service.op_remove

(* Drain whatever is still outstanding when the clock runs out (the
   service is still serving; clients stop first, shards after). Bounded
   when deadlines are armed — overdue requests are cancelled — and
   otherwise relies on the service's every-request-answered guarantee. *)
let drain_all service spec w tl ~mget ~t_measure ~t_stop =
  let spins = ref 0 in
  while w.count > 0 do
    if window_poll_oldest service spec w tl ~mget ~t_measure ~t_stop then spins := 0
    else pause spins
  done

let closed_client service spec ~pipeline ~idx ~t_start ~t_measure ~t_stop tl =
  let rng = Rng.split ~seed:spec.seed ~tid:idx in
  let keys =
    match spec.zipf_alpha with
    | Some alpha -> Keygen.zipf ~range:spec.key_range ~alpha
    | None -> Keygen.uniform ~range:spec.key_range
  in
  ignore t_start;
  let mget = max 1 spec.mget in
  let w = window_create (pipeline + max 1 spec.max_retries) in
  (* cap > pipeline so a retry always finds window room *)
  let spins = ref 0 in
  while Unix.gettimeofday () < t_stop do
    (* Fill the pipeline as far as the rings allow. *)
    let blocked = ref false in
    while w.count < pipeline && not !blocked do
      let op = pick_op spec rng in
      let key = Keygen.next keys rng in
      let shard = Service.shard_of_key service key in
      let value = if op = Service.op_mget then mget else key in
      let now = Unix.gettimeofday () in
      let ticket =
        Service.try_submit service ~deadline_us:(deadline_us_of spec ~t0:now) ~shard
          ~op ~key ~value
      in
      if ticket < 0 then begin
        (* Previously a silent retry-next-iteration; now counted. *)
        if now >= t_measure then tl.ring_full <- tl.ring_full + 1;
        blocked := true
      end
      else begin
        if now >= t_measure then tl.submitted <- tl.submitted + 1;
        window_push w ~ticket ~shard ~t0:now ~op ~key ~value ~attempts:0
      end
    done;
    (* Reap completions oldest-first. *)
    let progress = ref false in
    while w.count > 0 && window_poll_oldest service spec w tl ~mget ~t_measure ~t_stop do
      progress := true
    done;
    if !progress then spins := 0 else pause spins
  done;
  drain_all service spec w tl ~mget ~t_measure ~t_stop

let open_client service spec ~rate ~window ~idx ~t_start ~t_measure ~t_stop tl =
  let rng = Rng.split ~seed:spec.seed ~tid:idx in
  let keys =
    match spec.zipf_alpha with
    | Some alpha -> Keygen.zipf ~range:spec.key_range ~alpha
    | None -> Keygen.uniform ~range:spec.key_range
  in
  let mget = max 1 spec.mget in
  let w = window_create (window + max 1 spec.max_retries) in
  let spins = ref 0 in
  (* Exponential inter-arrival gap, mean 1/rate. *)
  let next_gap () = -.log (1.0 -. Rng.float rng) /. rate in
  let next_arrival = ref (t_start +. next_gap ()) in
  let now = ref (Unix.gettimeofday ()) in
  while !now < t_stop do
    if !now >= !next_arrival then begin
      (* An arrival is due. If it cannot enter the system (window or
         ring full) it is a drop — the schedule does not slip, which is
         what makes the loop open. Drops gate on the measurement window
         like every other tally (they used to count from t_start,
         inflating reported drop rates by the warmup). *)
      let in_win = !now >= t_measure in
      (if w.count >= window then begin
         if in_win then tl.drops <- tl.drops + 1
       end
       else begin
         let op = pick_op spec rng in
         let key = Keygen.next keys rng in
         let shard = Service.shard_of_key service key in
         let value = if op = Service.op_mget then mget else key in
         (* t0 = scheduled arrival, not submit time: queueing delay
            behind a slow service is charged to the request. *)
         let t0 = !next_arrival in
         let ticket =
           Service.try_submit service ~deadline_us:(deadline_us_of spec ~t0) ~shard
             ~op ~key ~value
         in
         if ticket < 0 then begin
           if in_win then begin
             tl.ring_full <- tl.ring_full + 1;
             tl.drops <- tl.drops + 1
           end
         end
         else begin
           if in_win then tl.submitted <- tl.submitted + 1;
           window_push w ~ticket ~shard ~t0 ~op ~key ~value ~attempts:0
         end
       end);
      next_arrival := !next_arrival +. next_gap ();
      spins := 0
    end
    else begin
      let progress = ref false in
      while
        w.count > 0 && window_poll_oldest service spec w tl ~mget ~t_measure ~t_stop
      do
        progress := true
      done;
      if !progress then spins := 0
      else begin
        (* Idle until the next arrival (bounded so completions are
           still reaped promptly). *)
        let gap = !next_arrival -. !now in
        if gap > 0.0002 then Unix.sleepf (min gap 0.0005) else pause spins
      end
    end;
    now := Unix.gettimeofday ()
  done;
  drain_all service spec w tl ~mget ~t_measure ~t_stop

(** Run the generator against a started service; blocks until the
    duration elapses and every outstanding request is answered or
    abandoned. [?tick] is called every ~2 ms from the calling thread
    while the clients run — the hook the soak harness hangs its
    watchdog sampler on. *)
let run ?(tick = fun () -> ()) service spec =
  let clients = max 1 spec.clients in
  let tallies = Array.init clients (fun _ -> tally_create ()) in
  let t_start = Unix.gettimeofday () in
  let t_measure = t_start +. spec.warmup_s in
  let t_stop = t_start +. spec.duration_s in
  let finished = Atomic.make 0 in
  let spawn idx =
    Domain.spawn (fun () ->
        (match spec.mode with
        | Closed { pipeline } ->
          closed_client service spec ~pipeline:(max 1 pipeline) ~idx ~t_start ~t_measure
            ~t_stop tallies.(idx)
        | Open { rate; window } ->
          open_client service spec ~rate ~window:(max 1 window) ~idx ~t_start ~t_measure
            ~t_stop tallies.(idx));
        Atomic.incr finished)
  in
  let domains = Array.init clients spawn in
  while Atomic.get finished < clients do
    Unix.sleepf 0.002;
    tick ()
  done;
  Array.iter Domain.join domains;
  let latency = Histogram.create () in
  let submitted = ref 0 and completed = ref 0 and completed_reqs = ref 0 in
  let rejected = ref 0 and busy = ref 0 and oom = ref 0 and drops = ref 0 in
  let deadline_exceeded = ref 0 and ring_full = ref 0 and retries = ref 0 in
  Array.iter
    (fun tl ->
      Histogram.merge_into ~into:latency tl.hist;
      submitted := !submitted + tl.submitted;
      completed := !completed + tl.completed;
      completed_reqs := !completed_reqs + tl.completed_reqs;
      rejected := !rejected + tl.rejected;
      busy := !busy + tl.busy;
      oom := !oom + tl.oom;
      drops := !drops + tl.drops;
      deadline_exceeded := !deadline_exceeded + tl.deadline_exceeded;
      ring_full := !ring_full + tl.ring_full;
      retries := !retries + tl.retries)
    tallies;
  let elapsed_s = spec.duration_s -. spec.warmup_s in
  {
    submitted = !submitted;
    completed = !completed;
    completed_reqs = !completed_reqs;
    rejected = !rejected;
    busy = !busy;
    oom = !oom;
    drops = !drops;
    deadline_exceeded = !deadline_exceeded;
    ring_full = !ring_full;
    retries = !retries;
    elapsed_s;
    throughput = (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    latency;
  }
