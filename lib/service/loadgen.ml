(** Client-side load generator for {!Service}.

    Two arrival models:

    - {b Closed loop}: each client keeps a fixed pipeline of P requests
      outstanding — classic benchmark load, throughput-seeking. End-to-
      end latency is measured from submission.
    - {b Open loop}: arrivals follow a Poisson process at a fixed rate
      per client, independent of completions (bounded by [window]
      outstanding; arrivals that cannot be submitted are counted as
      {!result.drops}, never silently skipped). Latency is measured
      from the {e scheduled} arrival time, so a stalled service shows
      up as queueing delay instead of being hidden by back-pressure
      (the coordinated-omission correction).

    Every client records end-to-end latency into its own
    {!Mp_util.Histogram} (log-bucket, allocation-free) and the run
    merges them: p50/p99/p99.9/max come from one shared-shape
    histogram, the same one the harness runner uses.

    Completions are polled oldest-first per client (tickets on one ring
    complete in FIFO order; across shards this is head-of-line
    conservative — a measured artifact of the bounded client, not of
    the service). *)

module Histogram = Mp_util.Histogram
module Rng = Mp_util.Rng
module Keygen = Mp_util.Keygen

type mode =
  | Closed of { pipeline : int }
  | Open of { rate : float; window : int }
      (** [rate]: mean arrivals per second {e per client}. *)

type spec = {
  clients : int;
  duration_s : float;
  warmup_s : float; (* completions before this are executed, not recorded *)
  read_pct : int;
  insert_pct : int; (* remainder = removes *)
  mget : int;
      (* reads are submitted as one [op_mget] of this many consecutive
         keys (1 = plain [op_contains]); [completed] counts the gets *)
  key_range : int;
  zipf_alpha : float option;
  seed : int;
  mode : mode;
}

type result = {
  completed : int; (* successful replies inside the measured window *)
  rejected : int; (* reply_rejected (crashed shard) in the window *)
  oom : int; (* reply_oom in the window *)
  drops : int; (* open loop: arrivals that could not be submitted *)
  elapsed_s : float; (* the measured window (duration - warmup) *)
  throughput : float; (* completed / elapsed_s *)
  latency : Histogram.t; (* merged across clients *)
}

let[@inline] pause spins =
  if !spins < 64 then begin
    incr spins;
    Domain.cpu_relax ()
  end
  else Unix.sleepf 0.0001

(* Per-client outcome tallies, merged after the join. *)
type tally = {
  hist : Histogram.t;
  mutable completed : int;
  mutable rejected : int;
  mutable oom : int;
  mutable drops : int;
}

(* [completed] counts SET operations: a multi-get reply
   ([>= reply_mget_base]) completes [mget] gets at once. Latency is one
   sample per request either way — it is a request round-trip time. *)
let[@inline] record tally ~mget ~t_measure ~t0 ~now reply =
  if now >= t_measure then begin
    if reply = Service.reply_rejected then tally.rejected <- tally.rejected + 1
    else if reply = Service.reply_oom then tally.oom <- tally.oom + 1
    else begin
      tally.completed <-
        tally.completed + (if reply >= Service.reply_mget_base then mget else 1);
      Histogram.record tally.hist (now -. t0)
    end
  end

(* A client's outstanding tickets: a ring of (ticket, shard, t0) triples
   in parallel arrays, drained oldest-first. *)
type window = {
  tickets : int array;
  shard_of : int array;
  t0 : float array;
  cap : int;
  mutable head : int;
  mutable count : int;
}

let window_create cap =
  { tickets = Array.make cap 0; shard_of = Array.make cap 0; t0 = Array.make cap 0.0;
    cap; head = 0; count = 0 }

let[@inline] window_push w ~ticket ~shard ~t0 =
  let i = (w.head + w.count) mod w.cap in
  w.tickets.(i) <- ticket;
  w.shard_of.(i) <- shard;
  w.t0.(i) <- t0;
  w.count <- w.count + 1

(* Poll the oldest outstanding request; true if it completed. *)
let[@inline] window_poll_oldest service w tally ~mget ~t_measure =
  let i = w.head in
  let r = Service.poll service ~shard:w.shard_of.(i) ~ticket:w.tickets.(i) in
  if r < 0 then false
  else begin
    record tally ~mget ~t_measure ~t0:w.t0.(i) ~now:(Unix.gettimeofday ()) r;
    w.head <- (w.head + 1) mod w.cap;
    w.count <- w.count - 1;
    true
  end

(* Reads become one [op_mget] of [spec.mget] consecutive keys when the
   spec asks for multi-gets; writes are always single-key. *)
let[@inline] pick_op spec rng =
  let roll = Rng.below rng 100 in
  if roll < spec.read_pct then
    if spec.mget > 1 then Service.op_mget else Service.op_contains
  else if roll < spec.read_pct + spec.insert_pct then Service.op_insert
  else Service.op_remove

(* Drain whatever is still outstanding when the clock runs out (the
   service is still serving; clients stop first, shards after). *)
let drain_all service w tally ~mget ~t_measure =
  let spins = ref 0 in
  while w.count > 0 do
    if window_poll_oldest service w tally ~mget ~t_measure then spins := 0
    else pause spins
  done

let closed_client service spec ~pipeline ~idx ~t_start ~t_measure ~t_stop tally =
  let rng = Rng.split ~seed:spec.seed ~tid:idx in
  let keys =
    match spec.zipf_alpha with
    | Some alpha -> Keygen.zipf ~range:spec.key_range ~alpha
    | None -> Keygen.uniform ~range:spec.key_range
  in
  ignore t_start;
  let mget = max 1 spec.mget in
  let w = window_create pipeline in
  let spins = ref 0 in
  while Unix.gettimeofday () < t_stop do
    (* Fill the pipeline as far as the rings allow. *)
    let blocked = ref false in
    while w.count < pipeline && not !blocked do
      let op = pick_op spec rng in
      let key = Keygen.next keys rng in
      let shard = Service.shard_of_key service key in
      let value = if op = Service.op_mget then mget else key in
      let ticket = Service.try_submit service ~shard ~op ~key ~value in
      if ticket < 0 then blocked := true
      else window_push w ~ticket ~shard ~t0:(Unix.gettimeofday ())
    done;
    (* Reap completions oldest-first. *)
    let progress = ref false in
    while w.count > 0 && window_poll_oldest service w tally ~mget ~t_measure do
      progress := true
    done;
    if !progress then spins := 0 else pause spins
  done;
  drain_all service w tally ~mget ~t_measure

let open_client service spec ~rate ~window ~idx ~t_start ~t_measure ~t_stop tally =
  let rng = Rng.split ~seed:spec.seed ~tid:idx in
  let keys =
    match spec.zipf_alpha with
    | Some alpha -> Keygen.zipf ~range:spec.key_range ~alpha
    | None -> Keygen.uniform ~range:spec.key_range
  in
  let mget = max 1 spec.mget in
  let w = window_create window in
  let spins = ref 0 in
  (* Exponential inter-arrival gap, mean 1/rate. *)
  let next_gap () = -.log (1.0 -. Rng.float rng) /. rate in
  let next_arrival = ref (t_start +. next_gap ()) in
  let now = ref (Unix.gettimeofday ()) in
  while !now < t_stop do
    if !now >= !next_arrival then begin
      (* An arrival is due. If it cannot enter the system (window or
         ring full) it is a drop — the schedule does not slip, which is
         what makes the loop open. *)
      (if w.count >= window then tally.drops <- tally.drops + 1
       else begin
         let op = pick_op spec rng in
         let key = Keygen.next keys rng in
         let shard = Service.shard_of_key service key in
         let value = if op = Service.op_mget then mget else key in
         let ticket = Service.try_submit service ~shard ~op ~key ~value in
         if ticket < 0 then tally.drops <- tally.drops + 1
         else
           (* t0 = scheduled arrival, not submit time: queueing delay
              behind a slow service is charged to the request. *)
           window_push w ~ticket ~shard ~t0:!next_arrival
       end);
      next_arrival := !next_arrival +. next_gap ();
      spins := 0
    end
    else begin
      let progress = ref false in
      while w.count > 0 && window_poll_oldest service w tally ~mget ~t_measure do
        progress := true
      done;
      if !progress then spins := 0
      else begin
        (* Idle until the next arrival (bounded so completions are
           still reaped promptly). *)
        let gap = !next_arrival -. !now in
        if gap > 0.0002 then Unix.sleepf (min gap 0.0005) else pause spins
      end
    end;
    now := Unix.gettimeofday ()
  done;
  drain_all service w tally ~mget ~t_measure

(** Run the generator against a started service; blocks until the
    duration elapses and every outstanding request is answered.
    [?tick] is called every ~2 ms from the calling thread while the
    clients run — the hook the soak harness hangs its watchdog sampler
    on. *)
let run ?(tick = fun () -> ()) service spec =
  let clients = max 1 spec.clients in
  let tallies =
    Array.init clients (fun _ ->
        { hist = Histogram.create (); completed = 0; rejected = 0; oom = 0; drops = 0 })
  in
  let t_start = Unix.gettimeofday () in
  let t_measure = t_start +. spec.warmup_s in
  let t_stop = t_start +. spec.duration_s in
  let finished = Atomic.make 0 in
  let spawn idx =
    Domain.spawn (fun () ->
        (match spec.mode with
        | Closed { pipeline } ->
          closed_client service spec ~pipeline:(max 1 pipeline) ~idx ~t_start ~t_measure
            ~t_stop tallies.(idx)
        | Open { rate; window } ->
          open_client service spec ~rate ~window:(max 1 window) ~idx ~t_start ~t_measure
            ~t_stop tallies.(idx));
        Atomic.incr finished)
  in
  let domains = Array.init clients spawn in
  while Atomic.get finished < clients do
    Unix.sleepf 0.002;
    tick ()
  done;
  Array.iter Domain.join domains;
  let latency = Histogram.create () in
  let completed = ref 0 and rejected = ref 0 and oom = ref 0 and drops = ref 0 in
  Array.iter
    (fun tl ->
      Histogram.merge_into ~into:latency tl.hist;
      completed := !completed + tl.completed;
      rejected := !rejected + tl.rejected;
      oom := !oom + tl.oom;
      drops := !drops + tl.drops)
    tallies;
  let elapsed_s = spec.duration_s -. spec.warmup_s in
  {
    completed = !completed;
    rejected = !rejected;
    oom = !oom;
    drops = !drops;
    elapsed_s;
    throughput = (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    latency;
  }
