(** Client-side load generator for {!Service}.

    Two arrival models:

    - {b Closed loop}: each client keeps a fixed pipeline of P requests
      outstanding — classic benchmark load, throughput-seeking. End-to-
      end latency is measured from submission.
    - {b Open loop}: arrivals follow a Poisson process at a fixed rate
      per client, independent of completions (bounded by [window]
      outstanding; arrivals that cannot be submitted are counted as
      {!result.drops}, never silently skipped). Latency is measured
      from the {e scheduled} arrival time, so a stalled service shows
      up as queueing delay instead of being hidden by back-pressure
      (the coordinated-omission correction).

    Resilience (all off by default, so a plain spec behaves exactly like
    the pre-recovery generator):

    - {b Deadlines} ([spec.deadline_s] > 0): each request carries an
      absolute deadline. The service sheds requests it picks up late
      ({!Service.reply_busy}); the client abandons the head-of-line
      request once it is overdue through {!Service.cancel} and tallies
      it [deadline_exceeded] — distinct from drops and rejections —
      unless the cancel raced a completion, which is then recorded
      normally.
    - {b Retries} ([spec.max_retries] > 0): bounded-exponential-backoff
      resubmission, idempotence-aware. [reply_busy] guarantees the
      request did not execute, so {e any} operation retries on it;
      [reply_rejected] is ambiguous (the shard may have crashed
      mid-write), so only reads ([contains]/[mget]) retry on it —
      writes give up, exactly the at-most-once behaviour a correct
      client needs. Retried requests keep their original [t0], so
      latency covers the whole saga.
    - {b Backpressure telemetry}: every [try_submit] that found the
      ring full counts into [ring_full] (closed-loop clients previously
      retried silently; open-loop full-ring arrivals also count a
      drop).

    Every client records end-to-end latency into its own
    {!Mp_util.Histogram} (log-bucket, allocation-free) and the run
    merges them: p50/p99/p99.9/max come from one shared-shape
    histogram, the same one the harness runner uses.

    Completions are polled oldest-first per client (tickets on one ring
    complete in FIFO order; across shards this is head-of-line
    conservative — a measured artifact of the bounded client, not of
    the service). Deadlines are likewise enforced head-of-line: a
    retried request re-enters at the tail with its original [t0], so an
    overdue non-head entry is cancelled when it reaches the head. *)

module Histogram = Mp_util.Histogram
module Rng = Mp_util.Rng
module Keygen = Mp_util.Keygen

type mode =
  | Closed of { pipeline : int }
  | Open of { rate : float; window : int }
      (** [rate]: mean arrivals per second {e per client}. *)

type spec = {
  clients : int;
  duration_s : float;
  warmup_s : float; (* completions before this are executed, not recorded *)
  read_pct : int;
  insert_pct : int; (* remainder = removes *)
  mget : int;
      (* reads are submitted as one [op_mget] of this many consecutive
         keys (1 = plain [op_contains]); [completed] counts the gets *)
  key_range : int;
  zipf_alpha : float option;
  seed : int;
  mode : mode;
  deadline_s : float; (* per-request deadline; 0 = none *)
  max_retries : int; (* retry budget per request (idempotence-aware) *)
  chain : int;
      (* closed loop only: submit this many requests per round as
         per-shard chains (one tail CAS + one coalesced wait per chain)
         instead of per-slot submit/poll. 1 = exactly the per-slot
         path; in chain mode client-side retries/cancels are off
         (deadlines still ride the wire, so the server sheds busy) and
         latency records one sample per round. Must be at most half
         the ring capacity. *)
}

type result = {
  submitted : int; (* requests that entered a ring in the window (first attempts) *)
  completed : int; (* successful SET ops inside the measured window *)
  completed_reqs : int; (* successful requests (mget counts once here) *)
  rejected : int; (* reply_rejected given up on, in the window *)
  busy : int; (* reply_busy given up on (deadline shed by the service) *)
  oom : int; (* reply_oom in the window *)
  drops : int; (* open loop: arrivals that could not be submitted *)
  deadline_exceeded : int; (* overdue requests abandoned via cancel *)
  ring_full : int; (* try_submit calls that found the ring full *)
  retries : int; (* resubmissions (not counted in [submitted]) *)
  elapsed_s : float; (* the measured window (duration - warmup) *)
  throughput : float; (* completed / elapsed_s *)
  latency : Histogram.t; (* merged across clients *)
}

let[@inline] pause spins =
  if !spins < 64 then begin
    incr spins;
    Domain.cpu_relax ()
  end
  else Unix.sleepf 0.0001

(* Per-client outcome tallies, merged after the join. Every submitted
   request lands in exactly one of completed_reqs / rejected / busy /
   oom / deadline_exceeded — the conservation law the chaos soak checks
   across crash–respawn boundaries (with [warmup_s = 0] the gating
   window covers the whole run and the law is exact). *)
type tally = {
  hist : Histogram.t;
  mutable submitted : int;
  mutable completed : int;
  mutable completed_reqs : int;
  mutable rejected : int;
  mutable busy : int;
  mutable oom : int;
  mutable drops : int;
  mutable deadline_exceeded : int;
  mutable ring_full : int;
  mutable retries : int;
}

let tally_create () =
  {
    hist = Histogram.create ();
    submitted = 0;
    completed = 0;
    completed_reqs = 0;
    rejected = 0;
    busy = 0;
    oom = 0;
    drops = 0;
    deadline_exceeded = 0;
    ring_full = 0;
    retries = 0;
  }

let[@inline] is_read op = op = Service.op_contains || op = Service.op_mget

(* The absolute wire deadline for a request whose clock started at [t0]. *)
let[@inline] deadline_us_of spec ~t0 =
  if spec.deadline_s > 0.0 then int_of_float ((t0 +. spec.deadline_s) *. 1e6) else 0

(* Bounded exponential backoff before a retry: 20 µs doubling, capped at
   1 ms — enough to let a recovering shard take its ring over without
   turning the client into a busy-spinner. *)
let[@inline] backoff attempts = Unix.sleepf (min 0.001 (ldexp 0.00002 attempts))

(* A client's outstanding tickets in parallel arrays, drained
   oldest-first. Request identity (op/key/value/attempts) rides along so
   the retry path can resubmit without threading state elsewhere. *)
type window = {
  tickets : int array;
  shard_of : int array;
  t0 : float array;
  ops : int array;
  keys : int array;
  values : int array;
  attempts : int array;
  cap : int;
  mutable head : int;
  mutable count : int;
}

let window_create cap =
  {
    tickets = Array.make cap 0;
    shard_of = Array.make cap 0;
    t0 = Array.make cap 0.0;
    ops = Array.make cap 0;
    keys = Array.make cap 0;
    values = Array.make cap 0;
    attempts = Array.make cap 0;
    cap;
    head = 0;
    count = 0;
  }

let[@inline] window_push w ~ticket ~shard ~t0 ~op ~key ~value ~attempts =
  let i = (w.head + w.count) mod w.cap in
  w.tickets.(i) <- ticket;
  w.shard_of.(i) <- shard;
  w.t0.(i) <- t0;
  w.ops.(i) <- op;
  w.keys.(i) <- key;
  w.values.(i) <- value;
  w.attempts.(i) <- attempts;
  w.count <- w.count + 1

let[@inline] window_pop w =
  w.head <- (w.head + 1) mod w.cap;
  w.count <- w.count - 1

(* Classify a reply for a request that left the window. Successes record
   into the histogram ([completed] counts SET operations: a multi-get
   reply completes [mget] gets at once; latency is one sample per
   request — a request round-trip time). Retryable failures resubmit
   with backoff while the budget, the deadline and the run clock allow;
   everything else tallies exactly once. *)
let handle_reply service spec w tl ~mget ~t_measure ~t_stop ~t0 ~op ~key ~value
    ~attempts r =
  let now = Unix.gettimeofday () in
  let in_win = now >= t_measure in
  let give_up () =
    if in_win then begin
      if r = Service.reply_busy then tl.busy <- tl.busy + 1
      else if r = Service.reply_oom then tl.oom <- tl.oom + 1
      else tl.rejected <- tl.rejected + 1
    end
  in
  if r = Service.reply_busy || r = Service.reply_rejected || r = Service.reply_oom
  then begin
    let retryable =
      (* busy = definitely not executed: anything may retry. rejected =
         ambiguous: only idempotent reads retry. oom: give up (the pool
         will not refill by itself). *)
      r = Service.reply_busy || (r = Service.reply_rejected && is_read op)
    in
    if
      retryable && attempts < spec.max_retries && now < t_stop
      && (spec.deadline_s <= 0.0 || now -. t0 < spec.deadline_s)
      && w.count < w.cap
    then begin
      backoff attempts;
      let shard = Service.shard_of_key service key in
      let ticket =
        Service.try_submit service ~deadline_us:(deadline_us_of spec ~t0) ~shard ~op
          ~key ~value
      in
      if ticket < 0 then begin
        if in_win then tl.ring_full <- tl.ring_full + 1;
        give_up ()
      end
      else begin
        if in_win then tl.retries <- tl.retries + 1;
        window_push w ~ticket ~shard ~t0 ~op ~key ~value ~attempts:(attempts + 1)
      end
    end
    else give_up ()
  end
  else if in_win then begin
    tl.completed <- tl.completed + (if r >= Service.reply_mget_base then mget else 1);
    tl.completed_reqs <- tl.completed_reqs + 1;
    Histogram.record tl.hist (now -. t0)
  end

(* Poll the oldest outstanding request; true if it left the window
   (completed, retried back to the tail, or abandoned past deadline). *)
let window_poll_oldest service spec w tl ~mget ~t_measure ~t_stop =
  if w.count = 0 then false
  else begin
    let i = w.head in
    let ticket = w.tickets.(i) and shard = w.shard_of.(i) in
    let t0 = w.t0.(i) and op = w.ops.(i) and key = w.keys.(i) in
    let value = w.values.(i) and attempts = w.attempts.(i) in
    let r = Service.poll service ~shard ~ticket in
    if r >= 0 then begin
      window_pop w;
      handle_reply service spec w tl ~mget ~t_measure ~t_stop ~t0 ~op ~key ~value
        ~attempts r;
      true
    end
    else if spec.deadline_s > 0.0 && Unix.gettimeofday () -. t0 > spec.deadline_s
    then begin
      (* Overdue: abandon the ticket. If the cancel raced a completion
         the reply is handled normally (handle_reply will not retry — the
         deadline guard fails); a won cancel is a deadline_exceeded,
         distinct from drops and rejections. *)
      let c = Service.cancel service ~shard ~ticket in
      window_pop w;
      if c >= 0 then
        handle_reply service spec w tl ~mget ~t_measure ~t_stop ~t0 ~op ~key ~value
          ~attempts c
      else if Unix.gettimeofday () >= t_measure then
        tl.deadline_exceeded <- tl.deadline_exceeded + 1;
      true
    end
    else false
  end

(* Reads become one [op_mget] of [spec.mget] consecutive keys when the
   spec asks for multi-gets; writes are always single-key. *)
let[@inline] pick_op spec rng =
  let roll = Rng.below rng 100 in
  if roll < spec.read_pct then
    if spec.mget > 1 then Service.op_mget else Service.op_contains
  else if roll < spec.read_pct + spec.insert_pct then Service.op_insert
  else Service.op_remove

(* Drain whatever is still outstanding when the clock runs out (the
   service is still serving; clients stop first, shards after). Bounded
   when deadlines are armed — overdue requests are cancelled — and
   otherwise relies on the service's every-request-answered guarantee. *)
let drain_all service spec w tl ~mget ~t_measure ~t_stop =
  let spins = ref 0 in
  while w.count > 0 do
    if window_poll_oldest service spec w tl ~mget ~t_measure ~t_stop then spins := 0
    else pause spins
  done

let closed_client service spec ~pipeline ~idx ~t_start ~t_measure ~t_stop tl =
  let rng = Rng.split ~seed:spec.seed ~tid:idx in
  let keys =
    match spec.zipf_alpha with
    | Some alpha -> Keygen.zipf ~range:spec.key_range ~alpha
    | None -> Keygen.uniform ~range:spec.key_range
  in
  ignore t_start;
  let mget = max 1 spec.mget in
  let w = window_create (pipeline + max 1 spec.max_retries) in
  (* cap > pipeline so a retry always finds window room *)
  let spins = ref 0 in
  while Unix.gettimeofday () < t_stop do
    (* Fill the pipeline as far as the rings allow. *)
    let blocked = ref false in
    while w.count < pipeline && not !blocked do
      let op = pick_op spec rng in
      let key = Keygen.next keys rng in
      let shard = Service.shard_of_key service key in
      let value = if op = Service.op_mget then mget else key in
      let now = Unix.gettimeofday () in
      let ticket =
        Service.try_submit service ~deadline_us:(deadline_us_of spec ~t0:now) ~shard
          ~op ~key ~value
      in
      if ticket < 0 then begin
        (* Previously a silent retry-next-iteration; now counted. *)
        if now >= t_measure then tl.ring_full <- tl.ring_full + 1;
        blocked := true
      end
      else begin
        if now >= t_measure then tl.submitted <- tl.submitted + 1;
        window_push w ~ticket ~shard ~t0:now ~op ~key ~value ~attempts:0
      end
    done;
    (* Reap completions oldest-first. *)
    let progress = ref false in
    while w.count > 0 && window_poll_oldest service spec w tl ~mget ~t_measure ~t_stop do
      progress := true
    done;
    if !progress then spins := 0 else pause spins
  done;
  drain_all service spec w tl ~mget ~t_measure ~t_stop

(* Chained closed loop: each round generates [chain] requests, buckets
   them by owning shard, submits one chain per non-empty shard (a
   single tail CAS each), then waits once per chain on its last slot
   and harvests all replies — the per-request transport cost (CAS,
   wakeup, reply spin) is paid once per chain. Replies are classified
   per slot with the same tallies as the per-slot path, so the
   conservation law submitted = completed_reqs + rejected + busy + oom
   holds exactly at [warmup_s = 0] (no client-side retries or cancels
   in chain mode). *)
let chained_client service spec ~chain ~idx ~t_start ~t_measure ~t_stop tl =
  let rng = Rng.split ~seed:spec.seed ~tid:idx in
  let keys =
    match spec.zipf_alpha with
    | Some alpha -> Keygen.zipf ~range:spec.key_range ~alpha
    | None -> Keygen.uniform ~range:spec.key_range
  in
  ignore t_start;
  let mget = max 1 spec.mget in
  let shards = Service.shards service in
  (* Per-shard buckets in one flat array: shard [s] owns
     [s * chain, s * chain + counts.(s)). *)
  let ops = Array.make (shards * chain) 0 in
  let keys_a = Array.make (shards * chain) 0 in
  let values = Array.make (shards * chain) 0 in
  let replies = Array.make (shards * chain) 0 in
  let counts = Array.make shards 0 in
  let tickets = Array.make shards 0 in
  while Unix.gettimeofday () < t_stop do
    Array.fill counts 0 shards 0;
    for _ = 1 to chain do
      let op = pick_op spec rng in
      let key = Keygen.next keys rng in
      let shard = Service.shard_of_key service key in
      let i = (shard * chain) + counts.(shard) in
      ops.(i) <- op;
      keys_a.(i) <- key;
      values.(i) <- (if op = Service.op_mget then mget else key);
      counts.(shard) <- counts.(shard) + 1
    done;
    let t0 = Unix.gettimeofday () in
    let deadline_us = deadline_us_of spec ~t0 in
    let in_win = t0 >= t_measure in
    for s = 0 to shards - 1 do
      let n = counts.(s) in
      if n > 0 then begin
        (* Ring full is transient while the service runs (the consumer
           drains); block with the shared pause discipline. *)
        let spins = ref 0 in
        let t =
          ref
            (Service.try_submit_chain service ~deadline_us ~shard:s ~n ~ops
               ~keys:keys_a ~values ~off:(s * chain))
        in
        while !t < 0 do
          if in_win then tl.ring_full <- tl.ring_full + 1;
          pause spins;
          t :=
            Service.try_submit_chain service ~deadline_us ~shard:s ~n ~ops
              ~keys:keys_a ~values ~off:(s * chain)
        done;
        tickets.(s) <- !t
      end
    done;
    for s = 0 to shards - 1 do
      let n = counts.(s) in
      if n > 0 then begin
        Service.await_chain service ~shard:s ~ticket:tickets.(s) ~n;
        Service.harvest_chain service ~shard:s ~ticket:tickets.(s) ~n ~replies
          ~off:(s * chain)
      end
    done;
    let now = Unix.gettimeofday () in
    if now >= t_measure then begin
      tl.submitted <- tl.submitted + chain;
      for s = 0 to shards - 1 do
        for j = 0 to counts.(s) - 1 do
          let r = replies.((s * chain) + j) in
          if r = Service.reply_busy then tl.busy <- tl.busy + 1
          else if r = Service.reply_oom then tl.oom <- tl.oom + 1
          else if r = Service.reply_rejected then tl.rejected <- tl.rejected + 1
          else begin
            tl.completed <-
              tl.completed + (if r >= Service.reply_mget_base then mget else 1);
            tl.completed_reqs <- tl.completed_reqs + 1
          end
        done
      done;
      Histogram.record tl.hist (now -. t0)
    end
  done

let open_client service spec ~rate ~window ~idx ~t_start ~t_measure ~t_stop tl =
  let rng = Rng.split ~seed:spec.seed ~tid:idx in
  let keys =
    match spec.zipf_alpha with
    | Some alpha -> Keygen.zipf ~range:spec.key_range ~alpha
    | None -> Keygen.uniform ~range:spec.key_range
  in
  let mget = max 1 spec.mget in
  let w = window_create (window + max 1 spec.max_retries) in
  let spins = ref 0 in
  (* Exponential inter-arrival gap, mean 1/rate. *)
  let next_gap () = -.log (1.0 -. Rng.float rng) /. rate in
  let next_arrival = ref (t_start +. next_gap ()) in
  let now = ref (Unix.gettimeofday ()) in
  while !now < t_stop do
    if !now >= !next_arrival then begin
      (* An arrival is due. If it cannot enter the system (window or
         ring full) it is a drop — the schedule does not slip, which is
         what makes the loop open. Drops gate on the measurement window
         like every other tally (they used to count from t_start,
         inflating reported drop rates by the warmup). *)
      let in_win = !now >= t_measure in
      (if w.count >= window then begin
         if in_win then tl.drops <- tl.drops + 1
       end
       else begin
         let op = pick_op spec rng in
         let key = Keygen.next keys rng in
         let shard = Service.shard_of_key service key in
         let value = if op = Service.op_mget then mget else key in
         (* t0 = scheduled arrival, not submit time: queueing delay
            behind a slow service is charged to the request. *)
         let t0 = !next_arrival in
         let ticket =
           Service.try_submit service ~deadline_us:(deadline_us_of spec ~t0) ~shard
             ~op ~key ~value
         in
         if ticket < 0 then begin
           if in_win then begin
             tl.ring_full <- tl.ring_full + 1;
             tl.drops <- tl.drops + 1
           end
         end
         else begin
           if in_win then tl.submitted <- tl.submitted + 1;
           window_push w ~ticket ~shard ~t0 ~op ~key ~value ~attempts:0
         end
       end);
      next_arrival := !next_arrival +. next_gap ();
      spins := 0
    end
    else begin
      let progress = ref false in
      while
        w.count > 0 && window_poll_oldest service spec w tl ~mget ~t_measure ~t_stop
      do
        progress := true
      done;
      if !progress then spins := 0
      else begin
        (* Idle until the next arrival (bounded so completions are
           still reaped promptly). *)
        let gap = !next_arrival -. !now in
        if gap > 0.0002 then Unix.sleepf (min gap 0.0005) else pause spins
      end
    end;
    now := Unix.gettimeofday ()
  done;
  drain_all service spec w tl ~mget ~t_measure ~t_stop

(** Run the generator against a started service; blocks until the
    duration elapses and every outstanding request is answered or
    abandoned. [?tick] is called every ~2 ms from the calling thread
    while the clients run — the hook the soak harness hangs its
    watchdog sampler on. *)
let run ?(tick = fun () -> ()) service spec =
  let clients = max 1 spec.clients in
  let tallies = Array.init clients (fun _ -> tally_create ()) in
  let t_start = Unix.gettimeofday () in
  let t_measure = t_start +. spec.warmup_s in
  let t_stop = t_start +. spec.duration_s in
  let finished = Atomic.make 0 in
  let spawn idx =
    Domain.spawn (fun () ->
        (match spec.mode with
        | Closed _ when spec.chain > 1 ->
          chained_client service spec ~chain:spec.chain ~idx ~t_start ~t_measure
            ~t_stop tallies.(idx)
        | Closed { pipeline } ->
          closed_client service spec ~pipeline:(max 1 pipeline) ~idx ~t_start ~t_measure
            ~t_stop tallies.(idx)
        | Open { rate; window } ->
          open_client service spec ~rate ~window:(max 1 window) ~idx ~t_start ~t_measure
            ~t_stop tallies.(idx));
        Atomic.incr finished)
  in
  let domains = Array.init clients spawn in
  while Atomic.get finished < clients do
    Unix.sleepf 0.002;
    tick ()
  done;
  Array.iter Domain.join domains;
  let latency = Histogram.create () in
  let submitted = ref 0 and completed = ref 0 and completed_reqs = ref 0 in
  let rejected = ref 0 and busy = ref 0 and oom = ref 0 and drops = ref 0 in
  let deadline_exceeded = ref 0 and ring_full = ref 0 and retries = ref 0 in
  Array.iter
    (fun tl ->
      Histogram.merge_into ~into:latency tl.hist;
      submitted := !submitted + tl.submitted;
      completed := !completed + tl.completed;
      completed_reqs := !completed_reqs + tl.completed_reqs;
      rejected := !rejected + tl.rejected;
      busy := !busy + tl.busy;
      oom := !oom + tl.oom;
      drops := !drops + tl.drops;
      deadline_exceeded := !deadline_exceeded + tl.deadline_exceeded;
      ring_full := !ring_full + tl.ring_full;
      retries := !retries + tl.retries)
    tallies;
  let elapsed_s = spec.duration_s -. spec.warmup_s in
  {
    submitted = !submitted;
    completed = !completed;
    completed_reqs = !completed_reqs;
    rejected = !rejected;
    busy = !busy;
    oom = !oom;
    drops = !drops;
    deadline_exceeded = !deadline_exceeded;
    ring_full = !ring_full;
    retries = !retries;
    elapsed_s;
    throughput = (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    latency;
  }

(* -- socket mode (memcached-text front-end) ------------------------------- *)

(** Drive an {!Frontend}-served [mpserver] over its byte protocol
    instead of the in-process rings: each client opens one Unix-domain
    connection and runs a closed loop of pipelined batches —
    [sock_chain] text commands written in one flush, replies drained
    until every command's terminal line arrived. The tallies map onto
    {!result} the obvious way: a reply terminal is a completed request
    ([HITS] counts [sock_mget] operations), [SERVER_ERROR out of
    memory] is an [oom], any other error line a [rejected]; latency is
    one sample per batch. *)
type socket_spec = {
  sock_path : string; (* Unix-domain socket path of a running mpserver *)
  sock_clients : int;
  sock_duration_s : float;
  sock_warmup_s : float;
  sock_read_pct : int;
  sock_insert_pct : int; (* remainder = deletes *)
  sock_mget : int; (* reads become [mget <key> <n>] when > 1 *)
  sock_key_range : int;
  sock_seed : int;
  sock_chain : int; (* commands pipelined per batch *)
}

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let socket_client sspec ~idx ~t_measure ~t_stop tl =
  let rng = Rng.split ~seed:sspec.sock_seed ~tid:idx in
  let keys = Keygen.uniform ~range:sspec.sock_key_range in
  let mget = max 1 sspec.sock_mget in
  let chain = max 1 sspec.sock_chain in
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Unix.connect fd (ADDR_UNIX sspec.sock_path);
  let out = Buffer.create 4096 in
  let inbuf = Bytes.create 65536 in
  let line = Buffer.create 256 in
  let expect_data = ref false in
  (try
     while Unix.gettimeofday () < t_stop do
       Buffer.clear out;
       for _ = 1 to chain do
         let roll = Rng.below rng 100 in
         let key = Keygen.next keys rng in
         if roll < sspec.sock_read_pct then
           if mget > 1 then
             Buffer.add_string out (Printf.sprintf "mget %d %d\r\n" key mget)
           else Buffer.add_string out (Printf.sprintf "get %d\r\n" key)
         else if roll < sspec.sock_read_pct + sspec.sock_insert_pct then begin
           let data = string_of_int key in
           Buffer.add_string out
             (Printf.sprintf "set %d 0 0 %d\r\n%s\r\n" key (String.length data)
                data)
         end
         else Buffer.add_string out (Printf.sprintf "delete %d\r\n" key)
       done;
       let t0 = Unix.gettimeofday () in
       write_all fd (Buffer.contents out);
       (* Drain until every command's terminal line arrived. A VALUE
          line announces one data line to skip; everything else is one
          command's terminal. *)
       let terminals = ref 0 in
       let ok_reqs = ref 0 and ok_ops = ref 0 and rej = ref 0 and oomc = ref 0 in
       while !terminals < chain do
         let r = Unix.read fd inbuf 0 (Bytes.length inbuf) in
         if r = 0 then failwith "Loadgen.run_socket: server closed the connection";
         for i = 0 to r - 1 do
           let c = Bytes.get inbuf i in
           if c = '\n' then begin
             let l = Buffer.contents line in
             Buffer.clear line;
             let l =
               let n = String.length l in
               if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
             in
             if !expect_data then expect_data := false
             else if String.starts_with ~prefix:"VALUE " l then
               expect_data := true
             else begin
               incr terminals;
               if
                 l = "END" || l = "STORED" || l = "NOT_STORED" || l = "DELETED"
                 || l = "NOT_FOUND"
               then begin
                 incr ok_reqs;
                 incr ok_ops
               end
               else if String.starts_with ~prefix:"HITS" l then begin
                 incr ok_reqs;
                 ok_ops := !ok_ops + mget
               end
               else if l = "SERVER_ERROR out of memory" then incr oomc
               else incr rej
             end
           end
           else Buffer.add_char line c
         done
       done;
       let now = Unix.gettimeofday () in
       if now >= t_measure then begin
         tl.submitted <- tl.submitted + chain;
         tl.completed <- tl.completed + !ok_ops;
         tl.completed_reqs <- tl.completed_reqs + !ok_reqs;
         tl.rejected <- tl.rejected + !rej;
         tl.oom <- tl.oom + !oomc;
         Histogram.record tl.hist (now -. t0)
       end
     done
   with e ->
     Unix.close fd;
     raise e);
  write_all fd "quit\r\n";
  Unix.close fd

(** Closed-loop socket load against a running [mpserver]; blocks until
    the duration elapses. One connection (and one domain) per client. *)
let run_socket sspec =
  let clients = max 1 sspec.sock_clients in
  let tallies = Array.init clients (fun _ -> tally_create ()) in
  let t_start = Unix.gettimeofday () in
  let t_measure = t_start +. sspec.sock_warmup_s in
  let t_stop = t_start +. sspec.sock_duration_s in
  let domains =
    Array.init clients (fun idx ->
        Domain.spawn (fun () ->
            socket_client sspec ~idx ~t_measure ~t_stop tallies.(idx)))
  in
  Array.iter Domain.join domains;
  let latency = Histogram.create () in
  let submitted = ref 0 and completed = ref 0 and completed_reqs = ref 0 in
  let rejected = ref 0 and oom = ref 0 in
  Array.iter
    (fun tl ->
      Histogram.merge_into ~into:latency tl.hist;
      submitted := !submitted + tl.submitted;
      completed := !completed + tl.completed;
      completed_reqs := !completed_reqs + tl.completed_reqs;
      rejected := !rejected + tl.rejected;
      oom := !oom + tl.oom)
    tallies;
  let elapsed_s = sspec.sock_duration_s -. sspec.sock_warmup_s in
  {
    submitted = !submitted;
    completed = !completed;
    completed_reqs = !completed_reqs;
    rejected = !rejected;
    busy = 0;
    oom = !oom;
    drops = 0;
    deadline_exceeded = 0;
    ring_full = 0;
    retries = 0;
    elapsed_s;
    throughput =
      (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    latency;
  }
