(** Closed-loop and open-loop (Poisson) load generator for {!Service},
    recording end-to-end latency into a merged log-bucket histogram
    (p50/p99/p99.9/max via {!Mp_util.Histogram.percentile_ns}). *)

type mode =
  | Closed of { pipeline : int }
      (** Fixed pipeline of outstanding requests per client. *)
  | Open of { rate : float; window : int }
      (** Poisson arrivals at [rate] per second {e per client},
          at most [window] outstanding; un-submittable arrivals are
          counted as drops, and latency is measured from the scheduled
          arrival time (coordinated-omission correction). *)

type spec = {
  clients : int;
  duration_s : float;
  warmup_s : float;
      (** Completions earlier than this into the run are executed but
          not recorded. *)
  read_pct : int;
  insert_pct : int; (* remainder = removes *)
  mget : int;
      (** Reads are submitted as one {!Service.op_mget} of this many
          consecutive keys (1 = plain [op_contains]); a completed
          multi-get counts [mget] operations toward [completed]. *)
  key_range : int;
  zipf_alpha : float option;
  seed : int;
  mode : mode;
}

type result = {
  completed : int; (* successful SET operations in the measured window *)
  rejected : int; (* crashed-shard rejections in the window *)
  oom : int; (* pool-exhaustion refusals in the window *)
  drops : int; (* open loop: arrivals that could not be submitted *)
  elapsed_s : float; (* the measured window (duration - warmup) *)
  throughput : float; (* completed / elapsed_s *)
  latency : Mp_util.Histogram.t;
}

(** Run against a started service; blocks until done. [?tick] runs
    every ~2 ms on the calling thread (watchdog sampler hook). *)
val run : ?tick:(unit -> unit) -> Service.t -> spec -> result
