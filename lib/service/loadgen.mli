(** Closed-loop and open-loop (Poisson) load generator for {!Service},
    recording end-to-end latency into a merged log-bucket histogram
    (p50/p99/p99.9/max via {!Mp_util.Histogram.percentile_ns}), with
    optional per-request deadlines, idempotence-aware retries and
    backpressure telemetry. *)

type mode =
  | Closed of { pipeline : int }
      (** Fixed pipeline of outstanding requests per client. *)
  | Open of { rate : float; window : int }
      (** Poisson arrivals at [rate] per second {e per client},
          at most [window] outstanding; un-submittable arrivals are
          counted as drops, and latency is measured from the scheduled
          arrival time (coordinated-omission correction). *)

type spec = {
  clients : int;
  duration_s : float;
  warmup_s : float;
      (** Completions earlier than this into the run are executed but
          not recorded. *)
  read_pct : int;
  insert_pct : int; (* remainder = removes *)
  mget : int;
      (** Reads are submitted as one {!Service.op_mget} of this many
          consecutive keys (1 = plain [op_contains]); a completed
          multi-get counts [mget] operations toward [completed]. *)
  key_range : int;
  zipf_alpha : float option;
  seed : int;
  mode : mode;
  deadline_s : float;
      (** Per-request deadline, seconds (0 = none). Requests carry the
          absolute deadline on the wire ({!Service.reply_busy} shedding)
          and overdue head-of-line tickets are abandoned via
          {!Service.cancel}, tallied [deadline_exceeded]. *)
  max_retries : int;
      (** Retry budget per request (0 = none). [reply_busy] retries any
          operation (it guarantees non-execution); [reply_rejected]
          retries reads only (ambiguous for writes). Bounded
          exponential backoff, 20 µs doubling capped at 1 ms; retries
          keep the original [t0] and never start past the run clock or
          the request deadline. *)
  chain : int;
      (** Closed loop only (ignored by [Open]): when [> 1], each round
          submits this many requests as per-shard {e chains}
          ({!Service.try_submit_chain} — one tail CAS and one coalesced
          reply wait per chain) instead of per-slot submit/poll. [1] is
          exactly the per-slot path. Chain mode disables client-side
          retries and cancels (wire deadlines still shed busy
          server-side); latency records one sample per round; must be
          at most half the ring capacity. *)
}

type result = {
  submitted : int;
      (* first-attempt requests that entered a ring in the window; with
         [warmup_s = 0] the conservation law
         submitted = completed_reqs + rejected + busy + oom +
         deadline_exceeded holds exactly *)
  completed : int; (* successful SET operations in the measured window *)
  completed_reqs : int; (* successful requests (a multi-get counts once) *)
  rejected : int; (* crashed-shard rejections given up on, in the window *)
  busy : int; (* deadline sheds ({!Service.reply_busy}) given up on *)
  oom : int; (* pool-exhaustion refusals in the window *)
  drops : int; (* open loop: arrivals that could not be submitted *)
  deadline_exceeded : int; (* overdue tickets abandoned via cancel *)
  ring_full : int; (* try_submit calls that found the ring full *)
  retries : int; (* resubmissions (not counted in [submitted]) *)
  elapsed_s : float; (* the measured window (duration - warmup) *)
  throughput : float; (* completed / elapsed_s *)
  latency : Mp_util.Histogram.t;
}

(** Run against a started service; blocks until done. [?tick] runs
    every ~2 ms on the calling thread (watchdog sampler hook). *)
val run : ?tick:(unit -> unit) -> Service.t -> spec -> result

(** {2 Socket mode}

    Drive a running [mpserver] over the memcached-text byte protocol
    ({!Frontend}) instead of the in-process rings: per client, one
    Unix-domain connection running a closed loop of pipelined batches
    of [sock_chain] commands (one write, replies drained to their
    terminal lines). Tallies map onto {!result}: each terminal is a
    completed request ([HITS] counts [sock_mget] operations),
    [SERVER_ERROR out of memory] an [oom], other error lines
    [rejected]; latency is one sample per batch; [busy]/[drops]/
    [deadline_exceeded]/[ring_full]/[retries] stay 0. *)

type socket_spec = {
  sock_path : string; (* Unix-domain socket path of a running mpserver *)
  sock_clients : int;
  sock_duration_s : float;
  sock_warmup_s : float;
  sock_read_pct : int;
  sock_insert_pct : int; (* remainder = deletes *)
  sock_mget : int; (* reads become [mget <key> <n>] when > 1 *)
  sock_key_range : int;
  sock_seed : int;
  sock_chain : int; (* commands pipelined per batch *)
}

val run_socket : socket_spec -> result
