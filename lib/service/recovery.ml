(** Crash-recovery policy and bookkeeping for the sharded service.

    The paper's §4.4 robustness story bounds what a dead thread can pin;
    this module is the other half (DEBRA+'s "neutralize and recover",
    arXiv:1712.01044): a supervisor domain samples per-shard heartbeat
    words, and when a shard domain dies it (1) joins the dead domain,
    (2) bumps the ring generation so the dead incarnation's in-flight
    requests are rejected exactly once, (3) respawns a replacement shard
    domain on a fresh SMR tid drawn from the free-tid pool here, and
    (4) {e adopts} the dead tid — releasing every reservation it left
    published and draining its retired backlog — before returning it to
    the pool for the next recovery.

    This module owns the policy knobs ({!config}), the free-tid pool and
    the recovery telemetry; the supervisor loop itself lives in
    {!Service} (it needs the worker closures). Everything here is
    supervisor-private — one domain — so plain mutable state suffices. *)

type config = {
  spare_tids : int;
      (** SMR tids reserved beyond the shard count; the structure must
          have been created with [threads >= shards + spare_tids]. With
          at least one spare, a replacement spawns on a fresh tid
          immediately and the dead tid is adopted off the critical path;
          with zero spares the dead tid is adopted first and reused. *)
  poll_interval_s : float;  (** supervisor heartbeat sampling period *)
  stall_timeout_s : float;
      (** heartbeat age past which a live shard is counted suspected
          (telemetry only — a stalled shard is never adopted, because
          unlike a dead one it may still wake up and use its tid) *)
}

let default = { spare_tids = 1; poll_interval_s = 0.0005; stall_timeout_s = 0.25 }

let validate cfg =
  if cfg.spare_tids < 0 then invalid_arg "Recovery.config.spare_tids < 0";
  if cfg.poll_interval_s <= 0.0 then invalid_arg "Recovery.config.poll_interval_s <= 0";
  if cfg.stall_timeout_s <= 0.0 then invalid_arg "Recovery.config.stall_timeout_s <= 0";
  cfg

type t = {
  config : config;
  mutable free : int list; (* free-tid pool, LIFO; supervisor-private *)
  mutable recoveries : int;
  mutable adoptions : int;
  mutable suspected : int;
  mutable total_recovery_s : float;
  mutable max_recovery_s : float;
  mutable last_recovery_at : float; (* wall clock; 0. = never *)
}

(** [create ~shards config]: shard [i] starts on tid [i]; the pool holds
    tids [shards .. shards + spare_tids - 1]. *)
let create ~shards config =
  let config = validate config in
  {
    config;
    free = List.init config.spare_tids (fun i -> shards + i);
    recoveries = 0;
    adoptions = 0;
    suspected = 0;
    total_recovery_s = 0.0;
    max_recovery_s = 0.0;
    last_recovery_at = 0.0;
  }

let config t = t.config

(** Pop a fresh tid for a replacement shard ([None]: pool empty — adopt
    the dead tid first and reuse it). *)
let take_tid t =
  match t.free with
  | [] -> None
  | tid :: rest ->
    t.free <- rest;
    Some tid

(** Return an adopted tid to the pool. *)
let return_tid t tid = t.free <- tid :: t.free

let note_adoption t = t.adoptions <- t.adoptions + 1
let note_suspected t = t.suspected <- t.suspected + 1

let note_recovery t ~elapsed_s ~at =
  t.recoveries <- t.recoveries + 1;
  t.total_recovery_s <- t.total_recovery_s +. elapsed_s;
  if elapsed_s > t.max_recovery_s then t.max_recovery_s <- elapsed_s;
  t.last_recovery_at <- at

(* -- telemetry ----------------------------------------------------------- *)

type stats = {
  recoveries : int;  (** dead shards detected, joined and respawned *)
  adoptions : int;  (** dead tids adopted (reservations released) *)
  suspected : int;  (** stall episodes flagged (heartbeat age, no death) *)
  mean_recovery_s : float;  (** death observed → replacement spawned *)
  max_recovery_s : float;
  last_recovery_at : float;  (** wall clock of the last takeover; 0 = none *)
  free_tids : int;  (** pool size right now *)
}

let stats (t : t) =
  {
    recoveries = t.recoveries;
    adoptions = t.adoptions;
    suspected = t.suspected;
    mean_recovery_s =
      (if t.recoveries = 0 then 0.0
       else t.total_recovery_s /. float_of_int t.recoveries);
    max_recovery_s = t.max_recovery_s;
    last_recovery_at = t.last_recovery_at;
    free_tids = List.length t.free;
  }
