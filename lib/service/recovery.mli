(** Crash-recovery policy, free-tid pool and telemetry for the sharded
    service (the supervisor loop lives in {!Service}). A dead shard
    domain is joined, its ring generation bumped, a replacement spawned
    on a tid from the pool here, and the dead tid adopted
    ({!Dstruct.Set_intf.SET.adopt}) and pooled for the next recovery. *)

type config = {
  spare_tids : int;
      (** tids reserved beyond the shard count (structure must be built
          with [threads >= shards + spare_tids]); 0 = adopt-then-reuse *)
  poll_interval_s : float;  (** supervisor heartbeat sampling period *)
  stall_timeout_s : float;
      (** heartbeat age past which a live shard counts as suspected
          (telemetry only; stalled shards are never adopted) *)
}

val default : config

(** Raises [Invalid_argument] on nonsensical knobs. *)
val validate : config -> config

type t

(** [create ~shards config]: shard [i] starts on tid [i]; the pool holds
    tids [shards .. shards + spare_tids - 1]. All state is
    supervisor-private. *)
val create : shards:int -> config -> t

val config : t -> config

(** Pop a fresh tid for a replacement ([None]: pool empty — adopt the
    dead tid first and reuse it). *)
val take_tid : t -> int option

(** Return an adopted tid to the pool. *)
val return_tid : t -> int -> unit

val note_adoption : t -> unit
val note_suspected : t -> unit
val note_recovery : t -> elapsed_s:float -> at:float -> unit

type stats = {
  recoveries : int;  (** dead shards detected, joined and respawned *)
  adoptions : int;  (** dead tids adopted (reservations released) *)
  suspected : int;  (** stall episodes flagged (heartbeat age, no death) *)
  mean_recovery_s : float;  (** death observed → replacement spawned *)
  max_recovery_s : float;
  last_recovery_at : float;  (** wall clock of the last takeover; 0 = none *)
  free_tids : int;
}

val stats : t -> stats
