(** Bounded MPSC request/reply ring — the mailbox of a service shard.

    Vyukov-style bounded queue adapted to a request/reply lifecycle: the
    producers are client domains submitting requests, the single
    consumer is the shard domain owning the ring. Each slot carries a
    version-tagged sequence word (the same monotonic-tag-against-ABA
    idea as the mempool's chain stack) that walks through one lap of
    the ring as

      [pos]            free — claimable by the producer holding ticket [pos]
      [pos + 1]        submitted — payload valid, awaiting the consumer
      [pos + 2]        completed — reply valid, awaiting the producer's ack
      [pos + capacity] acked — free for the next lap

    Producers claim a ticket with one CAS on the tail word; everything
    after that is wait-free for the claimant. The consumer never CASes:
    it owns its cursor and advances it privately, reading each slot's
    payload only after observing [pos + 1] in the sequence word.

    The payload (op, key, value, reply) lives in plain [int] arrays;
    every access is ordered by an [Atomic] read or write of the slot's
    sequence word, so the usual publication argument applies — the
    reader that observed the advanced sequence value also observes the
    payload writes that preceded it. Sequence atomics are spaced a
    cache line apart ({!Mp_util.Padding.atomic_int_array}) so a
    producer spinning on its reply does not steal the line the consumer
    is completing a neighbouring slot through.

    Submitting, serving and polling allocate nothing ([-1] sentinels
    instead of options): the reply path of a request is a "reply slot",
    not a message. *)

type t = {
  capacity : int;
  mask : int;
  seq : int Atomic.t array; (* spaced: slot i at [Padding.spaced_index i] *)
  payload : int array; (* 4 plain ints per slot: op, key, value, reply *)
  tail : int Atomic.t; (* producers' ticket counter *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(** [create ~capacity] builds a ring of at least [capacity] slots
    (rounded up to a power of two, minimum 4 so the in-flight sequence
    states of one lap cannot collide with the next). *)
let create ~capacity =
  let capacity = pow2_at_least (max 4 capacity) 4 in
  {
    capacity;
    mask = capacity - 1;
    seq =
      (let a = Mp_util.Padding.atomic_int_array capacity in
       for i = 0 to capacity - 1 do
         Atomic.set a.(Mp_util.Padding.spaced_index i) i
       done;
       a);
    payload = Array.make (capacity * 4) 0;
    tail = Atomic.make 0;
  }

let capacity t = t.capacity

let[@inline] seq_at t pos =
  Array.unsafe_get t.seq (Mp_util.Padding.spaced_index (pos land t.mask))

let[@inline] base t pos = (pos land t.mask) * 4

(* -- producers ----------------------------------------------------------- *)

(** Claim a slot and publish a request; returns the ticket ([>= 0]) to
    poll the reply with, or [-1] when the ring is full (the slot one lap
    back has not been acked yet). Lock-free: a failed CAS means another
    producer claimed the ticket and made progress. *)
let rec try_submit t ~op ~key ~value =
  let pos = Atomic.get t.tail in
  let s = seq_at t pos in
  let v = Atomic.get s in
  if v = pos then
    if Atomic.compare_and_set t.tail pos (pos + 1) then begin
      let b = base t pos in
      t.payload.(b) <- op;
      t.payload.(b + 1) <- key;
      t.payload.(b + 2) <- value;
      Atomic.set s (pos + 1);
      pos
    end
    else try_submit t ~op ~key ~value (* lost the ticket race *)
  else if v < pos then -1 (* previous lap's occupant not yet acked: full *)
  else try_submit t ~op ~key ~value (* stale tail read *)

(** Poll the reply for [ticket]: the reply code ([>= 0], acking the slot
    for reuse) or [-1] while still pending. Each ticket must be polled
    to completion exactly once — the ack is what frees the slot. *)
let[@inline] poll t ~ticket =
  let s = seq_at t ticket in
  if Atomic.get s = ticket + 2 then begin
    let r = t.payload.(base t ticket + 3) in
    Atomic.set s (ticket + t.capacity);
    r
  end
  else -1

(* -- the consumer (one domain) ------------------------------------------- *)

(** Is the request at the consumer's cursor position submitted? *)
let[@inline] ready t ~pos = Atomic.get (seq_at t pos) = pos + 1

(* Payload accessors: valid only between [ready] and [complete]. *)
let[@inline] op t ~pos = t.payload.(base t pos)
let[@inline] key t ~pos = t.payload.(base t pos + 1)
let[@inline] value t ~pos = t.payload.(base t pos + 2)

(** Publish the reply for the request at [pos] and hand the slot back to
    its submitter. *)
let[@inline] complete t ~pos reply =
  t.payload.(base t pos + 3) <- reply;
  Atomic.set (seq_at t pos) (pos + 2)
