(** Bounded MPSC request/reply ring — the mailbox of a service shard.

    Vyukov-style bounded queue adapted to a request/reply lifecycle: the
    producers are client domains submitting requests, the single
    consumer is the shard domain owning the ring. Each slot carries a
    version-tagged sequence word (the same monotonic-tag-against-ABA
    idea as the mempool's chain stack) that walks through one lap of
    the ring as

      [pos]            free — claimable by the producer holding ticket [pos]
      [pos + 1]        submitted — payload valid, awaiting the consumer
      [pos + 2]        completed — reply valid, awaiting the producer's ack
      [pos + 3]        cancelled — the producer abandoned the request
                       ({!cancel}) before the consumer took it; the
                       consumer discards the slot when its cursor arrives
      [pos + capacity] acked — free for the next lap

    Producers claim a ticket with one CAS on the tail word; everything
    after that is wait-free for the claimant. The consumer owns its
    cursor and advances it privately, reading each slot's payload only
    after observing [pos + 1] in the sequence word. The submitted →
    completed and submitted → cancelled transitions race (a client may
    abandon a request the consumer is just taking), so both sides take
    that edge with a CAS on the sequence word — whoever wins owns the
    slot's fate, and the loser backs off through the winner's state.
    [capacity >= 4] keeps [pos + 3] distinct from [pos + capacity].

    Each slot additionally records the ring {e generation} it was
    submitted under ({!val-generation}): a recovery supervisor bumps the
    generation before respawning a crashed shard's consumer, so the
    replacement can recognize — and reject exactly once — requests
    submitted to the dead incarnation. The seq-word lifecycle is what
    guarantees exactly-once: whichever incarnation's consumer reaches
    the slot first takes the submitted → completed edge, and a joined
    domain cannot reach anything afterwards.

    The payload (op, key, value, reply, generation, deadline) lives in
    plain [int] arrays; every access is ordered by an [Atomic] read or
    write of the slot's sequence word, so the usual publication argument
    applies — the reader that observed the advanced sequence value also
    observes the payload writes that preceded it. Sequence atomics are
    spaced a cache line apart ({!Mp_util.Padding.atomic_int_array}) so a
    producer spinning on its reply does not steal the line the consumer
    is completing a neighbouring slot through.

    {e Chains.} A producer may claim [n] consecutive slots with a single
    tail CAS ({!try_submit_chain}) — the magazine idiom of the mempool's
    chain-batched free list, applied to requests. The chain's slots are
    published in {e reverse} order, head last, so a consumer that
    observes the head submitted observes the whole chain submitted and
    can drain it in one wakeup; each slot carries a "remaining in chain"
    word ([n - i] at the i-th slot) telling the consumer how far the
    contiguous run extends even if it takes the chain over mid-way
    (crash recovery). Replies are {e coalesced}: because the single
    consumer completes slots in cursor order, the chain's {e last} slot
    completing implies every earlier slot completed — the client waits
    on one sequence word per chain ({!chain_done} / {!await_chain})
    instead of spinning per slot, then harvests all replies and acks all
    slots at once ({!harvest_chain}). The memory-ordering argument: the
    consumer's payload write of reply [i] precedes (program order, one
    domain) its seq-word release of slot [i], which precedes its CAS on
    the last slot; the client's acquire read of the last slot's seq word
    therefore orders after every reply write in the chain. Across a
    crash takeover the same holds through the [Domain.join] edge: the
    replacement's completions happen-after everything the corpse wrote.

    Blocking waits ({!await}, {!await_chain}) are adaptive: a short
    phase of tight reads, then [Domain.cpu_relax], then exponential
    sleep backoff — a pure spin on an oversubscribed host burns exactly
    the timeslice the consumer needs. The phases are tallied into the
    ring's {!stats} ([client_spins]/[client_backoffs]) so burned CPU is
    a measured quantity, not noise.

    Submitting, serving, polling and cancelling allocate nothing ([-1]
    sentinels instead of options): the reply path of a request is a
    "reply slot", not a message. *)

(* Payload words per slot. *)
let stride = 7

type t = {
  capacity : int;
  mask : int;
  seq : int Atomic.t array; (* spaced: slot i at [Padding.spaced_index i] *)
  payload : int array;
      (* [stride] plain ints per slot:
         op, key, value, reply, generation, deadline_us, chain-remaining *)
  tail : int Atomic.t; (* producers' ticket counter *)
  generation : int Atomic.t; (* bumped by the recovery supervisor *)
  wait_stats : int Atomic.t array;
      (* spaced; [0] = client spins (relax iterations), [1] = client
         backoffs (sleeps) — flushed once per completed blocking wait *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(** [create ~capacity] builds a ring of at least [capacity] slots
    (rounded up to a power of two, minimum 4 so the in-flight sequence
    states of one lap — including the cancelled state [pos + 3] —
    cannot collide with the next lap's). *)
let create ~capacity =
  let capacity = pow2_at_least (max 4 capacity) 4 in
  {
    capacity;
    mask = capacity - 1;
    seq =
      (let a = Mp_util.Padding.atomic_int_array capacity in
       for i = 0 to capacity - 1 do
         Atomic.set a.(Mp_util.Padding.spaced_index i) i
       done;
       a);
    payload = Array.make (capacity * stride) 0;
    tail = Atomic.make 0;
    generation = Atomic.make 0;
    wait_stats = Mp_util.Padding.atomic_int_array 2;
  }

let capacity t = t.capacity

let[@inline] seq_at t pos =
  Array.unsafe_get t.seq (Mp_util.Padding.spaced_index (pos land t.mask))

let[@inline] base t pos = (pos land t.mask) * stride

(* -- incarnations --------------------------------------------------------- *)

(** The current ring generation. Requests are stamped with it at submit
    time; a consumer serving a request stamped below the current
    generation is looking at a dead incarnation's mail. *)
let[@inline] generation t = Atomic.get t.generation

(** Bump the generation — the recovery supervisor's takeover edge. Must
    happen after the dead consumer was joined and before the replacement
    consumer starts. *)
let bump_generation t = Atomic.incr t.generation

(* -- producers ----------------------------------------------------------- *)

(** Claim a slot and publish a request; returns the ticket ([>= 0]) to
    poll the reply with, or [-1] when the ring is full (the slot one lap
    back has not been acked yet). [deadline_us] is an absolute deadline
    in integer microseconds ([0] = none): the consumer answers a request
    it picks up past its deadline with the service's busy code instead
    of executing it. Lock-free: a failed CAS means another producer
    claimed the ticket and made progress. *)
let rec try_submit ?(deadline_us = 0) t ~op ~key ~value =
  let pos = Atomic.get t.tail in
  let s = seq_at t pos in
  let v = Atomic.get s in
  if v = pos then
    if Atomic.compare_and_set t.tail pos (pos + 1) then begin
      let b = base t pos in
      t.payload.(b) <- op;
      t.payload.(b + 1) <- key;
      t.payload.(b + 2) <- value;
      t.payload.(b + 4) <- Atomic.get t.generation;
      t.payload.(b + 5) <- deadline_us;
      t.payload.(b + 6) <- 1;
      Atomic.set s (pos + 1);
      pos
    end
    else try_submit ~deadline_us t ~op ~key ~value (* lost the ticket race *)
  else if v < pos then -1 (* previous lap's occupant not yet acked: full *)
  else try_submit ~deadline_us t ~op ~key ~value (* stale tail read *)

(** Claim [n] consecutive slots with one tail CAS and publish a whole
    request chain: requests [i = 0 .. n-1] are read from
    [ops.(off + i)] / [keys.(off + i)] / [values.(off + i)]. Returns
    the first ticket ([>= 0]; the chain occupies tickets
    [ticket .. ticket + n - 1]), or [-1] when the ring does not have
    [n] free contiguous slots. Slots are published head-last, so the
    consumer sees either no chain or the whole chain; the payload
    protocol (per-slot generation stamp, deadline, chain-remaining
    word) is byte-for-byte the single-submit protocol at [n = 1].
    [n] must be at most half the capacity, so one chain can never
    deadlock against its own unacked previous lap. *)
let rec try_submit_chain ?(deadline_us = 0) t ~n ~ops ~keys ~values ~off =
  if n < 1 || n > t.capacity / 2 then
    invalid_arg "Request_ring.try_submit_chain: n outside [1, capacity/2]";
  let pos = Atomic.get t.tail in
  (* Every slot of [pos, pos + n) must be free this lap. Slots ack out
     of order (each producer acks its own), so the whole span is
     checked, not just the head. *)
  let rec scan i =
    if i >= n then 0
    else
      let v = Atomic.get (seq_at t (pos + i)) in
      if v = pos + i then scan (i + 1)
      else if v < pos + i then -1 (* occupied by an unacked previous lap *)
      else 1 (* stale tail read *)
  in
  match scan 0 with
  | -1 -> -1
  | 1 -> try_submit_chain ~deadline_us t ~n ~ops ~keys ~values ~off
  | _ ->
    if Atomic.compare_and_set t.tail pos (pos + n) then begin
      (* The span is ours: a slot observed free can only be claimed
         through a tail CAS, and ours won. Publish tail-first so the
         head's submitted edge is the last write the consumer can see. *)
      let gen = Atomic.get t.generation in
      for i = n - 1 downto 0 do
        let p = pos + i in
        let b = base t p in
        t.payload.(b) <- ops.(off + i);
        t.payload.(b + 1) <- keys.(off + i);
        t.payload.(b + 2) <- values.(off + i);
        t.payload.(b + 4) <- gen;
        t.payload.(b + 5) <- deadline_us;
        t.payload.(b + 6) <- n - i;
        Atomic.set (seq_at t p) (p + 1)
      done;
      pos
    end
    else try_submit_chain ~deadline_us t ~n ~ops ~keys ~values ~off

(** Poll the reply for [ticket]: the reply code ([>= 0], acking the slot
    for reuse) or [-1] while still pending. Each ticket must be polled
    to completion exactly once — the ack is what frees the slot — or
    abandoned through {!cancel}, never both. *)
let[@inline] poll t ~ticket =
  let s = seq_at t ticket in
  if Atomic.get s = ticket + 2 then begin
    let r = t.payload.(base t ticket + 3) in
    Atomic.set s (ticket + t.capacity);
    r
  end
  else -1

(** Abandon [ticket]: the deadline path of a client that will not wait
    for the reply. Returns [-1] if the cancel won — the slot is now the
    consumer's to discard, the request may or may not execute, and the
    ticket must never be polled again — or the reply code ([>= 0], slot
    acked) if the consumer completed first, in which case the cancel
    degenerated into the final poll. Races only with the consumer: the
    submitting client is the only caller for its own ticket. *)
let cancel t ~ticket =
  let s = seq_at t ticket in
  let v = Atomic.get s in
  if v = ticket + 1 && Atomic.compare_and_set s (ticket + 1) (ticket + 3) then -1
  else if Atomic.get s = ticket + 2 then begin
    (* Completed (either before the first read or by winning the race
       against our CAS): take the reply and ack, exactly like poll. *)
    let r = t.payload.(base t ticket + 3) in
    Atomic.set s (ticket + t.capacity);
    r
  end
  else -1 (* already past this lap: tolerate a stray double-cancel *)

(* -- the consumer (one domain) ------------------------------------------- *)

(** Is the request at the consumer's cursor position submitted? *)
let[@inline] ready t ~pos = Atomic.get (seq_at t pos) = pos + 1

(** Did the producer cancel the request at the cursor position? *)
let[@inline] cancelled t ~pos = Atomic.get (seq_at t pos) = pos + 3

(* Payload accessors: valid only between [ready] and [complete]. *)
let[@inline] op t ~pos = t.payload.(base t pos)
let[@inline] key t ~pos = t.payload.(base t pos + 1)
let[@inline] value t ~pos = t.payload.(base t pos + 2)

(** The ring generation the request at [pos] was submitted under. *)
let[@inline] stamp t ~pos = t.payload.(base t pos + 4)

(** The request's absolute deadline in microseconds (0 = none). *)
let[@inline] deadline_us t ~pos = t.payload.(base t pos + 5)

(** Publish the reply for the request at [pos] and hand the slot back to
    its submitter. Returns [false] when the producer's {!cancel} won the
    race instead — the reply is dropped, the slot is freed here (the
    canceller never touches it again), and the consumer simply moves
    on. *)
let[@inline] complete t ~pos reply =
  t.payload.(base t pos + 3) <- reply;
  let s = seq_at t pos in
  if Atomic.compare_and_set s (pos + 1) (pos + 2) then true
  else begin
    (* Only cancel takes submitted → cancelled; free the slot. *)
    Atomic.set s (pos + t.capacity);
    false
  end

(** Free a {!cancelled} slot at the cursor position. *)
let[@inline] discard t ~pos = Atomic.set (seq_at t pos) (pos + t.capacity)

(** How many requests remain in the contiguous chain starting at the
    cursor position (inclusive): [1] for a single submit, [n - i] at the
    i-th slot of an n-chain. Valid under the same window as {!op}. A
    consumer may use it to widen one wakeup's drain to the whole chain. *)
let[@inline] chain_len t ~pos = t.payload.(base t pos + 6)

(* -- coalesced chain completion ------------------------------------------- *)

(** Has the whole chain [ticket .. ticket + n - 1] been completed? Only
    the {e last} slot's sequence word is read: the single consumer
    completes slots in cursor order, so the last slot completed implies
    every slot completed (and the acquire read here orders the caller
    after every reply write in the chain — see the header). Sound across
    crash takeover because the replacement consumer starts after
    [Domain.join] on the corpse. Do not mix with per-slot {!poll} or
    {!cancel} on the same chain. *)
let[@inline] chain_done t ~ticket ~n =
  Atomic.get (seq_at t (ticket + n - 1)) = ticket + n + 1

(** Harvest a completed chain: copy the [n] replies into
    [replies.(off + i)] and ack all [n] slots for the ring's next lap.
    Call only after {!chain_done} returned [true] (or {!await_chain}
    returned). Replies are read before any slot is acked, so a racing
    next-lap producer can never overwrite an unread reply. *)
let harvest_chain t ~ticket ~n ~replies ~off =
  for i = 0 to n - 1 do
    replies.(off + i) <- t.payload.(base t (ticket + i) + 3)
  done;
  for i = 0 to n - 1 do
    let p = ticket + i in
    Atomic.set (seq_at t p) (p + t.capacity)
  done

(* -- adaptive blocking waits ---------------------------------------------- *)

(* Wait phases: [spin_reads] tight re-reads, then [relax_budget]
   iterations of [Domain.cpu_relax], then exponential sleep backoff from
   [backoff_base_s] doubling to [backoff_cap_s]. On an oversubscribed
   host (shards + clients > cores) the sleep phase is what yields the
   timeslice the consumer needs to make progress. *)
let spin_reads = 64
let relax_budget = 512
let backoff_base_s = 0.000001
let backoff_cap_s = 0.001

(* Wait until the slot holding [ticket]'s *last-slot* position reaches
   [target]; tally relax iterations and sleeps into [wait_stats]. *)
let wait_seq t ~pos ~target =
  let s = seq_at t pos in
  let rec tight i =
    if Atomic.get s = target then (0, 0)
    else if i > 0 then tight (i - 1)
    else relax 0
  and relax r =
    if Atomic.get s = target then (r, 0)
    else if r < relax_budget then begin
      Domain.cpu_relax ();
      relax (r + 1)
    end
    else backoff r 0 backoff_base_s
  and backoff r b d =
    if Atomic.get s = target then (r, b)
    else begin
      Unix.sleepf d;
      backoff r (b + 1) (Float.min (d *. 2.) backoff_cap_s)
    end
  in
  let relaxes, sleeps = tight spin_reads in
  if relaxes > 0 then begin
    let c = t.wait_stats.(Mp_util.Padding.spaced_index 0) in
    Atomic.set c (Atomic.get c + relaxes)
  end;
  if sleeps > 0 then begin
    let c = t.wait_stats.(Mp_util.Padding.spaced_index 1) in
    Atomic.set c (Atomic.get c + sleeps)
  end

(** Block until [ticket] is completed and return its reply (acking the
    slot): {!poll} with the adaptive spin → [cpu_relax] → sleep-backoff
    wait. The submitting client is the only legal caller. *)
let await t ~ticket =
  wait_seq t ~pos:ticket ~target:(ticket + 2);
  let r = t.payload.(base t ticket + 3) in
  Atomic.set (seq_at t ticket) (ticket + t.capacity);
  r

(** Block until the whole chain [ticket .. ticket + n - 1] is completed
    (one wait on the last slot's sequence word — see {!chain_done});
    follow with {!harvest_chain}. *)
let await_chain t ~ticket ~n =
  let last = ticket + n - 1 in
  wait_seq t ~pos:last ~target:(last + 2)

(* -- stats ---------------------------------------------------------------- *)

type stats = {
  client_spins : int;  (** [Domain.cpu_relax] iterations inside waits *)
  client_backoffs : int;  (** sleeps taken inside waits *)
}

(** Cumulative wait tallies. The counters are updated with plain
    read-modify-write (flushed once per blocking wait); under concurrent
    waiters they are low-loss approximations, good enough for the
    burned-CPU telemetry they exist for. *)
let stats t =
  {
    client_spins = Atomic.get t.wait_stats.(Mp_util.Padding.spaced_index 0);
    client_backoffs = Atomic.get t.wait_stats.(Mp_util.Padding.spaced_index 1);
  }
