(** Bounded MPSC request/reply ring — the mailbox of a service shard.

    Vyukov-style bounded queue adapted to a request/reply lifecycle: the
    producers are client domains submitting requests, the single
    consumer is the shard domain owning the ring. Each slot carries a
    version-tagged sequence word (the same monotonic-tag-against-ABA
    idea as the mempool's chain stack) that walks through one lap of
    the ring as

      [pos]            free — claimable by the producer holding ticket [pos]
      [pos + 1]        submitted — payload valid, awaiting the consumer
      [pos + 2]        completed — reply valid, awaiting the producer's ack
      [pos + 3]        cancelled — the producer abandoned the request
                       ({!cancel}) before the consumer took it; the
                       consumer discards the slot when its cursor arrives
      [pos + capacity] acked — free for the next lap

    Producers claim a ticket with one CAS on the tail word; everything
    after that is wait-free for the claimant. The consumer owns its
    cursor and advances it privately, reading each slot's payload only
    after observing [pos + 1] in the sequence word. The submitted →
    completed and submitted → cancelled transitions race (a client may
    abandon a request the consumer is just taking), so both sides take
    that edge with a CAS on the sequence word — whoever wins owns the
    slot's fate, and the loser backs off through the winner's state.
    [capacity >= 4] keeps [pos + 3] distinct from [pos + capacity].

    Each slot additionally records the ring {e generation} it was
    submitted under ({!val-generation}): a recovery supervisor bumps the
    generation before respawning a crashed shard's consumer, so the
    replacement can recognize — and reject exactly once — requests
    submitted to the dead incarnation. The seq-word lifecycle is what
    guarantees exactly-once: whichever incarnation's consumer reaches
    the slot first takes the submitted → completed edge, and a joined
    domain cannot reach anything afterwards.

    The payload (op, key, value, reply, generation, deadline) lives in
    plain [int] arrays; every access is ordered by an [Atomic] read or
    write of the slot's sequence word, so the usual publication argument
    applies — the reader that observed the advanced sequence value also
    observes the payload writes that preceded it. Sequence atomics are
    spaced a cache line apart ({!Mp_util.Padding.atomic_int_array}) so a
    producer spinning on its reply does not steal the line the consumer
    is completing a neighbouring slot through.

    Submitting, serving, polling and cancelling allocate nothing ([-1]
    sentinels instead of options): the reply path of a request is a
    "reply slot", not a message. *)

(* Payload words per slot. *)
let stride = 6

type t = {
  capacity : int;
  mask : int;
  seq : int Atomic.t array; (* spaced: slot i at [Padding.spaced_index i] *)
  payload : int array;
      (* [stride] plain ints per slot:
         op, key, value, reply, generation, deadline_us *)
  tail : int Atomic.t; (* producers' ticket counter *)
  generation : int Atomic.t; (* bumped by the recovery supervisor *)
}

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

(** [create ~capacity] builds a ring of at least [capacity] slots
    (rounded up to a power of two, minimum 4 so the in-flight sequence
    states of one lap — including the cancelled state [pos + 3] —
    cannot collide with the next lap's). *)
let create ~capacity =
  let capacity = pow2_at_least (max 4 capacity) 4 in
  {
    capacity;
    mask = capacity - 1;
    seq =
      (let a = Mp_util.Padding.atomic_int_array capacity in
       for i = 0 to capacity - 1 do
         Atomic.set a.(Mp_util.Padding.spaced_index i) i
       done;
       a);
    payload = Array.make (capacity * stride) 0;
    tail = Atomic.make 0;
    generation = Atomic.make 0;
  }

let capacity t = t.capacity

let[@inline] seq_at t pos =
  Array.unsafe_get t.seq (Mp_util.Padding.spaced_index (pos land t.mask))

let[@inline] base t pos = (pos land t.mask) * stride

(* -- incarnations --------------------------------------------------------- *)

(** The current ring generation. Requests are stamped with it at submit
    time; a consumer serving a request stamped below the current
    generation is looking at a dead incarnation's mail. *)
let[@inline] generation t = Atomic.get t.generation

(** Bump the generation — the recovery supervisor's takeover edge. Must
    happen after the dead consumer was joined and before the replacement
    consumer starts. *)
let bump_generation t = Atomic.incr t.generation

(* -- producers ----------------------------------------------------------- *)

(** Claim a slot and publish a request; returns the ticket ([>= 0]) to
    poll the reply with, or [-1] when the ring is full (the slot one lap
    back has not been acked yet). [deadline_us] is an absolute deadline
    in integer microseconds ([0] = none): the consumer answers a request
    it picks up past its deadline with the service's busy code instead
    of executing it. Lock-free: a failed CAS means another producer
    claimed the ticket and made progress. *)
let rec try_submit ?(deadline_us = 0) t ~op ~key ~value =
  let pos = Atomic.get t.tail in
  let s = seq_at t pos in
  let v = Atomic.get s in
  if v = pos then
    if Atomic.compare_and_set t.tail pos (pos + 1) then begin
      let b = base t pos in
      t.payload.(b) <- op;
      t.payload.(b + 1) <- key;
      t.payload.(b + 2) <- value;
      t.payload.(b + 4) <- Atomic.get t.generation;
      t.payload.(b + 5) <- deadline_us;
      Atomic.set s (pos + 1);
      pos
    end
    else try_submit ~deadline_us t ~op ~key ~value (* lost the ticket race *)
  else if v < pos then -1 (* previous lap's occupant not yet acked: full *)
  else try_submit ~deadline_us t ~op ~key ~value (* stale tail read *)

(** Poll the reply for [ticket]: the reply code ([>= 0], acking the slot
    for reuse) or [-1] while still pending. Each ticket must be polled
    to completion exactly once — the ack is what frees the slot — or
    abandoned through {!cancel}, never both. *)
let[@inline] poll t ~ticket =
  let s = seq_at t ticket in
  if Atomic.get s = ticket + 2 then begin
    let r = t.payload.(base t ticket + 3) in
    Atomic.set s (ticket + t.capacity);
    r
  end
  else -1

(** Abandon [ticket]: the deadline path of a client that will not wait
    for the reply. Returns [-1] if the cancel won — the slot is now the
    consumer's to discard, the request may or may not execute, and the
    ticket must never be polled again — or the reply code ([>= 0], slot
    acked) if the consumer completed first, in which case the cancel
    degenerated into the final poll. Races only with the consumer: the
    submitting client is the only caller for its own ticket. *)
let cancel t ~ticket =
  let s = seq_at t ticket in
  let v = Atomic.get s in
  if v = ticket + 1 && Atomic.compare_and_set s (ticket + 1) (ticket + 3) then -1
  else if Atomic.get s = ticket + 2 then begin
    (* Completed (either before the first read or by winning the race
       against our CAS): take the reply and ack, exactly like poll. *)
    let r = t.payload.(base t ticket + 3) in
    Atomic.set s (ticket + t.capacity);
    r
  end
  else -1 (* already past this lap: tolerate a stray double-cancel *)

(* -- the consumer (one domain) ------------------------------------------- *)

(** Is the request at the consumer's cursor position submitted? *)
let[@inline] ready t ~pos = Atomic.get (seq_at t pos) = pos + 1

(** Did the producer cancel the request at the cursor position? *)
let[@inline] cancelled t ~pos = Atomic.get (seq_at t pos) = pos + 3

(* Payload accessors: valid only between [ready] and [complete]. *)
let[@inline] op t ~pos = t.payload.(base t pos)
let[@inline] key t ~pos = t.payload.(base t pos + 1)
let[@inline] value t ~pos = t.payload.(base t pos + 2)

(** The ring generation the request at [pos] was submitted under. *)
let[@inline] stamp t ~pos = t.payload.(base t pos + 4)

(** The request's absolute deadline in microseconds (0 = none). *)
let[@inline] deadline_us t ~pos = t.payload.(base t pos + 5)

(** Publish the reply for the request at [pos] and hand the slot back to
    its submitter. Returns [false] when the producer's {!cancel} won the
    race instead — the reply is dropped, the slot is freed here (the
    canceller never touches it again), and the consumer simply moves
    on. *)
let[@inline] complete t ~pos reply =
  t.payload.(base t pos + 3) <- reply;
  let s = seq_at t pos in
  if Atomic.compare_and_set s (pos + 1) (pos + 2) then true
  else begin
    (* Only cancel takes submitted → cancelled; free the slot. *)
    Atomic.set s (pos + t.capacity);
    false
  end

(** Free a {!cancelled} slot at the cursor position. *)
let[@inline] discard t ~pos = Atomic.set (seq_at t pos) (pos + t.capacity)
