(** Bounded MPSC request/reply ring: many client domains submit
    requests, one shard domain serves them and completes each with an
    integer reply through the same slot. Allocation-free on every path;
    [-1] sentinels instead of options. See the implementation header
    for the slot lifecycle (free → submitted → completed | cancelled →
    acked) and the incarnation (generation) tag recovery rides on. *)

type t

(** [create ~capacity] — rounded up to a power of two, minimum 4. *)
val create : capacity:int -> t

val capacity : t -> int

(** {2 Incarnations (recovery supervisor)} *)

(** The current ring generation; requests are stamped with it at submit
    time. *)
val generation : t -> int

(** Bump the generation: the respawn takeover edge. Call after joining
    the dead consumer domain, before starting the replacement — the
    replacement answers requests stamped below the new generation with
    a rejection instead of executing them. *)
val bump_generation : t -> unit

(** {2 Producers (any domain)} *)

(** Claim a slot and publish a request: returns a ticket [>= 0], or
    [-1] when the ring is full. [deadline_us] is an absolute deadline
    in integer microseconds, [0] = none; the consumer sheds requests it
    picks up past their deadline (answering busy) instead of executing
    them. *)
val try_submit : ?deadline_us:int -> t -> op:int -> key:int -> value:int -> int

(** Claim [n] consecutive slots with a single tail CAS and publish a
    whole request chain read from [ops/keys/values.(off + i)],
    [i = 0 .. n-1]. Returns the first ticket (the chain occupies
    tickets [ticket .. ticket + n - 1]) or [-1] when the ring lacks [n]
    free contiguous slots. Published head-last: a consumer that sees
    the head sees the whole chain. At [n = 1] the slot protocol is
    byte-for-byte {!try_submit}'s. Raises [Invalid_argument] when [n]
    is outside [1, capacity/2]. Wait for the chain with {!await_chain}
    (or poll {!chain_done}) and collect replies with {!harvest_chain} —
    never with per-slot {!poll}/{!cancel}. *)
val try_submit_chain :
  ?deadline_us:int ->
  t ->
  n:int ->
  ops:int array ->
  keys:int array ->
  values:int array ->
  off:int ->
  int

(** Reply for [ticket] ([>= 0], frees the slot) or [-1] while pending.
    Poll each ticket to completion exactly once — or abandon it with
    {!cancel}, never both. *)
val poll : t -> ticket:int -> int

(** Abandon [ticket] (the client-side deadline path): [-1] if the
    cancel won — the consumer discards the slot, the request may or may
    not execute, and the ticket must never be polled again — or the
    reply code [>= 0] if the consumer completed first (the cancel then
    acted as the final poll and freed the slot). *)
val cancel : t -> ticket:int -> int

(** {2 Coalesced chain completion (the submitting client)}

    One wait per chain instead of one per slot: the single consumer
    completes slots in cursor order, so the chain's last slot completed
    implies every slot completed, and the acquire read of that one
    sequence word orders the client after every reply write in the
    chain. *)

(** Has the whole chain [ticket .. ticket + n - 1] completed? *)
val chain_done : t -> ticket:int -> n:int -> bool

(** Copy the [n] replies into [replies.(off + i)] and ack all slots.
    Only after {!chain_done} is [true] / {!await_chain} returned. *)
val harvest_chain : t -> ticket:int -> n:int -> replies:int array -> off:int -> unit

(** {2 Adaptive blocking waits}

    Tight reads, then [Domain.cpu_relax], then exponential sleep
    backoff (1 µs doubling, 1 ms cap) — tallied into {!stats}. *)

(** Block until [ticket] completes; returns the reply and acks the slot
    (a blocking {!poll}). *)
val await : t -> ticket:int -> int

(** Block until the whole chain completes; follow with
    {!harvest_chain}. *)
val await_chain : t -> ticket:int -> n:int -> unit

(** {2 Wait telemetry} *)

type stats = {
  client_spins : int;  (** [cpu_relax] iterations inside blocking waits *)
  client_backoffs : int;  (** sleeps taken inside blocking waits *)
}

(** Cumulative (approximate under concurrent waiters). *)
val stats : t -> stats

(** {2 The consumer (the single shard domain)}

    The consumer owns a cursor [pos], starting at 0 and incremented by
    1 after each {!complete} or {!discard}. *)

val ready : t -> pos:int -> bool

(** Did the producer cancel the request at the cursor position? If so,
    {!discard} it and advance. *)
val cancelled : t -> pos:int -> bool

(** Valid only between [ready t ~pos = true] and [complete t ~pos]. *)
val op : t -> pos:int -> int

val key : t -> pos:int -> int
val value : t -> pos:int -> int

(** The ring generation the request at [pos] was submitted under;
    [stamp < generation] marks a dead incarnation's request. *)
val stamp : t -> pos:int -> int

(** The request's absolute deadline in microseconds (0 = none). *)
val deadline_us : t -> pos:int -> int

(** Requests remaining in the contiguous chain starting at [pos]
    (inclusive); [1] for a single submit. Same validity window as
    {!op}. *)
val chain_len : t -> pos:int -> int

(** Publish the reply and hand the slot back to its submitter. [false]
    when a racing {!cancel} won: the reply was dropped and the slot
    freed here; the consumer just advances. *)
val complete : t -> pos:int -> int -> bool

(** Free a {!cancelled} slot. *)
val discard : t -> pos:int -> unit
