(** Bounded MPSC request/reply ring: many client domains submit
    requests, one shard domain serves them and completes each with an
    integer reply through the same slot. Allocation-free on every path;
    [-1] sentinels instead of options. See the implementation header
    for the slot lifecycle (free → submitted → completed | cancelled →
    acked) and the incarnation (generation) tag recovery rides on. *)

type t

(** [create ~capacity] — rounded up to a power of two, minimum 4. *)
val create : capacity:int -> t

val capacity : t -> int

(** {2 Incarnations (recovery supervisor)} *)

(** The current ring generation; requests are stamped with it at submit
    time. *)
val generation : t -> int

(** Bump the generation: the respawn takeover edge. Call after joining
    the dead consumer domain, before starting the replacement — the
    replacement answers requests stamped below the new generation with
    a rejection instead of executing them. *)
val bump_generation : t -> unit

(** {2 Producers (any domain)} *)

(** Claim a slot and publish a request: returns a ticket [>= 0], or
    [-1] when the ring is full. [deadline_us] is an absolute deadline
    in integer microseconds, [0] = none; the consumer sheds requests it
    picks up past their deadline (answering busy) instead of executing
    them. *)
val try_submit : ?deadline_us:int -> t -> op:int -> key:int -> value:int -> int

(** Reply for [ticket] ([>= 0], frees the slot) or [-1] while pending.
    Poll each ticket to completion exactly once — or abandon it with
    {!cancel}, never both. *)
val poll : t -> ticket:int -> int

(** Abandon [ticket] (the client-side deadline path): [-1] if the
    cancel won — the consumer discards the slot, the request may or may
    not execute, and the ticket must never be polled again — or the
    reply code [>= 0] if the consumer completed first (the cancel then
    acted as the final poll and freed the slot). *)
val cancel : t -> ticket:int -> int

(** {2 The consumer (the single shard domain)}

    The consumer owns a cursor [pos], starting at 0 and incremented by
    1 after each {!complete} or {!discard}. *)

val ready : t -> pos:int -> bool

(** Did the producer cancel the request at the cursor position? If so,
    {!discard} it and advance. *)
val cancelled : t -> pos:int -> bool

(** Valid only between [ready t ~pos = true] and [complete t ~pos]. *)
val op : t -> pos:int -> int

val key : t -> pos:int -> int
val value : t -> pos:int -> int

(** The ring generation the request at [pos] was submitted under;
    [stamp < generation] marks a dead incarnation's request. *)
val stamp : t -> pos:int -> int

(** The request's absolute deadline in microseconds (0 = none). *)
val deadline_us : t -> pos:int -> int

(** Publish the reply and hand the slot back to its submitter. [false]
    when a racing {!cancel} won: the reply was dropped and the slot
    freed here; the consumer just advances. *)
val complete : t -> pos:int -> int -> bool

(** Free a {!cancelled} slot. *)
val discard : t -> pos:int -> unit
