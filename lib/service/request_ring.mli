(** Bounded MPSC request/reply ring: many client domains submit
    requests, one shard domain serves them and completes each with an
    integer reply through the same slot. Allocation-free on every path;
    [-1] sentinels instead of options. See the implementation header
    for the slot lifecycle. *)

type t

(** [create ~capacity] — rounded up to a power of two, minimum 4. *)
val create : capacity:int -> t

val capacity : t -> int

(** {2 Producers (any domain)} *)

(** Claim a slot and publish a request: returns a ticket [>= 0], or
    [-1] when the ring is full. *)
val try_submit : t -> op:int -> key:int -> value:int -> int

(** Reply for [ticket] ([>= 0], frees the slot) or [-1] while pending.
    Poll each ticket to completion exactly once. *)
val poll : t -> ticket:int -> int

(** {2 The consumer (the single shard domain)}

    The consumer owns a private cursor [pos], starting at 0 and
    incremented by 1 after each {!complete}. *)

val ready : t -> pos:int -> bool

(** Valid only between [ready t ~pos = true] and [complete t ~pos]. *)
val op : t -> pos:int -> int

val key : t -> pos:int -> int
val value : t -> pos:int -> int

(** Publish the reply and hand the slot back to its submitter. *)
val complete : t -> pos:int -> int -> unit
