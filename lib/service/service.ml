(** Sharded in-process request service over a concurrent set.

    Keys are hash-partitioned across N shards. Each shard is one domain
    owning one bounded MPSC {!Request_ring} and one SMR session of the
    underlying structure (shard [i] is SMR tid [i] — the shards are the
    only threads of the structure; clients never touch it directly).

    The shard drains requests inside SMR batch windows
    ([SET.batch_enter] … [SET.batch_exit]) of at most B SET operations
    each: the per-operation reservation-publish + teardown of
    MP/HP/HE-class schemes is paid once per window instead of once per
    operation, at the documented cost of a protected window widened to
    B operations (DESIGN.md "Service layer and batch amortization").
    A {!op_mget} request counts each of its gets against the budget and
    the window rolls over mid-request when it fills, so with
    [batch = 1] every operation runs exactly the un-batched protocol.

    Fault plans ({!Mp_util.Fault}) fire inside the shard domains. A
    shard that draws a [Crash] dies the way the paper's §4.4 thread
    does — its announcements stay published and pin memory — but the
    service degrades instead of deadlocking: the dead shard turns into
    a rejector that answers every subsequent request on its ring with
    {!reply_rejected}, so no client ever blocks on a crashed shard.

    Single-core friendliness: every wait in this module (and in
    {!Loadgen}) briefly spins then sleeps, because on an oversubscribed
    host a pure spin burns exactly the timeslice the peer needs. *)

module Padding = Mp_util.Padding

(* -- wire protocol ------------------------------------------------------- *)

let op_contains = 0
let op_insert = 1
let op_remove = 2

(** Multi-get: [key] is the first key, [value] the count [n >= 1]; the
    shard runs [contains] on the [n] consecutive keys and replies
    [reply_mget_base + hits]. One request, [n] operations — the
    request/reply round trip amortizes over the gets, the way
    memcached's [get_multi] or redis' [MGET] batch reads. *)
let op_mget = 3

let reply_false = 0
let reply_true = 1

(** The owning shard crashed; the request was not executed. *)
let reply_rejected = 2

(** The node pool was exhausted; the request was not executed. *)
let reply_oom = 3

(** Multi-get replies are [reply_mget_base + hits] so hit counts never
    collide with the status codes above. *)
let reply_mget_base = 4

(* -- spin-then-sleep ----------------------------------------------------- *)

let[@inline] pause spins =
  if !spins < 64 then begin
    incr spins;
    Domain.cpu_relax ()
  end
  else Unix.sleepf 0.0001

(* -- the service --------------------------------------------------------- *)

type t = {
  shards : int;
  batch : int;
  rings : Request_ring.t array;
  stop : bool Atomic.t;
  workers : (unit -> unit) array;
  mutable domains : unit Domain.t array;
  crashed : bool array; (* by shard; written by the shard, read after stop *)
  (* per-shard tallies, spaced so concurrent shards don't false-share;
     written by the owning shard during the run, read after [stop] *)
  ops : int array;
  batches : int array;
  max_batch : int array;
  rejected : int array;
  oom : int array;
}

(* SplitMix-style finalizer: full-avalanche key hash so dense key ranges
   spread over shards instead of striping. *)
let[@inline] mix k =
  let h = k lxor (k lsr 30) in
  let h = h * 0x4be98134a5976fd3 land max_int in
  let h = h lxor (h lsr 29) in
  let h = h * 0x3bc8203a9e4037a9 land max_int in
  h lxor (h lsr 32)

let[@inline] shard_of_key t key = mix key mod t.shards

let create (type a) (module SET : Dstruct.Set_intf.SET with type t = a) (set : a) ~shards
    ~batch ~ring_capacity =
  let rings = Array.init shards (fun _ -> Request_ring.create ~capacity:ring_capacity) in
  let stop = Atomic.make false in
  let crashed = Array.make shards false in
  let spaced () = Array.make (Padding.spaced_length shards) 0 in
  let ops = spaced () and batches = spaced () and max_batch = spaced () in
  let rejected = spaced () and oom = spaced () in
  let worker shard () =
    let s = SET.session set ~tid:shard in
    let ring = rings.(shard) in
    let pos = ref 0 in
    let spins = ref 0 in
    let my_ops = ref 0 and my_batches = ref 0 and my_max = ref 0 in
    let my_rejected = ref 0 and my_oom = ref 0 in
    let alive = ref true in
    let die () =
      alive := false;
      crashed.(shard) <- true
    in
    (* Serve one drain: up to B requests ready on the ring, under batch
       windows whose ceiling counts SET *operations* — a multi-get's
       gets each count, and the window rolls over (exit + re-enter)
       mid-request rather than widening the protected window past B.
       With [batch = 1] every operation therefore runs the exact
       un-batched per-operation protocol. A [Crash] fault anywhere in a
       window kills the shard *without* running batch_exit — the §4.4
       scenario needs the dead thread's announcements to stay
       published — but the request being served is still completed
       (rejected) first, so its client does not hang. *)
    let serve_batch () =
      match SET.batch_enter s with
      | exception Mp_util.Fault.Crashed _ -> die ()
      | () ->
        let reqs = ref 0 in
        let window_ops = ref 0 in
        let dead = ref false in
        let close_window () =
          incr my_batches;
          if !window_ops > !my_max then my_max := !window_ops
        in
        (* Called before each operation: spend one unit of the window's
           op budget, rolling the window when it is full. *)
        let budget () =
          if !window_ops >= batch then begin
            close_window ();
            (try SET.batch_exit s with Mp_util.Fault.Crashed _ -> dead := true);
            if not !dead then
              (try SET.batch_enter s with Mp_util.Fault.Crashed _ -> dead := true);
            window_ops := 0
          end
        in
        while (not !dead) && !reqs < batch && Request_ring.ready ring ~pos:!pos do
          let op = Request_ring.op ring ~pos:!pos
          and key = Request_ring.key ring ~pos:!pos
          and value = Request_ring.value ring ~pos:!pos in
          let reply =
            if op = 3 (* op_mget *) then begin
              let n = if value < 1 then 1 else value in
              let hits = ref 0 in
              (try
                 for i = 0 to n - 1 do
                   budget ();
                   if !dead then raise Exit;
                   if SET.contains s (key + i) then incr hits;
                   incr window_ops;
                   incr my_ops
                 done
               with
              | Exit -> ()
              | Mp_util.Fault.Crashed _ -> dead := true);
              if !dead then reply_rejected else reply_mget_base + !hits
            end
            else begin
              budget ();
              if !dead then reply_rejected
              else
                match
                  (match op with
                  | 0 (* op_contains *) -> SET.contains s key
                  | 1 (* op_insert *) -> SET.insert s ~key ~value
                  | 2 (* op_remove *) -> SET.remove s key
                  | _ -> false)
                with
                | ok ->
                  incr window_ops;
                  incr my_ops;
                  if ok then reply_true else reply_false
                | exception Mempool.Exhausted ->
                  incr my_oom;
                  reply_oom
                | exception Mp_util.Fault.Crashed _ ->
                  dead := true;
                  reply_rejected
            end
          in
          Request_ring.complete ring ~pos:!pos reply;
          incr reqs;
          incr pos
        done;
        close_window ();
        if !dead then die ()
        else (try SET.batch_exit s with Mp_util.Fault.Crashed _ -> die ())
    in
    while not (Atomic.get stop) do
      if Request_ring.ready ring ~pos:!pos then begin
        spins := 0;
        if !alive then serve_batch ()
        else begin
          (* Dead shard: keep answering so clients never block. *)
          Request_ring.complete ring ~pos:!pos reply_rejected;
          incr my_rejected;
          incr pos
        end
      end
      else pause spins
    done;
    (* Final drain: requests submitted before the stop flag landed must
       still be answered, or their clients spin forever. *)
    while Request_ring.ready ring ~pos:!pos do
      Request_ring.complete ring ~pos:!pos reply_rejected;
      incr my_rejected;
      incr pos
    done;
    if !alive then SET.flush s;
    let i = Padding.spaced_index shard in
    ops.(i) <- !my_ops;
    batches.(i) <- !my_batches;
    max_batch.(i) <- !my_max;
    rejected.(i) <- !my_rejected;
    oom.(i) <- !my_oom
  in
  {
    shards;
    batch;
    rings;
    stop;
    workers = Array.init shards worker;
    domains = [||];
    crashed;
    ops;
    batches;
    max_batch;
    rejected;
    oom;
  }

let shards t = t.shards
let batch t = t.batch
let start t = t.domains <- Array.map Domain.spawn t.workers

let stop t =
  Atomic.set t.stop true;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* -- client side --------------------------------------------------------- *)

let[@inline] try_submit t ~shard ~op ~key ~value =
  Request_ring.try_submit t.rings.(shard) ~op ~key ~value

let[@inline] poll t ~shard ~ticket = Request_ring.poll t.rings.(shard) ~ticket

(** Blocking reply wait (spin-then-sleep). Only meaningful while the
    service is running: shards answer every submitted request before
    they exit, so this cannot hang across a clean [stop]. *)
let await t ~shard ~ticket =
  let spins = ref 0 in
  let r = ref (poll t ~shard ~ticket) in
  while !r < 0 do
    pause spins;
    r := poll t ~shard ~ticket
  done;
  !r

(* -- post-run statistics ------------------------------------------------- *)

type stats = {
  ops : int; (* SET operations executed inside batch windows *)
  batches : int; (* batch windows opened *)
  max_batch : int; (* most operations any single window served *)
  rejected : int; (* requests answered by dead shards or the final drain *)
  oom : int; (* requests refused on pool exhaustion *)
  crashed_shards : int;
}

let stats t =
  let sum a = Array.init t.shards (fun s -> a.(Padding.spaced_index s))
              |> Array.fold_left ( + ) 0 in
  let maxv a =
    Array.init t.shards (fun s -> a.(Padding.spaced_index s))
    |> Array.fold_left max 0
  in
  {
    ops = sum t.ops;
    batches = sum t.batches;
    max_batch = maxv t.max_batch;
    rejected = sum t.rejected;
    oom = sum t.oom;
    crashed_shards =
      Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.crashed;
  }
