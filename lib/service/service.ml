(** Sharded in-process request service over a concurrent set.

    Keys are hash-partitioned across N shards. Each shard is one domain
    owning one bounded MPSC {!Request_ring} and one SMR session of the
    underlying structure (the shards are the only threads of the
    structure; clients never touch it directly). Shard [i] starts on SMR
    tid [i]; with recovery enabled a respawned shard runs on a fresh tid
    from the free-tid pool, so the tid is carried in the worker, not
    derived from the shard index.

    The shard drains requests inside SMR batch windows
    ([SET.batch_enter] … [SET.batch_exit]) of at most B SET operations
    each: the per-operation reservation-publish + teardown of
    MP/HP/HE-class schemes is paid once per window instead of once per
    operation, at the documented cost of a protected window widened to
    B operations (DESIGN.md "Service layer and batch amortization").
    A {!op_mget} request counts each of its gets against the budget and
    the window rolls over mid-request when it fills, so with
    [batch = 1] every operation runs exactly the un-batched protocol.

    Fault plans ({!Mp_util.Fault}) fire inside the shard domains. A
    shard that draws a [Crash] dies the way the paper's §4.4 thread
    does — its announcements stay published and pin memory. What happens
    next depends on whether the service was created with a
    {!Recovery.config}:

    - {b Without recovery} (the PR-5 behaviour, and the default): the
      dead shard turns into a rejector that answers every subsequent
      request on its ring with {!reply_rejected}, so no client ever
      blocks — the service degrades, the §4.4 waste is paid forever.
    - {b With recovery}: each shard increments a heartbeat word every
      scheduling loop; a supervisor domain samples them. The crashing
      shard completes its in-flight request ({!reply_rejected}), writes
      its stats, stamps the heartbeat with the dead marker and exits its
      domain. The supervisor joins the corpse, bumps the ring's
      generation (so the replacement rejects the dead incarnation's
      queued requests exactly once — the seq-word lifecycle guarantees
      no reply is lost or duplicated across the takeover), respawns a
      replacement worker on a fresh tid for the same shard, and then
      {e adopts} the dead tid ({!Dstruct.Set_intf.SET.adopt}): every
      reservation the corpse left published is released, its retired
      backlog drained, and the tid returned to the pool. Wasted memory
      returns to the no-crash baseline instead of staying pinned.

    Backpressure: a request carries an optional absolute deadline; a
    shard that picks a request up past its deadline answers
    {!reply_busy} without executing it — the signal a client's retry
    loop can act on freely, because a busy reply guarantees
    non-execution (unlike {!reply_rejected}, which is ambiguous: the
    crash may have landed mid-operation).

    Single-core friendliness: every wait in this module (and in
    {!Loadgen}) briefly spins then sleeps, because on an oversubscribed
    host a pure spin burns exactly the timeslice the peer needs. *)

module Padding = Mp_util.Padding

(* -- wire protocol ------------------------------------------------------- *)

let op_contains = 0
let op_insert = 1
let op_remove = 2

(** Multi-get: [key] is the first key, [value] the count [n >= 1]; the
    shard runs [contains] on the [n] consecutive keys and replies
    [reply_mget_base + hits]. One request, [n] operations — the
    request/reply round trip amortizes over the gets, the way
    memcached's [get_multi] or redis' [MGET] batch reads. *)
let op_mget = 3

let reply_false = 0
let reply_true = 1

(** The request was not (or not provably) executed: the owning shard
    crashed with it in flight, it was queued to a dead incarnation, or
    it hit the shutdown drain. Ambiguous for writes — a crash can land
    mid-operation — so retry loops must treat it as idempotent-only. *)
let reply_rejected = 2

(** The node pool was exhausted; the request was not executed. *)
let reply_oom = 3

(** Backpressure: the shard picked the request up past its deadline and
    did not execute it (definitely-not-executed, so safely retryable
    for any operation — the queue was the problem). *)
let reply_busy = 4

(** Multi-get replies are [reply_mget_base + hits] so hit counts never
    collide with the status codes above. *)
let reply_mget_base = 5

(* -- spin-then-sleep ----------------------------------------------------- *)

let[@inline] pause spins =
  if !spins < 64 then begin
    incr spins;
    Domain.cpu_relax ()
  end
  else Unix.sleepf 0.0001

(* -- the service --------------------------------------------------------- *)

(** Heartbeat value a crashing worker leaves behind; live beats count
    up from 1. *)
let dead_hb = -1

(* Bounded backoff a shard spends on a *transient* pool exhaustion
   before answering [reply_oom] — slots may be hiding in other shards'
   magazines, or an arena attach may be in flight. Hard exhaustion (the
   pool at max_arenas with nothing in flight, {!Mempool.Core.last_alloc_hard})
   skips the schedule: waiting cannot produce an arena. *)
let oom_retries = 32

(** Elastic-pool autoscale policy ({!create}'s [?autoscale]): a policy
    domain samples the pool's live count every [sample_interval_s],
    folds a high-water mark per decision window of [decay_ticks]
    samples, and derives [arena_target] — the arenas needed to hold that
    windowed live peak plus [headroom_pct] percent. Growth is
    demand-driven on the alloc path and needs no policy; the policy's
    job is the other direction: when the pool holds more arenas than the
    target for a full window, it requests a drain of the topmost arena
    (completion stays gated through the SMR scan barrier, and allocation
    pressure auto-cancels the drain if the spike returns). *)
type autoscale = {
  sample_interval_s : float;
  decay_ticks : int;
  headroom_pct : int;
}

let default_autoscale = { sample_interval_s = 0.001; decay_ticks = 100; headroom_pct = 25 }

type t = {
  shards : int;
  batch : int;
  rings : Request_ring.t array;
  stop : bool Atomic.t;
  worker : int -> int -> unit -> unit; (* shard, tid *)
  adopt_tid : int -> unit;
  mutable domains : unit Domain.t array; (* by shard; entries replaced on respawn *)
  mutable supervisor : unit Domain.t option;
  pool : Mempool.Core.t; (* the structure's node pool (elasticity telemetry/policy) *)
  autoscale : autoscale option;
  mutable scaler : unit Domain.t option;
  arena_target : int Atomic.t; (* last autoscale decision; attached count without one *)
  joined : bool array; (* by shard: supervisor already joined this corpse *)
  recovery : Recovery.t option;
  hb : int Atomic.t array; (* spaced; [dead_hb] = corpse awaiting takeover *)
  cursors : int Atomic.t array;
      (* spaced; each shard's consumer cursor, published after every
         consumed slot so a replacement resumes exactly where the dead
         incarnation stopped (the join orders the hand-off) *)
  shard_tid : int array; (* current tid of each shard; supervisor-written *)
  dead : bool array; (* by shard: crashed and not (yet) recovered *)
  crash_events : int Atomic.t;
  (* per-shard tallies, spaced so concurrent shards don't false-share;
     accumulated with [+=] because shard incarnations never overlap
     (the supervisor joins the corpse before spawning the replacement) *)
  ops : int array;
  batches : int array;
  max_batch : int array;
  rejected : int array;
  oom : int array;
  stalls : int array; (* transient pool-exhaustion retries absorbed as backpressure *)
  stale : int array; (* dead-incarnation requests rejected by a replacement *)
  shed : int array; (* past-deadline requests answered busy *)
  cancelled : int array; (* producer-cancelled slots discarded *)
}

(* SplitMix-style finalizer: full-avalanche key hash so dense key ranges
   spread over shards instead of striping. *)
let[@inline] mix k =
  let h = k lxor (k lsr 30) in
  let h = h * 0x4be98134a5976fd3 land max_int in
  let h = h lxor (h lsr 29) in
  let h = h * 0x3bc8203a9e4037a9 land max_int in
  h lxor (h lsr 32)

let[@inline] shard_of_key t key = mix key mod t.shards

let[@inline] now_us () = int_of_float (Unix.gettimeofday () *. 1e6)

(* Deadline shedding: only requests that carry a deadline pay the clock
   read. *)
let[@inline] past_deadline ring ~pos =
  let d = Request_ring.deadline_us ring ~pos in
  d > 0 && now_us () > d

let create ?recovery ?autoscale (type a) (module SET : Dstruct.Set_intf.SET with type t = a)
    (set : a) ~shards ~batch ~ring_capacity =
  let recovery = Option.map (fun cfg -> Recovery.create ~shards cfg) recovery in
  let recovery_on = Option.is_some recovery in
  let pool = SET.pool set in
  let rings = Array.init shards (fun _ -> Request_ring.create ~capacity:ring_capacity) in
  let stop = Atomic.make false in
  let dead = Array.make shards false in
  let crash_events = Atomic.make 0 in
  let hb = Padding.atomic_int_array shards in
  let cursors = Padding.atomic_int_array shards in
  let spaced () = Array.make (Padding.spaced_length shards) 0 in
  let ops = spaced () and batches = spaced () and max_batch = spaced () in
  let rejected = spaced () and oom = spaced () and stalls = spaced () in
  let stale = spaced () and shed = spaced () and cancelled = spaced () in
  let worker shard tid () =
    let s = SET.session set ~tid in
    let ring = rings.(shard) in
    let hb = hb.(Padding.spaced_index shard) in
    let cursor = cursors.(Padding.spaced_index shard) in
    let pos = ref (Atomic.get cursor) in
    let spins = ref 0 in
    let beat = ref 0 in
    let my_ops = ref 0 and my_batches = ref 0 and my_max = ref 0 in
    let my_rejected = ref 0 and my_oom = ref 0 and my_stalls = ref 0 in
    let my_stale = ref 0 and my_shed = ref 0 and my_cancelled = ref 0 in
    let oom_backoff = Mp_util.Backoff.create () in
    let alive = ref true in
    (* [exiting] only under recovery: the crashed worker leaves its
       domain so the supervisor can join it and take over; without
       recovery it stays as a rejector (the PR-5 degraded mode). *)
    let exiting = ref false in
    let die () =
      alive := false;
      dead.(shard) <- true;
      Atomic.incr crash_events;
      if recovery_on then exiting := true
    in
    let[@inline] advance () =
      incr pos;
      Atomic.set cursor !pos
    in
    (* Serve one drain: up to B requests ready on the ring, under batch
       windows whose ceiling counts SET *operations* — a multi-get's
       gets each count, and the window rolls over (exit + re-enter)
       mid-request rather than widening the protected window past B.
       With [batch = 1] every operation therefore runs the exact
       un-batched per-operation protocol. A [Crash] fault anywhere in a
       window kills the shard *without* running batch_exit — the §4.4
       scenario needs the dead thread's announcements to stay
       published — but the request being served is still completed
       (rejected) first, so its client does not hang. Cancelled, stale
       and past-deadline slots end the batch loop and fall back to the
       outer loop, which handles them without opening a window. *)
    let serve_batch () =
      match SET.batch_enter s with
      | exception Mp_util.Fault.Crashed _ -> die ()
      | () ->
        (* One wakeup drains at least the whole contiguous chain at the
           cursor (published head-last, so if the head is ready the rest
           is too): the window budget below still rolls every B ops, so
           chains longer than B amortize the wakeup without ever
           widening a protected window past B. *)
        let limit =
          let n = Request_ring.chain_len ring ~pos:!pos in
          if n > batch then n else batch
        in
        let reqs = ref 0 in
        let window_ops = ref 0 in
        let dead_here = ref false in
        let close_window () =
          incr my_batches;
          if !window_ops > !my_max then my_max := !window_ops
        in
        (* Called before each operation: spend one unit of the window's
           op budget, rolling the window when it is full. *)
        let budget () =
          if !window_ops >= batch then begin
            close_window ();
            (try SET.batch_exit s with Mp_util.Fault.Crashed _ -> dead_here := true);
            if not !dead_here then
              (try SET.batch_enter s with Mp_util.Fault.Crashed _ -> dead_here := true);
            window_ops := 0
          end
        in
        while
          (not !dead_here) && !reqs < limit
          && Request_ring.ready ring ~pos:!pos
          && Request_ring.stamp ring ~pos:!pos = Request_ring.generation ring
          && not (past_deadline ring ~pos:!pos)
        do
          let op = Request_ring.op ring ~pos:!pos
          and key = Request_ring.key ring ~pos:!pos
          and value = Request_ring.value ring ~pos:!pos in
          let reply =
            if op = 3 (* op_mget *) then begin
              let n = if value < 1 then 1 else value in
              let hits = ref 0 in
              (try
                 for i = 0 to n - 1 do
                   budget ();
                   if !dead_here then raise Exit;
                   if SET.contains s (key + i) then incr hits;
                   incr window_ops;
                   incr my_ops
                 done
               with
              | Exit -> ()
              | Mp_util.Fault.Crashed _ -> dead_here := true);
              if !dead_here then reply_rejected else reply_mget_base + !hits
            end
            else begin
              budget ();
              if !dead_here then reply_rejected
              else begin
                (* Pool exhaustion: transient exhaustion (slots hiding
                   in other threads' magazines, a grow or drain-cancel
                   in flight) is backpressure — retry under bounded
                   backoff; the failed insert left the structure
                   unchanged. Hard exhaustion (at max_arenas, nothing in
                   flight) answers [reply_oom] immediately: no pool-side
                   event can produce a slot, so burning the schedule
                   would only stall the whole ring behind this
                   request. *)
                let rec exec attempts =
                  match
                    (match op with
                    | 0 (* op_contains *) -> SET.contains s key
                    | 1 (* op_insert *) -> SET.insert s ~key ~value
                    | 2 (* op_remove *) -> SET.remove s key
                    | _ -> false)
                  with
                  | ok ->
                    if attempts > 0 then Mp_util.Backoff.reset oom_backoff;
                    incr window_ops;
                    incr my_ops;
                    if ok then reply_true else reply_false
                  | exception Mempool.Exhausted ->
                    incr my_stalls;
                    if attempts >= oom_retries || Mempool.Core.last_alloc_hard pool ~tid
                    then begin
                      incr my_oom;
                      reply_oom
                    end
                    else begin
                      Mp_util.Backoff.once oom_backoff;
                      exec (attempts + 1)
                    end
                  | exception Mp_util.Fault.Crashed _ ->
                    dead_here := true;
                    reply_rejected
                in
                exec 0
              end
            end
          in
          if not (Request_ring.complete ring ~pos:!pos reply) then incr my_cancelled;
          incr reqs;
          advance ()
        done;
        close_window ();
        if !dead_here then die ()
        else (try SET.batch_exit s with Mp_util.Fault.Crashed _ -> die ())
    in
    while (not (Atomic.get stop)) && not !exiting do
      incr beat;
      Atomic.set hb !beat;
      if Request_ring.cancelled ring ~pos:!pos then begin
        spins := 0;
        Request_ring.discard ring ~pos:!pos;
        incr my_cancelled;
        advance ()
      end
      else if Request_ring.ready ring ~pos:!pos then begin
        spins := 0;
        if not !alive then begin
          (* Dead shard, no recovery: keep answering so clients never
             block. *)
          if not (Request_ring.complete ring ~pos:!pos reply_rejected) then
            incr my_cancelled
          else incr my_rejected;
          advance ()
        end
        else if Request_ring.stamp ring ~pos:!pos < Request_ring.generation ring
        then begin
          (* Mail addressed to the dead incarnation: rejected exactly
             once, never executed. *)
          if not (Request_ring.complete ring ~pos:!pos reply_rejected) then
            incr my_cancelled
          else incr my_stale;
          advance ()
        end
        else if past_deadline ring ~pos:!pos then begin
          (* The request waited in the ring past its deadline: shed it
             with the definitely-not-executed busy signal. *)
          if not (Request_ring.complete ring ~pos:!pos reply_busy) then
            incr my_cancelled
          else incr my_shed;
          advance ()
        end
        else serve_batch ()
      end
      else pause spins
    done;
    (* Crash exit racing [stop], or a clean stop: requests submitted
       before the stop flag landed must still be answered, or their
       clients spin forever. A mid-run crash exit skips the drain — the
       replacement takes the ring over at the published cursor. *)
    if (not !exiting) || Atomic.get stop then begin
      let draining = ref true in
      while !draining do
        if Request_ring.cancelled ring ~pos:!pos then begin
          Request_ring.discard ring ~pos:!pos;
          incr my_cancelled;
          advance ()
        end
        else if Request_ring.ready ring ~pos:!pos then begin
          if not (Request_ring.complete ring ~pos:!pos reply_rejected) then
            incr my_cancelled
          else incr my_rejected;
          advance ()
        end
        else draining := false
      done
    end;
    if !alive then SET.flush s;
    (* Hand the magazines back on the way out: a pending arena drain
       must not stall on free slots no thread will ever pop again. *)
    Mempool.Core.release_local pool ~tid;
    let i = Padding.spaced_index shard in
    ops.(i) <- ops.(i) + !my_ops;
    batches.(i) <- batches.(i) + !my_batches;
    if !my_max > max_batch.(i) then max_batch.(i) <- !my_max;
    rejected.(i) <- rejected.(i) + !my_rejected;
    oom.(i) <- oom.(i) + !my_oom;
    stalls.(i) <- stalls.(i) + !my_stalls;
    stale.(i) <- stale.(i) + !my_stale;
    shed.(i) <- shed.(i) + !my_shed;
    cancelled.(i) <- cancelled.(i) + !my_cancelled;
    (* The dead marker goes last: once the supervisor sees it, the join
       and takeover begin. *)
    if !exiting then Atomic.set hb dead_hb
  in
  {
    shards;
    batch;
    rings;
    stop;
    worker;
    adopt_tid = (fun tid -> SET.adopt set ~tid);
    domains = [||];
    supervisor = None;
    pool;
    autoscale;
    scaler = None;
    arena_target = Atomic.make (Mempool.Core.attached_arenas pool);
    joined = Array.make shards false;
    recovery;
    hb;
    cursors;
    shard_tid = Array.init shards Fun.id;
    dead;
    crash_events;
    ops;
    batches;
    max_batch;
    rejected;
    oom;
    stalls;
    stale;
    shed;
    cancelled;
  }

let shards t = t.shards
let batch t = t.batch
let ring_capacity t = Request_ring.capacity t.rings.(0)

(* -- the supervisor (recovery only) -------------------------------------- *)

(* Reject-drain a dead shard's ring from its published cursor — the
   post-stop path for a corpse no replacement will ever serve. Runs in
   the supervisor domain after joining the corpse, so the shard's stats
   slots and cursor are safely handed over. *)
let drain_reject t shard =
  let ring = t.rings.(shard) in
  let cursor = t.cursors.(Padding.spaced_index shard) in
  let i = Padding.spaced_index shard in
  let pos = ref (Atomic.get cursor) in
  let draining = ref true in
  while !draining do
    if Request_ring.cancelled ring ~pos:!pos then begin
      Request_ring.discard ring ~pos:!pos;
      t.cancelled.(i) <- t.cancelled.(i) + 1;
      incr pos
    end
    else if Request_ring.ready ring ~pos:!pos then begin
      if Request_ring.complete ring ~pos:!pos reply_rejected then
        t.rejected.(i) <- t.rejected.(i) + 1
      else t.cancelled.(i) <- t.cancelled.(i) + 1;
      incr pos
    end
    else draining := false
  done;
  Atomic.set cursor !pos

(* Takeover of a crashed shard: join the corpse (the happens-before edge
   every safety argument below leans on), bump the ring generation so
   the replacement rejects the dead incarnation's queued mail, respawn
   on a fresh tid when the pool has one, then adopt the dead tid —
   releasing everything it pinned — and return it to the pool. With an
   empty pool the order flips: adopt first, reuse the same tid. The
   respawn-first order keeps the shard's downtime at join + spawn; the
   adoption (a reservation clear plus one reclamation pass) runs while
   the replacement is already serving. *)
let recover t st shard =
  let t0 = Unix.gettimeofday () in
  Domain.join t.domains.(shard);
  let dead_tid = t.shard_tid.(shard) in
  Request_ring.bump_generation t.rings.(shard);
  let adopt_and_pool tid =
    t.adopt_tid tid;
    Recovery.note_adoption st;
    Mp_util.Fault.forgive ~tid;
    Recovery.return_tid st tid
  in
  (match Recovery.take_tid st with
  | Some fresh ->
    t.shard_tid.(shard) <- fresh;
    Atomic.set t.hb.(Padding.spaced_index shard) 0;
    t.dead.(shard) <- false;
    t.domains.(shard) <- Domain.spawn (t.worker shard fresh);
    let now = Unix.gettimeofday () in
    Recovery.note_recovery st ~elapsed_s:(now -. t0) ~at:now;
    adopt_and_pool dead_tid
  | None ->
    t.adopt_tid dead_tid;
    Recovery.note_adoption st;
    Mp_util.Fault.forgive ~tid:dead_tid;
    Atomic.set t.hb.(Padding.spaced_index shard) 0;
    t.dead.(shard) <- false;
    t.domains.(shard) <- Domain.spawn (t.worker shard dead_tid);
    let now = Unix.gettimeofday () in
    Recovery.note_recovery st ~elapsed_s:(now -. t0) ~at:now)

let supervise t st () =
  let cfg = Recovery.config st in
  let n = t.shards in
  let last_beat = Array.make n 0 in
  let last_change = Array.make n (Unix.gettimeofday ()) in
  let flagged = Array.make n false in
  while not (Atomic.get t.stop) do
    Unix.sleepf cfg.Recovery.poll_interval_s;
    for shard = 0 to n - 1 do
      let v = Atomic.get t.hb.(Padding.spaced_index shard) in
      if v = dead_hb then recover t st shard
      else begin
        let now = Unix.gettimeofday () in
        if v <> last_beat.(shard) then begin
          last_beat.(shard) <- v;
          last_change.(shard) <- now;
          flagged.(shard) <- false
        end
        else if
          (not flagged.(shard))
          && now -. last_change.(shard) > cfg.Recovery.stall_timeout_s
        then begin
          (* Heartbeat stale but not dead: the shard may be stalled on a
             fault or starved of CPU. Telemetry only — a stalled shard
             may wake up and keep using its tid, so adopting it would
             break the one-domain-per-tid rule. *)
          flagged.(shard) <- true;
          Recovery.note_suspected st
        end
      end
    done
  done;
  (* Post-stop sweep: a shard that crashed after the last loop pass has
     no replacement coming; join it and reject-drain its ring so no
     straggling client can hang. *)
  for shard = 0 to n - 1 do
    if Atomic.get t.hb.(Padding.spaced_index shard) = dead_hb && not t.joined.(shard)
    then begin
      Domain.join t.domains.(shard);
      t.joined.(shard) <- true;
      drain_reject t shard
    end
  done

(* -- elastic autoscale (policy domain) ------------------------------------ *)

(* See {!type-autoscale}. One decision per [decay_ticks] samples: derive
   [arena_target] from the window's live-count high-water mark (plus
   headroom) and request a drain when the pool holds more arenas than
   the target. At most one drain runs at a time ([request_shrink] is a
   no-op while one is in flight), detach completion stays gated through
   the SMR scan barrier, and a returning spike auto-cancels the drain on
   the alloc path — so the policy can afford to be simple-minded. The
   window peak re-seeds from the current live count, which is how the
   target decays after a spike even though the pool's own [live_peak]
   counter is a run-wide high-water mark. *)
let autoscale_loop t (cfg : autoscale) () =
  let pool = t.pool in
  let cap = Mempool.Core.capacity pool in
  let max_arenas = Mempool.Core.max_arenas pool in
  let peak = ref 0 in
  let tick = ref 0 in
  while not (Atomic.get t.stop) do
    Unix.sleepf cfg.sample_interval_s;
    let live = Mempool.Core.live_count pool in
    if live > !peak then peak := live;
    incr tick;
    if !tick >= cfg.decay_ticks then begin
      let need = !peak + (!peak * cfg.headroom_pct / 100) in
      let target = min max_arenas (max 1 ((need + cap - 1) / cap)) in
      Atomic.set t.arena_target target;
      if Mempool.Core.attached_arenas pool > target then
        ignore (Mempool.Core.request_shrink pool : int option);
      tick := 0;
      peak := live
    end
  done

let start t =
  t.domains <- Array.init t.shards (fun shard -> Domain.spawn (t.worker shard t.shard_tid.(shard)));
  (match t.autoscale with
  | Some cfg when Mempool.Core.max_arenas t.pool > 1 ->
    t.scaler <- Some (Domain.spawn (autoscale_loop t cfg))
  | _ -> ());
  match t.recovery with
  | Some st -> t.supervisor <- Some (Domain.spawn (supervise t st))
  | None -> ()

let stop t =
  Atomic.set t.stop true;
  (match t.scaler with
  | Some d ->
    Domain.join d;
    t.scaler <- None
  | None -> ());
  (match t.supervisor with
  | Some d ->
    Domain.join d;
    t.supervisor <- None
  | None -> ());
  Array.iteri
    (fun shard d -> if not t.joined.(shard) then Domain.join d)
    t.domains;
  t.domains <- [||]

(* -- client side --------------------------------------------------------- *)

let[@inline] try_submit ?(deadline_us = 0) t ~shard ~op ~key ~value =
  Request_ring.try_submit t.rings.(shard) ~op ~key ~value ~deadline_us

(** Submit a whole chain to one shard with a single tail CAS: requests
    [i = 0 .. n-1] read from [ops/keys/values.(off + i)]. Returns the
    first ticket or [-1] (ring lacks [n] contiguous free slots). Wait
    with {!await_chain} / {!chain_done} and collect with
    {!harvest_chain} — never per-slot poll/cancel. *)
let[@inline] try_submit_chain ?(deadline_us = 0) t ~shard ~n ~ops ~keys ~values
    ~off =
  Request_ring.try_submit_chain t.rings.(shard) ~deadline_us ~n ~ops ~keys
    ~values ~off

let[@inline] chain_done t ~shard ~ticket ~n =
  Request_ring.chain_done t.rings.(shard) ~ticket ~n

let[@inline] harvest_chain t ~shard ~ticket ~n ~replies ~off =
  Request_ring.harvest_chain t.rings.(shard) ~ticket ~n ~replies ~off

let[@inline] await_chain t ~shard ~ticket ~n =
  Request_ring.await_chain t.rings.(shard) ~ticket ~n

let[@inline] poll t ~shard ~ticket = Request_ring.poll t.rings.(shard) ~ticket

(** Abandon a ticket (deadline path): [-1] if the cancel won (never
    poll the ticket again; the request may or may not execute), or the
    reply if the shard completed first. *)
let[@inline] cancel t ~shard ~ticket = Request_ring.cancel t.rings.(shard) ~ticket

(** Blocking reply wait — the ring's adaptive spin → [cpu_relax] →
    sleep-backoff wait ({!Request_ring.await}), tallied in
    {!stats.client_spins} / {!stats.client_backoffs}. Only meaningful
    while the service is running: shards answer every submitted request
    before they exit, so this cannot hang across a clean [stop]. *)
let await t ~shard ~ticket = Request_ring.await t.rings.(shard) ~ticket

(* -- post-run statistics ------------------------------------------------- *)

type stats = {
  ops : int; (* SET operations executed inside batch windows *)
  batches : int; (* batch windows opened *)
  max_batch : int; (* most operations any single window served *)
  rejected : int; (* requests answered rejected (dead shard, final drain) *)
  oom : int; (* requests refused on pool exhaustion *)
  alloc_stalls : int; (* transient-exhaustion retries absorbed as backpressure *)
  stale_rejected : int; (* dead-incarnation requests rejected by replacements *)
  shed_busy : int; (* past-deadline requests answered busy, not executed *)
  cancelled : int; (* producer-cancelled slots discarded by consumers *)
  crash_events : int; (* shard crashes over the run (recovered or not) *)
  crashed_shards : int; (* shards dead right now (unrecovered) *)
  client_spins : int; (* cpu_relax iterations inside client await waits *)
  client_backoffs : int; (* sleeps taken inside client await waits *)
  live_peak : int; (* pool live-count high-water mark over the run *)
  arenas_attached : int; (* elastic pool: arenas attached under load *)
  arenas_detached : int; (* elastic pool: arena detaches completed *)
  resident_slots : int; (* pool slots still mapped *)
  arena_target : int; (* last autoscale decision (attached count without one) *)
}

let stats t =
  let sum a = Array.init t.shards (fun s -> a.(Padding.spaced_index s))
              |> Array.fold_left ( + ) 0 in
  let maxv a =
    Array.init t.shards (fun s -> a.(Padding.spaced_index s))
    |> Array.fold_left max 0
  in
  {
    ops = sum t.ops;
    batches = sum t.batches;
    max_batch = maxv t.max_batch;
    rejected = sum t.rejected;
    oom = sum t.oom;
    alloc_stalls = sum t.stalls;
    stale_rejected = sum t.stale;
    shed_busy = sum t.shed;
    cancelled = sum t.cancelled;
    crash_events = Atomic.get t.crash_events;
    crashed_shards =
      Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.dead;
    client_spins =
      Array.fold_left
        (fun acc r -> acc + (Request_ring.stats r).Request_ring.client_spins)
        0 t.rings;
    client_backoffs =
      Array.fold_left
        (fun acc r -> acc + (Request_ring.stats r).Request_ring.client_backoffs)
        0 t.rings;
    live_peak = Mempool.Core.live_peak t.pool;
    arenas_attached = Mempool.Core.arenas_attached t.pool;
    arenas_detached = Mempool.Core.arenas_detached t.pool;
    resident_slots = Mempool.Core.resident_slots t.pool;
    arena_target = Atomic.get t.arena_target;
  }

(** Recovery telemetry, [None] when the service was created without a
    recovery config. *)
let recovery_stats t = Option.map Recovery.stats t.recovery
