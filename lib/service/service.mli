(** Sharded in-process request service: keys hash-partition across N
    shard domains, each draining a bounded MPSC {!Request_ring} and
    executing up to B SET operations per SMR batch window
    ({!Dstruct.Set_intf.SET.batch_enter}). Crashed shards (armed fault
    plans) degrade into rejectors — or, with a {!Recovery.config}, are
    detected by a supervisor domain, joined, respawned on a fresh SMR
    tid and their dead tid adopted, releasing everything it pinned. *)

type t

(** {2 Wire protocol} *)

val op_contains : int
val op_insert : int
val op_remove : int

(** Multi-get: [key] = first key, [value] = count [n >= 1]; the shard
    runs [contains] on the [n] consecutive keys and replies
    {!reply_mget_base}[ + hits]. Each get counts against the batch
    window's op budget (the window rolls over mid-request when full). *)
val op_mget : int

val reply_false : int
val reply_true : int

(** Not (or not provably) executed: the owning shard crashed with the
    request in flight, the request was queued to a dead incarnation, or
    it hit the shutdown drain. Ambiguous for writes — only idempotent
    retries are safe. *)
val reply_rejected : int

(** Pool exhausted; the request was not executed. *)
val reply_oom : int

(** Backpressure: picked up past its deadline and definitely not
    executed — safely retryable for any operation. *)
val reply_busy : int

(** A {!op_mget} reply is [reply_mget_base + hits], so hit counts never
    collide with the status codes above. *)
val reply_mget_base : int

(** {2 Lifecycle} *)

(** Elastic-pool autoscale policy: a policy domain samples the pool's
    live count every [sample_interval_s], folds a high-water mark per
    window of [decay_ticks] samples, and sets [arena_target] = arenas
    needed for that peak plus [headroom_pct] percent. When the pool
    holds more arenas than the target it requests a drain of the
    topmost arena (SMR-gated completion; allocation pressure
    auto-cancels). Growth needs no policy — it is demand-driven on the
    alloc path. Ignored unless the structure's pool has
    [max_arenas > 1]. *)
type autoscale = {
  sample_interval_s : float;
  decay_ticks : int;
  headroom_pct : int;
}

(** [sample_interval_s = 1ms], [decay_ticks = 100] (one decision per
    ~100 ms window), [headroom_pct = 25]. *)
val default_autoscale : autoscale

(** [create (module SET) set ~shards ~batch ~ring_capacity] builds the
    service over an existing structure. [batch] is the maximum SET
    operations per batch window (1 = exactly the un-batched
    per-operation protocol).

    Without [?recovery], [set] must have been created with
    [threads >= shards]: shard [i] runs as SMR tid [i] and a crashed
    shard degrades into a rejector forever. With [?recovery], [set]
    needs [threads >= shards + recovery.spare_tids] and a supervisor
    domain recovers crashed shards: join, ring-generation bump (the
    dead incarnation's queued requests are rejected exactly once by the
    replacement), respawn on a pool tid, and adoption of the dead tid
    ({!Dstruct.Set_intf.SET.adopt}). The shards (plus, transiently, the
    supervisor during adoption) remain the only users of the structure's
    tids. *)
val create :
  ?recovery:Recovery.config ->
  ?autoscale:autoscale ->
  (module Dstruct.Set_intf.SET with type t = 'a) ->
  'a ->
  shards:int ->
  batch:int ->
  ring_capacity:int ->
  t

(** Spawn the shard domains (and the supervisor, if configured). *)
val start : t -> unit

(** Stop and join the supervisor and shards. Requests still in flight
    are answered ({!reply_rejected}) before the shards exit, so
    concurrent awaiters terminate; submissions racing past [stop] may
    remain unanswered — stop clients first. *)
val stop : t -> unit

val shards : t -> int
val batch : t -> int

(** Per-shard request-ring capacity (chains must stay ≤ half of it). *)
val ring_capacity : t -> int

(** {2 Client side (any domain)} *)

(** The shard owning [key]. *)
val shard_of_key : t -> int -> int

(** Submit to a shard's ring: ticket [>= 0], or [-1] if the ring is
    full. [deadline_us] (absolute, microseconds, 0 = none): the shard
    answers {!reply_busy} without executing if it picks the request up
    past the deadline. Route with {!shard_of_key} — a request for a key
    submitted to the wrong shard is answered, but breaks per-key
    serialization. *)
val try_submit :
  ?deadline_us:int -> t -> shard:int -> op:int -> key:int -> value:int -> int

(** Submit a whole chain to one shard with a single tail CAS: requests
    [i = 0 .. n-1] read from [ops/keys/values.(off + i)], all routed to
    [shard]. First ticket, or [-1] when the ring lacks [n] contiguous
    free slots. Chains complete as a unit: wait with {!await_chain} (or
    poll {!chain_done}) and collect all replies with {!harvest_chain} —
    never per-slot {!poll}/{!cancel}. *)
val try_submit_chain :
  ?deadline_us:int ->
  t ->
  shard:int ->
  n:int ->
  ops:int array ->
  keys:int array ->
  values:int array ->
  off:int ->
  int

(** Has the whole chain completed? (One read of the last slot's
    sequence word — reply coalescing.) *)
val chain_done : t -> shard:int -> ticket:int -> n:int -> bool

(** Copy the chain's [n] replies into [replies.(off + i)] and free all
    slots. Only after {!chain_done} / {!await_chain}. *)
val harvest_chain :
  t -> shard:int -> ticket:int -> n:int -> replies:int array -> off:int -> unit

(** Block (adaptive spin-then-backoff) until the whole chain
    completes. *)
val await_chain : t -> shard:int -> ticket:int -> n:int -> unit

(** Reply code [>= 0], or [-1] while pending (frees the slot when it
    answers; poll each ticket to completion exactly once, or abandon it
    with {!cancel} — never both). *)
val poll : t -> shard:int -> ticket:int -> int

(** Abandon a ticket (the client deadline path): [-1] if the cancel won
    — never touch the ticket again; the request may or may not
    execute — or the reply code if the shard completed first (the
    cancel then acted as the final poll). *)
val cancel : t -> shard:int -> ticket:int -> int

(** Blocking {!poll} — adaptive spin → [cpu_relax] → sleep backoff,
    tallied in {!type-stats}. *)
val await : t -> shard:int -> ticket:int -> int

(** {2 Post-run statistics} (read after {!stop}) *)

type stats = {
  ops : int; (* SET operations executed inside batch windows *)
  batches : int; (* batch windows opened *)
  max_batch : int; (* most operations any single window served *)
  rejected : int;
  oom : int; (* requests refused on (hard or budget-exhausted) pool exhaustion *)
  alloc_stalls : int; (* transient-exhaustion retries absorbed as backpressure *)
  stale_rejected : int; (* dead-incarnation requests rejected by replacements *)
  shed_busy : int; (* past-deadline requests answered busy, not executed *)
  cancelled : int; (* producer-cancelled slots discarded by consumers *)
  crash_events : int; (* shard crashes over the run (recovered or not) *)
  crashed_shards : int; (* shards dead right now (unrecovered) *)
  client_spins : int; (* cpu_relax iterations inside client await waits *)
  client_backoffs : int; (* sleeps taken inside client await waits *)
  live_peak : int; (* pool live-count high-water mark over the run *)
  arenas_attached : int; (* elastic pool: arenas attached under load *)
  arenas_detached : int; (* elastic pool: arena detaches completed *)
  resident_slots : int; (* pool slots still mapped *)
  arena_target : int; (* last autoscale decision (attached count without one) *)
}

val stats : t -> stats

(** Recovery telemetry; [None] without a recovery config. *)
val recovery_stats : t -> Recovery.stats option
