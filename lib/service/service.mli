(** Sharded in-process request service: keys hash-partition across N
    shard domains, each draining a bounded MPSC {!Request_ring} and
    executing up to B SET operations per SMR batch window
    ({!Dstruct.Set_intf.SET.batch_enter}). Crashed shards (armed fault
    plans) degrade into rejectors instead of deadlocking clients. *)

type t

(** {2 Wire protocol} *)

val op_contains : int
val op_insert : int
val op_remove : int

(** Multi-get: [key] = first key, [value] = count [n >= 1]; the shard
    runs [contains] on the [n] consecutive keys and replies
    {!reply_mget_base}[ + hits]. Each get counts against the batch
    window's op budget (the window rolls over mid-request when full). *)
val op_mget : int

val reply_false : int
val reply_true : int

(** The owning shard crashed; the request was not executed. *)
val reply_rejected : int

(** Pool exhausted; the request was not executed. *)
val reply_oom : int

(** A {!op_mget} reply is [reply_mget_base + hits], so hit counts never
    collide with the status codes above. *)
val reply_mget_base : int

(** {2 Lifecycle} *)

(** [create (module SET) set ~shards ~batch ~ring_capacity] builds the
    service over an existing structure. [set] must have been created
    with [threads >= shards]; shard [i] runs as SMR tid [i] and the
    shards must be the only concurrent users of those tids. [batch] is
    the maximum SET operations per batch window (1 = exactly the
    un-batched per-operation protocol). *)
val create :
  (module Dstruct.Set_intf.SET with type t = 'a) ->
  'a ->
  shards:int ->
  batch:int ->
  ring_capacity:int ->
  t

(** Spawn the shard domains. *)
val start : t -> unit

(** Stop and join the shards. Requests still in flight are answered
    ({!reply_rejected}) before the shards exit, so concurrent awaiters
    terminate; submissions racing past [stop] may remain unanswered —
    stop clients first. *)
val stop : t -> unit

val shards : t -> int
val batch : t -> int

(** {2 Client side (any domain)} *)

(** The shard owning [key]. *)
val shard_of_key : t -> int -> int

(** Submit to a shard's ring: ticket [>= 0], or [-1] if the ring is
    full. Route with {!shard_of_key} — a request for a key submitted to
    the wrong shard is answered, but breaks per-key serialization. *)
val try_submit : t -> shard:int -> op:int -> key:int -> value:int -> int

(** Reply code [>= 0], or [-1] while pending (frees the slot when it
    answers; poll each ticket to completion exactly once). *)
val poll : t -> shard:int -> ticket:int -> int

(** Blocking {!poll} (spin-then-sleep). *)
val await : t -> shard:int -> ticket:int -> int

(** {2 Post-run statistics} (read after {!stop}) *)

type stats = {
  ops : int; (* SET operations executed inside batch windows *)
  batches : int; (* batch windows opened *)
  max_batch : int; (* most operations any single window served *)
  rejected : int;
  oom : int;
  crashed_shards : int;
}

val stats : t -> stats
