(** Tunable SMR parameters, shared by every scheme.

    Defaults follow the paper's evaluation (§6): reclamation is attempted
    every 30 retire calls; global epoch counters advance once every
    [150 × T] allocations (or unlinks, for MP); the margin is 2^20; MP
    indices span a 32-bit range. *)

(** How MP assigns a new node's index inside the final search interval
    (lb, ub). The paper uses the midpoint and notes "other policies are
    possible; we leave exploring them to future work" (§4.1) — the
    alternatives here are that exploration (see the ablation benchmark). *)
type index_policy =
  | Midpoint  (** (lb + ub) / 2 — the paper's policy *)
  | Golden
      (** lb + 0.382·(ub − lb): asymmetric split leaving more room above,
          trading balance for extra headroom under ascending insertions *)
  | Randomized  (** uniform in (lb, ub): robust to adversarial key orders *)

type t = {
  slots : int;
      (** PPV slots per thread (hazard pointers and margin pointers share
          refnos, as in Listing 10). The client data structure dictates how
          many it needs. *)
  empty_freq : int;  (** retire calls between reclamation attempts *)
  epoch_freq : int;  (** allocations/unlinks between global-epoch advances *)
  margin : int;  (** width of the interval protected by one margin pointer *)
  max_index : int;  (** largest assignable MP index *)
  index_policy : index_policy;
  max_arenas : int;
      (** Arena growth bound for the elastic mempool: the pool may attach
          up to this many [capacity]-slot arenas under allocation
          pressure. 1 (the default) keeps the pool fixed-size. *)
}

(** USE_HP sentinel index: nodes stamped with it must be protected by
    hazard pointers, never margin pointers (paper §4.3.2). *)
let use_hp = 0xFFFF_FFFF

(** Indices of the head/minimum sentinel and the largest index that still
    packs to an idx16 below the USE_HP range (so protecting the maximum
    sentinel does not force the HP fallback). *)
let min_sentinel_index = 0

let max_sentinel_index = 0xFFFE_FFFF

let default ~threads =
  {
    slots = 8;
    empty_freq = 30;
    epoch_freq = 150 * threads;
    margin = 1 lsl 20;
    max_index = max_sentinel_index;
    index_policy = Midpoint;
    max_arenas = 1;
  }

let with_slots t slots = { t with slots }
let with_index_policy t index_policy = { t with index_policy }
let with_margin t margin = { t with margin }
let with_empty_freq t empty_freq = { t with empty_freq }
let with_epoch_freq t epoch_freq = { t with epoch_freq }
let with_max_arenas t max_arenas = { t with max_arenas }

let validate t =
  if t.slots <= 0 then invalid_arg "Config: slots must be positive";
  if t.max_arenas < 1 then invalid_arg "Config: max_arenas must be >= 1";
  if t.empty_freq <= 0 then invalid_arg "Config: empty_freq must be positive";
  if t.epoch_freq <= 0 then invalid_arg "Config: epoch_freq must be positive";
  if t.margin < 1 lsl Handle.precision then
    invalid_arg "Config: margin must be at least 2^16 (one idx16 precision range)";
  if t.max_index >= use_hp then invalid_arg "Config: max_index must be below USE_HP";
  t
