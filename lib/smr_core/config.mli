(** Tunable SMR parameters shared by every scheme (paper §6 defaults). *)

(** How MP assigns a new node's index inside the final search interval —
    the paper's midpoint policy plus the "other policies" its §4.1 leaves
    to future work (explored by the ablation benchmark). *)
type index_policy =
  | Midpoint  (** (lb + ub) / 2 — the paper's policy *)
  | Golden  (** asymmetric 38/62 split leaving more room above *)
  | Randomized  (** uniform in (lb, ub) *)

type t = {
  slots : int;  (** PPV slots per thread (set by the client structure) *)
  empty_freq : int;  (** retire calls between reclamation attempts *)
  epoch_freq : int;  (** allocations/unlinks between global-epoch advances *)
  margin : int;  (** width of the interval one margin pointer protects *)
  max_index : int;  (** largest assignable MP index *)
  index_policy : index_policy;
  max_arenas : int;
      (** elastic-mempool growth bound (1 = fixed-size, the default) *)
}

(** The reserved index marking nodes that must be hazard-pointer
    protected (§4.3.2). *)
val use_hp : int

(** Canonical sentinel indices: 0 for the minimum sentinel, and the
    largest index whose idx16 stays below the USE_HP range. *)
val min_sentinel_index : int

val max_sentinel_index : int

(** Paper defaults: empty_freq 30, epoch_freq [150 × threads],
    margin [2^20], 8 slots. *)
val default : threads:int -> t

val with_slots : t -> int -> t
val with_index_policy : t -> index_policy -> t
val with_margin : t -> int -> t
val with_empty_freq : t -> int -> t
val with_epoch_freq : t -> int -> t
val with_max_arenas : t -> int -> t

(** Checks invariants (margin >= 2^16, positive frequencies, ...);
    raises [Invalid_argument] otherwise. *)
val validate : t -> t
