(** Striped run-time counters shared by all scheme implementations. *)

module Sc = Mp_util.Striped_counter

type t = {
  wasted : Sc.t;
  fences : Sc.t;
  reclaimed : Sc.t;
  retired_total : Sc.t;
  hp_fallbacks : Sc.t;
  scan_passes : Sc.t;
  scan_time_ns : Sc.t;
}

let create ~threads =
  {
    wasted = Sc.create ~threads;
    fences = Sc.create ~threads;
    reclaimed = Sc.create ~threads;
    retired_total = Sc.create ~threads;
    hp_fallbacks = Sc.create ~threads;
    scan_passes = Sc.create ~threads;
    scan_time_ns = Sc.create ~threads;
  }

let stats t : Smr_intf.stats =
  {
    wasted = Sc.sum t.wasted;
    fences = Sc.sum t.fences;
    reclaimed = Sc.sum t.reclaimed;
    retired_total = Sc.sum t.retired_total;
    hp_fallbacks = Sc.sum t.hp_fallbacks;
    scan_passes = Sc.sum t.scan_passes;
    scan_time_s = float_of_int (Sc.sum t.scan_time_ns) *. 1e-9;
  }

let on_retire t ~tid =
  Sc.incr t.wasted ~tid;
  Sc.incr t.retired_total ~tid

let on_reclaim t ~tid n =
  Sc.add t.wasted ~tid (-n);
  Sc.add t.reclaimed ~tid n

let on_fence t ~tid = Sc.incr t.fences ~tid

let on_scan t ~tid ~ns =
  Sc.incr t.scan_passes ~tid;
  Sc.add t.scan_time_ns ~tid ns
