(** Striped run-time counters shared by all scheme implementations.

    Stripes are {!Mp_util.Striped_counter}s: cache-line isolated atomic
    cells, so the harness's 2 ms sampler can call {!stats} concurrently
    with writers without false-sharing their increments or reading torn
    values. Wasted memory is derived ([retired_total - reclaimed]) rather
    than kept as its own stripe — one fewer atomic RMW on both the retire
    and reclaim hot paths, and the difference of two atomic sums is just
    as well-defined for the sampler. *)

module Sc = Mp_util.Striped_counter

type t = {
  fences : Sc.t;
  reclaimed : Sc.t;
  retired_total : Sc.t;
  hp_fallbacks : Sc.t;
  scan_passes : Sc.t;
  scan_time_ns : Sc.t;
  wasted_peak : Sc.t;
      (* per-thread high-water mark of (retired - reclaimed). Retire and
         reclaim both run on the owning thread (the Reclaimer is
         per-thread), so the per-tid difference is exact; the summed
         peak is a conservative upper bound on the true global peak
         (threads need not peak simultaneously), which is the right
         direction for a waste *ceiling* check. *)
}

let create ~threads =
  {
    fences = Sc.create ~threads;
    reclaimed = Sc.create ~threads;
    retired_total = Sc.create ~threads;
    hp_fallbacks = Sc.create ~threads;
    scan_passes = Sc.create ~threads;
    scan_time_ns = Sc.create ~threads;
    wasted_peak = Sc.create ~threads;
  }

let stats t : Smr_intf.stats =
  let retired_total = Sc.sum t.retired_total in
  let reclaimed = Sc.sum t.reclaimed in
  {
    wasted = retired_total - reclaimed;
    wasted_peak = Sc.sum t.wasted_peak;
    fences = Sc.sum t.fences;
    reclaimed;
    retired_total;
    hp_fallbacks = Sc.sum t.hp_fallbacks;
    scan_passes = Sc.sum t.scan_passes;
    scan_time_s = float_of_int (Sc.sum t.scan_time_ns) *. 1e-9;
  }

(* The peak can only rise on a retire, so this is the one place the
   high-water mark needs updating — the reclaim path stays a single
   atomic add. *)
let on_retire t ~tid =
  Sc.incr t.retired_total ~tid;
  let wasted_here = Sc.get t.retired_total ~tid - Sc.get t.reclaimed ~tid in
  Sc.max_to t.wasted_peak ~tid wasted_here
let on_reclaim t ~tid n = Sc.add t.reclaimed ~tid n
let on_fence t ~tid = Sc.incr t.fences ~tid

let on_scan t ~tid ~ns =
  Sc.incr t.scan_passes ~tid;
  Sc.add t.scan_time_ns ~tid ns
