(** Striped run-time counters shared by all scheme implementations.
    Cache-line isolated atomic stripes; wasted memory is derived as
    [retired_total - reclaimed] in {!stats}. *)

type t = {
  fences : Mp_util.Striped_counter.t;
  reclaimed : Mp_util.Striped_counter.t;
  retired_total : Mp_util.Striped_counter.t;
  hp_fallbacks : Mp_util.Striped_counter.t;
  scan_passes : Mp_util.Striped_counter.t;
  scan_time_ns : Mp_util.Striped_counter.t;
  wasted_peak : Mp_util.Striped_counter.t;
}

val create : threads:int -> t
val stats : t -> Smr_intf.stats
val on_retire : t -> tid:int -> unit
val on_reclaim : t -> tid:int -> int -> unit
val on_fence : t -> tid:int -> unit

(** Account one reclamation pass that took [ns] nanoseconds. *)
val on_scan : t -> tid:int -> ns:int -> unit
