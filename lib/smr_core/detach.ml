(** SMR-gated arena detach barrier.

    A draining arena (see {!Mempool.Core.request_shrink}) may only be
    unmapped once no reservation — hazard/hazard-era slot, IBR/EBR epoch,
    MP margin — can still reach a node inside it. Rather than inventing a
    second safety protocol, each scheme polls this barrier at the end of
    its scan ([empty]), reusing the reservation snapshot it just took:

    - [stamp ()] is called exactly once per drain, the first time a scan
      observes the arena fully parked ({!Mempool.Core.detach_ready}). For
      epoch-based schemes it reads (and typically advances past) the
      current global epoch, opening the grace period; validation-based
      schemes need no grace period and stamp a constant.
    - [quiescent ~base ~size ~stamp] decides, from the scheme's own scan
      state, whether any reservation could still cover a slot in
      [[base, base + size)]. When it returns true the detach completes.

    Why scan-time evidence suffices: a drain only reaches the fully-parked
    state after every slot of the arena was freed, and the structures
    unlink a node before retiring it, so by stamp time no live node links
    into the arena. Parked slots are never re-allocated, so no *new* path
    into the arena can form afterwards. For validating schemes (HP/HE/MP)
    any reader that still holds a stale handle fails its post-protect
    validation — the snapshot check is only needed for readers caught
    mid-protect. For epoch schemes, a reader announcing an epoch above the
    stamp started after every unlink, hence cannot find an arena node; the
    quiescence condition [min announced > stamp] therefore bounds the last
    possible reacher. Crashed threads hold their announcement until
    recovery adoption clears it, stalling (never unsafely completing) the
    detach — exactly the behavior the crash soak exercises. *)

(** Poll the barrier for [pool]. Cheap no-op unless a drain has reached
    the fully-parked state. Call at the end of a scan, while the scan's
    snapshot is still valid (both closures are only invoked on the cold
    detach path). *)
let poll pool ~(stamp : unit -> int) ~(quiescent : base:int -> size:int -> stamp:int -> bool)
    =
  match Mempool.Core.detach_ready pool with
  | None -> ()
  | Some (token, base, size) ->
    (* The token captured with the full-park observation flows through
       the stamp and the completion CAS, so a poller that stalls across
       a cancel + re-drain of the same arena cannot pair its verdict
       with the wrong drain: the stamp read here belongs to this token
       or reads unset, and a stale token fails [complete_detach]. *)
    let s = Mempool.Core.detach_stamp pool ~token in
    if s < 0 then Mempool.Core.set_detach_stamp pool ~token (stamp ())
    else if quiescent ~base ~size ~stamp:s then
      ignore (Mempool.Core.complete_detach pool token : bool)
