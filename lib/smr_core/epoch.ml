(** Global epoch clock with per-thread announcements.

    Used by EBR, HE, IBR and by MP's hazard-era style collision filter. A
    thread that is not inside an operation announces {!inactive}, which
    compares greater than every real epoch, so scans can treat idle threads
    as unable to hold references. *)

(** Announcement of an idle thread. *)
let inactive = max_int

type t = {
  global : int Atomic.t;
  announce : int Atomic.t array;
}

let create ~threads =
  { global = Atomic.make 1; announce = Array.init threads (fun _ -> Atomic.make inactive) }

let[@inline] current t = Atomic.get t.global

(** Fenceless read of the clock, for {e heuristic} consumers only. The
    clock is monotonic, so a stale read returns a smaller value — fine
    wherever the caller only uses the epoch as a lower-bound hint and
    clamps it against an SC-read bound (IBR's endpoint stretch). Reads
    that a safety argument depends on (validation loops, the epoch
    filter, MP's fast-path re-check) must use {!current}. *)
let[@inline] current_relaxed t = Mp_util.Relaxed.get t.global

(** Advance the global epoch by one (racing advances may skip values;
    monotonicity is all that matters). *)
let advance t = Atomic.incr t.global

(** Announce that thread [tid] is operating in the current epoch; returns
    the epoch announced. Includes the publication fence. *)
let announce t ~tid =
  let e = Atomic.get t.global in
  Atomic.set t.announce.(tid) e;
  e

let[@inline] announced t ~tid = Atomic.get t.announce.(tid)

(** Mark thread [tid] idle. *)
let retire_announcement t ~tid = Atomic.set t.announce.(tid) inactive

(** Fill [buf.(tid)] with every thread's announced epoch ({!inactive}
    for idle threads) — the epoch snapshot a reclamation pass pairs with
    its slot snapshot. *)
let snapshot_announced t buf =
  for tid = 0 to Array.length t.announce - 1 do
    buf.(tid) <- Atomic.get t.announce.(tid)
  done

(** Smallest epoch announced by any active thread ({!inactive} if all are
    idle). Reclamation may release anything strictly older. *)
let min_announced t =
  Array.fold_left (fun acc a -> min acc (Atomic.get a)) inactive t.announce
