(** Global epoch clock with per-thread announcements (EBR/HE/IBR/MP). *)

type t = {
  global : int Atomic.t;
  announce : int Atomic.t array;
}

(** Announcement value of an idle thread (compares above all epochs). *)
val inactive : int

val create : threads:int -> t
val current : t -> int

(** Fenceless read of the clock, for heuristic consumers only: the clock
    is monotonic, so a stale read is merely a smaller value. Use only
    where the result is clamped against an SC-read bound (IBR's endpoint
    stretch); safety-bearing reads must use {!current}. *)
val current_relaxed : t -> int
val advance : t -> unit

(** Announce the current epoch for [tid] (includes the publication
    fence); returns the epoch announced. *)
val announce : t -> tid:int -> int

val announced : t -> tid:int -> int
val retire_announcement : t -> tid:int -> unit

(** Fill [buf.(tid)] with each thread's announced epoch ([inactive] for
    idle threads); [buf] must have at least [threads] entries. *)
val snapshot_announced : t -> int array -> unit

(** Smallest epoch announced by any active thread. *)
val min_announced : t -> int
