(** Per-thread retire-side driver — the private half of the
    reservation/reclamation kernel.

    Owns the thread's {!Retired} list and the scan trigger. A scan
    ([empty] in the paper) costs O(slots·threads) to snapshot the
    announcement table plus O(|retired|) to filter, so the kernel runs
    one only when at least {!scan_threshold} retires have accumulated:
    [max (empty_freq, slots·threads + 2·threads)]. Since at most
    [slots·threads] nodes can be announcement-protected at once, each
    pass frees at least the Ω(threads) surplus, making scan work
    amortized O(1) per retire while wasted memory stays within the same
    class each scheme certifies (the bound grows only by the constant
    batch slack). Scans are timed and counted into
    {!Counters}/{!Smr_intf.stats} ([scan_passes], [scan_time_s]). *)

type t = {
  pool : Mempool.Core.t;
  counters : Counters.t;
  tid : int;
  retired : Retired.t;
  threshold : int;
  mutable since_scan : int; (* retires since the last scan *)
}

(** The amortization threshold: never scan more often than every
    [empty_freq] retires, nor before the batch exceeds the table
    capacity ([slots·threads], the most nodes announcements can
    protect) by a Ω(threads) margin that a pass is guaranteed to free. *)
let scan_threshold ~empty_freq ~slots ~threads =
  max empty_freq ((slots * threads) + (2 * threads))

let create ~pool ~counters ~tid ~threshold =
  { pool; counters; tid; retired = Retired.create (); threshold; since_scan = 0 }

let pending t = Retired.length t.retired

(** Hand a node to the reclaimer: poison it, queue it, count it. The
    caller stamps any death metadata (epoch schemes) before or after —
    this call never scans. *)
let retire t id =
  Mp_util.Fault.hit ~tid:t.tid Mp_util.Fault.Reclaimer_retire;
  Mempool.Core.mark_retired t.pool id;
  Retired.push t.retired id;
  Counters.on_retire t.counters ~tid:t.tid;
  t.since_scan <- t.since_scan + 1

(** True once the batch since the last scan reached the threshold. *)
let scan_due t = t.since_scan >= t.threshold

(** Run a reclamation pass now: drop every retired node [keep] rejects
    back into the pool, reset the batch counter, and account the pass
    ([scan_passes], [scan_time_s], [reclaimed], [wasted]). *)
let scan t ~keep =
  Mp_util.Fault.hit ~tid:t.tid Mp_util.Fault.Reclaimer_scan;
  t.since_scan <- 0;
  let t0 = Unix.gettimeofday () in
  let released =
    Retired.filter_in_place t.retired ~keep ~release:(fun id ->
        Mempool.Core.free t.pool ~tid:t.tid id)
  in
  Counters.on_reclaim t.counters ~tid:t.tid released;
  let ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  Counters.on_scan t.counters ~tid:t.tid ~ns
