(** Per-thread retire-side driver: owns the retired list, batches
    retires, and triggers amortized reclamation scans. Schemes keep only
    the [keep] predicate they pass to {!scan}. *)

type t

(** [max (empty_freq, slots·threads + 2·threads)]: scan no more often
    than the configured frequency, and never before the batch exceeds
    the announcement-table capacity by a Ω(threads) slack a pass must
    free — amortized O(1) scan work per retire. *)
val scan_threshold : empty_freq:int -> slots:int -> threads:int -> int

val create : pool:Mempool.Core.t -> counters:Counters.t -> tid:int -> threshold:int -> t

(** Nodes currently awaiting reclamation on this thread. *)
val pending : t -> int

(** Queue a retired node (marks it retired in the pool and counts it).
    Never scans; callers check {!scan_due} afterwards. *)
val retire : t -> int -> unit

(** True once retires since the last scan reached the threshold. *)
val scan_due : t -> bool

(** Run a pass now (also used by [flush]): frees every queued node
    [keep] rejects, resets the batch, counts the pass and its wall-clock
    time into the scheme's stats. *)
val scan : t -> keep:(int -> bool) -> unit
