(** Per-thread announcement-slot table — the shared half of the
    reservation/reclamation kernel.

    Every scheme in the paper's protect/retire/scan family announces
    *something* in a per-thread slot before touching shared memory: HP
    announces node ids, HE announces eras, IBR announces an epoch
    interval, MP announces key indices (plus node ids on its HP
    fallback). This module owns that table and the snapshotting a
    reclamation pass needs, so a scheme is reduced to its announce /
    validate policy.

    Fence accounting is folded in: {!publish} counts one publication
    fence and {!clear_all} counts one for the whole batch (the paper's
    §6 "optimized" accounting for end-of-operation clearing). {!set}
    and {!clear} are silent so schemes that batch several slot writes
    under a single fence (IBR's interval endpoints, MP's end_op) can
    keep their exact fence counts.

    The snapshot buffers are owned by the caller and reused across
    passes, so a reclamation scan allocates nothing once warm; sorted
    membership tests are binary search with [Int] comparisons — no
    polymorphic [compare] on the hot path. *)

type t = {
  counters : Counters.t;
  table : int Atomic.t array array; (* [tid].[refno] *)
  empty : int; (* sentinel for an unoccupied slot *)
  slots : int;
  threads : int;
  in_batch : bool array;
      (* [tid]: inside a batch window, end-of-operation {!clear_all} is
         deferred until {!batch_exit}. Owner-written plain cells: only
         tid itself reads or writes its flag, so no atomicity needed;
         spacing is unnecessary because the cells are written once per
         batch, not per op. *)
  quarantined : bool array;
      (* [tid]: fenced off by {!quarantine} after its owning domain died;
         the row is cleared and must not be republished until {!adopt}
         hands the tid back. Written only by the (single) supervisor, so
         plain cells suffice; the asserts in {!publish}/{!batch_enter}
         are the debug-build tripwire against a zombie owner. *)
}

let create ~counters ~threads ~slots ~empty =
  {
    counters;
    table = Array.init threads (fun _ -> Array.init slots (fun _ -> Atomic.make empty));
    empty;
    slots;
    threads;
    in_batch = Array.make threads false;
    quarantined = Array.make threads false;
  }

let threads t = t.threads
let slots_per_thread t = t.slots
let capacity t = t.threads * t.slots

(* Hot read paths hoist the slot atomic once per protection loop instead
   of re-indexing the table on every iteration. *)
let[@inline] slot t ~tid ~refno = t.table.(tid).(refno)
let[@inline] get t ~tid ~refno = Atomic.get t.table.(tid).(refno)

(** Plain slot write, no fence counted (for multi-slot updates that the
    scheme accounts as one fence). *)
let[@inline] set t ~tid ~refno v = Atomic.set t.table.(tid).(refno) v

(** Publish an announcement: one slot write, one publication fence. The
    fault point fires {e after} the write, inside the window where the
    announcement is visible but not yet validated — a crash here leaves
    the slot published forever. *)
let publish t ~tid ~refno v =
  assert (not t.quarantined.(tid));
  Atomic.set t.table.(tid).(refno) v;
  Counters.on_fence t.counters ~tid;
  Mp_util.Fault.hit ~tid Mp_util.Fault.Reservation_publish

let clear t ~tid ~refno =
  Mp_util.Fault.hit ~tid Mp_util.Fault.Reservation_clear;
  Atomic.set t.table.(tid).(refno) t.empty

(** Clear every occupied slot of [tid]; the batch costs one fence. The
    fault point fires before any slot is cleared, so a crash leaves the
    whole row published. Inside a batch window ({!batch_enter}) this is
    a no-op — the row stays published until {!batch_exit}, which is what
    lets a shard pay one publish + one clear fence per B operations. *)
let clear_all t ~tid =
  if not t.in_batch.(tid) then begin
    Mp_util.Fault.hit ~tid Mp_util.Fault.Reservation_clear;
    let mine = t.table.(tid) in
    for refno = 0 to t.slots - 1 do
      if Atomic.get mine.(refno) <> t.empty then Atomic.set mine.(refno) t.empty
    done;
    Counters.on_fence t.counters ~tid
  end

(* -- batch windows ------------------------------------------------------- *)

let[@inline] in_batch t ~tid = t.in_batch.(tid)

(** Open a batch window for [tid]: subsequent {!clear_all} calls (the
    end-of-operation path of HP/HE-class schemes) are suppressed, so
    announcements accumulate and stay published across every operation
    of the batch. The protected window widens accordingly — see
    DESIGN.md "Service layer and batch amortization" for the per-class
    waste-bound argument. A batch of size 1 costs exactly the un-batched
    protocol: the same publishes, and the one deferred clear happens in
    {!batch_exit}. *)
let batch_enter t ~tid =
  assert (not t.quarantined.(tid));
  t.in_batch.(tid) <- true

(** Close [tid]'s batch window and perform the single deferred
    {!clear_all} — one fence for the whole batch. *)
let batch_exit t ~tid =
  t.in_batch.(tid) <- false;
  clear_all t ~tid

(* -- crash recovery: the second reservation lifecycle -------------------- *)

(** Fence off a dead [tid]'s row: force the batch window shut (the owner
    died without running {!batch_exit}, so the deferred-clear suppression
    must not outlive it), clear every slot, and mark the tid quarantined
    so {!publish}/{!batch_enter} trip an assert until {!adopt}.

    Safety precondition (the caller's obligation, typically a service
    supervisor): the domain that owned [tid] has terminated and been
    joined. The join gives the happens-before edge that makes this
    sequential hand-off an instance of the interface's "each tid used by
    at most one domain at a time" rule — the supervisor is simply the
    tid's next (briefly) owning domain. Concurrent scanners see the row
    empty out exactly as if the dead thread had cleared it itself, which
    is always safe: clearing only ever unpins. One fence, charged to the
    dead tid — the §4.4 "wasted memory is bounded" argument pays one
    publication fence to stop paying the bound forever. *)
let quarantine t ~tid =
  assert (not t.quarantined.(tid));
  t.quarantined.(tid) <- true;
  t.in_batch.(tid) <- false;
  let mine = t.table.(tid) in
  for refno = 0 to t.slots - 1 do
    if Atomic.get mine.(refno) <> t.empty then Atomic.set mine.(refno) t.empty
  done;
  Counters.on_fence t.counters ~tid

(** Lift [tid]'s quarantine, handing the (now-unpinned) row to its next
    owner. The row is already clear — {!quarantine} did that — so this is
    pure bookkeeping; it exists as a separate step so the window between
    fencing and reuse is explicit and assertable. *)
let adopt t ~tid =
  assert (t.quarantined.(tid));
  t.quarantined.(tid) <- false

let[@inline] quarantined t ~tid = t.quarantined.(tid)

(** Tids with at least one occupied slot — the threads whose (possibly
    stalled or dead) announcements are currently pinning memory. *)
let occupied_tids t =
  let rec occupied row refno =
    refno < t.slots && (Atomic.get row.(refno) <> t.empty || occupied row (refno + 1))
  in
  List.filter (fun tid -> occupied t.table.(tid) 0) (List.init t.threads Fun.id)

(* -- snapshots ----------------------------------------------------------- *)

type snapshot = {
  mutable vals : int array;
  mutable owners : int array;
  mutable len : int;
}

let snapshot_create () = { vals = [||]; owners = [||]; len = 0 }

let ensure t snap =
  let cap = capacity t in
  if Array.length snap.vals < cap then begin
    snap.vals <- Array.make cap t.empty;
    snap.owners <- Array.make cap 0
  end

(** Fill [snap] with every occupied slot's value, paired with the owning
    tid in [owners]. Order is table order. *)
let snapshot t snap =
  ensure t snap;
  let k = ref 0 in
  for tid = 0 to t.threads - 1 do
    let row = t.table.(tid) in
    for refno = 0 to t.slots - 1 do
      let v = Atomic.get row.(refno) in
      if v <> t.empty then begin
        snap.vals.(!k) <- v;
        snap.owners.(!k) <- tid;
        incr k
      end
    done
  done;
  snap.len <- !k

(** Fill [snap] with {e every} slot value — sentinels included — in flat
    [(tid * slots) + refno] position order, so a scheme whose scan wants
    per-thread values (IBR's interval endpoints) can index by tid. *)
let snapshot_flat t snap =
  ensure t snap;
  let k = ref 0 in
  for tid = 0 to t.threads - 1 do
    let row = t.table.(tid) in
    for refno = 0 to t.slots - 1 do
      snap.vals.(!k) <- Atomic.get row.(refno);
      snap.owners.(!k) <- tid;
      incr k
    done
  done;
  snap.len <- !k

(** Sort the snapshot values with [Int.compare] so membership queries are
    binary search. Allocation-free: the buffer's unused tail is padded
    with [max_int] and the whole array heap-sorted in place (announced
    values must therefore be below [max_int]; node ids, eras and indices
    all are). Invalidates [owners]. *)
let sort snap =
  Array.fill snap.vals snap.len (Array.length snap.vals - snap.len) max_int;
  Array.sort Int.compare snap.vals

(* First position in the sorted prefix holding a value >= [v]
   ([snap.len] if none). *)
let lower_bound snap v =
  let lo = ref 0 and hi = ref snap.len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if snap.vals.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

(** Sorted membership: is [v] announced in the snapshot? *)
let mem snap v =
  let i = lower_bound snap v in
  i < snap.len && snap.vals.(i) = v

(** Sorted range query: does the snapshot hold any value in
    [\[lo, hi\]]? (HE: "does any published era fall inside the node's
    birth–death interval?") *)
let exists_in_range snap ~lo ~hi =
  let i = lower_bound snap lo in
  i < snap.len && snap.vals.(i) <= hi
