(** Per-thread announcement-slot table shared by every SMR scheme: HP
    announces node ids, HE eras, IBR interval endpoints, MP key indices
    (and node ids on its HP fallback). Owns the slots and the reusable
    snapshot buffers a reclamation pass reads, so scheme modules keep
    only their announce/validate policy. *)

type t

(** [create ~counters ~threads ~slots ~empty] builds a [threads × slots]
    table with every slot holding the sentinel [empty]. Fences issued by
    {!publish}/{!clear_all} are charged to [counters]. *)
val create : counters:Counters.t -> threads:int -> slots:int -> empty:int -> t

val threads : t -> int
val slots_per_thread : t -> int

(** Total slot count ([threads × slots]) — the snapshot capacity. *)
val capacity : t -> int

(** The raw slot atomic, for protection loops that hoist it once. *)
val slot : t -> tid:int -> refno:int -> int Atomic.t

val get : t -> tid:int -> refno:int -> int

(** Plain slot write, {e no} fence counted — for multi-slot updates the
    scheme accounts as a single fence. *)
val set : t -> tid:int -> refno:int -> int -> unit

(** Announce a value: slot write plus one counted publication fence. *)
val publish : t -> tid:int -> refno:int -> int -> unit

(** Reset one slot to the sentinel (uncounted, like HP's unprotect). *)
val clear : t -> tid:int -> refno:int -> unit

(** Clear all of [tid]'s occupied slots, counted as one batched fence
    (the paper's §6 end-of-operation accounting). No-op while [tid] is
    inside a {!batch_enter} window — the clear is deferred to
    {!batch_exit}. *)
val clear_all : t -> tid:int -> unit

(** Open a batch window for [tid]: {!clear_all} is suppressed until
    {!batch_exit}, so announcements persist across the operations of a
    batch and the end-of-operation clear fence is paid once per batch
    instead of once per op. Widens the protected window to the whole
    batch; a batch of size 1 costs exactly the un-batched protocol. *)
val batch_enter : t -> tid:int -> unit

(** Close the window and perform the single deferred {!clear_all}. *)
val batch_exit : t -> tid:int -> unit

(** Is [tid] currently inside a batch window? *)
val in_batch : t -> tid:int -> bool

(** {2 Crash recovery}

    The second reservation lifecycle: when the domain owning a tid dies
    mid-operation its announcements stay published and pin memory
    (paper §4.4). A supervisor that has {e joined} the dead domain may
    {!quarantine} the tid — forcing its batch window shut and clearing
    every slot, which releases everything only that tid pinned — and
    later {!adopt} it, handing the row to a replacement domain. The
    join is the safety precondition: it serializes the hand-off, so the
    "each tid used by at most one domain at a time" rule is preserved. *)

(** Fence off a dead [tid]: close its batch window, clear its row (one
    counted fence), and block {!publish}/{!batch_enter} (debug asserts)
    until {!adopt}. Caller must have joined the owning domain. *)
val quarantine : t -> tid:int -> unit

(** Lift the quarantine set by {!quarantine}; the tid is reusable. *)
val adopt : t -> tid:int -> unit

val quarantined : t -> tid:int -> bool

(** Tids with at least one occupied slot — the threads whose (possibly
    stalled or dead) announcements are currently pinning memory. *)
val occupied_tids : t -> int list

(** A reusable scan buffer. [vals]/[owners]/[len] are readable by scheme
    scan predicates; only this module mutates them. After {!sort},
    [owners] is meaningless. *)
type snapshot = private {
  mutable vals : int array;
  mutable owners : int array;
  mutable len : int;
}

val snapshot_create : unit -> snapshot

(** Fill [snap] with every occupied slot (sentinels filtered out),
    pairing each value with its owner tid. Grows the buffer on first
    use; allocation-free thereafter. *)
val snapshot : t -> snapshot -> unit

(** Fill [snap] with every slot value — sentinels included — in flat
    [(tid × slots) + refno] order, for scans indexed by thread. *)
val snapshot_flat : t -> snapshot -> unit

(** In-place [Int.compare] sort of the snapshot (no polymorphic compare,
    no allocation); enables {!mem}/{!exists_in_range}. Announced values
    must be below [max_int]. Invalidates [owners]. *)
val sort : snapshot -> unit

(** Binary-search membership in a sorted snapshot. *)
val mem : snapshot -> int -> bool

(** Does a sorted snapshot hold any value in [\[lo, hi\]]? *)
val exists_in_range : snapshot -> lo:int -> hi:int -> bool
