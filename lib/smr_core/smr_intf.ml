(** The SMR interface (paper Listing 1, plus MP's optional extensions).

    Client data structures are functors over {!S}; any scheme plugs into
    any structure. Schemes that ignore an extension implement it as a
    no-op, which is precisely how the paper makes MP a drop-in replacement
    for HP ("without which it falls back to HP"). *)

(** Qualitative properties, for reproducing Table 1. *)
type wasted_memory_class =
  | Bounded  (** predetermined bound, independent of scheduling *)
  | Robust  (** no unbounded growth, but bound depends on history *)
  | Unbounded

type properties = {
  full_name : string;
  wasted_memory : wasted_memory_class;
  per_node_words : int;  (** metadata words piggybacked on each node *)
  self_contained : bool;
  needs_per_reference_calls : bool;
}

(** Run-time counters every scheme exposes; the harness samples these. *)
type stats = {
  wasted : int;  (** retired but unreclaimed nodes, summed over threads *)
  wasted_peak : int;
      (** high-water mark of wasted memory, maintained on the retire path
          itself so peaks between sampler ticks are visible. Summed over
          per-thread peaks, so it is a conservative (never-under) bound on
          the true global peak. *)
  fences : int;  (** publication fences issued (PPV/era announcements) *)
  reclaimed : int;  (** nodes returned to the pool *)
  retired_total : int;
  hp_fallbacks : int;  (** MP only: reads served through the HP path *)
  scan_passes : int;  (** reclamation passes ([empty]) executed *)
  scan_time_s : float;  (** total wall-clock seconds spent in scans *)
}

module type S = sig
  type t
  type thread

  val name : string
  val properties : properties

  (** [create ~pool ~threads config] sets up scheme-global state. The pool
      provides per-node metadata words and the free routine. *)
  val create : pool:Mempool.Core.t -> threads:int -> Config.t -> t

  (** Per-thread handle; [tid] must be in [0, threads). Each tid must be
      used by at most one domain at a time. *)
  val thread : t -> tid:int -> thread

  val tid : thread -> int

  (** Bracket every data-structure operation. *)
  val start_op : thread -> unit

  val end_op : thread -> unit

  (** Open a batch window: the per-operation entry cost (epoch/era
      announcement, its fence) is paid here once, and the per-operation
      exit teardown (reservation [clear_all], epoch retirement) is
      deferred to {!batch_exit} — the [start_op]/[end_op] pairs inside
      the window keep every announcement alive. Used by the service
      layer to amortize the protocol over B requests. Protection is
      {e widened}, never narrowed: every handle protected by any
      operation of the batch stays protected until {!batch_exit}, so
      per-operation safety arguments carry over unchanged. A batch of
      size 1 performs exactly the un-batched protocol. Must not nest. *)
  val batch_enter : thread -> unit

  (** Close the batch window: one teardown (clear + fence + epoch
      retirement) covering every operation since {!batch_enter}. *)
  val batch_exit : thread -> unit

  (** Allocate a node slot; the scheme stamps MP index and birth epoch.
      The caller initializes the payload before linking. *)
  val alloc : thread -> int

  (** Allocation with a caller-chosen index, for sentinel nodes. *)
  val alloc_with_index : thread -> index:int -> int

  (** Hand a removed node to the scheme; it will be freed once proven
      unprotected. A node must be retired at most once, after unlinking. *)
  val retire : thread -> int -> unit

  (** [read th ~refno link] returns a protected snapshot of [link]. The
      returned handle (including client mark bits) was present in [link]
      at a moment when the protection was already visible, so the target
      node cannot be reclaimed while the protection stands. [refno]
      selects which of the thread's PPV slots to use (ignored by
      epoch-based schemes). *)
  val read : thread -> refno:int -> int Atomic.t -> Handle.t

  (** Drop the protection held by [refno] (no-op in most schemes; MP keeps
      margins alive until [end_op], as the paper specifies). *)
  val unprotect : thread -> refno:int -> unit

  (** MP extension: the insertion traversal reports the nodes bounding its
      shrinking search interval (paper Listing 5). No-ops elsewhere. *)
  val update_lower_bound : thread -> int -> unit

  val update_upper_bound : thread -> int -> unit

  (** Canonical unmarked handle for node [id]. *)
  val handle_of : thread -> int -> Handle.t

  (** Force a reclamation pass on this thread's retired list (tests and
      teardown; operations normally trigger it every [empty_freq]). *)
  val flush : thread -> unit

  (** Crash recovery: release every reservation a dead [tid] left
      published and drain what its last scan would have freed, making
      the tid safe to hand to a replacement domain.

      Precondition: the domain that owned [tid] has terminated {e and
      been joined} by the caller — the join serializes the hand-off, so
      the "each tid used by at most one domain at a time" rule holds
      with the caller as the tid's next owner. After [adopt] returns,
      nothing is pinned on [tid]'s behalf (scheme-specific: HP/HE clear
      the slot row, IBR both interval endpoints, EBR/MP the epoch
      announcement and, for MP, the margins and hazard mirrors) and a
      reclamation pass has run over [tid]'s retired backlog. Leftover
      entries pinned by {e other} live threads stay queued and are
      freed by later scans — adoption restores the scheme's declared
      waste class, it does not force immediate emptiness. No-op for
      schemes that hold no reservations (Leaky). *)
  val adopt : t -> tid:int -> unit

  val stats : t -> stats

  (** Tids currently holding a live reservation — published PPV slots,
      interval endpoints, or an active epoch announcement. After a run,
      a quiesced thread has cleared everything, so a non-empty answer
      names the stalled or crashed threads pinning wasted memory. *)
  val pinning_tids : t -> int list
end
