(** Deterministic, seeded fault injection for the SMR hot paths.

    The robustness theorems (paper §4.4) quantify over adversarial
    schedules: a thread may stall or die at *any* instruction while
    holding a reservation. Oversubscription and the harness's coarse
    op-boundary pause only ever exercise a few of those schedules, so
    this module plants named {e injection points} in the interior of the
    dangerous windows — between publishing a reservation and validating
    it, inside retire/scan, inside the pool's spill/refill — where a
    per-run {!plan} can fire a stall, a yield storm, or a permanent
    crash that leaves the thread's announcements published forever.

    Cost discipline: every point is {!hit}, which is one load-and-branch
    on {!val-enabled} when no plan is armed. Points sit on slow-ish
    paths (publication, refill, scan), never inside fence-free fast
    paths, so disarmed overhead is one predictable branch.

    The store is process-global because injection points live in code
    that has no handle to thread state beyond a [tid]. {!arm} must be
    called while the target domains are not yet running (the runner arms
    between populate and spawn) and {!disarm} after they joined. *)

(* -- injection points ----------------------------------------------------- *)

type point =
  | Reservation_publish  (** after a PPV slot write became visible *)
  | Reservation_clear  (** before announcement slots are cleared *)
  | Reclaimer_retire  (** entering [retire], before the node is queued *)
  | Reclaimer_scan  (** entering a reclamation pass *)
  | Mempool_refill  (** local magazines empty, before the global claim *)
  | Mempool_spill  (** before a full magazine spills to the global stack *)
  | Protect_validate
      (** the scheme-specific protect/validate window: between announcing
          protection (hazard, era, interval, margin or epoch) and
          validating / using it *)

let n_points = 7

let point_index = function
  | Reservation_publish -> 0
  | Reservation_clear -> 1
  | Reclaimer_retire -> 2
  | Reclaimer_scan -> 3
  | Mempool_refill -> 4
  | Mempool_spill -> 5
  | Protect_validate -> 6

let point_name = function
  | Reservation_publish -> "reservation_publish"
  | Reservation_clear -> "reservation_clear"
  | Reclaimer_retire -> "reclaimer_retire"
  | Reclaimer_scan -> "reclaimer_scan"
  | Mempool_refill -> "mempool_refill"
  | Mempool_spill -> "mempool_spill"
  | Protect_validate -> "protect_validate"

let all_points =
  [
    Reservation_publish;
    Reservation_clear;
    Reclaimer_retire;
    Reclaimer_scan;
    Mempool_refill;
    Mempool_spill;
    Protect_validate;
  ]

(* -- fault plans ----------------------------------------------------------- *)

type action =
  | Stall of float  (** sleep this many seconds inside the window *)
  | Yield_storm of int  (** spin [cpu_relax] this many times *)
  | Crash
      (** raise {!Crashed}: the thread unwinds out of its workload loop
          and never runs again, leaving every published reservation
          (slots, eras, intervals, epoch announcements) in place *)

type event = {
  point : point;
  tid : int;  (** the thread the event targets *)
  after_hits : int;  (** fire once the (point, tid) hit count reaches this *)
  every : int;  (** 0 = fire once; k > 0 = re-fire every k further hits *)
  action : action;
}

type plan = {
  label : string;
  events : event list;
}

let action_to_string = function
  | Stall s -> Printf.sprintf "stall(%gs)" s
  | Yield_storm n -> Printf.sprintf "yield_storm(%d)" n
  | Crash -> "crash"

let event_to_string e =
  Printf.sprintf "%s@%s tid=%d hits=%d%s" (action_to_string e.action) (point_name e.point) e.tid
    e.after_hits
    (if e.every > 0 then Printf.sprintf "+%d" e.every else "")

let plan_to_string p =
  Printf.sprintf "%s[%s]"
    (if p.label = "" then "plan" else p.label)
    (String.concat "; " (List.map event_to_string p.events))

let stall_event ~tid ~point ~after_hits ?(every = 0) ~pause () =
  { point; tid; after_hits; every; action = Stall pause }

let yield_event ~tid ~point ~after_hits ?(every = 0) ~spins () =
  { point; tid; after_hits; every; action = Yield_storm spins }

let crash_event ~tid ~point ~after_hits = { point; tid; after_hits; every = 0; action = Crash }

let plan ?(label = "") events = { label; events }

exception Crashed of int

(* -- armed state ----------------------------------------------------------- *)

type armed = {
  p : plan;
  threads : int;
  hits : int array;  (** flat (point × tid); only the owner tid writes its cells *)
  crashed : bool Atomic.t array;
  log_lock : Mutex.t;
  mutable log : (point * int * action) list;  (** most recent first *)
}

let state : armed option ref = ref None

(** The single hot-path flag: injection points branch on this and
    nothing else when no plan is armed. *)
let enabled = ref false

let arm ~threads p =
  state :=
    Some
      {
        p;
        threads;
        hits = Array.make (n_points * threads) 0;
        crashed = Array.init threads (fun _ -> Atomic.make false);
        log_lock = Mutex.create ();
        log = [];
      };
  enabled := true

let disarm () =
  enabled := false;
  state := None

let armed () = !enabled

let due ev h =
  if ev.every <= 0 then h = ev.after_hits
  else h >= ev.after_hits && (h - ev.after_hits) mod ev.every = 0

let fire st ~tid ev =
  Mutex.lock st.log_lock;
  st.log <- (ev.point, tid, ev.action) :: st.log;
  Mutex.unlock st.log_lock;
  match ev.action with
  | Stall s -> Unix.sleepf s
  | Yield_storm n ->
    for _ = 1 to n do
      Domain.cpu_relax ()
    done
  | Crash ->
    Atomic.set st.crashed.(tid) true;
    raise (Crashed tid)

let hit_armed ~tid point =
  match !state with
  | None -> ()
  | Some st ->
    if tid >= 0 && tid < st.threads && not (Atomic.get st.crashed.(tid)) then begin
      let idx = (point_index point * st.threads) + tid in
      let h = st.hits.(idx) + 1 in
      st.hits.(idx) <- h;
      List.iter
        (fun ev -> if ev.point == point && ev.tid = tid && due ev h then fire st ~tid ev)
        st.p.events
    end

(** The injection point. One branch when disarmed. *)
let[@inline] hit ~tid point = if !enabled then hit_armed ~tid point

(* -- post-mortem ----------------------------------------------------------- *)

let crashed ~tid =
  match !state with
  | Some st when tid >= 0 && tid < st.threads -> Atomic.get st.crashed.(tid)
  | _ -> false

(** Clear [tid]'s crashed flag so injection points fire for it again —
    called by a recovery supervisor after it adopted the tid's
    reservations and before handing the tid to a replacement domain.
    Without this a recovered tid would be immune to every later fault
    (the crashed flag suppresses hits), which would make multi-crash
    chaos plans silently one-shot. Hit counters are NOT reset: [every]-
    recurring events keep their cadence and one-shot events stay spent,
    so a plan means the same thing across incarnations. *)
let forgive ~tid =
  match !state with
  | Some st when tid >= 0 && tid < st.threads -> Atomic.set st.crashed.(tid) false
  | _ -> ()

let crashed_tids () =
  match !state with
  | None -> []
  | Some st ->
    List.filter (fun tid -> Atomic.get st.crashed.(tid)) (List.init st.threads Fun.id)

let fired () =
  match !state with
  | None -> []
  | Some st ->
    Mutex.lock st.log_lock;
    let l = List.rev st.log in
    Mutex.unlock st.log_lock;
    l

let hit_count ~tid point =
  match !state with
  | Some st when tid >= 0 && tid < st.threads -> st.hits.((point_index point * st.threads) + tid)
  | _ -> 0

(* -- random plans ----------------------------------------------------------- *)

(** Seeded random stall/crash mix, for the fault soak: 1–3 events over
    random points/threads. At most one crash per plan, and never on
    thread 0, so single-threaded callers and at least one worker always
    make progress. *)
let random_plan ~seed ~threads =
  let rng = Rng.create (seed * 0x9E3779B1) in
  let points = Array.of_list all_points in
  let pick_point () = points.(Rng.below rng (Array.length points)) in
  let n_events = 1 + Rng.below rng 3 in
  let crash_budget = ref 1 in
  let events =
    List.init n_events (fun _ ->
        let point = pick_point () in
        let tid = Rng.below rng threads in
        let after_hits = 1 + Rng.below rng 400 in
        match Rng.below rng 3 with
        | 0 when !crash_budget > 0 && tid > 0 ->
          decr crash_budget;
          crash_event ~tid ~point ~after_hits
        | 0 | 1 ->
          stall_event ~tid ~point ~after_hits ~every:(50 + Rng.below rng 400)
            ~pause:(0.0001 +. (Rng.float rng *. 0.002))
            ()
        | _ ->
          yield_event ~tid ~point ~after_hits ~every:(50 + Rng.below rng 400)
            ~spins:(100 + Rng.below rng 5000)
            ())
  in
  plan ~label:(Printf.sprintf "random(seed=%d)" seed) events
