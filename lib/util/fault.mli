(** Deterministic, seeded fault injection for the SMR hot paths.

    Named injection points sit inside the dangerous windows of the
    protect/retire/scan protocols (between publishing a reservation and
    validating it, inside retire and reclamation scans, inside the
    pool's spill/refill). A per-run {!plan} fires stalls, yield storms,
    or a permanent {!Crash} — the thread unwinds out of its workload
    loop with its announcements still published, modelling a thread
    that died holding a reservation (paper §4.4).

    When no plan is armed, {!hit} is a single load-and-branch. *)

type point =
  | Reservation_publish  (** after a PPV slot write became visible *)
  | Reservation_clear  (** before announcement slots are cleared *)
  | Reclaimer_retire  (** entering [retire], before the node is queued *)
  | Reclaimer_scan  (** entering a reclamation pass *)
  | Mempool_refill  (** local magazines empty, before the global claim *)
  | Mempool_spill  (** before a full magazine spills to the global stack *)
  | Protect_validate
      (** the scheme-specific protect/validate window: between announcing
          protection and validating / using it *)

val point_name : point -> string
val all_points : point list

type action =
  | Stall of float  (** sleep this many seconds inside the window *)
  | Yield_storm of int  (** spin [cpu_relax] this many times *)
  | Crash  (** raise {!Crashed}, leaving every announcement published *)

type event = {
  point : point;
  tid : int;
  after_hits : int;  (** fire once the (point, tid) hit count reaches this *)
  every : int;  (** 0 = fire once; k > 0 = re-fire every k further hits *)
  action : action;
}

type plan = {
  label : string;
  events : event list;
}

val plan : ?label:string -> event list -> plan
val plan_to_string : plan -> string
val event_to_string : event -> string
val action_to_string : action -> string

val stall_event :
  tid:int -> point:point -> after_hits:int -> ?every:int -> pause:float -> unit -> event

val yield_event :
  tid:int -> point:point -> after_hits:int -> ?every:int -> spins:int -> unit -> event

val crash_event : tid:int -> point:point -> after_hits:int -> event

(** Raised by a {!Crash} event; carries the crashing tid. Workload loops
    catch it, mark the domain dead, and return without any cleanup, so
    the thread's reservations stay published forever. *)
exception Crashed of int

(** [arm ~threads p] installs [p]. Call while the target domains are not
    running; hit counters reset to zero. *)
val arm : threads:int -> plan -> unit

(** Disable all injection points and drop the armed state. *)
val disarm : unit -> unit

val armed : unit -> bool

(** The injection point: cost is one load-and-branch unless a plan is
    armed. [tid]s outside the armed thread count are ignored, as are
    hits from already-crashed threads. *)
val hit : tid:int -> point -> unit

(** Did a {!Crash} event fire on [tid] (since {!arm})? *)
val crashed : tid:int -> bool

(** Clear [tid]'s crashed flag so injection fires for it again — for a
    recovery supervisor handing an adopted tid to a replacement domain.
    Hit counters are preserved, so plans keep their meaning across
    incarnations. No-op when nothing is armed. *)
val forgive : tid:int -> unit

val crashed_tids : unit -> int list

(** Events fired so far, oldest first. *)
val fired : unit -> (point * int * action) list

(** Hits recorded at a (point, tid) since {!arm}. *)
val hit_count : tid:int -> point -> int

(** Seeded random stall/crash mix (1–3 events, at most one crash, never
    on tid 0) for the fault soak. *)
val random_plan : seed:int -> threads:int -> plan
