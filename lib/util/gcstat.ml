(** GC/allocation sampling around a measured window.

    In OCaml 5, [Gc.quick_stat] reports the *calling domain's* counters
    (no stop-the-world, no heap scan), so each benchmark worker samples
    its own allocation before and after its timed loop and the deltas are
    summed across workers. Both the harness runner and bench/main's
    hand-rolled loops (the pipe benchmark) go through this module, so the
    "how much did the measurement loop itself allocate" accounting cannot
    drift between them. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
}

let sample () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
  }

(** Words allocated between the two samples: minor allocations plus
    direct-to-major allocations, minus promotions (which [major_words]
    double-counts). *)
let alloc_words ~before ~after =
  after.minor_words -. before.minor_words
  +. (after.major_words -. before.major_words)
  -. (after.promoted_words -. before.promoted_words)

let promoted_words ~before ~after = after.promoted_words -. before.promoted_words
let minor_collections ~before ~after = after.minor_collections - before.minor_collections

let zero = { minor_words = 0.0; promoted_words = 0.0; major_words = 0.0; minor_collections = 0 }
