(** Per-domain GC/allocation sampling around a measured window (see
    gcstat.ml). Shared by the harness runner and bench/main so the two
    measurement loops account for self-allocation identically. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
}

(** Sample the calling domain's GC counters ([Gc.quick_stat]). *)
val sample : unit -> sample

(** Words allocated between [before] and [after] (minor + direct major,
    promotions not double-counted). *)
val alloc_words : before:sample -> after:sample -> float

val promoted_words : before:sample -> after:sample -> float
val minor_collections : before:sample -> after:sample -> int

(** All-zero sample, for initializing slots before workers report. *)
val zero : sample
