(** Log-scale latency histogram.

    Power-of-two nanosecond buckets with four linear sub-buckets each:
    ~19% worst-case relative error on percentile reads, a fixed 256-slot
    footprint, and allocation-free recording — safe to call from a
    benchmark hot loop. Not thread-safe; keep one histogram per domain
    and [merge_into] a fresh one after the domains have joined. *)

type t

val create : unit -> t

(** [record t seconds] adds one sample, given in seconds. *)
val record : t -> float -> unit

(** Number of recorded samples. *)
val count : t -> int

(** Largest recorded sample, in nanoseconds (exact, not bucketed). *)
val max_ns : t -> int

(** [percentile_ns t p] approximates the [p]-th percentile in
    nanoseconds; [p] in \[0, 100\], fractional values such as [99.9]
    supported. Returns 0 on an empty histogram. *)
val percentile_ns : t -> float -> int

(** [merge_into ~into t] adds [t]'s samples to [into]. *)
val merge_into : into:t -> t -> unit
