(** Cache-line isolation idioms.

    OCaml gives no direct control over heap-block placement, so true
    per-cache-line alignment is impossible; what *is* controllable is how
    far apart logically-adjacent mutable cells end up. Two idioms, both
    used across the hot paths:

    - {b spaced array indexing}: size an array [stride] times larger than
      the number of stripes and put stripe [i] at element [i * stride].
      For an [int array] the elements themselves are the mutable words,
      so a stride of one cache line guarantees no two stripes share a
      line. For an ['a Atomic.t array] the array holds pointers; spacing
      the pointers does not by itself separate the pointed-to blocks, but
      allocating the dummy in-between atomics in the same [Array.init]
      sweep places [stride - 1] two-word blocks between every pair of
      live cells — 14 words on 64-bit, more than a line — and the blocks
      keep their relative order through compaction.

    - {b per-stripe dummy fields}: fatten a per-thread record with unused
      trailing fields until the block exceeds a cache line, so two
      distinct records can never fully share one no matter where the GC
      puts them (see [Mempool.Core]'s local free-list records).

    The 64-byte line size is an assumption (true of every x86-64 and
    most AArch64 parts), not a probe. *)

let line_bytes = 64
let word_bytes = Sys.word_size / 8

(** Words per assumed cache line: 8 on 64-bit. *)
let line_words = line_bytes / word_bytes

(** Element spacing for spaced array indexing. *)
let stride = line_words

(** Physical length of a spaced array holding [n] stripes. *)
let[@inline] spaced_length n = n * stride

(** Physical index of stripe [i] in a spaced array. *)
let[@inline] spaced_index i = i * stride

(** [atomic_int_array n] allocates [n] zero-initialized atomic cells for
    spaced indexing: use [(arr).(spaced_index i)]. The interleaved dummy
    atomics exist only to keep the live cells' heap blocks a cache line
    apart. *)
let atomic_int_array n = Array.init (spaced_length n) (fun _ -> Atomic.make 0)
