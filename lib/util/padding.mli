(** Cache-line isolation idioms: spaced array indexing and per-stripe
    dummy fields. See the implementation header for the full discussion
    of what OCaml's GC does and does not let us control. *)

val line_bytes : int
val word_bytes : int
val line_words : int

(** Element spacing for spaced array indexing (= [line_words]). *)
val stride : int

(** Physical length of a spaced array holding [n] stripes. *)
val spaced_length : int -> int

(** Physical index of stripe [i] in a spaced array. *)
val spaced_index : int -> int

(** [n] atomic int cells, zeroed, spaced a cache line apart; index with
    [spaced_index]. *)
val atomic_int_array : int -> int Atomic.t array
