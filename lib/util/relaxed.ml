(** Fenceless (relaxed) reads of [Atomic.t] locations.

    OCaml's [Atomic.get] is a sequentially-consistent load: on x86 it
    compiles to a plain load (SC fences live on the store side), but on
    ARM/POWER it carries acquire semantics, and on every backend it is a
    compiler barrier that blocks load reordering and hoisting out of
    loops. For hot-path loads that are re-validated or whose staleness is
    provably harmless, that strength is wasted.

    OCaml 5.1's stdlib has no [Atomic.fenceless_get] (multicore-magic
    ships one); we reproduce its implementation. An ['a Atomic.t] is a
    single mutable-field heap block with the same layout as ['a ref], so
    casting and dereferencing performs a plain (non-atomic) load of the
    same field. Under the OCaml memory model (PLDI'18, "Bounding data
    races in space and time") a racy plain read of a mutable field is not
    undefined behaviour — it returns *some* value previously written to
    the field (possibly stale), never an out-of-thin-air value, and heap
    safety is preserved.

    Because the only guarantee is "some previously written value", every
    use site must argue why a stale value is acceptable. The two patterns
    used in this codebase (documented again at each use):

    - {b Own-slot mirror}: the reading thread is the only writer of the
      location (e.g. a thread's own reservation slot). Program order makes
      a same-thread plain read exact, so the relaxed load is equivalent to
      the SC load and simply skips the barrier.
    - {b Monotonic heuristic polling}: the location is a monotonically
      advancing counter (e.g. the epoch clock) and the reader only uses it
      for a heuristic whose correctness does not depend on freshness —
      e.g. stretching a reservation endpoint that is immediately
      [max]-clamped against an SC-read bound.

    Loads that form the *synchronization edge* of a protocol — link-word
    reads, the MP fast path's epoch re-validation, announcement scans in
    reclaimers — must stay [Atomic.get]; see DESIGN.md "Hot-path
    discipline" for the line between the two. *)

(* Layout cast: 'a Atomic.t and 'a ref are both single-mutable-field
   blocks in every OCaml 5.x runtime to date; CI pins 5.1/5.2. The
   two-domain handshake test in test_util.ml exercises this at runtime,
   so a representation change would fail loudly, not corrupt memory
   silently (the cast would still read field 0 of the block). *)
let get (type a) (atomic : a Atomic.t) : a = !(Obj.magic atomic : a ref) [@@inline]
