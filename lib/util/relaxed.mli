(** Fenceless (relaxed) read of an [Atomic.t]. Returns some previously
    written value — possibly stale. Legal only where the caller can argue
    staleness away: own-slot mirrors (single-writer locations read by
    their writer) and monotonic heuristic polling. Synchronizing loads
    must remain [Atomic.get]; see relaxed.ml and DESIGN.md "Hot-path
    discipline". *)
val get : 'a Atomic.t -> 'a [@@inline]
