(** SplitMix-style pseudo-random number generator on native ints.

    Each thread of a benchmark owns an independent generator seeded from a
    master seed and the thread id, so runs are reproducible and there is no
    shared RNG state to contend on.

    The state is an unboxed OCaml [int] (63 bits) mixed SplitMix-fashion
    (add an odd gamma, then xor-shift-multiply avalanche, with the
    multiplies wrapping mod 2^63). An [int64] state would box on every
    step in non-flambda builds — ~6 GC words per draw — which is exactly
    the allocation the zero-allocation read path's telemetry would then
    misattribute to the structures under test. The int variant draws
    nothing from the GC. *)

type t = { mutable state : int }

(* Odd 61-bit gamma (golden-ratio-derived, as in SplitMix64 but truncated
   to fit a native int literal). *)
let gamma = 0x1E3779B97F4A7C15

(* Odd avalanche multipliers (SplitMix64's, truncated to native int). *)
let mult1 = 0x3F58476D1CE4E5B9
let mult2 = 0x14D049BB133111EB

let create seed = { state = seed }

(** Derive a stream for thread [tid] from a master [seed]; streams are
    decorrelated by the golden-gamma increment. *)
let split ~seed ~tid = { state = seed + (gamma * (tid + 1)) }

(** [next_int t] is a uniformly distributed non-negative OCaml int. *)
let next_int t =
  let s = t.state + gamma in
  t.state <- s;
  let z = (s lxor (s lsr 30)) * mult1 in
  let z = (z lxor (z lsr 27)) * mult2 in
  let z = z lxor (z lsr 31) in
  z land max_int

(** [below t n] is uniform in [0, n). Requires [n > 0]. *)
let below t n =
  assert (n > 0);
  next_int t mod n

(** [float t] is uniform in [0, 1). *)
let float t = Stdlib.float_of_int (next_int t) *. 0x1p-62

(** [bool t] is a fair coin flip. *)
let bool t = next_int t land 1 = 1
