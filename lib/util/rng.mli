(** SplitMix-style PRNG on native ints: fast, seedable, allocation-free,
    one independent stream per thread. *)

type t

val create : int -> t

(** Decorrelated stream for thread [tid] derived from a master [seed]. *)
val split : seed:int -> tid:int -> t

(** Uniform non-negative OCaml int. *)
val next_int : t -> int

(** Uniform in [0, n); requires n > 0. *)
val below : t -> int -> int

(** Uniform in [0, 1). *)
val float : t -> float

val bool : t -> bool
