(** Small descriptive-statistics helpers used by the harness and reports. *)

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let min_max xs =
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity)
    xs

(** Percentile by nearest-rank on a sorted copy; [p] in [0, 100]. *)
let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

(** Wall-clock now, in seconds. *)
let now () = Unix.gettimeofday ()
