(** Per-thread striped counter.

    Each thread increments a private cell; [sum] aggregates all cells.
    Cells are [int Atomic.t] so the cross-domain reads done by samplers
    ([sum] while writers run) are well-defined under the OCaml memory
    model without any extra fencing on either side, and they are spaced a
    cache line apart ({!Padding.atomic_int_array}) so neighbouring
    threads' increments do not false-share — the 2 ms stats sampler in
    the harness otherwise keeps stealing the line mid-run. Increments use
    [fetch_and_add]: a single locked RMW, safe even if a stripe ever
    gains a second writer. *)

type t = {
  threads : int;
  cells : int Atomic.t array; (* spaced: stripe i at [Padding.spaced_index i] *)
}

let create ~threads = { threads; cells = Padding.atomic_int_array threads }

let[@inline] cell t tid = Array.unsafe_get t.cells (Padding.spaced_index tid)
let[@inline] incr t ~tid = ignore (Atomic.fetch_and_add (cell t tid) 1 : int)
let[@inline] add t ~tid n = ignore (Atomic.fetch_and_add (cell t tid) n : int)
let[@inline] get t ~tid = Atomic.get (cell t tid)

(* Monotonic high-water lift. Each stripe has a single writer (its
   owning thread), so a plain read-compare-set is race-free: nobody else
   can lower or raise the cell between our read and our write. Samplers
   concurrently [sum]-ing see either the old or new maximum, both valid
   snapshots of a monotonically increasing quantity. *)
let[@inline] max_to t ~tid v =
  let c = cell t tid in
  if v > Atomic.get c then Atomic.set c v

let sum t =
  let acc = ref 0 in
  for tid = 0 to t.threads - 1 do
    acc := !acc + Atomic.get (cell t tid)
  done;
  !acc

let reset t =
  for tid = 0 to t.threads - 1 do
    Atomic.set (cell t tid) 0
  done
