(** Per-thread striped counter: uncontended increments on cache-line
    isolated atomic cells, well-defined concurrent [sum] reads. *)

type t

val create : threads:int -> t
val incr : t -> tid:int -> unit
val add : t -> tid:int -> int -> unit
val get : t -> tid:int -> int

(** [max_to t ~tid v] lifts stripe [tid] to [v] if [v] is larger —
    a monotonic high-water mark. Safe only from the stripe's single
    writer thread (like [incr]/[add] by convention). *)
val max_to : t -> tid:int -> int -> unit
val sum : t -> int
val reset : t -> unit
