(** Per-thread striped counter: uncontended increments on cache-line
    isolated atomic cells, well-defined concurrent [sum] reads. *)

type t

val create : threads:int -> t
val incr : t -> tid:int -> unit
val add : t -> tid:int -> int -> unit
val get : t -> tid:int -> int
val sum : t -> int
val reset : t -> unit
