(* Long-running safety soak across the full (structure × scheme) matrix
   with the use-after-free detector armed. Not part of `dune runtest` —
   run manually:

     dune exec stress/soak.exe -- [minutes]
     dune exec stress/soak.exe -- --faults SEED [--rounds N] [--json FILE]

   With --faults, every round arms a seeded random fault plan
   (Mp_util.Fault.random_plan): interior stalls, yield storms and at most
   one permanent crash per round, landing inside the SMR protect/validate
   windows, retire/scan, and the pool's spill/refill. Each cell is then
   judged twice — the UAF detector must stay silent, and the waste-bound
   watchdog must report the scheme's declared bound held (EBR's reference
   bound is advisory: its violations are expected and logged, not
   fatal). *)

module Fault = Mp_util.Fault
module Watchdog = Mp_harness.Watchdog

let structures : (string * ((module Smr_core.Smr_intf.S) -> (module Dstruct.Set_intf.SET))) list =
  [
    ("list", fun (module S) -> (module Dstruct.Michael_list.Make (S)));
    ("skiplist", fun (module S) -> (module Dstruct.Skiplist.Make (S)));
    ("bst", fun (module S) -> (module Dstruct.Nm_bst.Make (S)));
  ]

let schemes : (string * (module Smr_core.Smr_intf.S)) list =
  [
    ("mp", (module Mp.Margin_ptr));
    ("hp", (module Smr_schemes.Hp));
    ("ebr", (module Smr_schemes.Ebr));
    ("he", (module Smr_schemes.He));
    ("ibr", (module Smr_schemes.Ibr));
  ]

let threads = 4
let ops = 20_000

let prefill (type a) (module SET : Dstruct.Set_intf.SET with type t = a) ~range : a =
  let config = Smr_core.Config.default ~threads in
  let t =
    SET.create ~threads ~capacity:((range * 8) + (ops * threads) + 1024) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  SET.flush s0;
  t

let round (module SET : Dstruct.Set_intf.SET) ~seed =
  let range = if seed mod 2 = 0 then 256 else 64 in
  let t = prefill (module SET) ~range in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed ~tid in
            for i = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              if i mod 1000 = 0 then
                ignore (SET.contains_paused s k ~pause:(fun () -> Unix.sleepf 0.0005) : bool)
              else
                match Mp_util.Rng.below rng 4 with
                | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                | 1 -> ignore (SET.remove s k : bool)
                | _ -> ignore (SET.contains s k : bool)
            done;
            SET.flush s))
  in
  Array.iter Domain.join domains;
  SET.check t;
  if SET.violations t <> 0 then failwith (SET.name ^ ": use-after-free detected")

(* One fault round: prefill, arm the plan, churn, and while the workers
   run sample the wasted counter into the watchdog. Crashed workers skip
   their flush — their announcements stay published, which is the
   scenario. *)
let fault_round (module SET : Dstruct.Set_intf.SET) ~scheme ~properties ~seed =
  let range = if seed mod 2 = 0 then 256 else 64 in
  let t = prefill (module SET) ~range in
  let config = Smr_core.Config.default ~threads in
  let plan = Fault.random_plan ~seed ~threads in
  let wd =
    (* live ceiling: up to [range] keys, ×2 for the BST's routers *)
    Watchdog.create
      (Watchdog.spec_for ~scheme ~properties ~config ~threads ~size_at_arm:(2 * range))
  in
  Fault.arm ~threads plan;
  let finished = Atomic.make 0 in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed ~tid in
            (try
               for _ = 1 to ops do
                 let k = Mp_util.Rng.below rng range in
                 match Mp_util.Rng.below rng 4 with
                 | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                 | 1 -> ignore (SET.remove s k : bool)
                 | _ -> ignore (SET.contains s k : bool)
               done;
               SET.flush s
             with Fault.Crashed _ -> ());
            Atomic.incr finished))
  in
  while Atomic.get finished < threads do
    Unix.sleepf 0.002;
    Watchdog.observe wd ~wasted:(SET.smr_stats t).Smr_core.Smr_intf.wasted
  done;
  Array.iter Domain.join domains;
  let crashed = Fault.crashed_tids () in
  Fault.disarm ();
  let pinning = SET.pinning_tids t in
  SET.check t;
  if SET.violations t <> 0 then
    failwith (Printf.sprintf "%s: use-after-free under %s" SET.name (Fault.plan_to_string plan));
  let v = Watchdog.verdict wd in
  if not (Watchdog.ok v) then
    failwith
      (Printf.sprintf "%s: waste bound broken under %s: %s" SET.name (Fault.plan_to_string plan)
         (Watchdog.to_string v));
  (plan, v, crashed, pinning)

let fmt_tids tids = "[" ^ String.concat "," (List.map string_of_int tids) ^ "]"

let () =
  let minutes = ref 5.0 in
  let fault_seed = ref None in
  let rounds = ref 10 in
  let json_file = ref None in
  let rec parse = function
    | "--faults" :: s :: rest ->
      fault_seed := Some (int_of_string s);
      parse rest
    | "--rounds" :: n :: rest ->
      rounds := int_of_string n;
      parse rest
    | "--json" :: f :: rest ->
      json_file := Some f;
      parse rest
    | m :: rest ->
      (try minutes := float_of_string m with _ -> ());
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !fault_seed with
  | None ->
    let t_end = Unix.gettimeofday () +. (!minutes *. 60.0) in
    let seed = ref 0 in
    while Unix.gettimeofday () < t_end do
      incr seed;
      List.iter
        (fun (ds_name, make) ->
          List.iter
            (fun (s_name, s) ->
              round (make s) ~seed:(!seed * 7919);
              Printf.printf "%s(%s) round %d ok\n%!" ds_name s_name !seed)
            schemes)
        structures
    done;
    print_endline "SOAK CLEAN"
  | Some base_seed ->
    let json = ref [] in
    for r = 1 to !rounds do
      List.iter
        (fun (ds_name, make) ->
          List.iter
            (fun (s_name, scheme) ->
              let (module S : Smr_core.Smr_intf.S) = scheme in
              (* Derive a distinct deterministic seed per (round, cell) so a
                 failure is reproducible from the base seed alone. *)
              let seed = (base_seed * 1_000_003) + (r * 7919) + Hashtbl.hash (ds_name, s_name) in
              let plan, v, crashed, pinning =
                fault_round (make scheme) ~scheme:s_name ~properties:S.properties ~seed
              in
              Printf.printf "%s(%s) round %d %s  crashed=%s pinning=%s  %s\n%!" ds_name s_name r
                (Fault.plan_to_string plan) (fmt_tids crashed) (fmt_tids pinning)
                (Watchdog.to_string v);
              json :=
                Printf.sprintf
                  "{\"round\":%d,\"ds\":\"%s\",\"scheme\":\"%s\",\"seed\":%d,\"crashed\":%s,\"pinning\":%s,%s}"
                  r ds_name s_name seed (fmt_tids crashed) (fmt_tids pinning)
                  (Watchdog.json_fields (Some v))
                :: !json)
            schemes)
        structures
    done;
    (match !json_file with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc ("[\n  " ^ String.concat ",\n  " (List.rev !json) ^ "\n]\n");
      close_out oc;
      Printf.printf "[wrote %d verdicts to %s]\n%!" (List.length !json) path);
    print_endline "FAULT SOAK CLEAN"
