(* Long-running safety soak across the full (structure × scheme) matrix
   with the use-after-free detector armed. Not part of `dune runtest` —
   run manually:

     dune exec stress/soak.exe -- [minutes]
     dune exec stress/soak.exe -- --faults SEED [--rounds N] [--json FILE]
     dune exec stress/soak.exe -- --chaos SEED [--rounds N] [--json FILE]
     dune exec stress/soak.exe -- --elastic SEED [--rounds N] [--json FILE]

   With --faults, every round arms a seeded random fault plan
   (Mp_util.Fault.random_plan): interior stalls, yield storms and at most
   one permanent crash per round, landing inside the SMR protect/validate
   windows, retire/scan, and the pool's spill/refill. Each cell is then
   judged twice — the UAF detector must stay silent, and the waste-bound
   watchdog must report the scheme's declared bound held (EBR's reference
   bound is advisory: its violations are expected and logged, not
   fatal). Every fault round also fires the same plans through the
   request-service path (stress the batched SMR windows inside shard
   domains, with open-loop latency percentiles in the JSON).

   With --chaos, every round runs the sharded service WITH the recovery
   supervisor armed, across all six schemes: a deterministic fault plan
   kills shard domains mid-round, the supervisor joins them, adopts their
   tids and respawns replacements, and the round is judged on (a) the
   waste-bound watchdog holding through crash/quarantine/respawn, (b)
   request conservation — every submitted request answered exactly once
   (completed, rejected, busy, oom or deadline_exceeded), (c) at least
   one recovery actually happening, and (d) wasted memory returning to
   within 10% of a fault-free baseline run after the last recovery.

   With --elastic, every round runs the service over an elastic pool
   (max_arenas = 4): an insert spike must grow it past one arena with no
   OOM reply, a shard crash mid-spike stalls (but must not wedge) the
   decay phase's autoscale-driven drains until the tid is adopted, and
   after the decay every drain must complete — the footprint returns to
   within one arena of pre-spike, under the per-arena waste bound. *)

module Fault = Mp_util.Fault
module Watchdog = Mp_harness.Watchdog

let structures : (string * ((module Smr_core.Smr_intf.S) -> (module Dstruct.Set_intf.SET))) list =
  [
    ("list", fun (module S) -> (module Dstruct.Michael_list.Make (S)));
    ("skiplist", fun (module S) -> (module Dstruct.Skiplist.Make (S)));
    ("bst", fun (module S) -> (module Dstruct.Nm_bst.Make (S)));
  ]

let schemes : (string * (module Smr_core.Smr_intf.S)) list =
  [
    ("mp", (module Mp.Margin_ptr));
    ("hp", (module Smr_schemes.Hp));
    ("ebr", (module Smr_schemes.Ebr));
    ("he", (module Smr_schemes.He));
    ("ibr", (module Smr_schemes.Ibr));
  ]

let threads = 4
let ops = 20_000

let prefill (type a) (module SET : Dstruct.Set_intf.SET with type t = a) ~range : a =
  let config = Smr_core.Config.default ~threads in
  let t =
    SET.create ~threads ~capacity:((range * 8) + (ops * threads) + 1024) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  SET.flush s0;
  t

let round (module SET : Dstruct.Set_intf.SET) ~seed =
  let range = if seed mod 2 = 0 then 256 else 64 in
  let t = prefill (module SET) ~range in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed ~tid in
            for i = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              if i mod 1000 = 0 then
                ignore (SET.contains_paused s k ~pause:(fun () -> Unix.sleepf 0.0005) : bool)
              else
                match Mp_util.Rng.below rng 4 with
                | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                | 1 -> ignore (SET.remove s k : bool)
                | _ -> ignore (SET.contains s k : bool)
            done;
            SET.flush s))
  in
  Array.iter Domain.join domains;
  SET.check t;
  if SET.violations t <> 0 then failwith (SET.name ^ ": use-after-free detected")

(* One fault round: prefill, arm the plan, churn, and while the workers
   run sample the wasted counter into the watchdog. Crashed workers skip
   their flush — their announcements stay published, which is the
   scenario. *)
let fault_round (module SET : Dstruct.Set_intf.SET) ~scheme ~properties ~seed =
  let range = if seed mod 2 = 0 then 256 else 64 in
  let t = prefill (module SET) ~range in
  let config = Smr_core.Config.default ~threads in
  let plan = Fault.random_plan ~seed ~threads in
  let wd =
    (* live ceiling: up to [range] keys, ×2 for the BST's routers *)
    Watchdog.create
      (Watchdog.spec_for ~scheme ~properties ~config ~threads ~size_at_arm:(2 * range) ())
  in
  Fault.arm ~threads plan;
  let finished = Atomic.make 0 in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed ~tid in
            (try
               for _ = 1 to ops do
                 let k = Mp_util.Rng.below rng range in
                 match Mp_util.Rng.below rng 4 with
                 | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                 | 1 -> ignore (SET.remove s k : bool)
                 | _ -> ignore (SET.contains s k : bool)
               done;
               SET.flush s
             with Fault.Crashed _ -> ());
            Atomic.incr finished))
  in
  while Atomic.get finished < threads do
    Unix.sleepf 0.002;
    Watchdog.observe wd ~wasted:(SET.smr_stats t).Smr_core.Smr_intf.wasted
  done;
  Array.iter Domain.join domains;
  let crashed = Fault.crashed_tids () in
  Fault.disarm ();
  let pinning = SET.pinning_tids t in
  SET.check t;
  if SET.violations t <> 0 then
    failwith (Printf.sprintf "%s: use-after-free under %s" SET.name (Fault.plan_to_string plan));
  let v = Watchdog.verdict wd in
  if not (Watchdog.ok v) then
    failwith
      (Printf.sprintf "%s: waste bound broken under %s: %s" SET.name (Fault.plan_to_string plan)
         (Watchdog.to_string v));
  (plan, v, crashed, pinning)

(* One service-path fault round: the same seeded plans, but firing inside
   the shard domains of the request-service layer, where operations run
   under batched SMR windows (a crash mid-batch kills the shard with the
   whole window's announcements still published). The watchdog samples
   from the load generator's tick; the open-loop (Poisson) client records
   end-to-end latency, coordinated-omission corrected, so a stalled or
   crashed shard shows up in p99/p99.9 instead of disappearing behind
   back-pressure. *)
let service_fault_round scheme_mod ~scheme ~properties ~seed =
  let module Service = Mp_service.Service in
  let module Loadgen = Mp_service.Loadgen in
  let (module SET : Dstruct.Set_intf.SET) =
    Mp_harness.Instances.make Mp_harness.Instances.Hash_ds scheme_mod
  in
  let shards = 2 in
  let batch = 1 + (seed mod 48) in
  let range = if seed mod 2 = 0 then 512 else 128 in
  let config = Smr_core.Config.default ~threads:shards in
  let t =
    SET.create ~threads:shards ~capacity:((range * 8) + (shards * 65536)) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  SET.flush s0;
  let plan = Fault.random_plan ~seed ~threads:shards in
  let wd =
    Watchdog.create
      (Watchdog.spec_for ~scheme ~properties ~config ~threads:shards ~size_at_arm:(2 * range) ())
  in
  Fault.arm ~threads:shards plan;
  let svc = Service.create (module SET) t ~shards ~batch ~ring_capacity:128 in
  Service.start svc;
  let lg =
    Loadgen.run
      ~tick:(fun () ->
        Watchdog.observe wd ~wasted:(SET.smr_stats t).Smr_core.Smr_intf.wasted)
      svc
      {
        Loadgen.clients = 2;
        duration_s = 0.6;
        warmup_s = 0.0;
        read_pct = 50;
        insert_pct = 30;
        (* Random multi-get widths so fault plans also fire inside the
           intra-request window rollover path. *)
        mget = 1 + (seed mod 4);
        key_range = range;
        zipf_alpha = None;
        seed;
        (* Alternate by seed between the open-loop per-slot path and the
           chained closed-loop path, so fault plans also fire while a
           shard is mid-chain (the coalesced-completion takeover edge). *)
        mode =
          (if seed mod 2 = 0 then Loadgen.Open { rate = 30_000.0; window = 32 }
           else Loadgen.Closed { pipeline = 8 });
        deadline_s = 0.0;
        max_retries = 0;
        chain = (if seed mod 2 = 0 then 1 else 1 + (seed mod 8));
      }
  in
  Service.stop svc;
  let crashed = Fault.crashed_tids () in
  Fault.disarm ();
  let pinning = SET.pinning_tids t in
  SET.check t;
  if SET.violations t <> 0 then
    failwith
      (Printf.sprintf "service(%s): use-after-free under %s (B=%d)" scheme
         (Fault.plan_to_string plan) batch);
  let v = Watchdog.verdict wd in
  if not (Watchdog.ok v) then
    failwith
      (Printf.sprintf "service(%s): waste bound broken under %s (B=%d): %s" scheme
         (Fault.plan_to_string plan) batch (Watchdog.to_string v));
  (plan, v, crashed, pinning, batch, lg)

(* -- chaos: crash–recover rounds over the resilient service -------------- *)

(* All six schemes: the five above plus the leaky baseline (its adopt is
   a no-op, but recovery must still respawn and conserve requests). *)
let chaos_schemes : (string * (module Smr_core.Smr_intf.S)) list =
  schemes @ [ ("none", (module Smr_schemes.Leaky)) ]

type chaos_cell = {
  c_scheme : string;
  c_seed : int;
  c_batch : int;
  c_crashes : int;
  c_recoveries : int;
  c_adoptions : int;
  c_recovery_ms_mean : float;
  c_recovery_ms_max : float;
  c_baseline_peak : int;
  c_tail_peak : int;
  c_waste_ok : bool;
  c_conservation_ok : bool;
  c_watchdog : Watchdog.verdict;
  c_lg : Mp_service.Loadgen.result;
}

(* One chaos cell: the same seeded open-loop workload (deadlines and
   retries armed) runs twice over the recovery-supervised service — once
   fault-free for a wasted-memory baseline, once with a deterministic
   plan crashing shards 1 and 2 mid-round. The crashed shards' tids are
   adopted and replacements respawn on the spare tids; after the last
   recovery the wasted counter must come back to within 10% of the
   baseline peak (plus a small absolute floor for sampling noise). *)
let chaos_round scheme_mod ~scheme ~properties ~seed =
  let module Service = Mp_service.Service in
  let module Recovery = Mp_service.Recovery in
  let module Loadgen = Mp_service.Loadgen in
  let (module SET : Dstruct.Set_intf.SET) =
    Mp_harness.Instances.make Mp_harness.Instances.Hash_ds scheme_mod
  in
  let shards = 3 and spare_tids = 2 in
  let threads = shards + spare_tids in
  let range = 512 and batch = 8 in
  let config = Smr_core.Config.default ~threads in
  let recovery = { Recovery.default with spare_tids } in
  let spec =
    {
      Loadgen.clients = 2;
      duration_s = 1.2;
      warmup_s = 0.0; (* exact request conservation needs the full window *)
      read_pct = 50;
      insert_pct = 30;
      mget = 1 + (seed mod 4);
      key_range = range;
      zipf_alpha = None;
      seed;
      mode = Loadgen.Open { rate = 20_000.0; window = 32 };
      deadline_s = 0.05;
      max_retries = 3;
      chain = 1;
    }
  in
  let run ~faulted =
    let t =
      SET.create ~threads ~capacity:((range * 8) + (threads * 65536)) ~check_access:true
        config
    in
    let s0 = SET.session t ~tid:0 in
    for k = 0 to (range / 2) - 1 do
      ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
    done;
    SET.flush s0;
    let wd =
      Watchdog.create
        (Watchdog.spec_for ~scheme ~properties ~config ~threads ~size_at_arm:(2 * range) ())
    in
    if faulted then begin
      (* Crash inside the protect/validate window (retire for leaky,
         which publishes no reservations) after enough hits that the
         shards are mid-round, with requests in flight and windows
         open. Never shard 0, so at least one shard serves throughout. *)
      let point =
        if scheme = "none" then Fault.Reclaimer_retire else Fault.Protect_validate
      in
      Fault.arm ~threads
        (Fault.plan ~label:(Printf.sprintf "chaos-%s-%d" scheme seed)
           [
             Fault.crash_event ~tid:1 ~point ~after_hits:(200 + (seed mod 100));
             Fault.crash_event ~tid:2 ~point ~after_hits:(500 + (seed mod 200));
           ])
    end;
    let svc = Service.create ~recovery (module SET) t ~shards ~batch ~ring_capacity:128 in
    Service.start svc;
    let samples = ref [] in
    let lg =
      Loadgen.run
        ~tick:(fun () ->
          let w = (SET.smr_stats t).Smr_core.Smr_intf.wasted in
          Watchdog.observe wd ~wasted:w;
          samples := (Unix.gettimeofday (), w) :: !samples)
        svc spec
    in
    Service.stop svc;
    if faulted then Fault.disarm ();
    (* One more sample after the shards flushed on the way out: the
       truest "after recovery settled" point, and it guarantees the tail
       window below is never empty. *)
    samples := (Unix.gettimeofday (), (SET.smr_stats t).Smr_core.Smr_intf.wasted) :: !samples;
    SET.check t;
    if SET.violations t <> 0 then
      failwith (Printf.sprintf "chaos(%s): use-after-free (seed %d)" scheme seed);
    let stats = Service.stats svc in
    let rstats = Option.get (Service.recovery_stats svc) in
    (lg, stats, rstats, Watchdog.verdict wd, List.rev !samples)
  in
  let _, _, _, _, base_samples = run ~faulted:false in
  let baseline_peak = List.fold_left (fun m (_, w) -> max m w) 0 base_samples in
  let lg, stats, rstats, v, samples = run ~faulted:true in
  (* Tail = samples after the last takeover plus a settling margin (the
     replacement's first scans drain what the dead incarnation left). *)
  let tail_from = rstats.Recovery.last_recovery_at +. 0.1 in
  let tail = List.filter (fun (at, _) -> at >= tail_from) samples in
  let tail = if tail = [] then [ List.nth samples (List.length samples - 1) ] else tail in
  let tail_peak = List.fold_left (fun m (_, w) -> max m w) 0 tail in
  let waste_ok =
    scheme = "none" (* leaky never frees: no return-to-baseline to check *)
    || float_of_int tail_peak <= (1.1 *. float_of_int baseline_peak) +. 64.0
  in
  let conservation_ok =
    lg.Loadgen.submitted
    = lg.Loadgen.completed_reqs + lg.Loadgen.rejected + lg.Loadgen.busy + lg.Loadgen.oom
      + lg.Loadgen.deadline_exceeded
  in
  if not conservation_ok then
    failwith
      (Printf.sprintf
         "chaos(%s): lost or duplicated replies: %d submitted vs %d+%d+%d+%d+%d accounted"
         scheme lg.Loadgen.submitted lg.Loadgen.completed_reqs lg.Loadgen.rejected
         lg.Loadgen.busy lg.Loadgen.oom lg.Loadgen.deadline_exceeded);
  if rstats.Recovery.recoveries < 1 then
    failwith (Printf.sprintf "chaos(%s): no crash recovered (seed %d)" scheme seed);
  if not (Watchdog.ok v) then
    failwith (Printf.sprintf "chaos(%s): waste bound broken: %s" scheme (Watchdog.to_string v));
  if not waste_ok then
    failwith
      (Printf.sprintf "chaos(%s): wasted did not return to baseline: tail %d vs baseline %d"
         scheme tail_peak baseline_peak);
  {
    c_scheme = scheme;
    c_seed = seed;
    c_batch = batch;
    c_crashes = stats.Service.crash_events;
    c_recoveries = rstats.Recovery.recoveries;
    c_adoptions = rstats.Recovery.adoptions;
    c_recovery_ms_mean = rstats.Recovery.mean_recovery_s *. 1e3;
    c_recovery_ms_max = rstats.Recovery.max_recovery_s *. 1e3;
    c_baseline_peak = baseline_peak;
    c_tail_peak = tail_peak;
    c_waste_ok = waste_ok;
    c_conservation_ok = conservation_ok;
    c_watchdog = v;
    c_lg = lg;
  }

let chaos_cell_json c =
  let module Loadgen = Mp_service.Loadgen in
  let lg = c.c_lg in
  let h = lg.Loadgen.latency in
  let p q = Mp_util.Histogram.percentile_ns h q in
  Printf.sprintf
    "{\"ds\":\"service-hash\",\"scheme\":\"%s\",\"seed\":%d,\"batch\":%d,\"crashes\":%d,\"recoveries\":%d,\"adoptions\":%d,\"recovery_ms_mean\":%.3f,\"recovery_ms_max\":%.3f,\"baseline_wasted_peak\":%d,\"tail_wasted_peak\":%d,\"waste_ok\":%b,\"conservation_ok\":%b,\"submitted\":%d,\"completed\":%d,\"completed_reqs\":%d,\"rejected\":%d,\"busy\":%d,\"oom\":%d,\"drops\":%d,\"deadline_exceeded\":%d,\"ring_full\":%d,\"retries\":%d,\"lat_p50_ns\":%d,\"lat_p99_ns\":%d,\"lat_p999_ns\":%d,%s}"
    c.c_scheme c.c_seed c.c_batch c.c_crashes c.c_recoveries c.c_adoptions
    c.c_recovery_ms_mean c.c_recovery_ms_max c.c_baseline_peak c.c_tail_peak c.c_waste_ok
    c.c_conservation_ok lg.Loadgen.submitted lg.Loadgen.completed lg.Loadgen.completed_reqs
    lg.Loadgen.rejected lg.Loadgen.busy lg.Loadgen.oom lg.Loadgen.drops
    lg.Loadgen.deadline_exceeded lg.Loadgen.ring_full lg.Loadgen.retries (p 50.0) (p 99.0)
    (p 99.9)
    (Watchdog.json_fields (Some c.c_watchdog))

(* -- elastic: spike → grow → crash → adopt → decay → shrink --------------- *)

type elastic_cell = {
  e_scheme : string;
  e_seed : int;
  e_capacity : int;
  e_max_arenas : int;
  e_grown : int; (* arenas attached under load *)
  e_detached : int; (* arena detaches completed *)
  e_peak_arenas : int;
  e_resident_final : int;
  e_live_peak : int;
  e_stalls : int;
  e_oom : int;
  e_crashes : int;
  e_recoveries : int;
  e_settle_s : float;
  e_conservation_ok : bool;
  e_watchdog : Watchdog.verdict;
}

(* One elastic round: a hash-table service over an elastic pool
   (max_arenas = 4, one arena far smaller than the spike's working set)
   with the recovery supervisor and the autoscale policy domain armed.

   Phase 1 (spike): an insert-heavy open-loop workload pushes the live
   count well past one arena — the pool must grow on demand, absorbing
   transient exhaustion as alloc stalls and never replying OOM below
   [max_arenas]. A deterministic plan crashes shard 1 inside a
   protect/validate window mid-spike; its published reservations must
   stall — never unsafely complete, never wedge — any drain in flight
   until the supervisor adopts the dead tid. Phase 2 (decay): a
   remove-heavy workload shrinks the working set; the autoscale domain
   lowers its target and requests drains of the topmost arena. Phase 3
   (settle, after [Service.stop] — the exiting workers have handed their
   magazines back): a single thread removes the remaining keys and
   churns scans until every pending drain detaches.

   Judged on (a) the per-arena waste bound holding, with the draining
   arena's parked slots counted into every sample, (b) UAF silence,
   (c) request conservation through both loadgen phases, (d) at least
   one arena attached under load and at least one detach completed,
   (e) the pool back to within one arena of its pre-spike footprint, and
   (f) at least one recovery. *)
let elastic_round scheme_mod ~scheme ~properties ~seed =
  let module Service = Mp_service.Service in
  let module Recovery = Mp_service.Recovery in
  let module Loadgen = Mp_service.Loadgen in
  let (module SET : Dstruct.Set_intf.SET) =
    Mp_harness.Instances.make Mp_harness.Instances.Hash_ds scheme_mod
  in
  let shards = 2 and spare_tids = 1 in
  let threads = shards + spare_tids in
  let capacity = 4096 and max_arenas = 4 in
  (* 1.5 arenas of keys: the spike must outgrow arena 0, and two spare
     arenas of headroom keep even EBR's crash-window waste clear of a
     hard exhaustion. *)
  let range = capacity * 3 / 2 in
  let config =
    Smr_core.Config.with_max_arenas (Smr_core.Config.default ~threads) max_arenas
  in
  let t = SET.create ~threads ~capacity ~check_access:true config in
  let pool = SET.pool t in
  let wd =
    Watchdog.create
      (Watchdog.spec_for ~scheme ~properties ~config ~threads ~elastic_slack:capacity
         ~size_at_arm:(2 * range) ())
  in
  let peak_arenas = ref (Mempool.Core.attached_arenas pool) in
  let tick () =
    let w =
      (SET.smr_stats t).Smr_core.Smr_intf.wasted + Mempool.Core.detaching_slots pool
    in
    Watchdog.observe wd ~wasted:w;
    let n = Mempool.Core.attached_arenas pool in
    if n > !peak_arenas then peak_arenas := n
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to 255 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  SET.flush s0;
  Fault.arm ~threads
    (Fault.plan
       ~label:(Printf.sprintf "elastic-%s-%d" scheme seed)
       [
         Fault.crash_event ~tid:1 ~point:Fault.Protect_validate
           ~after_hits:(300 + (seed mod 200));
       ]);
  let recovery = { Recovery.default with spare_tids } in
  let svc =
    Service.create ~recovery ~autoscale:Service.default_autoscale
      (module SET)
      t ~shards ~batch:8 ~ring_capacity:128
  in
  Service.start svc;
  let phase ~duration_s ~rate ~read_pct ~insert_pct ~seed =
    Loadgen.run ~tick svc
      {
        Loadgen.clients = 2;
        duration_s;
        warmup_s = 0.0;
        read_pct;
        insert_pct;
        mget = 1;
        key_range = range;
        zipf_alpha = None;
        seed;
        mode = Loadgen.Open { rate; window = 32 };
        deadline_s = 0.05;
        max_retries = 3;
        chain = 1;
      }
  in
  let spike = phase ~duration_s:0.8 ~rate:60_000.0 ~read_pct:5 ~insert_pct:90 ~seed in
  let decay =
    phase ~duration_s:1.2 ~rate:40_000.0 ~read_pct:20 ~insert_pct:0 ~seed:(seed + 1)
  in
  Service.stop svc;
  Fault.disarm ();
  (* Settle: drain what the decay left behind until every pending drain
     completes. Single-threaded over tid 0 — remove sweeps free the
     stragglers still living in high arenas, the flush forces a scan
     (and with it the detach poll), and the explicit shrink request
     keeps asking for the next arena once the current one detaches. *)
  let t_settle = Unix.gettimeofday () in
  let deadline = t_settle +. 10.0 in
  let k = ref 0 in
  while Mempool.Core.attached_arenas pool > 1 && Unix.gettimeofday () < deadline do
    ignore (Mempool.Core.request_shrink pool : int option);
    for _ = 1 to 512 do
      ignore (SET.remove s0 !k : bool);
      k := (!k + 1) mod range
    done;
    SET.flush s0;
    Mempool.Core.release_local pool ~tid:0;
    tick ()
  done;
  let settle_s = Unix.gettimeofday () -. t_settle in
  let stats = Service.stats svc in
  let rstats = Option.get (Service.recovery_stats svc) in
  SET.check t;
  if SET.violations t <> 0 then
    failwith (Printf.sprintf "elastic(%s): use-after-free (seed %d)" scheme seed);
  let v = Watchdog.verdict wd in
  if not (Watchdog.ok v) then
    failwith
      (Printf.sprintf "elastic(%s): waste bound broken: %s" scheme (Watchdog.to_string v));
  let conservation_of (lg : Loadgen.result) =
    lg.Loadgen.submitted
    = lg.Loadgen.completed_reqs + lg.Loadgen.rejected + lg.Loadgen.busy + lg.Loadgen.oom
      + lg.Loadgen.deadline_exceeded
  in
  let conservation_ok = conservation_of spike && conservation_of decay in
  if not conservation_ok then
    failwith (Printf.sprintf "elastic(%s): lost or duplicated replies (seed %d)" scheme seed);
  let grown = Mempool.Core.arenas_attached pool in
  let detached = Mempool.Core.arenas_detached pool in
  let resident = Mempool.Core.resident_slots pool in
  if grown < 1 then
    failwith
      (Printf.sprintf "elastic(%s): spike never grew the pool (peak %d arenas, seed %d)"
         scheme !peak_arenas seed);
  if detached < 1 then
    failwith
      (Printf.sprintf "elastic(%s): no drain completed (still %d arenas, seed %d)" scheme
         (Mempool.Core.attached_arenas pool) seed);
  if resident > 2 * capacity then
    failwith
      (Printf.sprintf
         "elastic(%s): footprint did not return: %d resident slots vs %d pre-spike (seed %d)"
         scheme resident capacity seed);
  if stats.Service.oom > 0 && !peak_arenas < max_arenas then
    failwith
      (Printf.sprintf "elastic(%s): replied OOM below max_arenas (%d replies, seed %d)"
         scheme stats.Service.oom seed);
  if rstats.Recovery.recoveries < 1 then
    failwith (Printf.sprintf "elastic(%s): no crash recovered (seed %d)" scheme seed);
  {
    e_scheme = scheme;
    e_seed = seed;
    e_capacity = capacity;
    e_max_arenas = max_arenas;
    e_grown = grown;
    e_detached = detached;
    e_peak_arenas = !peak_arenas;
    e_resident_final = resident;
    e_live_peak = stats.Service.live_peak;
    e_stalls = stats.Service.alloc_stalls;
    e_oom = stats.Service.oom;
    e_crashes = stats.Service.crash_events;
    e_recoveries = rstats.Recovery.recoveries;
    e_settle_s = settle_s;
    e_conservation_ok = conservation_ok;
    e_watchdog = v;
  }

let elastic_cell_json c =
  Printf.sprintf
    "{\"ds\":\"service-hash\",\"scheme\":\"%s\",\"seed\":%d,\"capacity\":%d,\"max_arenas\":%d,\"arenas_attached\":%d,\"arenas_detached\":%d,\"peak_arenas\":%d,\"resident_final\":%d,\"live_peak\":%d,\"alloc_stalls\":%d,\"oom\":%d,\"crashes\":%d,\"recoveries\":%d,\"settle_s\":%.3f,\"conservation_ok\":%b,%s}"
    c.e_scheme c.e_seed c.e_capacity c.e_max_arenas c.e_grown c.e_detached c.e_peak_arenas
    c.e_resident_final c.e_live_peak c.e_stalls c.e_oom c.e_crashes c.e_recoveries
    c.e_settle_s c.e_conservation_ok
    (Watchdog.json_fields (Some c.e_watchdog))

let fmt_tids tids = "[" ^ String.concat "," (List.map string_of_int tids) ^ "]"

let () =
  let minutes = ref 5.0 in
  let fault_seed = ref None in
  let chaos_seed = ref None in
  let elastic_seed = ref None in
  let rounds = ref 10 in
  let json_file = ref None in
  let rec parse = function
    | "--faults" :: s :: rest ->
      fault_seed := Some (int_of_string s);
      parse rest
    | "--chaos" :: s :: rest ->
      chaos_seed := Some (int_of_string s);
      parse rest
    | "--elastic" :: s :: rest ->
      elastic_seed := Some (int_of_string s);
      parse rest
    | "--rounds" :: n :: rest ->
      rounds := int_of_string n;
      parse rest
    | "--json" :: f :: rest ->
      json_file := Some f;
      parse rest
    | m :: rest ->
      (try minutes := float_of_string m with _ -> ());
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match (!elastic_seed, !chaos_seed, !fault_seed) with
  | Some base_seed, _, _ ->
    (* Elastic rounds: the five reclaiming schemes (leaky never frees,
       so an arena drain can never complete under it — growth alone is
       covered by the unit tests). *)
    let rounds = max 1 (min !rounds 10) in
    let json = ref [] in
    for r = 1 to rounds do
      List.iter
        (fun (s_name, scheme) ->
          let (module S : Smr_core.Smr_intf.S) = scheme in
          let seed = (base_seed * 1_000_003) + (r * 7919) + Hashtbl.hash ("elastic", s_name) in
          let c = elastic_round scheme ~scheme:s_name ~properties:S.properties ~seed in
          Printf.printf
            "elastic(%s) round %d  arenas peak=%d attached=%d detached=%d resident=%d  \
             stalls=%d oom=%d crashes=%d recoveries=%d settle=%.2fs  %s\n%!"
            s_name r c.e_peak_arenas c.e_grown c.e_detached c.e_resident_final c.e_stalls
            c.e_oom c.e_crashes c.e_recoveries c.e_settle_s
            (Watchdog.to_string c.e_watchdog);
          json := elastic_cell_json c :: !json)
        schemes
    done;
    (match !json_file with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Printf.sprintf "{\"schema_version\":%d,\"results\":[\n  %s\n]}\n"
           Mp_harness.Runner.schema_version
           (String.concat ",\n  " (List.rev !json)));
      close_out oc;
      Printf.printf "[wrote %d elastic verdicts to %s]\n%!" (List.length !json) path);
    print_endline "ELASTIC SOAK CLEAN"
  | None, Some base_seed, _ ->
    let rounds = max 1 (min !rounds 10) in
    let json = ref [] in
    for r = 1 to rounds do
      List.iter
        (fun (s_name, scheme) ->
          let (module S : Smr_core.Smr_intf.S) = scheme in
          let seed = (base_seed * 1_000_003) + (r * 7919) + Hashtbl.hash ("chaos", s_name) in
          let c = chaos_round scheme ~scheme:s_name ~properties:S.properties ~seed in
          Printf.printf
            "chaos(%s) round %d  crashes=%d recoveries=%d adoptions=%d rec_ms=%.2f/%.2f  wasted base/tail=%d/%d  %s\n%!"
            s_name r c.c_crashes c.c_recoveries c.c_adoptions c.c_recovery_ms_mean
            c.c_recovery_ms_max c.c_baseline_peak c.c_tail_peak
            (Watchdog.to_string c.c_watchdog);
          json := chaos_cell_json c :: !json)
        chaos_schemes
    done;
    (match !json_file with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Printf.sprintf "{\"schema_version\":%d,\"results\":[\n  %s\n]}\n"
           Mp_harness.Runner.schema_version
           (String.concat ",\n  " (List.rev !json)));
      close_out oc;
      Printf.printf "[wrote %d chaos verdicts to %s]\n%!" (List.length !json) path);
    print_endline "CHAOS SOAK CLEAN"
  | None, None, None ->
    let t_end = Unix.gettimeofday () +. (!minutes *. 60.0) in
    let seed = ref 0 in
    while Unix.gettimeofday () < t_end do
      incr seed;
      List.iter
        (fun (ds_name, make) ->
          List.iter
            (fun (s_name, s) ->
              round (make s) ~seed:(!seed * 7919);
              Printf.printf "%s(%s) round %d ok\n%!" ds_name s_name !seed)
            schemes)
        structures
    done;
    print_endline "SOAK CLEAN"
  | None, None, Some base_seed ->
    let json = ref [] in
    for r = 1 to !rounds do
      List.iter
        (fun (ds_name, make) ->
          List.iter
            (fun (s_name, scheme) ->
              let (module S : Smr_core.Smr_intf.S) = scheme in
              (* Derive a distinct deterministic seed per (round, cell) so a
                 failure is reproducible from the base seed alone. *)
              let seed = (base_seed * 1_000_003) + (r * 7919) + Hashtbl.hash (ds_name, s_name) in
              let plan, v, crashed, pinning =
                fault_round (make scheme) ~scheme:s_name ~properties:S.properties ~seed
              in
              Printf.printf "%s(%s) round %d %s  crashed=%s pinning=%s  %s\n%!" ds_name s_name r
                (Fault.plan_to_string plan) (fmt_tids crashed) (fmt_tids pinning)
                (Watchdog.to_string v);
              json :=
                Printf.sprintf
                  "{\"round\":%d,\"ds\":\"%s\",\"scheme\":\"%s\",\"seed\":%d,\"crashed\":%s,\"pinning\":%s,%s}"
                  r ds_name s_name seed (fmt_tids crashed) (fmt_tids pinning)
                  (Watchdog.json_fields (Some v))
                :: !json)
            schemes)
        structures;
      (* Same plans through the request-service path: faults land inside
         the shard domains, under batched SMR windows. *)
      List.iter
        (fun (s_name, scheme) ->
          let (module S : Smr_core.Smr_intf.S) = scheme in
          let seed = (base_seed * 1_000_003) + (r * 7919) + Hashtbl.hash ("service", s_name) in
          let plan, v, crashed, pinning, batch, lg =
            service_fault_round scheme ~scheme:s_name ~properties:S.properties ~seed
          in
          let module Loadgen = Mp_service.Loadgen in
          let h = lg.Loadgen.latency in
          let p q = Mp_util.Histogram.percentile_ns h q in
          Printf.printf
            "service(%s) round %d B=%d %s  crashed=%s pinning=%s  %s  p50/p99/p99.9=%d/%d/%dns\n%!"
            s_name r batch (Fault.plan_to_string plan) (fmt_tids crashed) (fmt_tids pinning)
            (Watchdog.to_string v) (p 50.0) (p 99.0) (p 99.9);
          json :=
            Printf.sprintf
              "{\"round\":%d,\"ds\":\"service-hash\",\"scheme\":\"%s\",\"seed\":%d,\"batch\":%d,\"crashed\":%s,\"pinning\":%s,\"submitted\":%d,\"completed\":%d,\"rejected\":%d,\"drops\":%d,\"ring_full\":%d,\"busy\":%d,\"deadline_exceeded\":%d,\"lat_p50_ns\":%d,\"lat_p99_ns\":%d,\"lat_p999_ns\":%d,%s}"
              r s_name seed batch (fmt_tids crashed) (fmt_tids pinning) lg.Loadgen.submitted
              lg.Loadgen.completed lg.Loadgen.rejected lg.Loadgen.drops lg.Loadgen.ring_full
              lg.Loadgen.busy lg.Loadgen.deadline_exceeded (p 50.0) (p 99.0) (p 99.9)
              (Watchdog.json_fields (Some v))
            :: !json)
        schemes
    done;
    (match !json_file with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Printf.sprintf "{\"schema_version\":%d,\"results\":[\n  %s\n]}\n"
           Mp_harness.Runner.schema_version
           (String.concat ",\n  " (List.rev !json)));
      close_out oc;
      Printf.printf "[wrote %d verdicts to %s]\n%!" (List.length !json) path);
    print_endline "FAULT SOAK CLEAN"
