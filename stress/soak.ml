(* Long-running safety soak across the full (structure × scheme) matrix
   with the use-after-free detector armed. Not part of `dune runtest` —
   run manually:

     dune exec stress/soak.exe -- [minutes]
     dune exec stress/soak.exe -- --faults SEED [--rounds N] [--json FILE]

   With --faults, every round arms a seeded random fault plan
   (Mp_util.Fault.random_plan): interior stalls, yield storms and at most
   one permanent crash per round, landing inside the SMR protect/validate
   windows, retire/scan, and the pool's spill/refill. Each cell is then
   judged twice — the UAF detector must stay silent, and the waste-bound
   watchdog must report the scheme's declared bound held (EBR's reference
   bound is advisory: its violations are expected and logged, not
   fatal). Every fault round also fires the same plans through the
   request-service path (stress the batched SMR windows inside shard
   domains, with open-loop latency percentiles in the JSON). *)

module Fault = Mp_util.Fault
module Watchdog = Mp_harness.Watchdog

let structures : (string * ((module Smr_core.Smr_intf.S) -> (module Dstruct.Set_intf.SET))) list =
  [
    ("list", fun (module S) -> (module Dstruct.Michael_list.Make (S)));
    ("skiplist", fun (module S) -> (module Dstruct.Skiplist.Make (S)));
    ("bst", fun (module S) -> (module Dstruct.Nm_bst.Make (S)));
  ]

let schemes : (string * (module Smr_core.Smr_intf.S)) list =
  [
    ("mp", (module Mp.Margin_ptr));
    ("hp", (module Smr_schemes.Hp));
    ("ebr", (module Smr_schemes.Ebr));
    ("he", (module Smr_schemes.He));
    ("ibr", (module Smr_schemes.Ibr));
  ]

let threads = 4
let ops = 20_000

let prefill (type a) (module SET : Dstruct.Set_intf.SET with type t = a) ~range : a =
  let config = Smr_core.Config.default ~threads in
  let t =
    SET.create ~threads ~capacity:((range * 8) + (ops * threads) + 1024) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  SET.flush s0;
  t

let round (module SET : Dstruct.Set_intf.SET) ~seed =
  let range = if seed mod 2 = 0 then 256 else 64 in
  let t = prefill (module SET) ~range in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed ~tid in
            for i = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              if i mod 1000 = 0 then
                ignore (SET.contains_paused s k ~pause:(fun () -> Unix.sleepf 0.0005) : bool)
              else
                match Mp_util.Rng.below rng 4 with
                | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                | 1 -> ignore (SET.remove s k : bool)
                | _ -> ignore (SET.contains s k : bool)
            done;
            SET.flush s))
  in
  Array.iter Domain.join domains;
  SET.check t;
  if SET.violations t <> 0 then failwith (SET.name ^ ": use-after-free detected")

(* One fault round: prefill, arm the plan, churn, and while the workers
   run sample the wasted counter into the watchdog. Crashed workers skip
   their flush — their announcements stay published, which is the
   scenario. *)
let fault_round (module SET : Dstruct.Set_intf.SET) ~scheme ~properties ~seed =
  let range = if seed mod 2 = 0 then 256 else 64 in
  let t = prefill (module SET) ~range in
  let config = Smr_core.Config.default ~threads in
  let plan = Fault.random_plan ~seed ~threads in
  let wd =
    (* live ceiling: up to [range] keys, ×2 for the BST's routers *)
    Watchdog.create
      (Watchdog.spec_for ~scheme ~properties ~config ~threads ~size_at_arm:(2 * range))
  in
  Fault.arm ~threads plan;
  let finished = Atomic.make 0 in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed ~tid in
            (try
               for _ = 1 to ops do
                 let k = Mp_util.Rng.below rng range in
                 match Mp_util.Rng.below rng 4 with
                 | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                 | 1 -> ignore (SET.remove s k : bool)
                 | _ -> ignore (SET.contains s k : bool)
               done;
               SET.flush s
             with Fault.Crashed _ -> ());
            Atomic.incr finished))
  in
  while Atomic.get finished < threads do
    Unix.sleepf 0.002;
    Watchdog.observe wd ~wasted:(SET.smr_stats t).Smr_core.Smr_intf.wasted
  done;
  Array.iter Domain.join domains;
  let crashed = Fault.crashed_tids () in
  Fault.disarm ();
  let pinning = SET.pinning_tids t in
  SET.check t;
  if SET.violations t <> 0 then
    failwith (Printf.sprintf "%s: use-after-free under %s" SET.name (Fault.plan_to_string plan));
  let v = Watchdog.verdict wd in
  if not (Watchdog.ok v) then
    failwith
      (Printf.sprintf "%s: waste bound broken under %s: %s" SET.name (Fault.plan_to_string plan)
         (Watchdog.to_string v));
  (plan, v, crashed, pinning)

(* One service-path fault round: the same seeded plans, but firing inside
   the shard domains of the request-service layer, where operations run
   under batched SMR windows (a crash mid-batch kills the shard with the
   whole window's announcements still published). The watchdog samples
   from the load generator's tick; the open-loop (Poisson) client records
   end-to-end latency, coordinated-omission corrected, so a stalled or
   crashed shard shows up in p99/p99.9 instead of disappearing behind
   back-pressure. *)
let service_fault_round scheme_mod ~scheme ~properties ~seed =
  let module Service = Mp_service.Service in
  let module Loadgen = Mp_service.Loadgen in
  let (module SET : Dstruct.Set_intf.SET) =
    Mp_harness.Instances.make Mp_harness.Instances.Hash_ds scheme_mod
  in
  let shards = 2 in
  let batch = 1 + (seed mod 48) in
  let range = if seed mod 2 = 0 then 512 else 128 in
  let config = Smr_core.Config.default ~threads:shards in
  let t =
    SET.create ~threads:shards ~capacity:((range * 8) + (shards * 65536)) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  SET.flush s0;
  let plan = Fault.random_plan ~seed ~threads:shards in
  let wd =
    Watchdog.create
      (Watchdog.spec_for ~scheme ~properties ~config ~threads:shards ~size_at_arm:(2 * range))
  in
  Fault.arm ~threads:shards plan;
  let svc = Service.create (module SET) t ~shards ~batch ~ring_capacity:128 in
  Service.start svc;
  let lg =
    Loadgen.run
      ~tick:(fun () ->
        Watchdog.observe wd ~wasted:(SET.smr_stats t).Smr_core.Smr_intf.wasted)
      svc
      {
        Loadgen.clients = 2;
        duration_s = 0.6;
        warmup_s = 0.0;
        read_pct = 50;
        insert_pct = 30;
        (* Random multi-get widths so fault plans also fire inside the
           intra-request window rollover path. *)
        mget = 1 + (seed mod 4);
        key_range = range;
        zipf_alpha = None;
        seed;
        mode = Loadgen.Open { rate = 30_000.0; window = 32 };
      }
  in
  Service.stop svc;
  let crashed = Fault.crashed_tids () in
  Fault.disarm ();
  let pinning = SET.pinning_tids t in
  SET.check t;
  if SET.violations t <> 0 then
    failwith
      (Printf.sprintf "service(%s): use-after-free under %s (B=%d)" scheme
         (Fault.plan_to_string plan) batch);
  let v = Watchdog.verdict wd in
  if not (Watchdog.ok v) then
    failwith
      (Printf.sprintf "service(%s): waste bound broken under %s (B=%d): %s" scheme
         (Fault.plan_to_string plan) batch (Watchdog.to_string v));
  (plan, v, crashed, pinning, batch, lg)

let fmt_tids tids = "[" ^ String.concat "," (List.map string_of_int tids) ^ "]"

let () =
  let minutes = ref 5.0 in
  let fault_seed = ref None in
  let rounds = ref 10 in
  let json_file = ref None in
  let rec parse = function
    | "--faults" :: s :: rest ->
      fault_seed := Some (int_of_string s);
      parse rest
    | "--rounds" :: n :: rest ->
      rounds := int_of_string n;
      parse rest
    | "--json" :: f :: rest ->
      json_file := Some f;
      parse rest
    | m :: rest ->
      (try minutes := float_of_string m with _ -> ());
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  match !fault_seed with
  | None ->
    let t_end = Unix.gettimeofday () +. (!minutes *. 60.0) in
    let seed = ref 0 in
    while Unix.gettimeofday () < t_end do
      incr seed;
      List.iter
        (fun (ds_name, make) ->
          List.iter
            (fun (s_name, s) ->
              round (make s) ~seed:(!seed * 7919);
              Printf.printf "%s(%s) round %d ok\n%!" ds_name s_name !seed)
            schemes)
        structures
    done;
    print_endline "SOAK CLEAN"
  | Some base_seed ->
    let json = ref [] in
    for r = 1 to !rounds do
      List.iter
        (fun (ds_name, make) ->
          List.iter
            (fun (s_name, scheme) ->
              let (module S : Smr_core.Smr_intf.S) = scheme in
              (* Derive a distinct deterministic seed per (round, cell) so a
                 failure is reproducible from the base seed alone. *)
              let seed = (base_seed * 1_000_003) + (r * 7919) + Hashtbl.hash (ds_name, s_name) in
              let plan, v, crashed, pinning =
                fault_round (make scheme) ~scheme:s_name ~properties:S.properties ~seed
              in
              Printf.printf "%s(%s) round %d %s  crashed=%s pinning=%s  %s\n%!" ds_name s_name r
                (Fault.plan_to_string plan) (fmt_tids crashed) (fmt_tids pinning)
                (Watchdog.to_string v);
              json :=
                Printf.sprintf
                  "{\"round\":%d,\"ds\":\"%s\",\"scheme\":\"%s\",\"seed\":%d,\"crashed\":%s,\"pinning\":%s,%s}"
                  r ds_name s_name seed (fmt_tids crashed) (fmt_tids pinning)
                  (Watchdog.json_fields (Some v))
                :: !json)
            schemes)
        structures;
      (* Same plans through the request-service path: faults land inside
         the shard domains, under batched SMR windows. *)
      List.iter
        (fun (s_name, scheme) ->
          let (module S : Smr_core.Smr_intf.S) = scheme in
          let seed = (base_seed * 1_000_003) + (r * 7919) + Hashtbl.hash ("service", s_name) in
          let plan, v, crashed, pinning, batch, lg =
            service_fault_round scheme ~scheme:s_name ~properties:S.properties ~seed
          in
          let module Loadgen = Mp_service.Loadgen in
          let h = lg.Loadgen.latency in
          let p q = Mp_util.Histogram.percentile_ns h q in
          Printf.printf
            "service(%s) round %d B=%d %s  crashed=%s pinning=%s  %s  p50/p99/p99.9=%d/%d/%dns\n%!"
            s_name r batch (Fault.plan_to_string plan) (fmt_tids crashed) (fmt_tids pinning)
            (Watchdog.to_string v) (p 50.0) (p 99.0) (p 99.9);
          json :=
            Printf.sprintf
              "{\"round\":%d,\"ds\":\"service-hash\",\"scheme\":\"%s\",\"seed\":%d,\"batch\":%d,\"crashed\":%s,\"pinning\":%s,\"completed\":%d,\"rejected\":%d,\"drops\":%d,\"lat_p50_ns\":%d,\"lat_p99_ns\":%d,\"lat_p999_ns\":%d,%s}"
              r s_name seed batch (fmt_tids crashed) (fmt_tids pinning) lg.Loadgen.completed
              lg.Loadgen.rejected lg.Loadgen.drops (p 50.0) (p 99.0) (p 99.9)
              (Watchdog.json_fields (Some v))
            :: !json)
        schemes
    done;
    (match !json_file with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Printf.sprintf "{\"schema_version\":%d,\"results\":[\n  %s\n]}\n"
           Mp_harness.Runner.schema_version
           (String.concat ",\n  " (List.rev !json)));
      close_out oc;
      Printf.printf "[wrote %d verdicts to %s]\n%!" (List.length !json) path);
    print_endline "FAULT SOAK CLEAN"
