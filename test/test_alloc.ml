(* Zero-allocation read path: regression tests.

   The traversal hot paths were rewritten to allocate nothing (per-session
   cursors, top-level recursion, no per-op closures) and to batch the
   traversed counter into a per-session int flushed once per operation.
   These tests pin both properties down:

   - a read-only [contains] loop on michael-list(leaky) must allocate
     ~0 minor words per operation (measured via [Gc.minor_words] deltas);
   - the batched traversed counter must flush exactly once per operation
     (the striped counter shows the exact per-op visit count, no more) and
     lose no counts when sessions run on separate domains. *)

module L = Dstruct.Michael_list.Make (Smr_schemes.Leaky)
module Config = Smr_core.Config

let make ~threads ~size =
  let t =
    L.create ~threads ~capacity:((4 * size) + 1024) (Config.default ~threads)
  in
  let s0 = L.session t ~tid:0 in
  for k = 0 to size - 1 do
    ignore (L.insert s0 ~key:k ~value:k : bool)
  done;
  (t, s0)

(* -- allocation regression ------------------------------------------------ *)

let read_path_alloc_free () =
  let size = 256 in
  let t, s = make ~threads:1 ~size in
  ignore (t : L.t);
  (* Warm the path first so one-time work (lazy stripes, first minor-heap
     fill pattern) is not billed to the measured loop. *)
  for i = 0 to 2_047 do
    ignore (L.contains s (i land 511) : bool)
  done;
  let ops = 50_000 in
  let before = Gc.minor_words () in
  for i = 0 to ops - 1 do
    (* Half hits (keys 0..255 present), half misses — both paths must be
       allocation-free. *)
    ignore (L.contains s (i land 511) : bool)
  done;
  let per_op = (Gc.minor_words () -. before) /. float_of_int ops in
  if per_op >= 1.0 then
    Alcotest.failf "read path allocates %.3f minor words/op (expected ~0)" per_op

(* -- traversed-counter batching ------------------------------------------- *)

(* On a list holding 0..n-1, [contains k] visits exactly the k nodes with
   smaller keys plus the stopping node: k+1 visits. The striped counter
   must show exactly that after each operation — a lost flush would show
   less, a double flush more. *)
let traversed_flush_per_op () =
  let n = 32 in
  let t, s = make ~threads:1 ~size:n in
  let base = L.traversed t in
  ignore (L.contains s 5 : bool);
  Alcotest.(check int) "one op flushes its exact visit count" 6 (L.traversed t - base);
  let base = L.traversed t in
  ignore (L.contains s (n - 1) : bool);
  Alcotest.(check int) "last key visits the whole list" n (L.traversed t - base);
  (* The per-op flush left nothing behind: an explicit flush adds 0. *)
  let base = L.traversed t in
  L.flush s;
  Alcotest.(check int) "no residue after the per-op flush" 0 (L.traversed t - base)

let traversed_no_loss_across_domains () =
  let threads = 4 in
  let n = 64 in
  let t, _s0 = make ~threads ~size:n in
  let base = L.traversed t in
  let per_domain_ops = 1_000 in
  let key = 17 in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = L.session t ~tid in
            for _ = 1 to per_domain_ops do
              ignore (L.contains s key : bool)
            done))
  in
  Array.iter Domain.join domains;
  (* Read-only on a leaky list: every op deterministically visits key+1
     nodes, so the striped total is exact iff no flush was lost. *)
  Alcotest.(check int) "no visits lost across domains"
    (threads * per_domain_ops * (key + 1))
    (L.traversed t - base)

let () =
  Alcotest.run "alloc"
    [
      ( "read-path",
        [ Alcotest.test_case "contains allocates ~0 words/op" `Quick read_path_alloc_free ] );
      ( "traversed-batching",
        [
          Alcotest.test_case "exact flush per op" `Quick traversed_flush_per_op;
          Alcotest.test_case "no loss across domains" `Quick traversed_no_loss_across_domains;
        ] );
    ]
