(* Elastic multi-arena mempool: arena-id packing, the online
   attach/detach lifecycle, the SMR detach barrier blocking while a
   reader pins an arena and completing once it lets go (per scheme), and
   a randomized spike → grow → crash → adopt → shrink scenario with
   exact slot conservation. *)

module Config = Smr_core.Config
module Core = Mempool.Core
module Fault = Mp_util.Fault

(* -- arena/offset packing ------------------------------------------------- *)

let arena_pack_roundtrip =
  QCheck.Test.make ~name:"arena id pack/unpack roundtrip" ~count:1000
    QCheck.(triple (int_range 1 20) (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (off_bits, arena, offset) ->
      let offset = offset land ((1 lsl off_bits) - 1) in
      let max_arenas = Handle.max_arenas_for ~off_bits ~arena_slots:(1 lsl off_bits) in
      QCheck.assume (max_arenas > 0);
      let arena = arena mod max_arenas in
      let id = Handle.id_of_arena ~off_bits ~arena ~offset in
      Handle.arena_of_id ~off_bits id = arena
      && Handle.offset_of_id ~off_bits id = offset
      && id >= 0 && id <= Handle.max_id)

(* Every id of every admissible arena stays inside the 32-bit node-id
   field a handle can carry — the property max_arenas_for is for. *)
let max_arenas_fits =
  QCheck.Test.make ~name:"max_arenas_for keeps the last id packable" ~count:500
    QCheck.(int_range 1 24)
    (fun off_bits ->
      let arena_slots = 1 lsl off_bits in
      let n = Handle.max_arenas_for ~off_bits ~arena_slots in
      n > 0
      && Handle.id_of_arena ~off_bits ~arena:(n - 1) ~offset:(arena_slots - 1)
         <= Handle.max_id
      (* one more arena would overflow *)
      && (n lsl off_bits) + arena_slots - 1 > Handle.max_id)

let off_bits_is_minimal () =
  List.iter
    (fun (capacity, expect) ->
      let p = Core.create ~capacity ~threads:1 () in
      Alcotest.(check int)
        (Printf.sprintf "off_bits for capacity %d" capacity)
        expect (Core.off_bits p))
    [ (1, 0); (2, 1); (3, 2); (64, 6); (65, 7); (4096, 12) ]

(* -- attach/detach lifecycle (pool only, no SMR) --------------------------- *)

let grow_on_demand () =
  let capacity = 16 in
  let p = Core.create ~capacity ~threads:1 ~max_arenas:3 () in
  Alcotest.(check int) "one arena at birth" 1 (Core.attached_arenas p);
  Alcotest.(check int) "resident = capacity" capacity (Core.resident_slots p);
  let ids = Array.init 40 (fun _ -> Core.alloc p ~tid:0) in
  Alcotest.(check int) "grown to 3 arenas" 3 (Core.attached_arenas p);
  Alcotest.(check int) "two attach events" 2 (Core.arenas_attached p);
  Alcotest.(check int) "resident tripled" (3 * capacity) (Core.resident_slots p);
  (* ids unique, and the growth actually handed out high-arena slots *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun id ->
      if Hashtbl.mem seen id then Alcotest.failf "slot %d handed out twice" id;
      Hashtbl.add seen id ())
    ids;
  let off_bits = Core.off_bits p in
  Alcotest.(check bool) "arena 2 slots in circulation" true
    (Array.exists (fun id -> Handle.arena_of_id ~off_bits id = 2) ids);
  (* fill the rest: exhaustion at max_arenas is hard *)
  for _ = 1 to (3 * capacity) - 40 do
    ignore (Core.alloc p ~tid:0 : int)
  done;
  Alcotest.check_raises "exhausted at max_arenas" Mempool.Exhausted (fun () ->
      ignore (Core.alloc p ~tid:0 : int));
  Alcotest.(check bool) "hard exhaustion" true (Core.last_alloc_hard p ~tid:0)

let fixed_pool_exhaustion_is_soft () =
  let p = Core.create ~capacity:8 ~threads:1 () in
  for _ = 1 to 8 do
    ignore (Core.alloc p ~tid:0 : int)
  done;
  Alcotest.check_raises "exhausted" Mempool.Exhausted (fun () ->
      ignore (Core.alloc p ~tid:0 : int));
  Alcotest.(check bool) "never hard for max_arenas = 1" false (Core.last_alloc_hard p ~tid:0)

let shrink_lifecycle () =
  let capacity = 16 in
  let p = Core.create ~capacity ~threads:1 ~max_arenas:3 () in
  let ids = Array.init 40 (fun _ -> Core.alloc p ~tid:0) in
  let off_bits = Core.off_bits p in
  let probe = (* an arena-2 slot whose metadata must survive the detach *)
    Array.to_list ids |> List.find (fun id -> Handle.arena_of_id ~off_bits id = 2)
  in
  let inc0 = Core.incarnation p probe in
  Array.iter (fun id -> Core.free p ~tid:0 id) ids;
  Core.release_local p ~tid:0;
  (* only the topmost arena is drainable *)
  Alcotest.(check (option int)) "drain arena 2" (Some 2) (Core.request_shrink p);
  Alcotest.(check (option int)) "no second drain" None (Core.request_shrink p);
  let token =
    match Core.detach_ready p with
    | None -> Alcotest.fail "all slots parked: detach must be ready"
    | Some (token, base, size) ->
      Alcotest.(check int) "draining arena" 2 (Core.drain_arena token);
      Alcotest.(check int) "base" (2 lsl off_bits) base;
      Alcotest.(check int) "size" capacity size;
      token
  in
  Alcotest.(check int) "parked slots are the drain cost" capacity (Core.detaching_slots p);
  Alcotest.(check int) "stamp unset" (-1) (Core.detach_stamp p ~token);
  Core.set_detach_stamp p ~token 42;
  Alcotest.(check int) "stamp set once" 42 (Core.detach_stamp p ~token);
  Alcotest.(check bool) "detach completes" true (Core.complete_detach p token);
  Alcotest.(check int) "two arenas left" 2 (Core.attached_arenas p);
  Alcotest.(check int) "resident shrank" (2 * capacity) (Core.resident_slots p);
  Alcotest.(check int) "one detach event" 1 (Core.arenas_detached p);
  (* the metadata shim outlives the detach: stale ids still resolve *)
  Alcotest.(check int) "incarnation survives" (inc0 + 1) (Core.incarnation p probe);
  Alcotest.(check bool) "stale id reads as free" true (Core.is_free p probe);
  (* cancel path: an aborted drain returns every slot to circulation *)
  Alcotest.(check (option int)) "drain arena 1" (Some 1) (Core.request_shrink p);
  Alcotest.(check bool) "cancel" true (Core.cancel_shrink p);
  Alcotest.(check bool) "nothing to cancel twice" false (Core.cancel_shrink p);
  (* exact conservation: both remaining arenas hand out every slot
     exactly once, with no grow needed *)
  let seen = Hashtbl.create 64 in
  for _ = 1 to 2 * capacity do
    let id = Core.alloc p ~tid:0 in
    if Hashtbl.mem seen id then Alcotest.failf "slot %d handed out twice" id;
    if Handle.arena_of_id ~off_bits id = 2 then
      Alcotest.failf "slot %d of the detached arena resurfaced" id;
    Hashtbl.add seen id ()
  done;
  Alcotest.(check int) "no grow during the drain-down" 2 (Core.attached_arenas p);
  (* re-grow re-attaches the detached arena index with fresh free lists *)
  ignore (Core.alloc p ~tid:0 : int);
  Alcotest.(check int) "regrown" 3 (Core.attached_arenas p);
  Alcotest.(check int) "attach counted" 3 (Core.arenas_attached p)

(* A payload access into a detached arena must raise — the honest analog
   of dereferencing an unmapped page. *)
let detached_payload_raises () =
  let capacity = 16 in
  let p = Mempool.create ~capacity ~threads:1 ~max_arenas:2 (fun i -> i) in
  let c = Mempool.core p in
  let ids = Array.init 24 (fun _ -> Mempool.alloc p ~tid:0) in
  let off_bits = Core.off_bits c in
  let high =
    Array.to_list ids |> List.find (fun id -> Handle.arena_of_id ~off_bits id = 1)
  in
  Alcotest.(check int) "payload live" high (Mempool.get p high);
  Array.iter (fun id -> Mempool.free p ~tid:0 id) ids;
  Core.release_local c ~tid:0;
  Alcotest.(check (option int)) "drain" (Some 1) (Core.request_shrink c);
  let token =
    match Core.detach_ready c with
    | None -> Alcotest.fail "detach must be ready"
    | Some (token, _, _) -> token
  in
  Core.set_detach_stamp c ~token 0;
  Alcotest.(check bool) "detached" true (Core.complete_detach c token);
  (match Mempool.get p high with
  | (_ : int) -> Alcotest.fail "access into a detached arena must raise"
  | exception Invalid_argument _ -> ());
  (* arena 0 payloads are untouched *)
  let low = Mempool.alloc p ~tid:0 in
  Alcotest.(check int) "arena 0 payload intact" low (Mempool.get p low)

(* Regression for the drain-identity ABA: quiescence evidence gathered
   under one drain must never complete a later drain of the same arena.
   Before drain tokens carried a generation, a poller that stalled
   across cancel + re-drain could CAS the bare arena index and unmap the
   arena against the first drain's older stamp. *)
let stale_drain_token_refused () =
  let capacity = 16 in
  let p = Core.create ~capacity ~threads:1 ~max_arenas:2 () in
  let ids = Array.init 24 (fun _ -> Core.alloc p ~tid:0) in
  Array.iter (fun id -> Core.free p ~tid:0 id) ids;
  Core.release_local p ~tid:0;
  Alcotest.(check (option int)) "drain arena 1" (Some 1) (Core.request_shrink p);
  let token1 =
    match Core.detach_ready p with
    | Some (token, _, _) -> token
    | None -> Alcotest.fail "first drain must reach full park"
  in
  Core.set_detach_stamp p ~token:token1 7;
  Alcotest.(check bool) "cancel" true (Core.cancel_shrink p);
  (* a fresh drain of the same arena gets a fresh identity *)
  Alcotest.(check (option int)) "re-drain arena 1" (Some 1) (Core.request_shrink p);
  let token2 =
    match Core.detach_ready p with
    | Some (token, _, _) -> token
    | None -> Alcotest.fail "second drain must reach full park"
  in
  Alcotest.(check bool) "tokens name distinct drains" true (token1 <> token2);
  Alcotest.(check int) "same arena under both tokens" (Core.drain_arena token1)
    (Core.drain_arena token2);
  Alcotest.(check int) "drain #1 stamp invisible to drain #2" (-1)
    (Core.detach_stamp p ~token:token2);
  Alcotest.(check bool) "stale completion refused" false (Core.complete_detach p token1);
  Alcotest.(check int) "arena survives the stale poller" 2 (Core.attached_arenas p);
  Core.set_detach_stamp p ~token:token2 9;
  Alcotest.(check bool) "current completion succeeds" true (Core.complete_detach p token2);
  Alcotest.(check int) "detached" 1 (Core.attached_arenas p);
  Alcotest.(check int) "one detach event" 1 (Core.arenas_detached p)

(* Detach.poll's state machine: stamps exactly once at full park,
   completes only when the quiescence gate passes. *)
let detach_poll_state_machine () =
  let p = Core.create ~capacity:8 ~threads:1 ~max_arenas:2 () in
  let ids = Array.init 12 (fun _ -> Core.alloc p ~tid:0) in
  Array.iter (fun id -> Core.free p ~tid:0 id) ids;
  Core.release_local p ~tid:0;
  let stamps = ref 0 and quiescent = ref false in
  let poll () =
    Smr_core.Detach.poll p
      ~stamp:(fun () -> incr stamps; 7)
      ~quiescent:(fun ~base:_ ~size:_ ~stamp ->
        Alcotest.(check int) "gate sees the stamped value" 7 stamp;
        !quiescent)
  in
  poll ();
  Alcotest.(check int) "no drain requested: no stamp" 0 !stamps;
  Alcotest.(check (option int)) "request" (Some 1) (Core.request_shrink p);
  poll ();
  Alcotest.(check int) "stamped at full park" 1 !stamps;
  let token =
    match Core.detach_ready p with
    | Some (token, _, _) -> token
    | None -> Alcotest.fail "full park must persist"
  in
  Alcotest.(check int) "stamp recorded" 7 (Core.detach_stamp p ~token);
  poll ();
  poll ();
  Alcotest.(check int) "stamped once" 1 !stamps;
  Alcotest.(check int) "blocked while not quiescent" 2 (Core.attached_arenas p);
  quiescent := true;
  poll ();
  Alcotest.(check int) "detached once quiescent" 1 (Core.attached_arenas p)

(* -- per-scheme: shrink blocks while a reader pins the arena --------------- *)

module Pinned (S : Smr_core.Smr_intf.S) = struct
  (* A reader holds a protected reference to an arena-1 node across the
     whole drain: the retired node must survive every scan (so the arena
     never reaches full park), and the detach must complete only after
     the reader ends its operation — through the ordinary scan path, with
     no extra coordination. *)
  let shrink_waits_for_reader () =
    let capacity = 128 in
    let pool =
      Core.create ~capacity ~threads:2 ~fair_share:32 ~max_arenas:2 ()
    in
    let config = Config.with_empty_freq (Config.default ~threads:2) 1 in
    let config = Config.with_max_arenas config 2 in
    let smr = S.create ~pool ~threads:2 config in
    let th0 = S.thread smr ~tid:0 and th1 = S.thread smr ~tid:1 in
    let off_bits = Core.off_bits pool in
    (* fill past one arena so the pool grows, keeping every id *)
    S.start_op th0;
    let ids = ref [] in
    while Core.attached_arenas pool < 2 do
      ids := S.alloc th0 :: !ids
    done;
    for _ = 1 to 8 do
      ids := S.alloc th0 :: !ids
    done;
    S.end_op th0;
    let x = List.find (fun id -> Handle.arena_of_id ~off_bits id = 1) !ids in
    let root = Atomic.make (S.handle_of th0 x) in
    (* reader protects the arena-1 node mid-operation *)
    S.start_op th1;
    let w = S.read th1 ~refno:0 root in
    Alcotest.(check int) "reader sees the node" x (Handle.id w);
    (* writer unlinks and retires everything *)
    S.start_op th0;
    Atomic.set root Handle.null;
    List.iter (S.retire th0) !ids;
    S.end_op th0;
    Alcotest.(check (option int)) "drain arena 1" (Some 1) (Core.request_shrink pool);
    Core.release_local pool ~tid:0;
    (* the reader's protection must hold the detach open *)
    for _ = 1 to 3 do
      S.flush th0
    done;
    Alcotest.(check int) "detach blocked while pinned" 2 (Core.attached_arenas pool);
    Alcotest.(check int) "no detach event" 0 (Core.arenas_detached pool);
    (* reader lets go: the next scans park the last slot, stamp, and
       complete the detach through the scheme's own quiescence gate *)
    S.end_op th1;
    let rounds = ref 0 in
    while Core.attached_arenas pool > 1 && !rounds < 20 do
      incr rounds;
      S.flush th0
    done;
    Alcotest.(check int) "detached after release" 1 (Core.attached_arenas pool);
    Alcotest.(check int) "one detach event" 1 (Core.arenas_detached pool);
    Alcotest.(check int) "resident back to one arena" capacity (Core.resident_slots pool);
    (* exact conservation: arena 0 hands out every slot exactly once,
       with no grow *)
    Alcotest.(check int) "nothing live" 0 (Core.live_count pool);
    Core.release_local pool ~tid:0;
    Core.release_local pool ~tid:1;
    let seen = Hashtbl.create 64 in
    for _ = 1 to capacity do
      let id = Core.alloc pool ~tid:0 in
      if Hashtbl.mem seen id then Alcotest.failf "slot %d handed out twice" id;
      if Handle.arena_of_id ~off_bits id <> 0 then
        Alcotest.failf "slot %d of the detached arena resurfaced" id;
      Hashtbl.add seen id ()
    done;
    Alcotest.(check int) "no grow needed" 1 (Core.attached_arenas pool)
end

let pinned_cases =
  List.map
    (fun (name, (module S : Smr_core.Smr_intf.S)) ->
      let module P = Pinned (S) in
      Alcotest.test_case
        (Printf.sprintf "%s: shrink waits for a pinned reader" name)
        `Quick P.shrink_waits_for_reader)
    [
      ("hp", (module Smr_schemes.Hp : Smr_core.Smr_intf.S));
      ("ebr", (module Smr_schemes.Ebr));
      ("he", (module Smr_schemes.He));
      ("ibr", (module Smr_schemes.Ibr));
      ("mp", (module Mp.Margin_ptr));
    ]

(* -- randomized end-to-end: spike → grow → crash → adopt → shrink ---------- *)

(* One scenario per seed, on the hash table with the UAF detector armed:
   worker 0 inserts a working set 1.5 arenas wide (the pool must grow);
   worker 1 churns under a fault plan that crashes it inside a
   protect/validate window, leaving its reservations published. After
   the join, the dead tid is adopted (releasing everything it pinned and
   its magazines), the keys are removed, and repeated shrink requests
   must drain the pool back to a single arena — no use-after-free, and
   arena 0 conserving every slot exactly once. *)
let elastic_scenario seed =
  let capacity = 2048 and max_arenas = 4 and range = 4096 in
  let working_set = capacity * 3 / 2 in
  let threads = 3 in
  let (module SET : Dstruct.Set_intf.SET) =
    Mp_harness.Instances.make Mp_harness.Instances.Hash_ds
      (List.nth
         [
           Mp_harness.Instances.scheme_of_name "mp";
           Mp_harness.Instances.scheme_of_name "hp";
           Mp_harness.Instances.scheme_of_name "ebr";
           Mp_harness.Instances.scheme_of_name "he";
           Mp_harness.Instances.scheme_of_name "ibr";
         ]
         (seed mod 5))
  in
  let config = Config.with_max_arenas (Config.default ~threads) max_arenas in
  let t = SET.create ~threads ~capacity ~check_access:true config in
  let pool = SET.pool t in
  Fault.arm ~threads
    (Fault.plan
       ~label:(Printf.sprintf "elastic-scenario-%d" seed)
       [
         Fault.crash_event ~tid:1 ~point:Fault.Protect_validate
           ~after_hits:(100 + (seed mod 500));
       ]);
  let spiker =
    Domain.spawn (fun () ->
        let s = SET.session t ~tid:0 in
        for k = 0 to working_set - 1 do
          ignore (SET.insert s ~key:k ~value:k : bool)
        done;
        SET.flush s;
        Core.release_local pool ~tid:0)
  in
  let churner =
    Domain.spawn (fun () ->
        let s = SET.session t ~tid:1 in
        let rng = Mp_util.Rng.split ~seed ~tid:1 in
        (try
           for _ = 1 to 6_000 do
             let k = Mp_util.Rng.below rng range in
             match Mp_util.Rng.below rng 4 with
             | 0 | 1 -> ignore (SET.insert s ~key:k ~value:k : bool)
             | 2 -> ignore (SET.remove s k : bool)
             | _ -> ignore (SET.contains s k : bool)
           done;
           SET.flush s;
           Core.release_local pool ~tid:1
         with Fault.Crashed _ -> ()))
  in
  Domain.join spiker;
  Domain.join churner;
  let crashed = Fault.crashed_tids () in
  Fault.disarm ();
  if Core.attached_arenas pool < 2 then
    Alcotest.failf "seed %d: the spike never grew the pool" seed;
  (* adopt the corpse: releases its reservations and its magazines *)
  List.iter
    (fun tid ->
      SET.adopt t ~tid;
      Core.release_local pool ~tid)
    crashed;
  (* decay: remove everything, then keep asking for drains until the
     pool is back to one arena *)
  let s = SET.session t ~tid:2 in
  for k = 0 to range - 1 do
    ignore (SET.remove s k : bool)
  done;
  SET.flush s;
  let deadline = Unix.gettimeofday () +. 20.0 in
  while Core.attached_arenas pool > 1 && Unix.gettimeofday () < deadline do
    ignore (Core.request_shrink pool : int option);
    ignore (SET.insert s ~key:0 ~value:0 : bool);
    ignore (SET.remove s 0 : bool);
    SET.flush s;
    Core.release_local pool ~tid:2
  done;
  SET.check t;
  if SET.violations t <> 0 then Alcotest.failf "seed %d: use-after-free" seed;
  if Core.attached_arenas pool <> 1 then
    Alcotest.failf "seed %d: drains never completed (%d arenas)" seed
      (Core.attached_arenas pool);
  if Core.arenas_detached pool <> Core.arenas_attached pool then
    Alcotest.failf "seed %d: %d attaches vs %d detaches" seed
      (Core.arenas_attached pool) (Core.arenas_detached pool);
  if Core.resident_slots pool <> capacity then
    Alcotest.failf "seed %d: %d slots resident after full decay" seed
      (Core.resident_slots pool);
  (* exact slot conservation: what is not live must be allocatable from
     arena 0 exactly once, without growing *)
  for tid = 0 to threads - 1 do
    Core.release_local pool ~tid
  done;
  let free_slots = capacity - Core.live_count pool in
  let off_bits = Core.off_bits pool in
  let seen = Hashtbl.create 64 in
  for _ = 1 to free_slots do
    let id = Core.alloc pool ~tid:2 in
    if Hashtbl.mem seen id then Alcotest.failf "seed %d: slot %d handed out twice" seed id;
    if Handle.arena_of_id ~off_bits id <> 0 then
      Alcotest.failf "seed %d: detached-arena slot %d resurfaced" seed id;
    Hashtbl.add seen id ()
  done;
  if Core.attached_arenas pool <> 1 then
    Alcotest.failf "seed %d: a slot was lost (draining the free lists forced a grow)" seed;
  true

let qcheck_elastic =
  QCheck.Test.make ~count:4 ~name:"spike/grow/crash/adopt/shrink conserves every slot"
    QCheck.(map (fun n -> abs n + 1) small_int)
    elastic_scenario

let () =
  Alcotest.run "elastic"
    [
      ( "packing",
        QCheck_alcotest.to_alcotest arena_pack_roundtrip
        :: QCheck_alcotest.to_alcotest max_arenas_fits
        :: [ Alcotest.test_case "off_bits minimal" `Quick off_bits_is_minimal ] );
      ( "lifecycle",
        [
          Alcotest.test_case "grow on demand" `Quick grow_on_demand;
          Alcotest.test_case "fixed pool exhaustion is soft" `Quick
            fixed_pool_exhaustion_is_soft;
          Alcotest.test_case "shrink lifecycle" `Quick shrink_lifecycle;
          Alcotest.test_case "detached payload raises" `Quick detached_payload_raises;
          Alcotest.test_case "stale drain token refused" `Quick stale_drain_token_refused;
          Alcotest.test_case "detach poll state machine" `Quick detach_poll_state_machine;
        ] );
      ("pinned readers", pinned_cases);
      ( "scenario",
        [ QCheck_alcotest.to_alcotest ~long:true qcheck_elastic ] );
    ]
