(* Fault-injection robustness (paper §4.4), with the dead thread the
   theorems actually quantify over: a domain is crashed by the fault
   layer *inside* the protect/validate window, so its reservation (slot,
   era, interval, epoch announcement or margin) stays published forever.
   The surviving thread churns; per scheme the waste must match the
   declared class — MP/HP hold their predetermined bound, HE/IBR hold
   the robust size-at-crash bound, EBR blows through the reference
   envelope and keeps growing.

   A QCheck property then checks the safety side: no random fault plan
   (stalls, yield storms, crashes at any injection point) may ever
   produce a use-after-free with the pool's access checker armed. *)

module Config = Smr_core.Config
module Fault = Mp_util.Fault
module Watchdog = Mp_harness.Watchdog

type probe = {
  wasted_after_1 : int;
  wasted_after_2 : int;
  churn : int;
  bound : Watchdog.spec;
  pinning : int list;
}

(* tid 1 is crashed mid-protect after a handful of reads; tid 0 then
   churns insert+remove over a rotating window in two phases. *)
let run_crashed_churn ~scheme ~properties (module SET : Dstruct.Set_intf.SET) =
  let threads = 2 in
  let churn = 8_000 in
  let config = Config.default ~threads in
  let capacity = 4096 + (4 * churn) in
  let t = SET.create ~threads ~capacity ~check_access:true config in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to 63 do
    ignore (SET.insert s0 ~key:(k * 1000) ~value:k : bool)
  done;
  SET.flush s0;
  (* live ceiling: 64 prefill keys + the 400-key churn window *)
  let bound = Watchdog.spec_for ~scheme ~properties ~config ~threads ~size_at_arm:600 () in
  Fault.arm ~threads
    (Fault.plan ~label:"crash-mid-protect"
       [ Fault.crash_event ~tid:1 ~point:Fault.Protect_validate ~after_hits:5 ]);
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let victim =
    Domain.spawn (fun () ->
        let s1 = SET.session t ~tid:1 in
        try
          for i = 0 to 999 do
            ignore (SET.contains s1 (i * 500) : bool)
          done;
          false
        with Fault.Crashed _ -> true)
  in
  let crashed = Domain.join victim in
  Alcotest.(check bool) "victim crashed mid-protect" true crashed;
  Alcotest.(check bool) "fault layer recorded the crash" true (Fault.crashed ~tid:1);
  let phase () =
    for i = 0 to churn - 1 do
      let k = 100 + (i mod 400) in
      ignore (SET.insert s0 ~key:k ~value:i : bool);
      ignore (SET.remove s0 k : bool)
    done;
    SET.flush s0;
    (SET.smr_stats t).Smr_core.Smr_intf.wasted
  in
  let wasted_after_1 = phase () in
  let wasted_after_2 = phase () in
  Alcotest.(check int) "no use-after-free" 0 (SET.violations t);
  { wasted_after_1; wasted_after_2; churn; bound; pinning = SET.pinning_tids t }

let list_of (module S : Smr_core.Smr_intf.S) : (module Dstruct.Set_intf.SET) =
  (module Dstruct.Michael_list.Make (S))

let probe_scheme (module S : Smr_core.Smr_intf.S) =
  run_crashed_churn ~scheme:S.name ~properties:S.properties (list_of (module S))

(* MP and HP: the predetermined bound holds no matter how long the dead
   thread's reservation stays published or how hard the survivor churns. *)
let bounded_scheme (module S : Smr_core.Smr_intf.S) ~expect_pinned () =
  let p = probe_scheme (module S) in
  let check_phase label w =
    Alcotest.(check bool)
      (Printf.sprintf "%s %s within bound (%d <= %d: %s)" S.name label w p.bound.Watchdog.bound
         p.bound.Watchdog.desc)
      true
      (w <= p.bound.Watchdog.bound)
  in
  check_phase "phase 1" p.wasted_after_1;
  check_phase "phase 2" p.wasted_after_2;
  if expect_pinned then
    Alcotest.(check (list int)) (S.name ^ " dead thread still pins a reservation") [ 1 ] p.pinning

(* EBR: the dead thread's epoch announcement pins every later
   retirement; waste tracks churn and breaks the reference envelope —
   the watchdog flags this advisory, and here we assert it happens. *)
let ebr_unbounded () =
  let p = probe_scheme (module Smr_schemes.Ebr) in
  Alcotest.(check bool) "EBR reference bound is advisory" true p.bound.Watchdog.advisory;
  Alcotest.(check bool)
    (Printf.sprintf "EBR waste breaks the reference envelope (%d > %d)" p.wasted_after_2
       p.bound.Watchdog.bound)
    true
    (p.wasted_after_2 > p.bound.Watchdog.bound);
  Alcotest.(check bool)
    (Printf.sprintf "EBR waste grows with churn (%d -> %d)" p.wasted_after_1 p.wasted_after_2)
    true
    (p.wasted_after_2 > p.wasted_after_1 + (p.churn / 2));
  Alcotest.(check (list int)) "dead thread still pins an epoch" [ 1 ] p.pinning

(* -- property: no fault plan may cause a use-after-free ------------------- *)

let uaf_free_under_plan ~seed =
  let threads = 3 and ops = 3_000 and range = 64 in
  let module SET = Dstruct.Michael_list.Make (Mp.Margin_ptr) in
  let config = Config.default ~threads in
  let t =
    SET.create ~threads ~capacity:((range * 8) + (ops * threads) + 1024) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  SET.flush s0;
  Fault.arm ~threads (Fault.random_plan ~seed ~threads);
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed ~tid in
            try
              for _ = 1 to ops do
                let k = Mp_util.Rng.below rng range in
                match Mp_util.Rng.below rng 4 with
                | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
                | 1 -> ignore (SET.remove s k : bool)
                | _ -> ignore (SET.contains s k : bool)
              done;
              SET.flush s
            with Fault.Crashed _ -> ()))
  in
  Array.iter Domain.join domains;
  SET.check t;
  SET.violations t = 0

let qcheck_no_uaf =
  QCheck.Test.make ~count:8 ~name:"random fault plans never cause use-after-free"
    QCheck.(map (fun n -> abs n + 1) small_int)
    (fun seed -> uaf_free_under_plan ~seed)

(* -- the disarmed layer really is off ------------------------------------- *)

let disarmed_is_inert () =
  Alcotest.(check bool) "not armed" false (Fault.armed ());
  (* a hit with no plan armed must be a no-op, not a crash or a count *)
  Fault.hit ~tid:0 Fault.Protect_validate;
  Alcotest.(check int) "no hits recorded" 0 (Fault.hit_count ~tid:0 Fault.Protect_validate)

let () =
  Alcotest.run "faults"
    [
      ( "crashed-thread waste bounds",
        [
          Alcotest.test_case "MP bounded under a dead thread" `Slow
            (bounded_scheme (module Mp.Margin_ptr) ~expect_pinned:false);
          Alcotest.test_case "HP bounded under a dead thread" `Slow
            (bounded_scheme (module Smr_schemes.Hp) ~expect_pinned:true);
          Alcotest.test_case "HE robust under a dead thread" `Slow
            (bounded_scheme (module Smr_schemes.He) ~expect_pinned:true);
          Alcotest.test_case "IBR robust under a dead thread" `Slow
            (bounded_scheme (module Smr_schemes.Ibr) ~expect_pinned:true);
          Alcotest.test_case "EBR unbounded under a dead thread" `Slow ebr_unbounded;
        ] );
      ( "safety under random plans",
        [ QCheck_alcotest.to_alcotest ~long:true qcheck_no_uaf ] );
      ("disarmed", [ Alcotest.test_case "injection points are inert" `Quick disarmed_is_inert ]);
    ]
