(* The byte-protocol front-end: the incremental parser (never raises,
   malformed input surfaces as [Bad] after resyncing at the next
   newline, parsing is invariant under arbitrary byte splits) and the
   [Conn] executor end-to-end against a real service (exact reply
   bytes, command order, noreply suppression, quit). *)

module Parser = Mp_service.Frontend.Parser
module Conn = Mp_service.Frontend.Conn
module Service = Mp_service.Service

(* Render a parsed command to a canonical string (Get's keys live in a
   reusable array, so they must be captured eagerly). *)
let show p (c : Parser.cmd) =
  match c with
  | Parser.Get { gets; nkeys } ->
    let keys = List.init nkeys (fun i : string -> string_of_int (Parser.get_key p i)) in
    Printf.sprintf "%s(%s)" (if gets then "gets" else "get") (String.concat "," keys)
  | Parser.Set { key; value; noreply } -> Printf.sprintf "set(%d,%d,%b)" key value noreply
  | Parser.Delete { key; noreply } -> Printf.sprintf "delete(%d,%b)" key noreply
  | Parser.Mget { first; count } -> Printf.sprintf "mget(%d,%d)" first count
  | Parser.Quit -> "quit"
  | Parser.Version -> "version"
  | Parser.Bad msg -> Printf.sprintf "bad(%s)" msg
  | Parser.Unknown -> "unknown"

let drain p =
  let rec go acc = match Parser.next p with Some c -> go (show p c :: acc) | None -> List.rev acc in
  go []

(* Feed that fails the test instead of asserting: -noassert builds
   (release profile) would drop an [assert (Parser.feed ...)] call
   entirely, side effect included. *)
let feed_ok p s = if not (Parser.feed p s) then Alcotest.fail "Parser.feed rejected input"

(* Parse a whole input in one feed. *)
let parse_all s =
  let p = Parser.create () in
  feed_ok p s;
  drain p

let check_cmds name expect s =
  Alcotest.(check (list string)) name expect (parse_all s)

let parser_commands () =
  check_cmds "get" [ "get(42)" ] "get 42\r\n";
  check_cmds "multi-key gets" [ "gets(1,2,3)" ] "gets 1 2 3\r\n";
  check_cmds "set + data block" [ "set(7,123,false)" ] "set 7 0 0 3\r\n123\r\n";
  check_cmds "set noreply" [ "set(7,1,true)" ] "set 7 0 0 1 noreply\r\n1\r\n";
  (* a data block that is not a decimal int stores its length *)
  check_cmds "non-numeric data stores its length" [ "set(9,5,false)" ] "set 9 0 0 5\r\nab\r01\r\n";
  check_cmds "delete" [ "delete(3,false)" ] "delete 3\r\n";
  check_cmds "delete noreply" [ "delete(3,true)" ] "delete 3 noreply\r\n";
  check_cmds "mget extension" [ "mget(100,16)" ] "mget 100 16\r\n";
  check_cmds "version and quit" [ "version"; "quit" ] "version\r\nquit\r\n";
  check_cmds "bare LF accepted" [ "get(1)" ] "get 1\n";
  check_cmds "pipelined burst"
    [ "set(1,1,false)"; "get(1,2)"; "delete(1,false)"; "mget(0,4)" ]
    "set 1 0 0 1\r\n1\r\nget 1 2\r\ndelete 1\r\nmget 0 4\r\n"

let parser_errors () =
  check_cmds "unknown verb" [ "unknown" ] "frobnicate 1 2\r\n";
  check_cmds "empty line" [ "bad(empty command)" ] "\r\n";
  check_cmds "non-integer key" [ "bad(bad key (keys are decimal integers))" ] "get abc\r\n";
  check_cmds "get without keys" [ "bad(get needs at least one key)" ] "get\r\n";
  check_cmds "set arity" [ "bad(set <key> <flags> <exptime> <bytes> [noreply])" ] "set 1 0 0\r\n";
  check_cmds "mget arity" [ "bad(mget <first> <count>)" ] "mget 5\r\n";
  check_cmds "19-digit key overflows" [ "bad(bad key (keys are decimal integers))" ]
    "get 1234567890123456789\r\n";
  check_cmds "oversize data block refused" [ "bad(data block too large)" ]
    (Printf.sprintf "set 1 0 0 %d\r\n" (Parser.max_line + 1));
  (* a lying byte count desyncs the data block; the parser resyncs at
     the next newline and the following command still parses *)
  check_cmds "bad data terminator resyncs" [ "bad(bad data chunk)"; "get(5)" ]
    "set 1 0 0 2\r\nabcdef\r\nget 5\r\n";
  (* too many get keys *)
  let keys = String.concat " " (List.init (Parser.max_get_keys + 1) string_of_int) in
  check_cmds "too many keys" [ "bad(too many keys)" ] ("get " ^ keys ^ "\r\n");
  (* an overlong line is discarded to its newline, then the stream
     recovers *)
  let long = String.make (Parser.max_line + 10) 'x' in
  check_cmds "overlong line resyncs" [ "bad(line too long)"; "get(1)" ] (long ^ "\r\nget 1\r\n")

(* Fragmentation invariance: any byte-split of the stream parses to the
   same command sequence as a single feed. Data blocks may straddle
   splits, including inside the trailing CRLF. *)
let parser_torn_feeds () =
  let input = "set 11 0 0 4\r\nab\r\n\r\nget 11 12\r\ndelete 11 noreply\r\nmget 0 8\r\nversion\r\n" in
  let expect = parse_all input in
  (* byte-at-a-time *)
  let p = Parser.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      feed_ok p (String.make 1 c);
      got := !got @ drain p)
    input;
  Alcotest.(check (list string)) "byte-at-a-time" expect !got;
  (* split at every position *)
  for cut = 1 to String.length input - 1 do
    let p = Parser.create () in
    feed_ok p (String.sub input 0 cut);
    let a = drain p in
    feed_ok p (String.sub input cut (String.length input - cut));
    Alcotest.(check (list string))
      (Printf.sprintf "split at %d" cut)
      expect
      (a @ drain p)
  done

(* -- QCheck: random command soup through random splits --------------------- *)

let gen_line =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun k -> Printf.sprintf "get %d\r\n" k) (int_bound 10_000));
        ( 2,
          map
            (fun k ->
              let d = string_of_int k in
              Printf.sprintf "set %d 0 0 %d\r\n%s\r\n" k (String.length d) d)
            (int_bound 10_000) );
        (2, map (fun k -> Printf.sprintf "delete %d\r\n" k) (int_bound 10_000));
        (1, map2 (fun a b -> Printf.sprintf "mget %d %d\r\n" a (1 + b)) (int_bound 1000) (int_bound 64));
        (1, return "version\r\n");
        (* garbage: printable noise, no newline, terminated by one *)
        ( 2,
          map
            (fun s ->
              let s = String.map (fun c -> if c = '\n' || c = '\r' then '.' else c) s in
              s ^ "\r\n")
            (string_size ~gen:printable (int_range 0 40)) );
        (* a set whose byte count lies, forcing a resync *)
        (1, map (fun k -> Printf.sprintf "set %d 0 0 2\r\nabcdef\r\n" k) (int_bound 100));
      ])

let gen_stream =
  QCheck.Gen.(
    map (fun lines -> String.concat "" lines) (list_size (int_range 1 20) gen_line))

let arb_stream_and_splits =
  QCheck.make
    ~print:(fun (s, cuts) ->
      Printf.sprintf "%S cuts=%s" s (String.concat "," (List.map string_of_int cuts)))
    QCheck.Gen.(
      gen_stream >>= fun s ->
      list_size (int_range 0 10) (int_bound (max 1 (String.length s - 1))) >>= fun cuts ->
      return (s, cuts))

(* The fuzz property: parsing never raises, and the command sequence is
   independent of how the bytes were split. *)
let fuzz_fragmentation =
  QCheck.Test.make ~count:300 ~name:"parser: split-invariant, never raises"
    arb_stream_and_splits (fun (s, cuts) ->
      let expect = parse_all s in
      let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0 && c < String.length s) cuts) in
      let p = Parser.create () in
      let got = ref [] in
      let prev = ref 0 in
      List.iter
        (fun cut ->
          feed_ok p (String.sub s !prev (cut - !prev));
          got := !got @ drain p;
          prev := cut)
        (cuts @ [ String.length s ]);
      !got = expect)

(* Malformed lines always surface as [Bad] or [Unknown], never silently
   vanish: every newline-terminated unit yields exactly one command
   (set data blocks consume one extra newline-terminated unit, resyncs
   of lying data blocks swallow the garbage line). Rather than
   re-deriving that arithmetic, check the never-raises + resync
   property directly on adversarial bytes: arbitrary binary noise never
   raises and always leaves the parser able to parse a clean command
   after a newline. *)
let fuzz_resync =
  QCheck.Test.make ~count:300 ~name:"parser: binary noise never wedges the stream"
    QCheck.(string_gen_of_size Gen.(int_range 0 200) Gen.(map Char.chr (int_bound 255)))
    (fun noise ->
      let p = Parser.create () in
      (* the noise may contain newlines and partial commands; feed it,
         drain whatever it parses to *)
      let fed = Parser.feed p noise in
      if fed then ignore (drain p : string list);
      (* a newline closes any partial line or skip state; a lying data
         block can swallow at most the clean line that follows, so feed
         the probe twice: the second must parse *)
      let ok = ref false in
      for _ = 1 to 3 do
        if not !ok then begin
          feed_ok p "\r\nget 77\r\n";
          let cmds = drain p in
          if List.exists (fun c -> c = "get(77)") cmds then ok := true
        end
      done;
      fed = false || !ok)

(* -- Conn end-to-end against a real service -------------------------------- *)

let conn_round () =
  let shards = 2 in
  let (module SET : Dstruct.Set_intf.SET) =
    Mp_harness.Instances.make Mp_harness.Instances.Hash_ds (module Mp.Margin_ptr)
  in
  let config = Smr_core.Config.default ~threads:shards in
  let set = SET.create ~threads:shards ~capacity:65_536 ~check_access:true config in
  let svc = Service.create (module SET) set ~shards ~batch:4 ~ring_capacity:64 in
  Service.start svc;
  Fun.protect ~finally:(fun () -> Service.stop svc) @@ fun () ->
  let conn = Conn.create svc in
  let p = Conn.parser conn in
  let pump input =
    feed_ok p input;
    ignore (Conn.pump conn : int);
    Buffer.contents (Conn.out conn)
  in
  (* one pipelined burst: replies must come back in command order *)
  Alcotest.(check string) "pipelined burst"
    "STORED\r\nNOT_STORED\r\nVALUE 5 0 1\r\n5\r\nEND\r\nEND\r\nHITS 1\r\nDELETED\r\nNOT_FOUND\r\nEND\r\n"
    (pump
       "set 5 0 0 1\r\n5\r\nset 5 0 0 1\r\n5\r\nget 5\r\nget 6\r\nmget 5 1\r\ndelete 5\r\ndelete 5\r\nget 5\r\n");
  (* noreply suppresses the reply but the op executes *)
  Alcotest.(check string) "noreply set is silent, visible to the next get"
    "VALUE 8 0 1\r\n8\r\nEND\r\n"
    (pump "set 8 0 0 1 noreply\r\n8\r\nget 8\r\n");
  (* errors render in place without disturbing neighbours *)
  Alcotest.(check string) "errors interleave in order"
    "ERROR\r\nCLIENT_ERROR bad key (keys are decimal integers)\r\nVERSION mpserver/1\r\nEND\r\n"
    (pump "bogus\r\nget zzz\r\nversion\r\nget 9999\r\n");
  (* a multi-key get spanning both shards comes back in key order *)
  Alcotest.(check string) "cross-shard get gathers in command order"
    "STORED\r\nSTORED\r\nVALUE 1 0 1\r\n1\r\nVALUE 2 0 1\r\n2\r\nEND\r\n"
    (pump "set 1 0 0 1\r\n1\r\nset 2 0 0 1\r\n2\r\nget 1 2 3\r\n");
  (* quit closes the connection and stops processing *)
  Alcotest.(check bool) "open before quit" false (Conn.closed conn);
  ignore (pump "quit\r\n" : string);
  Alcotest.(check bool) "closed after quit" true (Conn.closed conn);
  Alcotest.(check int) "no use-after-free" 0 (SET.violations set)

(* A burst bigger than [max_chain] x shards exercises the chunked
   chain-submit path (ring capacity 64 forces several chains per
   burst). *)
let conn_large_burst () =
  let shards = 2 in
  let (module SET : Dstruct.Set_intf.SET) =
    Mp_harness.Instances.make Mp_harness.Instances.Hash_ds (module Mp.Margin_ptr)
  in
  let config = Smr_core.Config.default ~threads:shards in
  let set = SET.create ~threads:shards ~capacity:65_536 ~check_access:true config in
  let svc = Service.create (module SET) set ~shards ~batch:8 ~ring_capacity:64 in
  Service.start svc;
  Fun.protect ~finally:(fun () -> Service.stop svc) @@ fun () ->
  let conn = Conn.create svc in
  let p = Conn.parser conn in
  let b = Buffer.create 4096 in
  let n = 200 in
  for k = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "set %d 0 0 %d\r\n%d\r\n" k (String.length (string_of_int k)) k)
  done;
  feed_ok p (Buffer.contents b);
  let ncmds = Conn.pump conn in
  Alcotest.(check int) "every command processed in one pump" n ncmds;
  let expect = String.concat "" (List.init n (fun _ -> "STORED\r\n")) in
  Alcotest.(check string) "every key stored" expect (Buffer.contents (Conn.out conn));
  (* and they are all really in the set *)
  Buffer.clear b;
  for k = 0 to n - 1 do
    Buffer.add_string b (Printf.sprintf "get %d\r\n" k)
  done;
  feed_ok p (Buffer.contents b);
  ignore (Conn.pump conn : int);
  let expect =
    String.concat ""
      (List.init n (fun k ->
           let s = string_of_int k in
           Printf.sprintf "VALUE %s 0 %d\r\n%s\r\nEND\r\n" s (String.length s) s))
  in
  Alcotest.(check string) "all hits" expect (Buffer.contents (Conn.out conn));
  Alcotest.(check int) "no use-after-free" 0 (SET.violations set)

let () =
  Alcotest.run "frontend"
    [
      ( "parser",
        [
          Alcotest.test_case "command grammar" `Quick parser_commands;
          Alcotest.test_case "malformed input surfaces as Bad" `Quick parser_errors;
          Alcotest.test_case "fragmentation invariance (every split)" `Quick parser_torn_feeds;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest ~long:true fuzz_fragmentation;
          QCheck_alcotest.to_alcotest ~long:true fuzz_resync;
        ] );
      ( "conn",
        [
          Alcotest.test_case "pipelined replies, exact bytes" `Slow conn_round;
          Alcotest.test_case "chunked chains on a large burst" `Slow conn_large_burst;
        ] );
    ]
