(* Manual-memory pool: slot life cycle, metadata words, exhaustion,
   incarnation bumping, the poisoning detector, and the lock-free global
   free stack under cross-thread producer/consumer pressure. *)

module Core = Mempool.Core

let mk ?(capacity = 64) ?(threads = 2) ?(check_access = false) () =
  Mempool.create ~capacity ~threads ~check_access (fun i -> ref i)

let alloc_free_roundtrip () =
  let p = mk () in
  let id = Mempool.alloc p ~tid:0 in
  Alcotest.(check int) "live after alloc" Mempool.state_live (Core.state (Mempool.core p) id);
  Mempool.free p ~tid:0 id;
  Alcotest.(check bool) "free after free" true (Core.is_free (Mempool.core p) id);
  Alcotest.(check int) "live count" 0 (Mempool.live_count p)

let metadata_words () =
  let p = mk () in
  let c = Mempool.core p in
  let id = Mempool.alloc p ~tid:0 in
  Core.set_index c id 12345;
  Core.set_birth c id 7;
  Core.set_death c id 9;
  Alcotest.(check int) "index" 12345 (Core.index c id);
  Alcotest.(check int) "birth" 7 (Core.birth c id);
  Alcotest.(check int) "death" 9 (Core.death c id);
  let h = Mempool.handle p id in
  Alcotest.(check int) "handle id" id (Handle.id h);
  Alcotest.(check int) "handle idx16" (Handle.idx16_of_index 12345) (Handle.idx16 h)

let index_reset_on_alloc () =
  let p = mk () in
  let c = Mempool.core p in
  let id = Mempool.alloc p ~tid:0 in
  Core.set_index c id 999;
  Mempool.free p ~tid:0 id;
  let id2 = Mempool.alloc p ~tid:0 in
  (* same thread free list: LIFO gives the same slot back *)
  Alcotest.(check int) "slot reused" id id2;
  Alcotest.(check int) "index cleared" 0 (Core.index c id2)

let incarnation_bumps () =
  let p = mk () in
  let c = Mempool.core p in
  let id = Mempool.alloc p ~tid:0 in
  let h1 = Mempool.handle p id in
  let inc1 = Core.incarnation c id in
  Mempool.free p ~tid:0 id;
  let id2 = Mempool.alloc p ~tid:0 in
  Alcotest.(check int) "same slot" id id2;
  Alcotest.(check int) "incarnation bumped" (inc1 + 1) (Core.incarnation c id2);
  Alcotest.(check bool) "handles differ across incarnations" false
    (Handle.equal h1 (Mempool.handle p id2))

let exhaustion () =
  let p = mk ~capacity:8 ~threads:1 () in
  let ids = List.init 8 (fun _ -> Mempool.alloc p ~tid:0) in
  Alcotest.check_raises "exhausted" Mempool.Exhausted (fun () ->
      ignore (Mempool.alloc p ~tid:0 : int));
  List.iter (fun id -> Mempool.free p ~tid:0 id) ids;
  ignore (Mempool.alloc p ~tid:0 : int)

let retired_state () =
  let p = mk () in
  let c = Mempool.core p in
  let id = Mempool.alloc p ~tid:0 in
  Core.mark_retired c id;
  Alcotest.(check int) "retired" Mempool.state_retired (Core.state c id);
  (* freeing a retired slot is legal *)
  Mempool.free p ~tid:0 id;
  Alcotest.(check bool) "free" true (Core.is_free c id)

let poisoning_detector () =
  let p = mk ~check_access:true () in
  let id = Mempool.alloc p ~tid:0 in
  ignore (Mempool.get p id : int ref);
  Alcotest.(check int) "live access ok" 0 (Mempool.violations p);
  Mempool.free p ~tid:0 id;
  ignore (Mempool.get p id : int ref);
  Alcotest.(check int) "freed access detected" 1 (Mempool.violations p)

let poisoning_off_by_default () =
  let p = mk () in
  let id = Mempool.alloc p ~tid:0 in
  Mempool.free p ~tid:0 id;
  ignore (Mempool.get p id : int ref);
  Alcotest.(check int) "no detection without flag" 0 (Mempool.violations p)

(* Producer/consumer across threads: tid 0 allocates, tid 1 frees. The
   global Treiber stack must rebalance; nothing may be lost or duplicated. *)
let cross_thread_rebalancing () =
  let capacity = 4096 and rounds = 200_000 in
  let p = mk ~capacity ~threads:2 () in
  let q = Queue.create () in
  let m = Mutex.create () in
  let produced = Atomic.make 0 in
  let producer =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          let rec grab () =
            match Mempool.alloc p ~tid:0 with
            | id -> id
            | exception Mempool.Exhausted ->
              Domain.cpu_relax ();
              grab ()
          in
          let id = grab () in
          Mutex.lock m;
          Queue.push id q;
          Mutex.unlock m;
          Atomic.incr produced
        done)
  in
  let consumer =
    Domain.spawn (fun () ->
        let consumed = ref 0 in
        while !consumed < rounds do
          let item =
            Mutex.lock m;
            let r = if Queue.is_empty q then None else Some (Queue.pop q) in
            Mutex.unlock m;
            r
          in
          match item with
          | Some id ->
            Mempool.free p ~tid:1 id;
            incr consumed
          | None -> Domain.cpu_relax ()
        done)
  in
  Domain.join producer;
  Domain.join consumer;
  Alcotest.(check int) "all slots returned" 0 (Mempool.live_count p);
  (* every slot reachable from tid 0 must come out exactly once; some may
     be parked in tid 1's local list (per-thread partitioning) *)
  let seen = Array.make capacity false in
  let taken = ref 0 in
  (try
     while true do
       let id = Mempool.alloc p ~tid:0 in
       if seen.(id) then Alcotest.failf "slot %d handed out twice" id;
       seen.(id) <- true;
       incr taken
     done
   with Mempool.Exhausted -> ());
  Alcotest.(check bool)
    (Printf.sprintf "most slots reachable (%d/%d)" !taken capacity)
    true
    (!taken >= capacity / 2)

let concurrent_alloc_free_stress () =
  let threads = 4 in
  let p = mk ~capacity:1024 ~threads () in
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let held = ref [] in
            let rng = Mp_util.Rng.split ~seed:99 ~tid in
            for _ = 1 to 50_000 do
              if Mp_util.Rng.bool rng && List.length !held < 64 then (
                match Mempool.alloc p ~tid with
                | id -> held := id :: !held
                | exception Mempool.Exhausted -> ())
              else
                match !held with
                | [] -> ()
                | id :: rest ->
                  Mempool.free p ~tid id;
                  held := rest
            done;
            List.iter (fun id -> Mempool.free p ~tid id) !held))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "quiescent live count" 0 (Mempool.live_count p);
  Alcotest.(check int) "allocs = frees" (Core.alloc_count (Mempool.core p))
    (Core.free_count (Mempool.core p))

(* Producer/consumer pipe across the chain-batched transfer path: tid 0
   only allocs (drains chains from the global stack), tid 1 only frees
   (spills chains to it), so every slot crosses the global list twice per
   round trip. Incarnation counters witness that no slot is lost or
   duplicated: each free bumps exactly one slot's incarnation, so the sum
   over all slots must equal the number of frees, and a final drain from
   both tids must surface every slot exactly once. *)
let pipe_no_lost_or_duplicated transfer () =
  let capacity = 4096 and rounds = 100_000 in
  let p =
    Mempool.create ~capacity ~threads:2 ~transfer ~fair_share:256 (fun i -> i)
  in
  let c = Mempool.core p in
  let q = Queue.create () in
  let m = Mutex.create () in
  let producer =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          let rec grab () =
            match Mempool.alloc p ~tid:0 with
            | id -> id
            | exception Mempool.Exhausted ->
              Domain.cpu_relax ();
              grab ()
          in
          let id = grab () in
          Mutex.lock m;
          Queue.push id q;
          Mutex.unlock m
        done)
  in
  let consumer =
    Domain.spawn (fun () ->
        let consumed = ref 0 in
        while !consumed < rounds do
          let item =
            Mutex.lock m;
            let r = if Queue.is_empty q then None else Some (Queue.pop q) in
            Mutex.unlock m;
            r
          in
          match item with
          | Some id ->
            Mempool.free p ~tid:1 id;
            incr consumed
          | None -> Domain.cpu_relax ()
        done)
  in
  Domain.join producer;
  Domain.join consumer;
  Alcotest.(check int) "quiescent live count" 0 (Mempool.live_count p);
  Alcotest.(check int) "allocs = frees" (Core.alloc_count c) (Core.free_count c);
  (* Sum of incarnations = one bump per free, over all slots. *)
  let inc_sum = ref 0 in
  for id = 0 to capacity - 1 do
    inc_sum := !inc_sum + Core.incarnation c id
  done;
  Alcotest.(check int) "incarnation bumps = frees" (Core.free_count c) !inc_sum;
  (* Drain both tids: every slot must come out exactly once — nothing
     lost in a half-spilled chain, nothing duplicated by a double pop. *)
  let seen = Array.make capacity false in
  let taken = ref 0 in
  List.iter
    (fun tid ->
      try
        while true do
          let id = Mempool.alloc p ~tid in
          if seen.(id) then Alcotest.failf "slot %d handed out twice" id;
          seen.(id) <- true;
          incr taken
        done
      with Mempool.Exhausted -> ())
    [ 0; 1 ];
  Alcotest.(check int) "every slot reachable exactly once" capacity !taken

(* ABA regression on the version-tagged top word: popping a chain and
   pushing the same chain back must yield a *different* top word, so a
   CAS armed with the stale word (the classic A-B-A interleaving: victim
   reads top = X, others pop X, pop Y, re-push X) can never succeed. *)
let chain_aba_version_tag () =
  let p = Mempool.create ~capacity:1024 ~threads:1 ~fair_share:128 (fun i -> i) in
  let c = Mempool.core p in
  let w0 = Core.debug_top_word c in
  (match Core.debug_pop_chain c with
  | None -> Alcotest.fail "global stack unexpectedly empty"
  | Some (head, tail, len) ->
    Alcotest.(check int) "chain is fair_share long" (Core.fair_share c) len;
    (* Walk the chain: tail reachable from head in exactly len hops. *)
    let steps = ref 1 and id = ref head in
    while Core.debug_next_free c !id >= 0 do
      id := Core.debug_next_free c !id;
      incr steps
    done;
    Alcotest.(check int) "chain link count" len !steps;
    Alcotest.(check int) "memoized tail is the walked tail" tail !id;
    Core.debug_push_chain c ~head ~tail ~len);
  let w1 = Core.debug_top_word c in
  Alcotest.(check bool) "same head re-pushed, top word differs (ABA defeated)" true
    (w0 <> w1);
  (* And the pool still hands out every slot exactly once. *)
  let seen = Array.make 1024 false in
  let taken = ref 0 in
  (try
     while true do
       let id = Mempool.alloc p ~tid:0 in
       if seen.(id) then Alcotest.failf "slot %d handed out twice after ABA churn" id;
       seen.(id) <- true;
       incr taken
     done
   with Mempool.Exhausted -> ());
  Alcotest.(check int) "all slots intact" 1024 !taken

(* Version must advance on every push AND pop, never repeating a word even
   through deep pop/push cycles of the same chains. *)
let chain_version_monotonic () =
  let p = Mempool.create ~capacity:2048 ~threads:1 ~fair_share:64 (fun i -> i) in
  let c = Mempool.core p in
  let words = Hashtbl.create 64 in
  Hashtbl.add words (Core.debug_top_word c) ();
  for _ = 1 to 50 do
    match Core.debug_pop_chain c with
    | None -> Alcotest.fail "global stack unexpectedly empty"
    | Some (head, tail, len) ->
      let w = Core.debug_top_word c in
      if Hashtbl.mem words w then Alcotest.failf "top word 0x%x repeated after pop" w;
      Hashtbl.add words w ();
      Core.debug_push_chain c ~head ~tail ~len;
      let w = Core.debug_top_word c in
      if Hashtbl.mem words w then Alcotest.failf "top word 0x%x repeated after push" w;
      Hashtbl.add words w ()
  done

let capacity_validation () =
  Alcotest.check_raises "capacity < threads rejected"
    (Invalid_argument "Mempool.create: capacity < threads") (fun () ->
      ignore (Mempool.create ~capacity:1 ~threads:2 (fun _ -> ()) : unit Mempool.t))

let () =
  Alcotest.run "mempool"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "alloc/free" `Quick alloc_free_roundtrip;
          Alcotest.test_case "metadata" `Quick metadata_words;
          Alcotest.test_case "index reset" `Quick index_reset_on_alloc;
          Alcotest.test_case "incarnation" `Quick incarnation_bumps;
          Alcotest.test_case "exhaustion" `Quick exhaustion;
          Alcotest.test_case "retired state" `Quick retired_state;
          Alcotest.test_case "capacity validation" `Quick capacity_validation;
        ] );
      ( "poisoning",
        [
          Alcotest.test_case "detector fires" `Quick poisoning_detector;
          Alcotest.test_case "detector off by default" `Quick poisoning_off_by_default;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "cross-thread rebalancing" `Slow cross_thread_rebalancing;
          Alcotest.test_case "alloc/free stress" `Slow concurrent_alloc_free_stress;
          Alcotest.test_case "pipe chained: no slot lost/duplicated" `Slow
            (pipe_no_lost_or_duplicated Mempool.Chained);
          Alcotest.test_case "pipe per-slot: no slot lost/duplicated" `Slow
            (pipe_no_lost_or_duplicated Mempool.Per_slot);
        ] );
      ( "chains",
        [
          Alcotest.test_case "ABA version tag" `Quick chain_aba_version_tag;
          Alcotest.test_case "top-word monotonicity" `Quick chain_version_monotonic;
        ] );
    ]
