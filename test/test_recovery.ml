(* Crash recovery: reservation adoption and the resilient service.

   Four strata, matching how the feature is built:

   1. Kernel: [Reservation.quarantine] force-closes a dead tid's batch
      window and clears its published slots (one counted fence);
      [adopt] lifts the quarantine so a replacement can reuse the row.
   2. Schemes: [S.adopt] on a dead tid releases everything it pinned —
      other threads' retired nodes it was blocking become reclaimable,
      and its own retired backlog is drained as its next flush would
      have.
   3. Transport: the ring's cancel/complete race resolves exactly once
      in either direction, and the generation stamp marks a dead
      incarnation's requests across a [bump_generation].
   4. Service: a deterministic mid-round crash is detected, the dead
      shard joined and adopted, a replacement respawned on a spare tid
      — with request conservation (every submitted request answered
      exactly once) and no use-after-free; a QCheck property drives
      random fault plans through the same path. *)

module Config = Smr_core.Config
module Counters = Smr_core.Counters
module Reservation = Smr_core.Reservation
module Fault = Mp_util.Fault
module Ring = Mp_service.Request_ring
module Service = Mp_service.Service
module Recovery = Mp_service.Recovery
module Loadgen = Mp_service.Loadgen

let schemes = Common.schemes

(* -- 1. reservation kernel ------------------------------------------------ *)

let kernel_quarantine_adopt () =
  let counters = Counters.create ~threads:2 in
  let res = Reservation.create ~counters ~threads:2 ~slots:2 ~empty:(-1) in
  Reservation.publish res ~tid:1 ~refno:0 42;
  Reservation.batch_enter res ~tid:1;
  Reservation.publish res ~tid:1 ~refno:1 7;
  let fences0 = (Counters.stats counters).Smr_core.Smr_intf.fences in
  Reservation.quarantine res ~tid:1;
  Alcotest.(check bool) "quarantined" true (Reservation.quarantined res ~tid:1);
  Alcotest.(check bool) "batch window forced shut" false (Reservation.in_batch res ~tid:1);
  Alcotest.(check int) "slot 0 cleared" (-1) (Reservation.get res ~tid:1 ~refno:0);
  Alcotest.(check int) "slot 1 cleared" (-1) (Reservation.get res ~tid:1 ~refno:1);
  Alcotest.(check int) "one fence for the sweep" (fences0 + 1)
    (Counters.stats counters).Smr_core.Smr_intf.fences;
  (* the other row is untouched *)
  Reservation.publish res ~tid:0 ~refno:0 9;
  Alcotest.(check int) "other tid unaffected" 9 (Reservation.get res ~tid:0 ~refno:0);
  Reservation.adopt res ~tid:1;
  Alcotest.(check bool) "adopted" false (Reservation.quarantined res ~tid:1);
  Reservation.publish res ~tid:1 ~refno:0 5;
  Alcotest.(check int) "row reusable after adopt" 5 (Reservation.get res ~tid:1 ~refno:0)

(* -- 2. every scheme: adopt releases a dead tid's pins -------------------- *)

(* tid 1 protects a node inside a batch window and "dies" (no flush, no
   batch_exit). tid 0 unlinks, retires and flushes: the node must stay
   allocated — the paper's dead-thread-pins-memory scenario. After
   [adopt t ~tid:1] the next flush must reclaim it. *)
let adopt_releases_pins (module S : Smr_core.Smr_intf.S) () =
  let threads = 2 in
  let config = Config.default ~threads in
  let pool = Mempool.Core.create ~capacity:256 ~threads () in
  let t = S.create ~pool ~threads config in
  let th0 = S.thread t ~tid:0 and th1 = S.thread t ~tid:1 in
  S.start_op th0;
  let a = S.alloc_with_index th0 ~index:(1 lsl 20) in
  let link = Atomic.make (Mempool.Core.handle pool a) in
  S.end_op th0;
  (* tid 1 reads [a] in an open batch window, then dies *)
  S.batch_enter th1;
  S.start_op th1;
  ignore (S.read th1 ~refno:0 link : Handle.t);
  S.end_op th1;
  (* tid 0 unlinks and retires; the dead window pins [a] *)
  S.start_op th0;
  Atomic.set link Handle.null;
  S.retire th0 a;
  S.end_op th0;
  S.flush th0;
  Alcotest.(check bool) "dead tid still pins" false (Mempool.Core.is_free pool a);
  if S.name <> "none" then
    Alcotest.(check bool) "dead tid reported pinning" true (List.mem 1 (S.pinning_tids t));
  S.adopt t ~tid:1;
  (* a few flushes: epoch schemes need their grace periods to lapse *)
  for _ = 1 to 4 do
    S.flush th0
  done;
  if S.name <> "none" then begin
    Alcotest.(check bool) "reclaimed after adopt" true (Mempool.Core.is_free pool a);
    Alcotest.(check (list int)) "no reservation left" [] (S.pinning_tids t)
  end

(* A dead tid's own retired backlog (retired, never flushed) is drained
   by the adoption itself — the supervisor runs the scan the dead
   thread's next flush would have. *)
let adopt_drains_backlog (module S : Smr_core.Smr_intf.S) () =
  let threads = 2 in
  let config = Config.default ~threads in
  let pool = Mempool.Core.create ~capacity:256 ~threads () in
  let t = S.create ~pool ~threads config in
  let th1 = S.thread t ~tid:1 in
  S.start_op th1;
  let b = S.alloc_with_index th1 ~index:(1 lsl 20) in
  S.end_op th1;
  S.start_op th1;
  S.retire th1 b;
  S.end_op th1;
  (* dies here: no flush *)
  Alcotest.(check bool) "backlog still allocated" false (Mempool.Core.is_free pool b);
  S.adopt t ~tid:1;
  if S.name <> "none" then
    Alcotest.(check bool) "backlog drained by adopt" true (Mempool.Core.is_free pool b)

(* -- 3. ring: cancel lifecycle and incarnation stamps --------------------- *)

let ring_cancel_pending () =
  let r = Ring.create ~capacity:4 in
  let t0 = Ring.try_submit r ~op:1 ~key:10 ~value:100 in
  Alcotest.(check int) "ticket" 0 t0;
  Alcotest.(check int) "cancel wins on a pending slot" (-1) (Ring.cancel r ~ticket:t0);
  Alcotest.(check bool) "consumer sees cancelled" true (Ring.cancelled r ~pos:0);
  Alcotest.(check bool) "not ready" false (Ring.ready r ~pos:0);
  Ring.discard r ~pos:0;
  (* the discarded slot is acked: a full lap of submissions fits *)
  for i = 1 to 4 do
    Alcotest.(check int) "slot recycled" i (Ring.try_submit r ~op:0 ~key:i ~value:0)
  done;
  Alcotest.(check int) "then full" (-1) (Ring.try_submit r ~op:0 ~key:0 ~value:0)

let ring_cancel_after_complete () =
  let r = Ring.create ~capacity:4 in
  let t0 = Ring.try_submit r ~op:1 ~key:10 ~value:100 in
  Alcotest.(check bool) "complete wins unopposed" true (Ring.complete r ~pos:0 7);
  (* the late cancel acts as the final poll: reply delivered, slot freed *)
  Alcotest.(check int) "cancel returns the reply" 7 (Ring.cancel r ~ticket:t0);
  (* slot 0 is acked: ticket 4, one lap later, lands on it *)
  for i = 1 to 4 do
    Alcotest.(check int) "slot freed by the cancel" i (Ring.try_submit r ~op:0 ~key:i ~value:0)
  done

let ring_complete_loses_to_cancel () =
  let r = Ring.create ~capacity:4 in
  let t0 = Ring.try_submit r ~op:1 ~key:10 ~value:100 in
  Alcotest.(check int) "cancel first" (-1) (Ring.cancel r ~ticket:t0);
  Alcotest.(check bool) "complete reports the loss" false (Ring.complete r ~pos:0 7);
  (* the losing complete freed the slot itself: a full lap fits *)
  for i = 1 to 4 do
    Alcotest.(check int) "slot freed" i (Ring.try_submit r ~op:0 ~key:i ~value:0)
  done

let ring_generation_stamp () =
  let r = Ring.create ~capacity:4 in
  Alcotest.(check int) "initial generation" 0 (Ring.generation r);
  let t0 = Ring.try_submit r ~op:1 ~key:1 ~value:0 in
  Ring.bump_generation r;
  let t1 = Ring.try_submit r ~op:1 ~key:2 ~value:0 in
  Alcotest.(check int) "bumped" 1 (Ring.generation r);
  Alcotest.(check int) "old request stamped old" 0 (Ring.stamp r ~pos:t0);
  Alcotest.(check int) "new request stamped new" 1 (Ring.stamp r ~pos:t1);
  Alcotest.(check bool) "dead incarnation detectable" true
    (Ring.stamp r ~pos:t0 < Ring.generation r)

let ring_deadline_word () =
  let r = Ring.create ~capacity:4 in
  let t0 = Ring.try_submit r ~op:1 ~key:1 ~value:0 ~deadline_us:123_456 in
  let t1 = Ring.try_submit r ~op:1 ~key:2 ~value:0 in
  Alcotest.(check int) "deadline rides the slot" 123_456 (Ring.deadline_us r ~pos:t0);
  Alcotest.(check int) "absent deadline is 0" 0 (Ring.deadline_us r ~pos:t1)

(* The takeover edge for a whole chain: every slot of a chain submitted
   under the dead incarnation is visibly stale to the replacement
   consumer, each is answered with a rejection exactly once, the
   coalesced wait still fires on the last slot, and every slot
   recycles. *)
let ring_dead_chain_rejected_once () =
  let r = Ring.create ~capacity:8 in
  let ops = [| 1; 1; 1 |] and keys = [| 1; 2; 3 |] and values = [| 0; 0; 0 |] in
  let t0 = Ring.try_submit_chain r ~n:3 ~ops ~keys ~values ~off:0 in
  Alcotest.(check int) "chain submitted" 0 t0;
  Ring.bump_generation r;
  (* fresh submits after the bump are NOT stale *)
  let t3 =
    Ring.try_submit_chain r ~n:2 ~ops ~keys ~values ~off:0 ~deadline_us:0
  in
  for pos = t0 to t0 + 2 do
    Alcotest.(check bool)
      (Printf.sprintf "slot %d stamped dead" pos)
      true
      (Ring.stamp r ~pos < Ring.generation r)
  done;
  for pos = t3 to t3 + 1 do
    Alcotest.(check bool)
      (Printf.sprintf "slot %d stamped live" pos)
      false
      (Ring.stamp r ~pos < Ring.generation r)
  done;
  (* the replacement consumer rejects the dead chain slot by slot; each
     complete wins exactly once (no racing cancel on chain tickets) *)
  for pos = t0 to t0 + 2 do
    Alcotest.(check bool) "chain not done early" false (Ring.chain_done r ~ticket:t0 ~n:3);
    Alcotest.(check bool) "rejection delivered" true (Ring.complete r ~pos Service.reply_rejected)
  done;
  Alcotest.(check bool) "coalesced wait fires" true (Ring.chain_done r ~ticket:t0 ~n:3);
  let replies = Array.make 3 (-1) in
  Ring.harvest_chain r ~ticket:t0 ~n:3 ~replies ~off:0;
  Alcotest.(check (array int)) "every slot rejected exactly once"
    [| Service.reply_rejected; Service.reply_rejected; Service.reply_rejected |]
    replies;
  (* the live chain still executes normally *)
  ignore (Ring.complete r ~pos:t3 7 : bool);
  ignore (Ring.complete r ~pos:(t3 + 1) 8 : bool);
  Ring.await_chain r ~ticket:t3 ~n:2;
  let live = Array.make 2 (-1) in
  Ring.harvest_chain r ~ticket:t3 ~n:2 ~replies:live ~off:0;
  Alcotest.(check (array int)) "live replies intact" [| 7; 8 |] live;
  (* all five slots recycled: two max-width chains fit on the lap *)
  let o4 = Array.make 4 0 in
  Alcotest.(check int) "lap refill 1" 5 (Ring.try_submit_chain r ~n:4 ~ops:o4 ~keys:o4 ~values:o4 ~off:0);
  Alcotest.(check int) "lap refill 2" 9 (Ring.try_submit_chain r ~n:4 ~ops:o4 ~keys:o4 ~values:o4 ~off:0)

(* -- recovery config / pool ----------------------------------------------- *)

let recovery_pool () =
  let r = Recovery.create ~shards:3 { Recovery.default with spare_tids = 2 } in
  Alcotest.(check (option int)) "first spare" (Some 3) (Recovery.take_tid r);
  Alcotest.(check (option int)) "second spare" (Some 4) (Recovery.take_tid r);
  Alcotest.(check (option int)) "pool empty" None (Recovery.take_tid r);
  Recovery.return_tid r 3;
  Alcotest.(check (option int)) "returned tid reusable" (Some 3) (Recovery.take_tid r);
  Alcotest.check_raises "bad poll interval"
    (Invalid_argument "Recovery.config.poll_interval_s <= 0") (fun () ->
      ignore
        (Recovery.validate { Recovery.default with poll_interval_s = 0.0 }
          : Recovery.config))

(* -- 4. service: crash, adopt, respawn ------------------------------------ *)

let conservation lg =
  lg.Loadgen.submitted
  = lg.Loadgen.completed_reqs + lg.Loadgen.rejected + lg.Loadgen.busy + lg.Loadgen.oom
    + lg.Loadgen.deadline_exceeded

let service_recovery_round ?(seed = 99) ?(chain = 1) ?(plan : Fault.plan option) () =
  let shards = 2 and spare_tids = 1 in
  let threads = shards + spare_tids in
  let (module SET : Dstruct.Set_intf.SET) =
    Mp_harness.Instances.make Mp_harness.Instances.Hash_ds (module Smr_schemes.Hp)
  in
  let config = Config.default ~threads in
  let set = SET.create ~threads ~capacity:32_768 ~check_access:true config in
  let s0 = SET.session set ~tid:0 in
  for k = 0 to 255 do
    ignore (SET.insert s0 ~key:(k * 3) ~value:k : bool)
  done;
  SET.flush s0;
  let plan =
    match plan with
    | Some p -> p
    | None ->
      Fault.plan ~label:"kill shard 1"
        [ Fault.crash_event ~tid:1 ~point:Fault.Protect_validate ~after_hits:150 ]
  in
  Fault.arm ~threads plan;
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let svc =
    Service.create
      ~recovery:{ Recovery.default with spare_tids }
      (module SET) set ~shards ~batch:8 ~ring_capacity:64
  in
  Service.start svc;
  let lg =
    Loadgen.run svc
      {
        Loadgen.clients = 2;
        duration_s = 0.4;
        warmup_s = 0.0;
        read_pct = 50;
        insert_pct = 30;
        mget = 2;
        key_range = 1024;
        zipf_alpha = None;
        seed;
        mode = Loadgen.Closed { pipeline = 8 };
        deadline_s = 0.05;
        max_retries = 2;
        chain;
      }
  in
  Service.stop svc;
  SET.check set;
  Alcotest.(check int) "no use-after-free" 0 (SET.violations set);
  Alcotest.(check bool) "conservation: every request answered exactly once" true
    (conservation lg);
  (lg, Service.stats svc, Option.get (Service.recovery_stats svc))

let service_crash_recovers () =
  let _, stats, r = service_recovery_round () in
  Alcotest.(check bool) "the crash fired" true (stats.Service.crash_events >= 1);
  Alcotest.(check bool) "every crash recovered" true
    (r.Recovery.recoveries >= stats.Service.crash_events);
  Alcotest.(check int) "dead tid adopted each time" r.Recovery.recoveries
    r.Recovery.adoptions;
  Alcotest.(check int) "no shard left dead" 0 stats.Service.crashed_shards;
  Alcotest.(check bool) "recovery took time" true (r.Recovery.mean_recovery_s > 0.0)

(* The same mid-round crash with chained clients: whole chains cross the
   crash → bump_generation → takeover edge, so some are rejected as a
   unit by the replacement. Conservation and the UAF detector are
   checked inside the round; here the recovery path itself must have
   fired and healed. *)
let service_crash_recovers_chained () =
  let lg, stats, r = service_recovery_round ~chain:8 () in
  Alcotest.(check bool) "the crash fired" true (stats.Service.crash_events >= 1);
  Alcotest.(check bool) "every crash recovered" true
    (r.Recovery.recoveries >= stats.Service.crash_events);
  Alcotest.(check int) "dead tid adopted each time" r.Recovery.recoveries
    r.Recovery.adoptions;
  Alcotest.(check int) "no shard left dead" 0 stats.Service.crashed_shards;
  Alcotest.(check bool) "the chained client made progress" true
    (lg.Loadgen.completed_reqs > 0)

let service_no_faults_no_recoveries () =
  let _, stats, r =
    service_recovery_round ~plan:(Fault.plan ~label:"quiet" []) ()
  in
  Alcotest.(check int) "no crashes" 0 stats.Service.crash_events;
  Alcotest.(check int) "no recoveries" 0 r.Recovery.recoveries;
  Alcotest.(check int) "pool untouched" 1 r.Recovery.free_tids

(* -- QCheck: random crash/stall plans through crash→adopt→respawn --------- *)

let qcheck_round seed =
  let shards = 2 and spare_tids = 1 in
  let threads = shards + spare_tids in
  let module SET = Dstruct.Michael_list.Make (Smr_schemes.He) in
  let config = Config.default ~threads in
  let set = SET.create ~threads ~capacity:16_384 ~check_access:true config in
  let s0 = SET.session set ~tid:0 in
  for k = 0 to 127 do
    ignore (SET.insert s0 ~key:(k * 11) ~value:k : bool)
  done;
  SET.flush s0;
  (* plans target the shard tids; arm covers the spare too so the
     replacement's (forgiven) hits stay tracked *)
  Fault.arm ~threads (Fault.random_plan ~seed ~threads:shards);
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let svc =
    Service.create
      ~recovery:{ Recovery.default with spare_tids }
      (module SET) set ~shards
      ~batch:(1 + (seed mod 16))
      ~ring_capacity:64
  in
  Service.start svc;
  let lg =
    Loadgen.run svc
      {
        Loadgen.clients = 2;
        duration_s = 0.25;
        warmup_s = 0.0;
        read_pct = 50;
        insert_pct = 30;
        mget = 1 + (seed mod 3);
        key_range = 1024;
        zipf_alpha = None;
        seed;
        mode = Loadgen.Closed { pipeline = 8 };
        deadline_s = 0.04;
        max_retries = 1 + (seed mod 3);
        (* Odd seeds drive the chained client through the crash →
           bump_generation → takeover path (retries are off in chain
           mode; conservation must still hold). *)
        chain = (if seed mod 2 = 0 then 1 else 1 + (seed mod 4));
      }
  in
  Service.stop svc;
  let stats = Service.stats svc in
  let r = Option.get (Service.recovery_stats svc) in
  SET.check set;
  (* a crash landing in the final poll window can be joined by the
     post-stop sweep instead of recovered; what must always hold:
     no UAF, exact request conservation, and any recovery adopted *)
  SET.violations set = 0 && conservation lg
  && r.Recovery.adoptions = r.Recovery.recoveries
  && stats.Service.crashed_shards <= stats.Service.crash_events

let qcheck_recovery =
  QCheck.Test.make ~count:6
    ~name:"random fault plans through crash/adopt/respawn: no UAF, conservation"
    QCheck.(map (fun n -> abs n + 1) small_int)
    qcheck_round

(* -- suites --------------------------------------------------------------- *)

let () =
  let per_scheme name f =
    List.map (fun (sname, s) -> Alcotest.test_case (name ^ ": " ^ sname) `Quick (f s)) schemes
  in
  Alcotest.run "recovery"
    [
      ( "kernel",
        Alcotest.test_case "quarantine/adopt lifecycle" `Quick kernel_quarantine_adopt
        :: per_scheme "adopt releases pins" adopt_releases_pins
        @ per_scheme "adopt drains backlog" adopt_drains_backlog );
      ( "ring",
        [
          Alcotest.test_case "cancel a pending slot" `Quick ring_cancel_pending;
          Alcotest.test_case "cancel after complete = final poll" `Quick
            ring_cancel_after_complete;
          Alcotest.test_case "complete loses to cancel" `Quick ring_complete_loses_to_cancel;
          Alcotest.test_case "generation stamps" `Quick ring_generation_stamp;
          Alcotest.test_case "deadline word" `Quick ring_deadline_word;
          Alcotest.test_case "dead-incarnation chain rejected exactly once" `Quick
            ring_dead_chain_rejected_once;
        ] );
      ( "policy",
        [ Alcotest.test_case "free-tid pool and validation" `Quick recovery_pool ] );
      ( "service",
        [
          Alcotest.test_case "mid-round crash: adopt + respawn" `Slow service_crash_recovers;
          Alcotest.test_case "mid-round crash under chained clients" `Slow
            service_crash_recovers_chained;
          Alcotest.test_case "no faults: supervisor stays idle" `Slow
            service_no_faults_no_recoveries;
        ] );
      ("faults", [ QCheck_alcotest.to_alcotest ~long:true qcheck_recovery ]);
    ]
