(* Reclamation safety (Theorem 4.3), empirically: concurrent churn with the
   pool's use-after-free detector armed must record zero violations for
   every scheme on every structure. A deliberately unsafe scheme validates
   that the detector actually catches violations. *)

module Config = Smr_core.Config

(* An SMR "scheme" that frees nodes the moment they are retired — the
   textbook unsafe behaviour the SMR problem exists to prevent. *)
module Unsafe_immediate : Smr_core.Smr_intf.S = struct
  open Smr_core

  type shared = { pool : Mempool.Core.t; counters : Counters.t }
  type thread = { shared : shared; tid : int }
  type t = { s : shared; per_thread : thread array }

  let name = "unsafe-immediate"

  let properties =
    {
      Smr_intf.full_name = "Unsafe immediate free (negative control)";
      wasted_memory = Smr_intf.Bounded;
      per_node_words = 0;
      self_contained = true;
      needs_per_reference_calls = false;
    }

  let create ~pool ~threads (_ : Config.t) =
    let s = { pool; counters = Counters.create ~threads } in
    { s; per_thread = Array.init threads (fun tid -> { shared = s; tid }) }

  let thread t ~tid = t.per_thread.(tid)
  let tid th = th.tid
  let start_op _ = ()
  let end_op _ = ()
  let batch_enter _ = ()
  let batch_exit _ = ()
  let alloc th = Mempool.Core.alloc th.shared.pool ~tid:th.tid

  let alloc_with_index th ~index =
    let id = alloc th in
    Mempool.Core.set_index th.shared.pool id index;
    id

  let retire th id =
    Mempool.Core.mark_retired th.shared.pool id;
    (* no grace period whatsoever *)
    Mempool.Core.free th.shared.pool ~tid:th.tid id

  let read _ ~refno:(_ : int) link = Atomic.get link
  let unprotect _ ~refno:(_ : int) = ()
  let update_lower_bound _ _ = ()
  let update_upper_bound _ _ = ()
  let handle_of th id = Mempool.Core.handle th.shared.pool id
  let flush _ = ()
  let adopt _ ~tid:_ = ()
  let stats t = Counters.stats t.s.counters
  let pinning_tids _ = []
end

let churn_violations (module SET : Dstruct.Set_intf.SET) ~threads ~ops ~range =
  let config = Config.default ~threads in
  let t =
    SET.create ~threads ~capacity:((range * 8) + (ops * threads) + 1024) ~check_access:true
      config
  in
  let s0 = SET.session t ~tid:0 in
  for k = 0 to (range / 2) - 1 do
    ignore (SET.insert s0 ~key:(k * 2) ~value:k : bool)
  done;
  let domains =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let s = SET.session t ~tid in
            let rng = Mp_util.Rng.split ~seed:4242 ~tid in
            for _ = 1 to ops do
              let k = Mp_util.Rng.below rng range in
              match Mp_util.Rng.below rng 4 with
              | 0 -> ignore (SET.insert s ~key:k ~value:k : bool)
              | 1 -> ignore (SET.remove s k : bool)
              | _ -> ignore (SET.contains s k : bool)
            done;
            SET.flush s))
  in
  Array.iter Domain.join domains;
  SET.violations t

let safe_case ds_name make (s_name, s) =
  Alcotest.test_case
    (Printf.sprintf "%s(%s) churn is UAF-free" ds_name s_name)
    `Slow
    (fun () ->
      let v = churn_violations (make s) ~threads:4 ~ops:10_000 ~range:128 in
      Alcotest.(check int) "violations" 0 v)

let detector_catches_unsafe_scheme () =
  (* Negative control, deterministic: a reader obtains a reference through
     the unsafe scheme's (no-op) read, the node is retired — and freed on
     the spot — and the reader's subsequent payload access must be flagged
     as a use-after-free. *)
  let pool = Mempool.create ~capacity:64 ~threads:2 ~check_access:true (fun i -> ref i) in
  let smr =
    Unsafe_immediate.create ~pool:(Mempool.core pool) ~threads:2 (Config.default ~threads:2)
  in
  let th0 = Unsafe_immediate.thread smr ~tid:0 in
  let th1 = Unsafe_immediate.thread smr ~tid:1 in
  let id = Unsafe_immediate.alloc th0 in
  let root = Atomic.make (Unsafe_immediate.handle_of th0 id) in
  Unsafe_immediate.start_op th1;
  let w = Unsafe_immediate.read th1 ~refno:0 root in
  Alcotest.(check int) "reader sees node" id (Handle.id w);
  (* writer unlinks and retires: the unsafe scheme frees immediately *)
  Atomic.set root Handle.null;
  Unsafe_immediate.retire th0 id;
  (* reader still holds w and dereferences it *)
  ignore (Mempool.get pool (Handle.id w) : int ref);
  Unsafe_immediate.end_op th1;
  Alcotest.(check bool)
    (Printf.sprintf "detector fired (%d violations)" (Mempool.violations pool))
    true
    (Mempool.violations pool > 0)

let structures : (string * ((module Smr_core.Smr_intf.S) -> (module Dstruct.Set_intf.SET))) list =
  [
    ("list", fun (module S) -> (module Dstruct.Michael_list.Make (S)));
    ("skiplist", fun (module S) -> (module Dstruct.Skiplist.Make (S)));
    ("bst", fun (module S) -> (module Dstruct.Nm_bst.Make (S)));
  ]

let () =
  Alcotest.run "safety"
    ((List.map
        (fun (ds_name, make) -> (ds_name, List.map (safe_case ds_name make) Common.schemes))
        structures)
    @ [
        ( "detector",
          [ Alcotest.test_case "unsafe scheme is caught" `Slow detector_catches_unsafe_scheme ] );
      ])
