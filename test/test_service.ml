(* Service layer and batch amortization.

   Three strata, matching how the feature is built:

   1. Kernel + scheme level: a batch window keeps every announcement the
      batch's operations published alive until [batch_exit] — so a node
      read inside a batch survives a concurrent retire+flush, and is
      reclaimed after the window closes. A batch of size 1 must cost
      exactly the un-batched protocol (same fence counts, same results).
   2. Transport level: the MPSC request ring loses and duplicates
      nothing under concurrent producers, and replies route back to the
      right ticket.
   3. Service level: end-to-end closed/open-loop runs keep the
      structure's invariants, and a QCheck property drives random batch
      sizes under random fault plans (crashes inside shard domains
      included) with the use-after-free detector armed. *)

module Config = Smr_core.Config
module Counters = Smr_core.Counters
module Reservation = Smr_core.Reservation
module Fault = Mp_util.Fault
module Histogram = Mp_util.Histogram
module Ring = Mp_service.Request_ring
module Service = Mp_service.Service
module Loadgen = Mp_service.Loadgen

let schemes = Common.schemes

(* -- 1a. reservation kernel ----------------------------------------------- *)

let kernel_batch_defers_clear () =
  let counters = Counters.create ~threads:2 in
  let res = Reservation.create ~counters ~threads:2 ~slots:3 ~empty:(-1) in
  Reservation.publish res ~tid:0 ~refno:0 42;
  Reservation.batch_enter res ~tid:0;
  Alcotest.(check bool) "in_batch" true (Reservation.in_batch res ~tid:0);
  let fences_before = (Counters.stats counters).Smr_core.Smr_intf.fences in
  Reservation.clear_all res ~tid:0;
  Alcotest.(check int) "clear_all suppressed: value survives" 42
    (Reservation.get res ~tid:0 ~refno:0);
  Alcotest.(check int) "clear_all suppressed: no fence" fences_before
    (Counters.stats counters).Smr_core.Smr_intf.fences;
  Reservation.publish res ~tid:0 ~refno:1 7;
  Reservation.clear_all res ~tid:0;
  Alcotest.(check int) "second op's announcement also survives" 7
    (Reservation.get res ~tid:0 ~refno:1);
  (* another thread's clear_all is not affected by tid 0's window *)
  Reservation.publish res ~tid:1 ~refno:0 9;
  Reservation.clear_all res ~tid:1;
  Alcotest.(check int) "other tid clears normally" (-1) (Reservation.get res ~tid:1 ~refno:0);
  let fences_mid = (Counters.stats counters).Smr_core.Smr_intf.fences in
  Reservation.batch_exit res ~tid:0;
  Alcotest.(check bool) "window closed" false (Reservation.in_batch res ~tid:0);
  Alcotest.(check int) "deferred clear ran" (-1) (Reservation.get res ~tid:0 ~refno:0);
  Alcotest.(check int) "whole row cleared" (-1) (Reservation.get res ~tid:0 ~refno:1);
  Alcotest.(check int) "one fence for the whole batch" (fences_mid + 1)
    (Counters.stats counters).Smr_core.Smr_intf.fences

(* -- 1b. every scheme: nodes read in a batch stay protected --------------- *)

(* tid 0 opens a batch and reads two nodes (one op each, [end_op] in
   between); tid 1 then unlinks, retires and flushes. The nodes must
   survive until tid 0 closes the window, then reclaim on the next
   flush. Leaky is exempt from the second half (it never reclaims). *)
let batch_protects (module S : Smr_core.Smr_intf.S) () =
  let threads = 2 in
  let config = Config.default ~threads in
  let pool = Mempool.Core.create ~capacity:256 ~threads () in
  let t = S.create ~pool ~threads config in
  let th0 = S.thread t ~tid:0 and th1 = S.thread t ~tid:1 in
  (* tid 1 builds two linked nodes *)
  S.start_op th1;
  let a = S.alloc_with_index th1 ~index:(1 lsl 20) in
  let b = S.alloc_with_index th1 ~index:(2 lsl 20) in
  let link_a = Atomic.make (Mempool.Core.handle pool a) in
  let link_b = Atomic.make (Mempool.Core.handle pool b) in
  S.end_op th1;
  (* tid 0 reads both inside one batch window, as two operations *)
  S.batch_enter th0;
  S.start_op th0;
  let wa = S.read th0 ~refno:0 link_a in
  Alcotest.(check int) "read a" a (Handle.id wa);
  S.end_op th0;
  S.start_op th0;
  let wb = S.read th0 ~refno:1 link_b in
  Alcotest.(check int) "read b" b (Handle.id wb);
  S.end_op th0;
  (* tid 1 unlinks and retires both, then tries to reclaim *)
  S.start_op th1;
  Atomic.set link_a Handle.null;
  Atomic.set link_b Handle.null;
  S.retire th1 a;
  S.retire th1 b;
  S.end_op th1;
  S.flush th1;
  Alcotest.(check bool) "a survives the open window" false (Mempool.Core.is_free pool a);
  Alcotest.(check bool) "b survives the open window" false (Mempool.Core.is_free pool b);
  S.batch_exit th0;
  S.flush th1;
  if S.name <> "none" then begin
    Alcotest.(check bool) "a reclaimed after batch_exit" true (Mempool.Core.is_free pool a);
    Alcotest.(check bool) "b reclaimed after batch_exit" true (Mempool.Core.is_free pool b)
  end;
  Alcotest.(check (list int)) "no reservation left" [] (S.pinning_tids t)

(* -- 1c. B=1 equivalence: same results, same fence count ------------------ *)

let batch_of_one_is_free (module S : Smr_core.Smr_intf.S) () =
  let module L = Dstruct.Michael_list.Make (S) in
  let run ~batched =
    let t = L.create ~threads:1 ~capacity:2048 ~check_access:true (Config.default ~threads:1) in
    let s = L.session t ~tid:0 in
    let results = Buffer.create 64 in
    let wrap f =
      if batched then begin
        L.batch_enter s;
        let r = f () in
        L.batch_exit s;
        r
      end
      else f ()
    in
    for k = 0 to 63 do
      Buffer.add_char results (if wrap (fun () -> L.insert s ~key:(k * 3) ~value:k) then 't' else 'f')
    done;
    for k = 0 to 95 do
      Buffer.add_char results (if wrap (fun () -> L.contains s k) then 't' else 'f');
      Buffer.add_char results (if wrap (fun () -> L.remove s (k * 2)) then 't' else 'f')
    done;
    L.flush s;
    Alcotest.(check int) "no use-after-free" 0 (L.violations t);
    (Buffer.contents results, (L.smr_stats t).Smr_core.Smr_intf.fences)
  in
  let plain_results, plain_fences = run ~batched:false in
  let batched_results, batched_fences = run ~batched:true in
  Alcotest.(check string) "same results" plain_results batched_results;
  Alcotest.(check int) "same fence count at B=1" plain_fences batched_fences

(* -- 2. MPSC ring --------------------------------------------------------- *)

let ring_lifecycle () =
  let r = Ring.create ~capacity:4 in
  Alcotest.(check int) "rounded capacity" 4 (Ring.capacity r);
  let t0 = Ring.try_submit r ~op:1 ~key:10 ~value:100 in
  let t1 = Ring.try_submit r ~op:2 ~key:20 ~value:200 in
  Alcotest.(check int) "first ticket" 0 t0;
  Alcotest.(check int) "second ticket" 1 t1;
  Alcotest.(check int) "reply pending" (-1) (Ring.poll r ~ticket:t0);
  Alcotest.(check bool) "first ready" true (Ring.ready r ~pos:0);
  Alcotest.(check int) "op" 1 (Ring.op r ~pos:0);
  Alcotest.(check int) "key" 10 (Ring.key r ~pos:0);
  Alcotest.(check int) "value" 100 (Ring.value r ~pos:0);
  Alcotest.(check bool) "complete wins unopposed" true (Ring.complete r ~pos:0 7);
  Alcotest.(check int) "reply delivered" 7 (Ring.poll r ~ticket:t0);
  (* polling acked ticket 0's slot: three more submissions fit (tickets
     2 and 3 on fresh slots, ticket 4 on the recycled one), then the
     ring is full because ticket 1 is still pending *)
  ignore (Ring.try_submit r ~op:0 ~key:0 ~value:0 : int);
  ignore (Ring.try_submit r ~op:0 ~key:0 ~value:0 : int);
  Alcotest.(check int) "acked slot recycled on the next lap" 4
    (Ring.try_submit r ~op:0 ~key:0 ~value:0);
  Alcotest.(check int) "full ring refuses" (-1) (Ring.try_submit r ~op:0 ~key:0 ~value:0)

let ring_no_lost_no_dup () =
  let producers = 3 and per_producer = 4_000 in
  let r = Ring.create ~capacity:64 in
  let served = Atomic.make 0 in
  let total = producers * per_producer in
  let seen = Array.make producers 0 in
  let sum = Array.make producers 0 in
  let consumer =
    Domain.spawn (fun () ->
        let pos = ref 0 in
        let spins = ref 0 in
        while Atomic.get served < total do
          if Ring.ready r ~pos:!pos then begin
            spins := 0;
            let key = Ring.key r ~pos:!pos and tid = Ring.op r ~pos:!pos in
            seen.(tid) <- seen.(tid) + 1;
            sum.(tid) <- sum.(tid) + key;
            ignore (Ring.complete r ~pos:!pos (key + 1) : bool);
            incr pos;
            Atomic.incr served
          end
          else if !spins < 64 then begin
            incr spins;
            Domain.cpu_relax ()
          end
          else Unix.sleepf 0.0001
        done)
  in
  let bad_replies = Atomic.make 0 in
  let prods =
    Array.init producers (fun tid ->
        Domain.spawn (fun () ->
            let spins = ref 0 in
            for i = 1 to per_producer do
              let key = (tid * 1_000_000) + i in
              let ticket = ref (Ring.try_submit r ~op:tid ~key ~value:0) in
              while !ticket < 0 do
                if !spins < 64 then begin
                  incr spins;
                  Domain.cpu_relax ()
                end
                else Unix.sleepf 0.0001;
                ticket := Ring.try_submit r ~op:tid ~key ~value:0
              done;
              spins := 0;
              let reply = ref (Ring.poll r ~ticket:!ticket) in
              while !reply < 0 do
                if !spins < 64 then begin
                  incr spins;
                  Domain.cpu_relax ()
                end
                else Unix.sleepf 0.0001;
                reply := Ring.poll r ~ticket:!ticket
              done;
              spins := 0;
              if !reply <> key + 1 then Atomic.incr bad_replies
            done))
  in
  Array.iter Domain.join prods;
  Domain.join consumer;
  Alcotest.(check int) "every reply routed to its ticket" 0 (Atomic.get bad_replies);
  for tid = 0 to producers - 1 do
    Alcotest.(check int)
      (Printf.sprintf "producer %d: no lost, no dup" tid)
      per_producer seen.(tid);
    let expect = tid * 1_000_000 * per_producer + (per_producer * (per_producer + 1) / 2) in
    Alcotest.(check int) (Printf.sprintf "producer %d: payload intact" tid) expect sum.(tid)
  done

let ring_chain_lifecycle () =
  let r = Ring.create ~capacity:8 in
  let ops = [| 1; 2; 3 |] and keys = [| 10; 20; 30 |] and values = [| 100; 200; 300 |] in
  (try
     ignore (Ring.try_submit_chain r ~n:5 ~ops ~keys ~values ~off:0 : int);
     Alcotest.fail "n > capacity/2 must be rejected"
   with Invalid_argument _ -> ());
  let t0 = Ring.try_submit_chain r ~n:3 ~ops ~keys ~values ~off:0 in
  Alcotest.(check int) "chain ticket is the head slot" 0 t0;
  (* published head-last: the head being ready means the whole chain is *)
  for pos = 0 to 2 do
    Alcotest.(check bool) (Printf.sprintf "slot %d ready" pos) true (Ring.ready r ~pos)
  done;
  Alcotest.(check int) "head records the chain length" 3 (Ring.chain_len r ~pos:0);
  Alcotest.(check int) "middle slot counts down" 2 (Ring.chain_len r ~pos:1);
  Alcotest.(check int) "tail slot closes the chain" 1 (Ring.chain_len r ~pos:2);
  Alcotest.(check int) "payload routed per slot" 20 (Ring.key r ~pos:1);
  Alcotest.(check int) "op per slot" 3 (Ring.op r ~pos:2);
  ignore (Ring.complete r ~pos:0 7 : bool);
  Alcotest.(check bool) "head alone is not done" false (Ring.chain_done r ~ticket:t0 ~n:3);
  ignore (Ring.complete r ~pos:1 8 : bool);
  Alcotest.(check bool) "middle is not done" false (Ring.chain_done r ~ticket:t0 ~n:3);
  ignore (Ring.complete r ~pos:2 9 : bool);
  Alcotest.(check bool) "last slot completes the chain" true (Ring.chain_done r ~ticket:t0 ~n:3);
  let replies = Array.make 3 (-1) in
  Ring.harvest_chain r ~ticket:t0 ~n:3 ~replies ~off:0;
  Alcotest.(check (array int)) "replies in submit order" [| 7; 8; 9 |] replies;
  (* harvest acked every slot: two max-width chains fit (one on fresh
     slots, one crossing into the recycled ones), then the ring is full *)
  let o4 = Array.make 4 0 in
  Alcotest.(check int) "fresh slots" 3 (Ring.try_submit_chain r ~n:4 ~ops:o4 ~keys:o4 ~values:o4 ~off:0);
  Alcotest.(check int) "recycled slots" 7 (Ring.try_submit_chain r ~n:4 ~ops:o4 ~keys:o4 ~values:o4 ~off:0);
  Alcotest.(check int) "full ring refuses a chain" (-1)
    (Ring.try_submit_chain r ~n:1 ~ops:o4 ~keys:o4 ~values:o4 ~off:0)

(* chain = 1 must be byte-for-byte the per-slot protocol: same tickets,
   same consumer-visible words, same reply/recycle behaviour. *)
let ring_chain_one_equals_single () =
  let a = Ring.create ~capacity:4 and b = Ring.create ~capacity:4 in
  for i = 1 to 6 do
    let op = i land 3 and key = 10 * i and value = 100 * i in
    let ta = Ring.try_submit a ~deadline_us:i ~op ~key ~value in
    let tb =
      Ring.try_submit_chain b ~deadline_us:i ~n:1 ~ops:[| op |] ~keys:[| key |]
        ~values:[| value |] ~off:0
    in
    Alcotest.(check int) "same ticket" ta tb;
    Alcotest.(check bool) "both ready" (Ring.ready a ~pos:ta) (Ring.ready b ~pos:tb);
    Alcotest.(check int) "same op" (Ring.op a ~pos:ta) (Ring.op b ~pos:tb);
    Alcotest.(check int) "same key" (Ring.key a ~pos:ta) (Ring.key b ~pos:tb);
    Alcotest.(check int) "same value" (Ring.value a ~pos:ta) (Ring.value b ~pos:tb);
    Alcotest.(check int) "same stamp" (Ring.stamp a ~pos:ta) (Ring.stamp b ~pos:tb);
    Alcotest.(check int) "same deadline" (Ring.deadline_us a ~pos:ta) (Ring.deadline_us b ~pos:tb);
    Alcotest.(check int) "singleton chain" 1 (Ring.chain_len b ~pos:tb);
    Alcotest.(check int) "same chain word" (Ring.chain_len a ~pos:ta) (Ring.chain_len b ~pos:tb);
    ignore (Ring.complete a ~pos:ta (key + 1) : bool);
    ignore (Ring.complete b ~pos:tb (key + 1) : bool);
    (* a coalesced wait on a 1-chain and a per-slot poll agree *)
    Alcotest.(check bool) "1-chain done" true (Ring.chain_done b ~ticket:tb ~n:1);
    let reply_b = Array.make 1 (-1) in
    Ring.harvest_chain b ~ticket:tb ~n:1 ~replies:reply_b ~off:0;
    Alcotest.(check int) "same reply" (Ring.poll a ~ticket:ta) reply_b.(0)
  done

let ring_await_stats () =
  let r = Ring.create ~capacity:4 in
  let t = Ring.try_submit r ~op:0 ~key:1 ~value:0 in
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.005;
        ignore (Ring.complete r ~pos:t 42 : bool))
  in
  Alcotest.(check int) "await returns the reply" 42 (Ring.await r ~ticket:t);
  Domain.join d;
  let st = Ring.stats r in
  Alcotest.(check bool) "adaptive wait tallied" true
    (st.Ring.client_spins + st.Ring.client_backoffs > 0);
  Alcotest.(check bool) "5 ms pushed past the spin phases" true (st.Ring.client_backoffs > 0)

(* Multi-producer chained no-lost/no-dup: random chain depths, blocking
   chained submits, coalesced awaits. The consumer is the same
   slot-at-a-time loop as the per-slot test — chains must not change the
   consumer's cursor contract. *)
let ring_chain_no_lost_no_dup () =
  let producers = 3 and chains_per_producer = 600 and max_chain = 8 in
  let r = Ring.create ~capacity:64 in
  let served = Atomic.make 0 in
  let submitted = Array.make producers 0 in
  let seen = Array.make producers 0 in
  let sum = Array.make producers 0 in
  let stop = Atomic.make false in
  let consumer =
    Domain.spawn (fun () ->
        let pos = ref 0 in
        let spins = ref 0 in
        while not (Atomic.get stop) do
          if Ring.ready r ~pos:!pos then begin
            spins := 0;
            let key = Ring.key r ~pos:!pos and tid = Ring.op r ~pos:!pos in
            seen.(tid) <- seen.(tid) + 1;
            sum.(tid) <- sum.(tid) + key;
            ignore (Ring.complete r ~pos:!pos (key + 1) : bool);
            incr pos;
            Atomic.incr served
          end
          else if !spins < 64 then begin
            incr spins;
            Domain.cpu_relax ()
          end
          else Unix.sleepf 0.0001
        done)
  in
  let bad_replies = Atomic.make 0 in
  let prods =
    Array.init producers (fun tid ->
        Domain.spawn (fun () ->
            let rng = Mp_util.Rng.create (0x51ab + tid) in
            let ops = Array.make max_chain tid in
            let keys = Array.make max_chain 0 in
            let values = Array.make max_chain 0 in
            let replies = Array.make max_chain 0 in
            for c = 1 to chains_per_producer do
              let n = 1 + Mp_util.Rng.below rng max_chain in
              for i = 0 to n - 1 do
                keys.(i) <- (tid * 1_000_000) + (c * 10) + i
              done;
              let ticket = ref (Ring.try_submit_chain r ~n ~ops ~keys ~values ~off:0) in
              let spins = ref 0 in
              while !ticket < 0 do
                if !spins < 64 then begin
                  incr spins;
                  Domain.cpu_relax ()
                end
                else Unix.sleepf 0.0001;
                ticket := Ring.try_submit_chain r ~n ~ops ~keys ~values ~off:0
              done;
              submitted.(tid) <- submitted.(tid) + n;
              Ring.await_chain r ~ticket:!ticket ~n;
              Ring.harvest_chain r ~ticket:!ticket ~n ~replies ~off:0;
              for i = 0 to n - 1 do
                if replies.(i) <> keys.(i) + 1 then Atomic.incr bad_replies
              done
            done))
  in
  Array.iter Domain.join prods;
  let total = Array.fold_left ( + ) 0 submitted in
  while Atomic.get served < total do
    Unix.sleepf 0.0001
  done;
  Atomic.set stop true;
  Domain.join consumer;
  Alcotest.(check int) "every coalesced reply routed to its slot" 0 (Atomic.get bad_replies);
  for tid = 0 to producers - 1 do
    Alcotest.(check int)
      (Printf.sprintf "producer %d: no lost, no dup" tid)
      submitted.(tid) seen.(tid)
  done

(* -- 3. service end-to-end ------------------------------------------------ *)

let make_hash = Mp_harness.Instances.make Mp_harness.Instances.Hash_ds
let make_list = Mp_harness.Instances.make Mp_harness.Instances.List_ds

let check_percentile_order h =
  let p50 = Histogram.percentile_ns h 50.0
  and p99 = Histogram.percentile_ns h 99.0
  and p999 = Histogram.percentile_ns h 99.9 in
  Alcotest.(check bool) "p50 <= p99" true (p50 <= p99);
  Alcotest.(check bool) "p99 <= p99.9" true (p99 <= p999);
  Alcotest.(check bool) "p99.9 <= max" true (p999 <= Histogram.max_ns h)

let service_round ?(mget = 1) ?(chain = 1) (module SET : Dstruct.Set_intf.SET)
    ~shards ~batch ~mode ~duration () =
  let config = Config.default ~threads:shards in
  let set =
    SET.create ~threads:shards ~capacity:(8192 + (shards * 4096)) ~check_access:true config
  in
  let s0 = SET.session set ~tid:0 in
  for k = 0 to 255 do
    ignore (SET.insert s0 ~key:(k * 7) ~value:k : bool)
  done;
  SET.flush s0;
  let svc = Service.create (module SET) set ~shards ~batch ~ring_capacity:128 in
  Service.start svc;
  let result =
    Loadgen.run svc
      {
        clients = 2;
        duration_s = duration;
        warmup_s = 0.0;
        read_pct = 60;
        insert_pct = 20;
        mget;
        key_range = 2048;
        zipf_alpha = None;
        seed = 4242;
        mode;
        deadline_s = 0.0;
        max_retries = 0;
        chain;
      }
  in
  Service.stop svc;
  let stats = Service.stats svc in
  SET.check set;
  Alcotest.(check int) "no use-after-free" 0 (SET.violations set);
  Alcotest.(check bool) "made progress" true (result.Loadgen.completed > 0);
  Alcotest.(check bool) "latency samples recorded" true
    (Histogram.count result.Loadgen.latency > 0);
  Alcotest.(check bool) "no batch overran B" true (stats.Service.max_batch <= batch);
  Alcotest.(check bool) "no crashes without faults" true (stats.Service.crashed_shards = 0);
  check_percentile_order result.Loadgen.latency

(* A multi-get reply counts hits above [reply_mget_base], and its gets
   are charged against the batch window's op budget: an 8-get at B=4
   must roll the window mid-request, never widen it past B. *)
let mget_reply () =
  let (module SET : Dstruct.Set_intf.SET) = make_hash (module Mp.Margin_ptr) in
  let shards = 2 and batch = 4 in
  let config = Config.default ~threads:shards in
  let set = SET.create ~threads:shards ~capacity:4096 ~check_access:true config in
  let s0 = SET.session set ~tid:0 in
  for k = 100 to 107 do
    ignore (SET.insert s0 ~key:k ~value:k : bool)
  done;
  SET.flush s0;
  let svc = Service.create (module SET) set ~shards ~batch ~ring_capacity:64 in
  Service.start svc;
  let mget ~key ~n =
    let shard = Service.shard_of_key svc key in
    let ticket =
      Service.try_submit svc ~shard ~op:Service.op_mget ~key ~value:n
    in
    Alcotest.(check bool) "submitted" true (ticket >= 0);
    Service.await svc ~shard ~ticket
  in
  Alcotest.(check int) "8/8 present" (Service.reply_mget_base + 8) (mget ~key:100 ~n:8);
  Alcotest.(check int) "0/4 present" Service.reply_mget_base (mget ~key:500 ~n:4);
  Alcotest.(check int) "partial hit" (Service.reply_mget_base + 2) (mget ~key:106 ~n:4);
  Service.stop svc;
  let stats = Service.stats svc in
  Alcotest.(check int) "every get executed" 16 stats.Service.ops;
  Alcotest.(check bool) "window rolled inside the 8-get" true
    (stats.Service.max_batch <= batch);
  Alcotest.(check int) "no use-after-free" 0 (SET.violations set)

(* -- QCheck: random batch sizes under random fault plans ------------------ *)

let fault_service_round seed =
  let shards = 2 in
  let batch = 1 + (seed mod 48) in
  let module SET = Dstruct.Michael_list.Make (Smr_schemes.Hp) in
  let config = Config.default ~threads:shards in
  let set = SET.create ~threads:shards ~capacity:16_384 ~check_access:true config in
  let s0 = SET.session set ~tid:0 in
  for k = 0 to 127 do
    ignore (SET.insert s0 ~key:(k * 11) ~value:k : bool)
  done;
  SET.flush s0;
  Fault.arm ~threads:shards (Fault.random_plan ~seed ~threads:shards);
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let svc = Service.create (module SET) set ~shards ~batch ~ring_capacity:64 in
  Service.start svc;
  let result =
    Loadgen.run svc
      {
        clients = 2;
        duration_s = 0.25;
        warmup_s = 0.0;
        read_pct = 50;
        insert_pct = 30;
        mget = 1 + (seed mod 3);
        key_range = 1024;
        zipf_alpha = None;
        seed;
        mode = Loadgen.Closed { pipeline = 8 };
        deadline_s = 0.0;
        max_retries = 0;
        (* Alternate per-slot and chained clients, so fault plans also
           fire against in-flight chains. *)
        chain = (if seed mod 2 = 0 then 1 else 1 + (seed mod 4));
      }
  in
  Service.stop svc;
  (* The structure may be left with a crashed shard pinning memory; the
     structural invariants and the UAF detector must hold regardless. *)
  SET.check set;
  ignore (result.Loadgen.rejected : int);
  SET.violations set = 0

let qcheck_no_uaf =
  QCheck.Test.make ~count:6 ~name:"random batch sizes under random fault plans: no UAF"
    QCheck.(map (fun n -> abs n + 1) small_int)
    fault_service_round

(* -- satellite: wasted_peak / live_peak ----------------------------------- *)

let striped_max_to () =
  let c = Mp_util.Striped_counter.create ~threads:2 in
  Mp_util.Striped_counter.max_to c ~tid:0 5;
  Mp_util.Striped_counter.max_to c ~tid:0 3;
  Mp_util.Striped_counter.max_to c ~tid:1 2;
  Alcotest.(check int) "monotonic lift" 5 (Mp_util.Striped_counter.get c ~tid:0);
  Alcotest.(check int) "summed" 7 (Mp_util.Striped_counter.sum c)

let counters_wasted_peak () =
  let c = Counters.create ~threads:1 in
  for _ = 1 to 5 do
    Counters.on_retire c ~tid:0
  done;
  Alcotest.(check int) "peak tracks retires" 5
    (Counters.stats c).Smr_core.Smr_intf.wasted_peak;
  Counters.on_reclaim c ~tid:0 5;
  let st = Counters.stats c in
  Alcotest.(check int) "wasted drops back" 0 st.Smr_core.Smr_intf.wasted;
  Alcotest.(check int) "peak is a high-water mark" 5 st.Smr_core.Smr_intf.wasted_peak;
  Counters.on_retire c ~tid:0;
  Alcotest.(check int) "later smaller crest keeps the peak" 5
    (Counters.stats c).Smr_core.Smr_intf.wasted_peak

let mempool_live_peak () =
  let pool = Mempool.Core.create ~capacity:64 ~threads:1 () in
  let ids = Array.init 10 (fun _ -> Mempool.Core.alloc pool ~tid:0) in
  Alcotest.(check int) "peak at crest" 10 (Mempool.Core.live_peak pool);
  Array.iter (fun id -> Mempool.Core.free pool ~tid:0 id) ids;
  Alcotest.(check int) "live back to zero" 0 (Mempool.Core.live_count pool);
  Alcotest.(check int) "peak survives the frees" 10 (Mempool.Core.live_peak pool);
  let id = Mempool.Core.alloc pool ~tid:0 in
  Mempool.Core.free pool ~tid:0 id;
  Alcotest.(check int) "smaller crest keeps the peak" 10 (Mempool.Core.live_peak pool)

(* -- suites --------------------------------------------------------------- *)

let () =
  let per_scheme name f = List.map (fun (sname, s) -> Alcotest.test_case (name ^ ": " ^ sname) `Quick (f s)) schemes in
  Alcotest.run "service"
    [
      ( "kernel",
        Alcotest.test_case "batch window defers clear_all" `Quick kernel_batch_defers_clear
        :: per_scheme "batch protects reads" batch_protects
        @ per_scheme "B=1 equals un-batched" batch_of_one_is_free );
      ( "ring",
        [
          Alcotest.test_case "slot lifecycle" `Quick ring_lifecycle;
          Alcotest.test_case "no lost, no dup (3 producers)" `Slow ring_no_lost_no_dup;
          Alcotest.test_case "chain lifecycle" `Quick ring_chain_lifecycle;
          Alcotest.test_case "chain of 1 = per-slot protocol" `Quick ring_chain_one_equals_single;
          Alcotest.test_case "await tallies spins and backoffs" `Quick ring_await_stats;
          Alcotest.test_case "chained no lost, no dup (3 producers)" `Slow ring_chain_no_lost_no_dup;
        ] );
      ( "service",
        [
          Alcotest.test_case "closed loop, hash × mp, B=8, mget=4" `Slow
            (service_round (make_hash (module Mp.Margin_ptr)) ~shards:2 ~batch:8 ~mget:4
               ~mode:(Loadgen.Closed { pipeline = 8 }) ~duration:0.25);
          Alcotest.test_case "multi-get replies and window rollover" `Quick mget_reply;
          Alcotest.test_case "chained closed loop, hash × mp, B=8, chain=8" `Slow
            (service_round (make_hash (module Mp.Margin_ptr)) ~chain:8 ~shards:2 ~batch:8
               ~mode:(Loadgen.Closed { pipeline = 8 }) ~duration:0.25);
          Alcotest.test_case "closed loop, list × hp, B=1" `Slow
            (service_round (make_list (module Smr_schemes.Hp)) ~shards:2 ~batch:1
               ~mode:(Loadgen.Closed { pipeline = 4 }) ~duration:0.2);
          Alcotest.test_case "open loop (Poisson), hash × ibr, B=16" `Slow
            (service_round (make_hash (module Smr_schemes.Ibr)) ~shards:2 ~batch:16
               ~mode:(Loadgen.Open { rate = 20_000.0; window = 32 }) ~duration:0.25);
        ] );
      ("faults", [ QCheck_alcotest.to_alcotest ~long:true qcheck_no_uaf ]);
      ( "peaks",
        [
          Alcotest.test_case "Striped_counter.max_to" `Quick striped_max_to;
          Alcotest.test_case "Counters wasted_peak" `Quick counters_wasted_peak;
          Alcotest.test_case "Mempool live_peak" `Quick mempool_live_peak;
        ] );
    ]
