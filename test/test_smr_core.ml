(* smr_core building blocks: config validation, the retired vector, the
   epoch clock, and the reservation/reclamation kernel. *)

module Config = Smr_core.Config
module Retired = Smr_core.Retired
module Epoch = Smr_core.Epoch
module Counters = Smr_core.Counters
module Reservation = Smr_core.Reservation
module Reclaimer = Smr_core.Reclaimer

let config_defaults () =
  let c = Config.default ~threads:8 in
  Alcotest.(check int) "empty_freq" 30 c.Config.empty_freq;
  Alcotest.(check int) "epoch_freq 150T" (150 * 8) c.Config.epoch_freq;
  Alcotest.(check int) "margin 2^20" (1 lsl 20) c.Config.margin;
  ignore (Config.validate c : Config.t)

let config_rejects_small_margin () =
  let c = Config.with_margin (Config.default ~threads:2) ((1 lsl 16) - 1) in
  Alcotest.check_raises "margin below 2^16"
    (Invalid_argument "Config: margin must be at least 2^16 (one idx16 precision range)")
    (fun () -> ignore (Config.validate c : Config.t))

let config_setters () =
  let c = Config.default ~threads:2 in
  Alcotest.(check int) "with_slots" 11 (Config.with_slots c 11).Config.slots;
  Alcotest.(check int) "with_empty_freq" 5 (Config.with_empty_freq c 5).Config.empty_freq;
  Alcotest.(check int) "with_epoch_freq" 7 (Config.with_epoch_freq c 7).Config.epoch_freq

let retired_push_filter () =
  let r = Retired.create ~initial_capacity:2 () in
  for i = 1 to 10 do
    Retired.push r i
  done;
  Alcotest.(check int) "length" 10 (Retired.length r);
  let released = ref [] in
  let n =
    Retired.filter_in_place r
      ~keep:(fun id -> id mod 2 = 0)
      ~release:(fun id -> released := id :: !released)
  in
  Alcotest.(check int) "released count" 5 n;
  Alcotest.(check int) "remaining" 5 (Retired.length r);
  List.iter (fun id -> Alcotest.(check bool) "odd released" true (id mod 2 = 1)) !released;
  Retired.iter r (fun id -> Alcotest.(check bool) "even kept" true (id mod 2 = 0));
  Retired.clear r;
  Alcotest.(check int) "cleared" 0 (Retired.length r)

let retired_empty_filter () =
  let r = Retired.create () in
  let n = Retired.filter_in_place r ~keep:(fun _ -> true) ~release:(fun _ -> Alcotest.fail "nothing to release") in
  Alcotest.(check int) "no releases" 0 n;
  Alcotest.(check int) "still empty" 0 (Retired.length r)

let retired_duplicate_ids () =
  let r = Retired.create () in
  Retired.push r 7;
  Retired.push r 7;
  Retired.push r 3;
  let released = ref [] in
  let n =
    Retired.filter_in_place r ~keep:(fun _ -> false) ~release:(fun id -> released := id :: !released)
  in
  Alcotest.(check int) "both copies released" 3 n;
  Alcotest.(check int) "sevens released twice" 2
    (List.length (List.filter (fun id -> id = 7) !released));
  Alcotest.(check int) "empty after" 0 (Retired.length r)

let retired_release_all () =
  let r = Retired.create () in
  Retired.push r 1;
  Retired.push r 2;
  let n = Retired.filter_in_place r ~keep:(fun _ -> false) ~release:ignore in
  Alcotest.(check int) "all released" 2 n;
  Alcotest.(check int) "empty" 0 (Retired.length r)

let epoch_announce_cycle () =
  let e = Epoch.create ~threads:3 in
  Alcotest.(check int) "initial epoch" 1 (Epoch.current e);
  Alcotest.(check int) "idle announce" Epoch.inactive (Epoch.announced e ~tid:0);
  let a = Epoch.announce e ~tid:0 in
  Alcotest.(check int) "announced current" 1 a;
  Alcotest.(check int) "min over active" 1 (Epoch.min_announced e);
  Epoch.advance e;
  Alcotest.(check int) "advanced" 2 (Epoch.current e);
  Alcotest.(check int) "stale announcement pins min" 1 (Epoch.min_announced e);
  Epoch.retire_announcement e ~tid:0;
  Alcotest.(check int) "all idle" Epoch.inactive (Epoch.min_announced e)

let epoch_concurrent_advance () =
  let e = Epoch.create ~threads:4 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Epoch.advance e
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost increments" 40_001 (Epoch.current e)

(* -- reservation kernel --------------------------------------------------- *)

let reservation_publish_clear () =
  let counters = Counters.create ~threads:2 in
  let res = Reservation.create ~counters ~threads:2 ~slots:3 ~empty:(-1) in
  Alcotest.(check int) "threads" 2 (Reservation.threads res);
  Alcotest.(check int) "slots" 3 (Reservation.slots_per_thread res);
  Alcotest.(check int) "capacity" 6 (Reservation.capacity res);
  Alcotest.(check int) "starts empty" (-1) (Reservation.get res ~tid:0 ~refno:0);
  Reservation.publish res ~tid:0 ~refno:0 42;
  Reservation.publish res ~tid:1 ~refno:2 99;
  Alcotest.(check int) "published" 42 (Reservation.get res ~tid:0 ~refno:0);
  Alcotest.(check int) "slot atomic aliases table" 42
    (Atomic.get (Reservation.slot res ~tid:0 ~refno:0));
  Alcotest.(check int) "two publish fences" 2 (Counters.stats counters).Smr_core.Smr_intf.fences;
  Reservation.clear res ~tid:0 ~refno:0;
  Alcotest.(check int) "cleared to sentinel" (-1) (Reservation.get res ~tid:0 ~refno:0);
  Alcotest.(check int) "clear is uncounted" 2 (Counters.stats counters).Smr_core.Smr_intf.fences;
  Reservation.clear_all res ~tid:1;
  Alcotest.(check int) "clear_all resets" (-1) (Reservation.get res ~tid:1 ~refno:2);
  Alcotest.(check int) "clear_all costs one fence" 3
    (Counters.stats counters).Smr_core.Smr_intf.fences

let reservation_snapshot_reuse () =
  let counters = Counters.create ~threads:2 in
  let res = Reservation.create ~counters ~threads:2 ~slots:2 ~empty:0 in
  let snap = Reservation.snapshot_create () in
  Reservation.set res ~tid:0 ~refno:0 10;
  Reservation.set res ~tid:1 ~refno:1 20;
  Reservation.snapshot res snap;
  Alcotest.(check int) "sentinels filtered" 2 snap.Reservation.len;
  Alcotest.(check int) "first value" 10 snap.Reservation.vals.(0);
  Alcotest.(check int) "first owner" 0 snap.Reservation.owners.(0);
  Alcotest.(check int) "second owner" 1 snap.Reservation.owners.(1);
  let vals_before = snap.Reservation.vals in
  Reservation.clear res ~tid:0 ~refno:0;
  Reservation.snapshot res snap;
  Alcotest.(check int) "refilled" 1 snap.Reservation.len;
  Alcotest.(check bool) "buffer reused, not reallocated" true
    (snap.Reservation.vals == vals_before);
  Reservation.snapshot_flat res snap;
  Alcotest.(check int) "flat covers every slot" 4 snap.Reservation.len;
  Alcotest.(check int) "flat keeps sentinels" 0 snap.Reservation.vals.(0);
  Alcotest.(check int) "flat (tid*slots)+refno order" 20 snap.Reservation.vals.(3)

let reservation_sorted_queries () =
  let counters = Counters.create ~threads:1 in
  let res = Reservation.create ~counters ~threads:1 ~slots:5 ~empty:(-1) in
  List.iteri (fun refno v -> Reservation.set res ~tid:0 ~refno v) [ 30; 10; 50; 10 ];
  let snap = Reservation.snapshot_create () in
  Reservation.snapshot res snap;
  Reservation.sort snap;
  Alcotest.(check int) "len unchanged by sort" 4 snap.Reservation.len;
  Alcotest.(check bool) "mem present" true (Reservation.mem snap 30);
  Alcotest.(check bool) "mem duplicate" true (Reservation.mem snap 10);
  Alcotest.(check bool) "mem absent" false (Reservation.mem snap 40);
  Alcotest.(check bool) "sentinel never member" false (Reservation.mem snap (-1));
  Alcotest.(check bool) "range hit" true (Reservation.exists_in_range snap ~lo:25 ~hi:35);
  Alcotest.(check bool) "range miss between" false (Reservation.exists_in_range snap ~lo:31 ~hi:49);
  Alcotest.(check bool) "range above all" false
    (Reservation.exists_in_range snap ~lo:51 ~hi:max_int);
  Alcotest.(check bool) "inclusive bounds" true (Reservation.exists_in_range snap ~lo:50 ~hi:50)

(* One domain publishes/validates/clears in a loop while another
   snapshots: a snapshot must only ever contain the published value, and
   a validated announcement must still be in the slot. *)
let reservation_publish_validate_race () =
  let counters = Counters.create ~threads:2 in
  let res = Reservation.create ~counters ~threads:2 ~slots:1 ~empty:(-1) in
  let rounds = 20_000 in
  let bad = Atomic.make 0 in
  let writer =
    Domain.spawn (fun () ->
        for i = 1 to rounds do
          Reservation.publish res ~tid:0 ~refno:0 i;
          (* validate: the announcement must survive until we clear it *)
          if Reservation.get res ~tid:0 ~refno:0 <> i then Atomic.incr bad;
          Reservation.clear res ~tid:0 ~refno:0
        done)
  in
  let scanner =
    Domain.spawn (fun () ->
        let snap = Reservation.snapshot_create () in
        for _ = 1 to rounds do
          Reservation.snapshot res snap;
          for k = 0 to snap.Reservation.len - 1 do
            let v = snap.Reservation.vals.(k) in
            if v < 1 || v > rounds then Atomic.incr bad
          done
        done)
  in
  Domain.join writer;
  Domain.join scanner;
  Alcotest.(check int) "no torn or sentinel values observed" 0 (Atomic.get bad)

(* -- reclaimer ------------------------------------------------------------ *)

let reclaimer_threshold_formula () =
  Alcotest.(check int) "capacity-dominated" 20
    (Reclaimer.scan_threshold ~empty_freq:10 ~slots:8 ~threads:2);
  Alcotest.(check int) "empty_freq-dominated" 100
    (Reclaimer.scan_threshold ~empty_freq:100 ~slots:1 ~threads:2);
  Alcotest.(check int) "no slots still Ω(threads)" 8
    (Reclaimer.scan_threshold ~empty_freq:1 ~slots:0 ~threads:4)

let reclaimer_batches_then_scans () =
  let pool = Mempool.Core.create ~capacity:64 ~threads:1 () in
  let counters = Counters.create ~threads:1 in
  let rsv = Reclaimer.create ~pool ~counters ~tid:0 ~threshold:5 in
  let ids = Array.init 5 (fun _ -> Mempool.Core.alloc pool ~tid:0) in
  for i = 0 to 3 do
    Reclaimer.retire rsv ids.(i);
    Alcotest.(check bool) (Printf.sprintf "not due after %d" (i + 1)) false
      (Reclaimer.scan_due rsv)
  done;
  Reclaimer.retire rsv ids.(4);
  Alcotest.(check bool) "due at threshold" true (Reclaimer.scan_due rsv);
  Alcotest.(check int) "all pending" 5 (Reclaimer.pending rsv);
  let protected = ids.(2) in
  Reclaimer.scan rsv ~keep:(fun id -> id = protected);
  Alcotest.(check int) "unprotected freed" 1 (Reclaimer.pending rsv);
  Alcotest.(check bool) "batch reset" false (Reclaimer.scan_due rsv);
  let st = Counters.stats counters in
  Alcotest.(check int) "one pass counted" 1 st.Smr_core.Smr_intf.scan_passes;
  Alcotest.(check int) "reclaimed counted" 4 st.Smr_core.Smr_intf.reclaimed;
  Alcotest.(check int) "wasted = still pending" 1 st.Smr_core.Smr_intf.wasted;
  Alcotest.(check bool) "scan time accumulates" true (st.Smr_core.Smr_intf.scan_time_s >= 0.0);
  Alcotest.(check bool) "freed slot back in pool" true (Mempool.Core.is_free pool ids.(0));
  Alcotest.(check bool) "kept slot still retired" false (Mempool.Core.is_free pool protected)

let reclaimer_flush_drains () =
  let pool = Mempool.Core.create ~capacity:64 ~threads:1 () in
  let counters = Counters.create ~threads:1 in
  let rsv = Reclaimer.create ~pool ~counters ~tid:0 ~threshold:max_int in
  for _ = 1 to 10 do
    Reclaimer.retire rsv (Mempool.Core.alloc pool ~tid:0)
  done;
  Alcotest.(check bool) "huge threshold never due" false (Reclaimer.scan_due rsv);
  (* flush = an unconditional scan with nothing protected *)
  Reclaimer.scan rsv ~keep:(fun _ -> false);
  Alcotest.(check int) "flush drains everything" 0 (Reclaimer.pending rsv);
  Alcotest.(check int) "all reclaimed" 10 (Counters.stats counters).Smr_core.Smr_intf.reclaimed;
  Alcotest.(check int) "pool fully recycled" 0 (Mempool.Core.live_count pool)

let qcheck_retired_conservation =
  QCheck.Test.make ~name:"filter conserves elements" ~count:200
    QCheck.(list (int_bound 1000))
    (fun ids ->
      let r = Retired.create () in
      List.iter (Retired.push r) ids;
      let released = ref 0 in
      let n = Retired.filter_in_place r ~keep:(fun id -> id mod 3 = 0) ~release:(fun _ -> incr released) in
      n = !released && Retired.length r + n = List.length ids)

let () =
  Alcotest.run "smr_core"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick config_defaults;
          Alcotest.test_case "margin floor" `Quick config_rejects_small_margin;
          Alcotest.test_case "setters" `Quick config_setters;
        ] );
      ( "retired",
        Alcotest.test_case "push/filter" `Quick retired_push_filter
        :: Alcotest.test_case "release all" `Quick retired_release_all
        :: Alcotest.test_case "empty filter" `Quick retired_empty_filter
        :: Alcotest.test_case "duplicate ids" `Quick retired_duplicate_ids
        :: List.map QCheck_alcotest.to_alcotest [ qcheck_retired_conservation ] );
      ( "reservation",
        [
          Alcotest.test_case "publish/clear" `Quick reservation_publish_clear;
          Alcotest.test_case "snapshot reuse" `Quick reservation_snapshot_reuse;
          Alcotest.test_case "sorted queries" `Quick reservation_sorted_queries;
          Alcotest.test_case "publish/validate race" `Slow reservation_publish_validate_race;
        ] );
      ( "reclaimer",
        [
          Alcotest.test_case "threshold formula" `Quick reclaimer_threshold_formula;
          Alcotest.test_case "batch then scan" `Quick reclaimer_batches_then_scans;
          Alcotest.test_case "flush drains" `Quick reclaimer_flush_drains;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "announce cycle" `Quick epoch_announce_cycle;
          Alcotest.test_case "concurrent advance" `Slow epoch_concurrent_advance;
        ] );
    ]
