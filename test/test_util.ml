(* Utility substrate: RNG determinism and distribution sanity, key
   generators, backoff, striped counters, descriptive stats. *)

module Rng = Mp_util.Rng
module Keygen = Mp_util.Keygen
module Stats = Mp_util.Stats
module Sc = Mp_util.Striped_counter

let rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.next_int a) (Rng.next_int b)
  done

let rng_split_decorrelates () =
  let a = Rng.split ~seed:1 ~tid:0 and b = Rng.split ~seed:1 ~tid:1 in
  let equal = ref 0 in
  for _ = 1 to 1000 do
    if Rng.below a 1000 = Rng.below b 1000 then incr equal
  done;
  Alcotest.(check bool) "streams differ" true (!equal < 100)

let rng_below_in_range () =
  let r = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.below r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let rng_float_unit_interval () =
  let r = Rng.create 3 in
  for _ = 1 to 10_000 do
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of [0,1): %f" f
  done

let rng_uniformity () =
  (* chi-squared-ish sanity: 10 buckets, 100k draws, each within 20%. *)
  let r = Rng.create 11 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 100_000 do
    let v = Rng.below r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i n ->
      if n < 8_000 || n > 12_000 then Alcotest.failf "bucket %d skewed: %d" i n)
    buckets

let keygen_uniform () =
  let g = Keygen.uniform ~range:100 in
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let k = Keygen.next g r in
    if k < 0 || k >= 100 then Alcotest.failf "uniform key out of range: %d" k
  done

let keygen_zipf_skew () =
  let g = Keygen.zipf ~range:1000 ~alpha:1.2 in
  let r = Rng.create 5 in
  let zero = ref 0 and total = 10_000 in
  for _ = 1 to total do
    let k = Keygen.next g r in
    if k < 0 || k >= 1000 then Alcotest.failf "zipf key out of range: %d" k;
    if k = 0 then incr zero
  done;
  (* the hottest key should be much more frequent than uniform's 0.1% *)
  Alcotest.(check bool) "zipf concentrates mass" true (!zero > total / 100)

let keygen_ascending () =
  let g = Keygen.ascending ~start:5 () in
  let r = Rng.create 0 in
  Alcotest.(check (list int)) "sequence" [ 5; 6; 7; 8 ]
    (List.init 4 (fun _ -> Keygen.next g r))

let striped_counter () =
  let c = Sc.create ~threads:4 in
  Sc.incr c ~tid:0;
  Sc.add c ~tid:2 10;
  Sc.add c ~tid:3 (-4);
  Alcotest.(check int) "sum" 7 (Sc.sum c);
  Alcotest.(check int) "get" 10 (Sc.get c ~tid:2);
  Sc.reset c;
  Alcotest.(check int) "reset" 0 (Sc.sum c)

let striped_counter_parallel () =
  let c = Sc.create ~threads:4 in
  let domains =
    Array.init 4 (fun tid ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Sc.incr c ~tid
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "no lost updates across stripes" 40_000 (Sc.sum c)

let backoff_grows_and_resets () =
  let b = Mp_util.Backoff.create ~max_spins:8 () in
  Mp_util.Backoff.once b;
  Mp_util.Backoff.once b;
  Mp_util.Backoff.once b;
  Mp_util.Backoff.once b;
  Mp_util.Backoff.once b (* capped, must not raise *);
  Mp_util.Backoff.reset b;
  Mp_util.Backoff.once b

let stats_basics () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "stddev" (sqrt (5.0 /. 3.0)) (Stats.stddev xs);
  let lo, hi = Stats.min_max xs in
  Alcotest.(check (float 1e-9)) "min" 1.0 lo;
  Alcotest.(check (float 1e-9)) "max" 4.0 hi;
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100" 4.0 (Stats.percentile xs 100.0)

let stats_empty () =
  Alcotest.(check (float 1e-9)) "mean of empty" 0.0 (Stats.mean [||]);
  Alcotest.(check (float 1e-9)) "stddev of singleton" 0.0 (Stats.stddev [| 5.0 |])

(* -- Relaxed (fenceless) atomic reads ----------------------------------- *)

(* Two-domain handshake: the writer publishes data with plain writes and
   raises a flag with an SC [Atomic.set]; the reader polls the flag with
   the fenceless [Mp_util.Relaxed.get]. The relaxed load must still
   observe the flagged write eventually (OCaml atomics are coherent:
   fenceless drops the SC fence, not visibility), and once it does, an SC
   read of the payload must see everything written before the flag. *)
let relaxed_handshake () =
  for round = 1 to 50 do
    let payload = Atomic.make 0 in
    let flag = Atomic.make false in
    let writer =
      Domain.spawn (fun () ->
          Atomic.set payload round;
          Atomic.set flag true)
    in
    let budget = ref 100_000_000 in
    while not (Mp_util.Relaxed.get flag) && !budget > 0 do
      decr budget;
      Domain.cpu_relax ()
    done;
    if !budget = 0 then Alcotest.fail "relaxed read never observed the SC flag write";
    Alcotest.(check int) "payload visible after flag" round (Atomic.get payload);
    Domain.join writer
  done

(* Relaxed reads of a location the reader itself wrote (the own-slot
   mirror pattern used by the schemes) are exact by program order. *)
let relaxed_own_writes () =
  let slot = Atomic.make (-1) in
  for i = 0 to 1_000 do
    Atomic.set slot i;
    Alcotest.(check int) "own write mirrored" i (Mp_util.Relaxed.get slot)
  done

let qcheck_percentile_sorted =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.0))
    (fun l ->
      let xs = Array.of_list l in
      Stats.percentile xs 25.0 <= Stats.percentile xs 75.0)

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "split decorrelates" `Quick rng_split_decorrelates;
          Alcotest.test_case "below range" `Quick rng_below_in_range;
          Alcotest.test_case "float range" `Quick rng_float_unit_interval;
          Alcotest.test_case "uniformity" `Quick rng_uniformity;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "uniform" `Quick keygen_uniform;
          Alcotest.test_case "zipf skew" `Quick keygen_zipf_skew;
          Alcotest.test_case "ascending" `Quick keygen_ascending;
        ] );
      ( "counters",
        [
          Alcotest.test_case "striped basics" `Quick striped_counter;
          Alcotest.test_case "striped parallel" `Quick striped_counter_parallel;
          Alcotest.test_case "backoff" `Quick backoff_grows_and_resets;
        ] );
      ( "relaxed",
        [
          Alcotest.test_case "two-domain handshake" `Quick relaxed_handshake;
          Alcotest.test_case "own-slot mirror" `Quick relaxed_own_writes;
        ] );
      ( "stats",
        Alcotest.test_case "basics" `Quick stats_basics
        :: Alcotest.test_case "empty" `Quick stats_empty
        :: List.map QCheck_alcotest.to_alcotest [ qcheck_percentile_sorted ] );
    ]
